package certify

import (
	"context"

	"repro/internal/rta"
	"repro/internal/scenario"
)

// MatrixConfig sweeps one certification test over a scenarios × policies
// grid — the registry-wide certification matrix.
type MatrixConfig struct {
	// Scenarios lists the base scenarios to certify; empty defaults to every
	// registered scenario, in registry (sorted) order.
	Scenarios []string
	// Policies lists the switching policies to certify each scenario under;
	// empty defaults to every built-in policy, in registry (sorted) order.
	Policies []string
	// Cell is the per-cell test template: threshold, confidence, budget,
	// batch, seed, workers, duration and fault model. Its Scenario and
	// Overrides.Policy fields are overwritten per cell.
	Cell Config
}

// MatrixResult is the certification matrix: one Result per (scenario,
// policy) cell, in sweep order, plus verdict tallies. Deterministic like the
// cells themselves.
type MatrixResult struct {
	Threshold    float64  `json:"threshold"`
	Confidence   float64  `json:"confidence"`
	Certified    int      `json:"certified"`
	Refuted      int      `json:"refuted"`
	Inconclusive int      `json:"inconclusive"`
	Errored      int      `json:"errored,omitempty"`
	Cells        []Result `json:"cells"`
}

// Matrix certifies every cell of the grid, sequentially in grid order (each
// cell parallelises internally through the fleet). A cell whose
// configuration is invalid — e.g. importance sampling over a fault-free
// scenario — is recorded with Verdict "error" rather than aborting the
// sweep. Cancellation returns the partial matrix with the context's error;
// the interrupted cell's partial result is included marked inconclusive.
func Matrix(ctx context.Context, mc MatrixConfig) (*MatrixResult, error) {
	scenarios := mc.Scenarios
	if len(scenarios) == 0 {
		scenarios = scenario.Names()
	}
	policies := mc.Policies
	if len(policies) == 0 {
		policies = rta.PolicyNames()
	}
	out := &MatrixResult{Threshold: mc.Cell.Threshold, Confidence: mc.Cell.Confidence}
	if out.Confidence == 0 {
		out.Confidence = DefaultConfidence
	}
	for _, sc := range scenarios {
		for _, pol := range policies {
			cfg := mc.Cell
			cfg.Scenario = sc
			cfg.Overrides.Policy = pol
			res, err := Certify(ctx, cfg)
			if res != nil {
				out.Cells = append(out.Cells, *res)
			} else {
				out.Cells = append(out.Cells, Result{
					Scenario: sc,
					Policy:   pol,
					Verdict:  VerdictError,
					Err:      err.Error(),
				})
			}
			switch out.Cells[len(out.Cells)-1].Verdict {
			case VerdictCertified:
				out.Certified++
			case VerdictRefuted:
				out.Refuted++
			case VerdictError:
				out.Errored++
			default:
				out.Inconclusive++
			}
			if ctx.Err() != nil {
				return out, ctx.Err()
			}
		}
	}
	return out, nil
}
