package certify

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"strings"
	"time"

	"repro/internal/controller"
	"repro/internal/fleet"
	"repro/internal/mission"
	"repro/internal/obs"
	"repro/internal/rta"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/store"

	"repro/internal/falsify"
)

// Verdict is a certification campaign's terminal answer to "is this cell's
// crash probability below the threshold?".
type Verdict string

// The verdicts. VerdictError only appears in matrix cells whose
// configuration is invalid (e.g. importance sampling over a fault-free
// scenario); Certify itself refuses such configs up front.
const (
	VerdictCertified    Verdict = "certified"
	VerdictRefuted      Verdict = "refuted"
	VerdictInconclusive Verdict = "inconclusive-at-budget"
	VerdictError        Verdict = "error"
)

// Default certification knobs.
const (
	// DefaultMaxSeeds is the default seed budget of a campaign.
	DefaultMaxSeeds = 4096
	// DefaultBatch is the default number of seeds per sequential batch — the
	// early-stopping granularity.
	DefaultBatch = 32
	// DefaultConfidence is the default two-sided confidence level.
	DefaultConfidence = 0.95
)

// Config is one certification cell plus the test to run against it: a
// (scenario, overrides) pair, the crash-probability threshold and confidence
// level, and the sequential-sweep knobs. The resulting verdict, estimate,
// interval and seeds-consumed are a pure function of this struct — worker
// count never changes them.
type Config struct {
	// Scenario names the base scenario (scenario registry). Required.
	Scenario string
	// Overrides is the spec delta defining the cell — the same declarative
	// Params falsification candidates carry, so a falsified cell can be fed
	// straight back into certification. Its Policy field selects the
	// switching policy under test.
	Overrides falsify.Params
	// Threshold is the crash-probability bound being tested ("crash
	// probability < Threshold"). Required, in (0, 1).
	Threshold float64
	// Confidence is the two-sided confidence level of the interval; zero
	// defaults to DefaultConfidence.
	Confidence float64
	// MaxSeeds bounds the number of seeds swept; zero defaults to
	// DefaultMaxSeeds.
	MaxSeeds int
	// Batch is the number of seeds evaluated between interval checks; zero
	// defaults to DefaultBatch. Part of the result's identity: changing the
	// batch size moves the stopping points.
	Batch int
	// Seed is the base of the deterministic seed sequence (run i uses
	// Seed + 101·i, the fleet.Seeds spacing); zero defaults to 1.
	Seed int64
	// Workers bounds concurrent evaluations; zero defaults to GOMAXPROCS.
	// Worker count never changes certification results.
	Workers int
	// Duration overrides the cell's mission horizon; zero keeps the spec's.
	Duration time.Duration
	// FaultActivation is the nominal per-window fault-activation probability
	// of the sporadic fault model: each window the spec's fault profile
	// schedules fires independently with this probability. Zero or 1 keeps
	// the deterministic profile (every window fires).
	FaultActivation float64
	// Boost enables importance sampling: runs are sampled with the
	// activation probability raised to Boost·FaultActivation and crash
	// indicators reweighted by the exact likelihood ratio. Zero or 1 keeps
	// plain sampling; values above 1 require an active fault profile and
	// Boost·FaultActivation < 1 — the nominal measure must stay absolutely
	// continuous with respect to the sampling measure, or the reweighted
	// estimator silently loses the fault-free slice of the crash
	// probability.
	Boost float64
	// Observers receive the campaign's CertifyProgress stream (one event per
	// batch, terminal verdict on the last) on the campaign goroutine.
	Observers []obs.Observer
	// Store, when non-nil, shares mission verdicts with the serving layer's
	// tiered result store. It is consulted only when the fault model is
	// deterministic (FaultActivation == 1, no boost): such a cell's runs are
	// plain (spec, seed) missions with the same fingerprints as sweep-job
	// cells, so a certification after a warm sweep consumes stored outcomes
	// instead of fresh simulations — and its own fresh runs warm the store
	// for later sweeps. Sporadic or boosted runs alter the mission (thinned
	// fault windows) and never touch the store. Reuse never changes the
	// Result: a stored verdict is byte-identical to a fresh run's.
	Store *store.Tiered
}

// Result is a certification campaign's deterministic summary: given the same
// Config, two runs produce byte-identical JSON at any worker count.
type Result struct {
	Scenario string `json:"scenario"`
	// Policy is the canonical switching-policy spec of the certified cell.
	Policy     string  `json:"policy"`
	Threshold  float64 `json:"threshold"`
	Confidence float64 `json:"confidence"`
	// Mode is "plain" or "importance"; Method names the interval driving the
	// verdict ("clopper-pearson" or "empirical-bernstein").
	Mode    string  `json:"mode"`
	Method  string  `json:"method"`
	Verdict Verdict `json:"verdict"`
	// Seeds is the number of seeds consumed (early stopping makes this
	// smaller than MaxSeeds for conclusive cells); Crashes the raw crash
	// count among them; Errored the runs that could not be evaluated
	// (excluded from the estimator).
	Seeds    int `json:"seeds"`
	MaxSeeds int `json:"max_seeds"`
	Crashes  int `json:"crashes"`
	Errored  int `json:"errored,omitempty"`
	// Estimate is the crash-probability estimate ([weighted] crash rate);
	// [Lo, Hi] the verdict-driving interval, [WilsonLo, WilsonHi] the
	// narrower Wilson display interval.
	Estimate float64 `json:"estimate"`
	Lo       float64 `json:"lo"`
	Hi       float64 `json:"hi"`
	WilsonLo float64 `json:"wilson_lo"`
	WilsonHi float64 `json:"wilson_hi"`
	// Batch and Seed pin the rest of the result's identity.
	Batch int   `json:"batch"`
	Seed  int64 `json:"seed"`
	// FaultActivation and Boost echo the sporadic fault model (0 when the
	// profile ran deterministically).
	FaultActivation float64 `json:"fault_activation,omitempty"`
	Boost           float64 `json:"boost,omitempty"`
	// Err carries the configuration error of a matrix cell that could not
	// run (Verdict "error").
	Err string `json:"err,omitempty"`
}

// Certify runs one certification campaign to completion, early stop, or
// cancellation (the partial Result accumulated so far is returned marked
// inconclusive, together with the context's error).
func Certify(ctx context.Context, cfg Config) (*Result, error) {
	c, err := newCampaign(cfg)
	if err != nil {
		return nil, err
	}
	return c.run(ctx)
}

// Validate checks the cell configuration without running anything — the
// submit-time gate of the serving layer.
func (cfg Config) Validate() error {
	_, err := newCampaign(cfg)
	return err
}

// campaign is the resolved sequential-sweep state. Accounting is
// single-threaded in seed order; only evaluateOne runs on fleet workers, and
// everything it touches on the campaign is immutable.
type campaign struct {
	cfg       Config
	spec      scenario.Spec
	policy    string
	p, q      float64 // nominal and sampling activation probabilities
	observers obs.Multi

	seeds   int // consumed (including errored)
	samples int // evaluated runs feeding the estimator
	crashes int // raw crash count
	errored int
	sumY    float64 // Σ weight·crashed, in seed order
	sumY2   float64 // Σ (weight·crashed)², in seed order
	rmax    float64 // largest possible weight over evaluated runs
}

// newCampaign resolves and validates a cell configuration.
func newCampaign(cfg Config) (*campaign, error) {
	if cfg.Scenario == "" {
		return nil, errors.New("certify: no scenario")
	}
	base, ok := scenario.Get(cfg.Scenario)
	if !ok {
		return nil, fmt.Errorf("certify: unknown scenario %q (have: %s)", cfg.Scenario, strings.Join(scenario.Names(), ", "))
	}
	if !(cfg.Threshold > 0 && cfg.Threshold < 1) {
		return nil, fmt.Errorf("certify: threshold %v outside (0,1)", cfg.Threshold)
	}
	if cfg.Confidence == 0 {
		cfg.Confidence = DefaultConfidence
	}
	if cfg.Confidence <= 0 || cfg.Confidence >= 1 {
		return nil, fmt.Errorf("certify: confidence %v outside (0,1)", cfg.Confidence)
	}
	if cfg.MaxSeeds == 0 {
		cfg.MaxSeeds = DefaultMaxSeeds
	}
	if cfg.MaxSeeds < 0 {
		return nil, fmt.Errorf("certify: max seeds %d must be positive", cfg.MaxSeeds)
	}
	if cfg.Batch == 0 {
		cfg.Batch = DefaultBatch
	}
	if cfg.Batch < 0 {
		return nil, fmt.Errorf("certify: batch %d must be positive", cfg.Batch)
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	overrides := cfg.Overrides
	if cfg.Duration > 0 {
		overrides.Duration = cfg.Duration
	}
	spec, err := overrides.Apply(base)
	if err != nil {
		return nil, fmt.Errorf("certify: %w", err)
	}
	if err := spec.Validate(); err != nil {
		return nil, fmt.Errorf("certify: cell %w", err)
	}
	policy, err := rta.CanonicalPolicySpec(spec.SwitchPolicy)
	if err != nil {
		return nil, fmt.Errorf("certify: %w", err)
	}
	p := cfg.FaultActivation
	switch {
	case p == 0:
		p = 1
	case p < 0 || p > 1:
		return nil, fmt.Errorf("certify: fault activation %v outside (0,1]", cfg.FaultActivation)
	}
	boost := cfg.Boost
	if boost == 0 {
		boost = 1
	}
	if boost < 1 {
		return nil, fmt.Errorf("certify: boost %v must be >= 1", cfg.Boost)
	}
	if boost > 1 {
		if p >= 1 {
			return nil, errors.New("certify: importance sampling needs a sporadic fault model (fault activation < 1)")
		}
		if !spec.Faults.Active() {
			return nil, fmt.Errorf("certify: importance sampling needs an active fault profile on %q", cfg.Scenario)
		}
		if boost*p >= 1 {
			return nil, fmt.Errorf("certify: boost·activation = %v must stay below 1 (absolute continuity of the nominal measure)", boost*p)
		}
	}
	cfg.FaultActivation, cfg.Boost = p, boost
	return &campaign{
		cfg:       cfg,
		spec:      spec,
		policy:    policy,
		p:         p,
		q:         math.Min(1, boost*p),
		observers: obs.Multi(cfg.Observers),
		rmax:      1,
	}, nil
}

// importance reports whether the sampler deviates from the nominal measure —
// the empirical-Bernstein path. Plain sporadic sampling (q == p) stays
// binomial and keeps the exact Clopper-Pearson interval.
func (c *campaign) importance() bool { return c.q > c.p }

// run is the sequential sweep: evaluate a batch of seeds through fleet.Map,
// fold the outcomes in seed order, recompute the interval, stop when it is
// conclusive against the threshold or the budget is spent. A cancelled batch
// is discarded whole, so the partial Result covers exactly the accounted
// batches — consistent at any worker count.
func (c *campaign) run(ctx context.Context) (*Result, error) {
	for c.seeds < c.cfg.MaxSeeds {
		n := c.cfg.Batch
		if rem := c.cfg.MaxSeeds - c.seeds; n > rem {
			n = rem
		}
		first := c.seeds
		keys := c.batchKeys(first, n)
		outs, _ := fleet.Map(ctx, c.cfg.Workers, n, func(ctx context.Context, i int) (runOutcome, error) {
			key := ""
			if keys != nil {
				key = keys[i]
			}
			return c.evaluateOne(ctx, first+i, key), nil
		})
		if err := ctx.Err(); err != nil {
			res := c.result(VerdictInconclusive)
			c.emitProgress(res)
			return res, err
		}
		for i := range outs {
			c.account(&outs[i])
		}
		verdict := c.verdict()
		res := c.result(verdict)
		c.emitProgress(res)
		if verdict != "" {
			return res, nil
		}
	}
	res := c.result(VerdictInconclusive)
	c.emitProgress(res)
	return res, nil
}

// runOutcome is one evaluated seed.
type runOutcome struct {
	crashed bool
	weight  float64 // likelihood-ratio weight (1 under the nominal sampler)
	wmax    float64 // largest weight any outcome of this run could carry
	err     error
}

// reusable reports whether the campaign's runs share fingerprints with
// ordinary sweep missions — a deterministic fault model (no thinning, no
// boost) means BuildWith applies no tweak, so the run is exactly the sweep
// mission of (spec, seed) and the result store applies.
func (c *campaign) reusable() bool {
	return c.cfg.Store != nil && c.p >= 1 && c.q <= 1
}

// batchKeys fingerprints the batch's seeds for the result store, or returns
// nil when the store does not apply (sporadic/boosted cells, no store). A
// fingerprint failure disables reuse for the batch rather than failing it —
// the campaign can always just simulate.
func (c *campaign) batchKeys(first, n int) []string {
	if !c.reusable() {
		return nil
	}
	seeds := make([]int64, n)
	for i := range seeds {
		seeds[i] = c.cfg.Seed + int64(first+i)*101
	}
	keys, err := c.spec.Fingerprints(seeds)
	if err != nil {
		return nil
	}
	return keys
}

// evaluateOne builds and simulates run idx. Runs inside a fleet worker. A
// non-empty key routes the run through the result store's singleflight
// group: a stored verdict is consumed without simulating, a miss elects this
// run the fill leader and its fresh verdict is stored for every later
// consumer (sweep jobs included).
func (c *campaign) evaluateOne(ctx context.Context, idx int, key string) runOutcome {
	seed := c.cfg.Seed + int64(idx)*101
	out := runOutcome{weight: 1, wmax: 1}
	var fill *store.Fill
	if key != "" {
		val, f := c.cfg.Store.Acquire(ctx, key)
		if f == nil && val != nil {
			if p, err := store.DecodePayload(val); err == nil {
				out.crashed = p.Metrics.Crashed
				return out
			}
			// Undecodable entry: fall through and simulate (without a fill —
			// the singleflight slot already resolved for this acquire).
		}
		fill = f // nil when cancelled while waiting: simulate uncached
	}
	var tweak func(*mission.StackConfig)
	if c.q < 1 || c.p < 1 {
		tweak = func(sc *mission.StackConfig) {
			sc.ACFaults, out.weight, out.wmax = thinFaults(sc.ACFaults, c.p, c.q, activationSeed(seed))
		}
	}
	rc, err := c.spec.BuildWith(seed, tweak)
	if err != nil {
		out.err = err
		if fill != nil {
			fill.Abort()
		}
		return out
	}
	rc.Context = ctx
	rc.Label = c.cfg.Scenario
	res, err := sim.Run(rc)
	if err != nil {
		out.err = err
		if fill != nil {
			fill.Abort()
		}
		return out
	}
	out.crashed = res.Metrics.Crashed
	if fill != nil {
		if raw, err := (store.Payload{Metrics: res.Metrics, Switches: res.Switches}).Encode(); err == nil {
			fill.Complete(ctx, raw)
		} else {
			fill.Abort()
		}
	}
	return out
}

// thinFaults samples the sporadic fault model: each scheduled window fires
// independently with probability q, and the run's likelihood-ratio weight
// under the nominal activation probability p is (p/q)^a·((1−p)/(1−q))^(w−a)
// for a active windows of w. The draw is a pure function of the activation
// seed, so thinning never depends on scheduling.
func thinFaults(windows []controller.Fault, p, q float64, seed int64) (kept []controller.Fault, weight, wmax float64) {
	w := len(windows)
	if w == 0 || (p >= 1 && q >= 1) {
		return windows, 1, 1
	}
	rng := rand.New(rand.NewSource(seed))
	kept = make([]controller.Fault, 0, w)
	for _, f := range windows {
		if rng.Float64() < q {
			kept = append(kept, f)
		}
	}
	a := len(kept)
	weight = 1.0
	if a > 0 {
		weight *= math.Pow(p/q, float64(a))
	}
	if w > a {
		weight *= math.Pow((1-p)/(1-q), float64(w-a))
	}
	if q < 1 {
		wmax = math.Pow((1-p)/(1-q), float64(w))
	} else {
		// All windows always fire: the only reachable weight is p^w.
		wmax = math.Pow(p, float64(w))
	}
	return kept, weight, wmax
}

// activationSeed derives the fault-activation RNG stream for a run seed —
// a splitmix64 step, so the stream is decorrelated from the run's own
// simulation RNG (which is seeded with the run seed directly).
func activationSeed(runSeed int64) int64 {
	z := uint64(runSeed) + 0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int64(z ^ (z >> 31))
}

// account folds one outcome into the campaign state, in seed order.
func (c *campaign) account(o *runOutcome) {
	c.seeds++
	if o.err != nil {
		c.errored++
		return
	}
	c.samples++
	if o.wmax > c.rmax {
		c.rmax = o.wmax
	}
	if o.crashed {
		c.crashes++
		c.sumY += o.weight
		c.sumY2 += o.weight * o.weight
	}
}

// estimate returns the current crash-probability estimate and its
// verdict-driving interval.
func (c *campaign) estimate() (est float64, iv Interval) {
	n := c.samples
	if n == 0 {
		return 0, Interval{Lo: 0, Hi: 1}
	}
	if !c.importance() {
		return float64(c.crashes) / float64(n), ClopperPearson(c.crashes, n, c.cfg.Confidence)
	}
	mean := c.sumY / float64(n)
	var variance float64
	if n > 1 {
		variance = (c.sumY2 - float64(n)*mean*mean) / float64(n-1)
		if variance < 0 {
			variance = 0
		}
	}
	return mean, bernstein(mean, variance, c.rmax, n, c.cfg.Confidence)
}

// verdict applies the stopping rule to the current interval: certified when
// the upper bound is below the threshold, refuted when the lower bound is
// above it, empty (keep sweeping) otherwise.
func (c *campaign) verdict() Verdict {
	if c.samples == 0 {
		return ""
	}
	_, iv := c.estimate()
	switch {
	case iv.Hi < c.cfg.Threshold:
		return VerdictCertified
	case iv.Lo > c.cfg.Threshold:
		return VerdictRefuted
	default:
		return ""
	}
}

// result assembles the deterministic summary for the current state.
func (c *campaign) result(verdict Verdict) *Result {
	est, iv := c.estimate()
	wilson := Interval{Lo: 0, Hi: 1}
	if c.samples > 0 {
		if c.importance() {
			wilson = wilsonAt(clamp01(est), c.samples, c.cfg.Confidence)
		} else {
			wilson = Wilson(c.crashes, c.samples, c.cfg.Confidence)
		}
	}
	res := &Result{
		Scenario:   c.cfg.Scenario,
		Policy:     c.policy,
		Threshold:  c.cfg.Threshold,
		Confidence: c.cfg.Confidence,
		Mode:       "plain",
		Method:     "clopper-pearson",
		Verdict:    verdict,
		Seeds:      c.seeds,
		MaxSeeds:   c.cfg.MaxSeeds,
		Crashes:    c.crashes,
		Errored:    c.errored,
		Estimate:   est,
		Lo:         iv.Lo,
		Hi:         iv.Hi,
		WilsonLo:   wilson.Lo,
		WilsonHi:   wilson.Hi,
		Batch:      c.cfg.Batch,
		Seed:       c.cfg.Seed,
	}
	if c.p < 1 {
		res.FaultActivation = c.p
	}
	if c.importance() {
		res.Mode, res.Method = "importance", "empirical-bernstein"
		res.Boost = c.cfg.Boost
	}
	return res
}

// emitProgress emits the post-batch CertifyProgress event. T is the campaign
// pseudo-clock: seeds-consumed as nanoseconds, monotone and deterministic.
func (c *campaign) emitProgress(res *Result) {
	if len(c.observers) == 0 {
		return
	}
	c.observers.OnEvent(obs.CertifyProgress{
		T:         time.Duration(res.Seeds),
		Scenario:  res.Scenario,
		Policy:    res.Policy,
		Seeds:     res.Seeds,
		MaxSeeds:  res.MaxSeeds,
		Crashes:   res.Crashes,
		Estimate:  res.Estimate,
		Lo:        res.Lo,
		Hi:        res.Hi,
		Threshold: res.Threshold,
		Verdict:   string(res.Verdict),
	})
}
