package certify

import (
	"math"
	"testing"
)

// Golden reference values computed independently with mpmath at 50 decimal
// digits (regularized incomplete beta inverted by root-finding; normal
// quantiles via erfinv). The 10/100 row cross-checks against R's
// binom.test (0.04900469, 0.17622260).
var goldenIntervals = []struct {
	k, n       int
	confidence float64
	cpLo, cpHi float64
	wLo, wHi   float64
}{
	{0, 50, 0.95, 0, 0.0711217364642, 0, 0.0713475991334},
	{50, 50, 0.95, 0.928878263536, 1, 0.928652400867, 1},
	{1, 10, 0.95, 0.00252857854446, 0.445016117028, 0.0178762130951, 0.404150026795},
	{10, 100, 0.95, 0.0490046892215, 0.17622259774, 0.0552291370607, 0.174365661505},
	{3, 1000, 0.99, 0.000338144529066, 0.0109337774204, 0.000758101231061, 0.0117935166829},
	{7, 20, 0.90, 0.177310917574, 0.558034511315, 0.202260040057, 0.533487311152},
	{2, 2000, 0.95, 0.000121127590557, 0.00360762856983, 0.000274278917652, 0.00363893426904},
	{0, 1, 0.95, 0, 0.975, 0, 0.793450685623},
	{1, 1, 0.95, 0.025, 1, 0.206549314377, 1},
	{5, 10, 0.99, 0.128310553935, 0.871689446065, 0.184225518247, 0.815774481753},
	{0, 2981, 0.95, 0, 0.00123669841261, 0, 0.00128698923333},
}

const intervalTol = 1e-9

func TestClopperPearsonGolden(t *testing.T) {
	for _, g := range goldenIntervals {
		iv := ClopperPearson(g.k, g.n, g.confidence)
		if math.Abs(iv.Lo-g.cpLo) > intervalTol || math.Abs(iv.Hi-g.cpHi) > intervalTol {
			t.Errorf("ClopperPearson(%d, %d, %v) = [%.12f, %.12f], want [%.12f, %.12f]",
				g.k, g.n, g.confidence, iv.Lo, iv.Hi, g.cpLo, g.cpHi)
		}
	}
}

func TestWilsonGolden(t *testing.T) {
	for _, g := range goldenIntervals {
		iv := Wilson(g.k, g.n, g.confidence)
		if math.Abs(iv.Lo-g.wLo) > intervalTol || math.Abs(iv.Hi-g.wHi) > intervalTol {
			t.Errorf("Wilson(%d, %d, %v) = [%.12f, %.12f], want [%.12f, %.12f]",
				g.k, g.n, g.confidence, iv.Lo, iv.Hi, g.wLo, g.wHi)
		}
	}
}

// TestClopperPearsonEdgeClosedForms pins the k=0 and k=n boundary rows to
// their independent closed forms: at k=0 the upper bound is 1−(α/2)^(1/n),
// at k=n the lower bound is (α/2)^(1/n), and the touched boundary is exact.
func TestClopperPearsonEdgeClosedForms(t *testing.T) {
	for _, n := range []int{1, 2, 10, 100, 5000} {
		for _, conf := range []float64{0.90, 0.95, 0.99} {
			alpha2 := (1 - conf) / 2
			zero := ClopperPearson(0, n, conf)
			if zero.Lo != 0 {
				t.Errorf("CP(0, %d, %v).Lo = %v, want exactly 0", n, conf, zero.Lo)
			}
			if want := 1 - math.Pow(alpha2, 1/float64(n)); math.Abs(zero.Hi-want) > intervalTol {
				t.Errorf("CP(0, %d, %v).Hi = %.12f, want %.12f", n, conf, zero.Hi, want)
			}
			full := ClopperPearson(n, n, conf)
			if full.Hi != 1 {
				t.Errorf("CP(%d, %d, %v).Hi = %v, want exactly 1", n, n, conf, full.Hi)
			}
			if want := math.Pow(alpha2, 1/float64(n)); math.Abs(full.Lo-want) > intervalTol {
				t.Errorf("CP(%d, %d, %v).Lo = %.12f, want %.12f", n, n, conf, full.Lo, want)
			}
		}
	}
}

func TestNormalQuantileGolden(t *testing.T) {
	for _, g := range []struct{ conf, z float64 }{
		{0.90, 1.64485362695147},
		{0.95, 1.95996398454005},
		{0.99, 2.5758293035489},
	} {
		if z := normalQuantile(g.conf); math.Abs(z-g.z) > 1e-10 {
			t.Errorf("normalQuantile(%v) = %.12f, want %.12f", g.conf, z, g.z)
		}
	}
}

// TestIntervalMonotoneInConfidence is the coverage property: raising the
// confidence level can only widen an interval — lower bounds are
// non-increasing and upper bounds non-decreasing in the confidence level,
// for both constructions, across a sweep of (k, n) cells. The sweep also
// asserts the basic shape invariants (ordered, inside [0,1], containing the
// point estimate).
func TestIntervalMonotoneInConfidence(t *testing.T) {
	levels := []float64{0.50, 0.80, 0.90, 0.95, 0.975, 0.99, 0.999}
	cells := []struct{ k, n int }{
		{0, 1}, {1, 1}, {0, 7}, {7, 7}, {1, 7}, {3, 10}, {5, 50},
		{0, 400}, {13, 400}, {400, 400}, {199, 400},
	}
	for _, c := range cells {
		for name, f := range map[string]func(k, n int, conf float64) Interval{
			"clopper-pearson": ClopperPearson,
			"wilson":          Wilson,
		} {
			prev := Interval{Lo: 2, Hi: -1}
			first := true
			for _, conf := range levels {
				iv := f(c.k, c.n, conf)
				phat := float64(c.k) / float64(c.n)
				if iv.Lo < 0 || iv.Hi > 1 || iv.Lo > iv.Hi {
					t.Fatalf("%s(%d, %d, %v) malformed: [%v, %v]", name, c.k, c.n, conf, iv.Lo, iv.Hi)
				}
				if phat < iv.Lo-intervalTol || phat > iv.Hi+intervalTol {
					t.Fatalf("%s(%d, %d, %v) = [%v, %v] excludes point estimate %v",
						name, c.k, c.n, conf, iv.Lo, iv.Hi, phat)
				}
				if !first && (iv.Lo > prev.Lo+intervalTol || iv.Hi < prev.Hi-intervalTol) {
					t.Fatalf("%s(%d, %d): interval narrowed raising confidence to %v: [%v, %v] after [%v, %v]",
						name, c.k, c.n, conf, iv.Lo, iv.Hi, prev.Lo, prev.Hi)
				}
				prev, first = iv, false
			}
		}
	}
}

// TestBernsteinShape sanity-checks the empirical-Bernstein bound: it is
// centred on the mean, widens with variance, range and confidence, shrinks
// with n, and degenerates to [0,1] below two samples.
func TestBernsteinShape(t *testing.T) {
	if iv := bernstein(0.5, 0.25, 1, 1, 0.95); iv.Lo != 0 || iv.Hi != 1 {
		t.Fatalf("bernstein with n=1 = [%v, %v], want [0, 1]", iv.Lo, iv.Hi)
	}
	base := bernstein(0.3, 0.01, 1, 200, 0.95)
	if base.Lo >= 0.3 || base.Hi <= 0.3 {
		t.Fatalf("bernstein interval [%v, %v] does not contain the mean", base.Lo, base.Hi)
	}
	wider := bernstein(0.3, 0.04, 1, 200, 0.95)
	if wider.Hi-wider.Lo <= base.Hi-base.Lo {
		t.Fatalf("bernstein did not widen with variance: [%v, %v] vs [%v, %v]", wider.Lo, wider.Hi, base.Lo, base.Hi)
	}
	tighter := bernstein(0.3, 0.01, 1, 800, 0.95)
	if tighter.Hi-tighter.Lo >= base.Hi-base.Lo {
		t.Fatalf("bernstein did not shrink with n: [%v, %v] vs [%v, %v]", tighter.Lo, tighter.Hi, base.Lo, base.Hi)
	}
	conf := bernstein(0.3, 0.01, 1, 200, 0.99)
	if conf.Hi-conf.Lo <= base.Hi-base.Lo {
		t.Fatalf("bernstein did not widen with confidence: [%v, %v] vs [%v, %v]", conf.Lo, conf.Hi, base.Lo, base.Hi)
	}
	ranged := bernstein(0.3, 0.01, 4, 200, 0.95)
	if ranged.Hi-ranged.Lo <= base.Hi-base.Lo {
		t.Fatalf("bernstein did not widen with range: [%v, %v] vs [%v, %v]", ranged.Lo, ranged.Hi, base.Lo, base.Hi)
	}
}

func TestIntervalArgPanics(t *testing.T) {
	for _, call := range []func(){
		func() { ClopperPearson(1, 0, 0.95) },
		func() { ClopperPearson(-1, 10, 0.95) },
		func() { ClopperPearson(11, 10, 0.95) },
		func() { ClopperPearson(1, 10, 1.0) },
		func() { Wilson(1, 10, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("malformed interval args did not panic")
				}
			}()
			call()
		}()
	}
}
