package certify

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/falsify"
	"repro/internal/geom"
	"repro/internal/obs"
	"repro/internal/scenario"
)

// plantedScenario registers (once) a deliberately unsafe cell: scheduling
// jitter on every node, a tight planning margin and periodic fault windows.
// Roughly 40% of seeds crash, so the cell is decisively refutable against a
// low threshold within a couple of batches.
func plantedScenario(t *testing.T) string {
	t.Helper()
	fixturesOnce.Do(registerFixtures)
	if fixturesErr != nil {
		t.Fatalf("register fixtures: %v", fixturesErr)
	}
	return "certify-test/planted"
}

// safeScenario registers (once) a benign cell: the same tour with default
// margins and no fault or jitter profile. No seed crashes, so the cell
// certifies against a generous threshold in the first batch.
func safeScenario(t *testing.T) string {
	t.Helper()
	fixturesOnce.Do(registerFixtures)
	if fixturesErr != nil {
		t.Fatalf("register fixtures: %v", fixturesErr)
	}
	return "certify-test/safe"
}

var (
	fixturesOnce sync.Once
	fixturesErr  error
)

func registerFixtures() {
	tour := []geom.Vec3{geom.V(3, 3, 2), geom.V(46, 3, 2.5), geom.V(46, 46, 2)}
	fixturesErr = errors.Join(
		scenario.Register(scenario.Spec{
			Name:        "certify-test/planted",
			Description: "test fixture: jitter on all nodes at a tight margin plus periodic faults",
			Targets:     tour,
			PlanMargin:  0.45,
			JitterProb:  0.05,
			Faults: scenario.FaultProfile{
				First: 500 * time.Millisecond,
				Every: 2 * time.Second,
				Len:   1500 * time.Millisecond,
				Dir:   geom.V(1, 0.4, 0),
			},
			Duration: 4 * time.Second,
		}),
		scenario.Register(scenario.Spec{
			Name:        "certify-test/safe",
			Description: "test fixture: the same tour, unstressed",
			Targets:     tour,
			Duration:    2 * time.Second,
		}),
	)
}

// certifyRecorder captures the CertifyProgress stream for assertions.
type certifyRecorder struct {
	progress []obs.CertifyProgress
}

func (r *certifyRecorder) Interests() obs.KindSet { return obs.Kinds(obs.KindCertifyProgress) }

func (r *certifyRecorder) OnEvent(ev obs.Event) {
	if e, ok := ev.(obs.CertifyProgress); ok {
		r.progress = append(r.progress, e)
	}
}

// The planted high-crash-rate cell must be refuted against a low threshold
// within a small seed budget, in plain mode, with a consistent event stream.
func TestPlantedCellRefutedPlain(t *testing.T) {
	rec := &certifyRecorder{}
	res, err := Certify(context.Background(), Config{
		Scenario:  plantedScenario(t),
		Threshold: 0.05,
		MaxSeeds:  128,
		Batch:     16,
		Observers: []obs.Observer{rec},
	})
	if err != nil {
		t.Fatalf("Certify: %v", err)
	}
	if res.Verdict != VerdictRefuted {
		t.Fatalf("verdict = %q, want refuted (estimate %v in [%v, %v] after %d seeds)",
			res.Verdict, res.Estimate, res.Lo, res.Hi, res.Seeds)
	}
	if res.Seeds >= res.MaxSeeds {
		t.Fatalf("refutation consumed the whole budget (%d seeds)", res.Seeds)
	}
	if res.Lo <= res.Threshold {
		t.Fatalf("refuted with Lo %v <= threshold %v", res.Lo, res.Threshold)
	}
	if res.Mode != "plain" || res.Method != "clopper-pearson" {
		t.Fatalf("mode/method = %q/%q, want plain/clopper-pearson", res.Mode, res.Method)
	}
	if res.Policy != "soter-fig9" {
		t.Fatalf("policy = %q, want the default soter-fig9", res.Policy)
	}
	if len(rec.progress) != res.Seeds/res.Batch {
		t.Fatalf("%d progress events for %d seeds at batch %d", len(rec.progress), res.Seeds, res.Batch)
	}
	last := rec.progress[len(rec.progress)-1]
	if last.Verdict != string(VerdictRefuted) || last.Seeds != res.Seeds || last.Crashes != res.Crashes {
		t.Fatalf("terminal progress %+v does not match result %+v", last, res)
	}
	for i, ev := range rec.progress {
		if ev.Seeds != (i+1)*res.Batch || ev.Threshold != res.Threshold {
			t.Fatalf("progress %d malformed: %+v", i, ev)
		}
		if i < len(rec.progress)-1 && ev.Verdict != "" {
			t.Fatalf("non-terminal progress %d carries verdict %q", i, ev.Verdict)
		}
	}
}

// The same planted cell must be refuted by the importance-sampling mode: a
// sporadic fault model with a boosted sampler, the reweighted estimator and
// the empirical-Bernstein interval.
func TestPlantedCellRefutedImportance(t *testing.T) {
	res, err := Certify(context.Background(), Config{
		Scenario:        plantedScenario(t),
		Threshold:       0.02,
		Confidence:      0.90,
		MaxSeeds:        320,
		Batch:           64,
		FaultActivation: 0.8,
		Boost:           1.05,
	})
	if err != nil {
		t.Fatalf("Certify: %v", err)
	}
	if res.Mode != "importance" || res.Method != "empirical-bernstein" {
		t.Fatalf("mode/method = %q/%q, want importance/empirical-bernstein", res.Mode, res.Method)
	}
	if res.Verdict != VerdictRefuted {
		t.Fatalf("verdict = %q, want refuted (estimate %v in [%v, %v] after %d seeds)",
			res.Verdict, res.Estimate, res.Lo, res.Hi, res.Seeds)
	}
	if res.Seeds >= res.MaxSeeds {
		t.Fatalf("refutation consumed the whole budget (%d seeds)", res.Seeds)
	}
	if res.FaultActivation != 0.8 || res.Boost != 1.05 {
		t.Fatalf("fault model not echoed: activation %v boost %v", res.FaultActivation, res.Boost)
	}
}

// A cell whose true rate is far from the threshold must stop well before the
// seed budget — the early-stopping correctness test.
func TestSafeCellCertifiedEarly(t *testing.T) {
	res, err := Certify(context.Background(), Config{
		Scenario:   safeScenario(t),
		Threshold:  0.5,
		Confidence: 0.90,
		MaxSeeds:   64,
		Batch:      8,
	})
	if err != nil {
		t.Fatalf("Certify: %v", err)
	}
	if res.Verdict != VerdictCertified {
		t.Fatalf("verdict = %q, want certified (estimate %v in [%v, %v] after %d seeds)",
			res.Verdict, res.Estimate, res.Lo, res.Hi, res.Seeds)
	}
	if res.Seeds != 8 {
		t.Fatalf("certified after %d seeds, want the first batch of 8", res.Seeds)
	}
	if res.Crashes != 0 || res.Estimate != 0 || res.Lo != 0 {
		t.Fatalf("safe cell crashed: %+v", res)
	}
	if res.Hi >= res.Threshold {
		t.Fatalf("certified with Hi %v >= threshold %v", res.Hi, res.Threshold)
	}
}

// cancelAfterFirstBatch cancels the campaign context on the first progress
// event, so the second batch is discarded whole.
type cancelAfterFirstBatch struct {
	cancel context.CancelFunc
}

func (c *cancelAfterFirstBatch) Interests() obs.KindSet { return obs.Kinds(obs.KindCertifyProgress) }
func (c *cancelAfterFirstBatch) OnEvent(obs.Event)      { c.cancel() }

// Mid-campaign cancellation must return a consistent partial Result marked
// inconclusive: exactly the accounted batches, with the same estimator state
// an uncancelled campaign limited to that budget reports.
func TestCancellationPartialResult(t *testing.T) {
	base := Config{
		Scenario:  plantedScenario(t),
		Threshold: 0.4, // straddled by the planted cell's interval for many batches
		MaxSeeds:  4096,
		Batch:     16,
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cfg := base
	cfg.Observers = []obs.Observer{&cancelAfterFirstBatch{cancel: cancel}}
	res, err := Certify(ctx, cfg)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res == nil {
		t.Fatal("cancellation returned no partial result")
	}
	if res.Verdict != VerdictInconclusive {
		t.Fatalf("cancelled verdict = %q, want inconclusive-at-budget", res.Verdict)
	}
	if res.Seeds != base.Batch {
		t.Fatalf("cancelled campaign accounted %d seeds, want exactly the first batch of %d", res.Seeds, base.Batch)
	}
	// The partial state must equal an uncancelled campaign truncated at the
	// same budget.
	ref := base
	ref.MaxSeeds = base.Batch
	want, err := Certify(context.Background(), ref)
	if err != nil {
		t.Fatalf("reference campaign: %v", err)
	}
	if res.Crashes != want.Crashes || res.Estimate != want.Estimate ||
		res.Lo != want.Lo || res.Hi != want.Hi || res.Errored != want.Errored {
		t.Fatalf("partial result diverged from truncated reference:\n  cancelled: %+v\n  reference: %+v", res, want)
	}
}

func TestConfigValidation(t *testing.T) {
	planted := plantedScenario(t)
	safe := safeScenario(t)
	cases := []struct {
		name string
		cfg  Config
		want string
	}{
		{"no scenario", Config{Threshold: 0.1}, "no scenario"},
		{"unknown scenario", Config{Scenario: "nope", Threshold: 0.1}, "unknown scenario"},
		{"zero threshold", Config{Scenario: planted}, "threshold"},
		{"threshold one", Config{Scenario: planted, Threshold: 1}, "threshold"},
		{"bad confidence", Config{Scenario: planted, Threshold: 0.1, Confidence: 1.5}, "confidence"},
		{"negative budget", Config{Scenario: planted, Threshold: 0.1, MaxSeeds: -1}, "max seeds"},
		{"negative batch", Config{Scenario: planted, Threshold: 0.1, Batch: -1}, "batch"},
		{"bad activation", Config{Scenario: planted, Threshold: 0.1, FaultActivation: 1.5}, "fault activation"},
		{"boost below one", Config{Scenario: planted, Threshold: 0.1, Boost: 0.5}, "boost"},
		{"boost without sporadic model", Config{Scenario: planted, Threshold: 0.1, Boost: 2}, "sporadic"},
		{"boost without faults", Config{Scenario: safe, Threshold: 0.1, FaultActivation: 0.5, Boost: 1.5}, "fault profile"},
		{"boost breaks continuity", Config{Scenario: planted, Threshold: 0.1, FaultActivation: 0.5, Boost: 2}, "below 1"},
		{"bad policy", Config{Scenario: planted, Threshold: 0.1, Overrides: overridePolicy("nope")}, "policy"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.cfg.Validate()
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Validate() = %v, want error containing %q", err, tc.want)
			}
		})
	}
	if err := (Config{Scenario: planted, Threshold: 0.1}).Validate(); err != nil {
		t.Fatalf("minimal valid config rejected: %v", err)
	}
}

// TestMatrix sweeps a 2×2 grid with a tiny budget and checks ordering,
// tallies and the error-cell path (importance sampling over the fault-free
// fixture cannot run, but must not abort the sweep).
func TestMatrix(t *testing.T) {
	planted := plantedScenario(t)
	safe := safeScenario(t)
	mr, err := Matrix(context.Background(), MatrixConfig{
		Scenarios: []string{safe, planted},
		Policies:  []string{"soter-fig9", "always-sc"},
		Cell: Config{
			Threshold:  0.5,
			Confidence: 0.90,
			MaxSeeds:   8,
			Batch:      8,
		},
	})
	if err != nil {
		t.Fatalf("Matrix: %v", err)
	}
	if len(mr.Cells) != 4 {
		t.Fatalf("matrix has %d cells, want 4", len(mr.Cells))
	}
	wantOrder := []struct{ sc, pol string }{
		{safe, "soter-fig9"}, {safe, "always-sc"},
		{planted, "soter-fig9"}, {planted, "always-sc"},
	}
	for i, w := range wantOrder {
		if mr.Cells[i].Scenario != w.sc || mr.Cells[i].Policy != w.pol {
			t.Fatalf("cell %d is (%s, %s), want (%s, %s)", i, mr.Cells[i].Scenario, mr.Cells[i].Policy, w.sc, w.pol)
		}
	}
	if got := mr.Certified + mr.Refuted + mr.Inconclusive + mr.Errored; got != len(mr.Cells) {
		t.Fatalf("tallies sum to %d over %d cells", got, len(mr.Cells))
	}
	if mr.Certified < 2 {
		t.Fatalf("expected at least the two safe cells certified, got %d (cells %+v)", mr.Certified, mr.Cells)
	}

	// Importance sampling over the fault-free fixture: an error cell, not an
	// aborted sweep.
	mr, err = Matrix(context.Background(), MatrixConfig{
		Scenarios: []string{safe},
		Policies:  []string{"soter-fig9"},
		Cell: Config{
			Threshold:       0.5,
			MaxSeeds:        8,
			Batch:           8,
			FaultActivation: 0.5,
			Boost:           1.5,
		},
	})
	if err != nil {
		t.Fatalf("Matrix with error cell: %v", err)
	}
	if len(mr.Cells) != 1 || mr.Cells[0].Verdict != VerdictError || mr.Errored != 1 {
		t.Fatalf("error cell not recorded: %+v", mr)
	}
	if mr.Cells[0].Err == "" {
		t.Fatal("error cell carries no message")
	}
}

// overridePolicy builds the Overrides delta selecting a policy.
func overridePolicy(pol string) falsify.Params {
	return falsify.Params{Policy: pol}
}
