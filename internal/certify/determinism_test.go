package certify

import (
	"bytes"
	"context"
	"encoding/json"
	"runtime"
	"testing"

	"repro/internal/obs"
)

// TestCertifyDeterministicAcrossWorkers pins the determinism contract: the
// full Result — verdict, estimate, CI bounds, seeds consumed — and the
// CertifyProgress stream are byte-identical at workers 1, 4 and GOMAXPROCS,
// for both the plain and the importance-sampled estimator.
func TestCertifyDeterministicAcrossWorkers(t *testing.T) {
	cells := []struct {
		name string
		cfg  Config
	}{
		{"plain", Config{
			Scenario:  plantedScenario(t),
			Threshold: 0.05,
			MaxSeeds:  48,
			Batch:     16,
		}},
		{"importance", Config{
			Scenario:        plantedScenario(t),
			Threshold:       0.05,
			MaxSeeds:        64,
			Batch:           32,
			FaultActivation: 0.8,
			Boost:           1.05,
		}},
	}
	workerCounts := []int{1, 4, runtime.GOMAXPROCS(0)}
	for _, cell := range cells {
		t.Run(cell.name, func(t *testing.T) {
			var refResult, refEvents []byte
			for _, workers := range workerCounts {
				rec := &certifyRecorder{}
				cfg := cell.cfg
				cfg.Workers = workers
				cfg.Observers = []obs.Observer{rec}
				res, err := Certify(context.Background(), cfg)
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				gotResult, err := json.Marshal(res)
				if err != nil {
					t.Fatal(err)
				}
				gotEvents, err := json.Marshal(rec.progress)
				if err != nil {
					t.Fatal(err)
				}
				if refResult == nil {
					refResult, refEvents = gotResult, gotEvents
					if res.Verdict == "" {
						t.Fatalf("campaign ended without a verdict: %s", gotResult)
					}
					continue
				}
				if !bytes.Equal(gotResult, refResult) {
					t.Errorf("workers=%d result diverged:\n  got  %s\n  want %s", workers, gotResult, refResult)
				}
				if !bytes.Equal(gotEvents, refEvents) {
					t.Errorf("workers=%d progress stream diverged:\n  got  %s\n  want %s", workers, gotEvents, refEvents)
				}
			}
		})
	}
}
