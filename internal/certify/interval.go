// Package certify is the statistical certification engine of the
// reproduction: it turns "is this (scenario, policy) cell safe?" from a
// single-seed anecdote into a sequential hypothesis test. A certification
// campaign sweeps seeds in batches through fleet.Map, maintains a
// crash-probability estimator with exact two-sided confidence intervals
// (Clopper-Pearson, plus Wilson for display), and stops as soon as the
// interval is conclusive against the target threshold — certified when the
// upper bound falls below it, refuted when the lower bound rises above it,
// inconclusive when the seed budget runs out first.
//
// For rare-event cells the engine has an importance-sampling mode: the cell's
// fault profile is treated as sporadic (each scheduled fault window fires
// with probability FaultActivation under the nominal measure), runs are
// sampled with the activation probability boosted by Boost, and each run's
// crash indicator is reweighted by the exact likelihood ratio. The weighted
// estimator's interval is an empirical-Bernstein bound (the weighted sum is
// no longer binomial), so cells whose nominal crash probability is far below
// the threshold certify in thousands rather than millions of seeds.
//
// Certification results are deterministic: verdict, estimate, interval and
// seeds-consumed are pure functions of (cell, threshold, confidence, seed,
// batch size) and byte-identical at any worker count, because run seeds and
// fault-activation draws derive only from the campaign seed and the run
// index, batches are evaluated through fleet.Map (index-ordered results),
// and accounting folds outcomes in index order.
package certify

import (
	"fmt"
	"math"
)

// Interval is a two-sided confidence interval over a probability.
type Interval struct {
	Lo float64 `json:"lo"`
	Hi float64 `json:"hi"`
}

// ClopperPearson returns the exact two-sided Clopper-Pearson interval for k
// successes in n Bernoulli trials at the given confidence level (e.g. 0.95).
// The bounds are the beta-quantile closed form: lo is the α/2 quantile of
// Beta(k, n−k+1) (0 when k = 0), hi the 1−α/2 quantile of Beta(k+1, n−k)
// (1 when k = n). Exactness means coverage is at least the confidence level
// for every true p — the conservative direction a certification verdict
// needs.
func ClopperPearson(k, n int, confidence float64) Interval {
	checkArgs(k, n, confidence)
	alpha := 1 - confidence
	iv := Interval{Lo: 0, Hi: 1}
	if k > 0 {
		iv.Lo = betaQuantile(alpha/2, float64(k), float64(n-k+1))
	}
	if k < n {
		iv.Hi = betaQuantile(1-alpha/2, float64(k+1), float64(n-k))
	}
	return iv
}

// Wilson returns the Wilson score interval for k successes in n trials at the
// given confidence level. It is narrower than Clopper-Pearson (approximate
// rather than exact coverage) and is reported for display next to the exact
// interval that drives verdicts.
func Wilson(k, n int, confidence float64) Interval {
	checkArgs(k, n, confidence)
	return wilsonAt(float64(k)/float64(n), n, confidence)
}

// wilsonAt is Wilson's interval around an arbitrary point estimate in [0,1].
// The importance-sampling path uses it for its display interval, where the
// estimate is a weighted mean rather than k/n.
func wilsonAt(phat float64, n int, confidence float64) Interval {
	z := normalQuantile(confidence)
	z2n := z * z / float64(n)
	denom := 1 + z2n
	center := (phat + z2n/2) / denom
	half := z * math.Sqrt(phat*(1-phat)/float64(n)+z2n/(4*float64(n))) / denom
	return Interval{
		Lo: clamp01(center - half),
		Hi: clamp01(center + half),
	}
}

// bernstein returns the empirical-Bernstein interval around the mean of n
// samples in [0, rangeMax] with (unbiased) sample variance v, at the given
// two-sided confidence level: with probability ≥ confidence the true mean is
// within sqrt(2·v·ln(3/δ)/n) + 3·rangeMax·ln(3/δ)/n of the sample mean
// (Maurer & Pontil 2009), δ = 1 − confidence. Variance-adaptive: when the
// boosted sampler makes crashes common, v stays small and the interval
// shrinks at the fast sqrt(v/n) rate despite the large weight range.
func bernstein(mean, v, rangeMax float64, n int, confidence float64) Interval {
	if n < 2 {
		return Interval{Lo: 0, Hi: 1}
	}
	logTerm := math.Log(3 / (1 - confidence))
	half := math.Sqrt(2*v*logTerm/float64(n)) + 3*rangeMax*logTerm/float64(n)
	return Interval{
		Lo: clamp01(mean - half),
		Hi: clamp01(mean + half),
	}
}

// normalQuantile returns z such that a standard normal lies in [−z, z] with
// the given probability: z = √2·erfinv(confidence). Deterministic across
// platforms (math.Erfinv is pure Go).
func normalQuantile(confidence float64) float64 {
	return math.Sqrt2 * math.Erfinv(confidence)
}

// checkArgs guards the public interval constructors; interval math on
// malformed counts is always a caller bug, never data-dependent.
func checkArgs(k, n int, confidence float64) {
	if n <= 0 || k < 0 || k > n {
		panic(fmt.Sprintf("certify: interval over k=%d n=%d", k, n))
	}
	if confidence <= 0 || confidence >= 1 {
		panic(fmt.Sprintf("certify: confidence %v outside (0,1)", confidence))
	}
}

func clamp01(v float64) float64 {
	switch {
	case v < 0:
		return 0
	case v > 1:
		return 1
	default:
		return v
	}
}

// betaQuantile inverts the regularized incomplete beta function: the x with
// I_x(a, b) = p. Bisection rather than Newton — ~90 halvings reach full
// float64 resolution, monotone convergence, and bit-for-bit identical results
// on every platform, which the determinism contract cares about more than the
// last factor of two in speed.
func betaQuantile(p, a, b float64) float64 {
	if p <= 0 {
		return 0
	}
	if p >= 1 {
		return 1
	}
	lo, hi := 0.0, 1.0
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if mid == lo || mid == hi {
			break
		}
		if regIncBeta(a, b, mid) < p {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// regIncBeta is the regularized incomplete beta function I_x(a, b), by the
// standard continued-fraction expansion (modified Lentz), using the symmetry
// I_x(a,b) = 1 − I_{1−x}(b,a) to keep the fraction in its fast-converging
// region.
func regIncBeta(a, b, x float64) float64 {
	if x <= 0 {
		return 0
	}
	if x >= 1 {
		return 1
	}
	// Prefactor x^a (1−x)^b / (a·B(a,b)), in log space.
	lbeta, _ := math.Lgamma(a + b)
	lga, _ := math.Lgamma(a)
	lgb, _ := math.Lgamma(b)
	front := math.Exp(lbeta - lga - lgb + a*math.Log(x) + b*math.Log(1-x))
	if x < (a+1)/(a+b+2) {
		return front * betaCF(a, b, x) / a
	}
	return 1 - front*betaCF(b, a, 1-x)/b
}

// betaCF evaluates the incomplete-beta continued fraction by the modified
// Lentz method.
func betaCF(a, b, x float64) float64 {
	const (
		maxIter = 300
		eps     = 1e-15
		tiny    = 1e-300
	)
	qab, qap, qam := a+b, a+1, a-1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < tiny {
		d = tiny
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		fm := float64(m)
		m2 := 2 * fm
		aa := fm * (b - fm) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = 1 + aa/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		h *= d * c
		aa = -(a + fm) * (qab + fm) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = 1 + aa/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return h
}
