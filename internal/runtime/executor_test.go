package runtime

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"

	"repro/internal/node"
	"repro/internal/obs"
	"repro/internal/pubsub"
	"repro/internal/rta"
)

// counterNode publishes an incrementing counter on out every period.
func counterNode(t *testing.T, name string, period time.Duration, out pubsub.TopicName) *node.Node {
	t.Helper()
	n, err := node.New(name, period, nil, []pubsub.TopicName{out},
		func(st node.State, _ pubsub.Valuation) (node.State, pubsub.Valuation, error) {
			c, _ := st.(int)
			return c + 1, pubsub.Valuation{out: c + 1}, nil
		},
		node.WithInit(func() node.State { return 0 }))
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// echoNode copies its input topic to its output topic.
func echoNode(t *testing.T, name string, period time.Duration, in, out pubsub.TopicName) *node.Node {
	t.Helper()
	n, err := node.New(name, period, []pubsub.TopicName{in}, []pubsub.TopicName{out},
		func(st node.State, v pubsub.Valuation) (node.State, pubsub.Valuation, error) {
			return st, pubsub.Valuation{out: v[in]}, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// testModule builds an RTA module over a shared "x" topic where AC writes
// "AC" and SC writes "SC" on topic "who", switching on the boolean topic
// "danger" (ttf) and "calm" (safer).
func testModule(t *testing.T, delta time.Duration) *rta.Module {
	t.Helper()
	mk := func(name, val string) *node.Node {
		n, err := node.New(name, delta, []pubsub.TopicName{"danger", "calm"}, []pubsub.TopicName{"who"},
			func(st node.State, _ pubsub.Valuation) (node.State, pubsub.Valuation, error) {
				return st, pubsub.Valuation{"who": val}, nil
			})
		if err != nil {
			t.Fatal(err)
		}
		return n
	}
	boolTopic := func(v pubsub.Valuation, name pubsub.TopicName) bool {
		b, _ := v[name].(bool)
		return b
	}
	m, err := rta.NewModule(rta.Decl{
		Name:      "tm",
		AC:        mk("tm.ac", "AC"),
		SC:        mk("tm.sc", "SC"),
		Delta:     delta,
		TTF2Delta: func(v pubsub.Valuation) bool { return boolTopic(v, "danger") },
		InSafer:   func(v pubsub.Valuation) bool { return boolTopic(v, "calm") },
		Safe:      func(v pubsub.Valuation) bool { return !boolTopic(v, "crashed") },
		Monitored: []pubsub.TopicName{"danger", "calm", "crashed"},
		DMPhase:   delta, // decide at Δ, 2Δ, ... for easy reasoning in tests
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func newTestExec(t *testing.T, m *rta.Module, opts ...Option) *Executor {
	t.Helper()
	sys, err := rta.NewSystem([]*rta.Module{m}, nil)
	if err != nil {
		t.Fatal(err)
	}
	exec, err := New(sys, []pubsub.Topic{
		{Name: "danger", Default: false},
		{Name: "calm", Default: false},
		{Name: "crashed", Default: false},
	}, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return exec
}

func TestInitialConfiguration(t *testing.T) {
	m := testModule(t, 100*time.Millisecond)
	exec := newTestExec(t, m)
	// OE0: SC enabled, AC disabled; mode = SC; ct = 0.
	if exec.OutputEnabled("tm.ac") {
		t.Error("AC output must start disabled")
	}
	if !exec.OutputEnabled("tm.sc") {
		t.Error("SC output must start enabled")
	}
	mode, err := exec.Mode("tm")
	if err != nil || mode != rta.ModeSC {
		t.Errorf("initial mode = %v, %v", mode, err)
	}
	if exec.Now() != 0 {
		t.Errorf("ct0 = %v", exec.Now())
	}
}

func TestOutputGating(t *testing.T) {
	m := testModule(t, 100*time.Millisecond)
	exec := newTestExec(t, m)
	// At t=100ms: DM fires first (mode stays SC since calm=false), then both
	// controllers fire; only SC's output lands on the topic.
	if err := exec.RunUntil(100 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if v, _ := exec.Topics().Get("who"); v != "SC" {
		t.Errorf("who = %v, want SC", v)
	}
	// Signal calm: at the next DM tick the mode flips to AC, whose output
	// takes over.
	if err := exec.Topics().Set("calm", true); err != nil {
		t.Fatal(err)
	}
	if err := exec.RunUntil(200 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if mode, _ := exec.Mode("tm"); mode != rta.ModeAC {
		t.Errorf("mode = %v, want AC", mode)
	}
	if v, _ := exec.Topics().Get("who"); v != "AC" {
		t.Errorf("who = %v, want AC", v)
	}
	// Danger: the DM switches back to SC.
	if err := exec.Topics().Set("danger", true); err != nil {
		t.Fatal(err)
	}
	if err := exec.RunUntil(300 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if v, _ := exec.Topics().Get("who"); v != "SC" {
		t.Errorf("who after danger = %v, want SC", v)
	}
	// Switches were recorded in order.
	sw := exec.Switches()
	if len(sw) != 2 || sw[0].To != rta.ModeAC || sw[1].To != rta.ModeSC {
		t.Errorf("switches = %v", sw)
	}
}

func TestSwitchHook(t *testing.T) {
	m := testModule(t, 100*time.Millisecond)
	var got []Switch
	exec := newTestExec(t, m, WithSwitchHook(func(s Switch) { got = append(got, s) }))
	if err := exec.Topics().Set("calm", true); err != nil {
		t.Fatal(err)
	}
	if err := exec.RunUntil(150 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Module != "tm" || got[0].From != rta.ModeSC || got[0].To != rta.ModeAC {
		t.Errorf("hook switches = %v", got)
	}
	if got[0].Time != 100*time.Millisecond {
		t.Errorf("switch time = %v", got[0].Time)
	}
}

func TestInvariantChecking(t *testing.T) {
	m := testModule(t, 100*time.Millisecond)
	exec := newTestExec(t, m, WithInvariantChecking())
	if err := exec.Topics().Set("crashed", true); err != nil {
		t.Fatal(err)
	}
	err := exec.RunUntil(time.Second)
	var iv *InvariantViolationError
	if !errors.As(err, &iv) {
		t.Fatalf("RunUntil = %v, want InvariantViolationError", err)
	}
	if iv.Module != "tm" || iv.Time != 100*time.Millisecond {
		t.Errorf("violation = %+v", iv)
	}
}

func TestEnvironmentAdvance(t *testing.T) {
	m := testModule(t, 100*time.Millisecond)
	var calls []time.Duration
	env := EnvironmentFunc(func(prev, now time.Duration, topics *pubsub.Store) error {
		calls = append(calls, now)
		return topics.Set("danger", false)
	})
	exec := newTestExec(t, m, WithEnvironment(env))
	if err := exec.RunUntil(200 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	// The environment is invoked at every time progress: 100ms and 200ms.
	if !reflect.DeepEqual(calls, []time.Duration{100 * time.Millisecond, 200 * time.Millisecond}) {
		t.Errorf("env calls = %v", calls)
	}
}

func TestEnvironmentErrorPropagates(t *testing.T) {
	m := testModule(t, 100*time.Millisecond)
	boom := errors.New("plant exploded")
	exec := newTestExec(t, m, WithEnvironment(EnvironmentFunc(
		func(prev, now time.Duration, topics *pubsub.Store) error { return boom })))
	if err := exec.RunUntil(time.Second); !errors.Is(err, boom) {
		t.Errorf("RunUntil = %v", err)
	}
}

func TestDropFilter(t *testing.T) {
	m := testModule(t, 100*time.Millisecond)
	// Drop every SC firing: the topic never gets SC's value even though SC
	// is the enabled controller.
	exec := newTestExec(t, m, WithDropFilter(func(_ time.Duration, name string) bool {
		return name == "tm.sc"
	}))
	if err := exec.RunUntil(500 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if v, _ := exec.Topics().Get("who"); v != nil {
		t.Errorf("who = %v, want nil (SC never scheduled)", v)
	}
}

func TestDMFiresBeforeControllers(t *testing.T) {
	// All nodes share the same instants. The DM's decision at time t must
	// gate the controllers firing at the same t.
	m := testModule(t, 100*time.Millisecond)
	exec := newTestExec(t, m)
	if err := exec.Topics().Set("calm", true); err != nil {
		t.Fatal(err)
	}
	// At t=100ms: DM flips to AC first; then AC (enabled) publishes.
	if err := exec.RunUntil(100 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if v, _ := exec.Topics().Get("who"); v != "AC" {
		t.Errorf("who = %v: DM decision did not precede controllers", v)
	}
}

func TestScheduleOrderOverride(t *testing.T) {
	// A custom order can force controllers before the DM, and an invalid
	// permutation falls back to the default.
	m := testModule(t, 100*time.Millisecond)
	dmLast := func(_ time.Duration, firing []string) []string {
		return []string{"tm.ac", "tm.sc", "tm.dm"}
	}
	exec := newTestExec(t, m, WithScheduleOrder(dmLast))
	if err := exec.Topics().Set("calm", true); err != nil {
		t.Fatal(err)
	}
	if err := exec.RunUntil(100 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	// DM last: AC fires while still disabled (no write), SC fires enabled
	// (who=SC), then the DM flips to AC — too late to matter this instant.
	if v, _ := exec.Topics().Get("who"); v != "SC" {
		t.Errorf("who = %v, want SC when the DM decides last", v)
	}

	bogus := func(_ time.Duration, firing []string) []string { return []string{"nope"} }
	exec2 := newTestExec(t, m, WithScheduleOrder(bogus))
	if err := exec2.RunUntil(100 * time.Millisecond); err != nil {
		t.Fatalf("invalid permutation should fall back, got %v", err)
	}
}

func TestPlainNodesAlwaysEnabled(t *testing.T) {
	cnt := counterNode(t, "cnt", 50*time.Millisecond, "ticks")
	echo := echoNode(t, "echo", 50*time.Millisecond, "ticks", "echoed")
	sys, err := rta.NewSystem(nil, []*node.Node{cnt, echo})
	if err != nil {
		t.Fatal(err)
	}
	exec, err := New(sys, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := exec.RunUntil(250 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	v, _ := exec.Topics().Get("ticks")
	if v.(int) != 5 {
		t.Errorf("ticks = %v, want 5", v)
	}
	// echo lags by zero or one tick depending on alphabetical order; "cnt"
	// fires before "echo", so echo sees the fresh value.
	ev, _ := exec.Topics().Get("echoed")
	if ev.(int) != 5 {
		t.Errorf("echoed = %v, want 5", ev)
	}
	if exec.Steps() != 10 {
		t.Errorf("steps = %d, want 10", exec.Steps())
	}
}

func TestRunUntilStopsAtDeadline(t *testing.T) {
	cnt := counterNode(t, "cnt", 30*time.Millisecond, "ticks")
	sys, err := rta.NewSystem(nil, []*node.Node{cnt})
	if err != nil {
		t.Fatal(err)
	}
	exec, err := New(sys, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := exec.RunUntil(100 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	// Firings at 30, 60, 90; the 120ms event exceeds the deadline.
	if exec.Now() != 90*time.Millisecond {
		t.Errorf("ct = %v, want 90ms", exec.Now())
	}
	v, _ := exec.Topics().Get("ticks")
	if v.(int) != 3 {
		t.Errorf("ticks = %v, want 3", v)
	}
}

func TestNewRejectsDuplicateEnvTopic(t *testing.T) {
	m := testModule(t, 100*time.Millisecond)
	sys, err := rta.NewSystem([]*rta.Module{m}, nil)
	if err != nil {
		t.Fatal(err)
	}
	_, err = New(sys, []pubsub.Topic{{Name: "danger"}, {Name: "danger"}})
	if err == nil {
		t.Error("expected error for duplicate environment topic")
	}
	if _, err := New(nil, nil); err == nil {
		t.Error("expected error for nil system")
	}
}

func TestModeUnknownModule(t *testing.T) {
	m := testModule(t, 100*time.Millisecond)
	exec := newTestExec(t, m)
	if _, err := exec.Mode("ghost"); err == nil {
		t.Error("expected error for unknown module")
	}
}

func TestCoordinatedSwitching(t *testing.T) {
	// Two modules on disjoint topics; a coordination link from A to B. When
	// A's DM disengages, B is demoted in the same instant without its own
	// DM having decided anything.
	mkMod := func(name, prefix string) *rta.Module {
		dangerT := pubsub.TopicName(prefix + "/danger")
		calmT := pubsub.TopicName(prefix + "/calm")
		outT := pubsub.TopicName(prefix + "/cmd")
		mk := func(nn string) *node.Node {
			n, err := node.New(nn, 100*time.Millisecond,
				[]pubsub.TopicName{dangerT, calmT}, []pubsub.TopicName{outT},
				func(st node.State, _ pubsub.Valuation) (node.State, pubsub.Valuation, error) {
					return st, nil, nil
				})
			if err != nil {
				t.Fatal(err)
			}
			return n
		}
		m, err := rta.NewModule(rta.Decl{
			Name:  name,
			AC:    mk(name + ".ac"),
			SC:    mk(name + ".sc"),
			Delta: 100 * time.Millisecond,
			TTF2Delta: func(v pubsub.Valuation) bool {
				b, _ := v[dangerT].(bool)
				return b
			},
			InSafer: func(v pubsub.Valuation) bool {
				b, _ := v[calmT].(bool)
				return b
			},
			DMPhase: 100 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	ma := mkMod("A", "a")
	mb := mkMod("B", "b")
	sys, err := rta.NewSystem([]*rta.Module{ma, mb}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.AddCoordination("A", "B"); err != nil {
		t.Fatal(err)
	}
	// Link validation.
	if err := sys.AddCoordination("A", "B"); err == nil {
		t.Error("duplicate coordination accepted")
	}
	if err := sys.AddCoordination("A", "A"); err == nil {
		t.Error("self coordination accepted")
	}
	if err := sys.AddCoordination("A", "ghost"); err == nil {
		t.Error("unknown module accepted")
	}

	exec, err := New(sys, []pubsub.Topic{
		{Name: "a/danger", Default: false}, {Name: "a/calm", Default: true},
		{Name: "b/danger", Default: false}, {Name: "b/calm", Default: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Both modules engage their ACs at the first DM tick (calm).
	if err := exec.RunUntil(150 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	for _, m := range []string{"A", "B"} {
		if mode, _ := exec.Mode(m); mode != rta.ModeAC {
			t.Fatalf("module %s mode = %v, want AC", m, mode)
		}
	}
	// Danger for A only; B's own predicates stay calm, but the coordination
	// link must demote it anyway.
	if err := exec.Topics().Set("a/danger", true); err != nil {
		t.Fatal(err)
	}
	if err := exec.Topics().Set("b/calm", false); err != nil {
		t.Fatal(err) // keep B from instantly re-engaging
	}
	if err := exec.RunUntil(250 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if mode, _ := exec.Mode("A"); mode != rta.ModeSC {
		t.Errorf("A mode = %v, want SC", mode)
	}
	if mode, _ := exec.Mode("B"); mode != rta.ModeSC {
		t.Errorf("B mode = %v, want SC (coordinated)", mode)
	}
	if !exec.OutputEnabled("B.sc") || exec.OutputEnabled("B.ac") {
		t.Error("coordinated demotion did not flip B's output enables")
	}
	var forced *Switch
	for i := range exec.Switches() {
		sw := exec.Switches()[i]
		if sw.Module == "B" && sw.Coordinated {
			forced = &sw
			break
		}
	}
	if forced == nil {
		t.Fatal("no coordinated switch recorded for B")
	}
	// B re-engages through its own DM once calm again.
	if err := exec.Topics().Set("b/calm", true); err != nil {
		t.Fatal(err)
	}
	if err := exec.RunUntil(350 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if mode, _ := exec.Mode("B"); mode != rta.ModeAC {
		t.Errorf("B did not re-engage after coordination: %v", mode)
	}
}

// TestRunHonoursContext: a cancelled context stops Run between instants
// with the context's error; the executor stays consistent and resumable.
func TestRunHonoursContext(t *testing.T) {
	m := testModule(t, 100*time.Millisecond)
	exec := newTestExec(t, m)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := exec.Run(ctx, time.Second); !errors.Is(err, context.Canceled) {
		t.Fatalf("Run = %v, want context.Canceled", err)
	}
	if exec.Now() != 0 {
		t.Errorf("cancelled-before-start run advanced to %v", exec.Now())
	}
	// The executor resumes cleanly under a live context.
	if err := exec.Run(context.Background(), time.Second); err != nil {
		t.Fatal(err)
	}
	if exec.Now() != time.Second {
		t.Errorf("resumed run stopped at %v", exec.Now())
	}
}

// TestExecutorEventStream: the executor emits TimeProgress per instant,
// NodeFired per firing (DMs flagged, drops flagged), and ModeSwitch events
// identical to the switch log — in a deterministic order.
func TestExecutorEventStream(t *testing.T) {
	m := testModule(t, 100*time.Millisecond)
	rec := obs.NewRecorder(0)
	drops := 0
	exec := newTestExec(t, m,
		WithObservers(rec),
		WithDropFilter(func(ct time.Duration, name string) bool {
			// Drop exactly one SC firing mid-run.
			if name == "tm.sc" && ct == 300*time.Millisecond && drops == 0 {
				drops++
				return true
			}
			return false
		}),
	)
	if err := exec.Topics().Set("calm", true); err != nil {
		t.Fatal(err)
	}
	if err := exec.RunUntil(500 * time.Millisecond); err != nil {
		t.Fatal(err)
	}

	var progresses, fired, dmFired, dropped int
	var switches []Switch
	for _, e := range rec.Events() {
		switch ev := e.(type) {
		case obs.TimeProgress:
			progresses++
		case obs.NodeFired:
			if ev.Dropped {
				dropped++
				if ev.Node != "tm.sc" {
					t.Errorf("dropped firing attributed to %q", ev.Node)
				}
				continue
			}
			fired++
			if ev.DM {
				dmFired++
			}
		case obs.ModeSwitch:
			switches = append(switches, Switch{Time: ev.T, Module: ev.Module, From: ev.From, To: ev.To, Reason: ev.Reason, Coordinated: ev.Coordinated})
		}
	}
	// 5 instants (100..500ms), each firing DM + both controllers; one SC
	// firing dropped.
	if progresses != 5 {
		t.Errorf("TimeProgress events = %d, want 5", progresses)
	}
	if dmFired != 5 {
		t.Errorf("DM firings = %d, want 5", dmFired)
	}
	if dropped != 1 {
		t.Errorf("dropped firings = %d, want 1", dropped)
	}
	if fired != 5*3-1 {
		t.Errorf("executed firings = %d, want %d", fired, 5*3-1)
	}
	if !reflect.DeepEqual(switches, exec.Switches()) {
		t.Errorf("ModeSwitch events %v diverge from switch log %v", switches, exec.Switches())
	}
	if uint64(fired) != exec.Steps() {
		t.Errorf("NodeFired events %d != Steps() %d", fired, exec.Steps())
	}
}

// TestSwitchHookIsObserverShim: the legacy hook and a ModeSwitch observer
// see the identical switch sequence.
func TestSwitchHookIsObserverShim(t *testing.T) {
	m := testModule(t, 100*time.Millisecond)
	var hooked, observed []Switch
	exec := newTestExec(t, m,
		WithSwitchHook(func(sw Switch) { hooked = append(hooked, sw) }),
		WithObservers(obs.ObserverFunc(func(e obs.Event) {
			if sw, ok := e.(obs.ModeSwitch); ok {
				observed = append(observed, Switch{Time: sw.T, Module: sw.Module, From: sw.From, To: sw.To, Reason: sw.Reason, Coordinated: sw.Coordinated})
			}
		})),
	)
	if err := exec.Topics().Set("calm", true); err != nil {
		t.Fatal(err)
	}
	if err := exec.RunUntil(300 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if err := exec.Topics().Set("danger", true); err != nil {
		t.Fatal(err)
	}
	if err := exec.RunUntil(600 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if len(hooked) == 0 {
		t.Fatal("no switches recorded; the comparison is vacuous")
	}
	if !reflect.DeepEqual(hooked, observed) {
		t.Errorf("hook saw %v, observer saw %v", hooked, observed)
	}
	if !reflect.DeepEqual(hooked, exec.Switches()) {
		t.Errorf("hook saw %v, switch log says %v", hooked, exec.Switches())
	}
}

// TestInvariantViolationEvent: the checked-mode monitor emits the event
// alongside the error.
func TestInvariantViolationEvent(t *testing.T) {
	m := testModule(t, 100*time.Millisecond)
	rec := obs.NewRecorder(0)
	exec := newTestExec(t, m, WithInvariantChecking(), WithObservers(rec))
	if err := exec.Topics().Set("crashed", true); err != nil {
		t.Fatal(err)
	}
	err := exec.RunUntil(time.Second)
	var iv *InvariantViolationError
	if !errors.As(err, &iv) {
		t.Fatalf("err = %v, want InvariantViolationError", err)
	}
	var events []obs.InvariantViolation
	for _, e := range rec.Events() {
		if v, ok := e.(obs.InvariantViolation); ok {
			events = append(events, v)
		}
	}
	if len(events) != 1 {
		t.Fatalf("InvariantViolation events = %d, want 1", len(events))
	}
	if events[0].T != iv.Time || events[0].Module != iv.Module || events[0].Mode != iv.Mode {
		t.Errorf("event %+v diverges from error %+v", events[0], iv)
	}
}
