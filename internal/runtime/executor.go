// Package runtime executes an RTA system according to the operational
// semantics of Figure 11 in the paper. A configuration is the tuple
// (L, OE, ct, FN, Topics); the executor repeatedly applies:
//
//   - DISCRETE-TIME-PROGRESS-STEP: when FN = ∅, advance ct to the earliest
//     calendar entry and set FN to the nodes firing then;
//   - ENVIRONMENT-INPUT: environment hooks may update input topics at any
//     time; the executor invokes them at every time progress;
//   - DM-STEP: a firing decision module reads the monitored state, updates
//     its mode, and the output-enable map OE is updated so exactly one of
//     {AC, SC} has its outputs enabled;
//   - AC-OR-SC-STEP: a firing controller (or plain) node reads its input
//     topics, steps, and publishes its outputs only if enabled in OE.
//
// The executor is deterministic: nodes firing at the same instant run in a
// fixed order (DMs first, then the remaining nodes alphabetically) unless a
// custom ScheduleOrder is installed — the systematic-testing engine in
// internal/explore uses that hook to enumerate interleavings under bounded
// asynchrony.
package runtime

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/calendar"
	"repro/internal/node"
	"repro/internal/obs"
	"repro/internal/pubsub"
	"repro/internal/rta"
)

// Environment is the ENVIRONMENT-INPUT hook: it is invoked at every time
// progress with the previous and new current time and may update input
// topics (for example, integrating plant dynamics over [prev, now] and
// publishing fresh state estimates).
type Environment interface {
	Advance(prev, now time.Duration, topics *pubsub.Store) error
}

// EnvironmentFunc adapts a function to the Environment interface.
type EnvironmentFunc func(prev, now time.Duration, topics *pubsub.Store) error

// Advance implements Environment.
func (f EnvironmentFunc) Advance(prev, now time.Duration, topics *pubsub.Store) error {
	return f(prev, now, topics)
}

// ScheduleOrder orders the set of nodes firing at the same instant. It
// receives the sorted firing set and returns the execution order (a
// permutation; the executor validates it).
type ScheduleOrder func(ct time.Duration, firing []string) []string

// Switch records a decision-module mode change — a disengagement when
// From = AC (the SC "takes over"), a re-engagement when From = SC.
type Switch struct {
	Time   time.Duration
	Module string
	From   rta.Mode
	To     rta.Mode
	// Reason explains the decision (ttf-trip, recovery, clamped, ...).
	Reason rta.SwitchReason
	// Coordinated marks a forced demotion through a coordinated-switching
	// link rather than the module's own DM decision.
	Coordinated bool
}

// InvariantViolationError reports that the Theorem 3.1 invariant φInv (or the
// safety predicate φsafe) failed at a DM sampling instant.
type InvariantViolationError struct {
	Time   time.Duration
	Module string
	Mode   rta.Mode
}

// Error implements error.
func (e *InvariantViolationError) Error() string {
	return fmt.Sprintf("invariant φInv violated at t=%v in module %q (mode %v)", e.Time, e.Module, e.Mode)
}

// Config holds the executor's mutable configuration (L, OE, ct, FN, Topics).
type Config struct {
	Local  map[string]node.State
	OE     map[string]bool
	CT     time.Duration
	FN     []string
	Topics *pubsub.Store
}

// Option configures an Executor.
type Option func(*Executor)

// WithEnvironment installs the environment hook.
func WithEnvironment(env Environment) Option {
	return func(e *Executor) { e.env = env }
}

// WithScheduleOrder installs a custom same-instant execution order.
func WithScheduleOrder(o ScheduleOrder) Option {
	return func(e *Executor) { e.order = o }
}

// WithInvariantChecking makes the executor assert the module invariant φInv
// and φsafe after every DM step, returning an *InvariantViolationError when
// it fails. This is the "checked mode" used by tests and the
// systematic-testing engine.
func WithInvariantChecking() Option {
	return func(e *Executor) { e.checkInv = true }
}

// WithObservers attaches observers to the executor's event stream: the
// executor emits obs.NodeFired at every firing (including drop-filtered
// ones), obs.ModeSwitch at every DM mode change, obs.InvariantViolation when
// the checked-mode monitor trips, and obs.TimeProgress at every
// DISCRETE-TIME-PROGRESS-STEP. Events are delivered synchronously on the run
// goroutine, in a deterministic order for a given system and schedule.
func WithObservers(observers ...obs.Observer) Option {
	return func(e *Executor) { e.observers = append(e.observers, observers...) }
}

// WithSwitchHook registers a callback invoked on every DM mode change. It is
// a shim over the observer layer — equivalent to WithObservers with an
// observer interested only in obs.ModeSwitch events.
func WithSwitchHook(fn func(Switch)) Option {
	return WithObservers(switchHook(fn))
}

// switchHook adapts a legacy switch callback to the observer layer.
type switchHook func(Switch)

// OnEvent implements obs.Observer.
func (h switchHook) OnEvent(e obs.Event) {
	if sw, ok := e.(obs.ModeSwitch); ok {
		h(Switch{Time: sw.T, Module: sw.Module, From: sw.From, To: sw.To, Reason: sw.Reason, Coordinated: sw.Coordinated})
	}
}

// Interests implements obs.Interested.
func (h switchHook) Interests() obs.KindSet { return obs.Kinds(obs.KindModeSwitch) }

// WithDropFilter installs a firing filter: before a node fires, drop(ct,
// name) is consulted and, when true, the firing is skipped (the node misses
// its deadline). This models best-effort OS scheduling; Section V-D traces
// the 34 crashes of the endurance experiment to exactly such missed SC
// deadlines.
func WithDropFilter(drop func(ct time.Duration, nodeName string) bool) Option {
	return func(e *Executor) { e.drop = drop }
}

// Executor runs an RTA system.
type Executor struct {
	sys *rta.System
	cal *calendar.Calendar
	cfg Config

	env      Environment
	order    ScheduleOrder
	drop     func(time.Duration, string) bool
	checkInv bool

	// observers is the attached observer set; byKind is the per-kind
	// dispatch table derived from it at construction. Emission sites check
	// the relevant list for emptiness before constructing an event, so
	// unobserved kinds cost nothing on the per-firing hot path.
	observers []obs.Observer
	byKind    [obs.KindCount][]obs.Observer

	// Per-node input plumbing, precomputed at construction: the store's
	// dense topic IDs for each node's subscriptions and a reusable input
	// valuation. Refilling the same map with the same keys every firing
	// performs no allocation, unlike the Store.Read of a fresh map — on the
	// per-tick hot path the fleet engine multiplies across thousands of
	// runs, this is the difference between O(1) and O(inputs) allocations
	// per node firing.
	inIDs map[string][]pubsub.TopicID
	inBuf map[string]pubsub.Valuation

	// Reusable firing-set buffers for the default schedule order. FN is
	// fully consumed before the next time progress (Step only advances time
	// when FN is empty), so the backing arrays can be recycled per instant.
	fnBuf  []string
	ordBuf []string

	switches []Switch
	steps    uint64
}

// New creates an executor for the system with the given extra environment
// topics (topics read by nodes but produced by no node must be declared so
// the store knows them; defaults supply their initial values).
func New(sys *rta.System, envTopics []pubsub.Topic, opts ...Option) (*Executor, error) {
	if sys == nil {
		return nil, errors.New("nil system")
	}
	cal, err := sys.Calendar()
	if err != nil {
		return nil, err
	}

	declared := make(map[pubsub.TopicName]bool, len(envTopics))
	topics := make([]pubsub.Topic, 0, len(envTopics))
	for _, t := range envTopics {
		if declared[t.Name] {
			return nil, fmt.Errorf("duplicate environment topic %q", t.Name)
		}
		declared[t.Name] = true
		topics = append(topics, t)
	}
	for _, t := range sys.Topics() {
		if !declared[t] {
			declared[t] = true
			topics = append(topics, pubsub.Topic{Name: t})
		}
	}
	store, err := pubsub.NewStore(topics...)
	if err != nil {
		return nil, fmt.Errorf("topic store: %w", err)
	}

	e := &Executor{
		sys: sys,
		cal: cal,
		cfg: Config{
			Local:  make(map[string]node.State),
			OE:     make(map[string]bool),
			Topics: store,
		},
	}
	// Initial configuration: L0 = init states (mode = SC for DMs); OE0
	// enables every SC and disables every AC; ct0 = 0; FN0 = ∅.
	e.inIDs = make(map[string][]pubsub.TopicID)
	e.inBuf = make(map[string]pubsub.Valuation)
	for _, name := range sys.NodeNames() {
		n, _ := sys.Node(name)
		e.cfg.Local[name] = n.InitState()
		ids, err := store.IDs(n.Inputs())
		if err != nil {
			return nil, fmt.Errorf("node %q inputs: %w", name, err)
		}
		e.inIDs[name] = ids
		e.inBuf[name] = make(pubsub.Valuation, len(ids))
	}
	for dm, ac := range sys.ACNodes() {
		e.cfg.OE[ac] = false
		e.cfg.OE[sys.SCNodes()[dm]] = true
	}
	for _, opt := range opts {
		opt(e)
	}
	e.byKind = obs.ByKind(e.observers)
	return e, nil
}

// Now returns the current time ct.
func (e *Executor) Now() time.Duration { return e.cfg.CT }

// Topics returns the global topic store.
func (e *Executor) Topics() *pubsub.Store { return e.cfg.Topics }

// Mode returns the current mode of the named module.
func (e *Executor) Mode(moduleName string) (rta.Mode, error) {
	for _, m := range e.sys.Modules() {
		if m.Name() == moduleName {
			dm, ok := e.cfg.Local[m.DM().Name()].(rta.DMState)
			if !ok {
				return 0, fmt.Errorf("module %q: DM state has type %T", moduleName, e.cfg.Local[m.DM().Name()])
			}
			return dm.Mode, nil
		}
	}
	return 0, fmt.Errorf("unknown module %q", moduleName)
}

// OutputEnabled reports whether the named controller node's outputs are
// currently enabled; plain nodes are always enabled.
func (e *Executor) OutputEnabled(nodeName string) bool {
	en, tracked := e.cfg.OE[nodeName]
	return !tracked || en
}

// Switches returns all recorded mode switches so far.
func (e *Executor) Switches() []Switch {
	out := make([]Switch, len(e.switches))
	copy(out, e.switches)
	return out
}

// Steps returns the number of discrete node firings executed.
func (e *Executor) Steps() uint64 { return e.steps }

// LocalState returns the local state of a node (for inspection by tests and
// the systematic-testing engine).
func (e *Executor) LocalState(nodeName string) (node.State, bool) {
	st, ok := e.cfg.Local[nodeName]
	return st, ok
}

// Step applies one transition of the operational semantics: a time progress
// when FN is empty, otherwise the firing of the next node in FN. It returns
// false when the calendar is empty (no further transitions exist).
func (e *Executor) Step() (bool, error) {
	if len(e.cfg.FN) == 0 {
		return e.timeProgress()
	}
	name := e.cfg.FN[0]
	e.cfg.FN = e.cfg.FN[1:]
	if e.drop != nil && e.drop(e.cfg.CT, name) {
		// Firing skipped: missed deadline.
		if list := e.byKind[obs.KindNodeFired]; len(list) > 0 {
			_, isDM := e.sys.IsDM(name)
			obs.Emit(list, obs.NodeFired{T: e.cfg.CT, Node: name, DM: isDM, Dropped: true})
		}
		return true, nil
	}
	if err := e.fire(name); err != nil {
		return false, err
	}
	return true, nil
}

// Run advances the system until ct would exceed deadline or the context is
// cancelled (checked at every time progress, so cancellation lands between
// instants, never splitting the firings of one instant). All firings at
// instants ≤ deadline are executed; on cancellation the context's error is
// returned and the executor is left in a consistent configuration from which
// Run may be called again.
func (e *Executor) Run(ctx context.Context, deadline time.Duration) error {
	done := ctx.Done()
	for {
		if len(e.cfg.FN) == 0 {
			select {
			case <-done:
				return ctx.Err()
			default:
			}
			next, ok := e.cal.PeekNext(e.cfg.CT)
			if !ok || next > deadline {
				return nil
			}
		}
		if _, err := e.Step(); err != nil {
			return err
		}
	}
}

// RunUntil advances the system until ct would exceed deadline. All firings
// at instants ≤ deadline are executed. It is Run without cancellation.
//
//soter:ctx-ok documented shim: RunUntil(d) is defined as Run(Background, d)
func (e *Executor) RunUntil(deadline time.Duration) error {
	return e.Run(context.Background(), deadline) //soter:ctx-ok documented shim: the uncancellable legacy entry point
}

// timeProgress implements DISCRETE-TIME-PROGRESS-STEP plus the environment
// hook.
func (e *Executor) timeProgress() (bool, error) {
	next, ok := e.cal.PeekNext(e.cfg.CT)
	if !ok {
		return false, nil
	}
	prev := e.cfg.CT
	e.cfg.CT = next
	if e.env != nil {
		if err := e.env.Advance(prev, next, e.cfg.Topics); err != nil {
			return false, fmt.Errorf("environment at t=%v: %w", next, err)
		}
	}
	// Emitted after the environment hook, so an environment that itself
	// emits events (the simulator's per-sub-step trajectory samples) keeps
	// the stream's timestamps monotone.
	if list := e.byKind[obs.KindTimeProgress]; len(list) > 0 {
		obs.Emit(list, obs.TimeProgress{T: next, Prev: prev})
	}
	e.cfg.FN = e.orderFiring(next)
	return true, nil
}

// orderFiring computes the instant's firing set and arranges it: decision
// modules first (so OE reflects the freshest mode before controllers
// publish), then the rest, both alphabetically — unless a custom order is
// installed. The default path builds into per-executor scratch; the custom
// path hands the scheduler freshly allocated slices, since the hook may
// retain them (the systematic-testing engine records schedules).
func (e *Executor) orderFiring(ct time.Duration) []string {
	if e.order != nil {
		firing := e.cal.FiringAt(ct)
		ordered := e.order(ct, firing)
		if validPermutation(firing, ordered) {
			return ordered
		}
		// An invalid permutation from a custom scheduler falls back to the
		// default order rather than corrupting the run.
		return defaultOrder(e.sys, firing, nil)
	}
	e.fnBuf = e.cal.AppendFiringAt(ct, e.fnBuf[:0])
	e.ordBuf = defaultOrder(e.sys, e.fnBuf, e.ordBuf[:0])
	return e.ordBuf
}

// defaultOrder appends firing to dst with DMs first, preserving the sorted
// order within each class.
func defaultOrder(sys *rta.System, firing []string, dst []string) []string {
	for _, n := range firing {
		if _, isDM := sys.IsDM(n); isDM {
			dst = append(dst, n)
		}
	}
	for _, n := range firing {
		if _, isDM := sys.IsDM(n); !isDM {
			dst = append(dst, n)
		}
	}
	return dst
}

// fire executes DM-STEP or AC-OR-SC-STEP for the named node.
func (e *Executor) fire(name string) error {
	n, ok := e.sys.Node(name)
	if !ok {
		return fmt.Errorf("firing unknown node %q", name)
	}
	e.steps++
	m, isDM := e.sys.IsDM(name)
	if list := e.byKind[obs.KindNodeFired]; len(list) > 0 {
		obs.Emit(list, obs.NodeFired{T: e.cfg.CT, Node: name, DM: isDM})
	}
	// The input valuation is a per-node reusable buffer filled through the
	// store's dense topic IDs; it is only valid for the duration of the
	// firing (nodes must not retain it, per the StepFunc contract).
	in := e.inBuf[name]
	e.cfg.Topics.ReadInto(e.inIDs[name], in)

	if isDM {
		return e.fireDM(m, n, in)
	}

	// AC-OR-SC-STEP: the node steps; outputs are written only when enabled.
	next, out, err := n.Step(e.cfg.Local[name], in)
	if err != nil {
		return err
	}
	e.cfg.Local[name] = next
	if e.OutputEnabled(name) {
		if err := e.cfg.Topics.Write(out); err != nil {
			return fmt.Errorf("node %q outputs: %w", name, err)
		}
	}
	return nil
}

// fireDM executes DM-STEP: update the DM state from the switching policy and
// flip the output-enable entries of the controlled AC and SC (dm1, dm2).
func (e *Executor) fireDM(m *rta.Module, dmNode *node.Node, in pubsub.Valuation) error {
	prev, ok := e.cfg.Local[dmNode.Name()].(rta.DMState)
	if !ok {
		return fmt.Errorf("DM %q: local state has type %T, want rta.DMState", dmNode.Name(), e.cfg.Local[dmNode.Name()])
	}
	next, _, err := dmNode.Step(prev, in)
	if err != nil {
		return err
	}
	dm, ok := next.(rta.DMState)
	if !ok {
		return fmt.Errorf("DM %q: step returned state of type %T, want rta.DMState", dmNode.Name(), next)
	}
	e.cfg.Local[dmNode.Name()] = dm
	mode := dm.Mode
	enAC := mode == rta.ModeAC
	e.cfg.OE[m.AC().Name()] = enAC
	e.cfg.OE[m.SC().Name()] = !enAC

	if mode != prev.Mode {
		e.recordSwitch(Switch{Time: e.cfg.CT, Module: m.Name(), From: prev.Mode, To: mode, Reason: dm.Reason})
		// Coordinated switching (Section VII): a disengagement demotes the
		// coordinated partner modules to SC immediately.
		if mode == rta.ModeSC {
			e.forceCoordinated(m)
		}
	}
	if e.checkInv {
		if !m.SafeHolds(in) || !m.InvariantHolds(mode, in) {
			if list := e.byKind[obs.KindInvariantViolation]; len(list) > 0 {
				obs.Emit(list, obs.InvariantViolation{T: e.cfg.CT, Module: m.Name(), Mode: mode})
			}
			return &InvariantViolationError{Time: e.cfg.CT, Module: m.Name(), Mode: mode}
		}
	}
	return nil
}

// recordSwitch appends to the switch log and emits the obs.ModeSwitch event.
func (e *Executor) recordSwitch(sw Switch) {
	e.switches = append(e.switches, sw)
	if list := e.byKind[obs.KindModeSwitch]; len(list) > 0 {
		obs.Emit(list, obs.ModeSwitch{T: sw.Time, Module: sw.Module, From: sw.From, To: sw.To, Reason: sw.Reason, Coordinated: sw.Coordinated})
	}
}

// forceCoordinated demotes every module coordinated with the trigger to SC
// mode, updating their DM state and output enables and recording the forced
// switches. The partner's policy state is preserved — its next own decision
// sees Mode = SC and (by the policy contract) treats the demotion like any
// other entry into SC mode.
func (e *Executor) forceCoordinated(trigger *rta.Module) {
	for _, partner := range e.sys.CoordinatedWith(trigger.Name()) {
		dmName := partner.DM().Name()
		prev, ok := e.cfg.Local[dmName].(rta.DMState)
		if !ok || prev.Mode == rta.ModeSC {
			continue
		}
		e.cfg.Local[dmName] = rta.DMState{Mode: rta.ModeSC, Reason: rta.ReasonCoordinated, Policy: prev.Policy}
		e.cfg.OE[partner.AC().Name()] = false
		e.cfg.OE[partner.SC().Name()] = true
		e.recordSwitch(Switch{
			Time:        e.cfg.CT,
			Module:      partner.Name(),
			From:        prev.Mode,
			To:          rta.ModeSC,
			Reason:      rta.ReasonCoordinated,
			Coordinated: true,
		})
	}
}

func validPermutation(orig, perm []string) bool {
	if len(orig) != len(perm) {
		return false
	}
	count := make(map[string]int, len(orig))
	for _, s := range orig {
		count[s]++
	}
	for _, s := range perm {
		count[s]--
		if count[s] < 0 {
			return false
		}
	}
	return true
}
