// Package tool is the obstacleview gate fixture: its import-path base is not
// in the deterministic set, so the copying accessor is legal here — offline
// tooling may take defensive copies freely.
package tool

import "repro/internal/geom"

func copying(ws *geom.Workspace) []geom.AABB {
	return ws.Obstacles()
}
