// Package mission is an obstacleview fixture: its import-path base matches a
// deterministic package, so every copying Obstacles() access below must be
// flagged while the aliasing view and the indexed queries stay silent.
package mission

import "repro/internal/geom"

func copying(ws *geom.Workspace) []geom.AABB {
	return ws.Obstacles() // want `Workspace.Obstacles\(\) copies the obstacle slice in deterministic package mission`
}

// Method values smuggle the same allocation: references are flagged, not
// just calls.
func asValue(ws *geom.Workspace) func() []geom.AABB {
	return ws.Obstacles // want `Workspace.Obstacles\(\) copies the obstacle slice in deterministic package mission`
}

func viewing(ws *geom.Workspace) []geom.AABB {
	return ws.ObstaclesView() // the aliasing accessor is the point of the rule
}

func indexed(ws *geom.Workspace, p geom.Vec3) bool {
	return ws.Free(p) // indexed queries never touch the slice at all
}

func audited(ws *geom.Workspace) []geom.AABB {
	return ws.Obstacles() //soter:obstacles-ok fixture: a mutation-bound copy, handed to caller-owned editing
}

// Obstacles on an unrelated receiver is not the workspace accessor.
type bag struct{}

func (bag) Obstacles() []geom.AABB { return nil }

func unrelated(b bag) []geom.AABB {
	return b.Obstacles()
}
