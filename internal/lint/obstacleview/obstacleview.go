// Package obstacleview keeps the workspace-query hot path allocation-free.
// geom.Workspace.Obstacles() copies the obstacle slice on every call — the
// right contract for a public accessor, but a per-call allocation that PR 7's
// profile showed compounding inside tick-rate loops. Deterministic packages
// (the same set detsource guards) must read geometry through the aliasing
// ObstaclesView() accessor — or better, through the indexed Free/BoxFree/
// SegmentFree queries — and never through the copying form.
//
// Audited exceptions (a call that genuinely wants a private copy) are
// annotated in place: //soter:obstacles-ok <reason>.
package obstacleview

import (
	"go/ast"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"

	"repro/internal/lint/detsource"
	"repro/internal/lint/directive"
)

// Analyzer is the obstacleview analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "obstacleview",
	Doc:  "forbid the copying Workspace.Obstacles() accessor in deterministic hot-path packages",
	Run:  run,
}

const suppress = "obstacles-ok"

func run(pass *analysis.Pass) (interface{}, error) {
	if !detsource.Deterministic[detsource.PathBase(pass.Pkg.Path())] {
		return nil, nil
	}
	idx := directive.ParseFiles(pass.Fset, pass.Files)
	for _, file := range pass.Files {
		name := pass.Fset.Position(file.FileStart).Filename
		if strings.HasSuffix(name, "_test.go") {
			continue // test code may take defensive copies freely
		}
		check(pass, idx, file)
	}
	return nil, nil
}

// check reports references to geom.Workspace's Obstacles method. References,
// not just calls: passing ws.Obstacles as a value hands the allocating
// accessor to the hot path all the same.
func check(pass *analysis.Pass, idx *directive.Index, file *ast.File) {
	ast.Inspect(file, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
		if !ok || fn.Name() != "Obstacles" || fn.Pkg() == nil {
			return true
		}
		if detsource.PathBase(fn.Pkg().Path()) != "geom" {
			return true
		}
		recv := fn.Type().(*types.Signature).Recv()
		if recv == nil || !isWorkspace(recv.Type()) {
			return true
		}
		if !idx.SuppressedAt(pass, suppress, sel.Pos()) {
			pass.ReportRangef(sel, "Workspace.Obstacles() copies the obstacle slice in deterministic package %s (use ObstaclesView or the indexed queries, or annotate //soter:obstacles-ok <reason>)", pass.Pkg.Name())
		}
		return true
	})
}

// isWorkspace reports whether t is geom.Workspace, through any pointer.
func isWorkspace(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "Workspace"
}
