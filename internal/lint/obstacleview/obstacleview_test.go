package obstacleview_test

import (
	"testing"

	"repro/internal/lint/linttest"
	"repro/internal/lint/obstacleview"
)

func TestObstacleview(t *testing.T) {
	linttest.Run(t, obstacleview.Analyzer, "testdata/src/mission")
}

// TestIgnoresNondeterministicPackages checks the package gate: copying the
// obstacle slice is legal outside the deterministic set.
func TestIgnoresNondeterministicPackages(t *testing.T) {
	linttest.Run(t, obstacleview.Analyzer, "testdata/src/tool")
}
