// Package load is the package loader of the soter-vet analysis driver: a
// minimal, offline replacement for golang.org/x/tools/go/packages built on
// two pieces the toolchain already provides — `go list -export` for build
// metadata and compiled export data, and go/importer's gc importer for
// reading that export data back as *types.Package.
//
// The loader shells out to `go list` exactly once, parses and type-checks
// only the packages of this module from source (analyzers need syntax and
// positions for them), and resolves every import — stdlib or module-internal
// — through the export data the build cache already holds. Test variants
// ("p [p.test]") and external test packages ("p_test [p.test]") are loaded
// from source too, so analyzers see test files (the eventkind analyzer's
// round-trip-corpus check depends on that).
package load

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one type-checked package, ready for analysis.
type Package struct {
	// ImportPath is the path as `go list` reports it; test variants keep
	// their " [p.test]" suffix.
	ImportPath string
	// Name is the package name (test variants share the base name).
	Name string
	// Dir is the package's source directory.
	Dir string
	// ForTest is the import path of the package a test variant augments
	// (empty for ordinary packages).
	ForTest string
	// Files are the absolute paths of the parsed files, in build order.
	Files []string
	// Fset is the file set shared by every package of one Load call.
	Fset *token.FileSet
	// Syntax holds one parsed file per entry of Files.
	Syntax []*ast.File
	// Types and Info carry the full type-checking results.
	Types *types.Package
	Info  *types.Info
}

// Config controls a Load call.
type Config struct {
	// Dir is the working directory for `go list`; empty means the current
	// directory. Patterns are resolved relative to it.
	Dir string
	// Patterns are `go list` package patterns; empty means ["./..."].
	Patterns []string
	// Tests also loads test variants and external test packages of the
	// matched packages.
	Tests bool
}

// listPackage mirrors the subset of `go list -json` output the loader needs.
type listPackage struct {
	ImportPath   string
	Name         string
	Dir          string
	Export       string
	Standard     bool
	DepOnly      bool
	ForTest      string
	GoFiles      []string
	XTestGoFiles []string
	ImportMap    map[string]string
	Error        *listError
	DepsErrors   []*listError
}

type listError struct {
	Pos string
	Err string
}

// Load lists, parses and type-checks the packages matched by cfg. Any list,
// parse or type error fails the whole load: soter-vet refuses to reason
// about a tree it cannot fully see.
func Load(cfg Config) ([]*Package, error) {
	patterns := cfg.Patterns
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := []string{"list", "-e", "-deps", "-export",
		"-json=ImportPath,Name,Dir,Export,Standard,DepOnly,ForTest,GoFiles,XTestGoFiles,ImportMap,Error,DepsErrors"}
	if cfg.Tests {
		args = append(args, "-test")
	}
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = cfg.Dir
	cmd.Stderr = os.Stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list: %w", err)
	}

	byPath := map[string]*listPackage{}
	var order []*listPackage
	dec := json.NewDecoder(strings.NewReader(string(out)))
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list output: %w", err)
		}
		lp := p
		byPath[lp.ImportPath] = &lp
		order = append(order, &lp)
	}

	ld := &loader{
		fset:   token.NewFileSet(),
		byPath: byPath,
		memo:   map[string]*types.Package{},
		loaded: map[string]*Package{},
	}
	ld.gc = importer.ForCompiler(ld.fset, "gc", ld.exportLookup)

	var pkgs []*Package
	for _, p := range order {
		if p.Standard || p.DepOnly {
			continue
		}
		if strings.HasSuffix(p.ImportPath, ".test") {
			continue // generated test-main package: cache-resident synthetic source
		}
		if p.Error != nil {
			return nil, fmt.Errorf("%s: %s", p.ImportPath, p.Error.Err)
		}
		for _, de := range p.DepsErrors {
			return nil, fmt.Errorf("%s: dependency error: %s", p.ImportPath, de.Err)
		}
		pkg, err := ld.fromSource(p)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].ImportPath < pkgs[j].ImportPath })
	return pkgs, nil
}

// loader carries the shared state of one Load call.
type loader struct {
	fset   *token.FileSet
	byPath map[string]*listPackage
	memo   map[string]*types.Package // source-checked packages, by listed path
	loaded map[string]*Package
	gc     types.Importer
}

// exportLookup feeds the gc importer the export-data file `go list -export`
// recorded for the path.
func (ld *loader) exportLookup(path string) (io.ReadCloser, error) {
	p, ok := ld.byPath[path]
	if !ok || p.Export == "" {
		return nil, fmt.Errorf("no export data for %q", path)
	}
	return os.Open(p.Export)
}

// fromSource parses and type-checks the listed package, memoized.
func (ld *loader) fromSource(p *listPackage) (*Package, error) {
	if pkg, ok := ld.loaded[p.ImportPath]; ok {
		return pkg, nil
	}
	files := p.GoFiles
	if len(files) == 0 {
		files = p.XTestGoFiles // external test packages list their files here
	}
	pkg := &Package{
		ImportPath: p.ImportPath,
		Name:       p.Name,
		Dir:        p.Dir,
		ForTest:    p.ForTest,
		Fset:       ld.fset,
	}
	for _, f := range files {
		path := f
		if !filepath.IsAbs(path) {
			path = filepath.Join(p.Dir, f)
		}
		syn, err := parser.ParseFile(ld.fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		pkg.Files = append(pkg.Files, path)
		pkg.Syntax = append(pkg.Syntax, syn)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Instances:  map[*ast.Ident]types.Instance{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	var typeErrs []error
	conf := types.Config{
		Importer: &pkgImporter{ld: ld, importMap: p.ImportMap},
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
		Sizes:    types.SizesFor("gc", "amd64"),
	}
	tpkg, err := conf.Check(p.ImportPath, ld.fset, pkg.Syntax, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("%s: type errors: %v", p.ImportPath, typeErrs[0])
	}
	if err != nil {
		return nil, fmt.Errorf("%s: %w", p.ImportPath, err)
	}
	pkg.Types = tpkg
	pkg.Info = info
	ld.loaded[p.ImportPath] = pkg
	ld.memo[p.ImportPath] = tpkg
	return pkg, nil
}

// importOf resolves one import path as seen from a package with the given
// import map: test variants first (from source, so test-only symbols exist),
// then compiled export data for everything else.
func (ld *loader) importOf(path string, importMap map[string]string) (*types.Package, error) {
	if mapped, ok := importMap[path]; ok {
		path = mapped
	}
	if tp, ok := ld.memo[path]; ok {
		return tp, nil
	}
	if strings.Contains(path, " [") {
		// A test variant: its export data describes the base path, which
		// would collide with the ordinary package in the gc importer's
		// cache, so type-check it from source instead.
		p, ok := ld.byPath[path]
		if !ok {
			return nil, fmt.Errorf("unknown test variant %q", path)
		}
		pkg, err := ld.fromSource(p)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	tp, err := ld.gc.Import(path)
	if err != nil {
		return nil, fmt.Errorf("import %q: %w", path, err)
	}
	ld.memo[path] = tp
	return tp, nil
}

// pkgImporter is the per-package types.Importer: it carries the package's
// own import map so test-variant imports resolve the way the go tool
// resolved them at build time.
type pkgImporter struct {
	ld        *loader
	importMap map[string]string
}

func (pi *pkgImporter) Import(path string) (*types.Package, error) {
	return pi.ld.importOf(path, pi.importMap)
}
