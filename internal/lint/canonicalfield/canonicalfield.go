// Package canonicalfield turns the PR-5 reflection guard
// (TestCanonicalHandlesEverySpecField) into a compile-time check. The result
// cache keys every simulation by the canonical form of its scenario.Spec; a
// Spec field that influences a run but is absent from Canonical() poisons
// the cache — two different workloads share a fingerprint. This analyzer
// requires every field of scenario.Spec to be handled in canonical.go:
// either referenced by the canonicalization (included in the schema) or
// named in the canonicalExcluded list (excluded deliberately, e.g. pure
// labels). It also reports stale exclusion entries that no longer name a
// field, with the diagnostic positioned at the entry.
package canonicalfield

import (
	"go/ast"
	"go/constant"
	"go/types"
	"path/filepath"
	"strings"

	"golang.org/x/tools/go/analysis"
)

// Analyzer is the canonicalfield analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "canonicalfield",
	Doc:  "require every scenario.Spec field to be included in or explicitly excluded from the canonical cache key",
	Run:  run,
}

// excludedVar names the explicit exclusion list canonical.go must declare.
const excludedVar = "canonicalExcluded"

func run(pass *analysis.Pass) (interface{}, error) {
	if pathBase(pass.Pkg.Path()) != "scenario" {
		return nil, nil
	}
	spec, ok := pass.Pkg.Scope().Lookup("Spec").(*types.TypeName)
	if !ok {
		return nil, nil
	}
	st, ok := spec.Type().Underlying().(*types.Struct)
	if !ok {
		return nil, nil
	}

	canonical := canonicalFile(pass)
	if canonical == nil {
		pass.Reportf(spec.Pos(), "package %s declares Spec but has no canonical.go: the Spec has no canonical cache-key form", pass.Pkg.Name())
		return nil, nil
	}

	// Fields the canonicalization references, by identity of the field
	// object — directly in canonical.go, or inside unexported Spec helper
	// methods it calls (s.workspace(), s.start(): resolution helpers are
	// part of the canonicalization; exported methods like Validate are not,
	// because their reads serve a different contract).
	referenced := map[types.Object]bool{}
	visited := map[types.Object]bool{}
	var scan func(n ast.Node)
	scan = func(n ast.Node) {
		ast.Inspect(n, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			s, ok := pass.TypesInfo.Selections[sel]
			if !ok {
				return true
			}
			switch s.Kind() {
			case types.FieldVal:
				referenced[s.Obj()] = true
			case types.MethodVal:
				fn, ok := s.Obj().(*types.Func)
				if !ok || fn.Exported() || visited[fn] || !onSpec(fn, spec) {
					return true
				}
				visited[fn] = true
				if body := methodBody(pass, fn); body != nil {
					scan(body)
				}
			}
			return true
		})
	}
	scan(canonical)

	fieldByName := map[string]*types.Var{}
	for i := 0; i < st.NumFields(); i++ {
		fieldByName[st.Field(i).Name()] = st.Field(i)
	}

	excluded := map[string]bool{}
	if vs := findVarSpec(canonical, excludedVar); vs != nil {
		for _, val := range vs.Values {
			cl, ok := val.(*ast.CompositeLit)
			if !ok {
				continue
			}
			for _, elt := range cl.Elts {
				tv, ok := pass.TypesInfo.Types[elt]
				if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
					continue
				}
				name := constant.StringVal(tv.Value)
				if _, isField := fieldByName[name]; !isField {
					pass.ReportRangef(elt, "%s entry %q does not name a Spec field (renamed or removed?)", excludedVar, name)
					continue
				}
				excluded[name] = true
			}
		}
	}

	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if referenced[f] || excluded[f.Name()] {
			continue
		}
		pass.Reportf(f.Pos(), "Spec field %s is not handled by the canonical cache key: include it in canonicalSpec or list it in %s (two workloads differing only in %s would share a fingerprint)", f.Name(), excludedVar, f.Name())
	}
	return nil, nil
}

func pathBase(path string) string {
	if i := strings.Index(path, " ["); i >= 0 {
		path = path[:i]
	}
	if i := strings.LastIndex(path, "/"); i >= 0 {
		path = path[i+1:]
	}
	return path
}

// onSpec reports whether fn is a method with receiver Spec or *Spec.
func onSpec(fn *types.Func, spec *types.TypeName) bool {
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return false
	}
	t := recv.Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj() == spec
}

// methodBody locates the declaration body of a method anywhere in the
// package.
func methodBody(pass *analysis.Pass, fn *types.Func) *ast.BlockStmt {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil {
				continue
			}
			if pass.TypesInfo.Defs[fd.Name] == fn {
				return fd.Body
			}
		}
	}
	return nil
}

// canonicalFile returns the package file named canonical.go, if any.
func canonicalFile(pass *analysis.Pass) *ast.File {
	for _, file := range pass.Files {
		name := pass.Fset.Position(file.FileStart).Filename
		if filepath.Base(name) == "canonical.go" {
			return file
		}
	}
	return nil
}

// findVarSpec locates a package-level var spec declaring the name in the file.
func findVarSpec(file *ast.File, name string) *ast.ValueSpec {
	for _, decl := range file.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok {
			continue
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for _, id := range vs.Names {
				if id.Name == name {
					return vs
				}
			}
		}
	}
	return nil
}
