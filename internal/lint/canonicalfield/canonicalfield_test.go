package canonicalfield_test

import (
	"testing"

	"repro/internal/lint/canonicalfield"
	"repro/internal/lint/linttest"
)

func TestCanonicalField(t *testing.T) {
	linttest.Run(t, canonicalfield.Analyzer, "testdata/src/scenario")
}
