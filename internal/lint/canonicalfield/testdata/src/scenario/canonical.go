package scenario

// canonicalExcluded lists Spec fields deliberately left out of the cache
// key. "Label" is stale — no such field exists — which the analyzer reports
// at the entry itself.
var canonicalExcluded = [...]string{
	"Comment",
	"Label", // want `canonicalExcluded entry "Label" does not name a Spec field`
}

// canonicalSpec is the cache-key form.
type canonicalSpec struct {
	Name    string
	Seed    int64
	Horizon int64
}

// Canonical builds the cache-key form of the Spec.
func (s *Spec) Canonical() canonicalSpec {
	if err := s.Validate(); err != nil {
		return canonicalSpec{}
	}
	return canonicalSpec{
		Name:    s.Name,
		Seed:    s.seed(),
		Horizon: int64(s.Horizon),
	}
}
