// Package scenario is the canonicalfield fixture: a miniature Spec whose
// canonical form deliberately mishandles one field.
package scenario

import (
	"errors"
	"time"
)

// Spec is the fixture workload description.
type Spec struct {
	Name    string        // referenced directly by Canonical
	Seed    int64         // referenced only through the unexported seed() helper
	Horizon time.Duration // referenced directly by Canonical
	Workers int           // want `Spec field Workers is not handled by the canonical cache key`
	Comment string        // excluded via canonicalExcluded
}

// seed is an unexported resolution helper called from Canonical; the
// analyzer follows it across files, so the Seed read below counts as
// canonicalization.
func (s *Spec) seed() int64 {
	if s.Seed == 0 {
		return 1
	}
	return s.Seed
}

// Validate is exported: Canonical calls it, but the analyzer must NOT count
// its reads as canonicalization — validation serves a different contract —
// so the Workers read below does not rescue the missing field.
func (s *Spec) Validate() error {
	if s.Workers < 0 {
		return errors.New("negative workers")
	}
	return nil
}
