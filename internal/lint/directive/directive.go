// Package directive parses soter-vet suppression comments. A diagnostic is
// suppressed by writing
//
//	//soter:nondet-ok <reason>      (detsource findings)
//	//soter:ctx-ok <reason>         (ctxflow findings)
//	//soter:obstacles-ok <reason>   (obstacleview findings)
//
// either on the offending line or on the line immediately above it. The
// reason is mandatory: a bare directive is itself reported, so every audited
// exception in the tree carries its justification next to the code.
package directive

import (
	"go/ast"
	"go/token"
	"strings"

	"golang.org/x/tools/go/analysis"
)

// prefix is the namespace every soter-vet directive lives under.
const prefix = "//soter:"

// Directive is one parsed suppression comment.
type Directive struct {
	// Name is the directive kind without the namespace ("nondet-ok").
	Name string
	// Reason is the free-text justification after the name.
	Reason string
	// Pos is the comment's position.
	Pos token.Pos
}

// Index maps source lines of one file set to the directives written on them.
type Index struct {
	fset  *token.FileSet
	lines map[string]map[int]Directive // filename -> line -> directive
}

// ParseFiles collects the directives of every file in one pass.
func ParseFiles(fset *token.FileSet, files []*ast.File) *Index {
	idx := &Index{fset: fset, lines: map[string]map[int]Directive{}}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, prefix)
				if !ok {
					continue
				}
				name, reason, _ := strings.Cut(rest, " ")
				pos := fset.Position(c.Pos())
				m := idx.lines[pos.Filename]
				if m == nil {
					m = map[int]Directive{}
					idx.lines[pos.Filename] = m
				}
				m[pos.Line] = Directive{Name: name, Reason: strings.TrimSpace(reason), Pos: c.Pos()}
			}
		}
	}
	return idx
}

// SuppressedAt reports whether a directive of the given name covers pos —
// written on the same line or the line immediately above. When the covering
// directive has no reason, the suppression is honoured but the missing
// reason is reported through pass, so audits never go unexplained.
func (idx *Index) SuppressedAt(pass *analysis.Pass, name string, pos token.Pos) bool {
	p := idx.fset.Position(pos)
	m := idx.lines[p.Filename]
	if m == nil {
		return false
	}
	for _, line := range []int{p.Line, p.Line - 1} {
		d, ok := m[line]
		if !ok || d.Name != name {
			continue
		}
		if d.Reason == "" {
			pass.Reportf(d.Pos, "//soter:%s directive needs a reason", name)
		}
		return true
	}
	return false
}
