package directive_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"

	"golang.org/x/tools/go/analysis"

	"repro/internal/lint/directive"
)

const src = `package p

func f() {
	a() //soter:nondet-ok measurement only
	b() //soter:nondet-ok
	//soter:ctx-ok documented shim
	c()
	d()
}
func a() {}
func b() {}
func c() {}
func d() {}
`

// parse builds the index for the fixture source and a pass that records
// the directive package's own diagnostics (bare directives).
func parse(t *testing.T) (*token.FileSet, *directive.Index, *analysis.Pass, *[]string) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	idx := directive.ParseFiles(fset, []*ast.File{f})
	var reported []string
	pass := &analysis.Pass{
		Fset: fset,
		Report: func(d analysis.Diagnostic) {
			reported = append(reported, d.Message)
		},
	}
	return fset, idx, pass, &reported
}

// posOnLine returns a position on the given 1-based line of the file.
func posOnLine(fset *token.FileSet, line int) token.Pos {
	var pos token.Pos
	fset.Iterate(func(f *token.File) bool {
		pos = f.LineStart(line)
		return false
	})
	return pos
}

func TestSameLineSuppression(t *testing.T) {
	fset, idx, pass, reported := parse(t)
	if !idx.SuppressedAt(pass, "nondet-ok", posOnLine(fset, 4)) {
		t.Error("directive with a reason on the same line should suppress")
	}
	if len(*reported) != 0 {
		t.Errorf("reasoned directive should not be reported, got %v", *reported)
	}
}

func TestBareDirectiveSuppressesButReports(t *testing.T) {
	fset, idx, pass, reported := parse(t)
	if !idx.SuppressedAt(pass, "nondet-ok", posOnLine(fset, 5)) {
		t.Error("a bare directive should still suppress")
	}
	if len(*reported) != 1 || !strings.Contains((*reported)[0], "needs a reason") {
		t.Errorf("bare directive should be reported as missing a reason, got %v", *reported)
	}
}

func TestLineAboveSuppression(t *testing.T) {
	fset, idx, pass, reported := parse(t)
	if !idx.SuppressedAt(pass, "ctx-ok", posOnLine(fset, 7)) {
		t.Error("directive on the line above should suppress")
	}
	if len(*reported) != 0 {
		t.Errorf("unexpected reports %v", *reported)
	}
}

func TestNameAndPositionMustMatch(t *testing.T) {
	fset, idx, pass, _ := parse(t)
	if idx.SuppressedAt(pass, "ctx-ok", posOnLine(fset, 4)) {
		t.Error("a nondet-ok directive must not suppress ctx-ok findings")
	}
	if idx.SuppressedAt(pass, "nondet-ok", posOnLine(fset, 8)) {
		t.Error("an uncovered line must not be suppressed")
	}
}
