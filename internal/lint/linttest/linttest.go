// Package linttest is the fixture harness of the soter-vet suite — the
// offline analogue of golang.org/x/tools/go/analysis/analysistest. A fixture
// is an ordinary compilable package under an analyzer's testdata/src
// directory; expected findings are written next to the offending line:
//
//	time.Now() // want `reads the wall clock`
//
// Each `// want` comment carries one or more backquoted regexes, every one
// of which must match a diagnostic reported on that line; diagnostics with
// no matching expectation, and expectations with no matching diagnostic,
// fail the test.
package linttest

import (
	"go/parser"
	"go/token"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"golang.org/x/tools/go/analysis"

	"repro/internal/lint/driver"
	"repro/internal/lint/load"
)

// wantRe extracts the backquoted regexes of one want comment.
var wantRe = regexp.MustCompile("`([^`]+)`")

// expectation is one `// want` regex with its position and match state.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

// Run loads the fixture package rooted at dir (relative to the test's
// working directory), applies the analyzer, and matches the diagnostics
// against the fixture's `// want` comments.
//
//soter:ctx-ok test harness: bounded by the fixture size and go test's deadline
func Run(t *testing.T, a *analysis.Analyzer, dir string) {
	t.Helper()
	abs, err := filepath.Abs(dir)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := load.Load(load.Config{Dir: abs, Patterns: []string{"."}})
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	diags, err := driver.Run(pkgs, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, dir, err)
	}

	var wants []*expectation
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			wants = append(wants, parseWants(t, file)...)
		}
	}

	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic at %s:%d: %s", d.Pos.Filename, d.Pos.Line, d.Message)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
}

// parseWants collects the `// want` expectations of one fixture file.
func parseWants(t *testing.T, filename string) []*expectation {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, filename, nil, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	var wants []*expectation
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text, ok := strings.CutPrefix(c.Text, "// want ")
			if !ok {
				continue
			}
			pos := fset.Position(c.Pos())
			ms := wantRe.FindAllStringSubmatch(text, -1)
			if len(ms) == 0 {
				t.Fatalf("%s:%d: malformed want comment %q (need backquoted regexes)", filename, pos.Line, c.Text)
			}
			for _, m := range ms {
				re, err := regexp.Compile(m[1])
				if err != nil {
					t.Fatalf("%s:%d: bad want regexp: %v", filename, pos.Line, err)
				}
				wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re})
			}
		}
	}
	return wants
}
