// Package flowpkg is the ctxflow fixture. Its import path runs through
// internal/ (the analyzer's gate), so exported long-running entry points
// must take a context and ambient roots are forbidden outside annotated
// shims.
package flowpkg

import (
	"context"
	"net/http"
)

// Server is a receiver for the method cases.
type Server struct{}

func (s *Server) Run() error { return nil } // want `exported long-running entry point Run does not accept a context.Context`

func RunSweep(ctx context.Context) error { return ctx.Err() }

func Serve(addr string) error { return nil } // want `exported long-running entry point Serve does not accept a context.Context`

// ServeHTTP is exempt: its signature is fixed by net/http.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {}

// run is unexported: exempt.
func run() {}

//soter:ctx-ok fixture: lifecycle owned by the caller's supervisor
func Listen(addr string) error { return nil }

func roots(ctx context.Context) context.Context {
	if ctx == nil {
		return context.Background() // want `context.Background\(\) mints an ambient root context in internal package flowpkg`
	}
	_ = context.TODO() // want `context.TODO\(\) mints an ambient root context in internal package flowpkg`
	return ctx
}

func shim() context.Context {
	return context.Background() //soter:ctx-ok fixture: documented shim with a reason
}
