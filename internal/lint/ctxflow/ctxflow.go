// Package ctxflow enforces the context discipline the PR-3 execution
// redesign established: cancellation flows from the caller down through
// every long-running layer. Concretely, in the module's internal packages:
//
//   - exported long-running entry points (Run*, Serve*, Stream*, Listen*,
//     Loop*, Poll*) must accept a context.Context parameter, and
//   - context.Background() / context.TODO() must not be minted outside the
//     documented compatibility shims — a library that conjures its own root
//     context cannot be cancelled by the service layer above it.
//
// The documented shims (Executor.RunUntil, sim's nil-context default, the
// experiments default and the service's own lifecycle root) are annotated in
// place: //soter:ctx-ok <reason>. Test files and main packages are exempt —
// a main owns its root context.
package ctxflow

import (
	"go/ast"
	"go/types"
	"regexp"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"

	"repro/internal/lint/directive"
)

// Analyzer is the ctxflow analyzer.
var Analyzer = &analysis.Analyzer{
	Name:     "ctxflow",
	Doc:      "require context plumbing through long-running entry points and forbid ambient context roots in internal packages",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

const suppress = "ctx-ok"

// entryPoint matches exported names that conventionally denote long-running
// work. ServeHTTP is exempt: its signature is fixed by net/http, and the
// request context rides on *http.Request.
var entryPoint = regexp.MustCompile(`^(Run|Serve|Stream|Listen|Loop|Poll)([A-Z0-9].*)?$`)

func run(pass *analysis.Pass) (interface{}, error) {
	if pass.Pkg.Name() == "main" || !strings.Contains(pass.Pkg.Path(), "internal/") {
		return nil, nil
	}
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	idx := directive.ParseFiles(pass.Fset, pass.Files)
	inTest := func(pos ast.Node) bool {
		return strings.HasSuffix(pass.Fset.Position(pos.Pos()).Filename, "_test.go")
	}

	nodeFilter := []ast.Node{(*ast.FuncDecl)(nil), (*ast.SelectorExpr)(nil)}
	ins.Preorder(nodeFilter, func(n ast.Node) {
		if inTest(n) {
			return
		}
		switch n := n.(type) {
		case *ast.FuncDecl:
			checkEntryPoint(pass, idx, n)
		case *ast.SelectorExpr:
			checkAmbientRoot(pass, idx, n)
		}
	})
	return nil, nil
}

// checkEntryPoint requires a context parameter on exported long-running
// functions and methods.
func checkEntryPoint(pass *analysis.Pass, idx *directive.Index, fd *ast.FuncDecl) {
	name := fd.Name.Name
	if !entryPoint.MatchString(name) || name == "ServeHTTP" {
		return
	}
	fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
	if !ok || !fn.Exported() {
		return
	}
	sig := fn.Type().(*types.Signature)
	for i := 0; i < sig.Params().Len(); i++ {
		if isContext(sig.Params().At(i).Type()) {
			return
		}
	}
	if idx.SuppressedAt(pass, suppress, fd.Pos()) || idx.SuppressedAt(pass, suppress, fd.Name.Pos()) {
		return
	}
	pass.Reportf(fd.Name.Pos(), "exported long-running entry point %s does not accept a context.Context: callers cannot cancel it (thread a ctx parameter, or annotate //soter:ctx-ok <reason>)", name)
}

// checkAmbientRoot forbids minting root contexts inside library code.
func checkAmbientRoot(pass *analysis.Pass, idx *directive.Index, sel *ast.SelectorExpr) {
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
		return
	}
	if name := fn.Name(); name != "Background" && name != "TODO" {
		return
	}
	if idx.SuppressedAt(pass, suppress, sel.Pos()) {
		return
	}
	pass.ReportRangef(sel, "context.%s() mints an ambient root context in internal package %s: accept a ctx from the caller instead (or annotate //soter:ctx-ok <reason> on a documented shim)", fn.Name(), pass.Pkg.Name())
}

// isContext reports whether t is context.Context.
func isContext(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}
