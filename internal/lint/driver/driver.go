// Package driver runs go/analysis analyzers over packages produced by the
// load package — the in-process replacement for x/tools' multichecker
// driver, which is not part of the toolchain's vendored analysis core. It
// supports the subset of the analysis API the soter-vet suite needs:
// Requires graphs (for the inspect pass), per-pass results, and positioned
// diagnostics. Facts (cross-package analysis state) are deliberately not
// implemented; every soter-vet analyzer is single-package.
package driver

import (
	"fmt"
	"go/token"
	"os"
	"sort"

	"golang.org/x/tools/go/analysis"

	"repro/internal/lint/load"
)

// Diagnostic is one finding, with its analyzer and resolved position.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Run applies every analyzer (and, first, its Requires closure) to every
// package and returns the diagnostics sorted by position. An analyzer
// returning an error aborts the run: that is a broken analyzer, not a
// finding.
//
//soter:ctx-ok in-process CPU-bound pass over already-loaded packages; callers run it to completion
func Run(pkgs []*load.Package, analyzers []*analysis.Analyzer) ([]Diagnostic, error) {
	if err := analysis.Validate(analyzers); err != nil {
		return nil, err
	}
	order, err := topoSort(analyzers)
	if err != nil {
		return nil, err
	}

	var diags []Diagnostic
	for _, pkg := range pkgs {
		results := map[*analysis.Analyzer]interface{}{}
		for _, a := range order {
			if len(a.FactTypes) > 0 {
				return nil, fmt.Errorf("analyzer %s declares facts; the soter-vet driver does not support them", a.Name)
			}
			pass := &analysis.Pass{
				Analyzer:   a,
				Fset:       pkg.Fset,
				Files:      pkg.Syntax,
				Pkg:        pkg.Types,
				TypesInfo:  pkg.Info,
				TypesSizes: nil,
				ResultOf:   map[*analysis.Analyzer]interface{}{},
				ReadFile:   os.ReadFile,
				Report: func(d analysis.Diagnostic) {
					diags = append(diags, Diagnostic{
						Analyzer: a.Name,
						Pos:      pkg.Fset.Position(d.Pos),
						Message:  d.Message,
					})
				},
			}
			for _, req := range a.Requires {
				pass.ResultOf[req] = results[req]
			}
			res, err := a.Run(pass)
			if err != nil {
				return nil, fmt.Errorf("%s on %s: %w", a.Name, pkg.ImportPath, err)
			}
			results[a] = res
		}
	}
	// A package and its test variant share source files, so a finding in a
	// shared file surfaces once per variant: keep the first.
	seen := map[Diagnostic]bool{}
	uniq := diags[:0]
	for _, d := range diags {
		if !seen[d] {
			seen[d] = true
			uniq = append(uniq, d)
		}
	}
	diags = uniq
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}

// topoSort orders analyzers so every Requires dependency runs before its
// dependents. analysis.Validate has already rejected cycles.
func topoSort(analyzers []*analysis.Analyzer) ([]*analysis.Analyzer, error) {
	var order []*analysis.Analyzer
	seen := map[*analysis.Analyzer]bool{}
	var visit func(a *analysis.Analyzer)
	visit = func(a *analysis.Analyzer) {
		if seen[a] {
			return
		}
		seen[a] = true
		for _, req := range a.Requires {
			visit(req)
		}
		order = append(order, a)
	}
	for _, a := range analyzers {
		visit(a)
	}
	return order, nil
}
