// Package lint assembles the soter-vet analysis suite: the custom
// go/analysis analyzers that machine-check the repo's determinism and
// exhaustiveness invariants on every build, before any test runs.
//
//   - detsource: deterministic packages must not read the wall clock, draw
//     from the global rand source, or publish map-iteration order.
//   - eventkind: every obs.Kind is fully plumbed — wire name, decode arm,
//     concrete event type, round-trip corpus entry.
//   - canonicalfield: every scenario.Spec field is included in or explicitly
//     excluded from the canonical cache key.
//   - ctxflow: long-running exported entry points take a context.Context,
//     and internal packages never mint ambient root contexts.
//   - obstacleview: deterministic hot-path packages read workspace geometry
//     through the aliasing ObstaclesView accessor or the indexed queries,
//     never through the per-call-copying Obstacles().
//
// The suite runs three ways with identical findings: `go run
// ./cmd/soter-vet ./...` (CI, pre-build), the repo-wide self-check test in
// this package (so a bare `go test ./...` also fails on violations), and the
// per-analyzer fixture tests under each analyzer's testdata.
package lint

import (
	"golang.org/x/tools/go/analysis"

	"repro/internal/lint/canonicalfield"
	"repro/internal/lint/ctxflow"
	"repro/internal/lint/detsource"
	"repro/internal/lint/eventkind"
	"repro/internal/lint/obstacleview"
)

// Suite returns the full soter-vet analyzer suite, in reporting order.
func Suite() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		detsource.Analyzer,
		obstacleview.Analyzer,
		eventkind.Analyzer,
		canonicalfield.Analyzer,
		ctxflow.Analyzer,
	}
}
