package detsource_test

import (
	"testing"

	"repro/internal/lint/detsource"
	"repro/internal/lint/linttest"
)

func TestDetsource(t *testing.T) {
	linttest.Run(t, detsource.Analyzer, "testdata/src/sim")
}

// TestIgnoresNondeterministicPackages checks the package gate: the same
// patterns are legal outside the deterministic set.
func TestIgnoresNondeterministicPackages(t *testing.T) {
	linttest.Run(t, detsource.Analyzer, "testdata/src/clock")
}
