// Package sim is a detsource fixture: its import-path base matches a
// deterministic package, so every ambient-nondeterminism pattern below must
// be flagged and every order-independent pattern must stay silent.
package sim

import (
	"math/rand"
	"sort"
	"time"
)

// --- ambient sources ---

func clocks() time.Duration {
	start := time.Now()      // want `time.Now reads the wall clock in deterministic package sim`
	return time.Since(start) // want `time.Since reads the wall clock in deterministic package sim`
}

func deadline(t time.Time) time.Duration {
	return time.Until(t) // want `time.Until reads the wall clock in deterministic package sim`
}

func globalDraws() (int, float64) {
	n := rand.Intn(6)   // want `global rand.Intn in deterministic package sim`
	f := rand.Float64() // want `global rand.Float64 in deterministic package sim`
	return n, f
}

func seededDraws() float64 {
	r := rand.New(rand.NewSource(42)) // constructors are legal
	return r.Float64()                // methods on a seeded generator are legal
}

func suppressedClock() time.Time {
	return time.Now() //soter:nondet-ok fixture: measurement only, never feeds simulated state
}

// A bare //soter:nondet-ok (no reason) suppresses but is itself flagged;
// that diagnostic lands on the directive comment, where a want comment
// cannot coexist, so the behaviour is covered by the directive package's
// unit test instead of this fixture.

// --- map iteration ---

func appendNoSort(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want `write to keys escapes a map-range loop`
	}
	return keys
}

func appendThenSort(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // sorted after the loop: legal
	}
	sort.Strings(keys)
	return keys
}

func invert(m map[string]int) map[int]string {
	out := make(map[int]string, len(m))
	for k, v := range m {
		out[v] = k // keyed write: position named by the key, not the order
	}
	return out
}

func bucket(m map[string]int) []string {
	out := make([]string, len(m))
	for k, v := range m {
		i := v % len(out)
		out[i] = k // keyed slice write via a loop-local index: legal
	}
	return out
}

func total(m map[string]int) int {
	sum := 0
	for _, v := range m {
		sum += v // commutative integer accumulation: legal
	}
	return sum
}

func anyTrue(m map[string]bool) bool {
	found := false
	for _, v := range m {
		if v {
			found = true // constant store is idempotent: legal
		}
	}
	return found
}

func concat(m map[string]string) string {
	s := ""
	for _, v := range m {
		s += v // want `write to s escapes a map-range loop`
	}
	return s
}

func publish(m map[string]int, ch chan<- string) {
	for k := range m {
		ch <- k // want `channel send inside a map-range loop publishes iteration order`
	}
}

func spawn(m map[string]int, f func(string)) {
	for k := range m {
		go f(k) // want `goroutine launched per map-range iteration`
	}
}

func suppressedLoop(m map[string]int) []string {
	var keys []string
	//soter:nondet-ok fixture: ordering is cosmetic here
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}
