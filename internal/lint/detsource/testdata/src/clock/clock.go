// Package clock is the detsource negative fixture: its import-path base is
// not in the deterministic set, so wall-clock reads, global rand and
// unsorted map iteration are all legal here and the analyzer must stay
// silent.
package clock

import (
	"math/rand"
	"time"
)

func Stamp() time.Time { return time.Now() }

func Jitter() time.Duration {
	return time.Duration(rand.Intn(1000)) * time.Millisecond
}

func Keys(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}
