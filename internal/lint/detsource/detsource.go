// Package detsource enforces SOTER's determinism-by-construction invariant
// at the source level. Every simulation result in this repo — the golden
// event streams, the fingerprint-keyed result cache, the fleet reports that
// must agree at any worker count — assumes that a run is a pure function of
// (Spec, seed). That only holds if the deterministic packages never consult
// ambient nondeterminism. This analyzer forbids, inside those packages:
//
//   - time.Now / time.Since / time.Until — wall-clock reads;
//   - the top-level math/rand and math/rand/v2 functions (rand.Int,
//     rand.Float64, rand.Shuffle, …) which draw from the shared global
//     source; explicitly seeded generators (rand.New(rand.NewSource(s)))
//     remain legal;
//   - `range` over a map whose body writes to state that escapes the loop,
//     unless the write is order-independent (a keyed write into another map,
//     an integer accumulation, a constant store) or the collected slice is
//     sorted afterwards in the same function.
//
// Audited exceptions (wall-clock measurement of a report, signal plumbing)
// are annotated in place: //soter:nondet-ok <reason>.
package detsource

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"

	"repro/internal/lint/directive"
)

// Analyzer is the detsource analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "detsource",
	Doc:  "forbid wall-clock reads, global rand and order-dependent map iteration in deterministic packages",
	Run:  run,
}

// Deterministic lists the packages (by import-path base) whose behaviour
// must be a pure function of (Spec, seed). It is shared with the other
// determinism-scoped analyzers (obstacleview) so the set cannot drift.
var Deterministic = map[string]bool{
	"sim": true, "fleet": true, "rta": true, "runtime": true,
	"plant": true, "pubsub": true, "scenario": true, "plan": true,
	"mission": true, "reach": true, "battery": true, "falsify": true,
	"certify": true,
}

// allowedRand lists the math/rand top-level functions that construct
// explicitly seeded generators instead of drawing from the global source.
var allowedRand = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true, // math/rand/v2 constructors
}

const suppress = "nondet-ok"

func run(pass *analysis.Pass) (interface{}, error) {
	if !Deterministic[PathBase(pass.Pkg.Path())] {
		return nil, nil
	}
	idx := directive.ParseFiles(pass.Fset, pass.Files)
	for _, file := range pass.Files {
		name := pass.Fset.Position(file.FileStart).Filename
		if strings.HasSuffix(name, "_test.go") {
			continue // test code may measure and shuffle freely
		}
		checkAmbientSources(pass, idx, file)
		checkMapRanges(pass, idx, file)
	}
	return nil, nil
}

// PathBase returns the last import-path element, with any " [p.test]"
// test-variant suffix stripped.
func PathBase(path string) string {
	if i := strings.Index(path, " ["); i >= 0 {
		path = path[:i]
	}
	if i := strings.LastIndex(path, "/"); i >= 0 {
		path = path[i+1:]
	}
	return path
}

// checkAmbientSources reports references to wall-clock and global-rand
// functions. References, not just calls: passing time.Now as a value smuggles
// the same nondeterminism.
func checkAmbientSources(pass *analysis.Pass, idx *directive.Index, file *ast.File) {
	ast.Inspect(file, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil {
			return true
		}
		if fn.Type().(*types.Signature).Recv() != nil {
			return true // methods (e.g. (*rand.Rand).Float64) are seeded
		}
		switch fn.Pkg().Path() {
		case "time":
			switch fn.Name() {
			case "Now", "Since", "Until":
				if !idx.SuppressedAt(pass, suppress, sel.Pos()) {
					pass.ReportRangef(sel, "time.%s reads the wall clock in deterministic package %s (use simulated time, or annotate //soter:nondet-ok <reason>)", fn.Name(), pass.Pkg.Name())
				}
			}
		case "math/rand", "math/rand/v2":
			if !allowedRand[fn.Name()] {
				if !idx.SuppressedAt(pass, suppress, sel.Pos()) {
					pass.ReportRangef(sel, "global rand.%s in deterministic package %s (draw from a seeded *rand.Rand, or annotate //soter:nondet-ok <reason>)", fn.Name(), pass.Pkg.Name())
				}
			}
		}
		return true
	})
}

// checkMapRanges reports map-range loops whose bodies publish iteration
// order into escaping state.
func checkMapRanges(pass *analysis.Pass, idx *directive.Index, file *ast.File) {
	// enclosing tracks the innermost function body so the sorted-later
	// exception knows where "later" ends.
	var funcStack []ast.Node
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			if n.Body != nil {
				funcStack = append(funcStack, n.Body)
				ast.Inspect(n.Body, walk)
				funcStack = funcStack[:len(funcStack)-1]
			}
			return false
		case *ast.FuncLit:
			funcStack = append(funcStack, n.Body)
			ast.Inspect(n.Body, walk)
			funcStack = funcStack[:len(funcStack)-1]
			return false
		case *ast.RangeStmt:
			var encl ast.Node
			if len(funcStack) > 0 {
				encl = funcStack[len(funcStack)-1]
			}
			checkOneRange(pass, idx, n, encl)
		}
		return true
	}
	ast.Inspect(file, walk)
}

func checkOneRange(pass *analysis.Pass, idx *directive.Index, rng *ast.RangeStmt, enclosing ast.Node) {
	t := pass.TypesInfo.TypeOf(rng.X)
	if t == nil {
		return
	}
	if _, ok := t.Underlying().(*types.Map); !ok {
		return
	}
	rangeVars := map[types.Object]bool{}
	for _, e := range []ast.Expr{rng.Key, rng.Value} {
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
			if obj := pass.TypesInfo.Defs[id]; obj != nil {
				rangeVars[obj] = true
			}
		}
	}
	report := func(rg analysis.Range, format string, args ...interface{}) {
		if idx.SuppressedAt(pass, suppress, rg.Pos()) || idx.SuppressedAt(pass, suppress, rng.For) {
			return
		}
		pass.ReportRangef(rg, format, args...)
	}

	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				checkWrite(pass, report, rng, enclosing, rangeVars, n, lhs, i)
			}
		case *ast.IncDecStmt:
			if !writesInner(pass, rng, n.X) && !isIntegerTyped(pass, n.X) {
				report(n, "non-integer %s on state escaping a map-range loop: result depends on iteration order", n.Tok)
			}
		case *ast.SendStmt:
			report(n, "channel send inside a map-range loop publishes iteration order")
		case *ast.GoStmt:
			report(n, "goroutine launched per map-range iteration: scheduling order follows map order")
		}
		return true
	})
}

// checkWrite vets one assignment target inside a map-range body.
func checkWrite(pass *analysis.Pass, report func(analysis.Range, string, ...interface{}), rng *ast.RangeStmt, enclosing ast.Node, rangeVars map[types.Object]bool, stmt *ast.AssignStmt, lhs ast.Expr, i int) {
	if id, ok := lhs.(*ast.Ident); ok && id.Name == "_" {
		return
	}
	if writesInner(pass, rng, lhs) {
		return // target declared inside the loop body: nothing escapes
	}
	// Keyed writes (out[k] = v, or values[id] = v with id derived from the
	// key inside the loop) land in a position named by the key, not by
	// iteration order.
	if ix, ok := lhs.(*ast.IndexExpr); ok {
		switch pass.TypesInfo.TypeOf(ix.X).Underlying().(type) {
		case *types.Map, *types.Slice, *types.Array:
			if mentionsAny(pass, ix.Index, rangeVars) || mentionsLoopLocal(pass, ix.Index, rng) {
				return
			}
		}
	}
	switch stmt.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.AND_ASSIGN, token.OR_ASSIGN, token.XOR_ASSIGN:
		// Commutative integer accumulation is order-independent.
		if isIntegerTyped(pass, lhs) {
			return
		}
	case token.ASSIGN:
		if len(stmt.Lhs) == len(stmt.Rhs) {
			rhs := stmt.Rhs[i]
			// Storing a constant is idempotent across iterations.
			if tv, ok := pass.TypesInfo.Types[rhs]; ok && tv.Value != nil {
				return
			}
			// Accumulate-then-sort: v = append(v, …) is fine when v is
			// sorted after the loop, the canonical determinism fix.
			if isAppendTo(pass, rhs, lhs) && sortedAfter(pass, enclosing, rng, lhs) {
				return
			}
		}
	}
	report(lhs, "write to %s escapes a map-range loop: iteration order is nondeterministic (sort the keys first, or annotate //soter:nondet-ok <reason>)", exprString(lhs))
}

// writesInner reports whether the write target's root is declared inside the
// loop body (or is itself unresolvable, which only happens for inner
// temporaries of malformed code).
func writesInner(pass *analysis.Pass, rng *ast.RangeStmt, e ast.Expr) bool {
	root := rootIdent(e)
	if root == nil {
		return false
	}
	obj := pass.TypesInfo.Uses[root]
	if obj == nil {
		obj = pass.TypesInfo.Defs[root]
	}
	if obj == nil {
		return false
	}
	return obj.Pos() >= rng.Body.Pos() && obj.Pos() <= rng.Body.End()
}

// rootIdent peels selectors, indexes, derefs and parens down to the base
// identifier of an assignable expression.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// mentionsAny reports whether the expression references any of the objects.
func mentionsAny(pass *analysis.Pass, e ast.Expr, objs map[types.Object]bool) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && objs[pass.TypesInfo.Uses[id]] {
			found = true
		}
		return !found
	})
	return found
}

// mentionsLoopLocal reports whether the expression references a variable
// declared inside the loop body (a per-iteration derivation of the key).
func mentionsLoopLocal(pass *analysis.Pass, e ast.Expr, rng *ast.RangeStmt) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return !found
		}
		obj := pass.TypesInfo.Uses[id]
		if obj != nil && obj.Pos() >= rng.Body.Pos() && obj.Pos() <= rng.Body.End() {
			found = true
		}
		return !found
	})
	return found
}

func isIntegerTyped(pass *analysis.Pass, e ast.Expr) bool {
	t := pass.TypesInfo.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

// isAppendTo reports whether rhs is append(dst, …) growing the same
// expression as dst.
func isAppendTo(pass *analysis.Pass, rhs, dst ast.Expr) bool {
	call, ok := rhs.(*ast.CallExpr)
	if !ok || len(call.Args) == 0 {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); !ok || b.Name() != "append" {
		return false
	}
	return exprString(call.Args[0]) == exprString(dst)
}

// sortedAfter reports whether the written variable is handed to a sorting
// call after the loop, within the same enclosing function body.
func sortedAfter(pass *analysis.Pass, enclosing ast.Node, rng *ast.RangeStmt, dst ast.Expr) bool {
	if enclosing == nil {
		return false
	}
	root := rootIdent(dst)
	if root == nil {
		return false
	}
	obj := pass.TypesInfo.Uses[root]
	if obj == nil {
		return false
	}
	sorted := false
	ast.Inspect(enclosing, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() || sorted {
			return !sorted
		}
		if !isSortCall(pass, call) {
			return true
		}
		for _, arg := range call.Args {
			if argRoot := rootIdent(arg); argRoot != nil && pass.TypesInfo.Uses[argRoot] == obj {
				sorted = true
			}
		}
		return !sorted
	})
	return sorted
}

// isSortCall recognises the sort and slices ordering entry points, plus any
// helper whose name mentions Sort.
func isSortCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		if fn, ok := pass.TypesInfo.Uses[fun.Sel].(*types.Func); ok && fn.Pkg() != nil {
			if p := fn.Pkg().Path(); p == "sort" || p == "slices" {
				return true
			}
			return strings.Contains(fn.Name(), "Sort")
		}
	case *ast.Ident:
		if fn, ok := pass.TypesInfo.Uses[fun].(*types.Func); ok {
			return strings.Contains(fn.Name(), "Sort")
		}
	case *ast.IndexExpr: // generic instantiation: slices.Sort[S, E](…)
		if sel, ok := fun.X.(*ast.SelectorExpr); ok {
			if fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func); ok && fn.Pkg() != nil {
				p := fn.Pkg().Path()
				return p == "sort" || p == "slices" || strings.Contains(fn.Name(), "Sort")
			}
		}
	}
	return false
}

// exprString renders a simple assignable expression for diagnostics and
// append-target matching.
func exprString(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return exprString(x.X) + "." + x.Sel.Name
	case *ast.IndexExpr:
		return exprString(x.X) + "[…]"
	case *ast.StarExpr:
		return "*" + exprString(x.X)
	case *ast.ParenExpr:
		return "(" + exprString(x.X) + ")"
	default:
		return "expression"
	}
}
