package lint_test

import (
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/driver"
	"repro/internal/lint/load"
)

// TestRepoIsCleanUnderSuite runs the whole soter-vet suite over the module,
// test files included — the same pass CI runs via cmd/soter-vet, embedded in
// `go test ./...` so the invariants hold even where CI is not wired up.
// Fixture packages under testdata are excluded by Go's wildcard rules, so
// their intentional violations do not fire here.
func TestRepoIsCleanUnderSuite(t *testing.T) {
	if testing.Short() {
		t.Skip("typechecks the whole module; skipped in -short mode")
	}
	pkgs, err := load.Load(load.Config{Patterns: []string{"repro/..."}, Tests: true})
	if err != nil {
		t.Fatalf("loading the module: %v", err)
	}
	diags, err := driver.Run(pkgs, lint.Suite())
	if err != nil {
		t.Fatalf("running the suite: %v", err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
	if len(diags) > 0 {
		t.Log("fix the findings or annotate audited exceptions with //soter:nondet-ok / //soter:ctx-ok <reason>")
	}
}
