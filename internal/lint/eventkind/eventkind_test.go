package eventkind_test

import (
	"testing"

	"repro/internal/lint/eventkind"
	"repro/internal/lint/linttest"
)

func TestEventKind(t *testing.T) {
	linttest.Run(t, eventkind.Analyzer, "testdata/src/obs")
}
