// Package obs is the eventkind fixture: a miniature event vocabulary where
// each kind below KindAlpha is broken in exactly one of the four plumbing
// stations the analyzer checks — the wire-name table, the decode switch,
// the Kind() method and the round-trip corpus.
package obs

import "fmt"

// Kind discriminates event types on the wire.
type Kind uint8

const (
	KindAlpha   Kind = iota // fully plumbed: no diagnostics
	KindBeta                // want `KindBeta has no event in the allEventKinds round-trip corpus`
	KindGamma               // want `KindGamma is not decoded by UnmarshalEvent`
	KindDelta               // want `KindDelta has no entry in the wire-name table kindNames`
	KindEpsilon             // want `no event type's Kind\(\) method returns KindEpsilon` `KindEpsilon has no event in the allEventKinds round-trip corpus`
	numKinds                // unexported sentinel: not an event kind
)

// kindNames is the wire-name table; KindDelta is deliberately missing.
var kindNames = [numKinds]string{
	KindAlpha:   "alpha",
	KindBeta:    "beta",
	KindGamma:   "gamma",
	KindEpsilon: "epsilon",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) && kindNames[k] != "" {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", k)
}

// AlphaEvent is the fully plumbed event.
type AlphaEvent struct{ N int }

func (AlphaEvent) Kind() Kind { return KindAlpha }

// BetaEvent exists and decodes but is absent from the corpus.
type BetaEvent struct{ S string }

func (BetaEvent) Kind() Kind { return KindBeta }

// GammaEvent exists but UnmarshalEvent cannot produce it.
type GammaEvent struct{}

func (GammaEvent) Kind() Kind { return KindGamma }

// DeltaEvent exists but has no wire name.
type DeltaEvent struct{}

func (DeltaEvent) Kind() Kind { return KindDelta }

// KindEpsilon has no event type at all.

// UnmarshalEvent is the decode switch; KindGamma is deliberately missing.
func UnmarshalEvent(k Kind, data []byte) (interface{}, error) {
	switch k {
	case KindAlpha:
		return AlphaEvent{}, nil
	case KindBeta:
		return BetaEvent{}, nil
	case KindDelta:
		return DeltaEvent{}, nil
	case KindEpsilon:
		return nil, fmt.Errorf("epsilon has no concrete type")
	}
	return nil, fmt.Errorf("unknown kind %s", k)
}

// allEventKinds is the round-trip corpus; BetaEvent is deliberately missing,
// and KindEpsilon cannot appear because it has no type.
func allEventKinds() []interface{} {
	return []interface{}{
		AlphaEvent{N: 1},
		GammaEvent{},
		DeltaEvent{},
	}
}
