// Package eventkind makes extending the obs event taxonomy an
// all-or-nothing operation. The JSONL event stream is a wire format: every
// obs.Kind must have a wire name (kindNames), a decode arm (UnmarshalEvent's
// kind switch), a concrete event type declaring it (a Kind() method), and a
// populated instance in the round-trip corpus (allEventKinds) that pins the
// encode/decode cycle. Before this analyzer, forgetting one of the four was
// a latent decode failure discovered at replay time; now it is a build
// error positioned at the Kind constant that was added.
package eventkind

import (
	"go/ast"
	"go/constant"
	"go/types"
	"sort"
	"strings"

	"golang.org/x/tools/go/analysis"
)

// Analyzer is the eventkind analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "eventkind",
	Doc:  "require every obs.Kind to be plumbed through the name table, the JSONL decode switch, a Kind() method and the round-trip corpus",
	Run:  run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	if pathBase(pass.Pkg.Path()) != "obs" {
		return nil, nil
	}
	kinds := kindConstants(pass)
	if len(kinds) == 0 {
		return nil, nil // not an event vocabulary package after all
	}

	checkTable(pass, kinds, "kindNames", "wire-name table kindNames")
	checkDecodeSwitch(pass, kinds)
	typeKinds := checkKindMethods(pass, kinds)
	checkCorpus(pass, kinds, typeKinds)
	return nil, nil
}

func pathBase(path string) string {
	if i := strings.Index(path, " ["); i >= 0 {
		path = path[:i]
	}
	if i := strings.LastIndex(path, "/"); i >= 0 {
		path = path[i+1:]
	}
	return path
}

// kindConstants returns the exported package-level constants of the defined
// type Kind, in declaration value order. Unexported constants (the numKinds
// sentinel) and constants of other types (KindCount) are not event kinds.
func kindConstants(pass *analysis.Pass) []*types.Const {
	scope := pass.Pkg.Scope()
	kindType, ok := scope.Lookup("Kind").(*types.TypeName)
	if !ok {
		return nil
	}
	var kinds []*types.Const
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || !c.Exported() || c.Type() != kindType.Type() {
			continue
		}
		kinds = append(kinds, c)
	}
	sort.Slice(kinds, func(i, j int) bool {
		a, _ := constant.Int64Val(kinds[i].Val())
		b, _ := constant.Int64Val(kinds[j].Val())
		return a < b
	})
	return kinds
}

// usedKinds collects which of the kinds are referenced anywhere under node.
func usedKinds(pass *analysis.Pass, node ast.Node, kinds []*types.Const) map[*types.Const]bool {
	used := map[*types.Const]bool{}
	byObj := map[types.Object]*types.Const{}
	for _, k := range kinds {
		byObj[k] = k
	}
	ast.Inspect(node, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if k, ok := byObj[pass.TypesInfo.Uses[id]]; ok {
				used[k] = true
			}
		}
		return true
	})
	return used
}

// checkTable requires every kind to index the named package-level table.
func checkTable(pass *analysis.Pass, kinds []*types.Const, varName, what string) {
	spec := findVarSpec(pass, varName)
	if spec == nil {
		pass.Reportf(kinds[0].Pos(), "package %s defines event kinds but no %s", pass.Pkg.Name(), what)
		return
	}
	used := usedKinds(pass, spec, kinds)
	for _, k := range kinds {
		if !used[k] {
			pass.Reportf(k.Pos(), "%s has no entry in the %s", k.Name(), what)
		}
	}
}

// checkDecodeSwitch requires every kind to appear in UnmarshalEvent's kind
// switch, so every wire name decodes to its concrete type.
func checkDecodeSwitch(pass *analysis.Pass, kinds []*types.Const) {
	fd := findFunc(pass, "UnmarshalEvent", false)
	if fd == nil {
		pass.Reportf(kinds[0].Pos(), "package %s defines event kinds but no UnmarshalEvent decode switch", pass.Pkg.Name())
		return
	}
	used := usedKinds(pass, fd.Body, kinds)
	for _, k := range kinds {
		if !used[k] {
			pass.Reportf(k.Pos(), "%s is not decoded by UnmarshalEvent: events of this kind round-trip to an error", k.Name())
		}
	}
}

// checkKindMethods requires a concrete event type whose Kind() method
// returns each kind, and returns the type→kind mapping for the corpus check.
func checkKindMethods(pass *analysis.Pass, kinds []*types.Const) map[types.Type]*types.Const {
	byObj := map[types.Object]*types.Const{}
	for _, k := range kinds {
		byObj[k] = k
	}
	covered := map[*types.Const]bool{}
	typeKinds := map[types.Type]*types.Const{}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Name.Name != "Kind" || fd.Recv == nil || fd.Body == nil {
				continue
			}
			fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			recv := fn.Type().(*types.Signature).Recv().Type()
			if ptr, ok := recv.(*types.Pointer); ok {
				recv = ptr.Elem()
			}
			for k := range usedKinds(pass, fd.Body, kinds) {
				covered[k] = true
				typeKinds[recv] = k
			}
		}
	}
	for _, k := range kinds {
		if !covered[k] {
			pass.Reportf(k.Pos(), "no event type's Kind() method returns %s: the kind has no concrete event", k.Name())
		}
	}
	return typeKinds
}

// checkCorpus requires one populated instance of every kind's event type in
// the allEventKinds round-trip corpus. The corpus lives in a test file, so
// this check fires on the package's test variant; analyzing the plain
// package skips it.
func checkCorpus(pass *analysis.Pass, kinds []*types.Const, typeKinds map[types.Type]*types.Const) {
	fd := findFunc(pass, "allEventKinds", true)
	if fd == nil {
		return
	}
	covered := map[*types.Const]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		cl, ok := n.(*ast.CompositeLit)
		if !ok {
			return true
		}
		t := pass.TypesInfo.TypeOf(cl)
		if t == nil {
			return true
		}
		if k, ok := typeKinds[t]; ok {
			covered[k] = true
		}
		return true
	})
	for _, k := range kinds {
		if !covered[k] {
			pass.Reportf(k.Pos(), "%s has no event in the allEventKinds round-trip corpus: the JSONL encoding of this kind is untested", k.Name())
		}
	}
}

// findVarSpec locates a package-level var/const spec declaring the name.
func findVarSpec(pass *analysis.Pass, name string) *ast.ValueSpec {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, id := range vs.Names {
					if id.Name == name {
						return vs
					}
				}
			}
		}
	}
	return nil
}

// findFunc locates a top-level function by name; withBody requires one.
func findFunc(pass *analysis.Pass, name string, withBody bool) *ast.FuncDecl {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if ok && fd.Recv == nil && fd.Name.Name == name && (!withBody || fd.Body != nil) {
				return fd
			}
		}
	}
	return nil
}
