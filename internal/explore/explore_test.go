package explore

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sort"
	"testing"
	"time"

	"repro/internal/node"
	"repro/internal/pubsub"
	"repro/internal/rta"
	"repro/internal/runtime"
)

// buildToggleSystem builds a module whose safety depends on the interleaving
// of two writer nodes racing on the monitored topic: writer "bad" publishes
// danger=true, writer "good" publishes danger=false, both every 10ms. The
// module's φsafe is ¬danger at DM sampling instants, so schedules where
// "bad" fires after "good" at a sampling instant violate φInv — exactly the
// class of interleaving bugs the paper's systematic-testing backend hunts.
func buildToggleSystem() (*Instance, error) {
	writer := func(name string, val bool) (*node.Node, error) {
		return node.New(name, 10*time.Millisecond, nil, []pubsub.TopicName{"danger/" + pubsub.TopicName(name)},
			func(st node.State, _ pubsub.Valuation) (node.State, pubsub.Valuation, error) {
				return st, pubsub.Valuation{"danger/" + pubsub.TopicName(name): val}, nil
			})
	}
	// A combiner that ORs the two writers... to keep the race observable we
	// instead have both writers publish on their own topic and the module
	// monitor the one written LAST via a shared mailbox node.
	mailbox, err := node.New("mailbox", 10*time.Millisecond,
		[]pubsub.TopicName{"danger/bad", "danger/good"}, []pubsub.TopicName{"danger"},
		func(st node.State, in pubsub.Valuation) (node.State, pubsub.Valuation, error) {
			bad, _ := in["danger/bad"].(bool)
			return st, pubsub.Valuation{"danger": bad}, nil
		})
	if err != nil {
		return nil, err
	}

	bad, err := writer("bad", true)
	if err != nil {
		return nil, err
	}
	good, err := writer("good", false)
	if err != nil {
		return nil, err
	}
	// AC and SC both idle; the module just monitors.
	mkCtrl := func(name string) (*node.Node, error) {
		return node.New(name, 10*time.Millisecond, []pubsub.TopicName{"danger/bad"}, []pubsub.TopicName{"cmd"},
			func(st node.State, _ pubsub.Valuation) (node.State, pubsub.Valuation, error) {
				return st, nil, nil
			})
	}
	ac, err := mkCtrl("m.ac")
	if err != nil {
		return nil, err
	}
	sc, err := mkCtrl("m.sc")
	if err != nil {
		return nil, err
	}
	mod, err := rta.NewModule(rta.Decl{
		Name:  "m",
		AC:    ac,
		SC:    sc,
		Delta: 10 * time.Millisecond,
		TTF2Delta: func(v pubsub.Valuation) bool {
			b, _ := v["danger"].(bool)
			return b
		},
		InSafer: func(v pubsub.Valuation) bool {
			b, _ := v["danger"].(bool)
			return !b
		},
		// φsafe fails when the DM samples danger=true — which happens only
		// under schedules where "bad" fired after "good" in the PREVIOUS
		// round (the mailbox reads topics before this round's writers).
		Safe: func(v pubsub.Valuation) bool {
			b, _ := v["danger"].(bool)
			return !b
		},
		Monitored: []pubsub.TopicName{"danger"},
		DMPhase:   10 * time.Millisecond,
	})
	if err != nil {
		return nil, err
	}
	sys, err := rta.NewSystem([]*rta.Module{mod}, []*node.Node{bad, good, mailbox})
	if err != nil {
		return nil, err
	}
	return &Instance{System: sys}, nil
}

func TestExhaustiveFindsInterleavingViolation(t *testing.T) {
	rep, err := Run(context.Background(), Config{
		Build:        buildToggleSystem,
		Horizon:      50 * time.Millisecond,
		MaxSchedules: 4000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Violations) == 0 {
		t.Fatal("exhaustive exploration missed the schedule-dependent violation")
	}
	if rep.Schedules == 0 || rep.ChoicePoints == 0 {
		t.Errorf("report = %+v", rep)
	}
	// The counterexample replays: re-running its exact choice vector
	// reproduces the violation at the same time.
	v := rep.Violations[0]
	var iv *runtime.InvariantViolationError
	if !errors.As(v.Err, &iv) {
		t.Fatalf("violation error = %v", v.Err)
	}
	rep2, err := Run(context.Background(), Config{
		Build:                buildToggleSystem,
		Horizon:              v.Time,
		MaxSchedules:         1,
		StopAtFirstViolation: true,
	})
	_ = rep2 // the default-order first schedule may or may not hit it; the
	// deterministic replay below is the real check.
	tr, err := execute(Config{Build: buildToggleSystem, Horizon: v.Time, MaxPermutation: 720}, v.Choices, nil)
	if err != nil {
		t.Fatal(err)
	}
	if tr.violation == nil || tr.violation.Time != v.Time {
		t.Fatalf("replay did not reproduce the violation: %+v", tr.violation)
	}
}

// ReplaySchedule is the exported replay entry point counterexample corpora
// use: feeding a violation's choice vector back must reproduce the violation
// deterministically, and a vector from a safe run must come back clean.
func TestReplaySchedule(t *testing.T) {
	rep, err := Run(context.Background(), Config{
		Build:        buildToggleSystem,
		Horizon:      50 * time.Millisecond,
		MaxSchedules: 4000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Violations) == 0 {
		t.Fatal("no violation to replay")
	}
	want := rep.Violations[0]
	got, err := ReplaySchedule(Config{Build: buildToggleSystem, Horizon: want.Time}, want.Choices)
	if err != nil {
		t.Fatal(err)
	}
	if got == nil {
		t.Fatal("replay no longer reproduces the violation")
	}
	if got.Time != want.Time || !reflect.DeepEqual(got.Choices, want.Choices) {
		t.Errorf("replay diverged: got %+v, want %+v", got, want)
	}
	// The identity schedule (all zero choices) is the default firing order —
	// on the safe single-node system it must replay clean.
	safe := func() (*Instance, error) {
		n, err := node.New("solo", 10*time.Millisecond, nil, []pubsub.TopicName{"t"},
			func(st node.State, _ pubsub.Valuation) (node.State, pubsub.Valuation, error) {
				return st, pubsub.Valuation{"t": 1}, nil
			})
		if err != nil {
			return nil, err
		}
		sys, err := rta.NewSystem(nil, []*node.Node{n})
		if err != nil {
			return nil, err
		}
		return &Instance{System: sys}, nil
	}
	clean, err := ReplaySchedule(Config{Build: safe, Horizon: 50 * time.Millisecond}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if clean != nil {
		t.Errorf("safe system replayed as violating: %+v", clean)
	}
	// Config validation still applies on the replay path.
	if _, err := ReplaySchedule(Config{Horizon: time.Second}, nil); err == nil {
		t.Error("nil builder accepted")
	}
	if _, err := ReplaySchedule(Config{Build: safe}, nil); err == nil {
		t.Error("zero horizon accepted")
	}
}

func TestRandomModeFindsViolation(t *testing.T) {
	seeds := make([]int64, 60)
	for i := range seeds {
		seeds[i] = int64(i + 1)
	}
	rep, err := Run(context.Background(), Config{
		Build:        buildToggleSystem,
		Horizon:      50 * time.Millisecond,
		MaxSchedules: len(seeds),
		Seeds:        seeds,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Violations) == 0 {
		t.Fatal("random exploration missed the violation across 60 seeds")
	}
	if rep.Violations[0].Seed == 0 {
		t.Error("random violation should record its seed")
	}
}

func TestExhaustiveTerminatesOnSafeSystem(t *testing.T) {
	build := func() (*Instance, error) {
		n, err := node.New("solo", 10*time.Millisecond, nil, []pubsub.TopicName{"t"},
			func(st node.State, _ pubsub.Valuation) (node.State, pubsub.Valuation, error) {
				return st, pubsub.Valuation{"t": 1}, nil
			})
		if err != nil {
			return nil, err
		}
		sys, err := rta.NewSystem(nil, []*node.Node{n})
		if err != nil {
			return nil, err
		}
		return &Instance{System: sys}, nil
	}
	rep, err := Run(context.Background(), Config{Build: build, Horizon: 100 * time.Millisecond, MaxSchedules: 100})
	if err != nil {
		t.Fatal(err)
	}
	// One node: every choice point has branching 1, so the tree has exactly
	// one schedule.
	if !rep.Exhausted || rep.Schedules != 1 || len(rep.Violations) != 0 {
		t.Errorf("report = %+v", rep)
	}
}

func TestPropertyHook(t *testing.T) {
	wantErr := fmt.Errorf("custom property failed")
	build := func() (*Instance, error) {
		n, err := node.New("solo", 10*time.Millisecond, nil, []pubsub.TopicName{"t"},
			func(st node.State, _ pubsub.Valuation) (node.State, pubsub.Valuation, error) {
				return st, pubsub.Valuation{"t": 1}, nil
			})
		if err != nil {
			return nil, err
		}
		sys, err := rta.NewSystem(nil, []*node.Node{n})
		if err != nil {
			return nil, err
		}
		return &Instance{
			System: sys,
			Property: func(exec *runtime.Executor) error {
				if exec.Now() >= 30*time.Millisecond {
					return wantErr
				}
				return nil
			},
		}, nil
	}
	rep, err := Run(context.Background(), Config{
		Build:                build,
		Horizon:              100 * time.Millisecond,
		MaxSchedules:         5,
		StopAtFirstViolation: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Violations) != 1 || !errors.Is(rep.Violations[0].Err, wantErr) {
		t.Errorf("violations = %+v", rep.Violations)
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(context.Background(), Config{Horizon: time.Second}); err == nil {
		t.Error("nil builder accepted")
	}
	if _, err := Run(context.Background(), Config{Build: buildToggleSystem}); err == nil {
		t.Error("zero horizon accepted")
	}
}

func TestPermute(t *testing.T) {
	s := []string{"a", "b", "c"}
	var got []string
	seen := map[string]bool{}
	for idx := 0; idx < 6; idx++ {
		got = permute(s, idx)
		if len(got) != 3 {
			t.Fatalf("permute(%d) = %v", idx, got)
		}
		key := fmt.Sprint(got)
		if seen[key] {
			t.Fatalf("permutation %d repeated %v", idx, got)
		}
		seen[key] = true
		sorted := append([]string(nil), got...)
		sort.Strings(sorted)
		if !reflect.DeepEqual(sorted, s) {
			t.Fatalf("permute(%d) = %v is not a permutation", idx, got)
		}
	}
	// Index 0 is the identity.
	if !reflect.DeepEqual(permute(s, 0), s) {
		t.Error("permute(0) is not the identity")
	}
	// The input is not modified.
	if !reflect.DeepEqual(s, []string{"a", "b", "c"}) {
		t.Error("permute mutated its input")
	}
}

func TestNextVector(t *testing.T) {
	tests := []struct {
		chosen, branching, want []int
	}{
		{[]int{0, 0}, []int{2, 2}, []int{0, 1}},
		{[]int{0, 1}, []int{2, 2}, []int{1}},
		{[]int{1, 1}, []int{2, 2}, nil},
		{nil, nil, nil},
		{[]int{0, 2, 0}, []int{1, 3, 1}, []int{0, 2, 0}[0:0]}, // increment impossible at tail → nil? see below
	}
	for i, tt := range tests[:4] {
		got := nextVector(tt.chosen, tt.branching)
		if !reflect.DeepEqual(got, tt.want) {
			t.Errorf("case %d: nextVector = %v, want %v", i, got, tt.want)
		}
	}
	// Branching-1 positions can never be incremented.
	if got := nextVector([]int{0, 2, 0}, []int{1, 3, 1}); got != nil {
		t.Errorf("saturated vector incremented to %v", got)
	}
}

func TestBranchingOf(t *testing.T) {
	for k, want := range map[int]int{0: 1, 1: 1, 2: 2, 3: 6, 4: 24} {
		if got := branchingOf(k, 720); got != want {
			t.Errorf("branchingOf(%d) = %d, want %d", k, got, want)
		}
	}
	if got := branchingOf(10, 100); got != 100 {
		t.Errorf("cap not applied: %d", got)
	}
}
