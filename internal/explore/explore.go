// Package explore is the systematic-testing backend of the SOTER tool chain
// (Section V, "SOTER tool chain"): it enumerates, in a model-checking style,
// executions of an RTA system by controlling the interleaving of node
// firings with an external scheduler. Since a SOTER program is a multi-rate
// periodic system, only schedules satisfying bounded-asynchrony semantics
// are explored: time advances in rounds, and within a round every node fires
// exactly once, in any order — the scheduler enumerates (or samples) the
// per-round permutations.
//
// Executions are replay-based: systems carry arbitrary local state and
// plant environments, so instead of snapshotting configurations the engine
// re-runs a fresh system instance per schedule, driving choice points from a
// choice vector. Exhaustive mode enumerates choice vectors in lexicographic
// order (a stateless DFS); random mode samples one schedule per seed.
package explore

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/pubsub"
	"repro/internal/rta"
	"repro/internal/runtime"
)

// Instance is a freshly built system under test: the engine needs a new one
// per execution because node-local and environment state is not resettable.
type Instance struct {
	System *rta.System
	// Env is the optional environment hook (plant in the loop).
	Env runtime.Environment
	// EnvTopics declares environment-input topics with defaults.
	EnvTopics []pubsub.Topic
	// Property is an optional safety property checked after every discrete
	// step; returning an error marks a violation. The executor's built-in
	// φInv monitor runs in addition.
	Property func(exec *runtime.Executor) error
}

// Builder constructs a fresh instance; it is called once per schedule.
type Builder func() (*Instance, error)

// Config configures an exploration.
type Config struct {
	// Build constructs the system under test.
	Build Builder
	// Horizon bounds each execution in system time.
	Horizon time.Duration
	// MaxSchedules bounds the number of executions (exhaustive mode may
	// terminate earlier when the tree is exhausted).
	MaxSchedules int
	// MaxPermutation caps the branching at a choice point: with k nodes
	// firing at an instant there are k! interleavings; only the first
	// MaxPermutation are explored (0 means all, capped internally at 720).
	MaxPermutation int
	// Seeds enables random mode: one execution per seed, with uniformly
	// random per-instant permutations, instead of exhaustive enumeration.
	Seeds []int64
	// StopAtFirstViolation ends the exploration at the first
	// counterexample.
	StopAtFirstViolation bool
}

// Violation is a counterexample: the choice vector reproduces it exactly by
// replaying the same schedule.
type Violation struct {
	Choices []int
	Seed    int64 // random mode only
	Time    time.Duration
	Err     error
}

// Report summarises an exploration.
type Report struct {
	Schedules    int
	ChoicePoints int
	Violations   []Violation
	Exhausted    bool // exhaustive mode visited the whole bounded tree
}

// Run performs the exploration. Cancelling the context stops the search at
// the next schedule boundary: the partial Report accumulated so far is
// returned together with the context's error, so an interrupted hunt keeps
// the counterexamples it already found.
func Run(ctx context.Context, cfg Config) (*Report, error) {
	if cfg.Build == nil {
		return nil, errors.New("explore: nil builder")
	}
	if cfg.Horizon <= 0 {
		return nil, errors.New("explore: non-positive horizon")
	}
	if cfg.MaxSchedules <= 0 {
		cfg.MaxSchedules = 128
	}
	if cfg.MaxPermutation <= 0 || cfg.MaxPermutation > 720 {
		cfg.MaxPermutation = 720
	}
	if len(cfg.Seeds) > 0 {
		return runRandom(ctx, cfg)
	}
	return runExhaustive(ctx, cfg)
}

// runExhaustive enumerates choice vectors in lexicographic order.
func runExhaustive(ctx context.Context, cfg Config) (*Report, error) {
	rep := &Report{}
	prefix := []int{}
	for rep.Schedules < cfg.MaxSchedules {
		if err := ctx.Err(); err != nil {
			return rep, err
		}
		tr, err := execute(cfg, prefix, nil)
		if err != nil {
			return nil, err
		}
		rep.Schedules++
		rep.ChoicePoints += len(tr.chosen)
		if tr.violation != nil {
			rep.Violations = append(rep.Violations, *tr.violation)
			if cfg.StopAtFirstViolation {
				return rep, nil
			}
		}
		// Lexicographic increment of the full choice vector.
		next := nextVector(tr.chosen, tr.branching)
		if next == nil {
			rep.Exhausted = true
			return rep, nil
		}
		prefix = next
	}
	return rep, nil
}

// runRandom samples one schedule per seed.
func runRandom(ctx context.Context, cfg Config) (*Report, error) {
	rep := &Report{}
	for _, seed := range cfg.Seeds {
		if rep.Schedules >= cfg.MaxSchedules {
			break
		}
		if err := ctx.Err(); err != nil {
			return rep, err
		}
		tr, err := execute(cfg, nil, &seed)
		if err != nil {
			return nil, err
		}
		rep.Schedules++
		rep.ChoicePoints += len(tr.chosen)
		if tr.violation != nil {
			v := *tr.violation
			v.Seed = seed
			rep.Violations = append(rep.Violations, v)
			if cfg.StopAtFirstViolation {
				return rep, nil
			}
		}
	}
	return rep, nil
}

// ReplaySchedule re-executes one recorded schedule: the choice vector drives
// every choice point (points beyond its end, if any, pick index 0) and the
// violation it reproduces is returned — nil when the schedule completes
// cleanly, which callers should treat as "the counterexample no longer
// reproduces". Config.MaxSchedules and Seeds are ignored; only Build,
// Horizon and MaxPermutation apply. This is the falsification layer's replay
// path for schedule counterexamples.
func ReplaySchedule(cfg Config, choices []int) (*Violation, error) {
	if cfg.Build == nil {
		return nil, errors.New("explore: nil builder")
	}
	if cfg.Horizon <= 0 {
		return nil, errors.New("explore: non-positive horizon")
	}
	if cfg.MaxPermutation <= 0 || cfg.MaxPermutation > 720 {
		cfg.MaxPermutation = 720
	}
	tr, err := execute(cfg, choices, nil)
	if err != nil {
		return nil, err
	}
	return tr.violation, nil
}

// nextVector returns the lexicographically next choice vector, or nil when
// the tree is exhausted.
func nextVector(chosen, branching []int) []int {
	i := len(chosen) - 1
	for i >= 0 && chosen[i]+1 >= branching[i] {
		i--
	}
	if i < 0 {
		return nil
	}
	next := make([]int, i+1)
	copy(next, chosen[:i+1])
	next[i]++
	return next
}

type trace struct {
	chosen    []int
	branching []int
	violation *Violation
}

// execute runs one schedule: choice points beyond the prefix pick index 0
// (exhaustive) or a random index (random mode with rngSeed).
func execute(cfg Config, prefix []int, rngSeed *int64) (*trace, error) {
	inst, err := cfg.Build()
	if err != nil {
		return nil, fmt.Errorf("explore: build: %w", err)
	}
	tr := &trace{}
	rng := newSplitMix(rngSeed)

	order := func(_ time.Duration, firing []string) []string {
		b := branchingOf(len(firing), cfg.MaxPermutation)
		var choice int
		switch {
		case len(tr.chosen) < len(prefix):
			choice = prefix[len(tr.chosen)]
			if choice >= b {
				choice = b - 1
			}
		case rng != nil:
			choice = int(rng.next() % uint64(b))
		default:
			choice = 0
		}
		tr.chosen = append(tr.chosen, choice)
		tr.branching = append(tr.branching, b)
		return permute(firing, choice)
	}

	opts := []runtime.Option{
		runtime.WithScheduleOrder(order),
		runtime.WithInvariantChecking(),
	}
	if inst.Env != nil {
		opts = append(opts, runtime.WithEnvironment(inst.Env))
	}
	exec, err := runtime.New(inst.System, inst.EnvTopics, opts...)
	if err != nil {
		return nil, fmt.Errorf("explore: executor: %w", err)
	}

	for exec.Now() <= cfg.Horizon {
		progressed, err := exec.Step()
		if err != nil {
			tr.violation = &Violation{
				Choices: append([]int(nil), tr.chosen...),
				Time:    exec.Now(),
				Err:     err,
			}
			return tr, nil
		}
		if !progressed {
			break
		}
		if inst.Property != nil {
			if perr := inst.Property(exec); perr != nil {
				tr.violation = &Violation{
					Choices: append([]int(nil), tr.chosen...),
					Time:    exec.Now(),
					Err:     perr,
				}
				return tr, nil
			}
		}
		if exec.Now() > cfg.Horizon {
			break
		}
	}
	return tr, nil
}

// branchingOf returns min(k!, cap) without overflow.
func branchingOf(k, permCap int) int {
	f := 1
	for i := 2; i <= k; i++ {
		f *= i
		if f >= permCap {
			return permCap
		}
	}
	return f
}

// permute returns the idx-th permutation (factorial number system) of the
// slice, leaving the input unmodified.
func permute(s []string, idx int) []string {
	out := make([]string, 0, len(s))
	rem := append([]string(nil), s...)
	for n := len(rem); n > 0; n-- {
		f := factorial(n - 1)
		i := 0
		if f > 0 {
			i = (idx / f) % n
		}
		out = append(out, rem[i])
		rem = append(rem[:i], rem[i+1:]...)
	}
	return out
}

func factorial(n int) int {
	f := 1
	for i := 2; i <= n; i++ {
		f *= i
		if f > 1<<30 {
			return 1 << 30
		}
	}
	return f
}

// splitMix is a tiny deterministic PRNG for schedule sampling.
type splitMix struct{ s uint64 }

func newSplitMix(seed *int64) *splitMix {
	if seed == nil {
		return nil
	}
	return &splitMix{s: uint64(*seed)*2685821657736338717 + 1}
}

func (r *splitMix) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
