package rta

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/pubsub"
)

// policyModule builds a module whose predicates read the pointed-at booleans,
// so a test can script the (ttf2Δ, φsafer) observations step by step.
func policyModule(t *testing.T, policy Policy, ttf, safer *bool) *Module {
	t.Helper()
	d := validDecl(t)
	d.Policy = policy
	d.TTF2Delta = func(pubsub.Valuation) bool { return *ttf }
	d.InSafer = func(pubsub.Valuation) bool { return *safer }
	m, err := NewModule(d)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// step is one scripted DM sampling instant: the predicate observations going
// in, the expected mode and reason coming out.
type step struct {
	ttf, safer bool
	wantMode   Mode
	wantReason SwitchReason
}

// drive runs the scripted sequence through DecideState, threading the DM
// state exactly like the executor does.
func drive(t *testing.T, policy Policy, seq []step) {
	t.Helper()
	var ttf, safer bool
	m := policyModule(t, policy, &ttf, &safer)
	st := m.InitDMState()
	for i, s := range seq {
		ttf, safer = s.ttf, s.safer
		st = m.DecideState(st, nil)
		if st.Mode != s.wantMode || st.Reason != s.wantReason {
			t.Fatalf("step %d (ttf=%v safer=%v): got (%v, %q), want (%v, %q)",
				i, s.ttf, s.safer, st.Mode, st.Reason, s.wantMode, s.wantReason)
		}
	}
}

// mustPolicy resolves a spec or fails the test.
func mustPolicy(t *testing.T, spec string) Policy {
	t.Helper()
	p, err := ParsePolicy(spec)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestFig9TruthTable pins the default policy to the paper's Figure 9 rules,
// reason by reason. The module starts in SC.
func TestFig9TruthTable(t *testing.T) {
	drive(t, mustPolicy(t, "soter-fig9"), []step{
		{ttf: false, safer: false, wantMode: ModeSC, wantReason: ReasonNone},    // SC, not recovered
		{ttf: false, safer: true, wantMode: ModeAC, wantReason: ReasonRecovery}, // SC→AC on φsafer
		{ttf: false, safer: false, wantMode: ModeAC, wantReason: ReasonNone},    // AC holds while safe
		{ttf: true, safer: false, wantMode: ModeSC, wantReason: ReasonTTFTrip},  // AC→SC on ttf2Δ
		{ttf: true, safer: true, wantMode: ModeSC, wantReason: ReasonClamped},   // recovery proposed, clamped
		{ttf: false, safer: true, wantMode: ModeAC, wantReason: ReasonRecovery},
	})
}

// TestStickySCTruthTable: after a disengagement the policy dwells in SC for
// K periods before φsafer may recover, counting forced and own entries alike.
func TestStickySCTruthTable(t *testing.T) {
	drive(t, mustPolicy(t, "sticky-sc:3"), []step{
		// Initial SC also dwells: two held periods, then recovery.
		{safer: true, wantMode: ModeSC, wantReason: ReasonDwellHold},
		{safer: true, wantMode: ModeSC, wantReason: ReasonDwellHold},
		{safer: true, wantMode: ModeAC, wantReason: ReasonRecovery},
		{ttf: true, wantMode: ModeSC, wantReason: ReasonTTFTrip},
		// Dwell restarts after the trip, even though φsafer holds throughout.
		{safer: true, wantMode: ModeSC, wantReason: ReasonDwellHold},
		{safer: true, wantMode: ModeSC, wantReason: ReasonDwellHold},
		{safer: true, wantMode: ModeAC, wantReason: ReasonRecovery},
		{wantMode: ModeAC, wantReason: ReasonNone},
		// Dwell satisfied but φsafer absent: plain SC hold, no recovery.
		{ttf: true, wantMode: ModeSC, wantReason: ReasonTTFTrip},
		{safer: true, wantMode: ModeSC, wantReason: ReasonDwellHold},
		{safer: true, wantMode: ModeSC, wantReason: ReasonDwellHold},
		{safer: false, wantMode: ModeSC, wantReason: ReasonNone},
		{safer: true, wantMode: ModeAC, wantReason: ReasonRecovery},
	})
}

// TestHysteresisTruthTable: recovery requires φsafer for K consecutive DM
// periods; one sample outside φsafer resets the count.
func TestHysteresisTruthTable(t *testing.T) {
	drive(t, mustPolicy(t, "hysteresis:3"), []step{
		{safer: true, wantMode: ModeSC, wantReason: ReasonDwellHold},
		{safer: true, wantMode: ModeSC, wantReason: ReasonDwellHold},
		{safer: false, wantMode: ModeSC, wantReason: ReasonNone}, // streak broken
		{safer: true, wantMode: ModeSC, wantReason: ReasonDwellHold},
		{safer: true, wantMode: ModeSC, wantReason: ReasonDwellHold},
		{safer: true, wantMode: ModeAC, wantReason: ReasonRecovery},
		{ttf: true, wantMode: ModeSC, wantReason: ReasonTTFTrip},
		{safer: true, wantMode: ModeSC, wantReason: ReasonDwellHold},
	})
}

// TestAlwaysACTruthTable: the adversarial baseline proposes AC at every
// instant; the framework clamp is what disengages it in unsafe states.
func TestAlwaysACTruthTable(t *testing.T) {
	drive(t, mustPolicy(t, "always-ac"), []step{
		{wantMode: ModeAC, wantReason: ReasonRecovery}, // leaves SC immediately, φsafer or not
		{wantMode: ModeAC, wantReason: ReasonNone},
		{ttf: true, wantMode: ModeSC, wantReason: ReasonClamped}, // only the clamp stops it
		{ttf: true, wantMode: ModeSC, wantReason: ReasonClamped}, // held down while unsafe
		{wantMode: ModeAC, wantReason: ReasonRecovery},
	})
}

// TestAlwaysSCTruthTable: never leaves the certified controller.
func TestAlwaysSCTruthTable(t *testing.T) {
	drive(t, mustPolicy(t, "always-sc"), []step{
		{safer: true, wantMode: ModeSC, wantReason: ReasonNone},
		{wantMode: ModeSC, wantReason: ReasonNone},
		{ttf: true, wantMode: ModeSC, wantReason: ReasonNone},
		{safer: true, wantMode: ModeSC, wantReason: ReasonNone},
	})
}

// chaoticPolicy is the worst policy expressible through the API: it proposes
// a pseudo-random mode every instant — AC in unsafe states, garbage mode
// values, the lot — while keeping deterministic seeded state.
type chaoticPolicy struct{ seed int64 }

func (p chaoticPolicy) Name() string      { return "chaotic" }
func (p chaoticPolicy) Init() PolicyState { return rand.New(rand.NewSource(p.seed)) }

func (chaoticPolicy) Decide(st PolicyState, _ *DecisionContext) (Mode, PolicyState, SwitchReason) {
	rng := st.(*rand.Rand)
	switch rng.Intn(4) {
	case 0:
		return ModeSC, rng, ReasonNone
	case 1:
		return ModeAC, rng, ReasonNone
	case 2:
		return ModeAC, rng, ReasonRecovery
	default:
		return Mode(97), rng, SwitchReason("junk")
	}
}

// TestClampHoldsForAdversarialPolicies is the framework-clamp property test:
// no policy, however adversarial, can hold AC mode in a state where ttf2Δ
// fails, and non-AC proposals (including garbage modes) always land in SC.
// This is the "policy proposes, module disposes" contract that keeps the
// Theorem 3.1 argument policy-independent.
func TestClampHoldsForAdversarialPolicies(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		var ttf, safer bool
		m := policyModule(t, chaoticPolicy{seed: seed}, &ttf, &safer)
		env := rand.New(rand.NewSource(seed * 977))
		st := m.InitDMState()
		sawClamp := false
		for i := 0; i < 2000; i++ {
			ttf = env.Intn(3) == 0
			safer = env.Intn(2) == 0
			st = m.DecideState(st, nil)
			if ttf && st.Mode != ModeSC {
				t.Fatalf("seed %d step %d: mode %v while ttf2Δ fails — clamp violated", seed, i, st.Mode)
			}
			if st.Mode != ModeSC && st.Mode != ModeAC {
				t.Fatalf("seed %d step %d: garbage mode %v escaped the module", seed, i, st.Mode)
			}
			if st.Reason == ReasonClamped {
				sawClamp = true
			}
		}
		if !sawClamp {
			t.Fatalf("seed %d: chaotic policy was never clamped; the property is vacuous", seed)
		}
	}
}

// TestPolicyRegistry exercises spec parsing, canonicalization and
// registration edge cases.
func TestPolicyRegistry(t *testing.T) {
	for _, name := range []string{"soter-fig9", "sticky-sc", "hysteresis", "always-ac", "always-sc"} {
		if _, err := ParsePolicy(name); err != nil {
			t.Errorf("built-in %q did not parse: %v", name, err)
		}
	}

	canon := map[string]string{
		"":              DefaultPolicyName,
		"soter-fig9":    DefaultPolicyName,
		"sticky-sc":     "sticky-sc:10",
		"sticky-sc:10":  "sticky-sc:10",
		"sticky-sc:25":  "sticky-sc:25",
		"hysteresis":    "hysteresis:3",
		"hysteresis:99": "hysteresis:99",
		"always-ac":     "always-ac",
	}
	for spec, want := range canon {
		got, err := CanonicalPolicySpec(spec)
		if err != nil {
			t.Errorf("CanonicalPolicySpec(%q): %v", spec, err)
			continue
		}
		if got != want {
			t.Errorf("CanonicalPolicySpec(%q) = %q, want %q", spec, got, want)
		}
	}

	for _, bad := range []string{"no-such-policy", "sticky-sc:0", "sticky-sc:-3", "sticky-sc:x", "soter-fig9:2", "always-ac:1"} {
		if _, err := ParsePolicy(bad); err == nil {
			t.Errorf("ParsePolicy(%q) succeeded, want error", bad)
		}
	}

	if err := RegisterPolicy("soter-fig9", func(int) (Policy, error) { return fig9{}, nil }); err == nil {
		t.Error("duplicate registration succeeded")
	}
	if err := RegisterPolicy("bad:name", func(int) (Policy, error) { return fig9{}, nil }); err == nil {
		t.Error("colon-bearing name registered")
	}
	if err := RegisterPolicy("nil-factory", nil); err == nil {
		t.Error("nil factory registered")
	}
	if _, err := ParsePolicy("no-such-policy"); err == nil || !strings.Contains(err.Error(), "soter-fig9") {
		t.Errorf("unknown-policy error should list the registry, got: %v", err)
	}
}

// TestDefaultPolicyMatchesLegacyFig9 replays random observation sequences
// through DecideState with the default policy and through an inline
// transcription of the pre-redesign hardwired rules; the mode sequences must
// agree wherever the legacy rules were defined (the one divergence — SC
// recovery while ttf2Δ fails — is unreachable for well-formed modules by
// (P3) and is covered by TestDecide).
func TestDefaultPolicyMatchesLegacyFig9(t *testing.T) {
	legacy := func(mode Mode, ttf, safer bool) Mode {
		switch mode {
		case ModeAC:
			if ttf {
				return ModeSC
			}
			return ModeAC
		default:
			if safer {
				return ModeAC
			}
			return ModeSC
		}
	}
	for seed := int64(0); seed < 10; seed++ {
		var ttf, safer bool
		m := policyModule(t, nil, &ttf, &safer) // nil Decl.Policy = default fig9
		env := rand.New(rand.NewSource(seed))
		st := m.InitDMState()
		want := ModeSC
		for i := 0; i < 2000; i++ {
			ttf = env.Intn(3) == 0
			// Well-formedness coupling: φsafer states survive 2Δ (P3), so a
			// sound analyzer never reports safer ∧ ttf.
			safer = !ttf && env.Intn(2) == 0
			st = m.DecideState(st, nil)
			want = legacy(want, ttf, safer)
			if st.Mode != want {
				t.Fatalf("seed %d step %d: policy path %v, legacy rules %v", seed, i, st.Mode, want)
			}
		}
	}
}
