package rta

import (
	"errors"
	"fmt"

	"repro/internal/calendar"
	"repro/internal/node"
	"repro/internal/pubsub"
)

// System is an RTA system: a set of composable RTA modules (Section IV),
// optionally together with plain (unprotected) nodes such as application
// logic or state-estimator adapters. Composability requires:
//
//  1. the nodes of all modules are pairwise disjoint, and
//  2. the outputs of all modules (and plain nodes) are pairwise disjoint.
//
// There are no constraints on inputs, matching I/O Automata and Reactive
// Modules style composition. Theorem 4.1: if every module is well-formed,
// the system satisfies the conjunction of the module invariants.
type System struct {
	modules []*Module
	plain   []*node.Node

	acNodes map[string]string // DM name -> AC name (ACNodes)
	scNodes map[string]string // DM name -> SC name (SCNodes)
	// coordinated maps a module name to the modules forced to SC when it
	// disengages (Section VII coordinated switching).
	coordinated map[string][]string
	byName      map[string]*node.Node
	modOf       map[string]*Module // DM name -> module
	order       []string           // all node names, sorted
}

// Composition errors.
var (
	ErrNotComposable = errors.New("modules are not composable")
)

// NewSystem composes modules and plain nodes into an RTA system, enforcing
// the composability conditions.
func NewSystem(modules []*Module, plain []*node.Node) (*System, error) {
	s := &System{
		acNodes: make(map[string]string),
		scNodes: make(map[string]string),
		byName:  make(map[string]*node.Node),
		modOf:   make(map[string]*Module),
	}
	outputOwner := make(map[pubsub.TopicName]string)

	addNode := func(n *node.Node, owner string) error {
		if _, dup := s.byName[n.Name()]; dup {
			return fmt.Errorf("%w: duplicate node %q", ErrNotComposable, n.Name())
		}
		s.byName[n.Name()] = n
		s.order = append(s.order, n.Name())
		return nil
	}
	claimOutputs := func(owner string, topics []pubsub.TopicName) error {
		for _, t := range topics {
			if prev, dup := outputOwner[t]; dup {
				return fmt.Errorf("%w: output topic %q claimed by both %q and %q", ErrNotComposable, t, prev, owner)
			}
			outputOwner[t] = owner
		}
		return nil
	}

	seenModule := make(map[string]bool, len(modules))
	for _, m := range modules {
		if m == nil {
			return nil, fmt.Errorf("%w: nil module", ErrNotComposable)
		}
		if seenModule[m.Name()] {
			return nil, fmt.Errorf("%w: duplicate module %q", ErrNotComposable, m.Name())
		}
		seenModule[m.Name()] = true
		for _, n := range []*node.Node{m.AC(), m.SC(), m.DM()} {
			if err := addNode(n, m.Name()); err != nil {
				return nil, err
			}
		}
		// AC and SC intentionally share outputs within a module (P1b); the
		// module's output set is claimed once.
		if err := claimOutputs(m.Name(), m.Outputs()); err != nil {
			return nil, err
		}
		s.acNodes[m.DM().Name()] = m.AC().Name()
		s.scNodes[m.DM().Name()] = m.SC().Name()
		s.modOf[m.DM().Name()] = m
		s.modules = append(s.modules, m)
	}
	for _, n := range plain {
		if n == nil {
			return nil, fmt.Errorf("%w: nil node", ErrNotComposable)
		}
		if err := addNode(n, n.Name()); err != nil {
			return nil, err
		}
		if err := claimOutputs(n.Name(), n.Outputs()); err != nil {
			return nil, err
		}
		s.plain = append(s.plain, n)
	}
	sortStrings(s.order)
	return s, nil
}

// Compose forms the union of two RTA systems (S1 ∪ S2), re-checking
// composability across the union.
func Compose(a, b *System) (*System, error) {
	mods := make([]*Module, 0, len(a.modules)+len(b.modules))
	mods = append(mods, a.modules...)
	mods = append(mods, b.modules...)
	plain := make([]*node.Node, 0, len(a.plain)+len(b.plain))
	plain = append(plain, a.plain...)
	plain = append(plain, b.plain...)
	return NewSystem(mods, plain)
}

// Modules returns the modules of the system.
func (s *System) Modules() []*Module {
	out := make([]*Module, len(s.modules))
	copy(out, s.modules)
	return out
}

// PlainNodes returns the unprotected nodes of the system.
func (s *System) PlainNodes() []*node.Node {
	out := make([]*node.Node, len(s.plain))
	copy(out, s.plain)
	return out
}

// Node returns the node with the given name.
func (s *System) Node(name string) (*node.Node, bool) {
	n, ok := s.byName[name]
	return n, ok
}

// NodeNames returns the sorted names of every node in the system
// (Nodes(S) plus plain nodes).
func (s *System) NodeNames() []string {
	out := make([]string, len(s.order))
	copy(out, s.order)
	return out
}

// IsDM reports whether the named node is a decision module, returning its
// module when so.
func (s *System) IsDM(name string) (*Module, bool) {
	m, ok := s.modOf[name]
	return m, ok
}

// ControllerOf returns, for an AC or SC node name, the module it belongs to
// and whether it is the AC.
func (s *System) ControllerOf(name string) (m *Module, isAC, ok bool) {
	for _, mod := range s.modules {
		if mod.AC().Name() == name {
			return mod, true, true
		}
		if mod.SC().Name() == name {
			return mod, false, true
		}
	}
	return nil, false, false
}

// ACNodes returns the map from DM node name to controlled AC node name.
func (s *System) ACNodes() map[string]string { return copyMap(s.acNodes) }

// SCNodes returns the map from DM node name to controlled SC node name.
func (s *System) SCNodes() map[string]string { return copyMap(s.scNodes) }

// Outputs returns the output topics OS of the system: the union of the
// outputs of all nodes.
func (s *System) Outputs() []pubsub.TopicName {
	seen := make(map[pubsub.TopicName]bool)
	var out []pubsub.TopicName
	for _, name := range s.order {
		for _, t := range s.byName[name].Outputs() {
			if !seen[t] {
				seen[t] = true
				out = append(out, t)
			}
		}
	}
	sortTopics(out)
	return out
}

// Inputs returns the input topics IS of the system: topics subscribed by
// some node but produced by none (environment inputs).
func (s *System) Inputs() []pubsub.TopicName {
	produced := make(map[pubsub.TopicName]bool)
	for _, name := range s.order {
		for _, t := range s.byName[name].Outputs() {
			produced[t] = true
		}
	}
	seen := make(map[pubsub.TopicName]bool)
	var out []pubsub.TopicName
	for _, name := range s.order {
		for _, t := range s.byName[name].Inputs() {
			if !produced[t] && !seen[t] {
				seen[t] = true
				out = append(out, t)
			}
		}
	}
	sortTopics(out)
	return out
}

// Topics returns all topics referenced by the system (inputs ∪ outputs).
func (s *System) Topics() []pubsub.TopicName {
	seen := make(map[pubsub.TopicName]bool)
	var out []pubsub.TopicName
	for _, name := range s.order {
		n := s.byName[name]
		for _, t := range n.Inputs() {
			if !seen[t] {
				seen[t] = true
				out = append(out, t)
			}
		}
		for _, t := range n.Outputs() {
			if !seen[t] {
				seen[t] = true
				out = append(out, t)
			}
		}
	}
	sortTopics(out)
	return out
}

// Calendar builds the merged time-table CS of the system.
func (s *System) Calendar() (*calendar.Calendar, error) {
	cal := calendar.New()
	for _, name := range s.order {
		if err := cal.Add(name, s.byName[name].Schedule()); err != nil {
			return nil, fmt.Errorf("system calendar: %w", err)
		}
	}
	return cal, nil
}

// VerifyAll discharges the semantic obligations of every module with the
// per-module certificates; certs maps module name to certificate. Modules
// without an entry are an error: Theorem 4.1 requires every module to be
// well-formed.
func (s *System) VerifyAll(certs map[string]Certificate) error {
	for _, m := range s.modules {
		cert, ok := certs[m.Name()]
		if !ok {
			return fmt.Errorf("%w: module %q has no certificate", ErrNotWellFormed, m.Name())
		}
		if err := m.Verify(cert); err != nil {
			return err
		}
	}
	return nil
}

func copyMap(m map[string]string) map[string]string {
	out := make(map[string]string, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

func sortTopics(s []pubsub.TopicName) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// AddCoordination registers a coordinated-switching link (the extension
// sketched in the paper's Section VII): whenever the trigger module's DM
// switches AC→SC, the forced module is immediately demoted to SC as well, so
// downstream modules can rely on the guarantee the partner's SC provides.
// The forced module returns to AC through its own DM logic (its φsafer
// check), unchanged. Both modules must belong to this system; self-links and
// duplicate links are rejected.
func (s *System) AddCoordination(trigger, forced string) error {
	if trigger == forced {
		return fmt.Errorf("coordination: module %q cannot coordinate with itself", trigger)
	}
	var trigMod, forcedMod *Module
	for _, m := range s.modules {
		if m.Name() == trigger {
			trigMod = m
		}
		if m.Name() == forced {
			forcedMod = m
		}
	}
	if trigMod == nil {
		return fmt.Errorf("coordination: unknown trigger module %q", trigger)
	}
	if forcedMod == nil {
		return fmt.Errorf("coordination: unknown forced module %q", forced)
	}
	for _, f := range s.coordinated[trigger] {
		if f == forced {
			return fmt.Errorf("coordination: %q → %q already registered", trigger, forced)
		}
	}
	if s.coordinated == nil {
		s.coordinated = make(map[string][]string)
	}
	s.coordinated[trigger] = append(s.coordinated[trigger], forced)
	return nil
}

// CoordinatedWith returns the modules forced to SC when the named module
// disengages.
func (s *System) CoordinatedWith(trigger string) []*Module {
	var out []*Module
	for _, name := range s.coordinated[trigger] {
		for _, m := range s.modules {
			if m.Name() == name {
				out = append(out, m)
			}
		}
	}
	return out
}
