// Package rta implements the paper's core contribution: the runtime
// assurance (RTA) module (Section III). An RTA module is a tuple
// (Nac, Nsc, Ndm, Δ, φsafe, φsafer): an untrusted advanced controller node,
// a certified safe controller node, and a compiler-generated decision module
// that samples the monitored state every Δ and implements the switching
// logic of Figure 9:
//
//	mode = AC ∧ Reach(st, *, 2Δ) ⊄ φsafe  → mode' = SC
//	mode = SC ∧ st ∈ φsafer               → mode' = AC
//
// The package also implements the structural well-formedness checks (P1a,
// P1b), hooks for discharging the semantic obligations (P2a, P2b, P3)
// through a Certificate, the module invariant φInv of Theorem 3.1, and the
// output-disjoint composition of modules into RTA systems (Theorem 4.1).
package rta

import (
	"errors"
	"fmt"
	"slices"
	"time"

	"repro/internal/node"
	"repro/internal/pubsub"
)

// Mode is the local state of a decision module: which controller's outputs
// are currently enabled.
type Mode int

// Modes. Every RTA module starts in SC mode, matching the initial
// configuration of the operational semantics (OE0 enables SC).
const (
	ModeSC Mode = iota + 1
	ModeAC
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case ModeSC:
		return "SC"
	case ModeAC:
		return "AC"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// StatePredicate evaluates a predicate over the monitored state of a module,
// presented as the valuation of the DM's subscribed topics. The paper
// implicitly assumes the topics read by the DM contain enough information to
// evaluate φsafe, φsafer and the reachability check; here that assumption is
// made explicit by the signature.
type StatePredicate func(pubsub.Valuation) bool

// Decl declares an RTA module, mirroring the source-level declaration of
// Figure 7:
//
//	rtamodule SafeMotionPrimitive {
//	    AC: MotionPrimitive, SC: MotionPrimitiveSC,
//	    delta: 100ms,
//	    phisafer: PhiSafer_MPr, ttf2d: TTF2D_MPr
//	}
type Decl struct {
	// Name of the module; must be unique within a system.
	Name string
	// AC is the advanced, uncertified, high-performance controller node.
	AC *node.Node
	// SC is the certified safe controller node.
	SC *node.Node
	// Delta is the period Δ of the decision module.
	Delta time.Duration
	// Monitored lists the topics the DM subscribes to. It must include all
	// inputs of AC and SC (the DM needs at least as much information as the
	// controllers). Extra monitoring topics are allowed.
	Monitored []pubsub.TopicName
	// TTF2Delta is ttf2Δ(st, φsafe): true when, starting from st, the
	// minimum time after which φsafe may not hold is ≤ 2Δ — equivalently,
	// Reach(st, *, 2Δ) ⊄ φsafe (Figure 9). When it returns true the DM
	// switches control to SC.
	TTF2Delta StatePredicate
	// InSafer is st ∈ φsafer: when true in SC mode the DM returns control
	// to AC.
	InSafer StatePredicate
	// Safe is φsafe itself, used for runtime invariant monitoring
	// (Theorem 3.1) and by the systematic-testing engine. Optional but
	// strongly recommended; without it violations cannot be detected.
	Safe StatePredicate
	// DMPhase offsets the DM's first decision. The module starts in SC mode
	// (the initial configuration of Section IV); the DM's first chance to
	// hand control to AC is its first firing. Zero defaults to
	// max(δ(AC), δ(SC)) — immediately after both controllers have run once —
	// so a module with a large Δ does not dwell in SC for a full period at
	// startup.
	DMPhase time.Duration
	// Policy is the switching policy the generated DM runs; nil selects the
	// built-in Figure 9 policy (the paper's rules, DefaultPolicyName). The
	// module clamps any policy output to SC whenever ttf2Δ fails, so the
	// Theorem 3.1 safety argument is independent of the policy ("policy
	// proposes, module disposes"). Resolve named policies with ParsePolicy.
	Policy Policy
}

// Module is a compiled, well-formed-checked RTA module with its generated
// decision-module node. Construct with NewModule.
type Module struct {
	name      string
	ac, sc    *node.Node
	dm        *node.Node
	delta     time.Duration
	dmPhase   time.Duration
	monitored []pubsub.TopicName
	ttf       StatePredicate
	inSafer   StatePredicate
	safe      StatePredicate
	policy    Policy
	// decideCtx is the reusable decision context: DM steps of one module are
	// strictly sequential in both executors, so recycling it keeps the
	// per-decision path allocation-free (the zero-alloc discipline of the
	// rest of the tick loop). A Module's decision path is therefore not safe
	// for concurrent use — like node stepping, one run owns it.
	decideCtx DecisionContext
}

// Static (structural) well-formedness errors.
var (
	ErrNotWellFormed = errors.New("RTA module is not well-formed")
)

// NewModule compiles a module declaration: it checks the structural
// well-formedness conditions (P1a), (P1b) and the DM input-coverage
// requirement, and generates the decision-module node Ndm implementing the
// switching logic of Figure 9. The semantic conditions (P2a), (P2b), (P3)
// are discharged separately via Verify.
func NewModule(d Decl) (*Module, error) {
	if d.Name == "" {
		return nil, fmt.Errorf("%w: empty module name", ErrNotWellFormed)
	}
	if d.AC == nil || d.SC == nil {
		return nil, fmt.Errorf("%w: module %q: AC and SC nodes are required", ErrNotWellFormed, d.Name)
	}
	if d.TTF2Delta == nil || d.InSafer == nil {
		return nil, fmt.Errorf("%w: module %q: TTF2Delta and InSafer predicates are required", ErrNotWellFormed, d.Name)
	}
	if d.Delta <= 0 {
		return nil, fmt.Errorf("%w: module %q: Δ = %v must be positive", ErrNotWellFormed, d.Name, d.Delta)
	}
	// (P1a) δ(Ndm) = Δ, δ(Nac) ≤ Δ, δ(Nsc) ≤ Δ.
	if p := d.AC.Period(); p > d.Delta {
		return nil, fmt.Errorf("%w: module %q: (P1a) AC period %v exceeds Δ = %v", ErrNotWellFormed, d.Name, p, d.Delta)
	}
	if p := d.SC.Period(); p > d.Delta {
		return nil, fmt.Errorf("%w: module %q: (P1a) SC period %v exceeds Δ = %v", ErrNotWellFormed, d.Name, p, d.Delta)
	}
	// (P1b) O(Nac) = O(Nsc).
	if !node.SameOutputs(d.AC, d.SC) {
		return nil, fmt.Errorf("%w: module %q: (P1b) AC outputs %v differ from SC outputs %v",
			ErrNotWellFormed, d.Name, d.AC.Outputs(), d.SC.Outputs())
	}
	if d.AC.Name() == d.SC.Name() {
		return nil, fmt.Errorf("%w: module %q: AC and SC must be distinct nodes", ErrNotWellFormed, d.Name)
	}
	// The DM subscribes to at least the topics subscribed by either node:
	// I(Nac) ⊆ Idm and I(Nsc) ⊆ Idm.
	monitored := unionTopics(d.Monitored, d.AC.Inputs(), d.SC.Inputs())
	phase := d.DMPhase
	if phase == 0 {
		phase = d.AC.Period()
		if p := d.SC.Period(); p > phase {
			phase = p
		}
	}
	if phase < 0 {
		return nil, fmt.Errorf("%w: module %q: DM phase %v must be non-negative", ErrNotWellFormed, d.Name, phase)
	}
	policy := d.Policy
	if policy == nil {
		policy = fig9{}
	}
	m := &Module{
		name:      d.Name,
		ac:        d.AC,
		sc:        d.SC,
		delta:     d.Delta,
		dmPhase:   phase,
		monitored: monitored,
		ttf:       d.TTF2Delta,
		inSafer:   d.InSafer,
		safe:      d.Safe,
		policy:    policy,
	}
	dm, err := m.generateDM()
	if err != nil {
		return nil, fmt.Errorf("module %q: generate DM: %w", d.Name, err)
	}
	m.dm = dm
	return m, nil
}

// generateDM builds the decision-module node. Its local state is a DMState
// (mode + policy state + last decision reason); it subscribes to the
// monitored topics and publishes nothing — the runtime reads its mode to
// update the output-enable map OE (rule DM-STEP, dm2).
func (m *Module) generateDM() (*node.Node, error) {
	step := func(st node.State, in pubsub.Valuation) (node.State, pubsub.Valuation, error) {
		dm, ok := st.(DMState)
		if !ok {
			return nil, nil, fmt.Errorf("decision module local state has type %T, want rta.DMState", st)
		}
		return m.DecideState(dm, in), nil, nil
	}
	return node.New(
		m.name+".dm",
		m.delta,
		m.monitored,
		nil,
		step,
		node.WithInit(func() node.State { return m.InitDMState() }),
		node.WithPhase(m.dmPhase),
	)
}

// InitDMState is the initial DM local state: SC mode (the initial
// configuration of Section IV, OE0 enables SC) with the policy's initial
// state.
func (m *Module) InitDMState() DMState {
	return DMState{Mode: ModeSC, Policy: m.policy.Init()}
}

// DecideState applies the module's switching policy to the current DM state
// and monitored state, then enforces the framework's safety clamp: a
// proposed AC is overridden to SC whenever ttf2Δ fails, so no policy —
// however adversarial — can hold AC in a state from which φsafe could be
// left within 2Δ. With the default Figure 9 policy this reproduces Decide
// exactly (the paper's rules never propose AC against a failing ttf2Δ).
func (m *Module) DecideState(st DMState, in pubsub.Valuation) DMState {
	ctx := &m.decideCtx
	*ctx = DecisionContext{
		Module:  m.name,
		Current: st.Mode,
		Delta:   m.delta,
		state:   in,
		ttf:     m.ttf,
		inSafer: m.inSafer,
	}
	mode, ps, reason := m.policy.Decide(st.Policy, ctx)
	switch reason {
	case ReasonNone, ReasonTTFTrip, ReasonRecovery, ReasonDwellHold:
	default:
		// Clamped and coordinated are framework-owned (a policy must not
		// claim the module overrode it, or corrupt the Clamped metric), and
		// reasons outside the documented vocabulary must not leak into
		// traces. Normalize both away.
		reason = ReasonNone
	}
	if mode != ModeAC {
		// Any proposal other than AC fails safe to SC (unknown modes
		// included), like the hardwired DM did.
		mode = ModeSC
	}
	if mode == ModeAC && ctx.TTF2Delta() {
		// The clamp: policy proposes, module disposes.
		mode, reason = ModeSC, ReasonClamped
	}
	return DMState{Mode: mode, Reason: reason, Policy: ps}
}

// Decide applies the module's switching policy (with a fresh policy state)
// to the current mode and monitored state, returning the next mode. For the
// default policy this is the switching logic of Figure 9:
//
//	mode = AC ∧ ttf2Δ        → SC
//	mode = SC ∧ st ∈ φsafer  → AC
//
// Stateful policies should be driven through DecideState, which threads the
// policy state; Decide answers the memoryless question "what would a fresh
// DM decide here".
func (m *Module) Decide(mode Mode, st pubsub.Valuation) Mode {
	return m.DecideState(DMState{Mode: mode, Policy: m.policy.Init()}, st).Mode
}

// Policy returns the module's switching policy.
func (m *Module) Policy() Policy { return m.policy }

// Name returns the module name.
func (m *Module) Name() string { return m.name }

// AC returns the advanced controller node.
func (m *Module) AC() *node.Node { return m.ac }

// SC returns the safe controller node.
func (m *Module) SC() *node.Node { return m.sc }

// DM returns the generated decision-module node.
func (m *Module) DM() *node.Node { return m.dm }

// Delta returns the DM period Δ.
func (m *Module) Delta() time.Duration { return m.delta }

// Monitored returns a copy of the topics the DM subscribes to.
func (m *Module) Monitored() []pubsub.TopicName {
	out := make([]pubsub.TopicName, len(m.monitored))
	copy(out, m.monitored)
	return out
}

// Outputs returns the output topics O(M) of the module (equal for AC and SC
// by (P1b)).
func (m *Module) Outputs() []pubsub.TopicName { return m.ac.Outputs() }

// SafeHolds evaluates φsafe on the monitored state; it returns true when no
// Safe predicate was declared (nothing to monitor).
func (m *Module) SafeHolds(st pubsub.Valuation) bool {
	if m.safe == nil {
		return true
	}
	return m.safe(st)
}

// TTF2Delta evaluates the module's time-to-failure predicate.
func (m *Module) TTF2Delta(st pubsub.Valuation) bool { return m.ttf(st) }

// InSafer evaluates st ∈ φsafer.
func (m *Module) InSafer(st pubsub.Valuation) bool { return m.inSafer(st) }

// InvariantHolds evaluates the module invariant φInv(mode, s) of Theorem 3.1:
//
//	(mode = SC ∧ s ∈ φsafe) ∨ (mode = AC ∧ Reach(s, *, Δ) ⊆ φsafe)
//
// Since ttf2Δ checks the 2Δ horizon and Reach(s,*,Δ) ⊆ Reach(s,*,2Δ), the
// AC disjunct is implied by ¬ttf2Δ(s); we additionally accept states where
// φsafe holds and the 2Δ check passes-after-switch, making the monitor sound
// (it never reports a violation when φInv holds) at the sampling instants.
func (m *Module) InvariantHolds(mode Mode, st pubsub.Valuation) bool {
	switch mode {
	case ModeSC:
		return m.SafeHolds(st)
	case ModeAC:
		return !m.ttf(st) || m.SafeHolds(st)
	default:
		return false
	}
}

// Certificate discharges the semantic well-formedness obligations of a
// module (Section III-C). Implementations typically come from the
// reachability analyses in internal/reach; tests may use analytic proofs.
type Certificate interface {
	// CheckP2a verifies (P2a) Safety: Reach(φsafe, Nsc, ∞) ⊆ φsafe — φsafe
	// is invariant under the safe controller.
	CheckP2a() error
	// CheckP2b verifies (P2b) Liveness: from every state in φsafe, under
	// Nsc the system reaches, in finite time, a state from which it stays
	// in φsafer for at least Δ.
	CheckP2b() error
	// CheckP3 verifies (P3): Reach(φsafer, *, 2Δ) ⊆ φsafe — from φsafer,
	// any controller keeps the system in φsafe for 2Δ.
	CheckP3() error
}

// Verify discharges (P2a), (P2b), (P3) with the given certificate. A module
// that passes NewModule and Verify is well-formed in the sense of
// Section III-C, so Theorem 3.1 applies.
func (m *Module) Verify(cert Certificate) error {
	if cert == nil {
		return fmt.Errorf("%w: module %q: nil certificate", ErrNotWellFormed, m.name)
	}
	if err := cert.CheckP2a(); err != nil {
		return fmt.Errorf("%w: module %q: (P2a): %v", ErrNotWellFormed, m.name, err)
	}
	if err := cert.CheckP2b(); err != nil {
		return fmt.Errorf("%w: module %q: (P2b): %v", ErrNotWellFormed, m.name, err)
	}
	if err := cert.CheckP3(); err != nil {
		return fmt.Errorf("%w: module %q: (P3): %v", ErrNotWellFormed, m.name, err)
	}
	return nil
}

func unionTopics(sets ...[]pubsub.TopicName) []pubsub.TopicName {
	seen := make(map[pubsub.TopicName]bool)
	var out []pubsub.TopicName
	for _, set := range sets {
		for _, t := range set {
			if !seen[t] {
				seen[t] = true
				out = append(out, t)
			}
		}
	}
	// Deterministic order.
	slices.Sort(out)
	return out
}
