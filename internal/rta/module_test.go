package rta

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/node"
	"repro/internal/pubsub"
)

func mkNode(t *testing.T, name string, period time.Duration, in, out []pubsub.TopicName) *node.Node {
	t.Helper()
	n, err := node.New(name, period, in, out,
		func(st node.State, _ pubsub.Valuation) (node.State, pubsub.Valuation, error) {
			return st, nil, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func always(bool) StatePredicate {
	return func(pubsub.Valuation) bool { return true }
}

func constPred(v bool) StatePredicate {
	return func(pubsub.Valuation) bool { return v }
}

func validDecl(t *testing.T) Decl {
	t.Helper()
	return Decl{
		Name:      "m",
		AC:        mkNode(t, "ac", 10*time.Millisecond, []pubsub.TopicName{"state"}, []pubsub.TopicName{"cmd"}),
		SC:        mkNode(t, "sc", 10*time.Millisecond, []pubsub.TopicName{"state"}, []pubsub.TopicName{"cmd"}),
		Delta:     100 * time.Millisecond,
		TTF2Delta: constPred(false),
		InSafer:   constPred(true),
		Safe:      constPred(true),
	}
}

func TestNewModuleWellFormed(t *testing.T) {
	m, err := NewModule(validDecl(t))
	if err != nil {
		t.Fatal(err)
	}
	if m.Name() != "m" || m.Delta() != 100*time.Millisecond {
		t.Errorf("module basics wrong: %v %v", m.Name(), m.Delta())
	}
	if m.DM().Period() != m.Delta() {
		t.Errorf("(P1a) DM period %v != Δ %v", m.DM().Period(), m.Delta())
	}
	// The generated DM defaults its phase to the max controller period.
	if got := m.DM().Schedule().Phase; got != 10*time.Millisecond {
		t.Errorf("DM phase = %v, want 10ms", got)
	}
	// The DM subscribes to the controllers' inputs (Idm ⊇ I(ac) ∪ I(sc)).
	if !m.DM().SubscribesTo("state") {
		t.Error("DM must subscribe to the controllers' inputs")
	}
	if len(m.DM().Outputs()) != 0 {
		t.Error("DM must not publish on any topic")
	}
}

func TestNewModuleStructuralChecks(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*testing.T, *Decl)
	}{
		{"empty name", func(t *testing.T, d *Decl) { d.Name = "" }},
		{"nil AC", func(t *testing.T, d *Decl) { d.AC = nil }},
		{"nil SC", func(t *testing.T, d *Decl) { d.SC = nil }},
		{"nil ttf", func(t *testing.T, d *Decl) { d.TTF2Delta = nil }},
		{"nil inSafer", func(t *testing.T, d *Decl) { d.InSafer = nil }},
		{"zero delta", func(t *testing.T, d *Decl) { d.Delta = 0 }},
		{"P1a AC too slow", func(t *testing.T, d *Decl) {
			d.AC = mkNode(t, "ac2", time.Second, []pubsub.TopicName{"state"}, []pubsub.TopicName{"cmd"})
		}},
		{"P1a SC too slow", func(t *testing.T, d *Decl) {
			d.SC = mkNode(t, "sc2", time.Second, []pubsub.TopicName{"state"}, []pubsub.TopicName{"cmd"})
		}},
		{"P1b output mismatch", func(t *testing.T, d *Decl) {
			d.SC = mkNode(t, "sc3", 10*time.Millisecond, []pubsub.TopicName{"state"}, []pubsub.TopicName{"cmd2"})
		}},
		{"AC == SC", func(t *testing.T, d *Decl) { d.SC = d.AC }},
		{"negative DM phase", func(t *testing.T, d *Decl) { d.DMPhase = -1 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			d := validDecl(t)
			tt.mutate(t, &d)
			_, err := NewModule(d)
			if !errors.Is(err, ErrNotWellFormed) {
				t.Errorf("NewModule error = %v, want ErrNotWellFormed", err)
			}
		})
	}
}

// TestDecide exercises the Figure 9 switching logic exhaustively.
func TestDecide(t *testing.T) {
	tests := []struct {
		name         string
		mode         Mode
		ttf, inSafer bool
		want         Mode
	}{
		{"AC stays when safe", ModeAC, false, false, ModeAC},
		{"AC switches on ttf", ModeAC, true, false, ModeSC},
		{"AC switches on ttf even in safer", ModeAC, true, true, ModeSC},
		{"SC stays outside safer", ModeSC, false, false, ModeSC},
		{"SC returns in safer", ModeSC, false, true, ModeAC},
		// Changed by the policy redesign: the framework clamp overrides any
		// proposed AC while ttf2Δ fails, including the Figure 9 recovery.
		// (Unreachable for well-formed modules: (P3) makes φsafer states
		// survive 2Δ under any controller, so inSafer ⇒ ¬ttf2Δ there.)
		{"SC recovery clamped while ttf fails", ModeSC, true, true, ModeSC},
		{"unknown mode fails safe", Mode(99), false, true, ModeSC},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			d := validDecl(t)
			d.TTF2Delta = constPred(tt.ttf)
			d.InSafer = constPred(tt.inSafer)
			m, err := NewModule(d)
			if err != nil {
				t.Fatal(err)
			}
			if got := m.Decide(tt.mode, nil); got != tt.want {
				t.Errorf("Decide(%v) = %v, want %v", tt.mode, got, tt.want)
			}
		})
	}
}

func TestDMStepUpdatesMode(t *testing.T) {
	d := validDecl(t)
	d.TTF2Delta = constPred(true)
	m, err := NewModule(d)
	if err != nil {
		t.Fatal(err)
	}
	st, out, err := m.DM().Step(DMState{Mode: ModeAC}, pubsub.Valuation{"state": nil})
	if err != nil {
		t.Fatal(err)
	}
	if dm := st.(DMState); dm.Mode != ModeSC || dm.Reason != ReasonTTFTrip {
		t.Errorf("DM step state = %+v, want SC mode with ttf-trip reason", dm)
	}
	if len(out) != 0 {
		t.Errorf("DM published %v", out)
	}
	// A corrupt local state is an error, not a panic.
	if _, _, err := m.DM().Step("bogus", pubsub.Valuation{"state": nil}); err == nil {
		t.Error("expected error for bad DM state type")
	}
}

func TestInvariantHolds(t *testing.T) {
	d := validDecl(t)
	d.Safe = constPred(false)
	d.TTF2Delta = constPred(false)
	m, err := NewModule(d)
	if err != nil {
		t.Fatal(err)
	}
	if m.InvariantHolds(ModeSC, nil) {
		t.Error("SC mode with ¬φsafe must violate φInv")
	}
	if !m.InvariantHolds(ModeAC, nil) {
		t.Error("AC mode with ¬ttf must satisfy φInv")
	}
	if m.InvariantHolds(Mode(0), nil) {
		t.Error("unknown mode must violate φInv")
	}
}

func TestSafeHoldsDefaultsTrue(t *testing.T) {
	d := validDecl(t)
	d.Safe = nil
	m, err := NewModule(d)
	if err != nil {
		t.Fatal(err)
	}
	if !m.SafeHolds(nil) {
		t.Error("module without Safe predicate should report safe")
	}
}

type fakeCert struct{ p2a, p2b, p3 error }

func (c fakeCert) CheckP2a() error { return c.p2a }
func (c fakeCert) CheckP2b() error { return c.p2b }
func (c fakeCert) CheckP3() error  { return c.p3 }

func TestVerify(t *testing.T) {
	m, err := NewModule(validDecl(t))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Verify(fakeCert{}); err != nil {
		t.Errorf("Verify with passing cert = %v", err)
	}
	if err := m.Verify(nil); !errors.Is(err, ErrNotWellFormed) {
		t.Errorf("Verify(nil) = %v", err)
	}
	boom := fmt.Errorf("unsound")
	for _, c := range []fakeCert{{p2a: boom}, {p2b: boom}, {p3: boom}} {
		if err := m.Verify(c); !errors.Is(err, ErrNotWellFormed) {
			t.Errorf("Verify with failing cert = %v", err)
		}
	}
}

func TestModeString(t *testing.T) {
	if ModeAC.String() != "AC" || ModeSC.String() != "SC" {
		t.Error("mode strings wrong")
	}
	if Mode(42).String() != "Mode(42)" {
		t.Errorf("unknown mode string = %q", Mode(42).String())
	}
}

func TestMonitoredIncludesExtras(t *testing.T) {
	d := validDecl(t)
	d.Monitored = []pubsub.TopicName{"battery", "state"}
	m, err := NewModule(d)
	if err != nil {
		t.Fatal(err)
	}
	got := m.Monitored()
	want := map[pubsub.TopicName]bool{"battery": true, "state": true}
	if len(got) != len(want) {
		t.Fatalf("Monitored = %v", got)
	}
	for _, tn := range got {
		if !want[tn] {
			t.Errorf("unexpected monitored topic %q", tn)
		}
	}
}
