package rta

// This file generalizes the decision module's switching logic into a
// pluggable Policy API. The paper hardwires the Figure 9 rules into the DM;
// here the rules become one policy among several, and — crucially — the
// safety argument no longer depends on which policy runs: the module clamps
// any policy output to SC whenever ttf2Δ fails ("policy proposes, module
// disposes"), so the Theorem 3.1 guarantee holds for every policy by
// construction. Policies only trade performance (AC utilisation, switching
// rate) against conservatism, which is exactly the ablation axis Remark 3.3
// discusses.

import (
	"fmt"
	"slices"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/pubsub"
)

// SwitchReason explains a decision module's most recent decision. Reasons
// ride on mode-switch events (obs.ModeSwitch.Reason) so traces are
// self-describing: a disengagement caused by the safety check reads
// differently from one forced on the policy by the framework clamp.
type SwitchReason string

// Switch reasons.
const (
	// ReasonNone marks a decision that kept the current mode with nothing
	// noteworthy to report.
	ReasonNone SwitchReason = ""
	// ReasonTTFTrip is an AC→SC disengagement decided by the policy because
	// ttf2Δ failed (the Figure 9 trigger).
	ReasonTTFTrip SwitchReason = "ttf-trip"
	// ReasonRecovery is an SC→AC re-engagement: the policy's recovery
	// condition (φsafer, plus any dwell/hysteresis it adds) was met.
	ReasonRecovery SwitchReason = "recovery"
	// ReasonDwellHold marks a decision that stayed in SC although φsafer
	// held, because the policy's dwell or hysteresis condition was not yet
	// met. It never appears on a mode switch (the mode did not change); it is
	// recorded in the DM state for inspection.
	ReasonDwellHold SwitchReason = "dwell-hold"
	// ReasonClamped marks a decision where the policy proposed AC in a state
	// where ttf2Δ fails and the framework overrode it to SC — the clamp that
	// keeps every policy, however adversarial, inside the Theorem 3.1
	// argument.
	ReasonClamped SwitchReason = "clamped"
	// ReasonCoordinated marks a forced demotion through a coordinated-
	// switching link (Section VII) rather than the module's own decision.
	ReasonCoordinated SwitchReason = "coordinated"
)

// PolicyState is a switching policy's private per-module state. It lives in
// the DM node's local state (DMState.Policy), so it obeys the same
// determinism and isolation rules as every other node state: one instance
// per run, threaded through Decide, never shared.
type PolicyState any

// DMState is the local state of a generated decision-module node. The seed
// codebase stored a bare Mode here; the policy redesign generalizes it to the
// mode plus the policy's private state and the reason for the most recent
// decision (which the executor stamps onto mode-switch events).
type DMState struct {
	// Mode is which controller's outputs are enabled.
	Mode Mode
	// Reason explains the most recent Decide outcome.
	Reason SwitchReason
	// Policy is the switching policy's private state.
	Policy PolicyState
}

// DecisionContext is what a policy may observe at a DM sampling instant. The
// safety predicates are exposed as memoized methods rather than pre-computed
// fields so a policy only pays for what it reads — the Figure 9 policy in AC
// mode never evaluates φsafer, exactly like the hardwired DM did — and so a
// predicate with internal bookkeeping is evaluated at most once per instant.
type DecisionContext struct {
	// Module is the deciding module's name.
	Module string
	// Current is the mode entering the decision.
	Current Mode
	// Delta is the DM period Δ; policies that dwell for "K periods" count
	// decisions, each Δ apart.
	Delta time.Duration

	state   pubsub.Valuation
	ttf     StatePredicate
	inSafer StatePredicate

	ttfDone, ttfVal     bool
	saferDone, saferVal bool
}

// TTF2Delta evaluates (memoized) ttf2Δ(st, φsafe): true when the worst-case
// 2Δ-reachable set can leave φsafe, i.e. the state is unsafe to leave under
// AC control.
func (c *DecisionContext) TTF2Delta() bool {
	if !c.ttfDone {
		c.ttfVal = c.ttf(c.state)
		c.ttfDone = true
	}
	return c.ttfVal
}

// InSafer evaluates (memoized) st ∈ φsafer — the paper's recovery condition.
func (c *DecisionContext) InSafer() bool {
	if !c.saferDone {
		c.saferVal = c.inSafer(c.state)
		c.saferDone = true
	}
	return c.saferVal
}

// State returns the monitored-topic valuation of the sampling instant.
// Policies must not retain or mutate it.
func (c *DecisionContext) State() pubsub.Valuation { return c.state }

// Policy decides which controller an RTA module should run. Decide proposes
// the next mode from the policy's private state and the decision context; the
// module then enforces safety on top: a proposed AC is clamped to SC whenever
// ttf2Δ fails, so no policy can hold AC in a state from which φsafe could be
// left within 2Δ. Policies must be deterministic (same state and context →
// same decision) and must not share mutable state across instances returned
// by their factory — fleet workers run one instance per mission.
type Policy interface {
	// Name returns the policy's canonical spec string ("soter-fig9",
	// "sticky-sc:10", ...) — the form Canonical()/Fingerprint() hash and the
	// service reports, with defaulted parameters made explicit.
	Name() string
	// Init returns the initial policy state (paired with the initial SC mode).
	Init() PolicyState
	// Decide proposes the next mode, the successor policy state and the
	// reason for the decision. Policies may return ReasonNone, ReasonTTFTrip,
	// ReasonRecovery or ReasonDwellHold; ReasonClamped and ReasonCoordinated
	// are framework-owned and, like any reason outside the vocabulary, are
	// normalized to ReasonNone by the module.
	Decide(st PolicyState, ctx *DecisionContext) (Mode, PolicyState, SwitchReason)
}

// DefaultPolicyName names the built-in policy that reproduces the paper's
// hardwired Figure 9 switching logic — the default everywhere a policy can be
// named but is not.
const DefaultPolicyName = "soter-fig9"

// --- Built-in policies ------------------------------------------------------

// fig9 is the paper's switching logic (Figure 9), verbatim:
//
//	mode = AC ∧ ttf2Δ          → SC
//	mode = SC ∧ st ∈ φsafer    → AC
type fig9 struct{}

func (fig9) Name() string      { return DefaultPolicyName }
func (fig9) Init() PolicyState { return nil }

func (fig9) Decide(_ PolicyState, ctx *DecisionContext) (Mode, PolicyState, SwitchReason) {
	switch ctx.Current {
	case ModeAC:
		if ctx.TTF2Delta() {
			return ModeSC, nil, ReasonTTFTrip
		}
		return ModeAC, nil, ReasonNone
	case ModeSC:
		if ctx.InSafer() {
			return ModeAC, nil, ReasonRecovery
		}
		return ModeSC, nil, ReasonNone
	default:
		// Unknown mode: fail safe, like the hardwired DM did.
		return ModeSC, nil, ReasonNone
	}
}

// stickySC is Figure 9 plus a minimum SC dwell: the module stays on the
// certified controller for at least `dwell` DM periods before φsafer may
// hand control back. The dwell applies to every entry into SC — a
// disengagement, a coordinated demotion, and the initial SC mode at startup
// alike — suppressing rapid AC/SC flapping around the φsafer boundary at
// the cost of AC utilisation.
type stickySC struct{ dwell int }

// stickyState counts DM periods spent in SC since the last disengagement.
type stickyState struct{ inSC int }

func (p stickySC) Name() string      { return fmt.Sprintf("sticky-sc:%d", p.dwell) }
func (p stickySC) Init() PolicyState { return stickyState{} }

func (p stickySC) Decide(st PolicyState, ctx *DecisionContext) (Mode, PolicyState, SwitchReason) {
	s, _ := st.(stickyState)
	switch ctx.Current {
	case ModeAC:
		if ctx.TTF2Delta() {
			return ModeSC, stickyState{}, ReasonTTFTrip
		}
		return ModeAC, stickyState{}, ReasonNone
	default: // SC (or unknown: fail safe and dwell)
		s.inSC++
		if s.inSC < p.dwell {
			return ModeSC, s, ReasonDwellHold
		}
		if ctx.InSafer() {
			return ModeAC, stickyState{}, ReasonRecovery
		}
		return ModeSC, s, ReasonNone
	}
}

// hysteresis is Figure 9 with a debounced recovery: SC→AC requires φsafer to
// hold for `periods` consecutive DM samples. One noisy sample inside φsafer
// no longer re-engages the AC — the temporal analogue of the spatial
// hysteresis knob (Remark 3.3's φsafer margin).
type hysteresis struct{ periods int }

// hystState counts consecutive in-φsafer SC samples.
type hystState struct{ safer int }

func (p hysteresis) Name() string      { return fmt.Sprintf("hysteresis:%d", p.periods) }
func (p hysteresis) Init() PolicyState { return hystState{} }

func (p hysteresis) Decide(st PolicyState, ctx *DecisionContext) (Mode, PolicyState, SwitchReason) {
	s, _ := st.(hystState)
	switch ctx.Current {
	case ModeAC:
		if ctx.TTF2Delta() {
			return ModeSC, hystState{}, ReasonTTFTrip
		}
		return ModeAC, hystState{}, ReasonNone
	default: // SC (or unknown: fail safe)
		if !ctx.InSafer() {
			return ModeSC, hystState{}, ReasonNone
		}
		s.safer++
		if s.safer < p.periods {
			return ModeSC, s, ReasonDwellHold
		}
		return ModeAC, hystState{}, ReasonRecovery
	}
}

// alwaysAC is the adversarial baseline: it proposes the untrusted controller
// at every instant. The framework clamp is the only thing keeping it safe —
// which is precisely what makes it useful, both as the upper bound on AC
// utilisation in ablations and as the witness that safety is enforced by the
// module, not by policy good behaviour.
type alwaysAC struct{}

func (alwaysAC) Name() string      { return "always-ac" }
func (alwaysAC) Init() PolicyState { return nil }

func (alwaysAC) Decide(_ PolicyState, ctx *DecisionContext) (Mode, PolicyState, SwitchReason) {
	if ctx.Current == ModeSC {
		return ModeAC, nil, ReasonRecovery
	}
	return ModeAC, nil, ReasonNone
}

// alwaysSC never leaves the certified controller — the SC-only lower bound
// expressed as a policy (the module still runs both controllers; compare
// mission.ProtectSCOnly, which removes the AC from the system entirely).
type alwaysSC struct{}

func (alwaysSC) Name() string      { return "always-sc" }
func (alwaysSC) Init() PolicyState { return nil }

func (alwaysSC) Decide(_ PolicyState, _ *DecisionContext) (Mode, PolicyState, SwitchReason) {
	return ModeSC, nil, ReasonNone
}

// --- Registry ---------------------------------------------------------------

// PolicyFactory builds a policy instance from the integer parameter of a
// policy spec ("name:K"). param is 0 when the spec had no parameter; the
// factory substitutes its default. Factories for parameterless policies must
// reject a non-zero param.
type PolicyFactory func(param int) (Policy, error)

// Built-in parameter defaults.
const (
	// DefaultStickyDwell is sticky-sc's minimum SC dwell in DM periods.
	DefaultStickyDwell = 10
	// DefaultHysteresisPeriods is hysteresis's consecutive-φsafer requirement.
	DefaultHysteresisPeriods = 3
)

var policies = struct {
	sync.RWMutex
	factories map[string]PolicyFactory
}{factories: make(map[string]PolicyFactory)}

func init() {
	mustRegister := func(name string, f PolicyFactory) {
		if err := RegisterPolicy(name, f); err != nil {
			panic(err)
		}
	}
	noParam := func(name string, p Policy) PolicyFactory {
		return func(param int) (Policy, error) {
			if param != 0 {
				return nil, fmt.Errorf("policy %q takes no parameter", name)
			}
			return p, nil
		}
	}
	mustRegister(DefaultPolicyName, noParam(DefaultPolicyName, fig9{}))
	mustRegister("always-ac", noParam("always-ac", alwaysAC{}))
	mustRegister("always-sc", noParam("always-sc", alwaysSC{}))
	mustRegister("sticky-sc", func(param int) (Policy, error) {
		if param == 0 {
			param = DefaultStickyDwell
		}
		return stickySC{dwell: param}, nil
	})
	mustRegister("hysteresis", func(param int) (Policy, error) {
		if param == 0 {
			param = DefaultHysteresisPeriods
		}
		return hysteresis{periods: param}, nil
	})
}

// RegisterPolicy adds a named policy factory to the registry. Names are the
// first component of a policy spec ("name" or "name:K") and must not contain
// ':'. Registering over an existing name is an error.
func RegisterPolicy(name string, f PolicyFactory) error {
	if name == "" || strings.Contains(name, ":") {
		return fmt.Errorf("invalid policy name %q", name)
	}
	if f == nil {
		return fmt.Errorf("policy %q: nil factory", name)
	}
	policies.Lock()
	defer policies.Unlock()
	if _, dup := policies.factories[name]; dup {
		return fmt.Errorf("policy %q already registered", name)
	}
	policies.factories[name] = f
	return nil
}

// PolicyNames returns the registered policy names, sorted.
func PolicyNames() []string {
	policies.RLock()
	defer policies.RUnlock()
	out := make([]string, 0, len(policies.factories))
	for name := range policies.factories {
		out = append(out, name)
	}
	slices.Sort(out)
	return out
}

// ParsePolicy resolves a policy spec — "name" or "name:K" with K a positive
// integer parameter — against the registry. The empty spec resolves to the
// default Figure 9 policy.
func ParsePolicy(spec string) (Policy, error) {
	name, param := spec, 0
	if spec == "" {
		name = DefaultPolicyName
	}
	if i := strings.IndexByte(name, ':'); i >= 0 {
		raw := name[i+1:]
		name = name[:i]
		n, err := strconv.Atoi(raw)
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("policy spec %q: parameter %q must be a positive integer", spec, raw)
		}
		param = n
	}
	policies.RLock()
	f, ok := policies.factories[name]
	policies.RUnlock()
	if !ok {
		return nil, fmt.Errorf("unknown policy %q (have: %s)", name, strings.Join(PolicyNames(), ", "))
	}
	p, err := f(param)
	if err != nil {
		return nil, err
	}
	if p == nil {
		return nil, fmt.Errorf("policy %q: factory returned nil", name)
	}
	return p, nil
}

// CanonicalPolicySpec normalizes a policy spec to its canonical form, with
// the default name and defaulted parameters made explicit: "" →
// "soter-fig9", "sticky-sc" → "sticky-sc:10". Two specs with equal canonical
// forms denote the same switching behaviour — the property the scenario
// layer's Canonical()/Fingerprint() cache keys rely on.
func CanonicalPolicySpec(spec string) (string, error) {
	p, err := ParsePolicy(spec)
	if err != nil {
		return "", err
	}
	return p.Name(), nil
}
