package rta

import (
	"errors"
	"reflect"
	"testing"
	"time"

	"repro/internal/node"
	"repro/internal/pubsub"
)

func mkModule(t *testing.T, name, topicPrefix string) *Module {
	t.Helper()
	d := Decl{
		Name: name,
		AC: mkNode(t, name+".ac", 10*time.Millisecond,
			[]pubsub.TopicName{pubsub.TopicName(topicPrefix + "/in")},
			[]pubsub.TopicName{pubsub.TopicName(topicPrefix + "/out")}),
		SC: mkNode(t, name+".sc", 10*time.Millisecond,
			[]pubsub.TopicName{pubsub.TopicName(topicPrefix + "/in")},
			[]pubsub.TopicName{pubsub.TopicName(topicPrefix + "/out")}),
		Delta:     100 * time.Millisecond,
		TTF2Delta: constPred(false),
		InSafer:   constPred(true),
	}
	m, err := NewModule(d)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewSystemComposition(t *testing.T) {
	m1 := mkModule(t, "m1", "a")
	m2 := mkModule(t, "m2", "b")
	app := mkNode(t, "app", 100*time.Millisecond,
		[]pubsub.TopicName{"a/out"}, []pubsub.TopicName{"app/target"})
	sys, err := NewSystem([]*Module{m1, m2}, []*node.Node{app})
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}

	names := sys.NodeNames()
	want := []string{"app", "m1.ac", "m1.dm", "m1.sc", "m2.ac", "m2.dm", "m2.sc"}
	if !reflect.DeepEqual(names, want) {
		t.Errorf("NodeNames = %v", names)
	}

	ac := sys.ACNodes()
	if ac["m1.dm"] != "m1.ac" || ac["m2.dm"] != "m2.ac" {
		t.Errorf("ACNodes = %v", ac)
	}
	sc := sys.SCNodes()
	if sc["m1.dm"] != "m1.sc" || sc["m2.dm"] != "m2.sc" {
		t.Errorf("SCNodes = %v", sc)
	}

	if m, ok := sys.IsDM("m1.dm"); !ok || m.Name() != "m1" {
		t.Errorf("IsDM(m1.dm) = %v %v", m, ok)
	}
	if _, ok := sys.IsDM("app"); ok {
		t.Error("app is not a DM")
	}
	if m, isAC, ok := sys.ControllerOf("m2.sc"); !ok || isAC || m.Name() != "m2" {
		t.Errorf("ControllerOf(m2.sc) = %v %v %v", m, isAC, ok)
	}
	if _, _, ok := sys.ControllerOf("app"); ok {
		t.Error("app is not a controller")
	}
}

func TestSystemOutputsInputs(t *testing.T) {
	m := mkModule(t, "m", "x")
	app := mkNode(t, "app", 100*time.Millisecond,
		[]pubsub.TopicName{"x/out", "env/wind"}, []pubsub.TopicName{"x/in"})
	sys, err := NewSystem([]*Module{m}, []*node.Node{app})
	if err != nil {
		t.Fatal(err)
	}
	if got := sys.Outputs(); !reflect.DeepEqual(got, []pubsub.TopicName{"x/in", "x/out"}) {
		t.Errorf("Outputs = %v", got)
	}
	// env/wind is produced by no node: it is an environment input.
	if got := sys.Inputs(); !reflect.DeepEqual(got, []pubsub.TopicName{"env/wind"}) {
		t.Errorf("Inputs = %v", got)
	}
	topics := sys.Topics()
	if !reflect.DeepEqual(topics, []pubsub.TopicName{"env/wind", "x/in", "x/out"}) {
		t.Errorf("Topics = %v", topics)
	}
}

func TestNewSystemRejectsOverlap(t *testing.T) {
	t.Run("duplicate module", func(t *testing.T) {
		m := mkModule(t, "m", "a")
		if _, err := NewSystem([]*Module{m, m}, nil); !errors.Is(err, ErrNotComposable) {
			t.Errorf("error = %v", err)
		}
	})
	t.Run("output overlap between modules", func(t *testing.T) {
		m1 := mkModule(t, "m1", "same")
		m2 := mkModule(t, "m2", "same")
		if _, err := NewSystem([]*Module{m1, m2}, nil); !errors.Is(err, ErrNotComposable) {
			t.Errorf("error = %v", err)
		}
	})
	t.Run("output overlap with plain node", func(t *testing.T) {
		m := mkModule(t, "m", "a")
		rogue := mkNode(t, "rogue", time.Second, nil, []pubsub.TopicName{"a/out"})
		if _, err := NewSystem([]*Module{m}, []*node.Node{rogue}); !errors.Is(err, ErrNotComposable) {
			t.Errorf("error = %v", err)
		}
	})
	t.Run("node name overlap", func(t *testing.T) {
		m := mkModule(t, "m", "a")
		clash := mkNode(t, "m.ac", time.Second, nil, []pubsub.TopicName{"other"})
		if _, err := NewSystem([]*Module{m}, []*node.Node{clash}); !errors.Is(err, ErrNotComposable) {
			t.Errorf("error = %v", err)
		}
	})
	t.Run("nil module", func(t *testing.T) {
		if _, err := NewSystem([]*Module{nil}, nil); !errors.Is(err, ErrNotComposable) {
			t.Errorf("error = %v", err)
		}
	})
	t.Run("nil node", func(t *testing.T) {
		if _, err := NewSystem(nil, []*node.Node{nil}); !errors.Is(err, ErrNotComposable) {
			t.Errorf("error = %v", err)
		}
	})
}

func TestCompose(t *testing.T) {
	s1, err := NewSystem([]*Module{mkModule(t, "m1", "a")}, nil)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := NewSystem([]*Module{mkModule(t, "m2", "b")}, nil)
	if err != nil {
		t.Fatal(err)
	}
	u, err := Compose(s1, s2)
	if err != nil {
		t.Fatalf("Compose: %v", err)
	}
	if len(u.Modules()) != 2 {
		t.Errorf("composed modules = %d", len(u.Modules()))
	}
	// Composition re-checks composability (Theorem 4.1 requires output
	// disjointness).
	s3, err := NewSystem([]*Module{mkModule(t, "m3", "a")}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Compose(s1, s3); !errors.Is(err, ErrNotComposable) {
		t.Errorf("Compose overlap error = %v", err)
	}
}

func TestSystemCalendar(t *testing.T) {
	sys, err := NewSystem([]*Module{mkModule(t, "m", "a")}, nil)
	if err != nil {
		t.Fatal(err)
	}
	cal, err := sys.Calendar()
	if err != nil {
		t.Fatal(err)
	}
	if cal.Len() != 3 {
		t.Errorf("calendar has %d entries, want 3", cal.Len())
	}
	if s, ok := cal.Schedule("m.dm"); !ok || s.Period != 100*time.Millisecond {
		t.Errorf("DM schedule = %v %v", s, ok)
	}
}

func TestVerifyAll(t *testing.T) {
	m1 := mkModule(t, "m1", "a")
	m2 := mkModule(t, "m2", "b")
	sys, err := NewSystem([]*Module{m1, m2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	certs := map[string]Certificate{"m1": fakeCert{}, "m2": fakeCert{}}
	if err := sys.VerifyAll(certs); err != nil {
		t.Errorf("VerifyAll = %v", err)
	}
	// Theorem 4.1 requires every module well-formed: a missing certificate
	// is an error.
	delete(certs, "m2")
	if err := sys.VerifyAll(certs); !errors.Is(err, ErrNotWellFormed) {
		t.Errorf("VerifyAll missing cert = %v", err)
	}
}
