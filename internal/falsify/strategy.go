package falsify

import (
	"context"
	"fmt"
	"slices"
	"strconv"
	"strings"
	"sync"
)

// Strategy decides how a campaign spends its execution budget. Search drives
// the engine until the budget is exhausted (Remaining() == 0) or the context
// is cancelled; it must be deterministic given the engine's RNG — strategies
// draw candidates single-threaded between Evaluate calls, never concurrently.
type Strategy interface {
	// Name returns the canonical strategy spec ("random", "guided:8", ...),
	// with defaulted parameters made explicit — the form results report.
	Name() string
	// Search runs the campaign. A cancelled context returns its error; the
	// engine keeps whatever was accounted before.
	Search(ctx context.Context, e *Engine) error
}

// StrategyFactory builds a strategy from the integer parameter of a strategy
// spec ("name:K"). param is 0 when the spec had no parameter; factories
// substitute their default (or reject non-zero params for parameterless
// strategies). The registry mirrors rta.Policy's.
type StrategyFactory func(param int) (Strategy, error)

// DefaultStrategyName names the default (random sampling) strategy.
const DefaultStrategyName = "random"

var strategies = struct {
	sync.RWMutex
	factories map[string]StrategyFactory
}{factories: make(map[string]StrategyFactory)}

// RegisterStrategy adds a named strategy factory to the registry. Names are
// the first component of a strategy spec and must not contain ':'.
// Registering over an existing name is an error.
func RegisterStrategy(name string, f StrategyFactory) error {
	if name == "" || strings.Contains(name, ":") {
		return fmt.Errorf("invalid strategy name %q", name)
	}
	if f == nil {
		return fmt.Errorf("strategy %q: nil factory", name)
	}
	strategies.Lock()
	defer strategies.Unlock()
	if _, dup := strategies.factories[name]; dup {
		return fmt.Errorf("strategy %q already registered", name)
	}
	strategies.factories[name] = f
	return nil
}

// StrategyNames returns the registered strategy names, sorted.
func StrategyNames() []string {
	strategies.RLock()
	defer strategies.RUnlock()
	out := make([]string, 0, len(strategies.factories))
	for name := range strategies.factories {
		out = append(out, name)
	}
	slices.Sort(out)
	return out
}

// ParseStrategy resolves a strategy spec — "name" or "name:K" with K a
// positive integer — against the registry. The empty spec resolves to the
// default random strategy.
func ParseStrategy(spec string) (Strategy, error) {
	name, param := spec, 0
	if spec == "" {
		name = DefaultStrategyName
	}
	if i := strings.IndexByte(name, ':'); i >= 0 {
		raw := name[i+1:]
		name = name[:i]
		n, err := strconv.Atoi(raw)
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("strategy spec %q: parameter %q must be a positive integer", spec, raw)
		}
		param = n
	}
	strategies.RLock()
	f, ok := strategies.factories[name]
	strategies.RUnlock()
	if !ok {
		return nil, fmt.Errorf("unknown strategy %q (have: %s)", name, strings.Join(StrategyNames(), ", "))
	}
	s, err := f(param)
	if err != nil {
		return nil, err
	}
	if s == nil {
		return nil, fmt.Errorf("strategy %q: factory returned nil", name)
	}
	return s, nil
}

// CanonicalStrategySpec normalizes a strategy spec, with the default name and
// defaulted parameters made explicit: "" → "random", "guided" → "guided:8".
func CanonicalStrategySpec(spec string) (string, error) {
	s, err := ParseStrategy(spec)
	if err != nil {
		return "", err
	}
	return s.Name(), nil
}

func init() {
	mustRegister := func(name string, f StrategyFactory) {
		if err := RegisterStrategy(name, f); err != nil {
			panic(err)
		}
	}
	mustRegister("random", func(param int) (Strategy, error) {
		if param != 0 {
			return nil, fmt.Errorf("strategy %q takes no parameter", "random")
		}
		return randomStrategy{}, nil
	})
	mustRegister("guided", func(param int) (Strategy, error) {
		if param == 0 {
			param = DefaultGuidedBatch
		}
		return guidedStrategy{batch: param}, nil
	})
	mustRegister("schedule", func(param int) (Strategy, error) {
		return scheduleStrategy{seeds: param}, nil
	})
}

// randomBatch is how many candidates the random strategy evaluates per
// batch. A fixed constant — NOT the worker count — so the candidate stream,
// and with it the whole campaign, is identical at any parallelism.
const randomBatch = 8

// randomStrategy samples the space uniformly: every batch is fresh draws of
// (1–3 mutations over the base, fresh seed). The baseline strategy and the
// coverage workhorse.
type randomStrategy struct{}

func (randomStrategy) Name() string { return "random" }

func (randomStrategy) Search(ctx context.Context, e *Engine) error {
	for e.Remaining() > 0 {
		n := min(randomBatch, e.Remaining())
		batch := make([]Candidate, n)
		for i := range batch {
			batch[i] = e.RandomCandidate()
		}
		if _, err := e.Evaluate(ctx, batch); err != nil {
			return err
		}
	}
	return nil
}

// DefaultGuidedBatch is the guided strategy's default mutants-per-generation.
const DefaultGuidedBatch = 8

// guidedStalePatience is how many non-improving generations the guided
// strategy tolerates before restarting from a fresh random incumbent.
const guidedStalePatience = 3

// guidedStrategy hill-climbs on the oracle's severity objective: each
// generation evaluates `batch` single-mutation neighbours of the incumbent
// (half keeping the incumbent's seed, half drawing fresh ones), adopts the
// best strict improvement, and random-restarts after a few stale
// generations. The continuous severity terms (clamp count, near-miss
// distance) give it a slope to climb before any discrete violation exists.
type guidedStrategy struct{ batch int }

func (g guidedStrategy) Name() string { return fmt.Sprintf("guided:%d", g.batch) }

func (g guidedStrategy) Search(ctx context.Context, e *Engine) error {
	incumbent, sev, err := g.seedIncumbent(ctx, e)
	if err != nil || e.Remaining() <= 0 {
		return err
	}
	stale := 0
	for e.Remaining() > 0 {
		n := min(g.batch, e.Remaining())
		batch := make([]Candidate, n)
		for i := range batch {
			c := Candidate{Params: e.Mutate(incumbent.Params), Seed: incumbent.Seed}
			if i%2 == 1 {
				c.Seed = e.NewSeed()
			}
			batch[i] = c
		}
		outs, err := e.Evaluate(ctx, batch)
		if err != nil {
			return err
		}
		improved := false
		for _, out := range outs {
			if out.Err == nil && out.Severity > sev {
				incumbent, sev = out.Candidate, out.Severity
				improved = true
			}
		}
		if improved {
			stale = 0
			continue
		}
		if stale++; stale >= guidedStalePatience {
			if incumbent, sev, err = g.seedIncumbent(ctx, e); err != nil {
				return err
			}
			stale = 0
		}
	}
	return nil
}

// seedIncumbent evaluates one fresh random candidate as the next incumbent.
func (guidedStrategy) seedIncumbent(ctx context.Context, e *Engine) (Candidate, float64, error) {
	c := e.RandomCandidate()
	outs, err := e.Evaluate(ctx, []Candidate{c})
	if err != nil || len(outs) == 0 {
		return c, 0, err
	}
	return c, outs[0].Severity, nil
}
