package falsify

import (
	"slices"
	"testing"
)

func TestStrategyRegistry(t *testing.T) {
	names := StrategyNames()
	for _, want := range []string{"guided", "random", "schedule"} {
		if !slices.Contains(names, want) {
			t.Errorf("StrategyNames() = %v, missing %q", names, want)
		}
	}
	if !slices.IsSorted(names) {
		t.Errorf("StrategyNames() not sorted: %v", names)
	}
}

func TestParseStrategy(t *testing.T) {
	good := map[string]string{
		"":           DefaultStrategyName,
		"random":     "random",
		"guided":     "guided:8",
		"guided:4":   "guided:4",
		"schedule":   "schedule",
		"schedule:3": "schedule:3",
	}
	for spec, wantName := range good {
		s, err := ParseStrategy(spec)
		if err != nil {
			t.Errorf("ParseStrategy(%q): %v", spec, err)
			continue
		}
		if s.Name() != wantName {
			t.Errorf("ParseStrategy(%q).Name() = %q, want %q", spec, s.Name(), wantName)
		}
		if canon, err := CanonicalStrategySpec(spec); err != nil || canon != wantName {
			t.Errorf("CanonicalStrategySpec(%q) = %q, %v", spec, canon, err)
		}
	}
	bad := []string{
		"annealing",  // unregistered
		"random:3",   // random takes no parameter
		"guided:0",   // zero parameter
		"guided:-2",  // negative parameter
		"guided:x",   // non-numeric parameter
		"guided:4:4", // too many colons
		" guided",    // whitespace is not trimmed
	}
	for _, spec := range bad {
		if _, err := ParseStrategy(spec); err == nil {
			t.Errorf("ParseStrategy(%q) accepted", spec)
		}
	}
}

func TestRegisterStrategyRejects(t *testing.T) {
	dummy := func(int) (Strategy, error) { return randomStrategy{}, nil }
	cases := map[string]error{
		"empty name":    RegisterStrategy("", dummy),
		"colon in name": RegisterStrategy("a:b", dummy),
		"nil factory":   RegisterStrategy("x", nil),
		"duplicate":     RegisterStrategy("random", dummy),
	}
	for name, err := range cases {
		if err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}
