package falsify

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"repro/internal/geom"
	"repro/internal/plan"
	"repro/internal/scenario"
)

// Params is one point of the falsification search space: a JSON-serializable
// bundle of scenario knobs layered over a base scenario.Spec. The zero value
// of every field means "inherit from the base", so a Params is exactly the
// delta a counterexample needs to carry to be replayed — Apply(base) rebuilds
// the concrete Spec, and the Spec's canonical fingerprint then identifies the
// run. The searchable knobs mirror the scenario.Override axes the sweep
// layers already mutate: switching policy, workspace family, Δ/hysteresis,
// fault/planner-bug/jitter profiles, battery stress.
type Params struct {
	// Policy selects the motion module's switching policy ("always-ac",
	// "sticky-sc:25", ...); empty inherits the base's.
	Policy string `json:"policy,omitempty"`
	// Workspace selects the obstacle-map family by name ("city", "canyon",
	// "corner-hazard"); empty inherits. Only sensible for random-target
	// bases — fixed tours may leave another workspace's free space, so the
	// workspace mutation operator fires only for those.
	Workspace string `json:"workspace,omitempty"`
	// MotionDelta / Hysteresis / PlanMargin are the Remark 3.3 knobs.
	MotionDelta time.Duration `json:"motion_delta_ns,omitempty"`
	Hysteresis  float64       `json:"hysteresis,omitempty"`
	PlanMargin  float64       `json:"plan_margin,omitempty"`
	// FaultLen > 0 replaces the base's fault profile with periodic
	// full-thrust windows [FaultFirst + k·FaultEvery, +FaultLen) in
	// direction FaultDir.
	FaultFirst time.Duration `json:"fault_first_ns,omitempty"`
	FaultEvery time.Duration `json:"fault_every_ns,omitempty"`
	FaultLen   time.Duration `json:"fault_len_ns,omitempty"`
	FaultDir   *geom.Vec3    `json:"fault_dir,omitempty"`
	// PlannerBug injects an RRT* defect ("none", "skip-edge-check",
	// "unchecked-shortcut", "stale-obstacles") at PlannerBugRate.
	PlannerBug     string   `json:"planner_bug,omitempty"`
	PlannerBugRate *float64 `json:"planner_bug_rate,omitempty"`
	// JitterProb / JitterSCOnly are the Section V-D scheduling-outage knobs.
	JitterProb   *float64 `json:"jitter_prob,omitempty"`
	JitterSCOnly *bool    `json:"jitter_sc_only,omitempty"`
	// InitialBattery / DrainMultiple stress the battery layer.
	InitialBattery float64 `json:"initial_battery,omitempty"`
	DrainMultiple  float64 `json:"drain_multiple,omitempty"`
	// Duration overrides the mission horizon (campaigns typically shorten it
	// so the budget buys more executions).
	Duration time.Duration `json:"duration_ns,omitempty"`
	// NoPlannerModule / NoBatteryModule drop RTA layers — the knob that lets
	// a campaign probe what the full stack protects against.
	NoPlannerModule *bool `json:"no_planner_module,omitempty"`
	NoBatteryModule *bool `json:"no_battery_module,omitempty"`
}

// workspaceFactory resolves a workspace family name.
func workspaceFactory(name string) (func() *geom.Workspace, error) {
	switch name {
	case "city":
		return geom.CityWorkspace, nil
	case "canyon":
		return geom.CanyonWorkspace, nil
	case "corner-hazard":
		return geom.CornerHazardWorkspace, nil
	default:
		return nil, fmt.Errorf("falsify: unknown workspace family %q (want city | canyon | corner-hazard)", name)
	}
}

// WorkspaceFamilies lists the mutable workspace family names.
func WorkspaceFamilies() []string { return []string{"city", "canyon", "corner-hazard"} }

// Apply layers the Params over a base Spec and returns the concrete Spec the
// point denotes. The base is not modified. The result is not validated —
// callers filter through Spec.Validate, which is how the search space honours
// the scenario layer's own consistency rules.
func (p Params) Apply(base scenario.Spec) (scenario.Spec, error) {
	s := base.With(scenario.Override{}) // deep-enough copy
	if p.Policy != "" {
		s.SwitchPolicy = p.Policy
	}
	if p.Workspace != "" {
		ws, err := workspaceFactory(p.Workspace)
		if err != nil {
			return scenario.Spec{}, err
		}
		s.Workspace = ws
	}
	if p.MotionDelta > 0 {
		s.MotionDelta = p.MotionDelta
	}
	if p.Hysteresis > 0 {
		s.Hysteresis = p.Hysteresis
	}
	if p.PlanMargin > 0 {
		s.PlanMargin = p.PlanMargin
	}
	if p.FaultLen > 0 {
		dir := geom.V(1, 0, 0)
		if p.FaultDir != nil {
			dir = *p.FaultDir
		}
		s.Faults = scenario.FaultProfile{
			First: p.FaultFirst,
			Every: p.FaultEvery,
			Len:   p.FaultLen,
			Dir:   dir,
		}
	}
	switch p.PlannerBug {
	case "":
	case "none":
		s.PlannerBug, s.PlannerBugRate = plan.BugNone, 0
	case "skip-edge-check":
		s.PlannerBug = plan.BugSkipEdgeCheck
	case "unchecked-shortcut":
		s.PlannerBug = plan.BugUncheckedShortcut
	case "stale-obstacles":
		s.PlannerBug = plan.BugStaleObstacles
	default:
		return scenario.Spec{}, fmt.Errorf("falsify: unknown planner bug %q", p.PlannerBug)
	}
	if p.PlannerBugRate != nil {
		s.PlannerBugRate = *p.PlannerBugRate
	}
	if p.JitterProb != nil {
		s.JitterProb = *p.JitterProb
	}
	if p.JitterSCOnly != nil {
		s.JitterSCOnly = *p.JitterSCOnly
	}
	if p.InitialBattery > 0 {
		s.InitialBattery = p.InitialBattery
	}
	if p.DrainMultiple > 0 {
		s.DrainMultiple = p.DrainMultiple
	}
	if p.Duration > 0 {
		s.Duration = p.Duration
	}
	if p.NoPlannerModule != nil {
		s.NoPlannerModule = *p.NoPlannerModule
	}
	if p.NoBatteryModule != nil {
		s.NoBatteryModule = *p.NoBatteryModule
	}
	return s, nil
}

// mutator is one named mutation operator over the search space. Operators
// draw from the engine's campaign RNG, so a mutation sequence is a pure
// function of the campaign seed. Values are rounded to short decimals so
// corpus files and counterexample JSON stay humane.
type mutator struct {
	name string
	// ok reports whether the operator applies to this base (e.g. workspace
	// swaps only make sense for random-target scenarios).
	ok func(base scenario.Spec) bool
	// apply mutates one knob of p.
	apply func(p *Params, pool []string, rng *rand.Rand)
}

// faultDirs is the mutation pool of fault thrust directions.
var faultDirs = []geom.Vec3{
	geom.V(1, 0, 0), geom.V(-1, 0, 0), geom.V(0, 1, 0),
	geom.V(0, -1, 0), geom.V(0, 0, -1), geom.V(0.7, 0.7, 0),
}

// plannerBugs is the mutation pool of injectable RRT* defects.
var plannerBugs = []string{"skip-edge-check", "unchecked-shortcut", "stale-obstacles"}

// motionDeltas is the mutation pool of DM periods Δ.
var motionDeltas = []time.Duration{
	40 * time.Millisecond, 60 * time.Millisecond, 80 * time.Millisecond,
	100 * time.Millisecond, 140 * time.Millisecond, 200 * time.Millisecond,
	250 * time.Millisecond,
}

// mutators is the operator catalog. Order matters: operator choice indexes
// into this slice from the campaign RNG, so reordering changes campaigns
// (like reordering a policy registry would change a sweep).
var mutators = []mutator{
	{name: "policy", apply: func(p *Params, pool []string, rng *rand.Rand) {
		p.Policy = pool[rng.Intn(len(pool))]
	}},
	{name: "fault", apply: func(p *Params, _ []string, rng *rand.Rand) {
		p.FaultFirst = time.Duration(200+rng.Intn(1800)) * time.Millisecond
		p.FaultEvery = time.Duration(2+rng.Intn(8)) * time.Second
		p.FaultLen = time.Duration(500+rng.Intn(2500)) * time.Millisecond
		d := faultDirs[rng.Intn(len(faultDirs))]
		p.FaultDir = &d
	}},
	{name: "jitter", apply: func(p *Params, _ []string, rng *rand.Rand) {
		prob := round4(0.005 + 0.045*rng.Float64())
		scOnly := rng.Intn(2) == 0
		p.JitterProb, p.JitterSCOnly = &prob, &scOnly
	}},
	{name: "planner-bug", apply: func(p *Params, _ []string, rng *rand.Rand) {
		p.PlannerBug = plannerBugs[rng.Intn(len(plannerBugs))]
		rate := round2(0.1 + 0.9*rng.Float64())
		p.PlannerBugRate = &rate
	}},
	{name: "delta", apply: func(p *Params, _ []string, rng *rand.Rand) {
		p.MotionDelta = motionDeltas[rng.Intn(len(motionDeltas))]
	}},
	{name: "hysteresis", apply: func(p *Params, _ []string, rng *rand.Rand) {
		p.Hysteresis = round1(1.0 + 4.0*rng.Float64())
	}},
	{name: "plan-margin", apply: func(p *Params, _ []string, rng *rand.Rand) {
		p.PlanMargin = round2(0.4 + 1.2*rng.Float64())
	}},
	{name: "battery", apply: func(p *Params, _ []string, rng *rand.Rand) {
		p.InitialBattery = round2(0.2 + 0.8*rng.Float64())
		p.DrainMultiple = round1(1 + 39*rng.Float64())
	}},
	{
		name: "workspace",
		ok:   func(base scenario.Spec) bool { return base.RandomTargets },
		apply: func(p *Params, _ []string, rng *rand.Rand) {
			fams := WorkspaceFamilies()
			p.Workspace = fams[rng.Intn(len(fams))]
		},
	},
}

func round1(v float64) float64 { return math.Round(v*10) / 10 }
func round2(v float64) float64 { return math.Round(v*100) / 100 }
func round4(v float64) float64 { return math.Round(v*10000) / 10000 }
