package falsify

import (
	"testing"
	"time"

	"repro/internal/geom"
	"repro/internal/obs"
	"repro/internal/rta"
)

func TestVerdictCategory(t *testing.T) {
	tests := []struct {
		name       string
		v          Verdict
		clampStorm int
		want       string
	}{
		{"clean", Verdict{}, 12, ""},
		{"crash", Verdict{Crashed: true}, 12, CategoryCrash},
		{"invariant", Verdict{InvariantViolations: 2}, 12, CategoryInvariant},
		{"clamp storm", Verdict{Clamped: 12}, 12, CategoryClampStorm},
		{"below storm threshold", Verdict{Clamped: 11}, 12, ""},
		{"storm disabled", Verdict{Clamped: 100}, 0, ""},
		// Gravity ordering: a crashing run that also violated φInv files as a
		// crash, and an invariant violation outranks any clamp count.
		{"crash beats invariant", Verdict{Crashed: true, InvariantViolations: 3}, 12, CategoryCrash},
		{"invariant beats storm", Verdict{InvariantViolations: 1, Clamped: 50}, 12, CategoryInvariant},
		// Errored runs never qualify, whatever else they observed.
		{"errored", Verdict{Crashed: true, Err: "build failed"}, 12, ""},
	}
	for _, tt := range tests {
		if got := tt.v.Category(tt.clampStorm); got != tt.want {
			t.Errorf("%s: Category(%d) = %q, want %q", tt.name, tt.clampStorm, got, tt.want)
		}
	}
}

func TestSeverity(t *testing.T) {
	if got := Severity(Verdict{}, 1); got != 0 {
		t.Errorf("clean verdict severity = %v", got)
	}
	if got := Severity(Verdict{Crashed: true, Err: "x"}, 1); got != 0 {
		t.Errorf("errored verdict severity = %v, want 0", got)
	}
	crash := Severity(Verdict{Crashed: true, Collisions: 1}, 1)
	inv := Severity(Verdict{InvariantViolations: 1}, 1)
	storm := Severity(Verdict{Clamped: 20}, 1)
	if !(crash > inv && inv > storm) {
		t.Errorf("severity ordering violated: crash=%v invariant=%v storm=%v", crash, inv, storm)
	}
	// The near-miss term slopes continuously toward zero clearance — the
	// gradient the guided strategy climbs before any discrete violation.
	close := Severity(Verdict{MinClearance: 0.1}, 1.0)
	far := Severity(Verdict{MinClearance: 0.9}, 1.0)
	if !(close > far && far > 0) {
		t.Errorf("near-miss slope: clearance 0.1 → %v, 0.9 → %v", close, far)
	}
	if got := Severity(Verdict{MinClearance: 1.5}, 1.0); got != 0 {
		t.Errorf("clearance beyond margin scored %v", got)
	}
	if got := Severity(Verdict{MinClearance: 0.1}, 0); got != 0 {
		t.Errorf("zero margin scored %v", got)
	}
}

func TestOracleAggregation(t *testing.T) {
	ws := geom.CityWorkspace()
	o := NewOracle(ws)

	for _, k := range []obs.Kind{obs.KindModeSwitch, obs.KindInvariantViolation, obs.KindCrash, obs.KindTrajectorySample} {
		if !o.Interests().Has(k) {
			t.Errorf("oracle not interested in %v", k)
		}
	}
	if o.Interests().Has(obs.KindNodeFired) {
		t.Error("oracle subscribed to the hot NodeFired kind")
	}

	// A clamp is an SC switch with the clamped reason; a coordinated
	// disengagement is an SC switch for any other reason; AC re-engagements
	// count as neither.
	o.OnEvent(obs.ModeSwitch{T: 10 * time.Millisecond, Module: "motion", From: rta.ModeAC, To: rta.ModeSC, Reason: rta.ReasonClamped})
	o.OnEvent(obs.ModeSwitch{T: 20 * time.Millisecond, Module: "motion", From: rta.ModeAC, To: rta.ModeSC, Reason: rta.ReasonTTFTrip})
	o.OnEvent(obs.ModeSwitch{T: 30 * time.Millisecond, Module: "motion", From: rta.ModeSC, To: rta.ModeAC, Reason: rta.ReasonRecovery})
	o.OnEvent(obs.InvariantViolation{T: 40 * time.Millisecond, Module: "motion", Mode: rta.ModeSC})
	o.OnEvent(obs.Crash{T: 50 * time.Millisecond, Pos: geom.V(1, 1, 0)})
	o.OnEvent(obs.Crash{T: 60 * time.Millisecond, Pos: geom.V(1, 1, 0)})

	v := o.Verdict()
	if v.Clamped != 1 || v.Disengagements != 2 {
		t.Errorf("clamped=%d disengagements=%d, want 1, 2", v.Clamped, v.Disengagements)
	}
	if v.InvariantViolations != 1 {
		t.Errorf("invariant violations = %d", v.InvariantViolations)
	}
	if !v.Crashed || v.CrashTime != int64(50*time.Millisecond) || v.Collisions != 2 {
		t.Errorf("crash accounting: %+v", v)
	}
}

func TestOracleMinClearance(t *testing.T) {
	ws := geom.CityWorkspace()
	o := NewOracle(ws)
	a := geom.V(5, 5, 2)
	b := geom.V(25, 25, 2)
	ca, cb := ws.Clearance(a), ws.Clearance(b)
	o.OnTrajectorySample(obs.TrajectorySample{T: 0, Pos: a})
	o.OnTrajectorySample(obs.TrajectorySample{T: time.Millisecond, Pos: b})
	// Landed samples are ignored: ground contact at the pad is not a near-miss.
	o.OnTrajectorySample(obs.TrajectorySample{T: 2 * time.Millisecond, Pos: geom.V(0, 0, 0), Landed: true})
	if want := min(ca, cb); o.Verdict().MinClearance != want {
		t.Errorf("MinClearance = %v, want %v (a=%v b=%v)", o.Verdict().MinClearance, want, ca, cb)
	}

	// A nil workspace disables the near-miss channel entirely.
	o2 := NewOracle(nil)
	o2.OnTrajectorySample(obs.TrajectorySample{Pos: a})
	if o2.Verdict().MinClearance != 0 {
		t.Errorf("nil-workspace oracle measured clearance %v", o2.Verdict().MinClearance)
	}
}
