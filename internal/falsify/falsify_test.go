package falsify

import (
	"context"
	"encoding/json"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/geom"
	"repro/internal/obs"
	"repro/internal/scenario"
)

// eventRecorder captures the campaign event stream for assertions.
type eventRecorder struct {
	progress []obs.CampaignProgress
	finds    []obs.CounterexampleFound
}

func (r *eventRecorder) Interests() obs.KindSet {
	return obs.Kinds(obs.KindCampaignProgress, obs.KindCounterexample)
}

func (r *eventRecorder) OnEvent(ev obs.Event) {
	switch e := ev.(type) {
	case obs.CampaignProgress:
		r.progress = append(r.progress, e)
	case obs.CounterexampleFound:
		r.finds = append(r.finds, e)
	}
}

// plantedScenario registers (once) a deliberately unsafe base: SC/DM outage
// bursts on every node, a tight planning margin and an early fault window.
// The RTA story genuinely breaks around this configuration, so any competent
// strategy must find counterexamples within a small budget — the planted-bug
// fixture of the package.
func plantedScenario(t *testing.T) string {
	t.Helper()
	plantedOnce.Do(func() {
		if err := scenario.Register(scenario.Spec{
			Name:        "falsify-test/planted",
			Description: "test fixture: jitter on all nodes at a tight margin",
			Targets: []geom.Vec3{
				geom.V(3, 3, 2), geom.V(46, 3, 2.5), geom.V(46, 46, 2),
			},
			PlanMargin: 0.45,
			JitterProb: 0.05,
			Faults: scenario.FaultProfile{
				First: 500 * time.Millisecond,
				Every: 2 * time.Second,
				Len:   1500 * time.Millisecond,
				Dir:   geom.V(1, 0.4, 0),
			},
			Duration: 4 * time.Second,
		}); err != nil {
			t.Fatalf("register planted scenario: %v", err)
		}
	})
	return "falsify-test/planted"
}

var plantedOnce sync.Once

// The planted unsafe configuration must be found by more than one strategy
// within a small budget, and each find must carry everything needed to
// replay it deterministically.
func TestPlantedBugFoundByMultipleStrategies(t *testing.T) {
	base := plantedScenario(t)
	for _, strat := range []string{"random", "guided:4"} {
		t.Run(strat, func(t *testing.T) {
			res, err := Campaign(context.Background(), Config{
				Scenario:     base,
				Strategy:     strat,
				Seed:         1,
				Budget:       12,
				AutoRegister: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.Executions != 12 {
				t.Errorf("executions = %d, want the full budget 12", res.Executions)
			}
			if len(res.Counterexamples) == 0 {
				t.Fatalf("strategy %s missed the planted bug in %d executions", strat, res.Budget)
			}
			ce := res.Counterexamples[0]
			if ce.Category != CategoryCrash {
				t.Errorf("top counterexample category = %q, want %q", ce.Category, CategoryCrash)
			}
			if ce.Fingerprint == "" || ce.Policy == "" || ce.Strategy == "" {
				t.Errorf("counterexample missing identity fields: %+v", ce)
			}

			// The find auto-registered as a named regression scenario...
			reg, ok := scenario.Get(ce.Name)
			if !ok {
				t.Fatalf("counterexample %s not registered as scenario %q", ce.Fingerprint, ce.Name)
			}
			if !reg.InvariantMonitor {
				t.Error("registered counterexample scenario lost the φInv monitor")
			}
			// ...whose fingerprint pins the exact spec the campaign ran.
			spec, err := ce.Rebuild()
			if err != nil {
				t.Fatal(err)
			}
			fp, err := spec.Fingerprint(ce.Candidate.Seed)
			if err != nil {
				t.Fatal(err)
			}
			if fp != ce.Fingerprint {
				t.Errorf("rebuilt fingerprint %s != filed %s", fp, ce.Fingerprint)
			}
			// Replaying reproduces the violation, same category.
			v, err := ce.Replay(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			if got := v.Category(DefaultClampStorm); got != ce.Category {
				t.Errorf("replay category = %q, want %q (verdict %+v)", got, ce.Category, v)
			}
		})
	}
}

// A campaign's ranked result must be byte-identical at any worker count —
// the determinism contract the serving layer and the corpus rely on. Run
// under -race this also exercises the engine/fleet concurrency.
func TestCampaignDeterministicAcrossWorkers(t *testing.T) {
	base := plantedScenario(t)
	for _, strat := range []string{"random", "guided:4"} {
		t.Run(strat, func(t *testing.T) {
			var want []byte
			for _, workers := range []int{1, 4, runtime.GOMAXPROCS(0)} {
				res, err := Campaign(context.Background(), Config{
					Scenario: base,
					Strategy: strat,
					Seed:     7,
					Budget:   8,
					Workers:  workers,
				})
				if err != nil {
					t.Fatal(err)
				}
				got, err := json.Marshal(res)
				if err != nil {
					t.Fatal(err)
				}
				if want == nil {
					want = got
					continue
				}
				if string(got) != string(want) {
					t.Errorf("workers=%d diverged:\n got %s\nwant %s", workers, got, want)
				}
			}
		})
	}
}

func TestCampaignRankingAndBound(t *testing.T) {
	base := plantedScenario(t)
	full, err := Campaign(context.Background(), Config{
		Scenario: base, Seed: 1, Budget: 12,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(full.Counterexamples) < 2 {
		t.Skipf("need >=2 finds to check ranking, got %d", len(full.Counterexamples))
	}
	for i := 1; i < len(full.Counterexamples); i++ {
		a, b := full.Counterexamples[i-1], full.Counterexamples[i]
		if a.Severity < b.Severity {
			t.Errorf("ranking not severity-descending at %d: %.1f < %.1f", i, a.Severity, b.Severity)
		}
		if a.Severity == b.Severity && a.Fingerprint > b.Fingerprint {
			t.Errorf("tie at %d not fingerprint-ascending", i)
		}
	}
	bounded, err := Campaign(context.Background(), Config{
		Scenario: base, Seed: 1, Budget: 12, MaxCounterexamples: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(bounded.Counterexamples) != 1 {
		t.Errorf("MaxCounterexamples=1 kept %d", len(bounded.Counterexamples))
	}
	if bounded.Counterexamples[0].Fingerprint != full.Counterexamples[0].Fingerprint {
		t.Error("bound did not keep the top-ranked counterexample")
	}
}

func TestConfigValidate(t *testing.T) {
	base := plantedScenario(t)
	cases := map[string]Config{
		"missing scenario": {},
		"unknown scenario": {Scenario: "no-such-scenario"},
		"unknown strategy": {Scenario: base, Strategy: "annealing"},
		"bad strategy arg": {Scenario: base, Strategy: "random:3"},
		"negative budget":  {Scenario: base, Budget: -1},
		"bad policy pool":  {Scenario: base, Policies: []string{"not-a-policy"}},
		"bad base params":  {Scenario: base, Base: Params{PlannerBug: "not-a-bug"}},
	}
	for name, cfg := range cases {
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	if err := (Config{Scenario: base}).Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestCampaignCancellation(t *testing.T) {
	base := plantedScenario(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := Campaign(ctx, Config{Scenario: base, Seed: 1, Budget: 8})
	if err == nil {
		t.Fatal("cancelled campaign returned no error")
	}
	if res == nil {
		t.Fatal("cancelled campaign dropped its partial result")
	}
	if res.Executions != 0 {
		t.Errorf("pre-cancelled campaign accounted %d executions", res.Executions)
	}
}

// Campaign events must arrive in deterministic order with a monotone
// pseudo-clock, and the progress stream must end exactly at the budget.
func TestCampaignProgressStream(t *testing.T) {
	base := plantedScenario(t)
	var rec eventRecorder
	res, err := Campaign(context.Background(), Config{
		Scenario:  base,
		Seed:      1,
		Budget:    12,
		Observers: []obs.Observer{&rec},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.progress) == 0 {
		t.Fatal("no CampaignProgress events")
	}
	last := rec.progress[len(rec.progress)-1]
	if last.Executions != res.Executions || last.Budget != res.Budget {
		t.Errorf("final progress %+v does not match result (%d/%d)", last, res.Executions, res.Budget)
	}
	if len(rec.finds) != len(res.Counterexamples) {
		t.Errorf("%d CounterexampleFound events for %d counterexamples", len(rec.finds), len(res.Counterexamples))
	}
}
