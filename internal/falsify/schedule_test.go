package falsify

import (
	"context"
	"encoding/json"
	"testing"
	"time"
)

// newTestEngine builds an engine around the planted base for direct
// accounting tests.
func newTestEngine(t *testing.T, cfg Config) *Engine {
	t.Helper()
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestReportSchedulesAccounting(t *testing.T) {
	base := plantedScenario(t)
	e := newTestEngine(t, Config{Scenario: base, Strategy: "schedule", Seed: 1, Budget: 64})

	crash := ScheduleViolation{
		Choices: []int{0, 2, 1},
		Verdict: Verdict{Crashed: true, Collisions: 1, CrashTime: int64(30 * time.Millisecond)},
	}
	inv := ScheduleViolation{
		Choices: []int{1, 0, 0},
		Seed:    7,
		Verdict: Verdict{InvariantViolations: 1},
	}
	e.ReportSchedules(&ScheduleReport{Schedules: 10, Violations: []ScheduleViolation{crash, inv}})

	if e.Remaining() != 54 {
		t.Errorf("remaining = %d, want 54 (10 schedules spent)", e.Remaining())
	}
	res := e.Result()
	if res.Executions != 10 || len(res.Counterexamples) != 2 {
		t.Fatalf("executions=%d counterexamples=%d", res.Executions, len(res.Counterexamples))
	}
	// Crash outranks invariant.
	top, second := res.Counterexamples[0], res.Counterexamples[1]
	if top.Category != CategoryCrash || second.Category != CategoryInvariant {
		t.Errorf("ranking: %q then %q", top.Category, second.Category)
	}
	if len(top.Schedule) != 3 || top.Fingerprint == "" || top.Name != "" {
		t.Errorf("schedule counterexample malformed: %+v", top)
	}
	if second.ScheduleSeed != 7 {
		t.Errorf("random-mode provenance seed lost: %+v", second)
	}

	// Re-reporting the same choice vector is deduplicated, but still costs
	// budget (the schedule did run).
	e.ReportSchedules(&ScheduleReport{Schedules: 3, Violations: []ScheduleViolation{crash}})
	res = e.Result()
	if res.Executions != 13 || len(res.Counterexamples) != 2 {
		t.Errorf("after duplicate report: executions=%d counterexamples=%d", res.Executions, len(res.Counterexamples))
	}
}

func TestScheduleFingerprintDistinguishesVectors(t *testing.T) {
	a := scheduleFingerprint("base", []int{0, 1, 2})
	b := scheduleFingerprint("base", []int{0, 1, 3})
	c := scheduleFingerprint("other", []int{0, 1, 2})
	if a == b || a == c {
		t.Errorf("fingerprint collisions: %s %s %s", a, b, c)
	}
	if a != scheduleFingerprint("base", []int{0, 1, 2}) {
		t.Error("fingerprint not deterministic")
	}
}

// The schedule strategy spends its budget on real interleavings of the base
// scenario and is deterministic like every other strategy.
func TestScheduleStrategyDeterministicSpend(t *testing.T) {
	base := plantedScenario(t)
	off := true
	cfg := Config{
		Scenario: base,
		Strategy: "schedule",
		Seed:     1,
		Budget:   4,
		Duration: 500 * time.Millisecond,
		// Fewer modules, tractable branching — the soter-explore default.
		Base: Params{NoPlannerModule: &off, NoBatteryModule: &off},
	}
	var want []byte
	for i := 0; i < 2; i++ {
		res, err := Campaign(context.Background(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.Executions == 0 || res.Executions > res.Budget {
			t.Fatalf("executions = %d of budget %d", res.Executions, res.Budget)
		}
		if res.Strategy != "schedule" {
			t.Errorf("strategy = %q", res.Strategy)
		}
		got, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		if want == nil {
			want = got
		} else if string(got) != string(want) {
			t.Errorf("schedule campaign not deterministic:\n got %s\nwant %s", got, want)
		}
	}
}
