package falsify

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"slices"
	"strings"

	"repro/internal/explore"
	"repro/internal/scenario"
	"repro/internal/sim"
)

// CorpusEntry is the on-disk form of a counterexample — one JSON file per
// fingerprint under testdata/falsified/. The corpus is the growing
// regression suite the paper's one-shot evaluation becomes: a test replays
// every entry and asserts it still falsifies (same category) or is
// explicitly retired with a reason.
type CorpusEntry struct {
	Counterexample
	// Found is a free-form provenance note ("PR 8 seeding campaign, ...").
	Found string `json:"found,omitempty"`
	// ClampStorm pins the threshold a clamp-storm entry was filed under, so
	// replays qualify it against the same bar; zero means the default.
	ClampStorm int `json:"clamp_storm,omitempty"`
	// Retired marks an entry that intentionally no longer reproduces (the
	// defect it witnessed was fixed); RetiredReason documents why.
	Retired       bool   `json:"retired,omitempty"`
	RetiredReason string `json:"retired_reason,omitempty"`
}

// CorpusFile returns the entry's file name: "<fingerprint>.json".
func (e CorpusEntry) CorpusFile() string { return e.Fingerprint + ".json" }

// WriteCorpus persists entries into dir (created if missing), one file per
// fingerprint, and returns the paths written. Existing files are
// overwritten: the fingerprint IS the identity, so rewriting is idempotent.
func WriteCorpus(dir string, entries []CorpusEntry) ([]string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("falsify: corpus dir: %w", err)
	}
	paths := make([]string, 0, len(entries))
	for _, e := range entries {
		if e.Fingerprint == "" {
			return paths, errors.New("falsify: corpus entry without fingerprint")
		}
		raw, err := json.MarshalIndent(e, "", "  ")
		if err != nil {
			return paths, err
		}
		path := filepath.Join(dir, e.CorpusFile())
		if err := os.WriteFile(path, append(raw, '\n'), 0o644); err != nil {
			return paths, fmt.Errorf("falsify: corpus write: %w", err)
		}
		paths = append(paths, path)
	}
	return paths, nil
}

// LoadCorpus reads every *.json entry under dir, sorted by file name (i.e.
// by fingerprint), so corpus iteration order is stable. A missing directory
// is an empty corpus, not an error.
func LoadCorpus(dir string) ([]CorpusEntry, error) {
	names, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil {
		return nil, err
	}
	slices.Sort(names)
	var out []CorpusEntry
	for _, name := range names {
		raw, err := os.ReadFile(name)
		if err != nil {
			return out, err
		}
		var e CorpusEntry
		if err := json.Unmarshal(raw, &e); err != nil {
			return out, fmt.Errorf("falsify: corpus %s: %w", filepath.Base(name), err)
		}
		if want := e.CorpusFile(); filepath.Base(name) != want {
			return out, fmt.Errorf("falsify: corpus %s: fingerprint says it should be named %s", filepath.Base(name), want)
		}
		out = append(out, e)
	}
	return out, nil
}

// Replay re-executes the entry unless it is retired. A retired entry with a
// reason is skipped — it is documentation of a fixed defect, not an
// assertion — and returns skipped=true with a zero Verdict. A retired entry
// WITHOUT a reason is rejected: retirement must document why the witness no
// longer reproduces, or the corpus silently rots. Live entries delegate to
// the counterexample's Replay (shadowed here so corpus consumers get the
// retirement semantics by default).
func (e CorpusEntry) Replay(ctx context.Context) (v Verdict, skipped bool, err error) {
	if e.Retired {
		if strings.TrimSpace(e.RetiredReason) == "" {
			return Verdict{}, false, fmt.Errorf("falsify: corpus entry %s is retired without a reason — document the fix it witnessed or un-retire it", e.Fingerprint)
		}
		return Verdict{}, true, nil
	}
	v, err = e.Counterexample.Replay(ctx)
	return v, false, err
}

// Rebuild resolves the counterexample back into the concrete Spec it was
// found on: registry base + Params delta, φInv monitor forced on (the
// campaign instrument is part of the counterexample's identity).
func (c Counterexample) Rebuild() (scenario.Spec, error) {
	base, ok := scenario.Get(c.Scenario)
	if !ok {
		return scenario.Spec{}, fmt.Errorf("falsify: counterexample %s: unknown base scenario %q", c.Fingerprint, c.Scenario)
	}
	spec, err := c.Candidate.Params.Apply(base)
	if err != nil {
		return scenario.Spec{}, err
	}
	spec.InvariantMonitor = true
	if err := spec.Validate(); err != nil {
		return scenario.Spec{}, err
	}
	return spec, nil
}

// Replay re-executes the counterexample and returns the fresh verdict. It
// first recomputes the canonical fingerprint and refuses to replay on a
// mismatch — drift in spec semantics (a changed default, a reshaped
// workspace) must surface as "regenerate or retire this entry", never as a
// silently different run. Parameter-space counterexamples replay through the
// closed-loop simulator; schedule counterexamples replay their exact
// interleaving through the explore backend.
func (c Counterexample) Replay(ctx context.Context) (Verdict, error) {
	spec, err := c.Rebuild()
	if err != nil {
		return Verdict{}, err
	}
	specFP, err := spec.Fingerprint(c.Candidate.Seed)
	if err != nil {
		return Verdict{}, err
	}
	want := specFP
	if len(c.Schedule) > 0 {
		want = scheduleFingerprint(specFP, c.Schedule)
	}
	if want != c.Fingerprint {
		return Verdict{}, fmt.Errorf("falsify: counterexample %s: canonical fingerprint drifted to %s — the spec semantics changed; regenerate the entry or retire it",
			c.Fingerprint, want)
	}
	if len(c.Schedule) > 0 {
		return c.replaySchedule(spec)
	}
	rc, err := spec.Build(c.Candidate.Seed)
	if err != nil {
		return Verdict{}, err
	}
	oracle := NewOracle(rc.Stack.Config.Workspace)
	rc.Context = ctx
	rc.Label = c.Name
	rc.Observers = append(rc.Observers, oracle)
	if _, err := sim.Run(rc); err != nil {
		return Verdict{}, err
	}
	return oracle.Verdict(), nil
}

// replaySchedule re-executes the recorded interleaving.
func (c Counterexample) replaySchedule(spec scenario.Spec) (Verdict, error) {
	v, err := explore.ReplaySchedule(explore.Config{
		Build:   ScheduleInstanceBuilder(spec, c.Candidate.Seed),
		Horizon: spec.Duration,
	}, c.Schedule)
	if err != nil {
		return Verdict{}, err
	}
	if v == nil {
		return Verdict{}, nil
	}
	rep := convertExploreReport(&explore.Report{Violations: []explore.Violation{*v}})
	return rep.Violations[0].Verdict, nil
}

// StillFalsifies reports whether a replayed verdict still qualifies under
// the entry's own category and threshold — the corpus regression check.
func (e CorpusEntry) StillFalsifies(v Verdict) bool {
	threshold := e.ClampStorm
	if threshold == 0 {
		threshold = DefaultClampStorm
	}
	got := v.Category(threshold)
	if e.Category == CategoryClampStorm {
		// A clamp-storm entry that now crashes outright got worse, not
		// better; any non-empty category keeps it falsifying.
		return got != ""
	}
	return got == e.Category
}

// Entries converts a campaign result into corpus entries carrying the
// campaign's provenance note and clamp-storm threshold.
func (r *Result) Entries(note string, clampStorm int) []CorpusEntry {
	out := make([]CorpusEntry, 0, len(r.Counterexamples))
	for _, ce := range r.Counterexamples {
		out = append(out, CorpusEntry{Counterexample: ce, Found: note, ClampStorm: clampStorm})
	}
	return out
}

// String renders a one-line human summary of a counterexample.
func (c Counterexample) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s severity=%.1f scenario=%s seed=%d fp=%s", c.Category, c.Severity, c.Scenario, c.Candidate.Seed, c.Fingerprint)
	if c.Policy != "" {
		fmt.Fprintf(&b, " policy=%s", c.Policy)
	}
	if len(c.Schedule) > 0 {
		fmt.Fprintf(&b, " schedule=%v", c.Schedule)
	}
	return b.String()
}
