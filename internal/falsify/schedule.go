package falsify

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/explore"
	"repro/internal/geom"
	"repro/internal/mission"
	"repro/internal/plant"
	"repro/internal/pubsub"
	"repro/internal/runtime"
	"repro/internal/scenario"
)

// The schedule strategy wraps internal/explore — the seed codebase's
// bounded-asynchrony systematic-testing engine — as one falsification
// strategy: instead of mutating scenario parameters it enumerates (or, with
// a parameter, randomly samples) node-firing interleavings of the *base*
// configuration, hunting for schedules under which φInv fails or the drone
// crashes. Each explored schedule costs one budget unit; counterexamples
// carry the choice vector that replays the exact interleaving.

// ScheduleReport is the engine-facing account of an explore run: schedule
// count plus violations already classified into verdicts.
type ScheduleReport struct {
	// Schedules is the number of interleavings executed.
	Schedules int
	// Exhausted reports that the bounded schedule tree was fully visited
	// before the budget ran out.
	Exhausted bool
	// Violations lists the falsifying interleavings.
	Violations []ScheduleViolation
}

// ScheduleViolation is one falsifying interleaving.
type ScheduleViolation struct {
	// Choices is the full choice vector; replaying it reproduces the
	// schedule exactly (explore.ReplaySchedule).
	Choices []int
	// Seed is the random-interleaving seed it was sampled from (provenance;
	// zero in exhaustive mode).
	Seed int64
	// Verdict classifies the violation (crash vs invariant).
	Verdict Verdict
}

// scheduleStrategy is registered as "schedule" (exhaustive bounded-asynchrony
// DFS) / "schedule:N" (N random interleaving seeds).
type scheduleStrategy struct{ seeds int }

func (s scheduleStrategy) Name() string {
	if s.seeds > 0 {
		return fmt.Sprintf("schedule:%d", s.seeds)
	}
	return "schedule"
}

func (s scheduleStrategy) Search(ctx context.Context, e *Engine) error {
	spec := e.Base()
	ecfg := explore.Config{
		Build:        ScheduleInstanceBuilder(spec, e.CampaignSeed()),
		Horizon:      spec.Duration,
		MaxSchedules: e.Remaining(),
	}
	for i := 0; i < s.seeds; i++ {
		ecfg.Seeds = append(ecfg.Seeds, e.CampaignSeed()+int64(i))
	}
	rep, err := explore.Run(ctx, ecfg)
	if rep != nil {
		e.ReportSchedules(convertExploreReport(rep))
	}
	// Exhaustive mode may visit the whole bounded tree below budget; that
	// ends the search (there is nothing left to explore), not an error.
	return err
}

// convertExploreReport classifies explore violations into verdicts: an
// executor φInv abort files as an invariant violation, anything else is the
// crash property tripping.
func convertExploreReport(rep *explore.Report) *ScheduleReport {
	out := &ScheduleReport{Schedules: rep.Schedules, Exhausted: rep.Exhausted}
	for _, v := range rep.Violations {
		var verdict Verdict
		var iv *runtime.InvariantViolationError
		if errors.As(v.Err, &iv) {
			verdict.InvariantViolations = 1
		} else {
			verdict.Crashed = true
			verdict.Collisions = 1
			verdict.CrashTime = int64(v.Time)
		}
		out.Violations = append(out.Violations, ScheduleViolation{
			Choices: v.Choices,
			Seed:    v.Seed,
			Verdict: verdict,
		})
	}
	return out
}

// ScheduleInstanceBuilder compiles a scenario Spec into the explore backend's
// per-schedule instance factory: a fresh mission stack, a plant-in-the-loop
// environment and the no-crash property. This is what lets the systematic
// tester run *any* registered scenario, where the seed engine drove one
// hand-built system. Exposed for replay (corpus entries with a Schedule) and
// for cmd/soter-explore.
func ScheduleInstanceBuilder(spec scenario.Spec, seed int64) explore.Builder {
	return func() (*explore.Instance, error) {
		cfg, err := spec.StackConfig(seed)
		if err != nil {
			return nil, err
		}
		st, err := mission.Build(cfg)
		if err != nil {
			return nil, err
		}
		drone, err := plant.NewDrone(cfg.PlantParams, seed)
		if err != nil {
			return nil, err
		}
		ws := st.Config.Workspace
		battery := spec.InitialBattery
		if battery == 0 {
			battery = 1
		}
		state := plant.State{Pos: spec.StartPos(), Battery: battery}
		env := runtime.EnvironmentFunc(func(prev, now time.Duration, topics *pubsub.Store) error {
			for t := prev; t < now; {
				dt := 5 * time.Millisecond
				if t+dt > now {
					dt = now - t
				}
				cmd := geom.Vec3{}
				if raw, err := topics.Get(mission.TopicCmd); err == nil && raw != nil {
					if v, ok := raw.(geom.Vec3); ok {
						cmd = v
					}
				}
				state = drone.Step(state, cmd, dt)
				t += dt
			}
			return topics.Set(mission.TopicDroneState, state)
		})
		property := func(exec *runtime.Executor) error {
			if plant.Crashed(state, ws) {
				return fmt.Errorf("crash at t=%v pos=%v", exec.Now(), state.Pos)
			}
			return nil
		}
		return &explore.Instance{
			System:    st.System,
			Env:       env,
			EnvTopics: []pubsub.Topic{{Name: mission.TopicDroneState, Default: state}},
			Property:  property,
		}, nil
	}
}
