package falsify

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestCorpusRoundTrip(t *testing.T) {
	dir := t.TempDir()
	entries := []CorpusEntry{
		{
			Counterexample: Counterexample{
				Scenario:    "surveillance-city",
				Candidate:   Candidate{Seed: 42},
				Fingerprint: "aaaa000011112222",
				Category:    CategoryCrash,
				Severity:    1010,
			},
			Found: "round-trip test",
		},
		{
			Counterexample: Counterexample{
				Scenario:    "surveillance-city",
				Candidate:   Candidate{Seed: 7},
				Fingerprint: "bbbb000011112222",
				Category:    CategoryClampStorm,
			},
			ClampStorm:    20,
			Retired:       true,
			RetiredReason: "defect fixed in the hysteresis policy",
		},
	}
	paths, err := WriteCorpus(dir, entries)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 2 {
		t.Fatalf("wrote %d paths", len(paths))
	}
	// Writing again is idempotent (fingerprint is the identity).
	if _, err := WriteCorpus(dir, entries); err != nil {
		t.Fatal(err)
	}
	got, err := LoadCorpus(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("loaded %d entries", len(got))
	}
	// LoadCorpus sorts by file name = fingerprint.
	if got[0].Fingerprint != "aaaa000011112222" || got[1].Fingerprint != "bbbb000011112222" {
		t.Errorf("order: %s, %s", got[0].Fingerprint, got[1].Fingerprint)
	}
	if got[1].RetiredReason != entries[1].RetiredReason || got[0].Found != entries[0].Found {
		t.Errorf("metadata lost: %+v", got)
	}
}

func TestCorpusRejectsMisnamedFile(t *testing.T) {
	dir := t.TempDir()
	if _, err := WriteCorpus(dir, []CorpusEntry{{
		Counterexample: Counterexample{Fingerprint: "cccc000011112222"},
	}}); err != nil {
		t.Fatal(err)
	}
	old := filepath.Join(dir, "cccc000011112222.json")
	if err := os.Rename(old, filepath.Join(dir, "renamed.json")); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCorpus(dir); err == nil {
		t.Error("misnamed corpus file accepted")
	}
}

func TestWriteCorpusRejectsMissingFingerprint(t *testing.T) {
	if _, err := WriteCorpus(t.TempDir(), []CorpusEntry{{}}); err == nil {
		t.Error("fingerprint-less entry accepted")
	}
}

func TestLoadCorpusMissingDirIsEmpty(t *testing.T) {
	entries, err := LoadCorpus(filepath.Join(t.TempDir(), "nope"))
	if err != nil || len(entries) != 0 {
		t.Errorf("missing dir: %v, %v", entries, err)
	}
}

// A real counterexample found by a campaign survives the full corpus cycle:
// write, load, replay, still-falsifies.
func TestCorpusReplayCycle(t *testing.T) {
	base := plantedScenario(t)
	res, err := Campaign(context.Background(), Config{Scenario: base, Seed: 1, Budget: 12})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Counterexamples) == 0 {
		t.Fatal("campaign found nothing to file")
	}
	dir := t.TempDir()
	if _, err := WriteCorpus(dir, res.Entries("replay-cycle test", 0)[:1]); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadCorpus(dir)
	if err != nil {
		t.Fatal(err)
	}
	e := loaded[0]
	v, skipped, err := e.Replay(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if skipped {
		t.Fatal("live entry skipped as retired")
	}
	if !e.StillFalsifies(v) {
		t.Errorf("loaded counterexample no longer falsifies: filed %q, replayed %+v", e.Category, v)
	}
}

// Fingerprint drift must refuse to replay — a changed spec semantic cannot
// silently replay as a different run.
func TestReplayRefusesFingerprintDrift(t *testing.T) {
	base := plantedScenario(t)
	res, err := Campaign(context.Background(), Config{Scenario: base, Seed: 1, Budget: 12})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Counterexamples) == 0 {
		t.Fatal("campaign found nothing")
	}
	ce := res.Counterexamples[0]
	ce.Fingerprint = "0000000000000000"
	if _, err := ce.Replay(context.Background()); err == nil || !strings.Contains(err.Error(), "drifted") {
		t.Errorf("drifted fingerprint replayed: %v", err)
	}
	// An unknown base scenario is also a hard error, not a clean verdict.
	ce = res.Counterexamples[0]
	ce.Scenario = "no-such-base"
	if _, err := ce.Replay(context.Background()); err == nil {
		t.Error("unknown base scenario replayed")
	}
}

func TestStillFalsifiesClampStormSemantics(t *testing.T) {
	storm := CorpusEntry{
		Counterexample: Counterexample{Category: CategoryClampStorm},
		ClampStorm:     10,
	}
	if !storm.StillFalsifies(Verdict{Clamped: 10}) {
		t.Error("at-threshold storm rejected")
	}
	if storm.StillFalsifies(Verdict{Clamped: 9}) {
		t.Error("below-threshold storm accepted")
	}
	// A storm entry that now crashes outright got worse, not better.
	if !storm.StillFalsifies(Verdict{Crashed: true}) {
		t.Error("crash demoted a clamp-storm entry")
	}
	crash := CorpusEntry{Counterexample: Counterexample{Category: CategoryCrash}}
	if crash.StillFalsifies(Verdict{InvariantViolations: 1}) {
		t.Error("crash entry satisfied by a mere invariant violation")
	}
	if !crash.StillFalsifies(Verdict{Crashed: true}) {
		t.Error("crash entry rejected a crash")
	}
}

// TestCommittedCorpusReplays is the regression suite proper: every non-retired
// entry committed under testdata/falsified must still falsify, byte-exact
// category, or be explicitly retired with a reason.
func TestCommittedCorpusReplays(t *testing.T) {
	entries, err := LoadCorpus(filepath.Join("testdata", "falsified"))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("committed corpus is empty — the falsification regression suite lost its entries")
	}
	for _, e := range entries {
		t.Run(e.Fingerprint, func(t *testing.T) {
			v, skipped, err := e.Replay(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			if skipped {
				return // retired with a reason: documentation, not an assertion
			}
			if !e.StillFalsifies(v) {
				t.Errorf("entry no longer falsifies: filed %q, replay verdict %+v — fix confirmed? retire the entry with a reason", e.Category, v)
			}
		})
	}
}

// TestReplayRetirementPath pins the corpus retirement semantics: a retired
// entry with a reason is skipped without being executed (no error even when
// the underlying counterexample could never replay), and a retired entry
// without a reason is rejected.
func TestReplayRetirementPath(t *testing.T) {
	// The fingerprint deliberately resolves to nothing replayable: if the
	// skip path ever tried to execute the entry, it would error loudly.
	retired := CorpusEntry{
		Counterexample: Counterexample{
			Scenario:    "no-such-base",
			Fingerprint: "feedfacefeedface",
			Category:    CategoryCrash,
		},
		Retired:       true,
		RetiredReason: "defect fixed by the clamp ordering change",
	}
	v, skipped, err := retired.Replay(context.Background())
	if err != nil {
		t.Fatalf("retired entry with a reason errored: %v", err)
	}
	if !skipped {
		t.Fatal("retired entry with a reason was not skipped")
	}
	if v != (Verdict{}) {
		t.Fatalf("skipped entry carries a verdict: %+v", v)
	}

	for _, reason := range []string{"", "   "} {
		noReason := retired
		noReason.RetiredReason = reason
		if _, _, err := noReason.Replay(context.Background()); err == nil ||
			!strings.Contains(err.Error(), "without a reason") {
			t.Errorf("retired entry with reason %q replayed to %v, want rejection", reason, err)
		}
	}
}
