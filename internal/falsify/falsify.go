// Package falsify is the adversarial counterexample search engine of the
// reproduction — the paper's Section V evaluation turned from a one-shot
// experiment into a subsystem. A campaign searches the
// scenario.Spec × rta.Policy × seed space around a named base scenario for
// executions that break the RTA story: crashes, φInv violations, and
// clamp-storms (configurations that survive on the framework clamp alone).
//
// The search space is the Params delta over scenario.Override knobs —
// fault/planner-bug/jitter profiles, Δ/hysteresis, workspace family,
// switching policy — filtered for validity through Spec.Validate. Strategies
// live behind a named registry mirroring rta.Policy's: "random" (seeded
// uniform sampling), "guided" (hill-climb on the Oracle's severity
// objective), "schedule" (the internal/explore bounded-asynchrony
// interleaving enumeration wrapped as one strategy, so the seed engine
// survives as a backend rather than an island).
//
// Campaigns are deterministic: given (strategy, seed, budget) the ranked
// counterexample list is byte-identical at any worker count, because
// candidates are generated single-threaded from one seeded RNG, evaluated
// through fleet.Map (index-ordered results), and accounted in index order.
// Every Counterexample carries the exact canonical spec delta, seed, policy
// and fingerprint needed to replay it; found ones auto-register as
// "falsified/<hash>" regression scenarios and can be persisted to a JSON
// corpus (testdata/falsified/) that tests replay.
package falsify

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"math/rand"
	"slices"
	"strings"
	"time"

	"repro/internal/fleet"
	"repro/internal/obs"
	"repro/internal/rta"
	"repro/internal/scenario"
	"repro/internal/sim"
)

// Default campaign knobs.
const (
	// DefaultBudget is the default execution budget of a campaign.
	DefaultBudget = 64
	// DefaultClampStorm is the clamp count at which a run qualifies as a
	// clamp-storm counterexample. Negative Config.ClampStorm disables the
	// category.
	DefaultClampStorm = 12
	// DefaultMaxCounterexamples bounds the ranked result list.
	DefaultMaxCounterexamples = 32
)

// Config configures a falsification campaign.
type Config struct {
	// Scenario names the base scenario (scenario registry) the search
	// explores around. Required.
	Scenario string
	// Strategy is a strategy spec ("random", "guided:8", "schedule:16");
	// empty selects the default random strategy.
	Strategy string
	// Seed seeds the campaign RNG — candidate mutations and run seeds all
	// derive from it. Zero defaults to 1.
	Seed int64
	// Budget bounds the number of candidate executions; zero defaults to
	// DefaultBudget.
	Budget int
	// Workers bounds concurrent candidate evaluations; zero defaults to
	// GOMAXPROCS. Worker count never changes campaign results.
	Workers int
	// Duration overrides the per-candidate mission horizon; zero keeps each
	// candidate spec's own duration.
	Duration time.Duration
	// Base is a Params delta applied to the base scenario before searching —
	// the campaign-wide pin ("always under this fault profile").
	Base Params
	// Policies is the pool the policy mutation draws from; nil defaults to
	// every registered policy name.
	Policies []string
	// ClampStorm is the clamp-count threshold for the clamp-storm category;
	// zero defaults to DefaultClampStorm, negative disables the category.
	ClampStorm int
	// MaxCounterexamples bounds the ranked list; zero defaults to
	// DefaultMaxCounterexamples.
	MaxCounterexamples int
	// AutoRegister registers found counterexamples as "falsified/<hash>"
	// regression scenarios in the scenario registry.
	AutoRegister bool
	// Observers receive the campaign's progress stream (CampaignProgress
	// after every evaluation batch, CounterexampleFound on every distinct
	// find) on the campaign goroutine.
	Observers []obs.Observer
}

// Candidate is one point of the search space: a fully-merged Params delta
// (campaign base ⊕ mutations) plus the run seed.
type Candidate struct {
	Params Params `json:"params,omitzero"`
	Seed   int64  `json:"seed"`
}

// Outcome is the evaluated verdict of one candidate.
type Outcome struct {
	Candidate   Candidate
	Verdict     Verdict
	Severity    float64
	Fingerprint string
	// Category is non-empty when the candidate qualified as a counterexample.
	Category string
	// Err marks a candidate that could not be evaluated (invalid spec after
	// mutation, build failure). Such candidates consume budget but never
	// qualify.
	Err error
}

// Counterexample is one distinct falsifying execution, self-contained for
// replay: base scenario name + Params delta + seed rebuild the exact Spec,
// and Fingerprint pins its canonical identity (drift in the spec semantics
// is detected, not silently replayed). Schedule counterexamples additionally
// carry the explore choice vector.
type Counterexample struct {
	// Scenario is the base scenario searched around.
	Scenario string `json:"scenario"`
	// Candidate rebuilds the concrete spec: Apply(base) + seed.
	Candidate Candidate `json:"candidate"`
	// Policy is the canonical switching-policy spec of the rebuilt spec.
	Policy string `json:"policy"`
	// Strategy is the canonical strategy spec that found it.
	Strategy string `json:"strategy"`
	// Fingerprint is the canonical replay fingerprint: the spec fingerprint
	// for parameter-space finds, a (spec, choices) hash for schedule finds.
	Fingerprint string `json:"fingerprint"`
	// Name is the auto-registered regression scenario name
	// ("falsified/<hash>"); empty for schedule counterexamples, which replay
	// through the explore backend rather than the scenario registry.
	Name string `json:"name,omitempty"`
	// Category classifies the violation: crash | invariant | clamp-storm.
	Category string `json:"category"`
	// Severity is the oracle's score for the run.
	Severity float64 `json:"severity"`
	// Verdict is the full oracle verdict the counterexample was filed with.
	Verdict Verdict `json:"verdict"`
	// Schedule is the explore choice vector (schedule strategy only); it
	// replays the exact interleaving. ScheduleSeed records the random
	// interleaving seed it was sampled from (provenance only).
	Schedule     []int `json:"schedule,omitempty"`
	ScheduleSeed int64 `json:"schedule_seed,omitempty"`
}

// Result is a campaign's deterministic summary: given (strategy, seed,
// budget) two runs produce byte-identical JSON at any worker count.
type Result struct {
	Scenario string `json:"scenario"`
	// Strategy is the canonical strategy spec that ran.
	Strategy string `json:"strategy"`
	Seed     int64  `json:"seed"`
	Budget   int    `json:"budget"`
	// Executions counts candidate runs actually performed.
	Executions int `json:"executions"`
	// Errored counts candidates that could not be evaluated.
	Errored int `json:"errored,omitempty"`
	// BestSeverity is the highest severity observed across all executions.
	BestSeverity float64 `json:"best_severity"`
	// Counterexamples is the ranked list: severity descending, fingerprint
	// ascending on ties, bounded by Config.MaxCounterexamples.
	Counterexamples []Counterexample `json:"counterexamples"`
}

// Campaign runs one falsification campaign to completion (or cancellation:
// the partial Result accumulated so far is returned with the context's
// error).
func Campaign(ctx context.Context, cfg Config) (*Result, error) {
	e, err := NewEngine(cfg)
	if err != nil {
		return nil, err
	}
	searchErr := e.strategy.Search(ctx, e)
	res := e.Result()
	if searchErr != nil {
		return res, searchErr
	}
	return res, nil
}

// Validate checks the campaign configuration without running anything — the
// submit-time gate of the serving layer.
func (c Config) Validate() error {
	_, err := NewEngine(c)
	return err
}

// Engine is the shared campaign state strategies drive: it owns the resolved
// base spec, the campaign RNG, the budget, the deduplicated counterexample
// list and the progress stream. Strategies call RandomCandidate/Mutate to
// move through the space and Evaluate to spend budget; the engine accounts
// results single-threaded in candidate order, which is what makes campaigns
// worker-count-independent.
type Engine struct {
	cfg        Config
	base       scenario.Spec
	baseParams Params
	baseFP     string
	strategy   Strategy
	rng        *rand.Rand
	margin     float64
	observers  obs.Multi

	executions int
	errored    int
	best       float64
	seen       map[string]bool
	found      []Counterexample
}

// NewEngine resolves and validates a campaign configuration. Strategies
// normally receive an engine from Campaign rather than building one.
func NewEngine(cfg Config) (*Engine, error) {
	if cfg.Scenario == "" {
		return nil, errors.New("falsify: no base scenario")
	}
	base, ok := scenario.Get(cfg.Scenario)
	if !ok {
		return nil, fmt.Errorf("falsify: unknown scenario %q (have: %s)", cfg.Scenario, strings.Join(scenario.Names(), ", "))
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.Budget == 0 {
		cfg.Budget = DefaultBudget
	}
	if cfg.Budget < 0 {
		return nil, fmt.Errorf("falsify: budget %d must be positive", cfg.Budget)
	}
	if cfg.ClampStorm == 0 {
		cfg.ClampStorm = DefaultClampStorm
	}
	if cfg.MaxCounterexamples == 0 {
		cfg.MaxCounterexamples = DefaultMaxCounterexamples
	}
	baseParams := cfg.Base
	if cfg.Duration > 0 {
		baseParams.Duration = cfg.Duration
	}
	base, err := baseParams.Apply(base)
	if err != nil {
		return nil, err
	}
	// The φInv monitor is the campaign's instrument: without it the
	// invariant category is structurally empty, so every candidate runs
	// checked. It is part of the candidate specs' canonical identity, which
	// keeps falsified/<hash> replays monitored too.
	base.InvariantMonitor = true
	if err := base.Validate(); err != nil {
		return nil, fmt.Errorf("falsify: base %w", err)
	}
	baseFP, err := base.Fingerprint(cfg.Seed)
	if err != nil {
		return nil, err
	}
	if len(cfg.Policies) == 0 {
		cfg.Policies = rta.PolicyNames()
	}
	for _, pol := range cfg.Policies {
		if _, err := rta.CanonicalPolicySpec(pol); err != nil {
			return nil, fmt.Errorf("falsify: policy pool: %w", err)
		}
	}
	strat, err := ParseStrategy(cfg.Strategy)
	if err != nil {
		return nil, err
	}
	// The stack's safety margin scales the near-miss severity term; the
	// compiled config is authoritative (PlanMargin etc. resolved).
	stack, err := base.StackConfig(cfg.Seed)
	if err != nil {
		return nil, err
	}
	return &Engine{
		cfg:        cfg,
		base:       base,
		baseParams: baseParams,
		baseFP:     baseFP,
		strategy:   strat,
		rng:        rand.New(rand.NewSource(cfg.Seed)),
		margin:     stack.Margin,
		observers:  obs.Multi(cfg.Observers),
		seen:       make(map[string]bool),
	}, nil
}

// Base returns the resolved base spec (campaign Base params and duration
// override applied, φInv monitor forced on). The copy is the caller's.
func (e *Engine) Base() scenario.Spec { return e.base.With(scenario.Override{}) }

// BaseParams returns the fully-resolved campaign-wide Params pin.
func (e *Engine) BaseParams() Params { return e.baseParams }

// CampaignSeed returns the campaign's seed.
func (e *Engine) CampaignSeed() int64 { return e.cfg.Seed }

// Budget returns the total execution budget.
func (e *Engine) Budget() int { return e.cfg.Budget }

// Remaining returns the unspent execution budget.
func (e *Engine) Remaining() int { return e.cfg.Budget - e.executions }

// Policies returns the policy mutation pool.
func (e *Engine) Policies() []string { return slices.Clone(e.cfg.Policies) }

// RNG exposes the campaign RNG. Strategies must draw from it only between
// Evaluate calls (single-threaded), never inside evaluation callbacks.
func (e *Engine) RNG() *rand.Rand { return e.rng }

// NewSeed draws a fresh run seed from the campaign RNG.
func (e *Engine) NewSeed() int64 { return 1 + e.rng.Int63n(1_000_000_000) }

// candidateValid reports whether the candidate's spec passes the scenario
// layer's own consistency rules — the validity filter of the search space.
func (e *Engine) candidateValid(p Params) bool {
	spec, err := p.Apply(e.base)
	if err != nil {
		return false
	}
	return spec.Validate() == nil
}

// mutate applies the idx-th applicable operator to a copy of p.
func (e *Engine) applyMutator(p Params, m mutator) Params {
	out := p
	m.apply(&out, e.cfg.Policies, e.rng)
	return out
}

// Mutate returns p with one random mutation operator applied, retrying
// operators whose result the scenario layer rejects; after a bounded number
// of invalid draws it returns p unchanged (the RNG advances either way).
func (e *Engine) Mutate(p Params) Params {
	for try := 0; try < 8; try++ {
		m := mutators[e.rng.Intn(len(mutators))]
		if m.ok != nil && !m.ok(e.base) {
			continue
		}
		if out := e.applyMutator(p, m); e.candidateValid(out) {
			return out
		}
	}
	return p
}

// RandomCandidate draws a uniform point of the search space: the campaign
// base with 1–3 mutation operators applied and a fresh seed, filtered for
// validity.
func (e *Engine) RandomCandidate() Candidate {
	for try := 0; try < 8; try++ {
		p := e.baseParams
		for n := 1 + e.rng.Intn(3); n > 0; n-- {
			m := mutators[e.rng.Intn(len(mutators))]
			if m.ok != nil && !m.ok(e.base) {
				continue
			}
			p = e.applyMutator(p, m)
		}
		if e.candidateValid(p) {
			return Candidate{Params: p, Seed: e.NewSeed()}
		}
	}
	return Candidate{Params: e.baseParams, Seed: e.NewSeed()}
}

// Evaluate runs a batch of candidates on the worker pool and accounts the
// outcomes: budget, severity high-water mark, counterexample dedup and
// registration, progress events. The batch is truncated to the remaining
// budget; the returned slice is index-aligned with the (truncated) batch.
// Cancellation returns ctx's error with nothing accounted.
func (e *Engine) Evaluate(ctx context.Context, batch []Candidate) ([]Outcome, error) {
	if rem := e.Remaining(); len(batch) > rem {
		batch = batch[:rem]
	}
	if len(batch) == 0 {
		return nil, nil
	}
	outs, _ := fleet.Map(ctx, e.cfg.Workers, len(batch), func(ctx context.Context, i int) (Outcome, error) {
		return e.evaluateOne(ctx, batch[i]), nil
	})
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	for i := range outs {
		e.account(&outs[i])
	}
	e.emitProgress()
	return outs, nil
}

// evaluateOne builds and simulates one candidate. It runs inside a fleet
// worker: everything it touches on the engine is immutable campaign state.
func (e *Engine) evaluateOne(ctx context.Context, cand Candidate) Outcome {
	out := Outcome{Candidate: cand}
	spec, err := cand.Params.Apply(e.base)
	if err == nil {
		err = spec.Validate()
	}
	if err != nil {
		out.Err = err
		return out
	}
	out.Fingerprint, err = spec.Fingerprint(cand.Seed)
	if err != nil {
		out.Err = err
		return out
	}
	rc, err := spec.Build(cand.Seed)
	if err != nil {
		out.Err = err
		return out
	}
	oracle := NewOracle(rc.Stack.Config.Workspace)
	rc.Context = ctx
	rc.Label = e.cfg.Scenario
	rc.Observers = append(rc.Observers, oracle)
	if _, err := sim.Run(rc); err != nil {
		if ctx.Err() != nil && errors.Is(err, ctx.Err()) {
			out.Err = err
			return out
		}
		v := oracle.Verdict()
		v.Err = err.Error()
		out.Verdict = v
		return out
	}
	out.Verdict = oracle.Verdict()
	out.Severity = Severity(out.Verdict, e.margin)
	out.Category = out.Verdict.Category(e.cfg.ClampStorm)
	return out
}

// account folds one outcome into the campaign state, in candidate order.
func (e *Engine) account(out *Outcome) {
	e.executions++
	if out.Err != nil || out.Verdict.Err != "" {
		e.errored++
		return
	}
	if out.Severity > e.best {
		e.best = out.Severity
	}
	if out.Category == "" || e.seen[out.Fingerprint] {
		return
	}
	e.seen[out.Fingerprint] = true
	ce := Counterexample{
		Scenario:    e.cfg.Scenario,
		Candidate:   out.Candidate,
		Strategy:    e.strategy.Name(),
		Fingerprint: out.Fingerprint,
		Name:        "falsified/" + out.Fingerprint[:12],
		Category:    out.Category,
		Severity:    out.Severity,
		Verdict:     out.Verdict,
	}
	if pol, err := rta.CanonicalPolicySpec(out.Candidate.Params.Policy); err == nil {
		ce.Policy = pol
	}
	if e.cfg.AutoRegister {
		e.registerScenario(ce)
	}
	e.found = append(e.found, ce)
	e.emit(obs.CounterexampleFound{
		T:           time.Duration(e.executions),
		Strategy:    ce.Strategy,
		Scenario:    ce.Name,
		Fingerprint: ce.Fingerprint,
		Seed:        ce.Candidate.Seed,
		Category:    ce.Category,
		Severity:    ce.Severity,
	})
}

// registerScenario files the counterexample as a named regression scenario.
// Re-finding a known counterexample (same fingerprint, e.g. across two
// campaigns in one process) is idempotent: the duplicate registration is
// deliberately ignored.
func (e *Engine) registerScenario(ce Counterexample) {
	spec, err := ce.Candidate.Params.Apply(e.base)
	if err != nil {
		return
	}
	spec.Name = ce.Name
	spec.Description = fmt.Sprintf("auto-registered %s counterexample (severity %.1f) found by %s searching %s, seed %d",
		ce.Category, ce.Severity, ce.Strategy, e.cfg.Scenario, ce.Candidate.Seed)
	_ = scenario.Register(spec)
}

// ReportSchedules folds an explore report into the campaign — the accounting
// entry point of the schedule strategy. Each explored schedule costs one
// budget unit; violations become schedule counterexamples keyed by the
// (spec, choice-vector) hash.
func (e *Engine) ReportSchedules(rep *ScheduleReport) {
	e.executions += rep.Schedules
	for _, v := range rep.Violations {
		fp := scheduleFingerprint(e.baseFP, v.Choices)
		if e.seen[fp] {
			continue
		}
		e.seen[fp] = true
		verdict := v.Verdict
		sev := Severity(verdict, e.margin)
		if sev > e.best {
			e.best = sev
		}
		ce := Counterexample{
			Scenario:     e.cfg.Scenario,
			Candidate:    Candidate{Params: e.baseParams, Seed: e.cfg.Seed},
			Strategy:     e.strategy.Name(),
			Fingerprint:  fp,
			Category:     verdict.Category(e.cfg.ClampStorm),
			Severity:     sev,
			Verdict:      verdict,
			Schedule:     slices.Clone(v.Choices),
			ScheduleSeed: v.Seed,
		}
		if pol, err := rta.CanonicalPolicySpec(e.baseParams.Policy); err == nil {
			ce.Policy = pol
		}
		e.found = append(e.found, ce)
		e.emit(obs.CounterexampleFound{
			T:           time.Duration(e.executions),
			Strategy:    ce.Strategy,
			Fingerprint: ce.Fingerprint,
			Seed:        ce.Candidate.Seed,
			Category:    ce.Category,
			Severity:    ce.Severity,
		})
	}
	e.emitProgress()
}

// Result assembles the deterministic campaign summary: counterexamples
// ranked by severity descending, fingerprint ascending on ties, bounded by
// MaxCounterexamples.
func (e *Engine) Result() *Result {
	ranked := slices.Clone(e.found)
	slices.SortStableFunc(ranked, func(a, b Counterexample) int {
		switch {
		case a.Severity > b.Severity:
			return -1
		case a.Severity < b.Severity:
			return 1
		default:
			return strings.Compare(a.Fingerprint, b.Fingerprint)
		}
	})
	if len(ranked) > e.cfg.MaxCounterexamples {
		ranked = ranked[:e.cfg.MaxCounterexamples]
	}
	return &Result{
		Scenario:        e.cfg.Scenario,
		Strategy:        e.strategy.Name(),
		Seed:            e.cfg.Seed,
		Budget:          e.cfg.Budget,
		Executions:      e.executions,
		Errored:         e.errored,
		BestSeverity:    e.best,
		Counterexamples: ranked,
	}
}

// emit delivers a campaign event to the configured observers.
func (e *Engine) emit(ev obs.Event) {
	if len(e.observers) > 0 {
		e.observers.OnEvent(ev)
	}
}

// emitProgress emits the post-batch CampaignProgress event. T is the
// campaign pseudo-clock: executions-so-far as nanoseconds, monotone and
// deterministic.
func (e *Engine) emitProgress() {
	e.emit(obs.CampaignProgress{
		T:            time.Duration(e.executions),
		Scenario:     e.cfg.Scenario,
		Strategy:     e.strategy.Name(),
		Executions:   e.executions,
		Budget:       e.cfg.Budget,
		Found:        len(e.found),
		BestSeverity: e.best,
	})
}

// scheduleFingerprint hashes a schedule counterexample's identity: the base
// spec fingerprint plus the full choice vector.
func scheduleFingerprint(specFP string, choices []int) string {
	h := sha256.New()
	h.Write([]byte(specFP))
	var b [8]byte
	for _, c := range choices {
		binary.BigEndian.PutUint64(b[:], uint64(c))
		h.Write(b[:])
	}
	return hex.EncodeToString(h.Sum(nil)[:16])
}
