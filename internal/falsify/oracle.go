package falsify

import (
	"repro/internal/geom"
	"repro/internal/obs"
	"repro/internal/rta"
)

// Verdict is the oracle's summary of one candidate execution — the facts the
// severity objective and the counterexample classification are computed from.
// It is JSON-stable: corpus entries pin it so a replay can be compared
// against the verdict the counterexample was filed with.
type Verdict struct {
	// Crashed marks an obstacle or ground impact; CrashTime is its instant.
	Crashed   bool  `json:"crashed,omitempty"`
	CrashTime int64 `json:"crash_time_ns,omitempty"`
	// Collisions counts distinct collision episodes.
	Collisions int `json:"collisions,omitempty"`
	// InvariantViolations counts φInv monitor failures (the campaign forces
	// the monitor on for every candidate).
	InvariantViolations int `json:"invariant_violations,omitempty"`
	// Clamped counts framework clamps — the module overriding a policy's AC
	// proposal in a state where ttf2Δ fails. A storm of them marks a
	// configuration surviving on the clamp alone.
	Clamped int `json:"clamped,omitempty"`
	// Disengagements counts AC→SC switches.
	Disengagements int `json:"disengagements,omitempty"`
	// MinClearance is the smallest obstacle clearance observed along the
	// trajectory (0 when no sample was seen) — the near-miss distance.
	MinClearance float64 `json:"min_clearance,omitempty"`
	// Err carries a run error that kept the candidate from being scored
	// ("mission build failed", ...); such runs never qualify.
	Err string `json:"err,omitempty"`
}

// Counterexample categories.
const (
	CategoryCrash      = "crash"
	CategoryInvariant  = "invariant"
	CategoryClampStorm = "clamp-storm"
)

// Category classifies the verdict against the campaign's clamp-storm
// threshold: "crash", "invariant", "clamp-storm", or "" when the run is not
// a counterexample. Categories are ordered by gravity — a crashing run that
// also violated φInv files as a crash.
func (v Verdict) Category(clampStorm int) string {
	switch {
	case v.Err != "":
		return ""
	case v.Crashed:
		return CategoryCrash
	case v.InvariantViolations > 0:
		return CategoryInvariant
	case clampStorm > 0 && v.Clamped >= clampStorm:
		return CategoryClampStorm
	default:
		return ""
	}
}

// Severity weights. Crashes dominate invariant violations dominate clamp
// storms; the clamp count and the near-miss term are the continuous slopes
// the guided strategy hill-climbs on before any discrete violation exists.
const (
	sevCrash     = 1000.0
	sevCollision = 10.0
	sevInvariant = 100.0
	sevClamp     = 1.0
	sevNearMiss  = 50.0
)

// Severity scores a verdict for ranking and for the guided strategy's
// objective. margin is the workspace safety margin near-misses are measured
// against (the mission stack's ttf margin). Deterministic: same verdict and
// margin, same score.
func Severity(v Verdict, margin float64) float64 {
	if v.Err != "" {
		return 0
	}
	s := 0.0
	if v.Crashed {
		s += sevCrash
	}
	s += sevCollision * float64(v.Collisions)
	s += sevInvariant * float64(v.InvariantViolations)
	s += sevClamp * float64(v.Clamped)
	if margin > 0 && v.MinClearance > 0 && v.MinClearance < margin {
		s += sevNearMiss * (margin - v.MinClearance) / margin
	}
	return s
}

// Oracle watches one candidate run's event stream and condenses it into a
// Verdict: crashes, φInv violations, clamp count and the minimum obstacle
// clearance (the near-miss distance standing in for the minimum ttf2Δ
// margin, which is not directly observable on the stream). It narrows its
// interests to the four kinds it needs and implements the typed trajectory
// fast path, so attaching it costs the run loop nothing extra. One oracle
// observes one run.
type Oracle struct {
	ws        *geom.Workspace
	v         Verdict
	haveClear bool
}

// NewOracle builds an oracle measuring clearance against ws (nil disables
// near-miss tracking).
func NewOracle(ws *geom.Workspace) *Oracle { return &Oracle{ws: ws} }

// Interests implements obs.Interested.
func (o *Oracle) Interests() obs.KindSet {
	return obs.Kinds(obs.KindModeSwitch, obs.KindInvariantViolation, obs.KindCrash, obs.KindTrajectorySample)
}

// OnEvent implements obs.Observer.
func (o *Oracle) OnEvent(e obs.Event) {
	switch ev := e.(type) {
	case obs.ModeSwitch:
		if ev.To == rta.ModeSC {
			o.v.Disengagements++
			if ev.Reason == rta.ReasonClamped {
				o.v.Clamped++
			}
		}
	case obs.InvariantViolation:
		o.v.InvariantViolations++
	case obs.Crash:
		o.v.Collisions++
		if !o.v.Crashed {
			o.v.Crashed = true
			o.v.CrashTime = int64(ev.T)
		}
	case obs.TrajectorySample:
		o.OnTrajectorySample(ev)
	}
}

// OnTrajectorySample implements obs.TrajectoryObserver — the unboxed entry
// point for the highest-volume kind.
func (o *Oracle) OnTrajectorySample(ev obs.TrajectorySample) {
	if o.ws == nil || ev.Landed {
		return
	}
	if c := o.ws.Clearance(ev.Pos); !o.haveClear || c < o.v.MinClearance {
		o.v.MinClearance = c
		o.haveClear = true
	}
}

// Verdict returns the aggregated verdict.
func (o *Oracle) Verdict() Verdict { return o.v }
