package mission

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/geom"
	"repro/internal/node"
	"repro/internal/pubsub"
)

// appState is the local state of the surveillance application node.
type appState struct {
	points []geom.Vec3
	idx    int
	visits int
	rng    *rand.Rand
	random bool
	ws     *geom.Workspace
	margin float64
}

// AppConfig configures the surveillance application node, which implements
// the application-layer protocol: every surveillance point must be visited
// infinitely often (Section II-A).
type AppConfig struct {
	// Points is the fixed tour of surveillance locations. With Random set,
	// Points seeds nothing and fresh random targets are drawn instead
	// (Section V-D's randomly generated surveillance points).
	Points []geom.Vec3
	// Random draws each next target uniformly from the free space.
	Random bool
	// Workspace and Margin are used to draw and validate random targets.
	Workspace *geom.Workspace
	Margin    float64
	// Tolerance is the arrival distance at which the next target is issued.
	Tolerance float64
	// Period is the node period.
	Period time.Duration
	// Seed drives random target generation.
	Seed int64
}

// NewAppNode builds the surveillance application node. It subscribes to the
// drone state and publishes the next target location for the drone.
func NewAppNode(cfg AppConfig) (*node.Node, error) {
	if cfg.Tolerance <= 0 {
		cfg.Tolerance = 1.0
	}
	if cfg.Period <= 0 {
		cfg.Period = 200 * time.Millisecond
	}
	if !cfg.Random && len(cfg.Points) == 0 {
		return nil, fmt.Errorf("surveillance app: no points and Random not set")
	}
	if cfg.Random && cfg.Workspace == nil {
		return nil, fmt.Errorf("surveillance app: Random requires a workspace")
	}

	points := make([]geom.Vec3, len(cfg.Points))
	copy(points, cfg.Points)

	init := func() node.State {
		return &appState{
			points: points,
			rng:    rand.New(rand.NewSource(cfg.Seed)),
			random: cfg.Random,
			ws:     cfg.Workspace,
			margin: cfg.Margin,
		}
	}

	step := func(st node.State, in pubsub.Valuation) (node.State, pubsub.Valuation, error) {
		s, ok := st.(*appState)
		if !ok {
			return nil, nil, fmt.Errorf("surveillance app: bad state type %T", st)
		}
		ds, haveState := droneState(in)
		next := *s // shallow copy; points slice is shared read-only
		if s.random && len(next.points) == 0 {
			p, found := cfg.Workspace.RandomFreePoint(s.rng, cfg.Margin+2.0, 512)
			if !found {
				return nil, nil, fmt.Errorf("surveillance app: no free random target")
			}
			p.Z = clampZ(p.Z, 1.0, cfg.Workspace.Bounds().Max.Z-1.0)
			next.points = []geom.Vec3{p}
			next.idx = 0
		}
		if len(next.points) == 0 {
			return &next, nil, nil
		}
		target := next.points[next.idx%len(next.points)]
		if haveState && !ds.Landed && ds.Pos.Dist(target) <= cfg.Tolerance {
			next.visits++
			if s.random {
				p, found := cfg.Workspace.RandomFreePoint(s.rng, cfg.Margin+2.0, 512)
				if !found {
					return nil, nil, fmt.Errorf("surveillance app: no free random target")
				}
				p.Z = clampZ(p.Z, 1.0, cfg.Workspace.Bounds().Max.Z-1.0)
				next.points = []geom.Vec3{p}
				next.idx = 0
				target = p
			} else {
				next.idx = (next.idx + 1) % len(next.points)
				target = next.points[next.idx]
			}
		}
		return &next, pubsub.Valuation{TopicMissionTarget: target}, nil
	}

	return node.New(
		"surveillance",
		cfg.Period,
		[]pubsub.TopicName{TopicDroneState},
		[]pubsub.TopicName{TopicMissionTarget},
		step,
		node.WithInit(init),
	)
}

// VisitsOf returns the number of surveillance targets visited, given the
// app node's local state (for metrics collection).
func VisitsOf(st node.State) (int, bool) {
	s, ok := st.(*appState)
	if !ok {
		return 0, false
	}
	return s.visits, true
}

func clampZ(z, lo, hi float64) float64 {
	if z < lo {
		return lo
	}
	if z > hi {
		return hi
	}
	return z
}
