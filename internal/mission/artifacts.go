package mission

import (
	"math"
	"sync"
	"time"

	"repro/internal/geom"
	"repro/internal/plan"
	"repro/internal/reach"
)

// artifactKey identifies the seed-independent artifacts a stack build
// derives from its workspace and safety parameters. Two configs with equal
// keys AND exactly equal geometry (the hash is only a filter; equality is
// re-checked on every hit) produce bit-identical analyzers, grids and
// planners, so they can share one set.
type artifactKey struct {
	geoHash     uint64
	margin      float64
	hysteresis  float64
	maxAccel    float64
	maxVel      float64
	brakeDecel  float64
	planMargin  float64
	motionDelta time.Duration
}

// artifacts bundles the shareable, immutable build products: the canonical
// workspace instance (so every mission hits the same per-margin index
// cache), the derived analysis/landing workspaces and analyzers, and the
// certified A* planner (stateless across Plan calls). Seed-dependent pieces
// — the RRT* planner, controllers, app node — are always built per mission.
type artifacts struct {
	ws              *geom.Workspace
	bounds          geom.AABB
	obstacles       []geom.AABB // snapshot for exact hit validation
	analyzer        *reach.Analyzer
	landingAnalyzer *reach.Analyzer
	astar           *plan.AStar
}

// maxPooledArtifacts bounds the pool; sweeps use one geometry (or a
// handful), so a small LRU suffices and misconfigured churn stays bounded.
const maxPooledArtifacts = 8

type artifactPoolEntry struct {
	key     artifactKey
	arts    *artifacts
	lastUse uint64
}

// artifactPool is the process-wide cache consulted by Build. Sharing across
// concurrent fleet workers is safe: every pooled object is immutable or
// internally synchronized, and lookups are serialized on the mutex.
type artifactPool struct {
	mu      sync.Mutex
	clock   uint64
	entries []artifactPoolEntry
}

var sharedArtifacts artifactPool

// geometryHash fingerprints a workspace's bounds and obstacle set (FNV-1a
// over the raw float bits, deterministic across processes).
func geometryHash(ws *geom.Workspace) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(v geom.Vec3) {
		for _, f := range [3]float64{v.X, v.Y, v.Z} {
			bits := math.Float64bits(f)
			for s := 0; s < 64; s += 8 {
				h ^= (bits >> s) & 0xff
				h *= prime64
			}
		}
	}
	b := ws.Bounds()
	mix(b.Min)
	mix(b.Max)
	for _, o := range ws.ObstaclesView() {
		mix(o.Min)
		mix(o.Max)
	}
	return h
}

func artifactKeyFor(ws *geom.Workspace, b reach.Bounds, margin, hysteresis, planMargin float64, motionDelta time.Duration) artifactKey {
	return artifactKey{
		geoHash:     geometryHash(ws),
		margin:      margin,
		hysteresis:  hysteresis,
		maxAccel:    b.MaxAccel,
		maxVel:      b.MaxVel,
		brakeDecel:  b.BrakeDecel,
		planMargin:  planMargin,
		motionDelta: motionDelta,
	}
}

// get returns pooled artifacts for the key when the stored geometry is
// exactly equal to ws's (guarding against hash collisions), or nil.
func (p *artifactPool) get(key artifactKey, ws *geom.Workspace) *artifacts {
	p.mu.Lock()
	defer p.mu.Unlock()
	for i := range p.entries {
		e := &p.entries[i]
		if e.key != key {
			continue
		}
		if !sameGeometry(e.arts, ws) {
			continue
		}
		p.clock++
		e.lastUse = p.clock
		return e.arts
	}
	return nil
}

// put stores freshly built artifacts, evicting the least recently used entry
// past capacity. A racing insert of the same key is harmless — either entry
// answers identically.
func (p *artifactPool) put(key artifactKey, arts *artifacts) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.clock++
	for i := range p.entries {
		if p.entries[i].key == key && sameGeometry(p.entries[i].arts, arts.ws) {
			p.entries[i].lastUse = p.clock
			return
		}
	}
	if len(p.entries) < maxPooledArtifacts {
		p.entries = append(p.entries, artifactPoolEntry{key: key, arts: arts, lastUse: p.clock})
		return
	}
	oldest := 0
	for i := 1; i < len(p.entries); i++ {
		if p.entries[i].lastUse < p.entries[oldest].lastUse {
			oldest = i
		}
	}
	p.entries[oldest] = artifactPoolEntry{key: key, arts: arts, lastUse: p.clock}
}

func sameGeometry(a *artifacts, ws *geom.Workspace) bool {
	if a.bounds != ws.Bounds() {
		return false
	}
	obs := ws.ObstaclesView()
	if len(obs) != len(a.obstacles) {
		return false
	}
	for i := range obs {
		if obs[i] != a.obstacles[i] {
			return false
		}
	}
	return true
}

// buildArtifacts constructs the shareable stack artifacts from scratch.
func buildArtifacts(ws *geom.Workspace, b reach.Bounds, margin, hysteresis, planMargin float64, motionDelta time.Duration) (*artifacts, error) {
	aws, err := AnalysisWorkspace(ws)
	if err != nil {
		return nil, err
	}
	analyzer, err := reach.NewAnalyzer(aws, b, margin, motionDelta, hysteresis)
	if err != nil {
		return nil, err
	}
	lws, err := LandingWorkspace(ws)
	if err != nil {
		return nil, err
	}
	landingAnalyzer, err := reach.NewAnalyzer(lws, b, margin, motionDelta, hysteresis)
	if err != nil {
		return nil, err
	}
	astar, err := plan.NewAStar(ws, 1.0, planMargin)
	if err != nil {
		return nil, err
	}
	// The snapshot aliases the canonical workspace's storage: workspaces are
	// immutable after construction, and sameGeometry only reads it.
	return &artifacts{
		ws:              ws,
		bounds:          ws.Bounds(),
		obstacles:       ws.ObstaclesView(),
		analyzer:        analyzer,
		landingAnalyzer: landingAnalyzer,
		astar:           astar,
	}, nil
}
