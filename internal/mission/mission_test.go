package mission

import (
	"testing"
	"time"

	"repro/internal/battery"
	"repro/internal/geom"
	"repro/internal/node"
	"repro/internal/plan"
	"repro/internal/plant"
	"repro/internal/pubsub"
	"repro/internal/rta"
)

func stepNode(t *testing.T, n *node.Node, st node.State, in pubsub.Valuation) (node.State, pubsub.Valuation) {
	t.Helper()
	next, out, err := n.Step(st, in)
	if err != nil {
		t.Fatalf("step %s: %v", n.Name(), err)
	}
	return next, out
}

func TestAppNodeAdvancesOnArrival(t *testing.T) {
	pts := []geom.Vec3{geom.V(1, 1, 1), geom.V(9, 9, 1)}
	app, err := NewAppNode(AppConfig{Points: pts, Tolerance: 1})
	if err != nil {
		t.Fatal(err)
	}
	st := app.InitState()
	// Far from the first target: it keeps publishing it.
	st, out := stepNode(t, app, st, pubsub.Valuation{
		TopicDroneState: plant.State{Pos: geom.V(5, 5, 1), Battery: 1},
	})
	if out[TopicMissionTarget].(geom.Vec3) != pts[0] {
		t.Errorf("target = %v", out[TopicMissionTarget])
	}
	// Arrived: the next target is published and the visit counted.
	st, out = stepNode(t, app, st, pubsub.Valuation{
		TopicDroneState: plant.State{Pos: pts[0], Battery: 1},
	})
	if out[TopicMissionTarget].(geom.Vec3) != pts[1] {
		t.Errorf("target after arrival = %v", out[TopicMissionTarget])
	}
	if v, ok := VisitsOf(st); !ok || v != 1 {
		t.Errorf("visits = %v %v", v, ok)
	}
	// The tour wraps around.
	st, out = stepNode(t, app, st, pubsub.Valuation{
		TopicDroneState: plant.State{Pos: pts[1], Battery: 1},
	})
	if out[TopicMissionTarget].(geom.Vec3) != pts[0] {
		t.Errorf("target after wrap = %v", out[TopicMissionTarget])
	}
	_ = st
}

func TestAppNodeRandomTargets(t *testing.T) {
	ws := geom.CityWorkspace()
	app, err := NewAppNode(AppConfig{Random: true, Workspace: ws, Margin: 0.45, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	st := app.InitState()
	st, out := stepNode(t, app, st, pubsub.Valuation{
		TopicDroneState: plant.State{Pos: geom.V(3, 3, 2), Battery: 1},
	})
	target, ok := out[TopicMissionTarget].(geom.Vec3)
	if !ok {
		t.Fatalf("no target published: %v", out)
	}
	if !ws.FreeWithMargin(target, 0.45) {
		t.Errorf("random target %v is not free", target)
	}
	// Arriving at the random target draws a fresh one.
	_, out2 := stepNode(t, app, st, pubsub.Valuation{
		TopicDroneState: plant.State{Pos: target, Battery: 1},
	})
	if out2[TopicMissionTarget].(geom.Vec3) == target {
		t.Error("random target did not advance on arrival")
	}
}

func TestAppNodeValidation(t *testing.T) {
	if _, err := NewAppNode(AppConfig{}); err == nil {
		t.Error("app without points or Random accepted")
	}
	if _, err := NewAppNode(AppConfig{Random: true}); err == nil {
		t.Error("random app without workspace accepted")
	}
}

func TestWaypointManagerWalksPlan(t *testing.T) {
	wpm, err := NewWaypointManagerNode("wpm", 20*time.Millisecond, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	planVal := ActivePlan{
		Waypoints: plan.Plan{geom.V(0, 0, 1), geom.V(5, 0, 1), geom.V(5, 5, 1)},
		Seq:       1,
	}
	st := wpm.InitState()
	st, out := stepNode(t, wpm, st, pubsub.Valuation{
		TopicActivePlan: planVal,
		TopicDroneState: plant.State{Pos: geom.V(0, 0, 1), Battery: 1},
	})
	wp := out[TopicWaypoint].(Waypoint)
	if !wp.Valid || wp.Target != geom.V(5, 0, 1) {
		t.Errorf("first waypoint = %+v", wp)
	}
	// Arrive at wp1: the manager advances to wp2 with the segment start at
	// the previous waypoint.
	st, out = stepNode(t, wpm, st, pubsub.Valuation{
		TopicActivePlan: planVal,
		TopicDroneState: plant.State{Pos: geom.V(4.5, 0, 1), Battery: 1},
	})
	wp = out[TopicWaypoint].(Waypoint)
	if wp.Target != geom.V(5, 5, 1) || wp.From != geom.V(5, 0, 1) {
		t.Errorf("advanced waypoint = %+v", wp)
	}
	// A replaced plan (new Seq) resets progress.
	newPlan := ActivePlan{
		Waypoints: plan.Plan{geom.V(4.5, 0, 1), geom.V(0, 5, 1)},
		Seq:       2,
		Landing:   true,
	}
	_, out = stepNode(t, wpm, st, pubsub.Valuation{
		TopicActivePlan: newPlan,
		TopicDroneState: plant.State{Pos: geom.V(4.5, 0, 1), Battery: 1},
	})
	wp = out[TopicWaypoint].(Waypoint)
	if wp.Target != geom.V(0, 5, 1) || !wp.Land {
		t.Errorf("waypoint after plan swap = %+v", wp)
	}
}

func TestWaypointManagerInvalidUntilPlan(t *testing.T) {
	wpm, err := NewWaypointManagerNode("wpm", 20*time.Millisecond, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	_, out := stepNode(t, wpm, wpm.InitState(), pubsub.Valuation{
		TopicActivePlan: nil,
		TopicDroneState: plant.State{Pos: geom.V(0, 0, 1), Battery: 1},
	})
	if wp := out[TopicWaypoint].(Waypoint); wp.Valid {
		t.Errorf("waypoint valid without a plan: %+v", wp)
	}
}

func TestPlannerNodeCachesUntilTargetMoves(t *testing.T) {
	ws := geom.CityWorkspace()
	astar, err := plan.NewAStar(ws, 1.0, 0.45)
	if err != nil {
		t.Fatal(err)
	}
	counting := &countingPlanner{inner: astar}
	pn, err := NewPlannerNode(PlannerConfig{Name: "p", Planner: counting, Period: 500 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	st := pn.InitState()
	in := pubsub.Valuation{
		TopicDroneState:    plant.State{Pos: geom.V(3, 3, 2), Battery: 1},
		TopicMissionTarget: geom.V(46, 46, 2),
	}
	st, out := stepNode(t, pn, st, in)
	if _, ok := out[TopicPlan].(plan.Plan); !ok {
		t.Fatalf("no plan published: %v", out)
	}
	if counting.calls != 1 {
		t.Fatalf("planner calls = %d", counting.calls)
	}
	// Same target: republish the cached plan, no replanning.
	st, _ = stepNode(t, pn, st, in)
	if counting.calls != 1 {
		t.Errorf("planner replanned without target change: %d", counting.calls)
	}
	// Moved target: replan.
	in[TopicMissionTarget] = geom.V(3, 46, 2)
	_, _ = stepNode(t, pn, st, in)
	if counting.calls != 2 {
		t.Errorf("planner did not replan on target change: %d", counting.calls)
	}
}

type countingPlanner struct {
	inner plan.Planner
	calls int
}

func (c *countingPlanner) Plan(start, goal geom.Vec3) (plan.Plan, error) {
	c.calls++
	return c.inner.Plan(start, goal)
}

func TestPlannerModulePredicates(t *testing.T) {
	ws := geom.CityWorkspace()
	acN, scN := plannerPair(t, ws)
	mod, err := NewPlannerModule(PlannerModuleConfig{
		AC: acN, SC: scN,
		Delta:     500 * time.Millisecond,
		Workspace: ws,
		Margin:    0.45,
		MaxVel:    3,
	})
	if err != nil {
		t.Fatal(err)
	}
	// A plan cutting straight through a house, with the drone right at the
	// unsafe segment: ttf fires, φsafer does not hold.
	badPlan := plan.Plan{geom.V(3, 3, 2), geom.V(20, 20, 2)}
	val := pubsub.Valuation{
		TopicPlan:          badPlan,
		TopicDroneState:    plant.State{Pos: geom.V(3, 3, 2), Battery: 1},
		TopicMissionTarget: geom.V(20, 20, 2),
	}
	if !mod.TTF2Delta(val) {
		t.Error("ttf must fire on an imminent unsafe segment")
	}
	if mod.InSafer(val) {
		t.Error("φsafer must not hold with a colliding plan")
	}
	// The same bad plan far from the drone: not yet urgent, φsafe holds.
	valFar := pubsub.Valuation{
		TopicPlan:          plan.Plan{geom.V(40, 3, 2), geom.V(20, 20, 2)},
		TopicDroneState:    plant.State{Pos: geom.V(3, 3, 2), Battery: 1},
		TopicMissionTarget: geom.V(20, 20, 2),
	}
	if mod.TTF2Delta(valFar) {
		t.Error("a distant plan defect should not trip the 2Δ check")
	}
	if !mod.SafeHolds(valFar) {
		t.Error("φplan should hold while the defect is far away")
	}
	// A clean plan: φsafer holds.
	goodVal := pubsub.Valuation{
		TopicPlan:          plan.Plan{geom.V(3, 3, 2), geom.V(3, 46, 2)},
		TopicDroneState:    plant.State{Pos: geom.V(3, 3, 2), Battery: 1},
		TopicMissionTarget: geom.V(3, 46, 2),
	}
	if !mod.InSafer(goodVal) {
		t.Error("φsafer must hold with a clean plan")
	}
}

func plannerPair(t *testing.T, ws *geom.Workspace) (ac, sc *node.Node) {
	t.Helper()
	astar, err := plan.NewAStar(ws, 1.0, 0.45)
	if err != nil {
		t.Fatal(err)
	}
	acN, err := NewPlannerNode(PlannerConfig{Name: "planner.ac", Planner: astar, Period: 500 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	scN, err := NewPlannerNode(PlannerConfig{Name: "planner.sc", Planner: astar, Period: 500 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	return acN, scN
}

func TestBatteryNodes(t *testing.T) {
	acB, err := NewBatteryACNode("bac", 200*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	p := plan.Plan{geom.V(0, 0, 2), geom.V(5, 5, 2)}
	st := acB.InitState()
	st, out := stepNode(t, acB, st, pubsub.Valuation{
		TopicPlan:       p,
		TopicDroneState: plant.State{Pos: geom.V(0, 0, 2), Battery: 1},
	})
	ap := out[TopicActivePlan].(ActivePlan)
	if ap.Landing || len(ap.Waypoints) != 2 || ap.Seq != 1 {
		t.Errorf("forwarded plan = %+v", ap)
	}
	// The same plan keeps its sequence number; a new plan bumps it.
	st, out = stepNode(t, acB, st, pubsub.Valuation{
		TopicPlan:       p,
		TopicDroneState: plant.State{Pos: geom.V(0, 0, 2), Battery: 1},
	})
	if out[TopicActivePlan].(ActivePlan).Seq != 1 {
		t.Error("unchanged plan bumped Seq")
	}
	_, out = stepNode(t, acB, st, pubsub.Valuation{
		TopicPlan:       plan.Plan{geom.V(0, 0, 2), geom.V(9, 9, 2)},
		TopicDroneState: plant.State{Pos: geom.V(0, 0, 2), Battery: 1},
	})
	if out[TopicActivePlan].(ActivePlan).Seq != 2 {
		t.Error("new plan did not bump Seq")
	}

	lander, err := NewBatteryLanderNode("bsc", 200*time.Millisecond, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	lst := lander.InitState()
	lst, out = stepNode(t, lander, lst, pubsub.Valuation{
		TopicDroneState: plant.State{Pos: geom.V(7, 8, 3.2), Battery: 0.2},
	})
	land := out[TopicActivePlan].(ActivePlan)
	if !land.Landing {
		t.Error("lander plan not marked Landing")
	}
	last := land.Waypoints[len(land.Waypoints)-1]
	if last != geom.V(7, 8, 0.5) {
		t.Errorf("touchdown waypoint = %v", last)
	}
	// The descent profile steps down without big jumps.
	for i := 1; i < len(land.Waypoints); i++ {
		dz := land.Waypoints[i-1].Z - land.Waypoints[i].Z
		if dz > 0.6+1e-9 || dz < -1e-9 {
			t.Errorf("descent step %d = %v", i, dz)
		}
	}
	// The touchdown site is pinned even if the drone drifts.
	_, out = stepNode(t, lander, lst, pubsub.Valuation{
		TopicDroneState: plant.State{Pos: geom.V(9, 9, 3), Battery: 0.2},
	})
	land2 := out[TopicActivePlan].(ActivePlan)
	if land2.Waypoints[len(land2.Waypoints)-1] != geom.V(7, 8, 0.5) {
		t.Error("touchdown site drifted")
	}
	if land2.Seq != land.Seq {
		t.Error("landing plan sequence changed")
	}
}

func TestBatteryModulePredicates(t *testing.T) {
	mon, err := battery.NewMonitor(battery.Config{
		Params: plant.DefaultParams(), Delta: 2 * time.Second, MaxHeight: 12,
	})
	if err != nil {
		t.Fatal(err)
	}
	acB, _ := NewBatteryACNode("bac", 200*time.Millisecond)
	scB, _ := NewBatteryLanderNode("bsc", 200*time.Millisecond, 0.5)
	mod, err := NewBatteryModule(acB, scB, mon)
	if err != nil {
		t.Fatal(err)
	}
	low := pubsub.Valuation{TopicDroneState: plant.State{Battery: 0.01}}
	high := pubsub.Valuation{TopicDroneState: plant.State{Battery: 0.95}}
	if mod.Decide(rta.ModeAC, low) != rta.ModeSC {
		t.Error("low battery must disengage")
	}
	if mod.Decide(rta.ModeAC, high) != rta.ModeAC {
		t.Error("high battery must keep AC")
	}
	if mod.Decide(rta.ModeSC, high) != rta.ModeAC {
		t.Error("recharged battery must re-engage")
	}
	// Missing state fails safe.
	empty := pubsub.Valuation{TopicDroneState: nil}
	if mod.Decide(rta.ModeAC, empty) != rta.ModeSC {
		t.Error("missing state must fail safe to SC")
	}
}

func TestBuildStackShapes(t *testing.T) {
	base := DefaultStackConfig(1)
	base.App = AppConfig{Points: []geom.Vec3{geom.V(3, 3, 2)}}

	t.Run("full stack", func(t *testing.T) {
		st, err := Build(base)
		if err != nil {
			t.Fatal(err)
		}
		if st.PrimitiveModule == nil || st.PlannerModule == nil || st.BatteryModule == nil {
			t.Error("full stack missing modules")
		}
		if got := len(st.System.Modules()); got != 3 {
			t.Errorf("modules = %d, want 3", got)
		}
	})
	t.Run("motion only", func(t *testing.T) {
		cfg := base
		cfg.WithPlannerModule = false
		cfg.WithBatteryModule = false
		st, err := Build(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if len(st.System.Modules()) != 1 || st.PrimitiveModule == nil {
			t.Error("motion-only stack wrong")
		}
	})
	t.Run("ac only baseline", func(t *testing.T) {
		cfg := base
		cfg.Protection = ProtectACOnly
		st, err := Build(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if st.PrimitiveModule != nil {
			t.Error("AC-only baseline must not have a primitive module")
		}
	})
}

func TestStackCertificates(t *testing.T) {
	cfg := DefaultStackConfig(2)
	cfg.App = AppConfig{Points: []geom.Vec3{geom.V(3, 3, 2)}}
	st, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	certs, err := st.Certificates(40)
	if err != nil {
		t.Fatal(err)
	}
	if len(certs) != 3 {
		t.Fatalf("certificates = %d, want 3", len(certs))
	}
	// Theorem 4.1: every module in the composed stack discharges its
	// obligations, hence the system satisfies φplan ∧ φmpr ∧ φbat.
	if err := st.System.VerifyAll(certs); err != nil {
		t.Errorf("VerifyAll: %v", err)
	}
}

func TestProtectionModeString(t *testing.T) {
	if ProtectRTA.String() != "rta" || ProtectACOnly.String() != "ac-only" ||
		ProtectSCOnly.String() != "sc-only" || ProtectionMode(9).String() == "" {
		t.Error("ProtectionMode.String wrong")
	}
}
