package mission

import (
	"fmt"
	"time"

	"repro/internal/controller"
	"repro/internal/node"
	"repro/internal/pubsub"
	"repro/internal/reach"
	"repro/internal/rta"
)

// wpState is the waypoint manager's local state: the active plan and the
// index of the waypoint currently being tracked.
type wpState struct {
	seq     uint64
	landing bool
	plan    ActivePlan
	idx     int
}

// NewWaypointManagerNode builds the trusted glue node that walks the active
// plan: it publishes the current reference segment (previous waypoint →
// current waypoint) and advances when the drone arrives. It resets to the
// first waypoint whenever the active plan is replaced.
func NewWaypointManagerNode(name string, period time.Duration, tolerance float64) (*node.Node, error) {
	if tolerance <= 0 {
		tolerance = 0.8
	}
	step := func(st node.State, in pubsub.Valuation) (node.State, pubsub.Valuation, error) {
		s, ok := st.(*wpState)
		if !ok {
			return nil, nil, fmt.Errorf("waypoint manager: bad state type %T", st)
		}
		ap, havePlan := activePlan(in)
		ds, haveState := droneState(in)
		if !havePlan || !haveState {
			return s, pubsub.Valuation{TopicWaypoint: Waypoint{}}, nil
		}
		next := *s
		if ap.Seq != s.seq || len(s.plan.Waypoints) == 0 {
			next.seq = ap.Seq
			next.landing = ap.Landing
			next.plan = ap
			next.idx = 0
			if len(ap.Waypoints) > 1 {
				next.idx = 1 // waypoint 0 is the start position
			}
		}
		wps := next.plan.Waypoints
		for next.idx < len(wps)-1 && ds.Pos.Dist(wps[next.idx]) <= tolerance {
			next.idx++
		}
		from := wps[0]
		if next.idx > 0 {
			from = wps[next.idx-1]
		}
		out := Waypoint{
			From:   from,
			Target: wps[next.idx],
			Land:   next.landing,
			Valid:  true,
		}
		return &next, pubsub.Valuation{TopicWaypoint: out}, nil
	}
	return node.New(
		name,
		period,
		[]pubsub.TopicName{TopicActivePlan, TopicDroneState},
		[]pubsub.TopicName{TopicWaypoint},
		step,
		node.WithInit(func() node.State { return &wpState{} }),
	)
}

// NewPrimitiveNode wraps a controller as a motion-primitive node: it
// subscribes to the drone state and current waypoint and publishes the
// commanded acceleration, like the MotionPrimitive node of Figure 4.
func NewPrimitiveNode(name string, period time.Duration, ctrl controller.Controller) (*node.Node, error) {
	if ctrl == nil {
		return nil, fmt.Errorf("primitive node %q: nil controller", name)
	}
	// The node's local state is its own clock, advanced by one period per
	// firing; controllers use it for time-dependent behaviour (faults).
	step := func(st node.State, in pubsub.Valuation) (node.State, pubsub.Valuation, error) {
		t, _ := st.(time.Duration)
		nextT := t + period
		ds, haveState := droneState(in)
		wp, haveWP := waypoint(in)
		if !haveState || ds.Landed {
			return nextT, nil, nil
		}
		target := ds.Pos // hold position until a waypoint arrives
		if haveWP {
			target = wp.Target
		}
		u := ctrl.Control(t, ds.Pos, ds.Vel, target)
		return nextT, pubsub.Valuation{TopicCmd: u}, nil
	}
	return node.New(
		name,
		period,
		[]pubsub.TopicName{TopicDroneState, TopicWaypoint},
		[]pubsub.TopicName{TopicCmd},
		step,
		node.WithInit(func() node.State { return time.Duration(0) }),
	)
}

// NewPrimitiveModule declares the RTA-protected motion-primitive module of
// Section V-A, guaranteeing φmpr via the analyzer's reachability predicates:
// ttf2Δ = ¬(StopBox(s, 2Δ) free), φsafer = StopBox(s, h) free for the
// hysteresis horizon h ≥ 2Δ, φsafe = BrakeBox(s) free.
//
// Two analyzers parameterise the predicates: the strict one geo-fences the
// floor as well as the obstacles; the landing one protects obstacles only.
// While the active waypoint is a landing waypoint (the battery module's
// certified lander is descending on purpose), the landing analyzer is used —
// the paper's φobs concerns obstacles, and ground contact during landing is
// owned by the battery-safety argument. landing may be nil to always
// enforce the strict fence.
//
// With oneWay set the module never returns control to the AC after a switch
// — the classic Simplex behaviour the paper's two-way switching improves on
// (used by the ablation benchmark).
//
// policy selects the module's switching policy; nil runs the paper's
// Figure 9 rules. The policy only decides *when* to hand control between the
// controllers — the safety clamp (any proposed AC is overridden to SC when
// ttf2Δ fails) is enforced by the rta.Module regardless of policy, so φmpr
// holds for every policy in the registry. oneWay is defined only for the
// default policy: its latch gates the φsafer predicate, which the Figure 9
// recovery consults but a custom policy may not (always-ac would re-engage
// straight past it), so combining oneWay with a non-default policy is
// rejected — the classic-Simplex baseline is an ablation of the Figure 9
// return path specifically.
func NewPrimitiveModule(ac, sc *node.Node, strict, landing *reach.Analyzer, oneWay bool, policy rta.Policy) (*rta.Module, error) {
	if strict == nil {
		return nil, fmt.Errorf("primitive module: nil analyzer")
	}
	if oneWay && policy != nil && policy.Name() != rta.DefaultPolicyName {
		return nil, fmt.Errorf("primitive module: one-way switching is defined for the default %s policy only, not %q", rta.DefaultPolicyName, policy.Name())
	}
	if landing == nil {
		landing = strict
	}
	pick := func(v pubsub.Valuation) *reach.Analyzer {
		if wp, ok := waypoint(v); ok && wp.Land {
			return landing
		}
		return strict
	}
	// One-way latch: classic Simplex engages the AC once at startup and,
	// after the first disengagement, stays on the SC forever. The latch is
	// deliberate mutable state inside the predicates — acceptable for this
	// ablation baseline, which is only exercised by the simulator.
	var disengaged bool
	return rta.NewModule(rta.Decl{
		Name:      "safe-motion-primitive",
		AC:        ac,
		SC:        sc,
		Delta:     strict.Delta(),
		Policy:    policy,
		Monitored: []pubsub.TopicName{TopicDroneState, TopicWaypoint},
		TTF2Delta: func(v pubsub.Valuation) bool {
			ds, ok := droneState(v)
			if !ok {
				return true // no state estimate: fail safe
			}
			if ds.Landed {
				return false
			}
			trip := pick(v).TTF2Delta(ds.Pos, ds.Vel)
			if trip && oneWay {
				disengaged = true
			}
			return trip
		},
		InSafer: func(v pubsub.Valuation) bool {
			if oneWay && disengaged {
				return false // classic Simplex: no SC→AC return
			}
			ds, ok := droneState(v)
			if !ok {
				return false
			}
			if ds.Landed {
				return true
			}
			return pick(v).InSafer(ds.Pos, ds.Vel)
		},
		Safe: func(v pubsub.Valuation) bool {
			ds, ok := droneState(v)
			if !ok {
				return true
			}
			if ds.Landed {
				return true
			}
			return pick(v).Safe(ds.Pos, ds.Vel)
		},
	})
}
