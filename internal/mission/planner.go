package mission

import (
	"fmt"
	"time"

	"repro/internal/geom"
	"repro/internal/node"
	"repro/internal/plan"
	"repro/internal/pubsub"
	"repro/internal/rta"
)

// plannerState caches the last plan so the planner only replans when the
// mission target changes or planning previously failed.
type plannerState struct {
	haveTarget bool
	target     geom.Vec3
	cached     plan.Plan
}

// PlannerConfig configures a planner node (AC or SC flavour).
type PlannerConfig struct {
	// Name of the node (e.g. "planner.ac").
	Name string
	// Planner computes plans: the buggy RRT* for the AC, certified A* for
	// the SC.
	Planner plan.Planner
	// Period of the node; must be ≤ the planner module's Δ.
	Period time.Duration
	// ReplanDist: replan when the target moved by more than this.
	ReplanDist float64
	// AlwaysReplan makes the node recompute a plan every period instead of
	// caching until the target moves. Sampling-based planners draw a fresh
	// plan each time, so a defective draw is replaced on the next period —
	// typical of how an untrusted third-party planner is actually deployed.
	AlwaysReplan bool
}

// NewPlannerNode builds a planner node: it subscribes to the mission target
// and drone state and publishes a waypoint plan from the drone's position to
// the target.
func NewPlannerNode(cfg PlannerConfig) (*node.Node, error) {
	if cfg.Planner == nil {
		return nil, fmt.Errorf("planner node %q: nil planner", cfg.Name)
	}
	if cfg.Period <= 0 {
		cfg.Period = 500 * time.Millisecond
	}
	if cfg.ReplanDist <= 0 {
		cfg.ReplanDist = 0.5
	}
	step := func(st node.State, in pubsub.Valuation) (node.State, pubsub.Valuation, error) {
		s, ok := st.(*plannerState)
		if !ok {
			return nil, nil, fmt.Errorf("planner node %q: bad state type %T", cfg.Name, st)
		}
		target, haveTarget := missionTarget(in)
		ds, haveState := droneState(in)
		if !haveTarget || !haveState || ds.Landed {
			return s, nil, nil
		}
		next := *s
		needReplan := cfg.AlwaysReplan || !s.haveTarget || s.target.Dist(target) > cfg.ReplanDist || len(s.cached) == 0
		if needReplan {
			p, err := cfg.Planner.Plan(ds.Pos, target)
			if err != nil {
				// Planning failures are not fatal: keep the previous plan
				// (or none) and retry next period. The RTA layers below
				// keep the system safe meanwhile.
				return &next, nil, nil
			}
			next.haveTarget = true
			next.target = target
			next.cached = p
		}
		return &next, pubsub.Valuation{TopicPlan: next.cached}, nil
	}
	return node.New(
		cfg.Name,
		cfg.Period,
		[]pubsub.TopicName{TopicDroneState, TopicMissionTarget},
		[]pubsub.TopicName{TopicPlan},
		step,
		node.WithInit(func() node.State { return &plannerState{} }),
	)
}

// PlannerModuleConfig configures the RTA-protected motion planner of
// Section V-C, guaranteeing φplan: the reference trajectory handed
// downstream never leads the drone into an obstacle.
type PlannerModuleConfig struct {
	// AC and SC are the untrusted and certified planner nodes.
	AC, SC *node.Node
	// Delta is the planner DM period.
	Delta time.Duration
	// Workspace and Margin define plan validity.
	Workspace *geom.Workspace
	Margin    float64
	// MaxVel bounds the drone's progress along the plan, fixing how far
	// ahead of the drone a plan defect becomes urgent: the ttf2Δ check
	// fires when an unsafe segment is within 2Δ·MaxVel of travel.
	MaxVel float64
}

// NewPlannerModule declares the planner RTA module. The monitored state is
// (plan/current, drone/state):
//
//   - ttf2Δ: the plan has a colliding segment and the drone could reach it
//     within 2Δ at MaxVel (or there is no plan while one is demanded);
//   - φsafer: the whole current plan is collision-free;
//   - φsafe: no colliding segment of the current plan is within Δ·MaxVel of
//     the drone.
func NewPlannerModule(cfg PlannerModuleConfig) (*rta.Module, error) {
	if cfg.Workspace == nil {
		return nil, fmt.Errorf("planner module: nil workspace")
	}
	if cfg.MaxVel <= 0 {
		return nil, fmt.Errorf("planner module: MaxVel must be positive")
	}
	if cfg.Delta <= 0 {
		cfg.Delta = 500 * time.Millisecond
	}
	horizon2 := cfg.MaxVel * (2 * cfg.Delta).Seconds()
	horizon1 := cfg.MaxVel * cfg.Delta.Seconds()

	unsafeWithin := func(v pubsub.Valuation, horizon float64) bool {
		p, havePlan := currentPlan(v)
		if !havePlan {
			return false // no plan → drone holds; nothing unsafe to follow
		}
		ds, haveState := droneState(v)
		idx := plan.FirstUnsafeSegment(p, cfg.Workspace, cfg.Margin)
		if idx < 0 {
			return false
		}
		if !haveState {
			return true // unsafe plan and unknown drone position: fail safe
		}
		// Distance from the drone to the start of the unsafe segment,
		// conservatively straight-line.
		return ds.Pos.Dist(p[idx]) <= horizon
	}

	return rta.NewModule(rta.Decl{
		Name:  "safe-motion-planner",
		AC:    cfg.AC,
		SC:    cfg.SC,
		Delta: cfg.Delta,
		Monitored: []pubsub.TopicName{
			TopicPlan, TopicDroneState, TopicMissionTarget,
		},
		TTF2Delta: func(v pubsub.Valuation) bool {
			return unsafeWithin(v, horizon2)
		},
		InSafer: func(v pubsub.Valuation) bool {
			p, havePlan := currentPlan(v)
			if !havePlan {
				return false
			}
			return plan.FirstUnsafeSegment(p, cfg.Workspace, cfg.Margin) < 0
		},
		Safe: func(v pubsub.Valuation) bool {
			return !unsafeWithin(v, horizon1)
		},
	})
}
