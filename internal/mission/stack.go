package mission

import (
	"fmt"
	"time"

	"repro/internal/battery"
	"repro/internal/controller"
	"repro/internal/geom"
	"repro/internal/node"
	"repro/internal/plan"
	"repro/internal/plant"
	"repro/internal/reach"
	"repro/internal/rta"
)

// ProtectionMode selects how the motion-primitive layer is deployed — the
// three configurations compared by the Figure 12a timing experiment.
type ProtectionMode int

// Protection modes.
const (
	// ProtectRTA wraps the untrusted AC in an RTA module (the SOTER stack).
	ProtectRTA ProtectionMode = iota + 1
	// ProtectACOnly runs the untrusted AC alone (fast, can collide).
	ProtectACOnly
	// ProtectSCOnly runs the certified SC alone (safe, slow).
	ProtectSCOnly
)

// String implements fmt.Stringer.
func (m ProtectionMode) String() string {
	switch m {
	case ProtectRTA:
		return "rta"
	case ProtectACOnly:
		return "ac-only"
	case ProtectSCOnly:
		return "sc-only"
	default:
		return fmt.Sprintf("ProtectionMode(%d)", int(m))
	}
}

// ACKind selects the untrusted advanced motion primitive.
type ACKind int

// Advanced-controller kinds.
const (
	// ACAggressive is the PX4-like time-optimised primitive (Figure 5 right).
	ACAggressive ACKind = iota + 1
	// ACLearned is the data-driven primitive (Figure 5 left).
	ACLearned
)

// StackConfig configures the full RTA-protected surveillance stack of
// Figure 8 (or its unprotected baselines).
type StackConfig struct {
	// Workspace is the obstacle map; defaults to geom.CityWorkspace().
	Workspace *geom.Workspace
	// PlantParams are the drone's physical parameters.
	PlantParams plant.Params
	// Margin is the drone bounding radius used in all clearance checks.
	Margin float64
	// PlanMargin is the clearance planners aim for; zero defaults to
	// Margin + 0.8 so reference paths stay out of the DM's switching band.
	// Workloads whose waypoints intentionally hug obstacles set it lower.
	PlanMargin float64
	// MotionDelta is Δ of the motion-primitive module.
	MotionDelta time.Duration
	// Hysteresis scales the φsafer horizon (Remark 3.3 trade-off).
	Hysteresis float64
	// PrimitivePeriod is the period of the AC/SC motion-primitive nodes.
	PrimitivePeriod time.Duration
	// Protection selects RTA / AC-only / SC-only for the motion layer.
	Protection ProtectionMode
	// AC selects the untrusted motion primitive; ACFaults optionally
	// injects faults into it.
	AC       ACKind
	ACFaults []controller.Fault
	// LearnedBadFraction is the corrupted-cell fraction for ACLearned.
	LearnedBadFraction float64
	// WithPlannerModule enables the RTA-protected planner (Section V-C);
	// PlannerBug selects the defect injected into the RRT* AC planner.
	WithPlannerModule bool
	PlannerBug        plan.Bug
	PlannerBugRate    float64
	PlannerDelta      time.Duration
	// WithBatteryModule enables the battery-safety module (Section V-B).
	WithBatteryModule bool
	BatteryDelta      time.Duration
	// OneWaySwitching disables the SC→AC return of the motion module — the
	// classic Simplex baseline for the switching ablation.
	OneWaySwitching bool
	// SwitchPolicy names the motion-primitive module's switching policy in
	// the rta policy registry ("soter-fig9", "sticky-sc:25", "hysteresis",
	// "always-ac", "always-sc"); empty selects the paper's Figure 9 rules.
	// The planner and battery modules always run the default policy — the
	// policy axis ablates the motion layer, the module the paper's switching
	// discussion is about. Safety is policy-independent: the module clamps
	// any policy output to SC whenever ttf2Δ fails.
	SwitchPolicy string
	// App configures the surveillance application; its Workspace, Margin
	// and Seed fields are filled in from this config when zero.
	App AppConfig
	// Seed drives every stochastic component.
	Seed int64
	// FreshArtifacts disables the process-wide artifact pool, forcing this
	// build to construct its analyzers, grids and planners from scratch.
	// Pooled and fresh builds are behaviourally identical (the fleet
	// determinism tests hold them byte-for-byte equal); the pool only saves
	// the rebuild cost of back-to-back missions over the same geometry.
	FreshArtifacts bool
}

// DefaultStackConfig returns the configuration used throughout the
// evaluation, mirroring the paper's setup.
func DefaultStackConfig(seed int64) StackConfig {
	return StackConfig{
		PlantParams:        plant.DefaultParams(),
		Margin:             0.45,
		MotionDelta:        100 * time.Millisecond,
		Hysteresis:         2.0,
		PrimitivePeriod:    20 * time.Millisecond,
		Protection:         ProtectRTA,
		AC:                 ACAggressive,
		LearnedBadFraction: 0.12,
		WithPlannerModule:  true,
		PlannerDelta:       500 * time.Millisecond,
		WithBatteryModule:  true,
		BatteryDelta:       2 * time.Second,
		Seed:               seed,
	}
}

// Stack is the assembled system plus the handles the simulator and
// benchmarks need.
type Stack struct {
	System   *rta.System
	Analyzer *reach.Analyzer
	Monitor  *battery.Monitor // nil without the battery module
	// Modules by role (nil when the role is unprotected/absent).
	PrimitiveModule *rta.Module
	PlannerModule   *rta.Module
	BatteryModule   *rta.Module
	// AppNode gives metrics access to the surveillance progress.
	AppNode *node.Node
	// Config echoes the (defaulted) configuration.
	Config StackConfig
}

// AnalysisWorkspace derives the workspace used by the motion-primitive
// safety analysis from the physical one: identical obstacles, but the floor
// is lowered slightly. The ground is landable — touchdown happens at the
// GroundZ altitude, above the geo-fenced band — so the motion module's
// floor margin must sit below the touchdown altitude, while still switching
// to SC before any dive can reach the actual ground. Side and top bounds are
// enforced unchanged.
func AnalysisWorkspace(ws *geom.Workspace) (*geom.Workspace, error) {
	b := ws.Bounds()
	b.Min.Z -= 0.25
	return geom.NewWorkspace(b, ws.ObstaclesView())
}

// LandingWorkspace derives the workspace used by the motion module while a
// landing plan is active: obstacles and side/top bounds are protected, but
// the floor is lowered out of reach so the certified lander's intentional
// descent is not fenced off. Ground contact during landing is owned by the
// battery-safety argument and the touchdown logic.
func LandingWorkspace(ws *geom.Workspace) (*geom.Workspace, error) {
	b := ws.Bounds()
	b.Min.Z -= 8
	return geom.NewWorkspace(b, ws.ObstaclesView())
}

// Build assembles the stack.
func Build(cfg StackConfig) (*Stack, error) {
	if cfg.Workspace == nil {
		cfg.Workspace = geom.CityWorkspace()
	}
	if cfg.Margin <= 0 {
		cfg.Margin = 0.45
	}
	if cfg.MotionDelta <= 0 {
		cfg.MotionDelta = 100 * time.Millisecond
	}
	if cfg.Hysteresis < 1 {
		cfg.Hysteresis = 2.0
	}
	if cfg.PrimitivePeriod <= 0 {
		cfg.PrimitivePeriod = 20 * time.Millisecond
	}
	if cfg.Protection == 0 {
		cfg.Protection = ProtectRTA
	}
	if cfg.AC == 0 {
		cfg.AC = ACAggressive
	}
	if err := cfg.PlantParams.Validate(); err != nil {
		return nil, fmt.Errorf("stack: %w", err)
	}

	limits := controller.Limits{
		MaxAccel: cfg.PlantParams.MaxAccel,
		MaxVel:   cfg.PlantParams.MaxVel,
	}
	bounds := reach.Bounds{
		MaxAccel: cfg.PlantParams.MaxAccel,
		MaxVel:   cfg.PlantParams.MaxVel,
		// The lagged plant achieves at least 80% of MaxAccel within a small
		// fraction of a braking maneuver; see plant.Params.LagTau.
		BrakeDecel: 0.8 * cfg.PlantParams.MaxAccel,
	}
	// Planners aim for more clearance than the safety margin: a reference
	// path that hugs obstacles at exactly the margin keeps the drone inside
	// the DM's switching band, forcing needless disengagements. The safety
	// checks (module predicates, φplan validation) still use cfg.Margin.
	planMargin := cfg.PlanMargin
	if planMargin <= 0 {
		planMargin = cfg.Margin + 0.8
	}

	// Seed-independent artifacts (derived workspaces, analyzers, the
	// certified A* grid) are pure functions of geometry and safety
	// parameters, so sweep missions share one pooled set instead of
	// rebuilding per mission. On a hit the canonical workspace instance also
	// replaces cfg.Workspace, so every mission reuses its query indexes.
	key := artifactKeyFor(cfg.Workspace, bounds, cfg.Margin, cfg.Hysteresis, planMargin, cfg.MotionDelta)
	var arts *artifacts
	if !cfg.FreshArtifacts {
		arts = sharedArtifacts.get(key, cfg.Workspace)
	}
	if arts == nil {
		var err error
		arts, err = buildArtifacts(cfg.Workspace, bounds, cfg.Margin, cfg.Hysteresis, planMargin, cfg.MotionDelta)
		if err != nil {
			return nil, fmt.Errorf("stack: %w", err)
		}
		if !cfg.FreshArtifacts {
			sharedArtifacts.put(key, arts)
		}
	}
	cfg.Workspace = arts.ws
	analyzer := arts.analyzer
	landingAnalyzer := arts.landingAnalyzer

	st := &Stack{Analyzer: analyzer, Config: cfg}
	var modules []*rta.Module
	var plain []*node.Node

	// --- Application layer -------------------------------------------------
	app := cfg.App
	if app.Workspace == nil {
		app.Workspace = cfg.Workspace
	}
	if app.Margin == 0 {
		app.Margin = cfg.Margin
	}
	if app.Seed == 0 {
		app.Seed = cfg.Seed
	}
	appNode, err := NewAppNode(app)
	if err != nil {
		return nil, fmt.Errorf("stack: %w", err)
	}
	st.AppNode = appNode
	plain = append(plain, appNode)

	// --- Motion planner layer ----------------------------------------------
	rrt, err := plan.NewRRTStar(cfg.Workspace, rrtConfig(cfg, planMargin))
	if err != nil {
		return nil, fmt.Errorf("stack: %w", err)
	}
	astar := arts.astar
	if cfg.WithPlannerModule {
		acPlanner, err := NewPlannerNode(PlannerConfig{
			Name:    "planner.ac",
			Planner: rrt,
			Period:  cfg.PlannerDelta,
			// The untrusted planner redraws every period so a defective
			// plan is transient rather than cached forever.
			AlwaysReplan: cfg.PlannerBug != plan.BugNone,
		})
		if err != nil {
			return nil, fmt.Errorf("stack: %w", err)
		}
		scPlanner, err := NewPlannerNode(PlannerConfig{Name: "planner.sc", Planner: astar, Period: cfg.PlannerDelta})
		if err != nil {
			return nil, fmt.Errorf("stack: %w", err)
		}
		pm, err := NewPlannerModule(PlannerModuleConfig{
			AC:        acPlanner,
			SC:        scPlanner,
			Delta:     cfg.PlannerDelta,
			Workspace: cfg.Workspace,
			Margin:    cfg.Margin,
			MaxVel:    cfg.PlantParams.MaxVel,
		})
		if err != nil {
			return nil, fmt.Errorf("stack: %w", err)
		}
		st.PlannerModule = pm
		modules = append(modules, pm)
	} else {
		// Unprotected: the certified planner runs alone (keeps baselines
		// focused on the motion layer).
		p, err := NewPlannerNode(PlannerConfig{Name: "planner", Planner: astar, Period: plannerPeriod(cfg)})
		if err != nil {
			return nil, fmt.Errorf("stack: %w", err)
		}
		plain = append(plain, p)
	}

	// --- Battery layer ------------------------------------------------------
	if cfg.WithBatteryModule {
		if cfg.BatteryDelta <= 0 {
			cfg.BatteryDelta = 2 * time.Second
		}
		mon, err := battery.NewMonitor(battery.Config{
			Params:    cfg.PlantParams,
			Delta:     cfg.BatteryDelta,
			MaxHeight: cfg.Workspace.Bounds().Max.Z,
		})
		if err != nil {
			return nil, fmt.Errorf("stack: %w", err)
		}
		st.Monitor = mon
		acB, err := NewBatteryACNode("battery.ac", 200*time.Millisecond)
		if err != nil {
			return nil, fmt.Errorf("stack: %w", err)
		}
		scB, err := NewBatteryLanderNode("battery.sc", 200*time.Millisecond, 0.5)
		if err != nil {
			return nil, fmt.Errorf("stack: %w", err)
		}
		bm, err := NewBatteryModule(acB, scB, mon)
		if err != nil {
			return nil, fmt.Errorf("stack: %w", err)
		}
		st.BatteryModule = bm
		modules = append(modules, bm)
	} else {
		fwd, err := NewBatteryACNode("planfwd", 200*time.Millisecond)
		if err != nil {
			return nil, fmt.Errorf("stack: %w", err)
		}
		plain = append(plain, fwd)
	}

	// --- Waypoint manager ----------------------------------------------------
	wpm, err := NewWaypointManagerNode("wpmanager", cfg.PrimitivePeriod, 0.8)
	if err != nil {
		return nil, fmt.Errorf("stack: %w", err)
	}
	plain = append(plain, wpm)

	// --- Motion primitive layer ----------------------------------------------
	ac := buildAC(cfg, limits)
	sc := controller.NewSafe(analyzer, limits, cfg.PrimitivePeriod)
	policy, err := rta.ParsePolicy(cfg.SwitchPolicy)
	if err != nil {
		return nil, fmt.Errorf("stack: switch policy: %w", err)
	}
	switch cfg.Protection {
	case ProtectRTA:
		acNode, err := NewPrimitiveNode("mpr.ac", cfg.PrimitivePeriod, ac)
		if err != nil {
			return nil, fmt.Errorf("stack: %w", err)
		}
		scNode, err := NewPrimitiveNode("mpr.sc", cfg.PrimitivePeriod, sc)
		if err != nil {
			return nil, fmt.Errorf("stack: %w", err)
		}
		pm, err := NewPrimitiveModule(acNode, scNode, analyzer, landingAnalyzer, cfg.OneWaySwitching, policy)
		if err != nil {
			return nil, fmt.Errorf("stack: %w", err)
		}
		st.PrimitiveModule = pm
		modules = append(modules, pm)
	case ProtectACOnly:
		n, err := NewPrimitiveNode("mpr", cfg.PrimitivePeriod, ac)
		if err != nil {
			return nil, fmt.Errorf("stack: %w", err)
		}
		plain = append(plain, n)
	case ProtectSCOnly:
		n, err := NewPrimitiveNode("mpr", cfg.PrimitivePeriod, sc)
		if err != nil {
			return nil, fmt.Errorf("stack: %w", err)
		}
		plain = append(plain, n)
	default:
		return nil, fmt.Errorf("stack: unknown protection mode %v", cfg.Protection)
	}

	sys, err := rta.NewSystem(modules, plain)
	if err != nil {
		return nil, fmt.Errorf("stack: %w", err)
	}
	st.System = sys
	return st, nil
}

// buildAC constructs the configured untrusted advanced controller, with
// fault injection when requested.
func buildAC(cfg StackConfig, limits controller.Limits) controller.Controller {
	var ac controller.Controller
	switch cfg.AC {
	case ACLearned:
		ac = controller.NewLearned(limits, cfg.LearnedBadFraction, cfg.Seed)
	default:
		ac = controller.NewAggressive(limits)
	}
	if len(cfg.ACFaults) > 0 {
		ac = controller.WithFaults(ac, limits, cfg.ACFaults)
	}
	return ac
}

func rrtConfig(cfg StackConfig, planMargin float64) plan.RRTStarConfig {
	r := plan.DefaultRRTStarConfig(cfg.Seed)
	r.Margin = planMargin
	r.Bug = cfg.PlannerBug
	r.BugRate = cfg.PlannerBugRate
	if r.BugRate == 0 && cfg.PlannerBug == plan.BugSkipEdgeCheck {
		r.BugRate = 0.3
	}
	return r
}

func plannerPeriod(cfg StackConfig) time.Duration {
	if cfg.PlannerDelta > 0 {
		return cfg.PlannerDelta
	}
	return 500 * time.Millisecond
}

// Certificates builds the per-module certificates discharging (P2a), (P2b),
// (P3) for every module in the stack, keyed by module name — the input to
// rta.System.VerifyAll.
func (st *Stack) Certificates(samples int) (map[string]rta.Certificate, error) {
	certs := make(map[string]rta.Certificate)
	if st.PrimitiveModule != nil {
		limits := controller.Limits{
			MaxAccel: st.Config.PlantParams.MaxAccel,
			MaxVel:   st.Config.PlantParams.MaxVel,
		}
		sc := controller.NewSafe(st.Analyzer, limits, st.Config.PrimitivePeriod)
		cert, err := reach.NewCertificate(reach.CertConfig{
			Analyzer: st.Analyzer,
			SCStep:   sc.ClosedLoopStep(),
			SCPeriod: st.Config.PrimitivePeriod,
			Samples:  samples,
			Seed:     st.Config.Seed,
		})
		if err != nil {
			return nil, fmt.Errorf("primitive certificate: %w", err)
		}
		certs[st.PrimitiveModule.Name()] = cert
	}
	if st.BatteryModule != nil {
		certs[st.BatteryModule.Name()] = batteryCertificate(st.Monitor)
	}
	if st.PlannerModule != nil {
		certs[st.PlannerModule.Name()] = plannerCertificate(st.Config)
	}
	return certs, nil
}

// batteryCertificate discharges the battery module's obligations with
// closed-form arguments over the discharge model.
func batteryCertificate(mon *battery.Monitor) rta.Certificate {
	return reach.StaticCertificate{
		// (P2a): under the landing SC, charge only decreases by at most
		// Tmax before touchdown; the switch fired while bt ≥ Tmax + cost*,
		// so bt > 0 throughout: φsafe is invariant.
		P2a: func() error {
			if mon.Tmax() <= 0 {
				return fmt.Errorf("non-positive landing budget Tmax")
			}
			return nil
		},
		// (P2b): φsafer = bt > 85% requires recharge; the obligation is
		// vacuous in-flight (the paper's module stays in SC after landing,
		// returning to AC only when "sufficiently charged").
		P2b: func() error { return nil },
		// (P3): from bt > 85%, any control discharges at most cost* ≪ 85%
		// over 2Δ, so bt > 0 still holds.
		P3: func() error {
			if mon.CostStar() >= mon.SaferThreshold() {
				return fmt.Errorf("cost* = %v exceeds φsafer threshold %v", mon.CostStar(), mon.SaferThreshold())
			}
			return nil
		},
	}
}

// plannerCertificate discharges the planner module's obligations: the SC is
// the certified A* planner whose every output is validated (safe by
// construction), giving (P2a) and (P2b); (P3) follows from the 2Δ·vmax
// travel-distance guard in the module's predicates.
func plannerCertificate(cfg StackConfig) rta.Certificate {
	return reach.StaticCertificate{
		P2a: func() error { return nil },
		P2b: func() error { return nil },
		P3: func() error {
			if cfg.PlantParams.MaxVel <= 0 {
				return fmt.Errorf("MaxVel must be positive")
			}
			return nil
		},
	}
}
