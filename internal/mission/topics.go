// Package mission wires the drone surveillance software stack of Figure 8:
// a surveillance application node, an RTA-protected motion planner (φplan),
// a battery-safety RTA module (φbat) and an RTA-protected motion-primitive
// module (φmpr), communicating over publish-subscribe topics. It provides
// the node implementations, the module declarations with their predicates,
// and stack builders used by the simulations, examples and benchmarks.
package mission

import (
	"repro/internal/geom"
	"repro/internal/plan"
	"repro/internal/plant"
	"repro/internal/pubsub"
)

// Topic names of the stack. A topic is an abstraction of a communication
// channel (Section II-B).
const (
	// TopicDroneState carries the trusted state estimate (plant.State).
	// Published by the environment (the state estimators are trusted,
	// Section II-A).
	TopicDroneState = pubsub.TopicName("drone/state")
	// TopicMissionTarget carries the next surveillance target (geom.Vec3),
	// published by the application node.
	TopicMissionTarget = pubsub.TopicName("mission/target")
	// TopicPlan carries the current motion plan (plan.Plan) from the
	// RTA-protected planner module.
	TopicPlan = pubsub.TopicName("plan/current")
	// TopicActivePlan carries the plan actually executed (ActivePlan),
	// output of the battery-safety module: under nominal battery it
	// forwards TopicPlan; in battery-SC mode it is a landing plan.
	TopicActivePlan = pubsub.TopicName("plan/active")
	// TopicWaypoint carries the current waypoint command (Waypoint) from
	// the waypoint manager to the motion primitives.
	TopicWaypoint = pubsub.TopicName("wp/target")
	// TopicCmd carries the commanded acceleration (geom.Vec3) from the
	// motion-primitive module to the plant.
	TopicCmd = pubsub.TopicName("cmd/accel")
)

// ActivePlan is the value carried by TopicActivePlan: the waypoints to
// execute plus whether this is a battery-safety landing plan.
type ActivePlan struct {
	Waypoints plan.Plan
	Landing   bool
	// Seq increments on every distinct plan, letting consumers detect
	// replacement cheaply.
	Seq uint64
}

// Waypoint is the value carried by TopicWaypoint: the segment of the
// reference trajectory currently being tracked.
type Waypoint struct {
	// From and Target delimit the current reference segment.
	From, Target geom.Vec3
	// Land is set while executing a landing plan: touching down at Target
	// is intended, not a failure.
	Land bool
	// Valid is false until a plan is available.
	Valid bool
}

// droneState extracts the plant state from a valuation, reporting false
// until the environment has published one.
func droneState(v pubsub.Valuation) (plant.State, bool) {
	raw, ok := v[TopicDroneState]
	if !ok || raw == nil {
		return plant.State{}, false
	}
	st, ok := raw.(plant.State)
	return st, ok
}

// missionTarget extracts the current mission target.
func missionTarget(v pubsub.Valuation) (geom.Vec3, bool) {
	raw, ok := v[TopicMissionTarget]
	if !ok || raw == nil {
		return geom.Vec3{}, false
	}
	t, ok := raw.(geom.Vec3)
	return t, ok
}

// currentPlan extracts the planner module's output plan.
func currentPlan(v pubsub.Valuation) (plan.Plan, bool) {
	raw, ok := v[TopicPlan]
	if !ok || raw == nil {
		return nil, false
	}
	p, ok := raw.(plan.Plan)
	return p, ok && len(p) > 0
}

// activePlan extracts the battery module's output plan.
func activePlan(v pubsub.Valuation) (ActivePlan, bool) {
	raw, ok := v[TopicActivePlan]
	if !ok || raw == nil {
		return ActivePlan{}, false
	}
	p, ok := raw.(ActivePlan)
	return p, ok && len(p.Waypoints) > 0
}

// waypoint extracts the current waypoint command.
func waypoint(v pubsub.Valuation) (Waypoint, bool) {
	raw, ok := v[TopicWaypoint]
	if !ok || raw == nil {
		return Waypoint{}, false
	}
	w, ok := raw.(Waypoint)
	return w, ok && w.Valid
}
