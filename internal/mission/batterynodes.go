package mission

import (
	"fmt"
	"time"

	"repro/internal/battery"
	"repro/internal/geom"
	"repro/internal/node"
	"repro/internal/pubsub"
	"repro/internal/rta"
)

// batteryFwdState tracks plan sequence numbers for the battery AC node.
type batteryFwdState struct {
	seq      uint64
	lastPlan string // fingerprint of the last forwarded plan
}

// NewBatteryACNode builds the battery module's advanced controller: a node
// that receives the current motion plan from the planner and simply forwards
// it to the motion primitives (Section V-B).
func NewBatteryACNode(name string, period time.Duration) (*node.Node, error) {
	step := func(st node.State, in pubsub.Valuation) (node.State, pubsub.Valuation, error) {
		s, ok := st.(*batteryFwdState)
		if !ok {
			return nil, nil, fmt.Errorf("battery AC: bad state type %T", st)
		}
		p, havePlan := currentPlan(in)
		if !havePlan {
			return s, nil, nil
		}
		next := *s
		fp := fingerprint(p)
		if fp != s.lastPlan {
			next.seq++
			next.lastPlan = fp
		}
		out := ActivePlan{Waypoints: p.Clone(), Landing: false, Seq: next.seq}
		return &next, pubsub.Valuation{TopicActivePlan: out}, nil
	}
	return node.New(
		name,
		period,
		[]pubsub.TopicName{TopicPlan, TopicDroneState},
		[]pubsub.TopicName{TopicActivePlan},
		step,
		node.WithInit(func() node.State { return &batteryFwdState{} }),
	)
}

// landerState remembers the fixed touchdown point chosen when the lander
// engaged, so the landing plan does not chase the drifting drone.
type landerState struct {
	engaged bool
	site    geom.Vec3
	seq     uint64
	plan    []geom.Vec3
}

// descentProfile builds a stepped landing plan: hold position laterally and
// descend in 0.6 m increments, so the (possibly aggressive) motion primitive
// executing it never builds up a dangerous sink rate — part of what makes
// the lander a certified safe controller.
func descentProfile(from, site geom.Vec3) []geom.Vec3 {
	wps := []geom.Vec3{from, geom.V(site.X, site.Y, from.Z)}
	z := from.Z
	for z-0.6 > site.Z {
		z -= 0.6
		wps = append(wps, geom.V(site.X, site.Y, z))
	}
	return append(wps, site)
}

// NewBatteryLanderNode builds the battery module's certified safe
// controller: a planner that safely lands the drone from its current
// position (Section V-B). It publishes a landing plan: descend in place to
// the landing altitude.
func NewBatteryLanderNode(name string, period time.Duration, landingZ float64) (*node.Node, error) {
	if landingZ <= 0 {
		return nil, fmt.Errorf("battery lander: landingZ must be positive")
	}
	step := func(st node.State, in pubsub.Valuation) (node.State, pubsub.Valuation, error) {
		s, ok := st.(*landerState)
		if !ok {
			return nil, nil, fmt.Errorf("battery lander: bad state type %T", st)
		}
		ds, haveState := droneState(in)
		if !haveState {
			return s, nil, nil
		}
		next := *s
		if !next.engaged {
			next.engaged = true
			// Landing-plan sequence numbers live in their own range so they
			// never collide with the AC's forwarded-plan sequence numbers.
			next.seq = 1 << 62
			next.site = geom.V(ds.Pos.X, ds.Pos.Y, landingZ)
			next.plan = descentProfile(ds.Pos, next.site)
		}
		p := ActivePlan{
			Waypoints: next.plan,
			Landing:   true,
			Seq:       next.seq,
		}
		return &next, pubsub.Valuation{TopicActivePlan: p}, nil
	}
	return node.New(
		name,
		period,
		[]pubsub.TopicName{TopicDroneState},
		[]pubsub.TopicName{TopicActivePlan},
		step,
		node.WithInit(func() node.State { return &landerState{} }),
	)
}

// NewBatteryModule declares the battery-safety RTA module guaranteeing φbat
// with the predicates of the battery monitor: ttf2Δ(bt) = bt − cost* < Tmax,
// φsafer = bt > 85%, φsafe = bt > 0 (or landed).
func NewBatteryModule(ac, sc *node.Node, mon *battery.Monitor) (*rta.Module, error) {
	if mon == nil {
		return nil, fmt.Errorf("battery module: nil monitor")
	}
	return rta.NewModule(rta.Decl{
		Name:      "battery-safety",
		AC:        ac,
		SC:        sc,
		Delta:     mon.Delta(),
		Monitored: []pubsub.TopicName{TopicDroneState},
		TTF2Delta: func(v pubsub.Valuation) bool {
			ds, ok := droneState(v)
			if !ok {
				return true // unknown charge: fail safe
			}
			return mon.TTF2Delta(ds.Battery)
		},
		InSafer: func(v pubsub.Valuation) bool {
			ds, ok := droneState(v)
			if !ok {
				return false
			}
			return mon.InSafer(ds.Battery)
		},
		Safe: func(v pubsub.Valuation) bool {
			ds, ok := droneState(v)
			if !ok {
				return true
			}
			return mon.Safe(ds.Battery, ds.Landed)
		},
	})
}

// fingerprint cheaply summarises a waypoint list for change detection.
func fingerprint(pts []geom.Vec3) string {
	if len(pts) == 0 {
		return ""
	}
	first, last := pts[0], pts[len(pts)-1]
	return fmt.Sprintf("%d|%.2f,%.2f,%.2f|%.2f,%.2f,%.2f",
		len(pts), first.X, first.Y, first.Z, last.X, last.Y, last.Z)
}
