package live

import (
	"math"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/node"
	"repro/internal/obs"
	"repro/internal/pubsub"
	"repro/internal/rta"
	"repro/internal/runtime"
)

// The live tests run a 1D rover (walls at 0 and 100) with millisecond
// periods so a fraction of a wall-clock second covers many control cycles.
// Physics is itself a plain node ("plant") owning the rover state — the
// whole closed loop runs as concurrent goroutines. Run with -race.

const (
	lAccel  = 200.0 // fast dynamics so wall-clock tests stay short
	lVmax   = 50.0
	lHi     = 40.0
	lMargin = 1.0
	lTick   = time.Millisecond
	lDelta  = 4 * time.Millisecond
)

type lrover struct{ x, v float64 }

func lBrake(v float64) float64 { return v * v / (2 * lAccel) }

func lMaxDisp(v, t float64) float64 {
	v = math.Min(v, lVmax)
	t1 := (lVmax - v) / lAccel
	var d float64
	if t <= t1 {
		d = v*t + 0.5*lAccel*t*t
	} else {
		d = v*t1 + 0.5*lAccel*t1*t1 + lVmax*(t-t1)
	}
	return math.Max(0, d)
}

func lTTF(x, v float64, horizon float64) bool {
	vHi := math.Min(lVmax, v+lAccel*horizon)
	hi := x + lMaxDisp(v, horizon) + lBrake(math.Max(vHi, 0))
	return hi > lHi-lMargin || x-lBrake(math.Max(-v, 0)) < lMargin
}

func buildLiveSystem(t *testing.T) *rta.System {
	t.Helper()
	stateOf := func(in pubsub.Valuation) (lrover, bool) {
		raw, ok := in["rover/state"]
		if !ok || raw == nil {
			return lrover{}, false
		}
		r, ok := raw.(lrover)
		return r, ok
	}
	ac, err := node.New("r.ac", lTick, []pubsub.TopicName{"rover/state"}, []pubsub.TopicName{"rover/cmd"},
		func(st node.State, _ pubsub.Valuation) (node.State, pubsub.Valuation, error) {
			return st, pubsub.Valuation{"rover/cmd": lAccel}, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	sc, err := node.New("r.sc", lTick, []pubsub.TopicName{"rover/state"}, []pubsub.TopicName{"rover/cmd"},
		func(st node.State, in pubsub.Valuation) (node.State, pubsub.Valuation, error) {
			r, ok := stateOf(in)
			if !ok {
				return st, pubsub.Valuation{"rover/cmd": 0.0}, nil
			}
			u := math.Max(-lAccel, math.Min(lAccel, -r.v/lTick.Seconds()))
			return st, pubsub.Valuation{"rover/cmd": u}, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	mod, err := rta.NewModule(rta.Decl{
		Name:  "r",
		AC:    ac,
		SC:    sc,
		Delta: lDelta,
		TTF2Delta: func(v pubsub.Valuation) bool {
			r, ok := stateOf(v)
			return !ok || lTTF(r.x, r.v, (2*lDelta).Seconds())
		},
		InSafer: func(v pubsub.Valuation) bool {
			r, ok := stateOf(v)
			return ok && !lTTF(r.x, r.v, (4*lDelta).Seconds())
		},
		Safe: func(v pubsub.Valuation) bool {
			r, ok := stateOf(v)
			return !ok || (r.x >= lMargin/2 && r.x <= lHi-lMargin/2)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	// The plant node integrates the rover at 1ms and publishes the state.
	plantNode, err := node.New("plant", lTick, []pubsub.TopicName{"rover/cmd"}, []pubsub.TopicName{"rover/state"},
		func(st node.State, in pubsub.Valuation) (node.State, pubsub.Valuation, error) {
			r, _ := st.(lrover)
			u := 0.0
			if raw := in["rover/cmd"]; raw != nil {
				if v, ok := raw.(float64); ok {
					u = math.Max(-lAccel, math.Min(lAccel, v))
				}
			}
			dt := lTick.Seconds()
			r.v = math.Max(-lVmax, math.Min(lVmax, r.v+u*dt))
			r.x += r.v * dt
			return r, pubsub.Valuation{"rover/state": r}, nil
		},
		node.WithInit(func() node.State { return lrover{x: 10} }))
	if err != nil {
		t.Fatal(err)
	}
	sys, err := rta.NewSystem([]*rta.Module{mod}, []*node.Node{plantNode})
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestLiveRunnerKeepsRoverSafe(t *testing.T) {
	sys := buildLiveSystem(t)
	var switchCount atomic.Int64
	r, err := New(Config{
		System:   sys,
		OnSwitch: func(runtime.Switch) { switchCount.Add(1) },
	})
	if err != nil {
		t.Fatal(err)
	}
	r.Start()
	deadline := time.After(900 * time.Millisecond)
	tick := time.NewTicker(10 * time.Millisecond)
	defer tick.Stop()
	worst := 0.0
loop:
	for {
		select {
		case <-deadline:
			break loop
		case <-tick.C:
			snap := r.Snapshot()
			if raw := snap["rover/state"]; raw != nil {
				rv := raw.(lrover)
				if rv.x > worst {
					worst = rv.x
				}
				if rv.x > lHi || rv.x < 0 {
					r.Stop()
					t.Fatalf("rover escaped live: x=%v", rv.x)
				}
			}
		}
	}
	r.Stop()
	// From x=10 toward the wall at 40 the AC covers the distance well within
	// the run; the RTA must have parked it inside the wall margin.
	if worst < 20 {
		t.Errorf("rover made little progress under the live AC: peak x=%v", worst)
	}
	if worst > lHi {
		t.Errorf("rover pierced the wall: peak x=%v", worst)
	}
	if switchCount.Load() == 0 {
		t.Error("no mode switches observed live")
	}
	if _, ok := r.Mode("r"); !ok {
		t.Error("Mode lookup failed")
	}
	// Stop is idempotent and Start after Stop is a no-op (Once).
	r.Stop()
}

func TestLiveRunnerValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("nil system accepted")
	}
	sys := buildLiveSystem(t)
	if _, err := New(Config{
		System:    sys,
		EnvTopics: []pubsub.Topic{{Name: "x"}, {Name: "x"}},
	}); err == nil {
		t.Error("duplicate env topic accepted")
	}
}

func TestLiveSetTopic(t *testing.T) {
	sys := buildLiveSystem(t)
	r, err := New(Config{System: sys})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.SetTopic("rover/state", lrover{x: 42}); err != nil {
		t.Fatal(err)
	}
	snap := r.Snapshot()
	if rv := snap["rover/state"].(lrover); rv.x != 42 {
		t.Errorf("SetTopic did not stick: %v", rv)
	}
	if err := r.SetTopic("ghost", 1); err == nil {
		t.Error("undeclared topic accepted")
	}
}

// TestLiveObserverStream: observers see RunStart, an ordered per-module
// switch stream delivered from a single goroutine (a non-concurrency-safe
// sink like the recorder is legal), and a final RunEnd after Stop. Run with
// -race this proves the dispatcher serialises delivery.
func TestLiveObserverStream(t *testing.T) {
	sys := buildLiveSystem(t)
	rec := obs.NewRecorder(1 << 16)
	r, err := New(Config{System: sys, Observers: []obs.Observer{rec}})
	if err != nil {
		t.Fatal(err)
	}
	r.Start()
	time.Sleep(500 * time.Millisecond)
	r.Stop()
	r.Stop() // idempotent: must not emit a second RunEnd

	events := rec.Events()
	if len(events) < 3 {
		t.Fatalf("only %d events recorded", len(events))
	}
	start, ok := events[0].(obs.RunStart)
	if !ok {
		t.Fatalf("stream starts with %T, want RunStart", events[0])
	}
	if len(start.Modules) != 1 || start.Modules[0] != "r" {
		t.Errorf("RunStart.Modules = %v", start.Modules)
	}
	ends := 0
	var lastTo rta.Mode = rta.ModeSC
	for _, e := range events[1:] {
		switch ev := e.(type) {
		case obs.RunEnd:
			ends++
		case obs.ModeSwitch:
			// Per-module alternation: each switch leaves the mode the
			// previous one entered — order survived the async dispatch.
			if ev.From != lastTo {
				t.Fatalf("out-of-order switch: from %v after %v", ev.From, lastTo)
			}
			lastTo = ev.To
		default:
			t.Fatalf("unexpected live event %T", e)
		}
	}
	if ends != 1 {
		t.Fatalf("RunEnd events = %d, want exactly 1", ends)
	}
	if _, ok := events[len(events)-1].(obs.RunEnd); !ok {
		t.Errorf("stream ends with %T, want RunEnd", events[len(events)-1])
	}
	if lastTo == rta.ModeSC && len(events) == 2 {
		t.Error("no switches observed; the ordering check is vacuous")
	}
}
