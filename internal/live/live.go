// Package live executes an RTA system in real time: one goroutine per node,
// driven by OS timers at the node's declared period — the deployment shape
// of the paper's generated C runtime ("the periodic behavior of each node
// was implemented using OS timers"). The discrete-event executor in
// internal/runtime is the reference semantics used for testing and model
// checking; this runner is the bridge toward running the same node graph on
// an actual robot, where jitter and preemption are real rather than
// simulated.
//
// Every node goroutine performs the read → compute → publish step of the
// paper's programming model against a mutex-guarded topic store; decision
// modules additionally update the shared output-enable map, so exactly one
// of {AC, SC} publishes — the same OE discipline as the reference semantics,
// enforced under concurrency.
package live

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/node"
	"repro/internal/obs"
	"repro/internal/pubsub"
	"repro/internal/rta"
	"repro/internal/runtime"
)

// Config configures a live runner.
type Config struct {
	// System is the node graph to execute.
	System *rta.System
	// EnvTopics declares environment-input topics with their defaults.
	EnvTopics []pubsub.Topic
	// OnSwitch, when set, is invoked (on a DM's goroutine) for every mode
	// change. It must be fast and must not call back into the runner.
	OnSwitch func(runtime.Switch)
	// Observers receive the runner's event stream: obs.RunStart on Start,
	// obs.ModeSwitch for every mode change and obs.RunEnd on Stop.
	// Timestamps are wall-clock durations since Start. Events are delivered
	// from a single dispatcher goroutine in emission order (so observers
	// need not be concurrency-safe and a slow consumer cannot stall a DM
	// tick), through a bounded queue: if a consumer falls far enough behind
	// to fill it, mode-switch events are dropped rather than delaying the
	// control path — this is the real-time runner, not the reference
	// semantics. RunStart/RunEnd are never dropped, and Stop flushes the
	// queue before returning.
	Observers []obs.Observer
}

// eventQueueCap bounds the live runner's observer dispatch queue.
const eventQueueCap = 1024

// Runner executes the system until Stop is called. Create with New; a
// Runner must not be copied.
type Runner struct {
	sys      *rta.System
	onSwitch func(runtime.Switch)
	byKind   [obs.KindCount][]obs.Observer

	mu       sync.Mutex
	store    *pubsub.Store
	oe       map[string]bool
	modes    map[string]rta.DMState
	switches []runtime.Switch
	started  time.Time

	startOnce sync.Once
	stopOnce  sync.Once
	endOnce   sync.Once
	stop      chan struct{}
	wg        sync.WaitGroup

	// events feeds the single dispatcher goroutine; nil when no observers
	// are attached. dispatchDone closes when the dispatcher has drained.
	events       chan obs.Event
	dispatchDone chan struct{}
}

// New builds a runner in the initial configuration: every module in SC mode
// with the SC outputs enabled.
func New(cfg Config) (*Runner, error) {
	if cfg.System == nil {
		return nil, errors.New("live: nil system")
	}
	declared := make(map[pubsub.TopicName]bool, len(cfg.EnvTopics))
	topics := make([]pubsub.Topic, 0, len(cfg.EnvTopics))
	for _, t := range cfg.EnvTopics {
		if declared[t.Name] {
			return nil, fmt.Errorf("live: duplicate environment topic %q", t.Name)
		}
		declared[t.Name] = true
		topics = append(topics, t)
	}
	for _, t := range cfg.System.Topics() {
		if !declared[t] {
			declared[t] = true
			topics = append(topics, pubsub.Topic{Name: t})
		}
	}
	store, err := pubsub.NewStore(topics...)
	if err != nil {
		return nil, fmt.Errorf("live: topic store: %w", err)
	}
	r := &Runner{
		sys:      cfg.System,
		onSwitch: cfg.OnSwitch,
		byKind:   obs.ByKind(cfg.Observers),
		store:    store,
		oe:       make(map[string]bool),
		modes:    make(map[string]rta.DMState),
		stop:     make(chan struct{}),
	}
	for dm, ac := range cfg.System.ACNodes() {
		r.oe[ac] = false
		r.oe[cfg.System.SCNodes()[dm]] = true
	}
	for _, m := range cfg.System.Modules() {
		r.modes[m.Name()] = m.InitDMState()
	}
	if len(cfg.Observers) > 0 {
		r.events = make(chan obs.Event, eventQueueCap)
		r.dispatchDone = make(chan struct{})
		go r.dispatch()
	}
	return r, nil
}

// dispatch is the single observer-delivery goroutine: events arrive in
// emission order and each observer sees them sequentially.
func (r *Runner) dispatch() {
	defer close(r.dispatchDone)
	for e := range r.events {
		obs.Emit(r.byKind[e.Kind()], e)
	}
}

// Start launches one goroutine per node. It is idempotent.
func (r *Runner) Start() {
	r.startOnce.Do(func() {
		r.mu.Lock()
		r.started = time.Now()
		r.mu.Unlock()
		if r.events != nil && len(r.byKind[obs.KindRunStart]) > 0 {
			modules := make([]string, 0, len(r.sys.Modules()))
			for _, m := range r.sys.Modules() {
				modules = append(modules, m.Name())
			}
			// Blocking send: the queue is empty before any node runs.
			r.events <- obs.RunStart{Modules: modules}
		}
		for _, name := range r.sys.NodeNames() {
			n, _ := r.sys.Node(name)
			r.wg.Add(1)
			go r.runNode(n)
		}
	})
}

// Stop signals every node goroutine to exit and waits for them.
func (r *Runner) Stop() {
	r.stopOnce.Do(func() { close(r.stop) })
	r.wg.Wait()
	r.endOnce.Do(func() {
		if r.events == nil {
			return
		}
		r.mu.Lock()
		started := r.started
		r.mu.Unlock()
		var elapsed time.Duration
		if !started.IsZero() {
			elapsed = time.Since(started)
		}
		// Every node goroutine has exited, so this send cannot race new
		// emissions; closing then flushes the dispatcher.
		r.events <- obs.RunEnd{T: elapsed}
		close(r.events)
		<-r.dispatchDone
	})
}

// Mode returns the current mode of the named module.
func (r *Runner) Mode(module string) (rta.Mode, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	m, ok := r.modes[module]
	return m.Mode, ok
}

// Switches returns a copy of the recorded mode changes.
func (r *Runner) Switches() []runtime.Switch {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]runtime.Switch, len(r.switches))
	copy(out, r.switches)
	return out
}

// Snapshot returns a copy of the current topic valuation.
func (r *Runner) Snapshot() pubsub.Valuation {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.store.Snapshot()
}

// SetTopic updates a topic from the environment (sensors, test harnesses).
func (r *Runner) SetTopic(name pubsub.TopicName, v pubsub.Value) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.store.Set(name, v)
}

// runNode is the per-node goroutine: a ticker at the node's period drives
// the read → compute → publish step.
func (r *Runner) runNode(n *node.Node) {
	defer r.wg.Done()
	// Input plumbing owned by this goroutine: dense topic IDs (the interner
	// is immutable, so resolving them needs no lock) and a reusable input
	// valuation refilled every tick instead of allocated.
	inIDs, err := r.store.IDs(n.Inputs())
	if err != nil {
		return // a node whose inputs are undeclared can never fire
	}
	inBuf := make(pubsub.Valuation, len(inIDs))
	if phase := n.Schedule().Phase; phase > 0 {
		select {
		case <-time.After(phase):
		case <-r.stop:
			return
		}
	}
	ticker := time.NewTicker(n.Period())
	defer ticker.Stop()
	local := n.InitState()
	mod, isDM := r.sys.IsDM(n.Name())
	for {
		select {
		case <-ticker.C:
			var err error
			local, err = r.fire(n, local, mod, isDM, inIDs, inBuf)
			if err != nil {
				// A failing node stops firing; the RTA discipline keeps the
				// rest of the system safe (its partner controller is gated
				// by OE, and a dead AC is exactly the fault the DM covers).
				return
			}
		case <-r.stop:
			return
		}
	}
}

// fire performs one step of the node under the runner's lock discipline.
// inIDs and inBuf are owned by the node's goroutine (filled under the lock,
// read outside it, never shared).
func (r *Runner) fire(n *node.Node, local node.State, mod *rta.Module, isDM bool, inIDs []pubsub.TopicID, inBuf pubsub.Valuation) (node.State, error) {
	r.mu.Lock()
	if isDM {
		// The runner's mode map is the authoritative DM state: a coordinated
		// demotion may have overridden the goroutine's private copy since
		// the last tick.
		local = r.modes[mod.Name()]
	}
	r.store.ReadInto(inIDs, inBuf)
	r.mu.Unlock()

	next, out, err := n.Step(local, inBuf)
	if err != nil {
		return local, err
	}

	r.mu.Lock()
	defer r.mu.Unlock()
	if isDM {
		dm, ok := next.(rta.DMState)
		if !ok {
			return local, fmt.Errorf("live: DM %q returned %T", n.Name(), next)
		}
		prev := r.modes[mod.Name()]
		r.modes[mod.Name()] = dm
		r.oe[mod.AC().Name()] = dm.Mode == rta.ModeAC
		r.oe[mod.SC().Name()] = dm.Mode != rta.ModeAC
		if dm.Mode != prev.Mode {
			r.recordSwitchLocked(runtime.Switch{
				Time:   time.Since(r.started),
				Module: mod.Name(),
				From:   prev.Mode,
				To:     dm.Mode,
				Reason: dm.Reason,
			})
			if dm.Mode == rta.ModeSC {
				r.forceCoordinatedLocked(mod)
			}
		}
		return next, nil
	}
	if en, gated := r.oe[n.Name()]; !gated || en {
		if err := r.store.Write(out); err != nil {
			return local, err
		}
	}
	return next, nil
}

// forceCoordinatedLocked demotes coordinated partners; the caller holds mu.
func (r *Runner) forceCoordinatedLocked(trigger *rta.Module) {
	for _, partner := range r.sys.CoordinatedWith(trigger.Name()) {
		prev := r.modes[partner.Name()]
		if prev.Mode == rta.ModeSC {
			continue
		}
		r.modes[partner.Name()] = rta.DMState{Mode: rta.ModeSC, Reason: rta.ReasonCoordinated, Policy: prev.Policy}
		r.oe[partner.AC().Name()] = false
		r.oe[partner.SC().Name()] = true
		r.recordSwitchLocked(runtime.Switch{
			Time:        time.Since(r.started),
			Module:      partner.Name(),
			From:        prev.Mode,
			To:          rta.ModeSC,
			Reason:      rta.ReasonCoordinated,
			Coordinated: true,
		})
	}
}

// recordSwitchLocked appends a switch and dispatches the hook and observers
// outside the lock; the caller holds mu.
func (r *Runner) recordSwitchLocked(sw runtime.Switch) {
	r.switches = append(r.switches, sw)
	if r.onSwitch != nil {
		// Dispatch asynchronously so a slow hook cannot stall a DM tick.
		hook := r.onSwitch
		go hook(sw)
	}
	if r.events != nil && len(r.byKind[obs.KindModeSwitch]) > 0 {
		// Non-blocking: a consumer that has fallen eventQueueCap events
		// behind loses switch events rather than stalling the DM tick.
		select {
		case r.events <- obs.ModeSwitch{
			T: sw.Time, Module: sw.Module, From: sw.From, To: sw.To, Reason: sw.Reason, Coordinated: sw.Coordinated,
		}:
		default:
		}
	}
}
