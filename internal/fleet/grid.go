package fleet

import (
	"fmt"
	"time"

	"repro/internal/scenario"
	"repro/internal/sim"
)

// GridConfig describes a cartesian scenario sweep: every Spec × every
// Override × every seed becomes one independent mission.
type GridConfig struct {
	// Specs are the base scenarios of the sweep.
	Specs []scenario.Spec
	// Overrides are applied one at a time to every Spec; empty means the
	// identity (each Spec runs as declared).
	Overrides []scenario.Override
	// Seeds drive the per-mission randomness; empty defaults to {1}.
	Seeds []int64
	// Duration, when positive, overrides every Spec's default mission
	// length — how quick sweeps scale whole catalogs down.
	Duration time.Duration
}

// ScenarioGrid expands the grid into missions, in deterministic order
// (specs, then overrides, then seeds). Each mission's Build compiles its
// Spec inside the worker, so grid runs inherit the fleet engine's isolation
// and are deterministic at any worker count.
func ScenarioGrid(cfg GridConfig) []Mission {
	overrides := cfg.Overrides
	if len(overrides) == 0 {
		overrides = []scenario.Override{{}}
	}
	seeds := cfg.Seeds
	if len(seeds) == 0 {
		seeds = []int64{1}
	}
	missions := make([]Mission, 0, len(cfg.Specs)*len(overrides)*len(seeds))
	for _, base := range cfg.Specs {
		for _, ov := range overrides {
			spec := base.With(ov)
			if cfg.Duration > 0 {
				spec.Duration = cfg.Duration
			}
			for _, seed := range seeds {
				spec, seed := spec, seed
				missions = append(missions, Mission{
					Name:  fmt.Sprintf("%s/seed-%d", spec.Name, seed),
					Seed:  seed,
					Build: func() (sim.RunConfig, error) { return spec.Build(seed) },
				})
			}
		}
	}
	return missions
}
