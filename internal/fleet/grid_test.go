package fleet

import (
	"context"
	"reflect"
	"testing"
	"time"

	"repro/internal/scenario"
	"repro/internal/sim"
)

// gridUnderTest is a small but genuinely cartesian sweep: 2 scenarios x 2
// overrides x 2 seeds.
func gridUnderTest() GridConfig {
	return GridConfig{
		Specs: []scenario.Spec{
			scenario.MustGet("surveillance-city"),
			scenario.MustGet("corner-hazard-tour"),
		},
		Overrides: []scenario.Override{
			{Name: "tight", Apply: func(sp *scenario.Spec) { sp.Hysteresis = 1.0 }},
			{Name: "loose", Apply: func(sp *scenario.Spec) { sp.Hysteresis = 4.0 }},
		},
		Seeds:    []int64{3, 104},
		Duration: 3 * time.Second,
	}
}

// TestScenarioGridShape pins the expansion order and naming the experiment
// result tables rely on (specs, then overrides, then seeds).
func TestScenarioGridShape(t *testing.T) {
	missions := ScenarioGrid(gridUnderTest())
	if len(missions) != 8 {
		t.Fatalf("grid size = %d, want 2*2*2", len(missions))
	}
	wantNames := []string{
		"surveillance-city+tight/seed-3", "surveillance-city+tight/seed-104",
		"surveillance-city+loose/seed-3", "surveillance-city+loose/seed-104",
		"corner-hazard-tour+tight/seed-3", "corner-hazard-tour+tight/seed-104",
		"corner-hazard-tour+loose/seed-3", "corner-hazard-tour+loose/seed-104",
	}
	for i, m := range missions {
		if m.Name != wantNames[i] {
			t.Errorf("mission[%d] = %q, want %q", i, m.Name, wantNames[i])
		}
	}
	if missions[1].Seed != 104 {
		t.Errorf("mission[1].Seed = %d", missions[1].Seed)
	}
}

// TestScenarioGridDefaults: empty overrides/seeds degenerate to the identity
// sweep, and a zero Duration keeps each spec's own default.
func TestScenarioGridDefaults(t *testing.T) {
	missions := ScenarioGrid(GridConfig{Specs: []scenario.Spec{scenario.MustGet("surveillance-city")}})
	if len(missions) != 1 || missions[0].Name != "surveillance-city/seed-1" {
		t.Fatalf("degenerate grid = %+v", missions)
	}
	rcfg, err := missions[0].Build()
	if err != nil {
		t.Fatal(err)
	}
	if want := scenario.MustGet("surveillance-city").Duration; rcfg.Duration != want {
		t.Errorf("duration = %v, want the spec default %v", rcfg.Duration, want)
	}
}

// TestScenarioGridDeterministicAcrossWorkers: a grid batch must produce
// identical metrics at any worker count (run under -race, this also proves
// scenario compilation inside workers shares no mutable state).
func TestScenarioGridDeterministicAcrossWorkers(t *testing.T) {
	cfg := gridUnderTest()
	var baseline []sim.Metrics
	for _, workers := range []int{1, 4, 16} {
		rep := Run(context.Background(), ScenarioGrid(cfg), Options{Workers: workers})
		if err := rep.FirstErr(); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		metrics := make([]sim.Metrics, len(rep.Results))
		for i, res := range rep.Results {
			metrics[i] = res.Metrics
		}
		if baseline == nil {
			baseline = metrics
			continue
		}
		if !reflect.DeepEqual(baseline, metrics) {
			t.Errorf("workers=%d: metrics differ from the 1-worker baseline", workers)
		}
	}
}
