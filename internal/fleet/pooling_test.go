package fleet

import (
	"bytes"
	"context"
	"reflect"
	"runtime"
	"testing"
	"time"

	soterobs "repro/internal/obs"

	"repro/internal/geom"
	"repro/internal/mission"
	"repro/internal/plant"
	"repro/internal/sim"
)

// pooledOrFreshMission builds the standard sweep mission with the artifact
// pool either enabled (the default Build path) or bypassed.
func pooledOrFreshMission(seed int64, fresh bool) (sim.RunConfig, error) {
	mcfg := mission.DefaultStackConfig(seed)
	mcfg.FreshArtifacts = fresh
	mcfg.App = mission.AppConfig{Points: []geom.Vec3{
		geom.V(3, 3, 2), geom.V(46, 46, 2),
	}}
	st, err := mission.Build(mcfg)
	if err != nil {
		return sim.RunConfig{}, err
	}
	return sim.RunConfig{
		Stack:           st,
		Initial:         plant.State{Pos: geom.V(3, 3, 2), Battery: 1},
		Duration:        5 * time.Second,
		Seed:            seed,
		CheckInvariants: true,
	}, nil
}

// pooledSweepStreams runs the 4-mission sweep and returns the per-mission
// JSONL event streams plus the results.
func pooledSweepStreams(t *testing.T, workers int, fresh bool) ([][]byte, []MissionResult) {
	t.Helper()
	const n = 4
	recs := make([]*soterobs.Recorder, n)
	missions := SeedSweep("pool", Seeds(17, n), func(seed int64) (sim.RunConfig, error) {
		return pooledOrFreshMission(seed, fresh)
	})
	for i := range missions {
		i := i
		build := missions[i].Build
		recs[i] = soterobs.NewRecorder(1 << 16)
		missions[i].Build = func() (sim.RunConfig, error) {
			cfg, err := build()
			cfg.Observers = append(cfg.Observers, recs[i])
			return cfg, err
		}
	}
	rep := Run(context.Background(), missions, Options{Workers: workers})
	if err := rep.FirstErr(); err != nil {
		t.Fatal(err)
	}
	out := make([][]byte, n)
	for i, rec := range recs {
		var buf bytes.Buffer
		w := soterobs.NewJSONLWriter(&buf)
		for _, e := range rec.Events() {
			w.OnEvent(e)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		if buf.Len() == 0 {
			t.Fatalf("mission %d recorded no events", i)
		}
		out[i] = buf.Bytes()
	}
	return out, rep.Results
}

// TestFleetPooledStacksByteIdenticalToFresh is the determinism gate on the
// mission artifact pool: sweeps whose stacks share pooled analyzers, grids
// and planners must produce event streams and reports byte-identical to
// sweeps that rebuild every artifact from scratch, at every worker count.
// Run under -race this also proves the pooled artifacts are safe to share
// across concurrent workers.
func TestFleetPooledStacksByteIdenticalToFresh(t *testing.T) {
	freshStreams, freshResults := pooledSweepStreams(t, 1, true)
	workerCounts := []int{1, 4, runtime.GOMAXPROCS(0)}
	for _, workers := range workerCounts {
		pooled, pooledResults := pooledSweepStreams(t, workers, false)
		for i := range freshStreams {
			if !bytes.Equal(freshStreams[i], pooled[i]) {
				t.Errorf("workers=%d mission %d: pooled event stream differs from fresh (%d vs %d bytes)",
					workers, i, len(pooled[i]), len(freshStreams[i]))
			}
		}
		for i := range freshResults {
			if !reflect.DeepEqual(freshResults[i].Metrics, pooledResults[i].Metrics) {
				t.Errorf("workers=%d mission %d: pooled metrics diverge from fresh:\n%+v\nvs\n%+v",
					workers, i, pooledResults[i].Metrics, freshResults[i].Metrics)
			}
			if !reflect.DeepEqual(freshResults[i].Switches, pooledResults[i].Switches) {
				t.Errorf("workers=%d mission %d: pooled switch logs diverge from fresh", workers, i)
			}
		}
	}
}
