package fleet

import (
	"errors"
	"fmt"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/geom"
	"repro/internal/mission"
	"repro/internal/plant"
	"repro/internal/sim"
)

// surveillanceMission builds a short, fully isolated surveillance run.
func surveillanceMission(seed int64) (sim.RunConfig, error) {
	mcfg := mission.DefaultStackConfig(seed)
	mcfg.App = mission.AppConfig{Points: []geom.Vec3{
		geom.V(3, 3, 2), geom.V(46, 46, 2),
	}}
	st, err := mission.Build(mcfg)
	if err != nil {
		return sim.RunConfig{}, err
	}
	return sim.RunConfig{
		Stack:           st,
		Initial:         plant.State{Pos: geom.V(3, 3, 2), Battery: 1},
		Duration:        5 * time.Second,
		Seed:            seed,
		CheckInvariants: true,
	}, nil
}

// TestFleetSmoke runs a small batch across several workers (under -race this
// proves per-run isolation: each worker builds its own stack, store,
// executor and RNG).
func TestFleetSmoke(t *testing.T) {
	missions := SeedSweep("smoke", Seeds(1, 6), surveillanceMission)
	rep := Run(missions, Options{Workers: 4})
	if err := rep.FirstErr(); err != nil {
		t.Fatal(err)
	}
	if rep.Missions != 6 || rep.Failed != 0 {
		t.Fatalf("missions=%d failed=%d", rep.Missions, rep.Failed)
	}
	if rep.Crashes != 0 {
		t.Errorf("protected missions crashed: %d", rep.Crashes)
	}
	if rep.SimTime < 6*5*time.Second {
		t.Errorf("aggregate sim time = %v, want ≥ 30s", rep.SimTime)
	}
	for i, res := range rep.Results {
		if res.Name != missions[i].Name || res.Seed != missions[i].Seed {
			t.Errorf("result %d out of order: %q seed %d", i, res.Name, res.Seed)
		}
		if res.Metrics.Duration == 0 {
			t.Errorf("result %d has no metrics", i)
		}
	}
	if got := rep.Format(); got == "" {
		t.Error("empty Format")
	}
}

// TestFleetDeterministic proves a batch's verdicts are identical at any
// worker count: per-run isolation means parallelism cannot change results.
func TestFleetDeterministic(t *testing.T) {
	run := func(workers int) []MissionResult {
		rep := Run(SeedSweep("det", Seeds(42, 4), surveillanceMission), Options{Workers: workers})
		if err := rep.FirstErr(); err != nil {
			t.Fatal(err)
		}
		return rep.Results
	}
	serial, parallel := run(1), run(4)
	for i := range serial {
		a, b := serial[i], parallel[i]
		if !reflect.DeepEqual(a.Metrics, b.Metrics) {
			t.Errorf("mission %d metrics diverge between 1 and 4 workers:\n%+v\nvs\n%+v", i, a.Metrics, b.Metrics)
		}
		if !reflect.DeepEqual(a.Switches, b.Switches) {
			t.Errorf("mission %d switch logs diverge", i)
		}
	}
}

// TestFleetAggregates checks the report's switch accounting against the
// per-result logs.
func TestFleetAggregates(t *testing.T) {
	missions := SeedSweep("agg", Seeds(7, 3), func(seed int64) (sim.RunConfig, error) {
		cfg, err := surveillanceMission(seed)
		cfg.Duration = 8 * time.Second
		return cfg, err
	})
	rep := Run(missions, Options{Workers: 2})
	if err := rep.FirstErr(); err != nil {
		t.Fatal(err)
	}
	wantDiseng := 0
	for _, res := range rep.Results {
		wantDiseng += res.Disengagements()
	}
	if rep.Disengagements != wantDiseng {
		t.Errorf("report disengagements = %d, switch logs say %d", rep.Disengagements, wantDiseng)
	}
	for _, name := range rep.SortedModuleNames() {
		s := rep.ModuleStats(name)
		if s.ACTime+s.SCTime == 0 {
			t.Errorf("module %q accumulated no mode time", name)
		}
	}
}

// TestFleetFailuresIsolated checks that one failing mission neither aborts
// the batch nor contaminates the other verdicts.
func TestFleetFailuresIsolated(t *testing.T) {
	boom := errors.New("boom")
	missions := []Mission{
		{Name: "ok-1", Seed: 1, Build: func() (sim.RunConfig, error) { return surveillanceMission(1) }},
		{Name: "bad", Seed: 2, Build: func() (sim.RunConfig, error) { return sim.RunConfig{}, boom }},
		{Name: "ok-2", Seed: 3, Build: func() (sim.RunConfig, error) { return surveillanceMission(3) }},
	}
	rep := Run(missions, Options{Workers: 3})
	if rep.Failed != 1 {
		t.Fatalf("failed = %d, want 1", rep.Failed)
	}
	if !errors.Is(rep.FirstErr(), boom) {
		t.Errorf("FirstErr = %v", rep.FirstErr())
	}
	if rep.Results[0].Err != nil || rep.Results[2].Err != nil {
		t.Error("healthy missions reported errors")
	}
	if rep.Results[1].Err == nil {
		t.Error("failing mission reported no error")
	}
}

func TestMapOrderAndBound(t *testing.T) {
	var inFlight, peak atomic.Int32
	const workers, n = 3, 20
	out, err := Map(workers, n, func(i int) (int, error) {
		cur := inFlight.Add(1)
		for {
			p := peak.Load()
			if cur <= p || peak.CompareAndSwap(p, cur) {
				break
			}
		}
		time.Sleep(time.Millisecond)
		inFlight.Add(-1)
		return i * i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
	if p := peak.Load(); p > workers {
		t.Errorf("peak concurrency %d exceeds bound %d", p, workers)
	}
}

func TestMapFirstErrorByIndex(t *testing.T) {
	_, err := Map(4, 10, func(i int) (int, error) {
		if i == 3 || i == 7 {
			return 0, fmt.Errorf("fail-%d", i)
		}
		return i, nil
	})
	if err == nil || err.Error() != "fail-3" {
		t.Fatalf("err = %v, want fail-3 (first by index)", err)
	}
}

func TestMapEmpty(t *testing.T) {
	out, err := Map[int](4, 0, func(i int) (int, error) { return 0, nil })
	if err != nil || out != nil {
		t.Fatalf("out=%v err=%v", out, err)
	}
}
