package fleet

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	soterobs "repro/internal/obs"

	"repro/internal/geom"
	"repro/internal/mission"
	"repro/internal/plant"
	"repro/internal/sim"
)

// surveillanceMission builds a short, fully isolated surveillance run.
func surveillanceMission(seed int64) (sim.RunConfig, error) {
	mcfg := mission.DefaultStackConfig(seed)
	mcfg.App = mission.AppConfig{Points: []geom.Vec3{
		geom.V(3, 3, 2), geom.V(46, 46, 2),
	}}
	st, err := mission.Build(mcfg)
	if err != nil {
		return sim.RunConfig{}, err
	}
	return sim.RunConfig{
		Stack:           st,
		Initial:         plant.State{Pos: geom.V(3, 3, 2), Battery: 1},
		Duration:        5 * time.Second,
		Seed:            seed,
		CheckInvariants: true,
	}, nil
}

// TestFleetSmoke runs a small batch across several workers (under -race this
// proves per-run isolation: each worker builds its own stack, store,
// executor and RNG).
func TestFleetSmoke(t *testing.T) {
	missions := SeedSweep("smoke", Seeds(1, 6), surveillanceMission)
	rep := Run(context.Background(), missions, Options{Workers: 4})
	if err := rep.FirstErr(); err != nil {
		t.Fatal(err)
	}
	if rep.Missions != 6 || rep.Failed != 0 {
		t.Fatalf("missions=%d failed=%d", rep.Missions, rep.Failed)
	}
	if rep.Crashes != 0 {
		t.Errorf("protected missions crashed: %d", rep.Crashes)
	}
	if rep.SimTime < 6*5*time.Second {
		t.Errorf("aggregate sim time = %v, want ≥ 30s", rep.SimTime)
	}
	for i, res := range rep.Results {
		if res.Name != missions[i].Name || res.Seed != missions[i].Seed {
			t.Errorf("result %d out of order: %q seed %d", i, res.Name, res.Seed)
		}
		if res.Metrics.Duration == 0 {
			t.Errorf("result %d has no metrics", i)
		}
	}
	if got := rep.Format(); got == "" {
		t.Error("empty Format")
	}
}

// TestFleetDeterministic proves a batch's verdicts are identical at any
// worker count: per-run isolation means parallelism cannot change results.
func TestFleetDeterministic(t *testing.T) {
	run := func(workers int) []MissionResult {
		rep := Run(context.Background(), SeedSweep("det", Seeds(42, 4), surveillanceMission), Options{Workers: workers})
		if err := rep.FirstErr(); err != nil {
			t.Fatal(err)
		}
		return rep.Results
	}
	serial, parallel := run(1), run(4)
	for i := range serial {
		a, b := serial[i], parallel[i]
		if !reflect.DeepEqual(a.Metrics, b.Metrics) {
			t.Errorf("mission %d metrics diverge between 1 and 4 workers:\n%+v\nvs\n%+v", i, a.Metrics, b.Metrics)
		}
		if !reflect.DeepEqual(a.Switches, b.Switches) {
			t.Errorf("mission %d switch logs diverge", i)
		}
	}
}

// TestFleetAggregates checks the report's switch accounting against the
// per-result logs.
func TestFleetAggregates(t *testing.T) {
	missions := SeedSweep("agg", Seeds(7, 3), func(seed int64) (sim.RunConfig, error) {
		cfg, err := surveillanceMission(seed)
		cfg.Duration = 8 * time.Second
		return cfg, err
	})
	rep := Run(context.Background(), missions, Options{Workers: 2})
	if err := rep.FirstErr(); err != nil {
		t.Fatal(err)
	}
	wantDiseng := 0
	for _, res := range rep.Results {
		wantDiseng += res.Disengagements()
	}
	if rep.Disengagements != wantDiseng {
		t.Errorf("report disengagements = %d, switch logs say %d", rep.Disengagements, wantDiseng)
	}
	for _, name := range rep.SortedModuleNames() {
		s := rep.ModuleStats(name)
		if s.ACTime+s.SCTime == 0 {
			t.Errorf("module %q accumulated no mode time", name)
		}
	}
}

// TestFleetFailuresIsolated checks that one failing mission neither aborts
// the batch nor contaminates the other verdicts.
func TestFleetFailuresIsolated(t *testing.T) {
	boom := errors.New("boom")
	missions := []Mission{
		{Name: "ok-1", Seed: 1, Build: func() (sim.RunConfig, error) { return surveillanceMission(1) }},
		{Name: "bad", Seed: 2, Build: func() (sim.RunConfig, error) { return sim.RunConfig{}, boom }},
		{Name: "ok-2", Seed: 3, Build: func() (sim.RunConfig, error) { return surveillanceMission(3) }},
	}
	rep := Run(context.Background(), missions, Options{Workers: 3})
	if rep.Failed != 1 {
		t.Fatalf("failed = %d, want 1", rep.Failed)
	}
	if !errors.Is(rep.FirstErr(), boom) {
		t.Errorf("FirstErr = %v", rep.FirstErr())
	}
	if rep.Results[0].Err != nil || rep.Results[2].Err != nil {
		t.Error("healthy missions reported errors")
	}
	if rep.Results[1].Err == nil {
		t.Error("failing mission reported no error")
	}
}

func TestMapOrderAndBound(t *testing.T) {
	var inFlight, peak atomic.Int32
	const workers, n = 3, 20
	out, err := Map(context.Background(), workers, n, func(_ context.Context, i int) (int, error) {
		cur := inFlight.Add(1)
		for {
			p := peak.Load()
			if cur <= p || peak.CompareAndSwap(p, cur) {
				break
			}
		}
		time.Sleep(time.Millisecond)
		inFlight.Add(-1)
		return i * i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
	if p := peak.Load(); p > workers {
		t.Errorf("peak concurrency %d exceeds bound %d", p, workers)
	}
}

func TestMapJoinsEveryError(t *testing.T) {
	_, err := Map(context.Background(), 4, 10, func(_ context.Context, i int) (int, error) {
		if i == 3 || i == 7 {
			return 0, fmt.Errorf("fail-%d", i)
		}
		return i, nil
	})
	if err == nil {
		t.Fatal("nil error from a failing Map")
	}
	// The contract is errors.Join of every per-index error, in index order:
	// no worker-level error can be silently dropped.
	msg := err.Error()
	if !strings.Contains(msg, "fail-3") || !strings.Contains(msg, "fail-7") {
		t.Fatalf("err = %v, want both fail-3 and fail-7", err)
	}
	if strings.Index(msg, "fail-3") > strings.Index(msg, "fail-7") {
		t.Errorf("errors out of index order: %v", err)
	}
}

func TestMapEmpty(t *testing.T) {
	out, err := Map[int](context.Background(), 4, 0, func(_ context.Context, i int) (int, error) { return 0, nil })
	if err != nil || out != nil {
		t.Fatalf("out=%v err=%v", out, err)
	}
}

// TestRunCancelledBatchContract: cancelling a batch leaves no silent
// zero-value "successes" — every mission either ran (and carries its own
// verdict or cancellation error) or is explicitly marked with the context's
// error — and FirstErr surfaces the cancellation.
func TestRunCancelledBatchContract(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{}, 64)
	missions := SeedSweep("cancel", Seeds(1, 12), func(seed int64) (sim.RunConfig, error) {
		started <- struct{}{}
		cfg, err := surveillanceMission(seed)
		cfg.Duration = time.Hour // far longer than the test; only cancellation ends it
		return cfg, err
	})
	go func() {
		<-started // at least one mission is in flight
		cancel()
	}()
	rep := Run(ctx, missions, Options{Workers: 2})
	if rep.Missions != len(missions) || len(rep.Results) != len(missions) {
		t.Fatalf("missions=%d results=%d, want %d", rep.Missions, len(rep.Results), len(missions))
	}
	if rep.Failed == 0 {
		t.Fatal("cancelled batch reported zero failures")
	}
	if err := rep.FirstErr(); !errors.Is(err, context.Canceled) {
		t.Fatalf("FirstErr = %v, want context.Canceled", err)
	}
	for i, res := range rep.Results {
		if res.Name != missions[i].Name || res.Seed != missions[i].Seed {
			t.Errorf("result %d lost its identity: %q seed %d", i, res.Name, res.Seed)
		}
		// A mission that reports success must have actually simulated.
		if res.Err == nil && res.Metrics.Duration == 0 {
			t.Errorf("result %d is a silent zero-value success", i)
		}
	}
}

// TestMapCancelledFeed: indices never handed to a worker fail with the
// context's error instead of silently returning zero values.
func TestMapCancelledFeed(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // cancelled before the feed starts
	out, err := Map(ctx, 2, 8, func(ctx context.Context, i int) (int, error) {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		return i + 1, nil
	})
	if len(out) != 8 {
		t.Fatalf("len(out) = %d", len(out))
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestFleetEventStreamsDeterministicAcrossWorkers: with a recorder attached
// to every mission, the per-mission event sequences are identical at any
// worker count — the event stream inherits the fleet engine's isolation.
// Run under -race this also proves observer plumbing shares no state.
func TestFleetEventStreamsDeterministicAcrossWorkers(t *testing.T) {
	streams := func(workers int) [][]byte {
		recs := make([]*soterobs.Recorder, 4)
		missions := SeedSweep("stream", Seeds(9, 4), surveillanceMission)
		for i := range missions {
			i := i
			build := missions[i].Build
			recs[i] = soterobs.NewRecorder(1 << 16)
			missions[i].Build = func() (sim.RunConfig, error) {
				cfg, err := build()
				cfg.Observers = append(cfg.Observers, recs[i])
				return cfg, err
			}
		}
		rep := Run(context.Background(), missions, Options{Workers: workers})
		if err := rep.FirstErr(); err != nil {
			t.Fatal(err)
		}
		out := make([][]byte, len(recs))
		for i, rec := range recs {
			var buf bytes.Buffer
			w := soterobs.NewJSONLWriter(&buf)
			for _, e := range rec.Events() {
				w.OnEvent(e)
			}
			if err := w.Close(); err != nil {
				t.Fatal(err)
			}
			if buf.Len() == 0 {
				t.Fatalf("mission %d recorded no events", i)
			}
			out[i] = buf.Bytes()
		}
		return out
	}
	serial, parallel := streams(1), streams(4)
	for i := range serial {
		if !bytes.Equal(serial[i], parallel[i]) {
			t.Errorf("mission %d event streams diverge between 1 and 4 workers (%d vs %d bytes)",
				i, len(serial[i]), len(parallel[i]))
		}
	}
}

// TestReuseAndOnResultHooks: missions served through Options.Reuse skip Build
// entirely, come back marked Cached under their own name and seed, and both
// fresh and reused verdicts flow through OnResult and into the aggregates.
func TestReuseAndOnResultHooks(t *testing.T) {
	missions := SeedSweep("hook", Seeds(1, 4), surveillanceMission)
	var built atomic.Int32
	for i := range missions {
		build := missions[i].Build
		missions[i].Build = func() (sim.RunConfig, error) {
			built.Add(1)
			return build()
		}
	}
	canned := MissionResult{
		Name:    "stale-name-must-be-overwritten",
		Metrics: sim.Metrics{Duration: 5 * time.Second, DistanceFlown: 123},
	}
	var observed atomic.Int32
	var cachedSeen atomic.Int32
	rep := Run(context.Background(), missions, Options{
		Workers: 2,
		Reuse: func(i int, m Mission) (MissionResult, bool) {
			return canned, i%2 == 0 // even missions come from the "cache"
		},
		OnResult: func(i int, m Mission, res MissionResult) {
			observed.Add(1)
			if res.Cached {
				cachedSeen.Add(1)
			}
		},
	})
	if err := rep.FirstErr(); err != nil {
		t.Fatal(err)
	}
	if got := built.Load(); got != 2 {
		t.Errorf("built %d stacks, want 2 (odd missions only)", got)
	}
	if got := observed.Load(); got != 4 {
		t.Errorf("OnResult saw %d results, want 4", got)
	}
	if got := cachedSeen.Load(); got != 2 {
		t.Errorf("OnResult saw %d cached results, want 2", got)
	}
	for i, res := range rep.Results {
		if wantCached := i%2 == 0; res.Cached != wantCached {
			t.Errorf("mission %d: Cached = %v, want %v", i, res.Cached, wantCached)
		}
		if res.Name != missions[i].Name || res.Seed != missions[i].Seed {
			t.Errorf("mission %d: result identity %q/%d diverges from mission %q/%d",
				i, res.Name, res.Seed, missions[i].Name, missions[i].Seed)
		}
	}
	// The canned metrics participate in aggregation like fresh ones.
	if rep.SimTime != 4*5*time.Second {
		t.Errorf("aggregate sim time = %v, want 20s", rep.SimTime)
	}
}
