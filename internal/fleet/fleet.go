// Package fleet is a batch simulation engine: it runs many independent SOTER
// missions concurrently across a bounded worker pool and aggregates their
// verdicts into a single Report. The paper evaluates one mission at a time
// (Section V); the experiment sweeps in internal/experiments — endurance
// segments, ablation grids, seed sweeps — are embarrassingly parallel, and
// the fleet engine is how they saturate multi-core hardware.
//
// Isolation is by construction: a Mission carries a Build function that is
// invoked inside the worker, so every run assembles its own mission stack,
// topic store, executor, observers and seeded RNG. No mutable state is
// shared between workers (the -race fleet tests prove it), and results are
// collected in mission order, so a fleet run is deterministic regardless of
// worker count or completion order — including each mission's event stream,
// which its per-run obs.MetricsSink aggregates into the MissionResult
// metrics the Report is assembled from. Run threads a context through the
// pool and into every mission, so whole batches cancel cleanly.
package fleet

import (
	"context"
	"errors"
	"fmt"
	"maps"
	"runtime"
	"slices"
	"strings"
	"sync"
	"time"

	"repro/internal/rta"
	soterruntime "repro/internal/runtime"
	"repro/internal/sim"
)

// Options configures a batch run.
//
// Sweeps whose missions share a workspace additionally share immutable build
// artifacts (inflated-obstacle indexes, occupancy grids, the A* planner)
// through a pool inside mission.Build — no fleet-level knob is needed, and
// TestFleetPooledStacksByteIdenticalToFresh holds pooled sweeps byte-identical
// to fresh ones. Set mission.StackConfig.FreshArtifacts to opt a mission out.
type Options struct {
	// Workers bounds how many missions simulate concurrently. Zero or
	// negative defaults to runtime.GOMAXPROCS(0).
	Workers int
	// Reuse, when non-nil, is consulted inside the worker before a mission is
	// built: returning (res, true) serves the mission from that prior result
	// — marked Cached, with the mission's own Name and Seed — without
	// simulating. This is the serving layer's deterministic-cache hook: runs
	// are reproducible per (scenario, seed), so a remembered result is
	// indistinguishable from a fresh one. Reuse is called concurrently from
	// every worker and must be safe for concurrent use.
	Reuse func(i int, m Mission) (MissionResult, bool)
	// OnResult, when non-nil, is invoked inside the worker right after each
	// mission's verdict is known (simulated, reused or failed) — the
	// progress/cache-fill hook of the serving layer. Calls arrive in
	// completion order, concurrently from every worker; OnResult must be safe
	// for concurrent use.
	OnResult func(i int, m Mission, res MissionResult)
}

func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// Mission describes one independent simulation of the batch.
type Mission struct {
	// Name labels the mission in the report (e.g. "seg-07/best-effort").
	Name string
	// Seed is echoed into the result for traceability; Build is expected to
	// thread it into the stack and run configuration.
	Seed int64
	// Build constructs the run configuration. It runs inside the worker, so
	// everything it creates — stack, store, executor, RNG — is private to
	// this run.
	Build func() (sim.RunConfig, error)
}

// MissionResult is the verdict of one mission.
type MissionResult struct {
	Name string
	Seed int64
	// Metrics is the zero value when Err is non-nil.
	Metrics sim.Metrics
	// Switches is the run's full DM switch log (AC→SC and back).
	Switches []soterruntime.Switch
	// Wall is the wall-clock time this mission took inside its worker.
	Wall time.Duration
	// Cached marks a result served through Options.Reuse instead of a fresh
	// simulation.
	Cached bool
	Err    error
}

// Disengagements counts the AC→SC switches of the run.
func (r MissionResult) Disengagements() int {
	n := 0
	for _, sw := range r.Switches {
		if sw.To == rta.ModeSC {
			n++
		}
	}
	return n
}

// Report aggregates a batch run.
type Report struct {
	// Results holds one entry per mission, in mission order (independent of
	// completion order).
	Results []MissionResult
	// Workers is the worker-pool bound actually used.
	Workers int
	// Wall is the wall-clock time of the whole batch.
	Wall time.Duration

	// Aggregates over the successful missions:
	Missions            int
	Failed              int
	Crashes             int
	Landings            int
	Disengagements      int
	Reengagements       int
	InvariantViolations int
	DroppedFirings      int
	// SimTime is the total simulated time across runs; SimTime/Wall is the
	// batch's real-time factor.
	SimTime    time.Duration
	DistanceKm float64
}

// FirstErr returns the first mission error in mission order, or nil.
func (r *Report) FirstErr() error {
	for _, res := range r.Results {
		if res.Err != nil {
			return fmt.Errorf("mission %q (seed %d): %w", res.Name, res.Seed, res.Err)
		}
	}
	return nil
}

// Throughput returns completed missions per wall-clock second.
func (r *Report) Throughput() float64 {
	if r.Wall <= 0 {
		return 0
	}
	return float64(r.Missions-r.Failed) / r.Wall.Seconds()
}

// Format prints the batch summary as a text table, in the style of the
// experiment reports.
func (r *Report) Format() string {
	var b strings.Builder
	title := fmt.Sprintf("Fleet: %d missions, %d workers", r.Missions, r.Workers)
	b.WriteString(title + "\n" + strings.Repeat("-", len(title)) + "\n")
	fmt.Fprintf(&b, "wall %v  sim %v  throughput %.2f missions/s\n",
		r.Wall.Round(time.Millisecond), r.SimTime.Round(time.Millisecond), r.Throughput())
	fmt.Fprintf(&b, "failed %d  crashes %d  landings %d  distance %.2f km\n",
		r.Failed, r.Crashes, r.Landings, r.DistanceKm)
	fmt.Fprintf(&b, "AC→SC %d  SC→AC %d  φInv violations %d  dropped firings %d\n",
		r.Disengagements, r.Reengagements, r.InvariantViolations, r.DroppedFirings)
	return b.String()
}

// Run simulates the missions across the worker pool and aggregates the
// verdicts. Individual mission failures do not abort the batch; they are
// recorded in the results and surfaced through FirstErr. Cancelling the
// context stops the batch cleanly: in-flight missions are cancelled (their
// partial metrics are kept), missions never started are marked with the
// context's error, and the Report stays internally consistent — a cancelled
// batch can never masquerade as a clean one.
func Run(ctx context.Context, missions []Mission, opts Options) *Report {
	start := time.Now() //soter:nondet-ok Report.Wall measures real elapsed time; it never feeds simulated state
	ran := make([]bool, len(missions))
	// Every worker-level error is carried inside its MissionResult, so the
	// closure returns res.Err into Map's error slot too: the two channels
	// must agree, and TestRunCancelledBatchContract holds them to it.
	results, _ := Map(ctx, opts.Workers, len(missions), func(ctx context.Context, i int) (MissionResult, error) {
		ran[i] = true
		res := runOne(ctx, i, missions[i], opts)
		if opts.OnResult != nil {
			opts.OnResult(i, missions[i], res)
		}
		return res, res.Err
	})
	// Missions the cancelled batch never started have no result; mark them
	// explicitly rather than leaving zero-value "successes".
	for i := range results {
		if !ran[i] {
			results[i] = MissionResult{Name: missions[i].Name, Seed: missions[i].Seed, Err: ctx.Err()}
		}
	}
	rep := &Report{
		Results:  results,
		Workers:  opts.workers(),
		Wall:     time.Since(start), //soter:nondet-ok measurement-only: reporting wall time of the batch
		Missions: len(missions),
	}
	for _, res := range results {
		if res.Err != nil {
			rep.Failed++
			continue
		}
		m := res.Metrics
		if m.Crashed {
			rep.Crashes++
		}
		if m.Landed {
			rep.Landings++
		}
		rep.InvariantViolations += m.InvariantViolations
		rep.DroppedFirings += m.DroppedFirings
		rep.SimTime += m.Duration
		rep.DistanceKm += m.DistanceFlown / 1000
		for _, s := range m.Modules {
			rep.Disengagements += s.Disengagements
			rep.Reengagements += s.Reengagements
		}
	}
	return rep
}

func runOne(ctx context.Context, i int, m Mission, opts Options) MissionResult {
	res := MissionResult{Name: m.Name, Seed: m.Seed}
	start := time.Now()                             //soter:nondet-ok MissionResult.Wall measures real elapsed time; it never feeds simulated state
	defer func() { res.Wall = time.Since(start) }() //soter:nondet-ok measurement-only: reporting wall time of the mission
	if opts.Reuse != nil {
		if prior, ok := opts.Reuse(i, m); ok {
			prior.Name, prior.Seed, prior.Cached = m.Name, m.Seed, true
			prior.Wall = time.Since(start) //soter:nondet-ok measurement-only: reporting cache-hit latency
			return prior
		}
	}
	if m.Build == nil {
		res.Err = fmt.Errorf("nil Build")
		return res
	}
	cfg, err := m.Build()
	if err != nil {
		res.Err = err
		return res
	}
	// The batch context threads into the run so a cancelled batch stops
	// mid-mission; a Build that pinned its own context keeps it.
	if cfg.Context == nil {
		cfg.Context = ctx
	}
	if cfg.Label == "" {
		cfg.Label = m.Name
	}
	out, err := sim.Run(cfg)
	if out != nil {
		// A cancelled run still reports its consistent partial metrics.
		res.Metrics = out.Metrics
		res.Switches = out.Switches
	}
	res.Err = err
	return res
}

// Map runs fn(0..n-1) across a worker pool bounded at workers (≤0 defaults
// to GOMAXPROCS) and collects the results in index order. The returned error
// is the join (errors.Join, in index order) of every per-index error — no
// worker-level error can be silently dropped. Cancelling the context stops
// the feed: indices not yet handed to a worker fail with the context's
// error; indices already in flight run fn to completion (fn receives the
// context and is expected to honour it).
//
// Index-ordered collection is what lets callers build worker-count-invariant
// results on top: internal/certify folds each Map batch into its estimator
// strictly in index order, so a certification verdict never depends on which
// worker finished first. Keep that property when changing Map.
func Map[T any](ctx context.Context, workers, n int, fn func(ctx context.Context, i int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, nil
	}
	w := Options{Workers: workers}.workers()
	if w > n {
		w = n
	}
	results := make([]T, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	next := make(chan int)
	for i := 0; i < w; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range next {
				results[idx], errs[idx] = fn(ctx, idx)
			}
		}()
	}
	done := ctx.Done()
feed:
	for idx := 0; idx < n; idx++ {
		select {
		case next <- idx:
		case <-done:
			for j := idx; j < n; j++ {
				errs[j] = ctx.Err()
			}
			break feed
		}
	}
	close(next)
	wg.Wait()
	return results, errors.Join(errs...)
}

// SeedSweep builds a mission per seed from a shared builder — the common
// shape of the experiment sweeps (same scenario, different randomness).
func SeedSweep(name string, seeds []int64, build func(seed int64) (sim.RunConfig, error)) []Mission {
	missions := make([]Mission, len(seeds))
	for i, seed := range seeds {
		seed := seed
		missions[i] = Mission{
			Name:  fmt.Sprintf("%s/seed-%d", name, seed),
			Seed:  seed,
			Build: func() (sim.RunConfig, error) { return build(seed) },
		}
	}
	return missions
}

// Seeds returns n deterministic seeds derived from base, spaced so derived
// per-run RNG streams do not trivially collide.
func Seeds(base int64, n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = base + int64(i)*101
	}
	return out
}

// SortedModuleNames returns the union of module names across the successful
// results, sorted — a convenience for per-module reporting.
func (r *Report) SortedModuleNames() []string {
	seen := map[string]bool{}
	for _, res := range r.Results {
		if res.Err != nil {
			continue
		}
		for name := range res.Metrics.Modules {
			seen[name] = true
		}
	}
	return slices.Sorted(maps.Keys(seen))
}

// ModuleStats sums a named module's switching statistics across the
// successful results.
func (r *Report) ModuleStats(module string) sim.ModuleStats {
	var agg sim.ModuleStats
	for _, res := range r.Results {
		if res.Err != nil {
			continue
		}
		if s, ok := res.Metrics.Modules[module]; ok {
			agg.Disengagements += s.Disengagements
			agg.Reengagements += s.Reengagements
			agg.Clamped += s.Clamped
			agg.ACTime += s.ACTime
			agg.SCTime += s.SCTime
		}
	}
	return agg
}
