package node

import (
	"errors"
	"reflect"
	"testing"
	"time"

	"repro/internal/pubsub"
)

func passthrough(st State, in pubsub.Valuation) (State, pubsub.Valuation, error) {
	return st, nil, nil
}

func TestNewValidation(t *testing.T) {
	tests := []struct {
		name    string
		node    string
		period  time.Duration
		in, out []pubsub.TopicName
		step    StepFunc
		wantErr bool
	}{
		{"valid", "n", time.Second, []pubsub.TopicName{"a"}, []pubsub.TopicName{"b"}, passthrough, false},
		{"empty name", "", time.Second, nil, nil, passthrough, true},
		{"nil step", "n", time.Second, nil, nil, nil, true},
		{"zero period", "n", 0, nil, nil, passthrough, true},
		{"input output overlap", "n", time.Second, []pubsub.TopicName{"a"}, []pubsub.TopicName{"a"}, passthrough, true},
		{"duplicate input", "n", time.Second, []pubsub.TopicName{"a", "a"}, nil, passthrough, true},
		{"duplicate output", "n", time.Second, nil, []pubsub.TopicName{"b", "b"}, passthrough, true},
		{"empty topic name", "n", time.Second, []pubsub.TopicName{""}, nil, passthrough, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := New(tt.node, tt.period, tt.in, tt.out, tt.step)
			if (err != nil) != tt.wantErr {
				t.Errorf("New error = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestNodeAccessors(t *testing.T) {
	n, err := New("mp", 10*time.Millisecond,
		[]pubsub.TopicName{"zz", "aa"},
		[]pubsub.TopicName{"out"},
		passthrough,
		WithPhase(5*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	if n.Name() != "mp" {
		t.Errorf("Name = %q", n.Name())
	}
	if n.Period() != 10*time.Millisecond {
		t.Errorf("Period = %v", n.Period())
	}
	if n.Schedule().Phase != 5*time.Millisecond {
		t.Errorf("Phase = %v", n.Schedule().Phase)
	}
	// Inputs are returned sorted and copied.
	in := n.Inputs()
	if !reflect.DeepEqual(in, []pubsub.TopicName{"aa", "zz"}) {
		t.Errorf("Inputs = %v", in)
	}
	in[0] = "mutated"
	if got := n.Inputs()[0]; got != "aa" {
		t.Error("Inputs not copied")
	}
	if !n.SubscribesTo("aa") || n.SubscribesTo("out") {
		t.Error("SubscribesTo wrong")
	}
}

func TestNodeStepValidatesOutputs(t *testing.T) {
	n, err := New("n", time.Second, nil, []pubsub.TopicName{"ok"},
		func(st State, in pubsub.Valuation) (State, pubsub.Valuation, error) {
			return st, pubsub.Valuation{"rogue": 1}, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := n.Step(nil, nil); err == nil {
		t.Error("expected error for publishing on undeclared output topic")
	}
}

func TestNodeStepPropagatesErrors(t *testing.T) {
	boom := errors.New("boom")
	n, _ := New("n", time.Second, nil, nil,
		func(st State, in pubsub.Valuation) (State, pubsub.Valuation, error) {
			return nil, nil, boom
		})
	if _, _, err := n.Step(nil, nil); !errors.Is(err, boom) {
		t.Errorf("Step error = %v, want wrapped boom", err)
	}
}

func TestNodeStatefulStep(t *testing.T) {
	n, _ := New("counter", time.Second, nil, []pubsub.TopicName{"count"},
		func(st State, in pubsub.Valuation) (State, pubsub.Valuation, error) {
			c, _ := st.(int)
			return c + 1, pubsub.Valuation{"count": c + 1}, nil
		},
		WithInit(func() State { return 0 }))
	st := n.InitState()
	var out pubsub.Valuation
	var err error
	for i := 1; i <= 3; i++ {
		st, out, err = n.Step(st, nil)
		if err != nil {
			t.Fatal(err)
		}
		if out["count"].(int) != i {
			t.Errorf("step %d published %v", i, out["count"])
		}
	}
}

func TestSameOutputs(t *testing.T) {
	mk := func(outs ...pubsub.TopicName) *Node {
		return MustNew("n"+string(outs[0]), time.Second, nil, outs, passthrough)
	}
	if !SameOutputs(mk("a", "b"), mk("b", "a")) {
		t.Error("same sets in different order should match")
	}
	if SameOutputs(mk("a"), mk("a", "b")) {
		t.Error("different sizes should not match")
	}
	if SameOutputs(mk("a"), mk("b")) {
		t.Error("different topics should not match")
	}
}

func TestDefaultInitStateIsNil(t *testing.T) {
	n := MustNew("n", time.Second, nil, nil, passthrough)
	if n.InitState() != nil {
		t.Errorf("default init state = %v", n.InitState())
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustNew should panic on invalid declaration")
		}
	}()
	MustNew("", time.Second, nil, nil, passthrough)
}
