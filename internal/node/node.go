// Package node implements the SOTER node abstraction (Section III-A): a node
// is a tuple (N, I, O, T, C) — a named periodic input-output state-transition
// system that, at every time instant in its calendar, reads the values of its
// input topics, updates its local state, and publishes values on its output
// topics.
package node

import (
	"fmt"
	"slices"
	"time"

	"repro/internal/calendar"
	"repro/internal/pubsub"
)

// State is the local state l ∈ L of a node. States must be treated as values:
// Step must not mutate its argument but return a fresh (or identical) state,
// so the systematic-testing engine can snapshot configurations.
type State any

// StepFunc is the transition relation T of a node restricted to a
// deterministic function: given the local state and the valuation of the
// subscribed topics, it returns the next local state and the valuation to
// publish on (a subset of) the output topics. Nondeterminism, where needed,
// is injected through the environment or through explicit RNG state carried
// in the local state.
//
// The input valuation is only valid for the duration of the call: the
// executor reuses the backing buffer across firings, so implementations must
// copy any values they need beyond the step rather than retain the map.
type StepFunc func(st State, in pubsub.Valuation) (State, pubsub.Valuation, error)

// InitFunc produces the initial local state l0 of a node.
type InitFunc func() State

// Node is an immutable node declaration. Construct one with New; the zero
// value is not valid.
type Node struct {
	name    string
	inputs  []pubsub.TopicName
	outputs []pubsub.TopicName
	sched   calendar.Schedule
	init    InitFunc
	step    StepFunc
}

// Option configures optional node attributes.
type Option func(*options)

type options struct {
	phase time.Duration
	init  InitFunc
}

// WithPhase offsets the node's first firing from time zero.
func WithPhase(p time.Duration) Option {
	return func(o *options) { o.phase = p }
}

// WithInit sets the initial-local-state constructor. Nodes without one start
// with a nil local state.
func WithInit(f InitFunc) Option {
	return func(o *options) { o.init = f }
}

// New constructs a node named name with period period, subscribing to inputs,
// publishing on outputs, and transition function step.
//
// Per the paper's definition, output topics must be disjoint from input
// topics (I ∩ O = ∅); duplicates within either set are also rejected.
func New(name string, period time.Duration, inputs, outputs []pubsub.TopicName, step StepFunc, opts ...Option) (*Node, error) {
	if name == "" {
		return nil, fmt.Errorf("node with empty name")
	}
	if step == nil {
		return nil, fmt.Errorf("node %q: nil step function", name)
	}
	var o options
	for _, opt := range opts {
		opt(&o)
	}
	sched := calendar.Schedule{Period: period, Phase: o.phase}
	if err := sched.Validate(); err != nil {
		return nil, fmt.Errorf("node %q: %w", name, err)
	}
	in, err := normalizeTopics(inputs)
	if err != nil {
		return nil, fmt.Errorf("node %q inputs: %w", name, err)
	}
	out, err := normalizeTopics(outputs)
	if err != nil {
		return nil, fmt.Errorf("node %q outputs: %w", name, err)
	}
	seen := make(map[pubsub.TopicName]bool, len(in))
	for _, t := range in {
		seen[t] = true
	}
	for _, t := range out {
		if seen[t] {
			return nil, fmt.Errorf("node %q: topic %q is both input and output", name, t)
		}
	}
	init := o.init
	if init == nil {
		init = func() State { return nil }
	}
	return &Node{
		name:    name,
		inputs:  in,
		outputs: out,
		sched:   sched,
		init:    init,
		step:    step,
	}, nil
}

// MustNew is New for statically known-good declarations; it panics on error.
// Reserve it for tests and package-internal constants.
func MustNew(name string, period time.Duration, inputs, outputs []pubsub.TopicName, step StepFunc, opts ...Option) *Node {
	n, err := New(name, period, inputs, outputs, step, opts...)
	if err != nil {
		panic(err)
	}
	return n
}

// Name returns the unique node name N.
func (n *Node) Name() string { return n.name }

// Inputs returns a copy of the subscribed topic names I(N), sorted.
func (n *Node) Inputs() []pubsub.TopicName { return copyTopics(n.inputs) }

// Outputs returns a copy of the published topic names O(N), sorted.
func (n *Node) Outputs() []pubsub.TopicName { return copyTopics(n.outputs) }

// Period returns the node's period δ(N).
func (n *Node) Period() time.Duration { return n.sched.Period }

// Schedule returns the node's time-table C(N).
func (n *Node) Schedule() calendar.Schedule { return n.sched }

// InitState returns a fresh initial local state l0.
func (n *Node) InitState() State { return n.init() }

// Step applies the transition relation once. It validates that the produced
// output valuation only mentions declared output topics.
func (n *Node) Step(st State, in pubsub.Valuation) (State, pubsub.Valuation, error) {
	next, out, err := n.step(st, in)
	if err != nil {
		return nil, nil, fmt.Errorf("node %q step: %w", n.name, err)
	}
	for topic := range out {
		if !n.publishes(topic) {
			return nil, nil, fmt.Errorf("node %q published on undeclared output topic %q", n.name, topic)
		}
	}
	return next, out, nil
}

// SubscribesTo reports whether topic is one of the node's inputs.
func (n *Node) SubscribesTo(topic pubsub.TopicName) bool {
	return containsTopic(n.inputs, topic)
}

func (n *Node) publishes(topic pubsub.TopicName) bool {
	return containsTopic(n.outputs, topic)
}

// SameOutputs reports whether two nodes publish exactly the same set of
// topics — property (P1b) of a well-formed RTA module.
func SameOutputs(a, b *Node) bool {
	if len(a.outputs) != len(b.outputs) {
		return false
	}
	for i := range a.outputs {
		if a.outputs[i] != b.outputs[i] {
			return false
		}
	}
	return true
}

func normalizeTopics(ts []pubsub.TopicName) ([]pubsub.TopicName, error) {
	out := make([]pubsub.TopicName, len(ts))
	copy(out, ts)
	slices.Sort(out)
	for i := range out {
		if out[i] == "" {
			return nil, fmt.Errorf("empty topic name")
		}
		if i > 0 && out[i] == out[i-1] {
			return nil, fmt.Errorf("duplicate topic %q", out[i])
		}
	}
	return out, nil
}

func copyTopics(ts []pubsub.TopicName) []pubsub.TopicName {
	out := make([]pubsub.TopicName, len(ts))
	copy(out, ts)
	return out
}

func containsTopic(sorted []pubsub.TopicName, t pubsub.TopicName) bool {
	_, found := slices.BinarySearch(sorted, t)
	return found
}
