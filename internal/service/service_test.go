package service

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// newTestServer starts a service plus an HTTP front end, both torn down with
// the test.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	svc, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(svc.Close)
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(ts.Close)
	return svc, ts
}

func postJob(t *testing.T, ts *httptest.Server, spec string) JobView {
	t.Helper()
	resp, err := http.Post(ts.URL+"/jobs", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		var buf bytes.Buffer
		_, _ = buf.ReadFrom(resp.Body)
		t.Fatalf("POST /jobs = %d: %s", resp.StatusCode, buf.String())
	}
	var view JobView
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		t.Fatal(err)
	}
	return view
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("GET %s: decode: %v", url, err)
		}
	}
	return resp.StatusCode
}

// TestHTTPEndToEnd drives the full lifecycle over the wire: submit a 2-seed
// job, consume its whole JSONL event stream, then fetch the terminal report
// and stats.
func TestHTTPEndToEnd(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	view := postJob(t, ts, `{"scenario":"surveillance-city","overrides":{"duration":"2s"},"seeds":[1,2]}`)
	if view.Status != StatusQueued && view.Status != StatusRunning {
		t.Fatalf("submitted job status = %s", view.Status)
	}
	if view.Cells.Total != 2 {
		t.Fatalf("cells = %+v, want total 2", view.Cells)
	}

	// The event stream ends when the job does, replaying from the start for
	// late subscribers — so a plain GET sees the whole stream.
	resp, err := http.Get(ts.URL + "/jobs/" + view.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET events = %d", resp.StatusCode)
	}
	var starts, ends int
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		e, err := obs.UnmarshalEvent(sc.Bytes())
		if err != nil {
			t.Fatalf("malformed event line %q: %v", sc.Text(), err)
		}
		switch e.(type) {
		case obs.RunStart:
			starts++
		case obs.RunEnd:
			ends++
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if starts != 2 || ends != 2 {
		t.Errorf("stream saw %d RunStart / %d RunEnd events, want 2/2", starts, ends)
	}

	var done JobView
	if code := getJSON(t, ts.URL+"/jobs/"+view.ID, &done); code != http.StatusOK {
		t.Fatalf("GET job = %d", code)
	}
	if done.Status != StatusDone {
		t.Fatalf("job status = %s (err %q), want done", done.Status, done.Error)
	}
	if done.Report == nil || done.Report.Missions != 2 || done.Report.Failed != 0 {
		t.Fatalf("report = %+v", done.Report)
	}
	if done.Report.Crashes != 0 {
		t.Errorf("RTA-protected job crashed %d times", done.Report.Crashes)
	}
	if done.Cells.Done != 2 {
		t.Errorf("cells done = %d, want 2", done.Cells.Done)
	}

	var report ReportView
	if code := getJSON(t, ts.URL+"/jobs/"+view.ID+"/report", &report); code != http.StatusOK {
		t.Fatalf("GET report = %d", code)
	}
	if len(report.Results) != 2 {
		t.Fatalf("report rows = %d", len(report.Results))
	}

	var stats Stats
	if code := getJSON(t, ts.URL+"/stats", &stats); code != http.StatusOK {
		t.Fatalf("GET stats = %d", code)
	}
	if stats.Jobs.Done != 1 || stats.Store.Memory.Misses != 2 || stats.Store.Memory.Entries != 2 || stats.Store.Fills != 2 {
		t.Errorf("stats = %+v", stats)
	}
}

// TestRepeatJobServedFromCache: resubmitting an identical job answers every
// cell from the cache with metrics identical to the fresh run.
func TestRepeatJobServedFromCache(t *testing.T) {
	svc, ts := newTestServer(t, Config{})
	spec := `{"scenario":"canyon-corridor","overrides":{"duration":"2s"},"seeds":[7]}`
	first := waitTerminal(t, ts, postJob(t, ts, spec).ID)
	if first.Status != StatusDone || first.Cells.Cached != 0 {
		t.Fatalf("first run: %+v", first.Cells)
	}
	second := waitTerminal(t, ts, postJob(t, ts, spec).ID)
	if second.Status != StatusDone || second.Cells.Cached != 1 {
		t.Fatalf("second run not cached: %+v (err %q)", second.Cells, second.Error)
	}
	a, _ := json.Marshal(first.Report.Results[0].Metrics)
	b, _ := json.Marshal(second.Report.Results[0].Metrics)
	if !bytes.Equal(a, b) {
		t.Errorf("cached metrics diverge from fresh run:\n%s\n%s", a, b)
	}
	if st := svc.Stats(); st.Store.Memory.Hits != 1 || st.Store.Fills != 1 {
		t.Errorf("store: memory hits = %d, fills = %d; want 1, 1", st.Store.Memory.Hits, st.Store.Fills)
	}
}

// waitTerminal polls the job until it reaches a terminal state.
func waitTerminal(t *testing.T, ts *httptest.Server, id string) JobView {
	t.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	for {
		var view JobView
		if code := getJSON(t, ts.URL+"/jobs/"+id, &view); code != http.StatusOK {
			t.Fatalf("GET job %s = %d", id, code)
		}
		if view.Status.Terminal() {
			return view
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s", id, view.Status)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestJobCancellationMidRun: a long job cancelled over HTTP reaches the
// cancelled state, keeps its partial report, and closes its event stream.
func TestJobCancellationMidRun(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	// 10 minutes of simulated endurance — far longer than the test runs.
	view := postJob(t, ts, `{"scenario":"random-endurance","overrides":{"duration":"10m"},"seeds":[1,2,3,4]}`)

	// Wait for the first event: proof the job is genuinely mid-run.
	resp, err := http.Get(ts.URL + "/jobs/" + view.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	if !sc.Scan() {
		t.Fatalf("event stream ended before the job started: %v", sc.Err())
	}

	cancelReq, _ := http.NewRequest(http.MethodPost, ts.URL+"/jobs/"+view.ID+"/cancel", nil)
	cancelResp, err := http.DefaultClient.Do(cancelReq)
	if err != nil {
		t.Fatal(err)
	}
	cancelResp.Body.Close()
	if cancelResp.StatusCode != http.StatusOK {
		t.Fatalf("POST cancel = %d", cancelResp.StatusCode)
	}

	final := waitTerminal(t, ts, view.ID)
	if final.Status != StatusCancelled {
		t.Fatalf("status = %s, want cancelled", final.Status)
	}
	if final.Report == nil {
		t.Fatal("cancelled job dropped its partial report")
	}
	if final.Report.Missions != 4 {
		t.Errorf("partial report covers %d missions, want 4", final.Report.Missions)
	}

	// The stream must terminate promptly now that the job is cancelled.
	done := make(chan struct{})
	go func() {
		for sc.Scan() {
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Error("event stream still open after cancellation")
	}
}

// TestSubmitValidation: unresolvable requests are rejected with 400s before
// any work is queued.
func TestSubmitValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, tc := range []struct {
		name, body string
	}{
		{"unknown scenario", `{"scenario":"no-such-scenario"}`},
		{"bad override", `{"scenario":"surveillance-city","overrides":{"protection":"warp-drive"}}`},
		{"bad duration", `{"scenario":"surveillance-city","overrides":{"duration":"-3s"}}`},
		{"seed conflict", `{"scenario":"surveillance-city","seeds":[1],"seed_count":2}`},
		{"seed_start without count", `{"scenario":"surveillance-city","seed_start":100}`},
		{"unknown field", `{"scenario":"surveillance-city","bogus":true}`},
	} {
		resp, err := http.Post(ts.URL+"/jobs", "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400", tc.name, resp.StatusCode)
		}
	}
	if code := getJSON(t, ts.URL+"/jobs/nope", nil); code != http.StatusNotFound {
		t.Errorf("GET unknown job = %d, want 404", code)
	}
}

// TestJobRetentionBound: the server retains at most MaxJobs jobs, evicting
// the oldest terminal ones first and never an active job.
func TestJobRetentionBound(t *testing.T) {
	svc, ts := newTestServer(t, Config{MaxJobs: 2})
	spec := `{"scenario":"surveillance-city","overrides":{"duration":"1s"},"seeds":[1]}`
	first := postJob(t, ts, spec)
	waitTerminal(t, ts, first.ID)
	second := postJob(t, ts, spec)
	waitTerminal(t, ts, second.ID)
	third := postJob(t, ts, spec) // evicts the oldest terminal job
	waitTerminal(t, ts, third.ID)
	if _, ok := svc.Job(first.ID); ok {
		t.Errorf("job %s survived eviction", first.ID)
	}
	if len(svc.Jobs()) != 2 {
		t.Errorf("retained %d jobs, want 2", len(svc.Jobs()))
	}
	// Both retained jobs are listable and intact over HTTP.
	var views []JobView
	if code := getJSON(t, ts.URL+"/jobs", &views); code != http.StatusOK {
		t.Fatalf("GET /jobs = %d", code)
	}
	if len(views) != 2 || views[0].ID != second.ID || views[1].ID != third.ID {
		t.Errorf("job listing = %+v", views)
	}
}

// TestSubmitAfterClose: a closed server rejects submissions instead of
// stranding jobs in the queue.
func TestSubmitAfterClose(t *testing.T) {
	svc, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	svc.Close()
	if _, err := svc.Submit(JobSpec{Scenario: "surveillance-city"}); err == nil {
		t.Fatal("Submit succeeded on a closed server")
	}
}

// TestEventKindFilter: ?kinds= narrows the stream to the requested kinds.
func TestEventKindFilter(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	view := postJob(t, ts, `{"scenario":"surveillance-city","overrides":{"duration":"2s"},"seeds":[3]}`)
	waitTerminal(t, ts, view.ID)
	resp, err := http.Get(ts.URL + "/jobs/" + view.ID + "/events?kinds=run_end")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	n := 0
	for sc.Scan() {
		e, err := obs.UnmarshalEvent(sc.Bytes())
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := e.(obs.RunEnd); !ok {
			t.Errorf("filtered stream leaked %T", e)
		}
		n++
	}
	if n != 1 {
		t.Errorf("run_end events = %d, want 1", n)
	}
	if code := getJSON(t, fmt.Sprintf("%s/jobs/%s/events?kinds=warp", ts.URL, view.ID), nil); code != http.StatusBadRequest {
		t.Errorf("bad kinds filter = %d, want 400", code)
	}
	// A real obs kind that job streams never carry must be rejected too — a
	// 200 with a permanently empty stream would be indistinguishable from a
	// silent job.
	if code := getJSON(t, fmt.Sprintf("%s/jobs/%s/events?kinds=node_fired", ts.URL, view.ID), nil); code != http.StatusBadRequest {
		t.Errorf("non-streamed kinds filter = %d, want 400", code)
	}
}
