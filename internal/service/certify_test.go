package service

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"repro/internal/certify"
	"repro/internal/obs"
)

// certifySpec is a cell that certifies quickly: a short surveillance-city
// mission against a loose threshold, so the interval closes below it within
// the first batch and early stopping fires well under the budget.
const certifySpec = `{"scenario":"surveillance-city","duration":"2s","threshold":0.5,"confidence":0.9,"max_seeds":64,"batch":8}`

func postCertify(t *testing.T, url, spec string) (JobView, int) {
	t.Helper()
	resp, err := http.Post(url+"/certify", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var view JobView
	if resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
			t.Fatal(err)
		}
	}
	return view, resp.StatusCode
}

// TestCertifyHTTPEndToEnd drives a certification campaign through the HTTP
// front end: submit, stream the certify_progress events, then fetch the
// terminal result and report.
func TestCertifyHTTPEndToEnd(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	view, code := postCertify(t, ts.URL, certifySpec)
	if code != http.StatusAccepted {
		t.Fatalf("POST /certify = %d", code)
	}
	if view.Certify == nil || view.Spec.Scenario != "" || view.Falsify != nil {
		t.Fatalf("certify job view carries the wrong spec: %+v", view)
	}
	if view.Scenario != "surveillance-city" || view.Cells.Total != 64 {
		t.Fatalf("view = %+v, want scenario surveillance-city, 64 cells", view)
	}

	// The event stream carries well-formed certify_progress events and closes
	// with the job; the last one carries the terminal verdict.
	resp, err := http.Get(ts.URL + "/jobs/" + view.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var progress int
	var last obs.CertifyProgress
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		e, err := obs.UnmarshalEvent(sc.Bytes())
		if err != nil {
			t.Fatalf("malformed event line %q: %v", sc.Text(), err)
		}
		if ev, ok := e.(obs.CertifyProgress); ok {
			progress++
			if ev.Seeds == 0 || ev.MaxSeeds != 64 || ev.Threshold != 0.5 {
				t.Errorf("malformed progress event: %+v", ev)
			}
			last = ev
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if progress == 0 {
		t.Fatal("stream carried no CertifyProgress events")
	}
	if last.Verdict != string(certify.VerdictCertified) {
		t.Fatalf("terminal progress verdict = %q, want certified (event %+v)", last.Verdict, last)
	}

	done := waitTerminal(t, ts, view.ID)
	if done.Status != StatusDone {
		t.Fatalf("job status = %s (err %q)", done.Status, done.Error)
	}
	res := done.CertifyResult
	if res == nil {
		t.Fatal("terminal certify job has no result")
	}
	if res.Verdict != certify.VerdictCertified {
		t.Fatalf("verdict = %q, want certified (result %+v)", res.Verdict, res)
	}
	// Early stopping fired: the loose threshold is settled well under budget.
	if res.Seeds >= res.MaxSeeds {
		t.Errorf("no early stop: consumed %d of %d seeds", res.Seeds, res.MaxSeeds)
	}
	if res.Seeds != last.Seeds || res.Crashes != last.Crashes {
		t.Errorf("result (%d seeds, %d crashes) disagrees with final event (%d, %d)",
			res.Seeds, res.Crashes, last.Seeds, last.Crashes)
	}
	if done.Cells.Done != res.Seeds {
		t.Errorf("cells done = %d, want %d", done.Cells.Done, res.Seeds)
	}
	if res.Hi >= res.Threshold || res.Lo > res.Estimate || res.Estimate > res.Hi {
		t.Errorf("certified interval inconsistent: est %v in [%v, %v] vs threshold %v",
			res.Estimate, res.Lo, res.Hi, res.Threshold)
	}

	// /report serves the certify.Result for certify jobs.
	var report certify.Result
	if code := getJSON(t, ts.URL+"/jobs/"+view.ID+"/report", &report); code != http.StatusOK {
		t.Fatalf("GET report = %d", code)
	}
	a, _ := json.Marshal(&report)
	b, _ := json.Marshal(res)
	if !bytes.Equal(a, b) {
		t.Errorf("/report and job view disagree:\n%s\n%s", a, b)
	}
}

// TestCertifyDeterministicOverHTTP: two identical certification requests
// through the service produce byte-identical results — the wire preserves the
// engine's determinism contract.
func TestCertifyDeterministicOverHTTP(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	var want []byte
	for i := 0; i < 2; i++ {
		view, code := postCertify(t, ts.URL, certifySpec)
		if code != http.StatusAccepted {
			t.Fatalf("POST /certify = %d", code)
		}
		done := waitTerminal(t, ts, view.ID)
		if done.Status != StatusDone {
			t.Fatalf("run %d: status %s (err %q)", i, done.Status, done.Error)
		}
		got, _ := json.Marshal(done.CertifyResult)
		if want == nil {
			want = got
		} else if !bytes.Equal(got, want) {
			t.Errorf("campaigns diverged:\n%s\n%s", want, got)
		}
	}
}

// TestCertifyValidation: bad certification requests bounce with 400 before
// any work queues.
func TestCertifyValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, tc := range []struct{ name, body string }{
		{"missing scenario", `{"threshold":0.01}`},
		{"unknown scenario", `{"scenario":"no-such-scenario","threshold":0.01}`},
		{"missing threshold", `{"scenario":"surveillance-city"}`},
		{"threshold at one", `{"scenario":"surveillance-city","threshold":1}`},
		{"bad confidence", `{"scenario":"surveillance-city","threshold":0.01,"confidence":1.2}`},
		{"bad activation", `{"scenario":"surveillance-city","threshold":0.01,"fault_activation":-0.5}`},
		{"boost without sporadic model", `{"scenario":"surveillance-city","threshold":0.01,"boost":2}`},
		{"bad policy override", `{"scenario":"surveillance-city","threshold":0.01,"overrides":{"policy":"warp"}}`},
		{"unknown field", `{"scenario":"surveillance-city","threshold":0.01,"bogus":1}`},
	} {
		if _, code := postCertify(t, ts.URL, tc.body); code != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400", tc.name, code)
		}
	}
}
