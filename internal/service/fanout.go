package service

import (
	"sync"

	"repro/internal/obs"
)

// StreamKinds is the event mask a job's fan-out subscribes to: the low-rate,
// high-signal progress events (run boundaries, mode switches, invariant
// violations, crashes, touchdowns). The per-firing and per-sub-step kinds
// (NodeFired, TimeProgress, TrajectorySample, BatterySample) are deliberately
// excluded — the fan-out is attached to every mission of a job, and the
// obs interest masks guarantee the kinds it does not declare cost nothing on
// the simulation hot path.
var StreamKinds = obs.Kinds(
	obs.KindRunStart, obs.KindRunEnd, obs.KindModeSwitch,
	obs.KindInvariantViolation, obs.KindCrash, obs.KindLanded,
	obs.KindCampaignProgress, obs.KindCounterexample,
	obs.KindCertifyProgress,
)

// fanout broadcasts a job's event stream to any number of HTTP subscribers —
// the service-side instance of the obs dispatcher pattern (one stream, many
// composable consumers), extended with the two things a network consumer
// needs: a bounded replay ring, so a subscriber that connects after the job
// started (or even after it finished) still sees the stream from the
// beginning, and per-subscriber bounded buffers, so one slow client can never
// stall the simulation goroutines. Safe for concurrent use: a job's missions
// emit from every fleet worker at once.
type fanout struct {
	mu     sync.Mutex
	ring   *obs.Recorder
	subs   map[int]*subscriber
	nextID int
	closed bool
}

// subscriber is one attached event consumer.
type subscriber struct {
	ch      chan obs.Event
	mask    obs.KindSet
	dropped int
}

func newFanout(ringCap int) *fanout {
	return &fanout{ring: obs.NewRecorder(ringCap), subs: make(map[int]*subscriber)}
}

// Interests implements obs.Interested.
func (f *fanout) Interests() obs.KindSet { return StreamKinds }

// OnEvent implements obs.Observer: record into the replay ring and deliver to
// every subscriber whose mask matches, dropping (and counting) events a full
// subscriber buffer cannot take rather than blocking the run.
func (f *fanout) OnEvent(e obs.Event) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return
	}
	f.ring.OnEvent(e)
	k := e.Kind()
	for _, s := range f.subs {
		if !s.mask.Has(k) {
			continue
		}
		select {
		case s.ch <- e:
		default:
			s.dropped++
		}
	}
}

// Subscribe attaches a consumer restricted to mask. It returns the replayed
// tail of events already seen (in arrival order, mask-filtered), a channel
// carrying all subsequent events, and a cancel function. The channel is
// closed when the job's stream ends or the subscription is cancelled; the
// replay snapshot and the channel are gap-free and duplicate-free because
// both are taken under the same lock the emitters hold.
func (f *fanout) Subscribe(mask obs.KindSet, buffer int) (replay []obs.Event, ch <-chan obs.Event, cancel func()) {
	if buffer <= 0 {
		buffer = 256
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, e := range f.ring.Events() {
		if mask.Has(e.Kind()) {
			replay = append(replay, e)
		}
	}
	s := &subscriber{ch: make(chan obs.Event, buffer), mask: mask}
	if f.closed {
		close(s.ch)
		return replay, s.ch, func() {}
	}
	id := f.nextID
	f.nextID++
	f.subs[id] = s
	return replay, s.ch, func() {
		f.mu.Lock()
		defer f.mu.Unlock()
		if _, live := f.subs[id]; live {
			delete(f.subs, id)
			close(s.ch)
		}
	}
}

// Close ends the stream: every subscriber channel is closed and later events
// are discarded. Closing twice is a no-op.
func (f *fanout) Close() {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return
	}
	f.closed = true
	for id, s := range f.subs {
		delete(f.subs, id)
		close(s.ch)
	}
}
