package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/fleet"
	"repro/internal/scenario"
)

// TestCacheLRU: the cache honours its bound, evicts least-recently-used
// first, and keeps honest counters.
func TestCacheLRU(t *testing.T) {
	c := NewCache(2)
	c.Put("a", []byte("A"))
	c.Put("b", []byte("B"))
	if _, ok := c.Get("a"); !ok { // refresh a; b is now LRU
		t.Fatal("a missing")
	}
	c.Put("c", []byte("C")) // evicts b
	if _, ok := c.Get("b"); ok {
		t.Error("b survived eviction")
	}
	if v, ok := c.Get("a"); !ok || !bytes.Equal(v, []byte("A")) {
		t.Errorf("a = %q, %v", v, ok)
	}
	if v, ok := c.Get("c"); !ok || !bytes.Equal(v, []byte("C")) {
		t.Errorf("c = %q, %v", v, ok)
	}
	st := c.Stats()
	want := CacheStats{Entries: 2, Capacity: 2, Hits: 3, Misses: 1, Evictions: 1}
	if st != want {
		t.Errorf("stats = %+v, want %+v", st, want)
	}
}

// TestCacheConcurrent hammers the cache from many goroutines; -race proves
// the locking. Values surviving the churn must be the ones stored.
func TestCacheConcurrent(t *testing.T) {
	c := NewCache(64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("k%d", i%100)
				want := []byte(key)
				c.Put(key, want)
				if v, ok := c.Get(key); ok && !bytes.Equal(v, want) {
					t.Errorf("key %s corrupted: %q", key, v)
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestCacheDeterminism is the contract the whole serving layer rests on: two
// independent simulations of the same (spec, seed) cell produce canonical
// cache values that are byte-identical, so a cache hit is indistinguishable
// from a fresh run.
func TestCacheDeterminism(t *testing.T) {
	spec := scenario.MustGet("surveillance-city")
	spec.Duration = 2 * time.Second
	key, err := spec.Fingerprint(11)
	if err != nil {
		t.Fatal(err)
	}
	encodeRun := func() []byte {
		missions := fleet.ScenarioGrid(fleet.GridConfig{Specs: []scenario.Spec{spec}, Seeds: []int64{11}})
		rep := fleet.Run(context.Background(), missions, fleet.Options{Workers: 2})
		if err := rep.FirstErr(); err != nil {
			t.Fatal(err)
		}
		res := rep.Results[0]
		raw, err := json.Marshal(cellResult{Metrics: res.Metrics, Switches: res.Switches})
		if err != nil {
			t.Fatal(err)
		}
		return raw
	}
	first, second := encodeRun(), encodeRun()
	if !bytes.Equal(first, second) {
		t.Fatalf("same key %s produced different canonical bytes:\n%s\n%s", key, first, second)
	}
	c := NewCache(0)
	c.Put(key, first)
	got, ok := c.Get(key)
	if !ok || !bytes.Equal(got, first) {
		t.Fatal("cache did not return the stored bytes")
	}
}
