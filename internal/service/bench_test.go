package service

import (
	"testing"
	"time"

	"repro/internal/scenario"
)

// sweepSpecs builds one job per registered scenario — a registry-wide sweep
// with every mission scaled down to the given length.
func sweepSpecs(duration time.Duration, seeds []int64) []JobSpec {
	names := scenario.Names()
	specs := make([]JobSpec, 0, len(names))
	for _, name := range names {
		specs = append(specs, JobSpec{
			Scenario:  name,
			Overrides: Overrides{Duration: Duration(duration)},
			Seeds:     seeds,
		})
	}
	return specs
}

// runSweep submits every job and waits for the last to finish, failing fast
// on any non-done terminal state.
func runSweep(tb testing.TB, svc *Server, specs []JobSpec) (done, cached int) {
	tb.Helper()
	jobs := make([]*Job, 0, len(specs))
	for _, spec := range specs {
		job, err := svc.Submit(spec)
		if err != nil {
			tb.Fatal(err)
		}
		jobs = append(jobs, job)
	}
	for _, job := range jobs {
		// The event stream closes exactly when the job reaches a terminal
		// state, so draining it is a completion wait without polling.
		replay, live, cancel := job.Subscribe(StreamKinds, 16)
		_ = replay
		for range live {
		}
		cancel()
		if st := job.Status(); st != StatusDone {
			tb.Fatalf("job %s (%s): %s (%v)", job.ID(), job.spec.Scenario, st, job.Err())
		}
		view := job.view()
		done += view.Cells.Done
		cached += view.Cells.Cached
	}
	return done, cached
}

// TestWarmCacheSpeedup enforces the serving layer's headline property: a
// repeated registry-wide sweep is answered from the deterministic result
// cache at least 10x faster than the cold run that populated it.
func TestWarmCacheSpeedup(t *testing.T) {
	svc, err := New(Config{JobConcurrency: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	specs := sweepSpecs(2*time.Second, []int64{1, 2})

	coldStart := time.Now()
	doneCold, cachedCold := runSweep(t, svc, specs)
	cold := time.Since(coldStart)
	if cachedCold != 0 {
		t.Fatalf("cold sweep hit the cache %d times", cachedCold)
	}

	warmStart := time.Now()
	doneWarm, cachedWarm := runSweep(t, svc, specs)
	warm := time.Since(warmStart)
	if doneWarm != doneCold || cachedWarm != doneWarm {
		t.Fatalf("warm sweep: %d/%d cells cached, want all %d", cachedWarm, doneWarm, doneCold)
	}
	t.Logf("registry-wide sweep: cold %v, warm %v (%.0fx)", cold, warm, float64(cold)/float64(warm))
	if warm*10 > cold {
		t.Errorf("warm sweep %v not ≥10x faster than cold %v", warm, cold)
	}
}

// BenchmarkRegistrySweep measures the registry-wide sweep cold (every cell
// simulated) and warm (every cell answered from the deterministic result
// store) — the speedup is the serving layer's reason to exist.
func BenchmarkRegistrySweep(b *testing.B) {
	specs := sweepSpecs(time.Second, []int64{1})
	newServer := func(b *testing.B) *Server {
		svc, err := New(Config{JobConcurrency: 2})
		if err != nil {
			b.Fatal(err)
		}
		return svc
	}
	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			svc := newServer(b)
			b.StartTimer()
			runSweep(b, svc, specs)
			b.StopTimer()
			svc.Close()
			b.StartTimer()
		}
	})
	b.Run("warm", func(b *testing.B) {
		svc := newServer(b)
		defer svc.Close()
		runSweep(b, svc, specs) // populate
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			runSweep(b, svc, specs)
		}
	})
}
