package service

import (
	"context"
	goruntime "runtime"
	"time"

	"repro/internal/falsify"
	"repro/internal/obs"
)

// FalsifyJobSpec is a falsification-campaign request — the second job type
// the server runs. Where a JobSpec sweeps a fixed grid, a falsify job hunts:
// it hands the scenario to internal/falsify's adversarial search and streams
// campaign progress and counterexample finds over the same JSONL event
// endpoints as a sweep job.
type FalsifyJobSpec struct {
	// Scenario names the base scenario the search explores around.
	Scenario string `json:"scenario"`
	// Strategy is a falsify strategy spec ("random", "guided:8",
	// "schedule:16"); empty selects the default.
	Strategy string `json:"strategy,omitempty"`
	// Seed seeds the campaign; zero defaults to 1.
	Seed int64 `json:"seed,omitempty"`
	// Budget bounds candidate executions; zero defaults to
	// falsify.DefaultBudget.
	Budget int `json:"budget,omitempty"`
	// Duration overrides the per-candidate mission horizon.
	Duration Duration `json:"duration,omitempty"`
	// Base is the campaign-wide Params pin applied before searching.
	Base falsify.Params `json:"base,omitzero"`
	// Policies restricts the policy mutation pool; empty means every
	// registered policy.
	Policies []string `json:"policies,omitempty"`
	// ClampStorm sets the clamp-storm threshold (0 = default, <0 disables).
	ClampStorm int `json:"clamp_storm,omitempty"`
	// MaxCounterexamples bounds the ranked result list.
	MaxCounterexamples int `json:"max_counterexamples,omitempty"`
	// Register auto-registers counterexamples as "falsified/<hash>"
	// scenarios, visible in GET /scenarios and runnable as ordinary jobs.
	Register bool `json:"register,omitempty"`
	// Workers bounds the campaign's evaluation pool (never raised above the
	// server's own bound). Worker count never changes campaign results.
	Workers int `json:"workers,omitempty"`
}

// config compiles the wire spec into a campaign configuration.
func (fs FalsifyJobSpec) config() falsify.Config {
	return falsify.Config{
		Scenario:           fs.Scenario,
		Strategy:           fs.Strategy,
		Seed:               fs.Seed,
		Budget:             fs.Budget,
		Duration:           time.Duration(fs.Duration),
		Base:               fs.Base,
		Policies:           fs.Policies,
		ClampStorm:         fs.ClampStorm,
		MaxCounterexamples: fs.MaxCounterexamples,
		AutoRegister:       fs.Register,
	}
}

// budget resolves the effective execution budget (the job's cell total).
func (fs FalsifyJobSpec) budget() int {
	if fs.Budget > 0 {
		return fs.Budget
	}
	return falsify.DefaultBudget
}

// SubmitFalsify validates a falsification request and enqueues it on the same
// job queue as sweep jobs — one runner pool, one retention table, one event
// fan-out mechanism.
func (s *Server) SubmitFalsify(spec FalsifyJobSpec) (*Job, error) {
	if err := spec.config().Validate(); err != nil {
		return nil, err
	}
	return s.enqueue(func(id string) *Job {
		return &Job{
			id:      id,
			falsify: &spec,
			fan:     newFanout(s.cfg.EventRing),
			created: time.Now(),
			status:  StatusQueued,
		}
	})
}

// runFalsifyJob executes one falsification campaign. The job's fan-out is
// wired straight into the engine's observer list, so CampaignProgress and
// CounterexampleFound events stream to /jobs/{id}/events subscribers exactly
// like sweep events do; a second tap keeps the job's progress counters live.
func (s *Server) runFalsifyJob(job *Job) {
	ctx, cancel := context.WithCancel(s.ctx)
	defer cancel()
	if !job.begin(cancel) {
		job.finish(nil, context.Canceled)
		return
	}
	cfg := job.falsify.config()
	workers := s.cfg.Workers
	if workers <= 0 {
		workers = goruntime.GOMAXPROCS(0)
	}
	if job.falsify.Workers > 0 && job.falsify.Workers < workers {
		workers = job.falsify.Workers
	}
	cfg.Workers = workers
	cfg.Observers = []obs.Observer{job.fan, campaignTap{job}}
	res, err := falsify.Campaign(ctx, cfg)
	job.finishFalsify(res, err, ctx.Err())
}

// campaignTap mirrors campaign progress into the job's cell counters so
// polling clients (GET /jobs/{id}) see executions/budget without subscribing
// to the event stream.
type campaignTap struct{ job *Job }

// Interests implements obs.Interested.
func (t campaignTap) Interests() obs.KindSet {
	return obs.Kinds(obs.KindCampaignProgress, obs.KindCounterexample)
}

// OnEvent implements obs.Observer.
func (t campaignTap) OnEvent(e obs.Event) {
	if p, ok := e.(obs.CampaignProgress); ok {
		t.job.falsifyProgress(p.Executions, p.Found)
	}
}

// falsifyProgress records the latest campaign counters.
func (j *Job) falsifyProgress(executions, found int) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.cellsDone = executions
	j.falsifyFound = found
}

// falsifyReport returns the campaign result, or nil while the job runs.
func (j *Job) falsifyReport() *falsify.Result {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.falsifyResult
}

// finishFalsify records the campaign's terminal state. Like sweep jobs, a
// cancelled campaign keeps the partial result it accumulated.
func (j *Job) finishFalsify(res *falsify.Result, err, ctxErr error) {
	j.mu.Lock()
	j.falsifyResult = res
	j.finished = time.Now()
	switch {
	case ctxErr != nil || j.status == StatusCancelled:
		j.status = StatusCancelled
		j.err = context.Canceled
	case err != nil:
		j.status = StatusFailed
		j.err = err
	default:
		j.status = StatusDone
	}
	j.mu.Unlock()
	j.fan.Close()
}
