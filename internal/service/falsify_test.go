package service

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"repro/internal/falsify"
	"repro/internal/obs"
	"repro/internal/scenario"
)

// falsifySpec is a campaign that reliably finds counterexamples fast: the
// same (scenario, strategy, seed, budget, duration) tuple the committed
// corpus under internal/falsify/testdata/falsified was generated from.
const falsifySpec = `{"scenario":"surveillance-city","strategy":"guided:4","seed":1,"budget":16,"duration":"4s"}`

func postFalsify(t *testing.T, url, spec string) (JobView, int) {
	t.Helper()
	resp, err := http.Post(url+"/falsify", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var view JobView
	if resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
			t.Fatal(err)
		}
	}
	return view, resp.StatusCode
}

// TestFalsifyHTTPEndToEnd drives a falsification campaign through the HTTP
// front end: submit, stream the campaign events, then fetch the terminal
// result and report.
func TestFalsifyHTTPEndToEnd(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	view, code := postFalsify(t, ts.URL, falsifySpec)
	if code != http.StatusAccepted {
		t.Fatalf("POST /falsify = %d", code)
	}
	if view.Falsify == nil || view.Spec.Scenario != "" {
		t.Fatalf("falsify job view carries the wrong spec: %+v", view)
	}
	if view.Scenario != "surveillance-city" || view.Cells.Total != 16 {
		t.Fatalf("view = %+v, want scenario surveillance-city, 16 cells", view)
	}

	// The event stream carries well-formed campaign events and closes with
	// the job.
	resp, err := http.Get(ts.URL + "/jobs/" + view.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var progress, finds int
	var lastProgress obs.CampaignProgress
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		e, err := obs.UnmarshalEvent(sc.Bytes())
		if err != nil {
			t.Fatalf("malformed event line %q: %v", sc.Text(), err)
		}
		switch ev := e.(type) {
		case obs.CampaignProgress:
			progress++
			lastProgress = ev
		case obs.CounterexampleFound:
			finds++
			if ev.Fingerprint == "" || ev.Category == "" {
				t.Errorf("counterexample event missing identity: %+v", ev)
			}
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if progress == 0 {
		t.Fatal("stream carried no CampaignProgress events")
	}
	if lastProgress.Executions != 16 {
		t.Errorf("final progress executions = %d, want 16", lastProgress.Executions)
	}

	done := waitTerminal(t, ts, view.ID)
	if done.Status != StatusDone {
		t.Fatalf("job status = %s (err %q)", done.Status, done.Error)
	}
	if done.FalsifyResult == nil {
		t.Fatal("terminal falsify job has no result")
	}
	if got := len(done.FalsifyResult.Counterexamples); got != finds {
		t.Errorf("result has %d counterexamples, stream announced %d", got, finds)
	}
	if got := len(done.FalsifyResult.Counterexamples); got == 0 {
		t.Error("the corpus-seeding campaign found nothing over HTTP")
	}
	if done.Cells.Done != 16 {
		t.Errorf("cells done = %d, want 16", done.Cells.Done)
	}

	// /report serves the campaign result for falsify jobs.
	var report falsify.Result
	if code := getJSON(t, ts.URL+"/jobs/"+view.ID+"/report", &report); code != http.StatusOK {
		t.Fatalf("GET report = %d", code)
	}
	a, _ := json.Marshal(&report)
	b, _ := json.Marshal(done.FalsifyResult)
	if !bytes.Equal(a, b) {
		t.Errorf("/report and job view disagree:\n%s\n%s", a, b)
	}
}

// TestFalsifyDeterministicOverHTTP: two identical campaigns through the
// service produce byte-identical results — the wire preserves the engine's
// determinism contract.
func TestFalsifyDeterministicOverHTTP(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	var want []byte
	for i := 0; i < 2; i++ {
		view, code := postFalsify(t, ts.URL, falsifySpec)
		if code != http.StatusAccepted {
			t.Fatalf("POST /falsify = %d", code)
		}
		done := waitTerminal(t, ts, view.ID)
		if done.Status != StatusDone {
			t.Fatalf("run %d: status %s (err %q)", i, done.Status, done.Error)
		}
		got, _ := json.Marshal(done.FalsifyResult)
		if want == nil {
			want = got
		} else if !bytes.Equal(got, want) {
			t.Errorf("campaigns diverged:\n%s\n%s", want, got)
		}
	}
}

// TestFalsifyRegisterExposesScenario: a register=true campaign's finds appear
// in the scenario registry, runnable as ordinary sweep jobs.
func TestFalsifyRegisterExposesScenario(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	spec := strings.Replace(falsifySpec, `"seed":1`, `"seed":1,"register":true`, 1)
	view, code := postFalsify(t, ts.URL, spec)
	if code != http.StatusAccepted {
		t.Fatalf("POST /falsify = %d", code)
	}
	done := waitTerminal(t, ts, view.ID)
	if done.Status != StatusDone || len(done.FalsifyResult.Counterexamples) == 0 {
		t.Fatalf("campaign: %s, %d finds", done.Status, len(done.FalsifyResult.Counterexamples))
	}
	name := done.FalsifyResult.Counterexamples[0].Name
	if _, ok := scenario.Get(name); !ok {
		t.Fatalf("counterexample scenario %q not registered", name)
	}
	// The registered counterexample runs as a plain sweep job.
	sweep := postJob(t, ts, `{"scenario":"`+name+`","seeds":[`+
		jsonInt(done.FalsifyResult.Counterexamples[0].Candidate.Seed)+`]}`)
	final := waitTerminal(t, ts, sweep.ID)
	if final.Status != StatusDone {
		t.Fatalf("replay sweep: %s (err %q)", final.Status, final.Error)
	}
	if final.Report == nil || final.Report.Crashes == 0 {
		t.Errorf("replaying the crash counterexample as a sweep saw no crash: %+v", final.Report)
	}
}

func jsonInt(v int64) string {
	raw, _ := json.Marshal(v)
	return string(raw)
}

// TestFalsifyValidation: bad campaign requests bounce with 400 before any
// work queues.
func TestFalsifyValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, tc := range []struct{ name, body string }{
		{"missing scenario", `{}`},
		{"unknown scenario", `{"scenario":"no-such-scenario"}`},
		{"unknown strategy", `{"scenario":"surveillance-city","strategy":"annealing"}`},
		{"bad policy pool", `{"scenario":"surveillance-city","policies":["warp"]}`},
		{"unknown field", `{"scenario":"surveillance-city","bogus":1}`},
		{"negative budget", `{"scenario":"surveillance-city","budget":-2}`},
	} {
		if _, code := postFalsify(t, ts.URL, tc.body); code != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400", tc.name, code)
		}
	}
}

// TestFalsifyStrategiesEndpoint: GET /falsify/strategies lists the registry.
func TestFalsifyStrategiesEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	var names []string
	if code := getJSON(t, ts.URL+"/falsify/strategies", &names); code != http.StatusOK {
		t.Fatalf("GET /falsify/strategies = %d", code)
	}
	for _, want := range []string{"guided", "random", "schedule"} {
		found := false
		for _, n := range names {
			found = found || n == want
		}
		if !found {
			t.Errorf("strategy list %v missing %q", names, want)
		}
	}
}
