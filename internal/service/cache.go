package service

import (
	"container/list"
	"sync"
)

// DefaultCacheEntries bounds a Cache built with a non-positive capacity.
const DefaultCacheEntries = 4096

// CacheStats is a snapshot of the cache's counters, exposed on /stats.
type CacheStats struct {
	Entries   int   `json:"entries"`
	Capacity  int   `json:"capacity"`
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
}

// Cache is the deterministic result cache of the serving layer: an
// LRU-bounded map from canonical mission fingerprints
// (scenario.Spec.Fingerprint over the overridden spec and seed) to the
// canonical serialized bytes of the mission's verdict. Because a mission is
// fully deterministic per (spec, seed), the bytes stored under a key are the
// bytes any fresh run of that key would produce, so serving from the cache is
// observationally identical to re-simulating — just orders of magnitude
// faster. Values are stored and returned as opaque bytes; callers must not
// mutate a returned slice. Safe for concurrent use.
type Cache struct {
	mu        sync.Mutex
	capacity  int
	order     *list.List // front = most recently used
	items     map[string]*list.Element
	hits      int64
	misses    int64
	evictions int64
}

// cacheEntry is the list payload: the key rides along so eviction can delete
// the map entry without a reverse lookup.
type cacheEntry struct {
	key string
	val []byte
}

// NewCache builds a cache bounded at capacity entries (DefaultCacheEntries
// when capacity is not positive).
func NewCache(capacity int) *Cache {
	if capacity <= 0 {
		capacity = DefaultCacheEntries
	}
	return &Cache{
		capacity: capacity,
		order:    list.New(),
		items:    make(map[string]*list.Element, capacity),
	}
}

// Get returns the bytes stored under key and marks the entry most recently
// used. Every call counts as a hit or a miss.
func (c *Cache) Get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).val, true
}

// Put stores val under key, evicting the least recently used entry when the
// bound is exceeded. Storing an existing key refreshes its value and recency.
func (c *Cache) Put(key string, val []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*cacheEntry).val = val
		c.order.MoveToFront(el)
		return
	}
	c.items[key] = c.order.PushFront(&cacheEntry{key: key, val: val})
	if c.order.Len() > c.capacity {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry).key)
		c.evictions++
	}
}

// Len returns the number of entries currently cached.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Entries:   c.order.Len(),
		Capacity:  c.capacity,
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
	}
}
