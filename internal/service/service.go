// Package service is the simulation-as-a-service layer: a long-running
// server that accepts batch simulation jobs over HTTP/JSON, schedules them on
// a bounded job queue over the fleet engine, streams live progress as obs
// JSONL events, and answers repeated work from a deterministic result cache.
//
// The layering below it is unchanged — a job is just a named scenario from
// the registry (internal/scenario) plus declarative overrides and a seed
// sweep, expanded into fleet missions exactly like a CLI sweep would. What
// the service adds is the two things a one-shot CLI cannot:
//
//   - Persistence of work already done. Runs are fully deterministic per
//     (spec, seed) — the property the paper's repeatable RTA experiments rely
//     on — so every grid cell's verdict is stored under a canonical
//     fingerprint of its overridden spec and seed
//     (scenario.Spec.Fingerprint) in the tiered result store
//     (internal/store): an in-memory LRU in front of an optional crash-safe
//     disk tier (Config.StoreDir — a restarted server answers yesterday's
//     sweeps without simulating) and an optional peer tier (Config.Peers —
//     N servers form one logical cache over GET /store/{key}). A repeated
//     cell is served through the fleet engine's Reuse hook, byte-identical
//     to a fresh run and orders of magnitude faster, and a singleflight
//     group collapses concurrent identical fills so every fingerprint
//     simulates at most once however many jobs want it; /stats exposes the
//     per-tier hit/miss/eviction and singleflight counters.
//
//   - A live view of work in flight. Each job's missions fan their event
//     streams (run boundaries, mode switches, invariant violations, crashes,
//     landings) out to any number of HTTP subscribers as JSON Lines — the
//     same wire format as soter-sim -trace — with a bounded replay ring so
//     late subscribers still see the whole stream.
//
// Server is transport-agnostic (Submit/Job/Cancel/Stats are plain methods);
// Handler adapts it to HTTP. cmd/soter-serve is the binary.
package service

import (
	"context"
	"errors"
	"fmt"
	goruntime "runtime"
	"sync"
	"time"

	"repro/internal/fleet"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/store"
)

// ErrBusy marks capacity rejections (job queue full, job table full): the
// request was well-formed and may succeed later. The HTTP layer maps it to
// 503 so clients retry instead of discarding the request as malformed.
var ErrBusy = errors.New("server busy")

// ErrClosed rejects submissions to a server that is shutting down.
var ErrClosed = errors.New("server closed")

// Config sizes the server.
type Config struct {
	// Workers is the default fleet worker bound per job (0 = GOMAXPROCS);
	// a JobSpec may lower it for itself.
	Workers int
	// JobConcurrency is how many jobs run at once (default 1: jobs queue
	// behind each other, missions parallelize inside each job).
	JobConcurrency int
	// QueueDepth bounds the number of queued-but-not-started jobs (default
	// 64); submissions beyond it are rejected rather than buffered without
	// bound.
	QueueDepth int
	// CacheEntries bounds the result store's in-memory tier (default
	// store.DefaultMemoryEntries).
	CacheEntries int
	// StoreDir, when set, adds a crash-safe disk tier to the result store
	// rooted at the directory: results survive restarts, and a server
	// reopened on the same directory serves previous sweeps without
	// simulating.
	StoreDir string
	// StoreMaxBytes bounds the disk tier (default store.DefaultDiskMaxBytes);
	// least-recently-accessed entries are evicted beyond it.
	StoreMaxBytes int64
	// Peers lists sibling soter-serve base URLs ("http://host:port"). When
	// set, missing results are fetched from peers (rendezvous-hashed per
	// fingerprint) over GET /store/{key} before being simulated locally, so
	// N processes form one logical cache. A down peer degrades to local
	// compute, never an error.
	Peers []string
	// MaxJobs bounds how many jobs are retained (default 1024). When a
	// submission would exceed it, the oldest jobs in a terminal state are
	// evicted (their reports and event rings released); active jobs are
	// never evicted, and a submission that cannot fit under the bound is
	// rejected.
	MaxJobs int
	// EventRing is the per-job replay ring capacity (default 8192 events).
	EventRing int
	// EventBuffer is the per-subscriber channel buffer (default 256).
	EventBuffer int
}

func (c Config) jobConcurrency() int {
	if c.JobConcurrency > 0 {
		return c.JobConcurrency
	}
	return 1
}

func (c Config) queueDepth() int {
	if c.QueueDepth > 0 {
		return c.QueueDepth
	}
	return 64
}

func (c Config) maxJobs() int {
	if c.MaxJobs > 0 {
		return c.MaxJobs
	}
	return 1024
}

// Stats is the /stats payload: the result store's per-tier and singleflight
// counters plus job lifecycle counts.
type Stats struct {
	Store store.Stats `json:"store"`
	Jobs  JobCounts   `json:"jobs"`
}

// JobCounts tallies jobs by lifecycle state.
type JobCounts struct {
	Total     int `json:"total"`
	Queued    int `json:"queued"`
	Running   int `json:"running"`
	Done      int `json:"done"`
	Failed    int `json:"failed"`
	Cancelled int `json:"cancelled"`
}

// Server owns the job queue, the runner pool and the tiered result store.
type Server struct {
	cfg   Config
	store *store.Tiered

	ctx       context.Context
	stop      context.CancelFunc
	queue     chan *Job
	wg        sync.WaitGroup
	closeOnce sync.Once

	mu     sync.Mutex
	closed bool // set under mu before the runners stop; gates Submit
	jobs   map[string]*Job
	order  []string // submission order, for listing
	seq    int
}

// New builds a server and starts its job runners. Close releases them. It
// errors when the configured store tiers cannot be opened (unwritable
// StoreDir, malformed peer URL) — a server that silently dropped its
// durability would serve correct results while quietly re-simulating
// everything.
func New(cfg Config) (*Server, error) {
	opts := store.Options{Memory: store.NewMemory(cfg.CacheEntries)}
	if cfg.StoreDir != "" {
		disk, err := store.NewDisk(cfg.StoreDir, cfg.StoreMaxBytes)
		if err != nil {
			return nil, err
		}
		opts.Disk = disk
	}
	if len(cfg.Peers) > 0 {
		peers, err := store.NewPeers(store.PeersConfig{Peers: cfg.Peers})
		if err != nil {
			return nil, err
		}
		opts.Peers = peers
	}
	ctx, stop := context.WithCancel(context.Background()) //soter:ctx-ok documented shim: the server owns its lifecycle root; Close cancels it
	s := &Server{
		cfg:   cfg,
		store: store.NewTiered(opts),
		ctx:   ctx,
		stop:  stop,
		queue: make(chan *Job, cfg.queueDepth()),
		jobs:  make(map[string]*Job),
	}
	for i := 0; i < cfg.jobConcurrency(); i++ {
		s.wg.Add(1)
		go s.runner()
	}
	return s, nil
}

// Close cancels every queued and running job and waits for the runners to
// drain. The server rejects submissions afterwards.
func (s *Server) Close() {
	s.closeOnce.Do(func() {
		// The flag is flipped under mu before the runners stop, and Submit
		// enqueues under the same lock — so after this point no new job can
		// reach the queue, and the final drain below leaves nothing behind.
		s.mu.Lock()
		s.closed = true
		s.mu.Unlock()
		s.stop()
		s.wg.Wait()
		// Jobs that were queued when the runners exited would otherwise stay
		// StatusQueued forever (and their event streams open).
		for {
			select {
			case job := <-s.queue:
				job.requestCancel()
				job.finish(nil, context.Canceled)
			default:
				// Closed last: with the runners drained no fill can be in
				// flight, so closing the store wakes nobody mid-simulation.
				_ = s.store.Close()
				return
			}
		}
	})
}

// Store exposes the tiered result store (tests seed or inspect it).
func (s *Server) Store() *store.Tiered { return s.store }

// Submit validates the request against the scenario registry and enqueues it.
// It returns the queued job, or an error when the spec does not resolve, the
// queue is full, the retention bound cannot admit another job, or the server
// is closed.
func (s *Server) Submit(spec JobSpec) (*Job, error) {
	resolved, seeds, keys, err := spec.resolve()
	if err != nil {
		return nil, err
	}
	return s.enqueue(func(id string) *Job {
		return &Job{
			id:       id,
			spec:     spec,
			resolved: resolved,
			seeds:    seeds,
			keys:     keys,
			fan:      newFanout(s.cfg.EventRing),
			created:  time.Now(),
			status:   StatusQueued,
		}
	})
}

// enqueue registers and queues a freshly built job — the shared tail of
// Submit and SubmitFalsify. Registration, retention eviction and the
// (non-blocking) enqueue happen under one lock, so a full queue never
// unregisters a neighbour's job and Close — which flips s.closed under the
// same lock before stopping the runners — can never strand a job in the
// queue.
func (s *Server) enqueue(build func(id string) *Job) (*Job, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	s.evictTerminalLocked(s.cfg.maxJobs() - 1)
	if len(s.jobs) >= s.cfg.maxJobs() {
		return nil, fmt.Errorf("job table full (%d active jobs): %w", len(s.jobs), ErrBusy)
	}
	s.seq++
	job := build(fmt.Sprintf("job-%06d", s.seq))
	select {
	case s.queue <- job:
	default:
		return nil, fmt.Errorf("job queue full (%d queued): %w", cap(s.queue), ErrBusy)
	}
	s.jobs[job.id] = job
	s.order = append(s.order, job.id)
	return job, nil
}

// evictTerminalLocked drops the oldest terminal jobs until at most keep
// remain in the table. Active (queued/running) jobs are never evicted.
// Callers hold s.mu.
func (s *Server) evictTerminalLocked(keep int) {
	if keep < 0 || len(s.jobs) <= keep {
		return
	}
	kept := s.order[:0]
	for i, id := range s.order {
		if len(s.jobs) <= keep {
			kept = append(kept, s.order[i:]...)
			break
		}
		if s.jobs[id].Status().Terminal() {
			delete(s.jobs, id)
			continue
		}
		kept = append(kept, id)
	}
	s.order = kept
}

// Job returns the job by id.
func (s *Server) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Jobs returns every job in submission order.
func (s *Server) Jobs() []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Job, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.jobs[id])
	}
	return out
}

// Cancel cancels the job: a queued job is marked cancelled before it starts,
// a running job has its context cancelled (partial results are kept). It
// reports whether the job exists.
func (s *Server) Cancel(id string) bool {
	j, ok := s.Job(id)
	if !ok {
		return false
	}
	j.requestCancel()
	return true
}

// Stats snapshots the store counters and job tallies.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	jobs := make([]*Job, 0, len(s.jobs))
	for _, j := range s.jobs {
		jobs = append(jobs, j)
	}
	s.mu.Unlock()
	st := Stats{Store: s.store.Stats()}
	for _, j := range jobs {
		st.Jobs.Total++
		switch j.Status() {
		case StatusQueued:
			st.Jobs.Queued++
		case StatusRunning:
			st.Jobs.Running++
		case StatusDone:
			st.Jobs.Done++
		case StatusFailed:
			st.Jobs.Failed++
		case StatusCancelled:
			st.Jobs.Cancelled++
		}
	}
	return st
}

// runner drains the job queue until the server closes.
func (s *Server) runner() {
	defer s.wg.Done()
	for {
		select {
		case <-s.ctx.Done():
			// Drain: jobs still queued at shutdown are marked cancelled so
			// clients polling them see a terminal state.
			for {
				select {
				case job := <-s.queue:
					job.requestCancel()
					job.finish(nil, context.Canceled)
				default:
					return
				}
			}
		case job := <-s.queue:
			s.runJob(job)
		}
	}
}

// runJob dispatches a dequeued job to its executor: falsification campaigns
// to the falsify engine, certification campaigns to the certify engine,
// everything else to the fleet sweep below.
func (s *Server) runJob(job *Job) {
	switch {
	case job.falsify != nil:
		s.runFalsifyJob(job)
	case job.certify != nil:
		s.runCertifyJob(job)
	default:
		s.runSweepJob(job)
	}
}

// runSweepJob executes one batch job over the fleet engine with the tiered
// result store wired into the per-mission reuse hook. Every cell goes through
// the store's singleflight group: a miss elects this mission the fill leader
// (it simulates and completes the fill in OnResult), while a concurrent
// identical cell — in this job or any other — blocks on the leader and shares
// its bytes. Determinism makes the wait safe: whatever the leader produces is
// exactly what the waiter's own simulation would have produced.
func (s *Server) runSweepJob(job *Job) {
	ctx, cancel := context.WithCancel(s.ctx)
	defer cancel()
	if !job.begin(cancel) {
		// Cancelled while queued.
		job.finish(nil, context.Canceled)
		return
	}
	missions := job.missions()
	// A job may lower the worker bound for itself but never raise it above
	// the server's — worker counts are a server capacity decision, not a
	// client-controlled one.
	workers := s.cfg.Workers
	if workers <= 0 {
		workers = goruntime.GOMAXPROCS(0)
	}
	if job.spec.Workers > 0 && job.spec.Workers < workers {
		workers = job.spec.Workers
	}
	// fills[i] is written by mission i's Reuse call and consumed by the same
	// worker goroutine's OnResult call; distinct indices never share an
	// element, so the slice needs no lock.
	fills := make([]*store.Fill, len(missions))
	rep := fleet.Run(ctx, missions, fleet.Options{
		Workers: workers,
		Reuse: func(i int, m fleet.Mission) (fleet.MissionResult, bool) {
			val, fill := s.store.Acquire(ctx, job.keys[i])
			if fill != nil {
				// Miss, and this mission leads the fill: simulate, then
				// Complete (or Abort) in OnResult below.
				fills[i] = fill
				return fleet.MissionResult{}, false
			}
			if val == nil {
				// Cancelled while waiting: simulate without caching duties
				// (the run is about to be cancelled too).
				return fleet.MissionResult{}, false
			}
			p, err := store.DecodePayload(val)
			if err != nil {
				// A corrupt entry must not poison the job; fall back to
				// simulating the cell.
				return fleet.MissionResult{}, false
			}
			return fleet.MissionResult{Metrics: p.Metrics, Switches: p.Switches}, true
		},
		OnResult: func(i int, m fleet.Mission, res fleet.MissionResult) {
			if fill := fills[i]; fill != nil {
				fills[i] = nil
				raw, err := store.Payload{Metrics: res.Metrics, Switches: res.Switches}.Encode()
				if res.Err == nil && !res.Cached && err == nil {
					fill.Complete(ctx, raw)
				} else {
					// Failed or cancelled: waiters wake, re-probe and elect
					// a new leader rather than inheriting the failure.
					fill.Abort()
				}
			}
			job.progress(res.Cached)
		},
	})
	// Missions a cancelled batch never started got no OnResult; their leader
	// slots must not strand waiters in other jobs.
	for _, fill := range fills {
		if fill != nil {
			fill.Abort()
		}
	}
	job.finish(rep, ctx.Err())
}

// missions expands the job into fleet missions, with the job's event fan-out
// attached to every mission's observer list.
func (j *Job) missions() []fleet.Mission {
	missions := make([]fleet.Mission, len(j.seeds))
	for i, seed := range j.seeds {
		seed := seed
		missions[i] = fleet.Mission{
			Name: fmt.Sprintf("%s/seed-%d", j.resolved.Name, seed),
			Seed: seed,
			Build: func() (sim.RunConfig, error) {
				cfg, err := j.resolved.Build(seed)
				if err != nil {
					return cfg, err
				}
				cfg.Observers = append(cfg.Observers, j.fan)
				return cfg, nil
			},
		}
	}
	return missions
}

// ID returns the job's identifier.
func (j *Job) ID() string { return j.id }

// Status returns the job's lifecycle state.
func (j *Job) Status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.status
}

// Report returns the aggregated fleet report, or nil while the job has not
// reached a terminal state.
func (j *Job) Report() *fleet.Report {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.report
}

// Err returns the job-terminating error, if any.
func (j *Job) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// Subscribe attaches an event consumer to the job's stream (see
// fanout.Subscribe). The mask is intersected with StreamKinds — kinds outside
// it are never captured in the first place.
func (j *Job) Subscribe(mask obs.KindSet, buffer int) ([]obs.Event, <-chan obs.Event, func()) {
	return j.fan.Subscribe(mask&StreamKinds, buffer)
}

// begin transitions queued → running; it reports false when the job was
// cancelled while queued.
func (j *Job) begin(cancel func()) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.status != StatusQueued {
		return false
	}
	j.status = StatusRunning
	j.started = time.Now()
	j.cancel = cancel
	return true
}

// requestCancel marks a queued job cancelled, or cancels a running job's
// context. Terminal jobs are left untouched.
func (j *Job) requestCancel() {
	j.mu.Lock()
	defer j.mu.Unlock()
	switch j.status {
	case StatusQueued:
		j.status = StatusCancelled
	case StatusRunning:
		if j.cancel != nil {
			j.cancel()
		}
	}
}

// progress bumps the completed-cell counters.
func (j *Job) progress(cached bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.cellsDone++
	if cached {
		j.cellsCached++
	}
}

// finish records the terminal state and closes the event stream. The report
// is recorded even for cancelled jobs — partial results are kept, and the
// fleet report is internally consistent about what never ran.
func (j *Job) finish(rep *fleet.Report, ctxErr error) {
	j.mu.Lock()
	j.report = rep
	j.finished = time.Now()
	switch {
	case ctxErr != nil || j.status == StatusCancelled:
		j.status = StatusCancelled
		j.err = context.Canceled
	case rep != nil && rep.FirstErr() != nil:
		j.status = StatusFailed
		j.err = rep.FirstErr()
	default:
		j.status = StatusDone
	}
	j.mu.Unlock()
	// Closed outside the lock after the terminal state is visible, so a
	// subscriber that sees its channel close finds the report in place.
	j.fan.Close()
}
