package service

import (
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"time"

	"repro/internal/certify"
	"repro/internal/falsify"
	"repro/internal/fleet"
	"repro/internal/mission"
	"repro/internal/plan"
	"repro/internal/scenario"
)

// Status is a job's lifecycle state.
type Status string

// Job lifecycle states. A job moves queued → running → one of the terminal
// states; cancellation is honoured both while queued and mid-run.
const (
	StatusQueued    Status = "queued"
	StatusRunning   Status = "running"
	StatusDone      Status = "done"
	StatusFailed    Status = "failed"
	StatusCancelled Status = "cancelled"
)

// Terminal reports whether the status is final.
func (s Status) Terminal() bool {
	return s == StatusDone || s == StatusFailed || s == StatusCancelled
}

// Duration is a time.Duration that marshals as a Go duration string ("1m30s")
// and unmarshals from either that form or integer nanoseconds — the
// human-friendly wire form of the job API.
type Duration time.Duration

// MarshalJSON implements json.Marshaler.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// UnmarshalJSON implements json.Unmarshaler.
func (d *Duration) UnmarshalJSON(b []byte) error {
	var raw any
	if err := json.Unmarshal(b, &raw); err != nil {
		return err
	}
	switch v := raw.(type) {
	case string:
		parsed, err := time.ParseDuration(v)
		if err != nil {
			return fmt.Errorf("duration %q: %w", v, err)
		}
		*d = Duration(parsed)
		return nil
	case float64:
		*d = Duration(time.Duration(v))
		return nil
	default:
		return fmt.Errorf("duration must be a string like \"30s\" or integer nanoseconds, got %T", raw)
	}
}

// Overrides is the declarative override set a job may apply on top of its
// base scenario — the JSON-friendly mirror of the knobs scenario.Override
// closures tweak. Pointer fields distinguish "not overridden" from an
// explicit zero. The overridden spec (not the override set) is what gets
// canonically hashed, so two jobs reaching the same effective spec share
// cache entries regardless of how they spelled it.
type Overrides struct {
	// Duration replaces the mission length.
	Duration Duration `json:"duration,omitempty"`
	// Protection selects the motion layer: "rta", "ac-only" or "sc-only".
	Protection string `json:"protection,omitempty"`
	// AC selects the untrusted motion primitive: "aggressive" or "learned".
	AC string `json:"ac,omitempty"`
	// PlannerBug injects an RRT* defect: "none", "skip-edge-check",
	// "unchecked-shortcut" or "stale-obstacles"; PlannerBugRate sets its
	// trigger probability.
	PlannerBug     string   `json:"planner_bug,omitempty"`
	PlannerBugRate *float64 `json:"planner_bug_rate,omitempty"`
	// JitterProb enables best-effort-scheduling outages; JitterSCOnly
	// restricts them to SC/DM nodes.
	JitterProb   *float64 `json:"jitter_prob,omitempty"`
	JitterSCOnly *bool    `json:"jitter_sc_only,omitempty"`
	// InitialBattery and DrainMultiple override the battery model.
	InitialBattery *float64 `json:"initial_battery,omitempty"`
	DrainMultiple  *float64 `json:"drain_multiple,omitempty"`
	// Hysteresis overrides the φsafer horizon multiplier.
	Hysteresis *float64 `json:"hysteresis,omitempty"`
	// MotionDelta overrides the motion-primitive DM period Δ.
	MotionDelta Duration `json:"motion_delta,omitempty"`
	// Policy selects the motion module's switching policy by registry spec
	// ("soter-fig9", "sticky-sc:25", "hysteresis", "always-ac", "always-sc").
	Policy string `json:"policy,omitempty"`
	// InvariantMonitor toggles the runtime φInv monitor.
	InvariantMonitor *bool `json:"invariant_monitor,omitempty"`
}

// apply returns the spec with the overrides folded in.
func (o Overrides) apply(s scenario.Spec) (scenario.Spec, error) {
	if o.Duration != 0 {
		s.Duration = time.Duration(o.Duration)
	}
	switch o.Protection {
	case "":
	case "rta":
		s.Protection = mission.ProtectRTA
	case "ac-only":
		s.Protection = mission.ProtectACOnly
	case "sc-only":
		s.Protection = mission.ProtectSCOnly
	default:
		return s, fmt.Errorf("unknown protection %q (want rta | ac-only | sc-only)", o.Protection)
	}
	switch o.AC {
	case "":
	case "aggressive":
		s.AC = mission.ACAggressive
	case "learned":
		s.AC = mission.ACLearned
	default:
		return s, fmt.Errorf("unknown ac %q (want aggressive | learned)", o.AC)
	}
	switch o.PlannerBug {
	case "":
	case "none":
		s.PlannerBug, s.PlannerBugRate = plan.BugNone, 0
	case "skip-edge-check":
		s.PlannerBug = plan.BugSkipEdgeCheck
	case "unchecked-shortcut":
		s.PlannerBug = plan.BugUncheckedShortcut
	case "stale-obstacles":
		s.PlannerBug = plan.BugStaleObstacles
	default:
		return s, fmt.Errorf("unknown planner_bug %q", o.PlannerBug)
	}
	if o.PlannerBugRate != nil {
		s.PlannerBugRate = *o.PlannerBugRate
	}
	if o.JitterProb != nil {
		s.JitterProb = *o.JitterProb
	}
	if o.JitterSCOnly != nil {
		s.JitterSCOnly = *o.JitterSCOnly
	}
	if o.InitialBattery != nil {
		s.InitialBattery = *o.InitialBattery
	}
	if o.DrainMultiple != nil {
		s.DrainMultiple = *o.DrainMultiple
	}
	if o.Hysteresis != nil {
		s.Hysteresis = *o.Hysteresis
	}
	if o.MotionDelta != 0 {
		s.MotionDelta = time.Duration(o.MotionDelta)
	}
	if o.Policy != "" {
		// Validated (against the policy registry) by Spec.Validate in resolve.
		s.SwitchPolicy = o.Policy
	}
	if o.InvariantMonitor != nil {
		s.InvariantMonitor = *o.InvariantMonitor
	}
	return s, nil
}

// JobSpec is a batch simulation request: a named scenario from the registry,
// optional declarative overrides, and the seeds to sweep (either an explicit
// list or a contiguous [seed_start, seed_start+seed_count) range). Every
// (overridden spec, seed) pair becomes one independent grid cell.
type JobSpec struct {
	// Scenario names the base spec in the scenario registry.
	Scenario string `json:"scenario"`
	// Overrides is applied on top of the base spec.
	Overrides Overrides `json:"overrides,omitzero"`
	// Seeds lists the sweep's seeds explicitly; mutually exclusive with the
	// range form below. Empty with SeedCount 0 defaults to {1}.
	Seeds []int64 `json:"seeds,omitempty"`
	// SeedStart / SeedCount describe a contiguous seed range.
	SeedStart int64 `json:"seed_start,omitempty"`
	SeedCount int   `json:"seed_count,omitempty"`
	// Workers bounds the job's fleet worker pool (0 = GOMAXPROCS).
	Workers int `json:"workers,omitempty"`
}

// seeds resolves the seed sweep.
func (js JobSpec) seeds() ([]int64, error) {
	if len(js.Seeds) > 0 && (js.SeedCount > 0 || js.SeedStart != 0) {
		return nil, fmt.Errorf("seeds and seed_start/seed_count are mutually exclusive")
	}
	if js.SeedCount < 0 {
		return nil, fmt.Errorf("seed_count %d must be non-negative", js.SeedCount)
	}
	if js.SeedStart != 0 && js.SeedCount == 0 {
		// Silently running the default seed would hand back results for a
		// sweep the client never asked for.
		return nil, fmt.Errorf("seed_start without seed_count")
	}
	if len(js.Seeds) > 0 {
		return js.Seeds, nil
	}
	if js.SeedCount > 0 {
		out := make([]int64, js.SeedCount)
		for i := range out {
			out[i] = js.SeedStart + int64(i)
		}
		return out, nil
	}
	return []int64{1}, nil
}

// resolve validates the request against the scenario registry and compiles it
// into the effective spec, the seed sweep and the per-cell cache keys.
func (js JobSpec) resolve() (scenario.Spec, []int64, []string, error) {
	if js.Scenario == "" {
		return scenario.Spec{}, nil, nil, fmt.Errorf("missing scenario name")
	}
	base, ok := scenario.Get(js.Scenario)
	if !ok {
		return scenario.Spec{}, nil, nil, fmt.Errorf("unknown scenario %q (have: %s)",
			js.Scenario, strings.Join(scenario.Names(), ", "))
	}
	spec, err := js.Overrides.apply(base)
	if err != nil {
		return scenario.Spec{}, nil, nil, fmt.Errorf("scenario %q: %w", js.Scenario, err)
	}
	if err := spec.Validate(); err != nil {
		return scenario.Spec{}, nil, nil, err
	}
	seeds, err := js.seeds()
	if err != nil {
		return scenario.Spec{}, nil, nil, err
	}
	keys, err := spec.Fingerprints(seeds)
	if err != nil {
		return scenario.Spec{}, nil, nil, err
	}
	return spec, seeds, keys, nil
}

// Job is one submitted batch with its live state. All mutable fields are
// guarded by mu; the event fan-out has its own synchronization. Exactly one
// of the three request forms is set: spec (a fleet sweep), falsify (a
// falsification campaign) or certify (a certification campaign).
type Job struct {
	id       string
	spec     JobSpec
	resolved scenario.Spec // base spec with the overrides folded in
	seeds    []int64
	keys     []string // per-seed cache keys, aligned with seeds
	falsify  *FalsifyJobSpec
	certify  *CertifyJobSpec
	fan      *fanout
	created  time.Time

	mu            sync.Mutex
	status        Status
	started       time.Time
	finished      time.Time
	cancel        func()
	report        *fleet.Report
	falsifyResult *falsify.Result
	certifyResult *certify.Result
	falsifyFound  int
	err           error
	cellsDone     int
	cellsCached   int
}
