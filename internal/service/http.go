package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/pprof"
	"strings"
	"time"

	"repro/internal/certify"
	"repro/internal/falsify"
	"repro/internal/fleet"
	"repro/internal/obs"
	"repro/internal/rta"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/store"
)

// JobView is the JSON projection of a Job returned by the job endpoints.
// Exactly one of Spec, Falsify and Certify is populated, matching the job
// type.
type JobView struct {
	ID       string          `json:"id"`
	Scenario string          `json:"scenario"`
	Status   Status          `json:"status"`
	Spec     JobSpec         `json:"spec,omitzero"`
	Falsify  *FalsifyJobSpec `json:"falsify,omitempty"`
	Certify  *CertifyJobSpec `json:"certify,omitempty"`
	Cells    CellsView       `json:"cells"`
	Created  time.Time       `json:"created"`
	Started  time.Time       `json:"started,omitzero"`
	Finished time.Time       `json:"finished,omitzero"`
	Error    string          `json:"error,omitempty"`
	// Report is present once a sweep job reached a terminal state;
	// FalsifyResult and CertifyResult are its campaign-job counterparts.
	Report        *ReportView     `json:"report,omitempty"`
	FalsifyResult *falsify.Result `json:"falsify_result,omitempty"`
	CertifyResult *certify.Result `json:"certify_result,omitempty"`
}

// CellsView is the job's grid-cell progress.
type CellsView struct {
	Total  int `json:"total"`
	Done   int `json:"done"`
	Cached int `json:"cached"`
}

// ReportView is the JSON projection of a fleet.Report: the aggregates plus
// one row per mission with its deterministic verdict.
type ReportView struct {
	// Policy is the canonical switching-policy spec every mission of the job
	// ran ("soter-fig9" unless overridden) — sweep output stays
	// self-describing when jobs differ only by policy.
	Policy              string     `json:"policy"`
	Missions            int        `json:"missions"`
	Failed              int        `json:"failed"`
	Crashes             int        `json:"crashes"`
	Landings            int        `json:"landings"`
	Disengagements      int        `json:"disengagements"`
	Reengagements       int        `json:"reengagements"`
	InvariantViolations int        `json:"invariant_violations"`
	DroppedFirings      int        `json:"dropped_firings"`
	SimTime             Duration   `json:"sim_time"`
	Wall                Duration   `json:"wall"`
	DistanceKm          float64    `json:"distance_km"`
	Workers             int        `json:"workers"`
	Results             []CellView `json:"results"`
}

// CellView is one mission's verdict inside a ReportView.
type CellView struct {
	Name    string      `json:"name"`
	Seed    int64       `json:"seed"`
	Cached  bool        `json:"cached,omitempty"`
	WallMS  float64     `json:"wall_ms"`
	Error   string      `json:"error,omitempty"`
	Metrics sim.Metrics `json:"metrics,omitzero"`
}

// reportView projects a fleet report into its wire form; policy is the job's
// canonical switching-policy spec.
func reportView(rep *fleet.Report, policy string) *ReportView {
	if rep == nil {
		return nil
	}
	v := &ReportView{
		Policy:              policy,
		Missions:            rep.Missions,
		Failed:              rep.Failed,
		Crashes:             rep.Crashes,
		Landings:            rep.Landings,
		Disengagements:      rep.Disengagements,
		Reengagements:       rep.Reengagements,
		InvariantViolations: rep.InvariantViolations,
		DroppedFirings:      rep.DroppedFirings,
		SimTime:             Duration(rep.SimTime),
		Wall:                Duration(rep.Wall),
		DistanceKm:          rep.DistanceKm,
		Workers:             rep.Workers,
		Results:             make([]CellView, 0, len(rep.Results)),
	}
	for _, res := range rep.Results {
		cell := CellView{
			Name:   res.Name,
			Seed:   res.Seed,
			Cached: res.Cached,
			WallMS: float64(res.Wall) / float64(time.Millisecond),
		}
		if res.Err != nil {
			cell.Error = res.Err.Error()
		} else {
			cell.Metrics = res.Metrics
		}
		v.Results = append(v.Results, cell)
	}
	return v
}

// view snapshots the job into its wire form.
func (j *Job) view() JobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := JobView{
		ID:       j.id,
		Scenario: j.spec.Scenario,
		Status:   j.status,
		Spec:     j.spec,
		Cells:    CellsView{Total: len(j.seeds), Done: j.cellsDone, Cached: j.cellsCached},
		Created:  j.created,
		Started:  j.started,
		Finished: j.finished,
	}
	if j.falsify != nil {
		v.Scenario = j.falsify.Scenario
		v.Falsify = j.falsify
		// A campaign's "cells" are its execution budget.
		v.Cells = CellsView{Total: j.falsify.budget(), Done: j.cellsDone}
	}
	if j.certify != nil {
		v.Scenario = j.certify.Scenario
		v.Certify = j.certify
		// A certification's "cells" are its seed budget; early stopping
		// legitimately finishes with Done < Total.
		v.Cells = CellsView{Total: j.certify.maxSeeds(), Done: j.cellsDone}
	}
	if j.err != nil {
		v.Error = j.err.Error()
	}
	if j.status.Terminal() {
		switch {
		case j.falsify != nil:
			v.FalsifyResult = j.falsifyResult
		case j.certify != nil:
			v.CertifyResult = j.certifyResult
		default:
			v.Report = reportView(j.report, j.policyName())
		}
	}
	return v
}

// policyName is the canonical switching-policy spec of the job's resolved
// scenario ("soter-fig9" unless overridden).
func (j *Job) policyName() string {
	name, err := rta.CanonicalPolicySpec(j.resolved.SwitchPolicy)
	if err != nil {
		// The spec was registry-validated at submit; an error here can only
		// mean the policy was unregistered since — fall back to the raw spec.
		return j.resolved.SwitchPolicy
	}
	return name
}

// scenarioView is one /scenarios catalog entry.
type scenarioView struct {
	Name        string   `json:"name"`
	Description string   `json:"description"`
	Duration    Duration `json:"duration"`
}

// Handler adapts the server to HTTP. Routes:
//
//	GET    /healthz             liveness probe
//	GET    /scenarios           the scenario catalog (incl. auto-registered
//	                            falsified/<hash> counterexamples)
//	GET    /stats               cache counters and job tallies
//	POST   /jobs                submit a JobSpec; 202 + JobView
//	POST   /falsify             submit a FalsifyJobSpec; 202 + JobView
//	POST   /certify             submit a CertifyJobSpec; 202 + JobView
//	GET    /falsify/strategies  the falsification strategy catalog
//	GET    /jobs                list jobs (both types)
//	GET    /jobs/{id}           job status, progress and (when done) result
//	GET    /jobs/{id}/events    the job's event stream as JSON Lines
//	GET    /jobs/{id}/report    the report/result alone; 409 until terminal
//	POST   /jobs/{id}/cancel    cancel (also DELETE /jobs/{id})
//	GET    /store/{key}         raw result bytes by fingerprint — the peer
//	                            protocol (local tiers only, never recursive)
//	GET    /debug/pprof/...     live runtime profiles (CPU, heap, goroutine)
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	// Registering pprof on the server's own mux (rather than the global
	// http.DefaultServeMux side effect of a blank import) keeps the profiles
	// reachable however the handler is mounted — `go tool pprof
	// http://host/debug/pprof/profile` against a serving instance under fleet
	// load is the live counterpart of soter-bench's -cpuprofile.
	mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("GET /scenarios", func(w http.ResponseWriter, r *http.Request) {
		specs := scenario.All()
		out := make([]scenarioView, 0, len(specs))
		for _, sp := range specs {
			out = append(out, scenarioView{Name: sp.Name, Description: sp.Description, Duration: Duration(sp.Duration)})
		}
		writeJSON(w, http.StatusOK, out)
	})
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Stats())
	})
	// The peer protocol: siblings configured with this server in their -peers
	// list fetch result bytes here. Only the local tiers (memory, disk) are
	// consulted, so a peer lookup can never recurse into further peer
	// lookups; the checksum header lets the fetcher reject garbled bodies.
	mux.HandleFunc("GET /store/{key}", func(w http.ResponseWriter, r *http.Request) {
		key := r.PathValue("key")
		if !store.ValidKey(key) {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("malformed store key %q", key))
			return
		}
		val, ok := s.store.GetLocal(r.Context(), key)
		if !ok {
			writeErr(w, http.StatusNotFound, fmt.Errorf("no entry for %s", key))
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set(store.SumHeader, store.Sum(val))
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write(val)
	})
	mux.HandleFunc("POST /jobs", func(w http.ResponseWriter, r *http.Request) {
		var spec JobSpec
		dec := json.NewDecoder(r.Body)
		dec.DisallowUnknownFields()
		if err := dec.Decode(&spec); err != nil {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("decode job spec: %w", err))
			return
		}
		job, err := s.Submit(spec)
		if err != nil {
			status := http.StatusBadRequest
			if errors.Is(err, ErrBusy) || errors.Is(err, ErrClosed) {
				status = http.StatusServiceUnavailable
			}
			writeErr(w, status, err)
			return
		}
		writeJSON(w, http.StatusAccepted, job.view())
	})
	mux.HandleFunc("POST /falsify", func(w http.ResponseWriter, r *http.Request) {
		var spec FalsifyJobSpec
		dec := json.NewDecoder(r.Body)
		dec.DisallowUnknownFields()
		if err := dec.Decode(&spec); err != nil {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("decode falsify spec: %w", err))
			return
		}
		job, err := s.SubmitFalsify(spec)
		if err != nil {
			status := http.StatusBadRequest
			if errors.Is(err, ErrBusy) || errors.Is(err, ErrClosed) {
				status = http.StatusServiceUnavailable
			}
			writeErr(w, status, err)
			return
		}
		writeJSON(w, http.StatusAccepted, job.view())
	})
	mux.HandleFunc("POST /certify", func(w http.ResponseWriter, r *http.Request) {
		var spec CertifyJobSpec
		dec := json.NewDecoder(r.Body)
		dec.DisallowUnknownFields()
		if err := dec.Decode(&spec); err != nil {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("decode certify spec: %w", err))
			return
		}
		job, err := s.SubmitCertify(spec)
		if err != nil {
			status := http.StatusBadRequest
			if errors.Is(err, ErrBusy) || errors.Is(err, ErrClosed) {
				status = http.StatusServiceUnavailable
			}
			writeErr(w, status, err)
			return
		}
		writeJSON(w, http.StatusAccepted, job.view())
	})
	mux.HandleFunc("GET /falsify/strategies", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, falsify.StrategyNames())
	})
	mux.HandleFunc("GET /jobs", func(w http.ResponseWriter, r *http.Request) {
		jobs := s.Jobs()
		out := make([]JobView, 0, len(jobs))
		for _, j := range jobs {
			out = append(out, j.view())
		}
		writeJSON(w, http.StatusOK, out)
	})
	mux.HandleFunc("GET /jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		if j, ok := s.Job(r.PathValue("id")); ok {
			writeJSON(w, http.StatusOK, j.view())
			return
		}
		writeErr(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
	})
	mux.HandleFunc("GET /jobs/{id}/report", func(w http.ResponseWriter, r *http.Request) {
		j, ok := s.Job(r.PathValue("id"))
		if !ok {
			writeErr(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
			return
		}
		if !j.Status().Terminal() {
			writeErr(w, http.StatusConflict, fmt.Errorf("job %s is %s; report not ready", j.ID(), j.Status()))
			return
		}
		if j.falsify != nil {
			writeJSON(w, http.StatusOK, j.falsifyReport())
			return
		}
		if j.certify != nil {
			writeJSON(w, http.StatusOK, j.certifyReport())
			return
		}
		writeJSON(w, http.StatusOK, reportView(j.Report(), j.policyName()))
	})
	mux.HandleFunc("GET /jobs/{id}/events", s.handleEvents)
	cancel := func(w http.ResponseWriter, r *http.Request) {
		// Hold the *Job across the cancel so a concurrent retention eviction
		// (which only removes table entries) cannot leave us dereferencing a
		// second, failed lookup.
		j, ok := s.Job(r.PathValue("id"))
		if !ok {
			writeErr(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
			return
		}
		j.requestCancel()
		writeJSON(w, http.StatusOK, j.view())
	}
	mux.HandleFunc("POST /jobs/{id}/cancel", cancel)
	mux.HandleFunc("DELETE /jobs/{id}", cancel)
	return mux
}

// handleEvents streams the job's event stream as JSON Lines: first the replay
// ring (so a subscriber arriving after the job finished still sees the whole
// retained stream), then live events until the job ends or the client leaves.
// An optional ?kinds=mode_switch,crash narrows the stream.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
		return
	}
	mask := StreamKinds
	if arg := r.URL.Query().Get("kinds"); arg != "" {
		var err error
		if mask, err = parseKinds(arg); err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
	}
	replay, live, cancel := j.Subscribe(mask, s.cfg.EventBuffer)
	defer cancel()

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	writeEvent := func(e obs.Event) bool {
		line, err := obs.MarshalEvent(e)
		if err != nil {
			return false
		}
		if _, err := w.Write(append(line, '\n')); err != nil {
			return false
		}
		if flusher != nil {
			flusher.Flush()
		}
		return true
	}
	for _, e := range replay {
		if !writeEvent(e) {
			return
		}
	}
	for {
		select {
		case <-r.Context().Done():
			return
		case e, ok := <-live:
			if !ok {
				return
			}
			if !writeEvent(e) {
				return
			}
		}
	}
}

// parseKinds resolves a comma-separated list of event kind names ("crash",
// "mode_switch", ...) into a mask, restricted to the kinds the fan-out
// captures.
func parseKinds(arg string) (obs.KindSet, error) {
	byName := make(map[string]obs.Kind, obs.KindCount)
	for k := obs.Kind(0); int(k) < obs.KindCount; k++ {
		byName[k.String()] = k
	}
	var mask obs.KindSet
	for _, name := range strings.Split(arg, ",") {
		k, ok := byName[strings.TrimSpace(name)]
		if !ok {
			return 0, fmt.Errorf("unknown event kind %q", name)
		}
		if !StreamKinds.Has(k) {
			// Valid kind, but one the fan-out never captures — an empty
			// 200 stream would look like a job that emits nothing.
			return 0, fmt.Errorf("event kind %q is not carried by job streams (streamed kinds: %s)",
				name, streamKindNames())
		}
		mask |= obs.Kinds(k)
	}
	return mask, nil
}

// streamKindNames lists the wire names of StreamKinds, for error messages.
func streamKindNames() string {
	var names []string
	for k := obs.Kind(0); int(k) < obs.KindCount; k++ {
		if StreamKinds.Has(k) {
			names = append(names, k.String())
		}
	}
	return strings.Join(names, ", ")
}

// writeJSON writes v as the JSON response body.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// writeErr writes a JSON error envelope.
func writeErr(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
