package service

import (
	"context"
	goruntime "runtime"
	"time"

	"repro/internal/certify"
	"repro/internal/falsify"
	"repro/internal/obs"
)

// CertifyJobSpec is a certification request — the third job type the server
// runs. Where a sweep job reports per-seed verdicts and a falsify job hunts
// counterexamples, a certify job answers a statistical question: is the
// cell's crash probability below the threshold at the requested confidence?
// Progress streams as certify_progress events (one per batch) over the same
// JSONL event endpoints; the terminal certify.Result is served by
// GET /jobs/{id}/report.
type CertifyJobSpec struct {
	// Scenario names the base scenario of the certified cell.
	Scenario string `json:"scenario"`
	// Overrides is the declarative spec delta defining the cell — the same
	// Params form falsification counterexamples carry, so a falsified cell
	// pastes straight into a certification request.
	Overrides falsify.Params `json:"overrides,omitzero"`
	// Threshold is the crash-probability bound under test, in (0,1). Required.
	Threshold float64 `json:"threshold"`
	// Confidence is the two-sided confidence level; zero defaults to
	// certify.DefaultConfidence.
	Confidence float64 `json:"confidence,omitempty"`
	// MaxSeeds bounds the sweep; zero defaults to certify.DefaultMaxSeeds.
	MaxSeeds int `json:"max_seeds,omitempty"`
	// Batch is the early-stopping granularity; zero defaults to
	// certify.DefaultBatch.
	Batch int `json:"batch,omitempty"`
	// Seed is the base of the deterministic seed sequence; zero defaults to 1.
	Seed int64 `json:"seed,omitempty"`
	// Duration overrides the cell's mission horizon.
	Duration Duration `json:"duration,omitempty"`
	// FaultActivation (<1) switches the spec's fault profile to the sporadic
	// model; Boost (>1) adds importance sampling on top. See certify.Config.
	FaultActivation float64 `json:"fault_activation,omitempty"`
	Boost           float64 `json:"boost,omitempty"`
	// Workers bounds the campaign's evaluation pool (never raised above the
	// server's own bound). Worker count never changes certification results.
	Workers int `json:"workers,omitempty"`
}

// config compiles the wire spec into a campaign configuration.
func (cs CertifyJobSpec) config() certify.Config {
	return certify.Config{
		Scenario:        cs.Scenario,
		Overrides:       cs.Overrides,
		Threshold:       cs.Threshold,
		Confidence:      cs.Confidence,
		MaxSeeds:        cs.MaxSeeds,
		Batch:           cs.Batch,
		Seed:            cs.Seed,
		Duration:        time.Duration(cs.Duration),
		FaultActivation: cs.FaultActivation,
		Boost:           cs.Boost,
	}
}

// maxSeeds resolves the effective seed budget (the job's cell total).
func (cs CertifyJobSpec) maxSeeds() int {
	if cs.MaxSeeds > 0 {
		return cs.MaxSeeds
	}
	return certify.DefaultMaxSeeds
}

// SubmitCertify validates a certification request and enqueues it on the same
// job queue as sweep and falsify jobs — one runner pool, one retention table,
// one event fan-out mechanism.
func (s *Server) SubmitCertify(spec CertifyJobSpec) (*Job, error) {
	if err := spec.config().Validate(); err != nil {
		return nil, err
	}
	return s.enqueue(func(id string) *Job {
		return &Job{
			id:      id,
			certify: &spec,
			fan:     newFanout(s.cfg.EventRing),
			created: time.Now(),
			status:  StatusQueued,
		}
	})
}

// runCertifyJob executes one certification campaign. The job's fan-out is
// wired straight into the engine's observer list, so CertifyProgress events
// stream to /jobs/{id}/events subscribers exactly like sweep events do; a
// second tap keeps the job's progress counters live. A cancelled campaign
// keeps the partial (inconclusive) result it accumulated.
func (s *Server) runCertifyJob(job *Job) {
	ctx, cancel := context.WithCancel(s.ctx)
	defer cancel()
	if !job.begin(cancel) {
		job.finish(nil, context.Canceled)
		return
	}
	cfg := job.certify.config()
	workers := s.cfg.Workers
	if workers <= 0 {
		workers = goruntime.GOMAXPROCS(0)
	}
	if job.certify.Workers > 0 && job.certify.Workers < workers {
		workers = job.certify.Workers
	}
	cfg.Workers = workers
	cfg.Observers = []obs.Observer{job.fan, certifyTap{job}}
	// Deterministic cells (FaultActivation == 1, no boost) share fingerprints
	// with sweep jobs, so a certification after a warm sweep consumes stored
	// outcomes instead of fresh simulations; the engine ignores the store for
	// sporadic/boosted cells.
	cfg.Store = s.store
	res, err := certify.Certify(ctx, cfg)
	job.finishCertify(res, err, ctx.Err())
}

// certifyTap mirrors campaign progress into the job's cell counters so
// polling clients (GET /jobs/{id}) see seeds/budget without subscribing to
// the event stream.
type certifyTap struct{ job *Job }

// Interests implements obs.Interested.
func (t certifyTap) Interests() obs.KindSet {
	return obs.Kinds(obs.KindCertifyProgress)
}

// OnEvent implements obs.Observer.
func (t certifyTap) OnEvent(e obs.Event) {
	if p, ok := e.(obs.CertifyProgress); ok {
		t.job.certifyProgress(p.Seeds)
	}
}

// certifyProgress records the latest campaign seed count.
func (j *Job) certifyProgress(seeds int) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.cellsDone = seeds
}

// certifyReport returns the campaign result, or nil while the job runs.
func (j *Job) certifyReport() *certify.Result {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.certifyResult
}

// finishCertify records the campaign's terminal state. A cancelled campaign
// carries both a partial result and the cancellation error, so the job keeps
// the inconclusive partial while still reporting cancelled status.
func (j *Job) finishCertify(res *certify.Result, err, ctxErr error) {
	j.mu.Lock()
	j.certifyResult = res
	j.finished = time.Now()
	switch {
	case ctxErr != nil || j.status == StatusCancelled:
		j.status = StatusCancelled
		j.err = context.Canceled
	case err != nil:
		j.status = StatusFailed
		j.err = err
	default:
		j.status = StatusDone
	}
	j.mu.Unlock()
	j.fan.Close()
}
