package service

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
)

// TestConcurrentIdenticalJobsSimulateOnce is the singleflight guarantee at
// the job level: several identical jobs racing through the runner pool
// simulate each fingerprint at most once — one fill per unique (spec, seed)
// cell, everything else collapses onto it or reads it back.
func TestConcurrentIdenticalJobsSimulateOnce(t *testing.T) {
	svc, ts := newTestServer(t, Config{JobConcurrency: 4})
	spec := `{"scenario":"canyon-corridor","overrides":{"duration":"2s"},"seeds":[41,42]}`
	const jobs, cells = 4, 2

	// Submit all copies before any can finish, so they genuinely race.
	ids := make([]string, 0, jobs)
	for i := 0; i < jobs; i++ {
		ids = append(ids, postJob(t, ts, spec).ID)
	}
	var done, cached int
	for _, id := range ids {
		view := waitTerminal(t, ts, id)
		if view.Status != StatusDone {
			t.Fatalf("job %s: %s (%q)", id, view.Status, view.Error)
		}
		done += view.Cells.Done
		cached += view.Cells.Cached
	}
	if done != jobs*cells {
		t.Fatalf("done cells = %d, want %d", done, jobs*cells)
	}

	st := svc.Stats().Store
	if st.Fills != cells {
		t.Errorf("fills = %d, want exactly %d — some fingerprint simulated more than once", st.Fills, cells)
	}
	if st.Aborts != 0 {
		t.Errorf("aborts = %d, want 0", st.Aborts)
	}
	// Every cell beyond the two leaders was answered without simulating.
	if cached != jobs*cells-cells {
		t.Errorf("cached cells = %d, want %d", cached, jobs*cells-cells)
	}
	if st.Collapsed+st.Memory.Hits < int64(jobs*cells-cells) {
		t.Errorf("collapsed %d + memory hits %d don't cover the %d reused cells",
			st.Collapsed, st.Memory.Hits, jobs*cells-cells)
	}
}

// TestWarmRestartServedFromDisk is the durability property end to end: a
// fresh process pointed at the same -store-dir answers a repeated job
// entirely from disk — zero fresh simulations, metrics byte-identical to the
// pre-restart report.
func TestWarmRestartServedFromDisk(t *testing.T) {
	dir := t.TempDir()
	spec := `{"scenario":"canyon-corridor","overrides":{"duration":"2s"},"seeds":[1,2]}`

	svc1, ts1 := newTestServer(t, Config{StoreDir: dir})
	first := waitTerminal(t, ts1, postJob(t, ts1, spec).ID)
	if first.Status != StatusDone || first.Cells.Cached != 0 {
		t.Fatalf("cold run: %+v (%q)", first.Cells, first.Error)
	}
	golden := metricsJSON(t, first)
	ts1.Close()
	svc1.Close()

	svc2, ts2 := newTestServer(t, Config{StoreDir: dir})
	second := waitTerminal(t, ts2, postJob(t, ts2, spec).ID)
	if second.Status != StatusDone {
		t.Fatalf("warm run: %s (%q)", second.Status, second.Error)
	}
	if second.Cells.Cached != second.Cells.Done || second.Cells.Done != 2 {
		t.Fatalf("warm run simulated: %+v, want all %d cells cached", second.Cells, 2)
	}
	st := svc2.Stats().Store
	if st.Fills != 0 {
		t.Errorf("restarted process filled %d cells, want 0", st.Fills)
	}
	if st.Disk.Hits < 2 {
		t.Errorf("disk hits = %d, want >= 2 — the warm answers did not come from disk", st.Disk.Hits)
	}
	if warmed := metricsJSON(t, second); !bytes.Equal(golden, warmed) {
		t.Errorf("post-restart metrics diverge:\n pre  %s\n post %s", golden, warmed)
	}
}

// metricsJSON canonicalises a report's per-seed metrics for byte comparison,
// dropping the timing metadata (wall, cached) that legitimately differs
// between a fresh and a remembered run.
func metricsJSON(t *testing.T, view JobView) []byte {
	t.Helper()
	if view.Report == nil {
		t.Fatal("no report")
	}
	rows := make([]any, 0, len(view.Report.Results))
	for _, r := range view.Report.Results {
		rows = append(rows, map[string]any{"name": r.Name, "seed": r.Seed, "metrics": r.Metrics})
	}
	raw, err := json.Marshal(rows)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// TestCertifyAfterWarmSweepReusesStore: a deterministic certify cell shares
// fingerprints with sweep cells, so certifying after a warm sweep consumes
// zero fresh simulations for the overlapping seeds. Certify's seed sequence
// is Seed + 101·i, so a 3-seed campaign from seed 1 overlaps the sweep
// {1, 102, 203}.
func TestCertifyAfterWarmSweepReusesStore(t *testing.T) {
	svc, ts := newTestServer(t, Config{})
	sweep := `{"scenario":"canyon-corridor","overrides":{"duration":"2s"},"seeds":[1,102,203]}`
	done := waitTerminal(t, ts, postJob(t, ts, sweep).ID)
	if done.Status != StatusDone {
		t.Fatalf("sweep: %s (%q)", done.Status, done.Error)
	}
	warm := svc.Stats().Store
	if warm.Fills != 3 {
		t.Fatalf("sweep filled %d cells, want 3", warm.Fills)
	}

	resp, err := http.Post(ts.URL+"/certify", "application/json", strings.NewReader(
		`{"scenario":"canyon-corridor","duration":"2s","threshold":0.9,"seed":1,"max_seeds":3,"batch":3}`))
	if err != nil {
		t.Fatal(err)
	}
	var view JobView
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /certify = %d", resp.StatusCode)
	}
	final := waitTerminal(t, ts, view.ID)
	if final.Status != StatusDone {
		t.Fatalf("certify: %s (%q)", final.Status, final.Error)
	}
	if final.CertifyResult == nil || final.CertifyResult.Seeds != 3 {
		t.Fatalf("certify result = %+v, want 3 seeds consumed", final.CertifyResult)
	}

	st := svc.Stats().Store
	if st.Fills != warm.Fills {
		t.Errorf("certify ran %d fresh simulations, want 0 — fingerprints did not overlap the sweep",
			st.Fills-warm.Fills)
	}
	if st.Memory.Hits < warm.Memory.Hits+3 {
		t.Errorf("memory hits went %d -> %d, want +3 from the certify reads", warm.Memory.Hits, st.Memory.Hits)
	}
}

// TestSporadicCertifyBypassesStore: a sporadic-fault certify cell alters the
// mission, so it must never consume or produce sweep fingerprints.
func TestSporadicCertifyBypassesStore(t *testing.T) {
	svc, ts := newTestServer(t, Config{})
	sweep := `{"scenario":"canyon-corridor","overrides":{"duration":"2s"},"seeds":[1]}`
	waitTerminal(t, ts, postJob(t, ts, sweep).ID)
	warm := svc.Stats().Store

	resp, err := http.Post(ts.URL+"/certify", "application/json", strings.NewReader(
		`{"scenario":"canyon-corridor","duration":"2s","threshold":0.9,"seed":1,"max_seeds":1,"batch":1,"fault_activation":0.5}`))
	if err != nil {
		t.Fatal(err)
	}
	var view JobView
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	final := waitTerminal(t, ts, view.ID)
	if final.Status != StatusDone {
		t.Fatalf("certify: %s (%q)", final.Status, final.Error)
	}
	st := svc.Stats().Store
	if st.Fills != warm.Fills || st.Memory.Hits != warm.Memory.Hits {
		t.Errorf("sporadic certify touched the store: fills %d -> %d, hits %d -> %d",
			warm.Fills, st.Fills, warm.Memory.Hits, st.Memory.Hits)
	}
}

// TestPeerFetchThrough: a second process with no local state of its own
// answers a job from its sibling's store over GET /store/{key}.
func TestPeerFetchThrough(t *testing.T) {
	spec := `{"scenario":"canyon-corridor","overrides":{"duration":"2s"},"seeds":[5]}`

	_, tsA := newTestServer(t, Config{})
	a := waitTerminal(t, tsA, postJob(t, tsA, spec).ID)
	if a.Status != StatusDone {
		t.Fatalf("job on A: %s (%q)", a.Status, a.Error)
	}

	svcB, tsB := newTestServer(t, Config{Peers: []string{tsA.URL}})
	b := waitTerminal(t, tsB, postJob(t, tsB, spec).ID)
	if b.Status != StatusDone {
		t.Fatalf("job on B: %s (%q)", b.Status, b.Error)
	}
	if b.Cells.Cached != 1 {
		t.Fatalf("B simulated instead of fetching from its peer: %+v", b.Cells)
	}
	st := svcB.Stats().Store
	if st.Peers.Hits < 1 {
		t.Errorf("peer hits = %d, want >= 1", st.Peers.Hits)
	}
	if st.Fills != 0 {
		t.Errorf("B filled %d cells, want 0", st.Fills)
	}
	if ja, jb := metricsJSON(t, a), metricsJSON(t, b); !bytes.Equal(ja, jb) {
		t.Errorf("peer-served metrics diverge:\n A %s\n B %s", ja, jb)
	}
}
