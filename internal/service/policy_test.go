package service

import (
	"encoding/json"
	"testing"
)

// TestPolicyDistinguishesCache: jobs that differ only in the switching-policy
// override never conflate cache entries — the end-to-end form of the
// Fingerprint guarantee — while resubmitting the same policy is a warm hit,
// and reports stay self-describing through ReportView.Policy.
func TestPolicyDistinguishesCache(t *testing.T) {
	svc, ts := newTestServer(t, Config{})
	base := `{"scenario":"canyon-corridor","overrides":{"duration":"2s"},"seeds":[7]}`
	sticky := `{"scenario":"canyon-corridor","overrides":{"duration":"2s","policy":"sticky-sc"},"seeds":[7]}`

	first := waitTerminal(t, ts, postJob(t, ts, base).ID)
	if first.Status != StatusDone || first.Cells.Cached != 0 {
		t.Fatalf("base job: %+v (err %q)", first.Cells, first.Error)
	}
	if first.Report.Policy != "soter-fig9" {
		t.Errorf("base report policy = %q, want soter-fig9", first.Report.Policy)
	}

	// Same scenario, seed and duration, different policy: a fresh run, not a
	// cache hit aliased onto the fig9 verdict.
	polJob := waitTerminal(t, ts, postJob(t, ts, sticky).ID)
	if polJob.Status != StatusDone {
		t.Fatalf("policy job failed: %q", polJob.Error)
	}
	if polJob.Cells.Cached != 0 {
		t.Fatalf("job differing only in policy was served from cache: %+v", polJob.Cells)
	}
	if polJob.Report.Policy != "sticky-sc:10" {
		t.Errorf("policy report policy = %q, want the canonical sticky-sc:10", polJob.Report.Policy)
	}

	// Resubmitting the same policy job is the warm path.
	again := waitTerminal(t, ts, postJob(t, ts, sticky).ID)
	if again.Cells.Cached != 1 {
		t.Fatalf("identical policy job not cached: %+v", again.Cells)
	}

	// And the two policies really computed different verdicts' identities:
	// same mission geometry, different switching stats are likely but not
	// guaranteed on a short run — the hard guarantee is the distinct cache
	// identity asserted above, so just pin that both reports exist.
	a, _ := json.Marshal(first.Report.Results[0].Metrics)
	b, _ := json.Marshal(polJob.Report.Results[0].Metrics)
	if len(a) == 0 || len(b) == 0 {
		t.Fatal("missing metrics in terminal reports")
	}
	if st := svc.Stats(); st.Store.Memory.Hits != 1 || st.Store.Memory.Misses < 2 {
		t.Errorf("store memory stats = %+v, want exactly 1 hit and >= 2 misses", st.Store.Memory)
	}

	// An unknown policy is a 400 at submit, not a failed job.
	if _, err := svc.Submit(JobSpec{Scenario: "canyon-corridor", Overrides: Overrides{Policy: "no-such"}}); err == nil {
		t.Error("unknown policy accepted at submit")
	}
}
