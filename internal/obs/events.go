// Package obs is the unified observability layer of the execution surface.
// The paper's whole evaluation is about *observing* a running RTA system —
// mode switches, φInv checks, trajectories, crashes — and before this layer
// existed every consumer tapped a different ad-hoc channel: the executor's
// single switch hook, the simulator's private metric closures, the fleet
// engine's re-derived views. Package obs replaces them with one typed event
// stream and many composable consumers:
//
//   - Event is a closed union of everything that happens during a run:
//     RunStart/RunEnd, NodeFired, ModeSwitch, InvariantViolation,
//     TimeProgress, TrajectorySample, BatterySample, Crash, Landed — plus
//     the falsification-campaign pair CampaignProgress/CounterexampleFound,
//     which report on a *search over* runs rather than a single run.
//   - Observer consumes events; Multi fans one stream out to many observers;
//     ObserverFunc adapts plain functions.
//   - Built-in sinks cover the common consumers: JSONLWriter streams the run
//     as one JSON object per line, Recorder keeps a bounded in-memory tail,
//     and MetricsSink aggregates the stream into the Metrics the paper's
//     evaluation reports.
//
// Emitters (internal/runtime's executor, internal/sim's closed-loop runner,
// internal/live's real-time runner) deliver events synchronously on the run
// goroutine in a deterministic order: the same seed yields the identical
// event sequence, which is what makes recorded streams replayable and fleet
// runs comparable at any worker count.
package obs

import (
	"time"

	"repro/internal/geom"
	"repro/internal/rta"
)

// Kind identifies an event variant.
type Kind uint8

// The event kinds, in the order they typically appear in a stream.
const (
	KindRunStart Kind = iota
	KindRunEnd
	KindNodeFired
	KindModeSwitch
	KindInvariantViolation
	KindTimeProgress
	KindTrajectorySample
	KindBatterySample
	KindCrash
	KindLanded
	KindCampaignProgress
	KindCounterexample
	KindCertifyProgress
	numKinds
)

// KindCount is the number of event kinds — the size of per-kind dispatch
// tables (see ByKind).
const KindCount = int(numKinds)

// String returns the kind's wire name (the "kind" field of the JSONL form).
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "unknown"
}

var kindNames = [numKinds]string{
	KindRunStart:           "run_start",
	KindRunEnd:             "run_end",
	KindNodeFired:          "node_fired",
	KindModeSwitch:         "mode_switch",
	KindInvariantViolation: "invariant_violation",
	KindTimeProgress:       "time_progress",
	KindTrajectorySample:   "trajectory_sample",
	KindBatterySample:      "battery_sample",
	KindCrash:              "crash",
	KindLanded:             "landed",
	KindCampaignProgress:   "campaign_progress",
	KindCounterexample:     "counterexample",
	KindCertifyProgress:    "certify_progress",
}

// KindSet is a bitmask of event kinds. Observers may narrow the kinds they
// receive by implementing Interested; emitters use the mask to skip both the
// dispatch and the event construction for kinds nobody wants, which keeps
// the per-firing hot path free when only aggregate consumers are attached.
type KindSet uint16

// AllKinds selects every event kind.
const AllKinds = KindSet(1<<numKinds - 1)

// Kinds builds a set from the listed kinds.
func Kinds(ks ...Kind) KindSet {
	var s KindSet
	for _, k := range ks {
		s |= 1 << k
	}
	return s
}

// Has reports whether the set contains k.
func (s KindSet) Has(k Kind) bool { return s&(1<<k) != 0 }

// Event is the typed union of everything observable during a run. Concrete
// events are small value types; consumers dispatch with a type switch (or on
// Kind). Events are delivered synchronously on the emitting goroutine and
// must not be mutated; retaining them is safe.
type Event interface {
	// Kind identifies the variant without a type switch.
	Kind() Kind
	// Time is the run-relative timestamp ct of the event.
	Time() time.Duration
}

// RunStart opens a run's event stream. Modules lists the RTA modules of the
// system (every one starts in SC mode), so aggregating sinks can initialise
// per-module accounting without reaching into the system under test.
type RunStart struct {
	T time.Duration `json:"t_ns"`
	// Seed is the run's randomness seed.
	Seed int64 `json:"seed"`
	// Label names the run (scenario name, mission name); may be empty.
	Label string `json:"label,omitempty"`
	// Modules lists the system's RTA module names.
	Modules []string `json:"modules,omitempty"`
}

// RunEnd closes a run's event stream with the final state that is not
// derivable from earlier events.
type RunEnd struct {
	T time.Duration `json:"t_ns"`
	// TargetsVisited is the application-level visit counter at run end.
	TargetsVisited int `json:"targets_visited"`
	// Battery is the final charge fraction.
	Battery float64 `json:"battery"`
	// Err carries the run-terminating error ("context canceled", ...); empty
	// for a run that reached its deadline or mission end.
	Err string `json:"err,omitempty"`
}

// NodeFired reports one discrete node firing (DM-STEP or AC-OR-SC-STEP), or
// a firing skipped by the drop filter when Dropped is set (a missed deadline
// under best-effort scheduling — the Section V-D failure mode).
type NodeFired struct {
	T    time.Duration `json:"t_ns"`
	Node string        `json:"node"`
	// DM marks a decision-module firing.
	DM bool `json:"dm,omitempty"`
	// Dropped marks a firing skipped by the drop filter.
	Dropped bool `json:"dropped,omitempty"`
}

// ModeSwitch reports a decision-module mode change — a disengagement when
// To = SC (the certified controller "takes over"), a re-engagement when
// To = AC.
type ModeSwitch struct {
	T      time.Duration `json:"t_ns"`
	Module string        `json:"module"`
	From   rta.Mode      `json:"from"`
	To     rta.Mode      `json:"to"`
	// Reason explains the decision behind the switch: "ttf-trip" (the safety
	// check disengaged the AC), "recovery" (the policy's recovery condition
	// re-engaged it), "clamped" (the framework overrode a policy's AC
	// proposal in an unsafe state) or "coordinated" (forced demotion).
	Reason rta.SwitchReason `json:"reason,omitempty"`
	// Coordinated marks a forced demotion through a coordinated-switching
	// link rather than the module's own DM decision.
	Coordinated bool `json:"coordinated,omitempty"`
}

// InvariantViolation reports that the Theorem 3.1 invariant φInv (or φsafe)
// failed at a DM sampling instant, as detected by the runtime monitor.
type InvariantViolation struct {
	T      time.Duration `json:"t_ns"`
	Module string        `json:"module"`
	Mode   rta.Mode      `json:"mode"`
}

// TimeProgress reports a DISCRETE-TIME-PROGRESS-STEP: the clock advanced
// from Prev to T and the environment hook ran over the interval.
type TimeProgress struct {
	T    time.Duration `json:"t_ns"`
	Prev time.Duration `json:"prev_ns"`
}

// TrajectorySample is one physics sub-step of the flown trajectory.
type TrajectorySample struct {
	T   time.Duration `json:"t_ns"`
	Pos geom.Vec3     `json:"pos"`
	Vel geom.Vec3     `json:"vel"`
	// Mode is the motion-primitive module's mode at the sample (ModeAC when
	// the system has no protected motion layer).
	Mode rta.Mode `json:"mode"`
	// Landed marks samples taken after touchdown.
	Landed bool `json:"landed,omitempty"`
}

// BatterySample is a periodic reading of the battery charge fraction.
type BatterySample struct {
	T      time.Duration `json:"t_ns"`
	Charge float64       `json:"charge"`
}

// Crash reports the entry into a collision episode (an obstacle or ground
// impact). Runs configured to keep flying after a crash emit one Crash per
// distinct episode.
type Crash struct {
	T   time.Duration `json:"t_ns"`
	Pos geom.Vec3     `json:"pos"`
}

// Landed reports an intentional touchdown.
type Landed struct {
	T   time.Duration `json:"t_ns"`
	Pos geom.Vec3     `json:"pos"`
	// Battery is the charge fraction at touchdown.
	Battery float64 `json:"battery"`
}

// CampaignProgress reports the state of a falsification campaign after a
// batch of candidate executions. Campaign events use a pseudo-clock — T is
// the number of executions completed, expressed as nanoseconds — so streams
// stay monotone and deterministic without consulting a wall clock.
type CampaignProgress struct {
	T time.Duration `json:"t_ns"`
	// Scenario is the base scenario the campaign searches around.
	Scenario string `json:"scenario,omitempty"`
	// Strategy is the canonical strategy spec ("random", "guided:8", ...).
	Strategy string `json:"strategy,omitempty"`
	// Executions is the number of candidate runs completed so far.
	Executions int `json:"executions"`
	// Budget is the campaign's total execution budget.
	Budget int `json:"budget"`
	// Found is the number of distinct counterexamples found so far.
	Found int `json:"found"`
	// BestSeverity is the highest severity observed so far (0 when none).
	BestSeverity float64 `json:"best_severity"`
}

// CounterexampleFound reports one distinct counterexample the moment a
// falsification campaign confirms it. T is the campaign pseudo-clock (see
// CampaignProgress). The fingerprint plus seed is the complete replay key.
type CounterexampleFound struct {
	T time.Duration `json:"t_ns"`
	// Strategy is the canonical strategy spec that found it.
	Strategy string `json:"strategy,omitempty"`
	// Scenario is the auto-registered regression scenario name
	// ("falsified/<hash>"); empty when auto-registration is off or the
	// counterexample is a schedule interleaving.
	Scenario string `json:"scenario,omitempty"`
	// Fingerprint is the canonical replay fingerprint of the counterexample.
	Fingerprint string `json:"fingerprint"`
	// Seed is the run seed that reproduces the violation.
	Seed int64 `json:"seed"`
	// Category classifies the violation: "crash", "invariant" or
	// "clamp-storm". (Not "kind": that key is the JSONL discriminator.)
	Category string `json:"category"`
	// Severity is the oracle's severity score for the run.
	Severity float64 `json:"severity"`
}

// CertifyProgress reports the state of a statistical certification campaign
// after a batch of seed evaluations: the crash-probability estimate with its
// narrowing confidence interval against the target threshold. T is the
// certification pseudo-clock — seeds consumed, expressed as nanoseconds —
// so streams stay monotone and deterministic without consulting a wall
// clock. Verdict is empty while the campaign is still running and carries
// the terminal verdict ("certified", "refuted", "inconclusive-at-budget")
// on the final event.
type CertifyProgress struct {
	T time.Duration `json:"t_ns"`
	// Scenario is the certified cell's base scenario.
	Scenario string `json:"scenario,omitempty"`
	// Policy is the cell's canonical switching-policy spec.
	Policy string `json:"policy,omitempty"`
	// Seeds is the number of seeds consumed so far; MaxSeeds the budget.
	Seeds    int `json:"seeds"`
	MaxSeeds int `json:"max_seeds"`
	// Crashes is the raw crash count among evaluated runs.
	Crashes int `json:"crashes"`
	// Estimate is the crash-probability estimate (weighted in the
	// importance-sampling mode); [Lo, Hi] its confidence interval.
	Estimate float64 `json:"estimate"`
	Lo       float64 `json:"lo"`
	Hi       float64 `json:"hi"`
	// Threshold is the crash-probability bound being tested.
	Threshold float64 `json:"threshold"`
	// Verdict is the terminal verdict; empty until the campaign concludes.
	Verdict string `json:"verdict,omitempty"`
}

// Kind implements Event.
func (RunStart) Kind() Kind            { return KindRunStart }
func (RunEnd) Kind() Kind              { return KindRunEnd }
func (NodeFired) Kind() Kind           { return KindNodeFired }
func (ModeSwitch) Kind() Kind          { return KindModeSwitch }
func (InvariantViolation) Kind() Kind  { return KindInvariantViolation }
func (TimeProgress) Kind() Kind        { return KindTimeProgress }
func (TrajectorySample) Kind() Kind    { return KindTrajectorySample }
func (BatterySample) Kind() Kind       { return KindBatterySample }
func (Crash) Kind() Kind               { return KindCrash }
func (Landed) Kind() Kind              { return KindLanded }
func (CampaignProgress) Kind() Kind    { return KindCampaignProgress }
func (CounterexampleFound) Kind() Kind { return KindCounterexample }
func (CertifyProgress) Kind() Kind     { return KindCertifyProgress }

// Time implements Event.
func (e RunStart) Time() time.Duration            { return e.T }
func (e RunEnd) Time() time.Duration              { return e.T }
func (e NodeFired) Time() time.Duration           { return e.T }
func (e ModeSwitch) Time() time.Duration          { return e.T }
func (e InvariantViolation) Time() time.Duration  { return e.T }
func (e TimeProgress) Time() time.Duration        { return e.T }
func (e TrajectorySample) Time() time.Duration    { return e.T }
func (e BatterySample) Time() time.Duration       { return e.T }
func (e Crash) Time() time.Duration               { return e.T }
func (e Landed) Time() time.Duration              { return e.T }
func (e CampaignProgress) Time() time.Duration    { return e.T }
func (e CounterexampleFound) Time() time.Duration { return e.T }
func (e CertifyProgress) Time() time.Duration     { return e.T }
