package obs

import (
	"maps"
	"time"

	"repro/internal/geom"
	"repro/internal/rta"
)

// ModuleStats aggregates per-module switching statistics.
type ModuleStats struct {
	// Disengagements counts AC→SC switches (the SC "taking over").
	Disengagements int
	// Reengagements counts SC→AC switches (performance restored).
	Reengagements int
	// Clamped counts the disengagements forced by the framework clamp — the
	// module overriding a switching policy's AC proposal in a state where
	// ttf2Δ fails. Zero for the default Figure 9 policy on well-formed
	// modules, whose (P3) obligation makes φsafer states survive 2Δ (so the
	// recovery never proposes AC against a failing ttf2Δ); ad-hoc predicates
	// without that coupling can see fig9 recoveries clamped too.
	Clamped int
	// ACTime and SCTime accumulate wall-clock time spent in each mode.
	ACTime, SCTime time.Duration
}

// ACFraction returns the fraction of time the module ran its AC.
func (m ModuleStats) ACFraction() float64 {
	total := m.ACTime + m.SCTime
	if total == 0 {
		return 0
	}
	return float64(m.ACTime) / float64(total)
}

// Metrics summarises one simulation run — the numbers the paper's evaluation
// reports. It is produced by aggregating a run's event stream through a
// MetricsSink (internal/sim re-exports it as sim.Metrics).
type Metrics struct {
	Duration      time.Duration
	DistanceFlown float64
	Crashed       bool
	CrashTime     time.Duration
	CrashPos      geom.Vec3
	Landed        bool
	LandTime      time.Duration
	MinClearance  float64
	// Collisions counts distinct collision episodes (entries into an
	// obstacle or the ground); with KeepFlyingAfterCrash the run continues
	// through them, which is how the unprotected baselines are scored.
	Collisions     int
	TargetsVisited int
	BatteryAtEnd   float64
	// Modules maps module name to its switching statistics.
	Modules map[string]ModuleStats
	// DroppedFirings counts node firings skipped by scheduler jitter.
	DroppedFirings int
	// InvariantViolations counts φInv monitor failures (checked mode).
	InvariantViolations int
}

// TotalDisengagements sums disengagements across modules.
func (m Metrics) TotalDisengagements() int {
	n := 0
	for _, s := range m.Modules {
		n += s.Disengagements
	}
	return n
}

// MetricsSink aggregates a run's event stream into Metrics. It subscribes
// only to the kinds it needs; in particular it consumes every
// TrajectorySample (distance flown, minimum obstacle clearance) and every
// NodeFired (dropped-firing accounting), so it reproduces exactly what the
// simulator's bespoke callbacks used to compute — same accumulation order,
// bit-identical floats. A sink observes one run; it is not safe for
// concurrent use.
type MetricsSink struct {
	ws *geom.Workspace

	m         Metrics
	lastPos   geom.Vec3
	havePos   bool
	modeSince map[string]time.Duration
	modeNow   map[string]rta.Mode
	ended     bool
}

// NewMetricsSink builds a sink; ws is the workspace clearance is measured
// against (nil disables clearance tracking).
func NewMetricsSink(ws *geom.Workspace) *MetricsSink {
	return &MetricsSink{
		ws:        ws,
		m:         Metrics{Modules: make(map[string]ModuleStats)},
		modeSince: make(map[string]time.Duration),
		modeNow:   make(map[string]rta.Mode),
	}
}

// Interests implements Interested.
func (s *MetricsSink) Interests() KindSet {
	return Kinds(KindRunStart, KindRunEnd, KindNodeFired, KindModeSwitch,
		KindInvariantViolation, KindTrajectorySample, KindCrash, KindLanded)
}

// OnEvent implements Observer.
func (s *MetricsSink) OnEvent(e Event) {
	switch ev := e.(type) {
	case RunStart:
		for _, name := range ev.Modules {
			s.modeSince[name] = ev.T
			s.modeNow[name] = rta.ModeSC
		}
	case NodeFired:
		if ev.Dropped {
			s.m.DroppedFirings++
		}
	case ModeSwitch:
		stats := s.m.Modules[ev.Module]
		if ev.To == rta.ModeSC {
			stats.Disengagements++
			if ev.Reason == rta.ReasonClamped {
				stats.Clamped++
			}
		} else {
			stats.Reengagements++
		}
		s.m.Modules[ev.Module] = stats
		s.accountMode(ev.Module, s.modeSince[ev.Module], ev.T, ev.From)
		s.modeSince[ev.Module] = ev.T
		s.modeNow[ev.Module] = ev.To
	case InvariantViolation:
		s.m.InvariantViolations++
	case TrajectorySample:
		s.OnTrajectorySample(ev)
	case Crash:
		s.m.Collisions++
		if !s.m.Crashed {
			s.m.Crashed = true
			s.m.CrashTime = ev.T
			s.m.CrashPos = ev.Pos
		}
	case Landed:
		if !s.m.Landed {
			s.m.Landed = true
			s.m.LandTime = ev.T
		}
	case RunEnd:
		s.m.Duration = ev.T
		s.m.BatteryAtEnd = ev.Battery
		s.m.TargetsVisited = ev.TargetsVisited
		for name, since := range s.modeSince {
			s.accountMode(name, since, ev.T, s.modeNow[name])
		}
		s.ended = true
	}
}

// OnTrajectorySample implements TrajectoryObserver — the unboxed entry point
// for the per-sub-step sample stream. OnEvent routes here, so either path
// yields identical metrics.
func (s *MetricsSink) OnTrajectorySample(ev TrajectorySample) {
	if s.havePos {
		s.m.DistanceFlown += ev.Pos.Dist(s.lastPos)
	}
	s.lastPos = ev.Pos
	s.havePos = true
	if s.ws != nil && !ev.Landed {
		if c := s.ws.Clearance(ev.Pos); s.m.MinClearance == 0 || c < s.m.MinClearance {
			s.m.MinClearance = c
		}
	}
}

// accountMode charges [from, to) to the module's time-in-mode counters.
func (s *MetricsSink) accountMode(module string, from, to time.Duration, mode rta.Mode) {
	if to <= from {
		return
	}
	stats := s.m.Modules[module]
	if mode == rta.ModeAC {
		stats.ACTime += to - from
	} else {
		stats.SCTime += to - from
	}
	s.m.Modules[module] = stats
}

// Metrics returns the aggregated metrics. After RunEnd it is the run's final
// verdict; before (e.g. a run cancelled so abruptly no RunEnd was emitted)
// it is the consistent partial aggregate of the events seen so far.
func (s *MetricsSink) Metrics() Metrics {
	out := s.m
	out.Modules = maps.Clone(s.m.Modules)
	return out
}
