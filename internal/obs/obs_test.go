package obs

import (
	"bytes"
	"fmt"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/geom"
	"repro/internal/rta"
)

// allEventKinds is one populated instance of every event variant — the
// round-trip corpus. Adding a Kind without extending this list fails
// TestEveryKindCovered.
func allEventKinds() []Event {
	return []Event{
		RunStart{T: 0, Seed: 42, Label: "surveillance-city", Modules: []string{"a", "b"}},
		RunEnd{T: 2 * time.Minute, TargetsVisited: 7, Battery: 0.625, Err: "context canceled"},
		NodeFired{T: 10 * time.Millisecond, Node: "mpr.ac"},
		NodeFired{T: 20 * time.Millisecond, Node: "mpr.dm", DM: true, Dropped: true},
		ModeSwitch{T: 300 * time.Millisecond, Module: "safe-mpr", From: rta.ModeAC, To: rta.ModeSC, Reason: rta.ReasonCoordinated, Coordinated: true},
		ModeSwitch{T: 350 * time.Millisecond, Module: "safe-mpr", From: rta.ModeAC, To: rta.ModeSC, Reason: rta.ReasonClamped},
		InvariantViolation{T: 400 * time.Millisecond, Module: "safe-mpr", Mode: rta.ModeSC},
		TimeProgress{T: 500 * time.Millisecond, Prev: 400 * time.Millisecond},
		TrajectorySample{T: 505 * time.Millisecond, Pos: geom.V(1.5, -2.25, 3), Vel: geom.V(0.1, 0, -0.5), Mode: rta.ModeAC, Landed: true},
		BatterySample{T: 600 * time.Millisecond, Charge: 0.87},
		Crash{T: 700 * time.Millisecond, Pos: geom.V(9, 9, 0)},
		Landed{T: 800 * time.Millisecond, Pos: geom.V(3, 3, 0.2), Battery: 0.3},
		CampaignProgress{T: 16, Scenario: "surveillance-city", Strategy: "guided:8", Executions: 16, Budget: 64, Found: 2, BestSeverity: 1030.5},
		CounterexampleFound{T: 16, Strategy: "guided:8", Scenario: "falsified/deadbeefcafe", Fingerprint: "deadbeefcafef00ddeadbeefcafef00d", Seed: 7, Category: "crash", Severity: 1030.5},
		CertifyProgress{T: 64, Scenario: "surveillance-city", Policy: "soter-fig9", Seeds: 64, MaxSeeds: 4096, Crashes: 1, Estimate: 0.015625, Lo: 0.0004, Hi: 0.084, Threshold: 0.1, Verdict: "certified"},
	}
}

// TestEveryKindCovered pins the corpus to the Kind enum, so the JSONL
// round-trip below really covers the whole taxonomy.
func TestEveryKindCovered(t *testing.T) {
	seen := map[Kind]bool{}
	for _, e := range allEventKinds() {
		seen[e.Kind()] = true
	}
	for k := Kind(0); k < Kind(KindCount); k++ {
		if !seen[k] {
			t.Errorf("no corpus event of kind %v", k)
		}
	}
}

// TestJSONLRoundTrip: write the corpus through the JSONL sink, read it back,
// and require exact value equality — the replay contract of -trace files.
func TestJSONLRoundTrip(t *testing.T) {
	events := allEventKinds()
	var buf bytes.Buffer
	w := NewJSONLWriter(&buf)
	for _, e := range events {
		w.OnEvent(e)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(buf.String(), "\n"); n != len(events) {
		t.Fatalf("wrote %d lines, want %d", n, len(events))
	}
	got, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(events) {
		t.Fatalf("read %d events, want %d", len(got), len(events))
	}
	for i := range events {
		if !reflect.DeepEqual(got[i], events[i]) {
			t.Errorf("event %d round-trips to\n%#v\nwant\n%#v", i, got[i], events[i])
		}
	}
}

// TestJSONLKindDiscriminator: every line leads with its wire kind, so
// line-oriented tools (jq, grep) can filter without schema knowledge.
func TestJSONLKindDiscriminator(t *testing.T) {
	for _, e := range allEventKinds() {
		line, err := MarshalEvent(e)
		if err != nil {
			t.Fatal(err)
		}
		want := fmt.Sprintf(`{"kind":"%s",`, e.Kind())
		if !strings.HasPrefix(string(line), want) {
			t.Errorf("line %q does not start with %q", line, want)
		}
	}
}

// TestUnmarshalRejectsGarbage: malformed lines and unknown kinds error
// rather than decoding to a zero event.
func TestUnmarshalRejectsGarbage(t *testing.T) {
	for _, line := range []string{"not json", `{"kind":"warp_drive","t_ns":1}`, `{"t_ns":1}`} {
		if _, err := UnmarshalEvent([]byte(line)); err == nil {
			t.Errorf("UnmarshalEvent(%q) succeeded", line)
		}
	}
}

// TestRecorderBound: the recorder keeps exactly the most recent cap events
// in arrival order and counts evictions.
func TestRecorderBound(t *testing.T) {
	const capacity, total = 8, 21
	r := NewRecorder(capacity)
	for i := 0; i < total; i++ {
		r.OnEvent(BatterySample{T: time.Duration(i), Charge: float64(i)})
	}
	if r.Len() != capacity {
		t.Fatalf("Len = %d, want %d", r.Len(), capacity)
	}
	if r.Dropped() != total-capacity {
		t.Fatalf("Dropped = %d, want %d", r.Dropped(), total-capacity)
	}
	events := r.Events()
	for i, e := range events {
		want := time.Duration(total - capacity + i)
		if e.Time() != want {
			t.Errorf("event %d at t=%v, want %v (oldest-first order)", i, e.Time(), want)
		}
	}
}

// TestMultiFanOutAndInterests: Multi delivers in order and respects member
// interest masks; its own mask is the union.
func TestMultiFanOutAndInterests(t *testing.T) {
	var order []string
	all := ObserverFunc(func(e Event) { order = append(order, "all:"+e.Kind().String()) })
	crashes := kindFiltered{KindSet: Kinds(KindCrash), fn: func(e Event) { order = append(order, "crash:"+e.Kind().String()) }}
	m := Multi{all, crashes}
	if got, want := m.Interests(), AllKinds; got != want {
		t.Fatalf("Interests = %b, want %b", got, want)
	}
	m.OnEvent(Crash{T: 1})
	m.OnEvent(BatterySample{T: 2})
	want := []string{"all:crash", "crash:crash", "all:battery_sample"}
	if !reflect.DeepEqual(order, want) {
		t.Fatalf("dispatch order = %v, want %v", order, want)
	}
}

type kindFiltered struct {
	KindSet
	fn func(Event)
}

func (k kindFiltered) OnEvent(e Event)    { k.fn(e) }
func (k kindFiltered) Interests() KindSet { return k.KindSet }

// TestByKindHonoursInterests: the dispatch table only routes kinds an
// observer asked for.
func TestByKindHonoursInterests(t *testing.T) {
	narrow := kindFiltered{KindSet: Kinds(KindModeSwitch, KindRunEnd), fn: func(Event) {}}
	wide := ObserverFunc(func(Event) {})
	table := ByKind([]Observer{narrow, wide})
	if got := len(table[KindModeSwitch]); got != 2 {
		t.Errorf("mode_switch list has %d observers, want 2", got)
	}
	if got := len(table[KindNodeFired]); got != 1 {
		t.Errorf("node_fired list has %d observers, want 1 (narrow excluded)", got)
	}
}

// TestMetricsSinkAggregation: a hand-written stream aggregates to the
// expected metrics, including partial accounting before RunEnd.
func TestMetricsSinkAggregation(t *testing.T) {
	s := NewMetricsSink(nil)
	s.OnEvent(RunStart{Modules: []string{"m1", "m2"}})
	s.OnEvent(NodeFired{T: 1, Node: "n", Dropped: true})
	s.OnEvent(NodeFired{T: 2, Node: "n"})
	s.OnEvent(ModeSwitch{T: 10 * time.Second, Module: "m1", From: rta.ModeSC, To: rta.ModeAC})
	s.OnEvent(InvariantViolation{T: 11 * time.Second, Module: "m1", Mode: rta.ModeAC})
	s.OnEvent(Crash{T: 12 * time.Second, Pos: geom.V(1, 2, 0)})
	s.OnEvent(Crash{T: 13 * time.Second, Pos: geom.V(5, 5, 0)})
	s.OnEvent(RunEnd{T: 30 * time.Second, TargetsVisited: 4, Battery: 0.5})

	m := s.Metrics()
	if m.DroppedFirings != 1 || m.InvariantViolations != 1 {
		t.Errorf("dropped=%d violations=%d, want 1 and 1", m.DroppedFirings, m.InvariantViolations)
	}
	if !m.Crashed || m.Collisions != 2 || m.CrashTime != 12*time.Second || m.CrashPos != geom.V(1, 2, 0) {
		t.Errorf("crash accounting = %+v", m)
	}
	if m.Duration != 30*time.Second || m.TargetsVisited != 4 || m.BatteryAtEnd != 0.5 {
		t.Errorf("run-end accounting = %+v", m)
	}
	want := map[string]ModuleStats{
		"m1": {Reengagements: 1, SCTime: 10 * time.Second, ACTime: 20 * time.Second},
		"m2": {SCTime: 30 * time.Second},
	}
	if !reflect.DeepEqual(m.Modules, want) {
		t.Errorf("modules = %+v, want %+v", m.Modules, want)
	}
}
