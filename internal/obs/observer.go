package obs

// Observer consumes a run's event stream. Emitters deliver events
// synchronously on the run goroutine, so OnEvent must be fast; an observer
// that needs to do slow work should buffer (see Recorder) and process
// elsewhere. Unless documented otherwise an Observer is not safe for
// concurrent use and must be attached to at most one run at a time.
type Observer interface {
	OnEvent(Event)
}

// ObserverFunc adapts a function to the Observer interface.
type ObserverFunc func(Event)

// OnEvent implements Observer.
func (f ObserverFunc) OnEvent(e Event) { f(e) }

// Interested optionally narrows the event kinds an Observer receives.
// Emitters consult the mask once at attachment time and skip both dispatch
// and event construction for kinds no attached observer wants — which is how
// a hot loop (a node firing every 10 ms across thousands of fleet missions)
// stays free when only aggregate sinks are listening. Observers that do not
// implement Interested receive every kind.
type Interested interface {
	Interests() KindSet
}

// InterestsOf returns the observer's declared interest mask, or AllKinds
// when it does not narrow.
func InterestsOf(o Observer) KindSet {
	if i, ok := o.(Interested); ok {
		return i.Interests()
	}
	return AllKinds
}

// Multi fans one event stream out to many observers, in slice order. Its
// interest mask is the union of its members'; members that narrowed their
// interests are skipped for kinds outside their mask.
type Multi []Observer

// OnEvent implements Observer.
func (m Multi) OnEvent(e Event) {
	k := e.Kind()
	for _, o := range m {
		if InterestsOf(o).Has(k) {
			o.OnEvent(e)
		}
	}
}

// Interests implements Interested.
func (m Multi) Interests() KindSet {
	var s KindSet
	for _, o := range m {
		s |= InterestsOf(o)
	}
	return s
}

// ByKind partitions observers into per-kind dispatch lists. Emitters build
// the table once at attachment time; emission then indexes by kind, checks
// for an empty list before constructing the event, and delivers in
// attachment order.
func ByKind(observers []Observer) (table [KindCount][]Observer) {
	for _, o := range observers {
		s := InterestsOf(o)
		for k := Kind(0); k < numKinds; k++ {
			if s.Has(k) {
				table[k] = append(table[k], o)
			}
		}
	}
	return table
}

// Emit delivers the event to every observer in the list. Callers on a hot
// path should guard with len(list) > 0 before constructing the event.
func Emit(list []Observer, e Event) {
	for _, o := range list {
		o.OnEvent(e)
	}
}

// TrajectoryObserver is the typed fast path for the stream's highest-volume
// kind: delivering a TrajectorySample through OnEvent boxes the sample into
// the Event interface on every physics sub-step, while OnTrajectorySample
// passes it by value. Implementations must treat both entry points
// identically; emitters may use either.
type TrajectoryObserver interface {
	Observer
	OnTrajectorySample(TrajectorySample)
}

// TrajectoryObservers converts a KindTrajectorySample dispatch list to its
// typed form. It returns nil unless EVERY member implements
// TrajectoryObserver — mixing entry points within one instant would reorder
// deliveries relative to attachment order, so emitters fall back to the
// boxed path for the whole list when any member lacks the typed one.
func TrajectoryObservers(list []Observer) []TrajectoryObserver {
	if len(list) == 0 {
		return nil
	}
	typed := make([]TrajectoryObserver, len(list))
	for i, o := range list {
		to, ok := o.(TrajectoryObserver)
		if !ok {
			return nil
		}
		typed[i] = to
	}
	return typed
}

// EmitTrajectory delivers a sample through the typed path, in list order.
func EmitTrajectory(list []TrajectoryObserver, s TrajectorySample) {
	for _, o := range list {
		o.OnTrajectorySample(s)
	}
}
