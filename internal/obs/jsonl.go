package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sync"
)

// MarshalEvent encodes the event as one JSON object with a leading "kind"
// discriminator, e.g.
//
//	{"kind":"mode_switch","t_ns":12400000000,"module":"safe-motion-primitive","from":2,"to":1}
//
// The encoding round-trips through UnmarshalEvent.
func MarshalEvent(e Event) ([]byte, error) {
	payload, err := json.Marshal(e)
	if err != nil {
		return nil, err
	}
	// Splice the discriminator in front of the struct's own fields. Every
	// event carries at least the timestamp, so the payload is never "{}".
	out := make([]byte, 0, len(payload)+len(`{"kind":"",`)+len(e.Kind().String()))
	out = append(out, `{"kind":"`...)
	out = append(out, e.Kind().String()...)
	out = append(out, `",`...)
	out = append(out, payload[1:]...)
	return out, nil
}

// UnmarshalEvent decodes one JSON line produced by MarshalEvent back into
// its concrete event type.
func UnmarshalEvent(line []byte) (Event, error) {
	var head struct {
		Kind string `json:"kind"`
	}
	if err := json.Unmarshal(line, &head); err != nil {
		return nil, fmt.Errorf("obs: malformed event line: %w", err)
	}
	switch head.Kind {
	case kindNames[KindRunStart]:
		return decodeAs[RunStart](line)
	case kindNames[KindRunEnd]:
		return decodeAs[RunEnd](line)
	case kindNames[KindNodeFired]:
		return decodeAs[NodeFired](line)
	case kindNames[KindModeSwitch]:
		return decodeAs[ModeSwitch](line)
	case kindNames[KindInvariantViolation]:
		return decodeAs[InvariantViolation](line)
	case kindNames[KindTimeProgress]:
		return decodeAs[TimeProgress](line)
	case kindNames[KindTrajectorySample]:
		return decodeAs[TrajectorySample](line)
	case kindNames[KindBatterySample]:
		return decodeAs[BatterySample](line)
	case kindNames[KindCrash]:
		return decodeAs[Crash](line)
	case kindNames[KindLanded]:
		return decodeAs[Landed](line)
	case kindNames[KindCampaignProgress]:
		return decodeAs[CampaignProgress](line)
	case kindNames[KindCounterexample]:
		return decodeAs[CounterexampleFound](line)
	case kindNames[KindCertifyProgress]:
		return decodeAs[CertifyProgress](line)
	default:
		return nil, fmt.Errorf("obs: unknown event kind %q", head.Kind)
	}
}

// decodeAs unmarshals the line into a value of the concrete event type, so
// decoded events compare equal to the value events emitters produce.
func decodeAs[E Event](line []byte) (Event, error) {
	var e E
	if err := json.Unmarshal(line, &e); err != nil {
		return nil, fmt.Errorf("obs: %s event: %w", e.Kind(), err)
	}
	return e, nil
}

// JSONLWriter streams events to an io.Writer as JSON Lines — the -trace
// format of cmd/soter-sim. Writes are buffered and mutex-guarded, so one
// writer may be shared across runs (e.g. a whole fleet tracing into one
// file); events from a single run stay in emission order. The first write
// error sticks: later events are dropped and Close reports it.
type JSONLWriter struct {
	mu  sync.Mutex
	buf *bufio.Writer
	err error
}

// NewJSONLWriter wraps w in a line-oriented event sink.
func NewJSONLWriter(w io.Writer) *JSONLWriter {
	return &JSONLWriter{buf: bufio.NewWriter(w)}
}

// OnEvent implements Observer.
func (s *JSONLWriter) OnEvent(e Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return
	}
	line, err := MarshalEvent(e)
	if err != nil {
		s.err = err
		return
	}
	if _, err := s.buf.Write(line); err != nil {
		s.err = err
		return
	}
	s.err = s.buf.WriteByte('\n')
}

// Close flushes the buffer and returns the first error encountered. It does
// not close the underlying writer.
func (s *JSONLWriter) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.buf.Flush(); s.err == nil {
		s.err = err
	}
	return s.err
}

// ReadJSONL decodes a whole JSONL stream back into events — the replay path
// for recorded traces. Blank lines are skipped; the first malformed line
// aborts with its line number.
func ReadJSONL(r io.Reader) ([]Event, error) {
	var out []Event
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		e, err := UnmarshalEvent(line)
		if err != nil {
			return out, fmt.Errorf("line %d: %w", lineNo, err)
		}
		out = append(out, e)
	}
	return out, sc.Err()
}
