package obs

import "sync"

// DefaultRecorderCap bounds a Recorder built with a non-positive capacity.
const DefaultRecorderCap = 8192

// Recorder is a bounded in-memory event sink: it keeps the most recent Cap
// events as a ring, dropping the oldest when full — the black-box flight
// recorder of the layer. It is mutex-guarded, so it may be shared across
// goroutines; Events returns the retained tail in arrival order.
type Recorder struct {
	mu      sync.Mutex
	events  []Event
	start   int
	filled  bool
	dropped uint64
}

// NewRecorder builds a recorder retaining at most capacity events
// (DefaultRecorderCap when capacity is not positive).
func NewRecorder(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = DefaultRecorderCap
	}
	return &Recorder{events: make([]Event, 0, capacity)}
}

// OnEvent implements Observer.
func (r *Recorder) OnEvent(e Event) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.filled {
		r.events = append(r.events, e)
		r.filled = len(r.events) == cap(r.events)
		return
	}
	// Ring overwrite: the slot at start holds the oldest event.
	r.events[r.start] = e
	r.start = (r.start + 1) % len(r.events)
	r.dropped++
}

// Events returns a copy of the retained events in arrival order.
func (r *Recorder) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, 0, len(r.events))
	out = append(out, r.events[r.start:]...)
	out = append(out, r.events[:r.start]...)
	return out
}

// Len returns how many events are currently retained.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.events)
}

// Dropped returns how many events were evicted to respect the bound.
func (r *Recorder) Dropped() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}
