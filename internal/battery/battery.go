// Package battery implements the battery-safety RTA components of
// Section V-B. The module's state is the drone state augmented with the
// battery charge bt; the safety property is φbat: the drone must never crash
// because of low battery — φsafe := bt > 0, φsafer := bt > SaferThreshold
// (85% in the paper). The switching condition is
//
//	ttf2Δ(bt, φsafe) = bt − cost* < Tmax
//
// where Tmax is the maximum battery charge required to land (conservatively,
// from the maximum attainable height) and cost* = max_u cost(u, 2Δ) is the
// maximum discharge over 2Δ across all controls.
package battery

import (
	"fmt"
	"time"

	"repro/internal/plant"
)

// Monitor evaluates the battery-safety predicates.
type Monitor struct {
	params plant.Params
	delta  time.Duration
	// tmax is the precomputed maximum landing budget Tmax.
	tmax float64
	// costStar is the precomputed cost* = max_u cost(u, 2Δ).
	costStar float64
	// saferThreshold is the φsafer charge fraction (0.85 in the paper).
	saferThreshold float64
	// descentRate is the guaranteed descent speed of the landing safe
	// controller, used to bound the landing duration.
	descentRate float64
	// maxHeight is the highest altitude the drone can attain (the workspace
	// ceiling); Tmax is computed for landing from this height, which is
	// conservative but computable offline, exactly as in the paper.
	maxHeight float64
}

// Config parameterises the monitor.
type Config struct {
	Params         plant.Params
	Delta          time.Duration // Δ of the battery DM (larger than motion Δ)
	SaferThreshold float64       // φsafer charge fraction, default 0.85
	DescentRate    float64       // m/s guaranteed by the lander, default 1.0
	MaxHeight      float64       // workspace ceiling in metres
	SafetyFactor   float64       // multiplier on Tmax, default 2.0
}

// NewMonitor precomputes Tmax and cost* for the configuration.
func NewMonitor(cfg Config) (*Monitor, error) {
	if err := cfg.Params.Validate(); err != nil {
		return nil, fmt.Errorf("battery monitor: %w", err)
	}
	if cfg.Delta <= 0 {
		return nil, fmt.Errorf("battery monitor: Δ = %v must be positive", cfg.Delta)
	}
	if cfg.MaxHeight <= 0 {
		return nil, fmt.Errorf("battery monitor: MaxHeight = %v must be positive", cfg.MaxHeight)
	}
	if cfg.SaferThreshold == 0 {
		cfg.SaferThreshold = 0.85
	}
	if cfg.SaferThreshold <= 0 || cfg.SaferThreshold >= 1 {
		return nil, fmt.Errorf("battery monitor: SaferThreshold = %v must be in (0, 1)", cfg.SaferThreshold)
	}
	if cfg.DescentRate == 0 {
		cfg.DescentRate = 1.0
	}
	if cfg.DescentRate <= 0 {
		return nil, fmt.Errorf("battery monitor: DescentRate = %v must be positive", cfg.DescentRate)
	}
	if cfg.SafetyFactor == 0 {
		cfg.SafetyFactor = 2.0
	}
	if cfg.SafetyFactor < 1 {
		return nil, fmt.Errorf("battery monitor: SafetyFactor = %v must be ≥ 1", cfg.SafetyFactor)
	}

	m := &Monitor{
		params:         cfg.Params,
		delta:          cfg.Delta,
		saferThreshold: cfg.SaferThreshold,
		descentRate:    cfg.DescentRate,
		maxHeight:      cfg.MaxHeight,
	}
	// Tmax: battery required to land from the maximum height at the
	// guaranteed descent rate, with braking-level control effort, times the
	// safety factor. Conservative and computed offline (Section V-B).
	landingTime := time.Duration(cfg.MaxHeight / cfg.DescentRate * float64(time.Second))
	worstLandingControl := cfg.Params.MaxAccel // pessimistic control effort while landing
	m.tmax = cfg.SafetyFactor * (cfg.Params.IdleDrainPerSec + cfg.Params.AccelDrainPerSec*worstLandingControl) * landingTime.Seconds()
	// cost* = max_u cost(u, 2Δ).
	m.costStar = cfg.Params.MaxCost(2 * cfg.Delta)
	return m, nil
}

// Delta returns the battery DM period Δ.
func (m *Monitor) Delta() time.Duration { return m.delta }

// Tmax returns the precomputed maximum landing budget.
func (m *Monitor) Tmax() float64 { return m.tmax }

// CostStar returns cost* = max_u cost(u, 2Δ).
func (m *Monitor) CostStar() float64 { return m.costStar }

// SaferThreshold returns the φsafer charge fraction.
func (m *Monitor) SaferThreshold() float64 { return m.saferThreshold }

// Safe is φsafe := bt > 0 — the drone has not run out of charge. A landed
// drone is also safe regardless of charge: φbat only forbids crashing
// because of low battery.
func (m *Monitor) Safe(bt float64, landed bool) bool {
	return landed || bt > 0
}

// TTF2Delta is ttf2Δ(bt, φsafe) = bt − cost* < Tmax: the remaining charge
// after a worst-case 2Δ may not suffice to land safely.
func (m *Monitor) TTF2Delta(bt float64) bool {
	return bt-m.costStar < m.tmax
}

// InSafer is bt ∈ φsafer := bt > SaferThreshold.
func (m *Monitor) InSafer(bt float64) bool {
	return bt > m.saferThreshold
}
