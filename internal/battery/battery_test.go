package battery

import (
	"testing"
	"time"

	"repro/internal/geom"
	"repro/internal/plant"
)

func testConfig() Config {
	return Config{
		Params:    plant.DefaultParams(),
		Delta:     2 * time.Second,
		MaxHeight: 12,
	}
}

func TestNewMonitorDefaults(t *testing.T) {
	m, err := NewMonitor(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if m.SaferThreshold() != 0.85 {
		t.Errorf("default threshold = %v", m.SaferThreshold())
	}
	if m.Delta() != 2*time.Second {
		t.Errorf("Delta = %v", m.Delta())
	}
	if m.Tmax() <= 0 {
		t.Errorf("Tmax = %v, want positive", m.Tmax())
	}
	if m.CostStar() <= 0 {
		t.Errorf("cost* = %v, want positive", m.CostStar())
	}
}

func TestNewMonitorValidation(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Config)
	}{
		{"zero delta", func(c *Config) { c.Delta = 0 }},
		{"zero height", func(c *Config) { c.MaxHeight = 0 }},
		{"threshold ≥ 1", func(c *Config) { c.SaferThreshold = 1.5 }},
		{"negative descent", func(c *Config) { c.DescentRate = -1 }},
		{"safety factor < 1", func(c *Config) { c.SafetyFactor = 0.5 }},
		{"bad params", func(c *Config) { c.Params.MaxAccel = 0 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			c := testConfig()
			tt.mutate(&c)
			if _, err := NewMonitor(c); err == nil {
				t.Error("invalid config accepted")
			}
		})
	}
}

func TestTmaxFormula(t *testing.T) {
	cfg := testConfig()
	cfg.DescentRate = 1.0
	cfg.SafetyFactor = 2.0
	m, err := NewMonitor(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Tmax = factor · (idle + accelDrain·amax) · (maxHeight / descent).
	p := cfg.Params
	want := 2.0 * (p.IdleDrainPerSec + p.AccelDrainPerSec*p.MaxAccel) * 12.0
	if diff := m.Tmax() - want; diff > 1e-12 || diff < -1e-12 {
		t.Errorf("Tmax = %v, want %v", m.Tmax(), want)
	}
	// cost* matches the plant's own worst-case discharge.
	if m.CostStar() != p.MaxCost(4*time.Second) {
		t.Errorf("cost* = %v, want %v", m.CostStar(), p.MaxCost(4*time.Second))
	}
}

func TestSwitchingPredicates(t *testing.T) {
	m, err := NewMonitor(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	trip := m.Tmax() + m.CostStar()
	if !m.TTF2Delta(trip - 1e-9) {
		t.Error("charge just below the trip point must switch")
	}
	if m.TTF2Delta(trip + 1e-6) {
		t.Error("charge above the trip point must not switch")
	}
	if !m.InSafer(0.9) || m.InSafer(0.85) || m.InSafer(0.5) {
		t.Error("φsafer thresholding wrong")
	}
	if !m.Safe(0.01, false) || m.Safe(0, false) {
		t.Error("φsafe = bt > 0 wrong")
	}
	if !m.Safe(0, true) {
		t.Error("a landed drone is safe regardless of charge")
	}
}

// TestSwitchBudgetIsSufficient verifies the core battery-safety argument:
// if the DM switches exactly at the trip point, the remaining charge covers
// the worst 2Δ of arbitrary control plus the full landing budget.
func TestSwitchBudgetIsSufficient(t *testing.T) {
	cfg := testConfig()
	m, err := NewMonitor(cfg)
	if err != nil {
		t.Fatal(err)
	}
	charge := m.Tmax() + m.CostStar() // the trip point
	// Worst 2Δ before SC takes effect.
	charge -= cfg.Params.MaxCost(2 * cfg.Delta)
	// The landing itself, at the pessimistic control effort Tmax assumes
	// (|u| = MaxAccel), from max height at the guaranteed descent rate.
	landing := cfg.Params.Cost(
		geom.V(cfg.Params.MaxAccel, 0, 0),
		time.Duration(cfg.MaxHeight/1.0*float64(time.Second)),
	)
	charge -= landing
	if charge <= 0 {
		t.Errorf("budget insufficient: %v left after worst case (Tmax=%v)", charge, m.Tmax())
	}
}
