// Package calendar implements the timeout-based discrete-event scheduling of
// the SOTER operational semantics (Section III-A and IV; Dutertre & Sorea's
// calendar automata [18]). Each periodic node contributes a time-table
// C = {(N, t0), (N, t1), ...} with t_{i+1} - t_i = δ(N); the calendar of a
// system is the union of its nodes' time-tables, and the executor advances
// the current time ct to the earliest pending entry (rule
// DISCRETE-TIME-PROGRESS-STEP in Figure 11).
package calendar

import (
	"fmt"
	"slices"
	"time"
)

// Schedule is the periodic time-table of one node: the node fires at
// phase, phase+period, phase+2*period, ...
type Schedule struct {
	Period time.Duration
	Phase  time.Duration
}

// Validate checks the schedule is well formed.
func (s Schedule) Validate() error {
	if s.Period <= 0 {
		return fmt.Errorf("period %v must be positive", s.Period)
	}
	if s.Phase < 0 {
		return fmt.Errorf("phase %v must be non-negative", s.Phase)
	}
	return nil
}

// FiresAt reports whether the schedule has an entry exactly at time t.
func (s Schedule) FiresAt(t time.Duration) bool {
	if t < s.Phase {
		return false
	}
	return (t-s.Phase)%s.Period == 0
}

// NextAfter returns the earliest firing time strictly greater than t.
func (s Schedule) NextAfter(t time.Duration) time.Duration {
	if t < s.Phase {
		return s.Phase
	}
	k := (t - s.Phase) / s.Period
	next := s.Phase + (k+1)*s.Period
	return next
}

// Calendar is the merged time-table CS of a system: a mapping from node name
// to its periodic schedule.
type Calendar struct {
	scheds map[string]Schedule
	names  []string // sorted, for deterministic iteration
	// byName is the schedule list aligned with names, so the per-instant
	// scans in NextTime/FiringAt skip the map lookups.
	byName []Schedule
}

// New creates an empty calendar.
func New() *Calendar {
	return &Calendar{scheds: make(map[string]Schedule)}
}

// Add registers the schedule of a node. Adding the same node twice is an
// error: the nodes of an RTA system are disjoint.
func (c *Calendar) Add(nodeName string, s Schedule) error {
	if nodeName == "" {
		return fmt.Errorf("empty node name")
	}
	if err := s.Validate(); err != nil {
		return fmt.Errorf("node %q: %w", nodeName, err)
	}
	if _, dup := c.scheds[nodeName]; dup {
		return fmt.Errorf("node %q already scheduled", nodeName)
	}
	c.scheds[nodeName] = s
	i, _ := slices.BinarySearch(c.names, nodeName)
	c.names = slices.Insert(c.names, i, nodeName)
	c.byName = slices.Insert(c.byName, i, s)
	return nil
}

// Len returns the number of scheduled nodes.
func (c *Calendar) Len() int { return len(c.scheds) }

// Schedule returns the schedule of a node.
func (c *Calendar) Schedule(nodeName string) (Schedule, bool) {
	s, ok := c.scheds[nodeName]
	return s, ok
}

// Names returns the sorted names of all scheduled nodes.
func (c *Calendar) Names() []string {
	out := make([]string, len(c.names))
	copy(out, c.names)
	return out
}

// FiringAt returns the sorted names of nodes whose time-table contains an
// entry exactly at time t (the FN' = {n | (n, ct') ∈ CS} of rule dt3).
func (c *Calendar) FiringAt(t time.Duration) []string {
	return c.AppendFiringAt(t, nil)
}

// AppendFiringAt appends the sorted names of nodes firing exactly at t to
// dst and returns it — the allocation-free form of FiringAt for callers that
// reuse a buffer across instants (the executor's time-progress loop).
func (c *Calendar) AppendFiringAt(t time.Duration, dst []string) []string {
	for i, s := range c.byName {
		if s.FiresAt(t) {
			dst = append(dst, c.names[i])
		}
	}
	return dst
}

// NextTime returns the earliest time strictly after ct at which any node
// fires, together with the sorted set of nodes firing then (rules dt2, dt3).
// ok is false when the calendar is empty.
func (c *Calendar) NextTime(ct time.Duration) (next time.Duration, firing []string, ok bool) {
	next, ok = c.PeekNext(ct)
	if !ok {
		return 0, nil, false
	}
	return next, c.FiringAt(next), true
}

// PeekNext returns the earliest time strictly after ct at which any node
// fires, without materializing the firing set. It is the allocation-free
// deadline check for run loops that only need to know whether — not what —
// anything fires before a deadline.
func (c *Calendar) PeekNext(ct time.Duration) (next time.Duration, ok bool) {
	if len(c.byName) == 0 {
		return 0, false
	}
	for i, s := range c.byName {
		t := s.NextAfter(ct)
		if i == 0 || t < next {
			next = t
		}
	}
	return next, true
}

// HyperPeriod returns the least common multiple of all periods (with phase 0
// this is the cycle after which the firing pattern repeats). It saturates at
// the maximum representable duration on overflow.
func (c *Calendar) HyperPeriod() time.Duration {
	l := time.Duration(0)
	for _, s := range c.scheds {
		if l == 0 {
			l = s.Period
			continue
		}
		l = lcm(l, s.Period)
		if l <= 0 { // overflow
			return time.Duration(1<<63 - 1)
		}
	}
	return l
}

func gcd(a, b time.Duration) time.Duration {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

func lcm(a, b time.Duration) time.Duration {
	return a / gcd(a, b) * b
}
