package calendar

import (
	"reflect"
	"testing"
	"testing/quick"
	"time"
)

func TestScheduleValidate(t *testing.T) {
	tests := []struct {
		name    string
		s       Schedule
		wantErr bool
	}{
		{"valid", Schedule{Period: time.Second}, false},
		{"valid with phase", Schedule{Period: time.Second, Phase: time.Millisecond}, false},
		{"zero period", Schedule{}, true},
		{"negative period", Schedule{Period: -1}, true},
		{"negative phase", Schedule{Period: 1, Phase: -1}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.s.Validate(); (err != nil) != tt.wantErr {
				t.Errorf("Validate = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestScheduleFiresAt(t *testing.T) {
	s := Schedule{Period: 100 * time.Millisecond, Phase: 20 * time.Millisecond}
	for _, tc := range []struct {
		t    time.Duration
		want bool
	}{
		{0, false},
		{20 * time.Millisecond, true},
		{120 * time.Millisecond, true},
		{100 * time.Millisecond, false},
		{10 * time.Millisecond, false},
	} {
		if got := s.FiresAt(tc.t); got != tc.want {
			t.Errorf("FiresAt(%v) = %v, want %v", tc.t, got, tc.want)
		}
	}
}

func TestScheduleNextAfter(t *testing.T) {
	s := Schedule{Period: 100 * time.Millisecond, Phase: 20 * time.Millisecond}
	for _, tc := range []struct {
		t, want time.Duration
	}{
		{0, 20 * time.Millisecond},
		{20 * time.Millisecond, 120 * time.Millisecond},
		{21 * time.Millisecond, 120 * time.Millisecond},
		{119 * time.Millisecond, 120 * time.Millisecond},
	} {
		if got := s.NextAfter(tc.t); got != tc.want {
			t.Errorf("NextAfter(%v) = %v, want %v", tc.t, got, tc.want)
		}
	}
}

// Property: NextAfter returns a firing time strictly in the future, and it
// is the earliest one.
func TestNextAfterProperty(t *testing.T) {
	f := func(periodRaw, phaseRaw, tRaw int64) bool {
		period := time.Duration(1+abs64(periodRaw)%int64(time.Second)) * 10
		phase := time.Duration(abs64(phaseRaw) % int64(time.Second))
		ct := time.Duration(abs64(tRaw) % int64(10*time.Second))
		s := Schedule{Period: period, Phase: phase}
		next := s.NextAfter(ct)
		if next <= ct {
			return false
		}
		if !s.FiresAt(next) {
			return false
		}
		// Minimality: before the phase, the first firing is the phase
		// itself; afterwards, the previous periodic firing must not lie in
		// (ct, next).
		if ct < phase {
			return next == phase
		}
		return next-period <= ct
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestCalendarAdd(t *testing.T) {
	c := New()
	if err := c.Add("a", Schedule{Period: time.Second}); err != nil {
		t.Fatal(err)
	}
	if err := c.Add("a", Schedule{Period: time.Second}); err == nil {
		t.Error("expected error for duplicate node")
	}
	if err := c.Add("", Schedule{Period: time.Second}); err == nil {
		t.Error("expected error for empty name")
	}
	if err := c.Add("b", Schedule{}); err == nil {
		t.Error("expected error for invalid schedule")
	}
	if c.Len() != 1 {
		t.Errorf("Len = %d", c.Len())
	}
}

func TestCalendarNextTime(t *testing.T) {
	c := New()
	mustAdd(t, c, "slow", Schedule{Period: 100 * time.Millisecond})
	mustAdd(t, c, "fast", Schedule{Period: 20 * time.Millisecond})
	mustAdd(t, c, "offset", Schedule{Period: 100 * time.Millisecond, Phase: 10 * time.Millisecond})

	next, firing, ok := c.NextTime(0)
	if !ok || next != 10*time.Millisecond || !reflect.DeepEqual(firing, []string{"offset"}) {
		t.Errorf("NextTime(0) = %v %v %v", next, firing, ok)
	}
	next, firing, ok = c.NextTime(10 * time.Millisecond)
	if !ok || next != 20*time.Millisecond || !reflect.DeepEqual(firing, []string{"fast"}) {
		t.Errorf("NextTime(10ms) = %v %v %v", next, firing, ok)
	}
	// At 100ms both slow and fast fire; names are sorted.
	next, firing, ok = c.NextTime(99 * time.Millisecond)
	if !ok || next != 100*time.Millisecond || !reflect.DeepEqual(firing, []string{"fast", "slow"}) {
		t.Errorf("NextTime(99ms) = %v %v %v", next, firing, ok)
	}
}

func TestCalendarEmpty(t *testing.T) {
	c := New()
	if _, _, ok := c.NextTime(0); ok {
		t.Error("empty calendar should report no next time")
	}
	if c.HyperPeriod() != 0 {
		t.Errorf("empty HyperPeriod = %v", c.HyperPeriod())
	}
}

func TestCalendarHyperPeriod(t *testing.T) {
	c := New()
	mustAdd(t, c, "a", Schedule{Period: 20 * time.Millisecond})
	mustAdd(t, c, "b", Schedule{Period: 50 * time.Millisecond})
	if got := c.HyperPeriod(); got != 100*time.Millisecond {
		t.Errorf("HyperPeriod = %v", got)
	}
}

func TestCalendarNamesSorted(t *testing.T) {
	c := New()
	for _, n := range []string{"zz", "aa", "mm"} {
		mustAdd(t, c, n, Schedule{Period: time.Second})
	}
	if got := c.Names(); !reflect.DeepEqual(got, []string{"aa", "mm", "zz"}) {
		t.Errorf("Names = %v", got)
	}
}

// Property: the firing set returned by NextTime is exactly the set of nodes
// whose schedule fires at that time.
func TestCalendarFiringConsistency(t *testing.T) {
	c := New()
	mustAdd(t, c, "a", Schedule{Period: 30 * time.Millisecond})
	mustAdd(t, c, "b", Schedule{Period: 70 * time.Millisecond, Phase: 10 * time.Millisecond})
	mustAdd(t, c, "c", Schedule{Period: 110 * time.Millisecond})
	ct := time.Duration(0)
	for i := 0; i < 200; i++ {
		next, firing, ok := c.NextTime(ct)
		if !ok {
			t.Fatal("calendar exhausted")
		}
		if next <= ct {
			t.Fatalf("time did not advance: %v -> %v", ct, next)
		}
		for _, n := range firing {
			s, _ := c.Schedule(n)
			if !s.FiresAt(next) {
				t.Fatalf("node %s in firing set but does not fire at %v", n, next)
			}
		}
		if got := c.FiringAt(next); !reflect.DeepEqual(got, firing) {
			t.Fatalf("FiringAt(%v) = %v, NextTime said %v", next, got, firing)
		}
		ct = next
	}
}

func mustAdd(t *testing.T, c *Calendar, name string, s Schedule) {
	t.Helper()
	if err := c.Add(name, s); err != nil {
		t.Fatal(err)
	}
}

func abs64(x int64) int64 {
	if x < 0 {
		if x == -1<<63 {
			return 1<<63 - 1
		}
		return -x
	}
	return x
}
