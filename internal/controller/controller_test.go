package controller

import (
	"math"
	"testing"
	"time"

	"repro/internal/geom"
	"repro/internal/plant"
	"repro/internal/reach"
)

func testLimits() Limits { return Limits{MaxAccel: 5, MaxVel: 3} }

func TestPDPointsTowardTarget(t *testing.T) {
	pd := NewNominal(testLimits())
	u := pd.Control(0, geom.V(0, 0, 0), geom.Vec3{}, geom.V(10, 0, 0))
	if u.X <= 0 || u.Y != 0 || u.Z != 0 {
		t.Errorf("control = %v, want +X", u)
	}
	// At the target with zero velocity: no command.
	u = pd.Control(0, geom.V(10, 0, 0), geom.Vec3{}, geom.V(10, 0, 0))
	if u != geom.Zero {
		t.Errorf("control at target = %v", u)
	}
	// Damping opposes velocity.
	u = pd.Control(0, geom.V(10, 0, 0), geom.V(2, 0, 0), geom.V(10, 0, 0))
	if u.X >= 0 {
		t.Errorf("control with overshoot velocity = %v, want -X", u)
	}
}

func TestPDSaturates(t *testing.T) {
	pd := NewAggressive(testLimits())
	u := pd.Control(0, geom.V(0, 0, 0), geom.Vec3{}, geom.V(1000, -1000, 1000))
	if math.Abs(u.X) > 5+1e-12 || math.Abs(u.Y) > 5+1e-12 || math.Abs(u.Z) > 5+1e-12 {
		t.Errorf("saturated control = %v", u)
	}
}

// TestAggressiveOvershoots documents the defining property of the untrusted
// controller: stepping a double integrator toward a setpoint overshoots it,
// while the nominal critically-damped law does not (appreciably).
func TestAggressiveOvershoots(t *testing.T) {
	overshoot := func(c Controller) float64 {
		p, err := plant.NewDrone(plant.DefaultParams(), 1)
		if err != nil {
			t.Fatal(err)
		}
		s := plant.State{Battery: 1}
		target := geom.V(20, 0, 0)
		worst := 0.0
		for i := 0; i < 3000; i++ {
			u := c.Control(0, s.Pos, s.Vel, target)
			s = p.Step(s, u, 10*time.Millisecond)
			if over := s.Pos.X - target.X; over > worst {
				worst = over
			}
		}
		return worst
	}
	agg := overshoot(NewAggressive(testLimits()))
	nom := overshoot(NewNominal(testLimits()))
	if agg < 0.3 {
		t.Errorf("aggressive overshoot = %.3f m, want noticeable (≥0.3)", agg)
	}
	if nom > agg/2 {
		t.Errorf("nominal overshoot %.3f should be well below aggressive %.3f", nom, agg)
	}
}

func TestLearnedDeterministicPerSeed(t *testing.T) {
	l1 := NewLearned(testLimits(), 0.2, 7)
	l2 := NewLearned(testLimits(), 0.2, 7)
	l3 := NewLearned(testLimits(), 0.2, 8)
	pos, vel, target := geom.V(3, 9, 2), geom.V(1, 0, 0), geom.V(10, 10, 2)
	if l1.Control(0, pos, vel, target) != l2.Control(0, pos, vel, target) {
		t.Error("same seed must give the same policy")
	}
	differs := false
	for i := 0; i < 20 && !differs; i++ {
		p := geom.V(float64(i)*2.5, 5, 2)
		if l1.Control(0, p, vel, target) != l3.Control(0, p, vel, target) {
			differs = true
		}
	}
	if !differs {
		t.Error("different seeds should give different policies somewhere")
	}
}

func TestLearnedBadCellFraction(t *testing.T) {
	box := geom.Box(geom.V(0, 0, 0), geom.V(60, 60, 12))
	clean := NewLearned(testLimits(), 0, 7)
	if frac := clean.BadCellFraction(box); frac != 0 {
		t.Errorf("badFraction 0 produced %.2f corrupted cells", frac)
	}
	dirty := NewLearned(testLimits(), 0.3, 7)
	frac := dirty.BadCellFraction(box)
	if frac < 0.1 || frac > 0.5 {
		t.Errorf("badFraction 0.3 produced %.2f corrupted cells, want ≈0.3", frac)
	}
}

func TestFaultWindows(t *testing.T) {
	inner := NewNominal(testLimits())
	faulty := WithFaults(inner, testLimits(), []Fault{
		{Kind: FaultStuckZero, Start: time.Second, End: 2 * time.Second},
		{Kind: FaultInvertAxis, Start: 3 * time.Second, End: 4 * time.Second},
		{Kind: FaultFullThrust, Start: 5 * time.Second, End: 6 * time.Second, Param: geom.V(0, 1, 0)},
		{Kind: FaultBias, Start: 7 * time.Second, End: 8 * time.Second, Param: geom.V(0.5, 0, 0)},
	})
	pos, vel, target := geom.V(0, 0, 0), geom.Vec3{}, geom.V(10, 0, 0)
	clean := inner.Control(0, pos, vel, target)

	if got := faulty.Control(0, pos, vel, target); got != clean {
		t.Errorf("outside windows: %v != %v", got, clean)
	}
	if got := faulty.Control(1500*time.Millisecond, pos, vel, target); got != geom.Zero {
		t.Errorf("stuck-zero: %v", got)
	}
	if got := faulty.Control(3500*time.Millisecond, pos, vel, target); got != clean.Neg() {
		t.Errorf("invert: %v vs %v", got, clean.Neg())
	}
	if got := faulty.Control(5500*time.Millisecond, pos, vel, target); got != geom.V(0, 5, 0) {
		t.Errorf("full-thrust: %v", got)
	}
	// Bias: use an unsaturated setpoint so the offset is visible.
	near := geom.V(1, 0, 0)
	cleanNear := inner.Control(0, pos, vel, near)
	if got := faulty.Control(7500*time.Millisecond, pos, vel, near); math.Abs(got.X-(cleanNear.X+0.5)) > 1e-9 {
		t.Errorf("bias: %v, clean %v", got, cleanNear)
	}
	if _, active := faulty.ActiveFault(1500 * time.Millisecond); !active {
		t.Error("ActiveFault missed the window")
	}
	if _, active := faulty.ActiveFault(10 * time.Second); active {
		t.Error("ActiveFault outside windows")
	}
}

func TestFaultKindString(t *testing.T) {
	for k, want := range map[FaultKind]string{
		FaultStuckZero:  "stuck-zero",
		FaultInvertAxis: "invert-axis",
		FaultFullThrust: "full-thrust",
		FaultBias:       "bias",
		FaultKind(0):    "FaultKind(0)",
	} {
		if got := k.String(); got != want {
			t.Errorf("String(%d) = %q", int(k), got)
		}
	}
}

func safeFixture(t *testing.T) (*Safe, *reach.Analyzer) {
	t.Helper()
	ws, err := geom.NewWorkspace(
		geom.Box(geom.V(0, 0, 0), geom.V(30, 30, 10)),
		[]geom.AABB{geom.Box(geom.V(12, 12, 0), geom.V(18, 18, 8))},
	)
	if err != nil {
		t.Fatal(err)
	}
	bounds := reach.Bounds{MaxAccel: 5, MaxVel: 3, BrakeDecel: 4}
	an, err := reach.NewAnalyzer(ws, bounds, 0.4, 100*time.Millisecond, 2)
	if err != nil {
		t.Fatal(err)
	}
	return NewSafe(an, testLimits(), 20*time.Millisecond), an
}

func TestSafeBrakesWhenFast(t *testing.T) {
	sc, _ := safeFixture(t)
	u := sc.Control(0, geom.V(5, 5, 5), geom.V(3, 0, 0), geom.V(25, 5, 5))
	if u.X >= 0 {
		t.Errorf("fast state: control = %v, want braking (-X)", u)
	}
}

func TestSafeCreepsWhenSlowAndSafe(t *testing.T) {
	sc, _ := safeFixture(t)
	// At rest in open space, far from the obstacle: creep toward target.
	u := sc.Control(0, geom.V(5, 5, 5), geom.Vec3{}, geom.V(9, 5, 5))
	if u.X <= 0 {
		t.Errorf("slow safe state: control = %v, want progress (+X)", u)
	}
}

func TestSafeRefusesUnsafeCreep(t *testing.T) {
	sc, an := safeFixture(t)
	// Hovering just outside the margin band with the target inside the
	// obstacle: the controller must not creep in.
	pos := geom.V(11.2, 15, 3)
	if !an.Safe(pos, geom.Vec3{}) {
		t.Fatal("fixture state should be safe")
	}
	u := sc.Control(0, pos, geom.Vec3{}, geom.V(15, 15, 3))
	if u.X > 1e-9 {
		t.Errorf("control toward obstacle = %v, want no +X progress", u)
	}
}

// TestSafeP2aClosedLoop validates (P2a) directly: from many φsafe states,
// the SC closed loop never leaves φsafe.
func TestSafeP2aClosedLoop(t *testing.T) {
	sc, an := safeFixture(t)
	cert, err := reach.NewCertificate(reach.CertConfig{
		Analyzer: an,
		SCStep:   sc.ClosedLoopStep(),
		SCPeriod: 20 * time.Millisecond,
		Samples:  120,
		Seed:     9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := cert.CheckP2a(); err != nil {
		t.Errorf("(P2a) failed for the shipped safe controller: %v", err)
	}
}

// TestSafeP2bClosedLoop validates (P2b): the SC settles into φsafer within
// the deadline from φsafe states.
func TestSafeP2bClosedLoop(t *testing.T) {
	sc, an := safeFixture(t)
	cert, err := reach.NewCertificate(reach.CertConfig{
		Analyzer:    an,
		SCStep:      sc.ClosedLoopStep(),
		SCPeriod:    20 * time.Millisecond,
		Samples:     60,
		Seed:        10,
		P2bDeadline: 20 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := cert.CheckP2b(); err != nil {
		t.Errorf("(P2b) failed for the shipped safe controller: %v", err)
	}
}

// TestSafeRecoversIntoSafer drives the SC from a compromised high-speed
// state toward the obstacle and checks it recovers into φsafer without
// collision — the Figure 6 recovery behaviour in isolation.
func TestSafeRecoversIntoSafer(t *testing.T) {
	sc, an := safeFixture(t)
	drone, err := plant.NewDrone(plant.DefaultParams(), 1)
	if err != nil {
		t.Fatal(err)
	}
	// Charging at the obstacle from 2.5m with margin to spare.
	s := plant.State{Pos: geom.V(9.5, 15, 3), Vel: geom.V(2.5, 0, 0), Battery: 1}
	if !an.Safe(s.Pos, s.Vel) {
		t.Fatal("fixture state should start in φsafe")
	}
	reached := false
	for i := 0; i < 1500; i++ {
		u := sc.Control(0, s.Pos, s.Vel, geom.V(15, 15, 3))
		s = drone.Step(s, u, 20*time.Millisecond)
		if !an.Workspace().FreeWithMargin(s.Pos, 0) {
			t.Fatalf("collision at %v", s.Pos)
		}
		if an.InSafer(s.Pos, s.Vel) {
			reached = true
			break
		}
	}
	if !reached {
		t.Error("SC did not recover into φsafer within 30s")
	}
}
