package controller

import (
	"time"

	"repro/internal/geom"
	"repro/internal/reach"
)

// Safe is the certified safe controller Nsc: a brake-then-creep law standing
// in for a FaSTrack-synthesised controller. Its certificate argument is the
// control-barrier structure of φsafe = { s | BrakeBox(s) free }:
//
//  1. Braking at the guaranteed deceleration keeps the remaining stopping
//     footprint inside the current one, so φsafe is invariant while braking
//     (property P2a while fast).
//  2. Once slow, it creeps toward the target at a capped speed, and only
//     issues a command when the worst-case stopping footprint after one
//     control period remains collision-free; otherwise it brakes. φsafe is
//     therefore invariant in every branch (P2a), and progress toward the
//     (free-space) target at bounded speed eventually places the drone where
//     the hysteresis-horizon stop box is free, establishing liveness into
//     φsafer (P2b) — validated by the sampling certificate in
//     internal/reach.
type Safe struct {
	analyzer *reach.Analyzer
	limits   Limits
	period   time.Duration
	// creepVel is the cruise speed while recovering; low enough that the
	// stopping footprint stays tight.
	creepVel float64
	// slowThresh separates the braking phase from the creeping phase.
	slowThresh float64
}

var _ Controller = (*Safe)(nil)

// NewSafe builds the safe controller for the given analyzer (which fixes the
// workspace, margins and the guaranteed braking deceleration) and control
// period.
func NewSafe(a *reach.Analyzer, l Limits, period time.Duration) *Safe {
	creep := 0.35 * l.MaxVel
	return &Safe{
		analyzer:   a,
		limits:     l,
		period:     period,
		creepVel:   creep,
		slowThresh: creep * 1.2,
	}
}

// Control implements Controller.
func (c *Safe) Control(_ time.Duration, pos, vel, target geom.Vec3) geom.Vec3 {
	if vel.Norm() > c.slowThresh {
		return c.brakeCommand(vel)
	}
	// Creep phase: command a capped velocity, realised by a damped
	// acceleration, but only if the resulting worst-case state keeps a
	// collision-free stopping footprint; otherwise keep braking. While the
	// state is not yet in φsafer, the creep direction is the clearance
	// gradient (retreat from obstacles) rather than the mission target —
	// this is how the SC "moves the system to a state in φsafer" (P2b).
	var desired geom.Vec3
	if !c.analyzer.InSafer(pos, vel) {
		influence := 4 * c.analyzer.Margin()
		if influence < 2 {
			influence = 2
		}
		retreat := c.analyzer.Workspace().RetreatDirection(pos, influence)
		desired = retreat.Scale(c.creepVel)
	} else {
		desired = target.Sub(pos).ClampNorm(c.creepVel)
	}
	u := desired.Sub(vel).Scale(1.0 / c.period.Seconds())
	u = c.limits.clampAccel(u).ClampNorm(c.limits.MaxAccel)
	if c.safeAfter(pos, vel, u) || c.improving(pos, vel, u) {
		return u
	}
	return c.brakeCommand(vel)
}

// improving is the escape clause for states already inside the margin band
// (a late switch under worst-case faults can consume the safety margin —
// physically clear of the obstacle, but with the stopping footprint no
// longer margin-free). There the safeAfter guard would reject every command
// and freeze the drone; instead, a slow command that strictly increases
// clearance is allowed, so the SC backs out of the band and recovery
// resumes. It never fires while the margin-inflated stopping footprint is
// intact, so it does not weaken (P2a) in the interior of φsafe.
func (c *Safe) improving(pos, vel, u geom.Vec3) bool {
	cur := reach.StopBox(pos, vel, c.analyzer.Bounds(), c.period)
	if c.analyzer.Workspace().BoxFree(cur, c.analyzer.Margin()) {
		return false
	}
	np, nv := c.integrate(pos, vel, u)
	if nv.Norm() > 1.5*c.creepVel {
		return false
	}
	ws := c.analyzer.Workspace()
	return ws.Clearance(np) > ws.Clearance(pos)+1e-9
}

// brakeCommand decelerates each axis toward zero velocity at the guaranteed
// braking deceleration, without overshooting through zero within one period.
func (c *Safe) brakeCommand(vel geom.Vec3) geom.Vec3 {
	d := c.analyzer.Bounds().BrakeDecel
	h := c.period.Seconds()
	brakeAxis := func(v float64) float64 {
		a := -v / h // exact stop within one period if admissible
		if a > d {
			a = d
		}
		if a < -d {
			a = -d
		}
		return a
	}
	return geom.V(brakeAxis(vel.X), brakeAxis(vel.Y), brakeAxis(vel.Z))
}

// safeAfter conservatively predicts the state one period ahead under command
// u and checks that its stopping footprint (inflated to a worst-case stop
// box over the period) stays collision-free.
func (c *Safe) safeAfter(pos, vel, u geom.Vec3) bool {
	h := c.period.Seconds()
	b := c.analyzer.Bounds()
	vmax := geom.V(b.MaxVel, b.MaxVel, b.MaxVel)
	nextVel := vel.Add(u.Scale(h)).ClampBox(vmax.Neg(), vmax)
	nextPos := pos.Add(vel.Scale(h)).Add(u.Scale(0.5 * h * h))
	// One period of slack for actuation lag and discretisation: require the
	// stop box over an extra period to be free, not just the brake box.
	box := reach.StopBox(nextPos, nextVel, b, c.period)
	return c.analyzer.Workspace().BoxFree(box, c.analyzer.Margin())
}

// ClosedLoopStep returns a reach.SCStepFunc that advances an ideal
// double-integrator plant (no lag, exact saturation) one period under this
// controller — the closed-loop map used by the sampling certificate. The
// guaranteed braking deceleration of the analyzer accounts for the gap
// between this ideal model and the lagged plant.
func (c *Safe) ClosedLoopStep() reach.SCStepFunc {
	return func(pos, vel geom.Vec3) (geom.Vec3, geom.Vec3) {
		u := c.Control(0, pos, vel, pos) // hold position: pure recovery
		return c.integrate(pos, vel, u)
	}
}

// ClosedLoopStepToward is like ClosedLoopStep but recovering toward a fixed
// target, for liveness experiments.
func (c *Safe) ClosedLoopStepToward(target geom.Vec3) reach.SCStepFunc {
	return func(pos, vel geom.Vec3) (geom.Vec3, geom.Vec3) {
		u := c.Control(0, pos, vel, target)
		return c.integrate(pos, vel, u)
	}
}

func (c *Safe) integrate(pos, vel, u geom.Vec3) (geom.Vec3, geom.Vec3) {
	h := c.period.Seconds()
	b := c.analyzer.Bounds()
	vmax := geom.V(b.MaxVel, b.MaxVel, b.MaxVel)
	nv := vel.Add(u.Scale(h)).ClampBox(vmax.Neg(), vmax)
	np := pos.Add(nv.Scale(h))
	return np, nv
}
