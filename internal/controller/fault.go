package controller

import (
	"fmt"
	"time"

	"repro/internal/geom"
)

// FaultKind enumerates the injectable controller faults.
type FaultKind int

// Fault kinds. Each models a realistic bug class in an untrusted controller.
const (
	// FaultStuckZero: the controller output freezes at zero (crashed
	// process / watchdog reset) — the drone coasts.
	FaultStuckZero FaultKind = iota + 1
	// FaultInvertAxis: the sign of every axis is flipped (frame-convention
	// bug) — the controller actively destabilises the plant.
	FaultInvertAxis
	// FaultFullThrust: the output saturates at full acceleration along a
	// fixed direction (runaway integrator).
	FaultFullThrust
	// FaultBias: a constant bias is added to the output (mis-calibration).
	FaultBias
)

// String implements fmt.Stringer.
func (k FaultKind) String() string {
	switch k {
	case FaultStuckZero:
		return "stuck-zero"
	case FaultInvertAxis:
		return "invert-axis"
	case FaultFullThrust:
		return "full-thrust"
	case FaultBias:
		return "bias"
	default:
		return fmt.Sprintf("FaultKind(%d)", int(k))
	}
}

// Fault is one fault-injection window: between Start and End the wrapped
// controller's output is perturbed according to Kind.
type Fault struct {
	Kind  FaultKind
	Start time.Duration
	End   time.Duration
	// Param is the fault payload: the thrust direction for FaultFullThrust,
	// the bias vector for FaultBias; ignored otherwise.
	Param geom.Vec3
}

// Active reports whether the fault is active at time t.
func (f Fault) Active(t time.Duration) bool {
	return t >= f.Start && t < f.End
}

// Faulty wraps an inner controller with fault-injection windows.
type Faulty struct {
	inner  Controller
	limits Limits
	faults []Fault
}

var _ Controller = (*Faulty)(nil)

// WithFaults wraps ctrl so that the listed faults perturb its output during
// their windows. The fault slice is copied.
func WithFaults(ctrl Controller, l Limits, faults []Fault) *Faulty {
	fs := make([]Fault, len(faults))
	copy(fs, faults)
	return &Faulty{inner: ctrl, limits: l, faults: fs}
}

// Control implements Controller.
func (c *Faulty) Control(t time.Duration, pos, vel, target geom.Vec3) geom.Vec3 {
	u := c.inner.Control(t, pos, vel, target)
	for _, f := range c.faults {
		if !f.Active(t) {
			continue
		}
		switch f.Kind {
		case FaultStuckZero:
			u = geom.Zero
		case FaultInvertAxis:
			u = u.Neg()
		case FaultFullThrust:
			u = f.Param.Unit().Scale(c.limits.MaxAccel)
		case FaultBias:
			u = u.Add(f.Param)
		}
	}
	return c.limits.clampAccel(u)
}

// ActiveFault returns the first fault active at t, if any.
func (c *Faulty) ActiveFault(t time.Duration) (Fault, bool) {
	for _, f := range c.faults {
		if f.Active(t) {
			return f, true
		}
	}
	return Fault{}, false
}
