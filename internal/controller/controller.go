// Package controller implements the three controller families of the case
// study (Section II-C, V-A):
//
//   - Aggressive: a stand-in for the PX4 autopilot's time-optimised motion
//     primitives — a high-gain, underdamped tracking law that is fast but
//     overshoots during high-speed maneuvers (Figure 5, right);
//   - Learned: a stand-in for a data-driven / RL-trained primitive — a
//     gain-scheduled policy whose table contains corrupted regions, so it
//     usually tracks well but occasionally deviates dangerously (Figure 5,
//     left);
//   - Safe: the certified safe controller Nsc — a brake-then-creep law that
//     provably preserves φsafe (the braking-footprint invariant computed by
//     internal/reach), standing in for a FaSTrack-synthesised controller.
//
// A fault-injection wrapper perturbs any controller's output over chosen
// time windows, reproducing the paper's "bugs introduced using fault
// injection in the advanced controller".
package controller

import (
	"math"
	"time"

	"repro/internal/geom"
)

// Controller maps the observed kinematic state and the current target
// waypoint to a commanded acceleration. Implementations must be
// deterministic given their construction-time seed; t is the current system
// time (used by time-dependent faults and scheduled policies).
type Controller interface {
	Control(t time.Duration, pos, vel, target geom.Vec3) geom.Vec3
}

// Limits are the actuation limits a controller saturates to.
type Limits struct {
	MaxAccel float64
	MaxVel   float64
}

func (l Limits) clampAccel(a geom.Vec3) geom.Vec3 {
	m := geom.V(l.MaxAccel, l.MaxAccel, l.MaxAccel)
	return a.ClampBox(m.Neg(), m)
}

// PD is a generic proportional-derivative tracking law
// u = Kp (target − pos) − Kd vel, saturated per axis.
type PD struct {
	Kp, Kd float64
	Limits Limits
}

var _ Controller = (*PD)(nil)

// Control implements Controller.
func (c *PD) Control(_ time.Duration, pos, vel, target geom.Vec3) geom.Vec3 {
	u := target.Sub(pos).Scale(c.Kp).Sub(vel.Scale(c.Kd))
	return c.Limits.clampAccel(u)
}

// NewAggressive builds the untrusted advanced controller standing in for the
// third-party PX4 primitives: high proportional gain with weak damping
// (underdamped), so the drone accelerates hard toward the waypoint and
// overshoots during high-speed maneuvers — exactly the failure mode of
// Figure 5 (right).
func NewAggressive(l Limits) *PD {
	return &PD{Kp: 3.2, Kd: 1.1, Limits: l}
}

// NewNominal builds a well-damped PD law used as a reference "reasonable"
// controller in tests (critical damping: Kd = 2·sqrt(Kp)).
func NewNominal(l Limits) *PD {
	kp := 1.5
	return &PD{Kp: kp, Kd: 2 * math.Sqrt(kp), Limits: l}
}
