package controller

import (
	"math/rand"
	"time"

	"repro/internal/geom"
)

// Learned is the data-driven controller stand-in: a gain-scheduled policy
// whose gain table is indexed by a coarse discretisation of the state space.
// Most cells hold well-tuned gains; a configurable fraction are "corrupted"
// (mis-trained), where the policy commands under-damped or even destabilising
// actions. The corruption pattern is fixed at construction from the seed, so
// a given policy is deterministic — like a trained network with systematic
// blind spots — reproducing the Figure 5 (left) behaviour: most loops track
// the reference well (green), some deviate dangerously (red).
type Learned struct {
	limits   Limits
	cellSize float64
	badFrac  float64
	seed     int64
}

var _ Controller = (*Learned)(nil)

// NewLearned builds a learned-policy stand-in. badFraction is the fraction
// of state-space cells with corrupted gains, in [0, 1].
func NewLearned(l Limits, badFraction float64, seed int64) *Learned {
	if badFraction < 0 {
		badFraction = 0
	}
	if badFraction > 1 {
		badFraction = 1
	}
	return &Learned{
		limits:   l,
		cellSize: 4.0,
		badFrac:  badFraction,
		seed:     seed,
	}
}

// Control implements Controller.
func (c *Learned) Control(_ time.Duration, pos, vel, target geom.Vec3) geom.Vec3 {
	kp, kd := c.gains(pos)
	u := target.Sub(pos).Scale(kp).Sub(vel.Scale(kd))
	return c.limits.clampAccel(u)
}

// gains returns the scheduled gains for the state-space cell containing pos.
// The per-cell RNG is derived from the cell id and the policy seed, so the
// "training corruption" is a fixed function of the state.
func (c *Learned) gains(pos geom.Vec3) (kp, kd float64) {
	cx := int64(pos.X / c.cellSize)
	cy := int64(pos.Y / c.cellSize)
	cz := int64(pos.Z / c.cellSize)
	h := uint64(c.seed)
	for _, v := range [3]int64{cx, cy, cz} {
		h ^= uint64(v) + 0x9e3779b97f4a7c15 + (h << 6) + (h >> 2)
	}
	rng := rand.New(rand.NewSource(int64(h)))
	if rng.Float64() < c.badFrac {
		// Corrupted cell: hard acceleration with near-zero (sometimes
		// negative) damping — the policy "learned" the wrong response here.
		kp = 3.5 + rng.Float64()*2.0
		kd = -0.3 + rng.Float64()*0.5
		return kp, kd
	}
	// Well-trained cell: close to critically damped.
	kp = 1.4 + rng.Float64()*0.4
	kd = 2.2 + rng.Float64()*0.4
	return kp, kd
}

// BadCellFraction empirically samples the fraction of corrupted cells inside
// the box, for tests and workload reporting.
func (c *Learned) BadCellFraction(bounds geom.AABB) float64 {
	total, bad := 0, 0
	for x := bounds.Min.X; x < bounds.Max.X; x += c.cellSize {
		for y := bounds.Min.Y; y < bounds.Max.Y; y += c.cellSize {
			for z := bounds.Min.Z; z < bounds.Max.Z; z += c.cellSize {
				kp, kd := c.gains(geom.V(x, y, z))
				total++
				if kd < 0.5 && kp > 3 {
					bad++
				}
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(bad) / float64(total)
}
