package pubsub

import (
	"reflect"
	"sync"
	"testing"
)

func TestNewStoreValidation(t *testing.T) {
	if _, err := NewStore(Topic{Name: ""}); err == nil {
		t.Error("expected error for empty topic name")
	}
	if _, err := NewStore(Topic{Name: "a"}, Topic{Name: "a"}); err == nil {
		t.Error("expected error for duplicate topic")
	}
}

func TestStoreGetSet(t *testing.T) {
	s, err := NewStore(Topic{Name: "pos", Default: 1.5}, Topic{Name: "cmd"})
	if err != nil {
		t.Fatal(err)
	}
	v, err := s.Get("pos")
	if err != nil || v.(float64) != 1.5 {
		t.Errorf("Get default = %v, %v", v, err)
	}
	v, err = s.Get("cmd")
	if err != nil || v != nil {
		t.Errorf("Get zero default = %v, %v", v, err)
	}
	if err := s.Set("pos", 2.5); err != nil {
		t.Fatal(err)
	}
	v, _ = s.Get("pos")
	if v.(float64) != 2.5 {
		t.Errorf("Get after Set = %v", v)
	}
	if _, err := s.Get("nope"); err == nil {
		t.Error("expected error for undeclared topic")
	}
	if err := s.Set("nope", 1); err == nil {
		t.Error("expected error setting undeclared topic")
	}
	if !s.Has("pos") || s.Has("nope") {
		t.Error("Has is wrong")
	}
}

func TestStoreReadWrite(t *testing.T) {
	s, _ := NewStore(Topic{Name: "a", Default: 1}, Topic{Name: "b", Default: 2}, Topic{Name: "c", Default: 3})
	val, err := s.Read([]TopicName{"a", "c"})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(val, Valuation{"a": 1, "c": 3}) {
		t.Errorf("Read = %v", val)
	}
	if _, err := s.Read([]TopicName{"a", "zzz"}); err == nil {
		t.Error("expected error reading undeclared topic")
	}
	if err := s.Write(Valuation{"a": 10, "b": 20}); err != nil {
		t.Fatal(err)
	}
	snap := s.Snapshot()
	if !reflect.DeepEqual(snap, Valuation{"a": 10, "b": 20, "c": 3}) {
		t.Errorf("Snapshot = %v", snap)
	}
	// Write with an undeclared topic must be rejected atomically: nothing
	// else in the batch is applied.
	if err := s.Write(Valuation{"c": 99, "zzz": 1}); err == nil {
		t.Error("expected error writing undeclared topic")
	}
	if v, _ := s.Get("c"); v.(int) != 3 {
		t.Errorf("partial write applied: c = %v", v)
	}
}

func TestStoreNamesSorted(t *testing.T) {
	s, _ := NewStore(Topic{Name: "zeta"}, Topic{Name: "alpha"}, Topic{Name: "mid"})
	got := s.Names()
	want := []TopicName{"alpha", "mid", "zeta"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Names = %v", got)
	}
}

func TestValuationClone(t *testing.T) {
	v := Valuation{"a": 1, "b": 2}
	c := v.Clone()
	c["a"] = 99
	if v["a"].(int) != 1 {
		t.Error("Clone shares storage with the original")
	}
	names := v.Names()
	if !reflect.DeepEqual(names, []TopicName{"a", "b"}) {
		t.Errorf("Names = %v", names)
	}
}

func TestBusPublishSubscribe(t *testing.T) {
	b := NewBus()
	if err := b.Subscribe("n1", "topic", 4); err != nil {
		t.Fatal(err)
	}
	if err := b.Subscribe("n2", "topic", 4); err != nil {
		t.Fatal(err)
	}
	if n := b.Publish("topic", 42); n != 2 {
		t.Errorf("Publish reached %d subscribers, want 2", n)
	}
	if n := b.Publish("other", 1); n != 0 {
		t.Errorf("Publish to topic without subscribers reached %d", n)
	}
	got := b.Drain("n1", "topic")
	if len(got) != 1 || got[0].(int) != 42 {
		t.Errorf("Drain = %v", got)
	}
	if got := b.Drain("n1", "topic"); got != nil {
		t.Errorf("second Drain = %v, want nil", got)
	}
	// n2 still has its own buffered copy.
	if v, ok := b.Latest("n2", "topic"); !ok || v.(int) != 42 {
		t.Errorf("Latest(n2) = %v, %v", v, ok)
	}
}

func TestBusOverflowDropsOldest(t *testing.T) {
	b := NewBus()
	if err := b.Subscribe("n", "t", 2); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 5; i++ {
		b.Publish("t", i)
	}
	got := b.Drain("n", "t")
	if len(got) != 2 || got[0].(int) != 4 || got[1].(int) != 5 {
		t.Errorf("Drain after overflow = %v, want [4 5]", got)
	}
}

func TestBusSubscribeValidation(t *testing.T) {
	b := NewBus()
	if err := b.Subscribe("n", "t", 0); err == nil {
		t.Error("expected error for zero capacity")
	}
	if _, ok := b.Latest("ghost", "t"); ok {
		t.Error("Latest for unknown subscriber should report not-ok")
	}
	if got := b.Drain("ghost", "t"); got != nil {
		t.Errorf("Drain unknown subscriber = %v", got)
	}
}

func TestBusConcurrentPublish(t *testing.T) {
	b := NewBus()
	if err := b.Subscribe("n", "t", 1024); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				b.Publish("t", w*1000+i)
			}
		}(w)
	}
	wg.Wait()
	got := b.Drain("n", "t")
	if len(got) != 800 {
		t.Errorf("drained %d messages, want 800", len(got))
	}
}
