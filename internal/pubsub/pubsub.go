// Package pubsub implements the publish-subscribe communication substrate of
// the SOTER programming model (Section II-B, III-A of the paper). A topic is
// a (name, value) pair; nodes communicate by publishing on and subscribing to
// message topics. Following the paper's simplified presentation, the Store
// models the globally visible value of each topic; Bus additionally models
// the per-subscriber local buffers of a real ROS-style middleware.
package pubsub

import (
	"fmt"
	"sort"
	"sync"
)

// TopicName is the unique name e ∈ T of a topic.
type TopicName string

// Value is the value v ∈ V carried by a topic. Values must be treated as
// immutable once published: publishers hand off ownership.
type Value any

// Topic declares a communication channel with its default (initial) value.
type Topic struct {
	Name    TopicName
	Default Value
}

// Valuation maps a set of topic names to their values (Vals(X) in the paper).
type Valuation map[TopicName]Value

// Clone returns a shallow copy of the valuation.
func (v Valuation) Clone() Valuation {
	out := make(Valuation, len(v))
	for k, val := range v {
		out[k] = val
	}
	return out
}

// Names returns the sorted topic names present in the valuation.
func (v Valuation) Names() []TopicName {
	names := make([]TopicName, 0, len(v))
	for k := range v {
		names = append(names, k)
	}
	sort.Slice(names, func(i, j int) bool { return names[i] < names[j] })
	return names
}

// Store holds the globally visible value of every declared topic
// (Topics ∈ T → V in the operational semantics, Figure 11). Store is not
// safe for concurrent use; the discrete-event executor is single-threaded.
type Store struct {
	values map[TopicName]Value
}

// NewStore creates a store with the given topics at their default values.
// Duplicate topic declarations are an error.
func NewStore(topics ...Topic) (*Store, error) {
	s := &Store{values: make(map[TopicName]Value, len(topics))}
	for _, t := range topics {
		if t.Name == "" {
			return nil, fmt.Errorf("topic with empty name")
		}
		if _, dup := s.values[t.Name]; dup {
			return nil, fmt.Errorf("duplicate topic %q", t.Name)
		}
		s.values[t.Name] = t.Default
	}
	return s, nil
}

// Has reports whether the topic is declared.
func (s *Store) Has(name TopicName) bool {
	_, ok := s.values[name]
	return ok
}

// Get returns the current value of the topic.
func (s *Store) Get(name TopicName) (Value, error) {
	v, ok := s.values[name]
	if !ok {
		return nil, fmt.Errorf("undeclared topic %q", name)
	}
	return v, nil
}

// Set updates the value of a declared topic.
func (s *Store) Set(name TopicName, v Value) error {
	if _, ok := s.values[name]; !ok {
		return fmt.Errorf("undeclared topic %q", name)
	}
	s.values[name] = v
	return nil
}

// Read returns the valuation of the given topic names (Topics[X]).
func (s *Store) Read(names []TopicName) (Valuation, error) {
	out := make(Valuation, len(names))
	for _, n := range names {
		v, ok := s.values[n]
		if !ok {
			return nil, fmt.Errorf("undeclared topic %q", n)
		}
		out[n] = v
	}
	return out, nil
}

// Write applies the output valuation to the store (Topics' = out ∪ Topics).
func (s *Store) Write(out Valuation) error {
	for n := range out {
		if _, ok := s.values[n]; !ok {
			return fmt.Errorf("undeclared topic %q", n)
		}
	}
	for n, v := range out {
		s.values[n] = v
	}
	return nil
}

// Snapshot returns a copy of the full topic valuation.
func (s *Store) Snapshot() Valuation {
	out := make(Valuation, len(s.values))
	for k, v := range s.values {
		out[k] = v
	}
	return out
}

// Names returns the sorted names of all declared topics.
func (s *Store) Names() []TopicName {
	names := make([]TopicName, 0, len(s.values))
	for k := range s.values {
		names = append(names, k)
	}
	sort.Slice(names, func(i, j int) bool { return names[i] < names[j] })
	return names
}

// Bus is a thread-safe publish-subscribe middleware with per-subscriber
// buffers, modelling the local buffer each SOTER node keeps for every
// subscribed topic. The publish operation adds the message into the
// corresponding local buffer of all nodes that have subscribed to the topic.
type Bus struct {
	mu   sync.Mutex
	subs map[TopicName]map[string]*buffer
}

type buffer struct {
	msgs []Value
	cap  int
}

// NewBus creates an empty bus.
func NewBus() *Bus {
	return &Bus{subs: make(map[TopicName]map[string]*buffer)}
}

// Subscribe registers subscriber sub on the topic with a bounded local buffer
// of the given capacity (oldest messages are dropped on overflow, matching
// typical ROS queue semantics). Re-subscribing replaces the buffer.
func (b *Bus) Subscribe(sub string, topic TopicName, capacity int) error {
	if capacity <= 0 {
		return fmt.Errorf("subscriber %q topic %q: capacity %d must be positive", sub, topic, capacity)
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	m, ok := b.subs[topic]
	if !ok {
		m = make(map[string]*buffer)
		b.subs[topic] = m
	}
	m[sub] = &buffer{cap: capacity}
	return nil
}

// Publish delivers the value to the local buffer of every subscriber of the
// topic and returns the number of subscribers reached.
func (b *Bus) Publish(topic TopicName, v Value) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	n := 0
	for _, buf := range b.subs[topic] {
		if len(buf.msgs) >= buf.cap {
			copy(buf.msgs, buf.msgs[1:])
			buf.msgs = buf.msgs[:len(buf.msgs)-1]
		}
		buf.msgs = append(buf.msgs, v)
		n++
	}
	return n
}

// Drain removes and returns all buffered messages for the subscriber on the
// topic, oldest first.
func (b *Bus) Drain(sub string, topic TopicName) []Value {
	b.mu.Lock()
	defer b.mu.Unlock()
	m := b.subs[topic]
	if m == nil {
		return nil
	}
	buf := m[sub]
	if buf == nil || len(buf.msgs) == 0 {
		return nil
	}
	out := make([]Value, len(buf.msgs))
	copy(out, buf.msgs)
	buf.msgs = buf.msgs[:0]
	return out
}

// Latest returns the newest buffered message for the subscriber without
// draining, and whether one exists.
func (b *Bus) Latest(sub string, topic TopicName) (Value, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	m := b.subs[topic]
	if m == nil {
		return nil, false
	}
	buf := m[sub]
	if buf == nil || len(buf.msgs) == 0 {
		return nil, false
	}
	return buf.msgs[len(buf.msgs)-1], true
}
