// Package pubsub implements the publish-subscribe communication substrate of
// the SOTER programming model (Section II-B, III-A of the paper). A topic is
// a (name, value) pair; nodes communicate by publishing on and subscribing to
// message topics. Following the paper's simplified presentation, the Store
// models the globally visible value of each topic; Bus additionally models
// the per-subscriber local buffers of a real ROS-style middleware.
//
// Topic names are interned: every Store assigns each declared topic a dense
// TopicID at construction, so the per-firing hot path of the executor can
// read and write values through slice indexing instead of allocating and
// hashing map keys on every node firing. The Interner is immutable after
// construction and therefore safe to share between any number of concurrent
// readers — the fleet engine relies on this when it runs many executors in
// parallel.
package pubsub

import (
	"fmt"
	"slices"
	"sync"
)

// TopicName is the unique name e ∈ T of a topic.
type TopicName string

// TopicID is the dense index a Store's Interner assigns to a declared topic.
// IDs are contiguous, start at 0, and follow the sorted order of the topic
// names, so they are deterministic for a given topic set.
type TopicID int

// Value is the value v ∈ V carried by a topic. Values must be treated as
// immutable once published: publishers hand off ownership.
type Value any

// Topic declares a communication channel with its default (initial) value.
type Topic struct {
	Name    TopicName
	Default Value
}

// Valuation maps a set of topic names to their values (Vals(X) in the paper).
type Valuation map[TopicName]Value

// Clone returns a shallow copy of the valuation.
func (v Valuation) Clone() Valuation {
	return v.CloneInto(make(Valuation, len(v)))
}

// CloneInto copies the valuation into dst, clearing dst first, and returns
// dst. Reusing a destination across calls avoids the per-call map allocation
// of Clone: refilling a map with the same keys reuses its buckets.
func (v Valuation) CloneInto(dst Valuation) Valuation {
	clear(dst)
	for k, val := range v {
		dst[k] = val
	}
	return dst
}

// Names returns the sorted topic names present in the valuation.
func (v Valuation) Names() []TopicName {
	names := make([]TopicName, 0, len(v))
	for k := range v {
		names = append(names, k)
	}
	slices.Sort(names)
	return names
}

// Interner maps topic names to dense TopicIDs and back. It is built once per
// Store and never mutated afterwards, so lookups need no synchronisation.
type Interner struct {
	ids   map[TopicName]TopicID
	names []TopicName // index = TopicID, sorted
}

// newInterner assigns dense IDs to the given names in sorted order. Names
// must be non-empty and unique.
func newInterner(names []TopicName) (*Interner, error) {
	sorted := make([]TopicName, len(names))
	copy(sorted, names)
	slices.Sort(sorted)
	in := &Interner{
		ids:   make(map[TopicName]TopicID, len(sorted)),
		names: sorted,
	}
	for i, n := range sorted {
		if n == "" {
			return nil, fmt.Errorf("topic with empty name")
		}
		if i > 0 && n == sorted[i-1] {
			return nil, fmt.Errorf("duplicate topic %q", n)
		}
		in.ids[n] = TopicID(i)
	}
	return in, nil
}

// Lookup returns the ID of a declared topic name.
func (in *Interner) Lookup(name TopicName) (TopicID, bool) {
	id, ok := in.ids[name]
	return id, ok
}

// Name returns the topic name of a dense ID. It panics on an out-of-range ID,
// which is always a programming error (IDs only come from Lookup).
func (in *Interner) Name(id TopicID) TopicName { return in.names[id] }

// Len returns the number of interned topics.
func (in *Interner) Len() int { return len(in.names) }

// Store holds the globally visible value of every declared topic
// (Topics ∈ T → V in the operational semantics, Figure 11), backed by a
// dense slice indexed by TopicID. Store is not safe for concurrent use; the
// discrete-event executor is single-threaded, and the fleet engine gives
// every run its own Store.
type Store struct {
	interner *Interner
	values   []Value
}

// NewStore creates a store with the given topics at their default values.
// Duplicate topic declarations are an error.
func NewStore(topics ...Topic) (*Store, error) {
	names := make([]TopicName, len(topics))
	for i, t := range topics {
		names[i] = t.Name
	}
	interner, err := newInterner(names)
	if err != nil {
		return nil, err
	}
	s := &Store{interner: interner, values: make([]Value, interner.Len())}
	for _, t := range topics {
		id, _ := interner.Lookup(t.Name)
		s.values[id] = t.Default
	}
	return s, nil
}

// Interner returns the store's immutable name↔ID mapping.
func (s *Store) Interner() *Interner { return s.interner }

// Has reports whether the topic is declared.
func (s *Store) Has(name TopicName) bool {
	_, ok := s.interner.Lookup(name)
	return ok
}

// ID resolves a declared topic name to its dense ID.
func (s *Store) ID(name TopicName) (TopicID, error) {
	id, ok := s.interner.Lookup(name)
	if !ok {
		return 0, fmt.Errorf("undeclared topic %q", name)
	}
	return id, nil
}

// IDs resolves a set of topic names to their dense IDs. Callers cache the
// result (the executor does so per node) and use GetID/SetID/ReadInto on
// the hot path.
func (s *Store) IDs(names []TopicName) ([]TopicID, error) {
	out := make([]TopicID, len(names))
	for i, n := range names {
		id, err := s.ID(n)
		if err != nil {
			return nil, err
		}
		out[i] = id
	}
	return out, nil
}

// Get returns the current value of the topic.
func (s *Store) Get(name TopicName) (Value, error) {
	id, err := s.ID(name)
	if err != nil {
		return nil, err
	}
	return s.values[id], nil
}

// GetID returns the current value of the topic with the given dense ID.
func (s *Store) GetID(id TopicID) Value { return s.values[id] }

// Set updates the value of a declared topic.
func (s *Store) Set(name TopicName, v Value) error {
	id, err := s.ID(name)
	if err != nil {
		return err
	}
	s.values[id] = v
	return nil
}

// SetID updates the value of the topic with the given dense ID.
func (s *Store) SetID(id TopicID, v Value) { s.values[id] = v }

// Read returns the valuation of the given topic names (Topics[X]).
func (s *Store) Read(names []TopicName) (Valuation, error) {
	out := make(Valuation, len(names))
	for _, n := range names {
		v, err := s.Get(n)
		if err != nil {
			return nil, err
		}
		out[n] = v
	}
	return out, nil
}

// ReadInto fills dst with the values of the given pre-resolved topic IDs,
// clearing dst first. Refilling the same map with the same keys performs no
// allocation, which is what the executor's per-firing input reads rely on.
func (s *Store) ReadInto(ids []TopicID, dst Valuation) {
	clear(dst)
	for _, id := range ids {
		dst[s.interner.names[id]] = s.values[id]
	}
}

// Write applies the output valuation to the store (Topics' = out ∪ Topics).
// Undeclared names are rejected before any value is applied.
func (s *Store) Write(out Valuation) error {
	for n := range out {
		if _, ok := s.interner.Lookup(n); !ok {
			return fmt.Errorf("undeclared topic %q", n)
		}
	}
	for n, v := range out {
		id, _ := s.interner.Lookup(n)
		s.values[id] = v
	}
	return nil
}

// Snapshot returns a copy of the full topic valuation.
func (s *Store) Snapshot() Valuation {
	out := make(Valuation, len(s.values))
	for id, v := range s.values {
		out[s.interner.names[id]] = v
	}
	return out
}

// Names returns the sorted names of all declared topics.
func (s *Store) Names() []TopicName {
	names := make([]TopicName, len(s.interner.names))
	copy(names, s.interner.names)
	return names
}

// Bus is a thread-safe publish-subscribe middleware with per-subscriber
// buffers, modelling the local buffer each SOTER node keeps for every
// subscribed topic. The publish operation adds the message into the
// corresponding local buffer of all nodes that have subscribed to the topic.
type Bus struct {
	mu   sync.Mutex
	subs map[TopicName]map[string]*buffer
}

// buffer is a fixed-capacity ring: head is the index of the oldest message
// and n the number buffered. Publishing into a full ring overwrites the
// oldest slot and advances head — an O(1) oldest-drop, where the previous
// implementation shifted the whole backing slice on every overflow.
type buffer struct {
	ring []Value
	head int
	n    int
}

func (b *buffer) push(v Value) {
	b.ring[(b.head+b.n)%len(b.ring)] = v
	if b.n == len(b.ring) {
		b.head = (b.head + 1) % len(b.ring) // full: dropped the oldest
	} else {
		b.n++
	}
}

// NewBus creates an empty bus.
func NewBus() *Bus {
	return &Bus{subs: make(map[TopicName]map[string]*buffer)}
}

// Subscribe registers subscriber sub on the topic with a bounded local buffer
// of the given capacity (oldest messages are dropped on overflow, matching
// typical ROS queue semantics). Re-subscribing replaces the buffer.
func (b *Bus) Subscribe(sub string, topic TopicName, capacity int) error {
	if capacity <= 0 {
		return fmt.Errorf("subscriber %q topic %q: capacity %d must be positive", sub, topic, capacity)
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	m, ok := b.subs[topic]
	if !ok {
		m = make(map[string]*buffer)
		b.subs[topic] = m
	}
	m[sub] = &buffer{ring: make([]Value, capacity)}
	return nil
}

// Publish delivers the value to the local buffer of every subscriber of the
// topic and returns the number of subscribers reached.
func (b *Bus) Publish(topic TopicName, v Value) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	n := 0
	for _, buf := range b.subs[topic] {
		buf.push(v)
		n++
	}
	return n
}

// Drain removes and returns all buffered messages for the subscriber on the
// topic, oldest first.
func (b *Bus) Drain(sub string, topic TopicName) []Value {
	b.mu.Lock()
	defer b.mu.Unlock()
	m := b.subs[topic]
	if m == nil {
		return nil
	}
	buf := m[sub]
	if buf == nil || buf.n == 0 {
		return nil
	}
	out := make([]Value, buf.n)
	for i := 0; i < buf.n; i++ {
		j := (buf.head + i) % len(buf.ring)
		out[i] = buf.ring[j]
		buf.ring[j] = nil // release for GC
	}
	buf.head, buf.n = 0, 0
	return out
}

// Latest returns the newest buffered message for the subscriber without
// draining, and whether one exists.
func (b *Bus) Latest(sub string, topic TopicName) (Value, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	m := b.subs[topic]
	if m == nil {
		return nil, false
	}
	buf := m[sub]
	if buf == nil || buf.n == 0 {
		return nil, false
	}
	return buf.ring[(buf.head+buf.n-1)%len(buf.ring)], true
}
