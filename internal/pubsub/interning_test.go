package pubsub

import (
	"fmt"
	"reflect"
	"sync"
	"testing"
)

func TestStoreIDsDenseSorted(t *testing.T) {
	s, err := NewStore(Topic{Name: "zeta", Default: 26}, Topic{Name: "alpha", Default: 1}, Topic{Name: "mid", Default: 13})
	if err != nil {
		t.Fatal(err)
	}
	in := s.Interner()
	if in.Len() != 3 {
		t.Fatalf("Len = %d", in.Len())
	}
	// IDs are dense and follow sorted name order.
	for want, name := range []TopicName{"alpha", "mid", "zeta"} {
		id, ok := in.Lookup(name)
		if !ok || id != TopicID(want) {
			t.Errorf("Lookup(%q) = %v, %v; want %d", name, id, ok, want)
		}
		if got := in.Name(id); got != name {
			t.Errorf("Name(%d) = %q", id, got)
		}
	}
	if _, ok := in.Lookup("nope"); ok {
		t.Error("Lookup of undeclared topic succeeded")
	}
	if _, err := s.IDs([]TopicName{"alpha", "nope"}); err == nil {
		t.Error("IDs with undeclared topic should fail")
	}
}

func TestStoreIDAccessors(t *testing.T) {
	s, _ := NewStore(Topic{Name: "a", Default: 1}, Topic{Name: "b", Default: 2}, Topic{Name: "c", Default: 3})
	ids, err := s.IDs([]TopicName{"c", "a"})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.GetID(ids[0]); got.(int) != 3 {
		t.Errorf("GetID(c) = %v", got)
	}
	s.SetID(ids[1], 10)
	if v, _ := s.Get("a"); v.(int) != 10 {
		t.Errorf("Get after SetID = %v", v)
	}
}

func TestStoreReadIntoReusesBuffer(t *testing.T) {
	s, _ := NewStore(Topic{Name: "a", Default: 1}, Topic{Name: "b", Default: 2}, Topic{Name: "c", Default: 3})
	ids, _ := s.IDs([]TopicName{"a", "c"})
	dst := make(Valuation, len(ids))
	// Leftovers from a previous firing must be cleared.
	dst["stale"] = 99
	s.ReadInto(ids, dst)
	if !reflect.DeepEqual(dst, Valuation{"a": 1, "c": 3}) {
		t.Fatalf("ReadInto = %v", dst)
	}
	// The executor refills the same buffer every firing: steady-state reads
	// must not allocate.
	allocs := testing.AllocsPerRun(200, func() {
		s.ReadInto(ids, dst)
	})
	if allocs != 0 {
		t.Errorf("ReadInto allocates %.1f objects per call, want 0", allocs)
	}
}

func TestValuationCloneInto(t *testing.T) {
	v := Valuation{"a": 1, "b": 2}
	dst := Valuation{"stale": 9}
	got := v.CloneInto(dst)
	if !reflect.DeepEqual(got, Valuation{"a": 1, "b": 2}) {
		t.Errorf("CloneInto = %v", got)
	}
	got["a"] = 99
	if v["a"].(int) != 1 {
		t.Error("CloneInto shares storage with the source")
	}
	allocs := testing.AllocsPerRun(200, func() {
		v.CloneInto(dst)
	})
	if allocs != 0 {
		t.Errorf("CloneInto allocates %.1f objects per call, want 0", allocs)
	}
}

// TestBusRingWraparound drives the ring through several fill/drain cycles so
// head wraps the backing slice in every position.
func TestBusRingWraparound(t *testing.T) {
	b := NewBus()
	if err := b.Subscribe("n", "t", 3); err != nil {
		t.Fatal(err)
	}
	next := 0
	for cycle := 0; cycle < 5; cycle++ {
		// Overfill: capacity 3, publish 4+cycle, oldest dropped.
		count := 4 + cycle
		first := next
		for i := 0; i < count; i++ {
			b.Publish("t", next)
			next++
		}
		if v, ok := b.Latest("n", "t"); !ok || v.(int) != next-1 {
			t.Fatalf("cycle %d: Latest = %v, %v; want %d", cycle, v, ok, next-1)
		}
		got := b.Drain("n", "t")
		want := []Value{first + count - 3, first + count - 2, first + count - 1}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("cycle %d: Drain = %v, want %v", cycle, got, want)
		}
	}
}

func TestBusCapacityOne(t *testing.T) {
	b := NewBus()
	if err := b.Subscribe("n", "t", 1); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		b.Publish("t", i)
	}
	got := b.Drain("n", "t")
	if len(got) != 1 || got[0].(int) != 9 {
		t.Errorf("Drain = %v, want [9]", got)
	}
}

func TestBusPartialDrainInterleaved(t *testing.T) {
	b := NewBus()
	if err := b.Subscribe("n", "t", 4); err != nil {
		t.Fatal(err)
	}
	b.Publish("t", 1)
	b.Publish("t", 2)
	if got := b.Drain("n", "t"); !reflect.DeepEqual(got, []Value{1, 2}) {
		t.Fatalf("first drain = %v", got)
	}
	// After a drain the ring restarts; overflow again from a reset head.
	for i := 3; i <= 8; i++ {
		b.Publish("t", i)
	}
	if got := b.Drain("n", "t"); !reflect.DeepEqual(got, []Value{5, 6, 7, 8}) {
		t.Fatalf("second drain = %v", got)
	}
}

// TestBusConcurrentMixed hammers one bus from publishers, drainers, peekers
// and re-subscribers at once; run under -race this proves the middleware is
// safe for concurrent use by fleet workers sharing a bus.
func TestBusConcurrentMixed(t *testing.T) {
	b := NewBus()
	topics := []TopicName{"t0", "t1", "t2"}
	for _, topic := range topics {
		for s := 0; s < 3; s++ {
			if err := b.Subscribe(fmt.Sprintf("sub-%d", s), topic, 8); err != nil {
				t.Fatal(err)
			}
		}
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				b.Publish(topics[i%len(topics)], w*1000+i)
			}
		}(w)
	}
	for s := 0; s < 3; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			sub := fmt.Sprintf("sub-%d", s)
			for i := 0; i < 500; i++ {
				switch i % 3 {
				case 0:
					b.Drain(sub, topics[i%len(topics)])
				case 1:
					b.Latest(sub, topics[i%len(topics)])
				case 2:
					_ = b.Subscribe(sub, topics[i%len(topics)], 8)
				}
			}
		}(s)
	}
	wg.Wait()
}

// TestStoreConcurrentReaders checks the read-only paths (interner lookups,
// dense reads) are safe for any number of concurrent readers — what the
// fleet engine relies on when runs share static topic metadata.
func TestStoreConcurrentReaders(t *testing.T) {
	s, _ := NewStore(Topic{Name: "a", Default: 1}, Topic{Name: "b", Default: 2}, Topic{Name: "c", Default: 3})
	ids, _ := s.IDs([]TopicName{"a", "b", "c"})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			dst := make(Valuation, len(ids))
			for i := 0; i < 300; i++ {
				s.ReadInto(ids, dst)
				if dst["a"].(int)+dst["b"].(int)+dst["c"].(int) != 6 {
					t.Error("inconsistent read")
					return
				}
				if _, err := s.Get("b"); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestStoresIsolated runs writers against per-goroutine stores built from
// the same topic declarations: the per-run isolation the fleet engine's
// workers depend on (no shared mutable state between stores).
func TestStoresIsolated(t *testing.T) {
	topics := []Topic{{Name: "x", Default: 0}, {Name: "y", Default: 0}}
	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s, err := NewStore(topics...)
			if err != nil {
				t.Error(err)
				return
			}
			for i := 0; i < 500; i++ {
				if err := s.Set("x", w*10000+i); err != nil {
					t.Error(err)
					return
				}
				if v, _ := s.Get("x"); v.(int) != w*10000+i {
					t.Errorf("worker %d read foreign value %v", w, v)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

func BenchmarkStoreReadInto(b *testing.B) {
	s, _ := NewStore(Topic{Name: "a", Default: 1}, Topic{Name: "b", Default: 2},
		Topic{Name: "c", Default: 3}, Topic{Name: "d", Default: 4})
	ids, _ := s.IDs([]TopicName{"a", "b", "c", "d"})
	dst := make(Valuation, len(ids))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.ReadInto(ids, dst)
	}
}

func BenchmarkStoreReadAlloc(b *testing.B) {
	s, _ := NewStore(Topic{Name: "a", Default: 1}, Topic{Name: "b", Default: 2},
		Topic{Name: "c", Default: 3}, Topic{Name: "d", Default: 4})
	names := []TopicName{"a", "b", "c", "d"}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Read(names); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBusPublishOverflow measures the overflow path: with the ring this
// is O(1) per publish regardless of capacity (the previous implementation
// shifted the whole buffer with copy on every overflowing publish).
func BenchmarkBusPublishOverflow(b *testing.B) {
	bus := NewBus()
	const capacity = 1024
	if err := bus.Subscribe("n", "t", capacity); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < capacity; i++ {
		bus.Publish("t", i) // fill: every further publish overflows
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bus.Publish("t", i)
	}
}
