package store

import (
	"bytes"
	"context"
	"fmt"
	"sync"
	"testing"
	"time"
)

const testKey = "0123456789abcdef0123456789abcdef"

func TestValidKey(t *testing.T) {
	valid := []string{testKey, "00000000", "deadbeefcafe1234", Sum(nil)}
	for _, k := range valid {
		if !ValidKey(k) {
			t.Errorf("ValidKey(%q) = false, want true", k)
		}
	}
	invalid := []string{
		"", "0123456", // too short
		"0123456789ABCDEF", // uppercase
		"0123456/../4567",  // traversal attempt
		"tmp-0123456789",   // temp-file prefix
		Sum(nil) + "00",    // too long
	}
	for _, k := range invalid {
		if ValidKey(k) {
			t.Errorf("ValidKey(%q) = true, want false", k)
		}
	}
}

func TestTieredPromotion(t *testing.T) {
	ctx := context.Background()
	disk, err := NewDisk(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	ts := NewTiered(Options{Disk: disk})
	defer ts.Close()

	// Seed the disk tier directly: the entry is below the memory tier.
	want := []byte(`{"verdict":"pass"}`)
	disk.Put(ctx, testKey, want)

	got, ok := ts.Get(ctx, testKey)
	if !ok || !bytes.Equal(got, want) {
		t.Fatalf("Get after disk seed = %q, %v; want %q, true", got, ok, want)
	}
	st := ts.Stats()
	if st.Memory.Misses != 1 || st.Disk.Hits != 1 {
		t.Fatalf("first read: memory misses=%d disk hits=%d; want 1, 1", st.Memory.Misses, st.Disk.Hits)
	}

	// The hit was promoted: the second read stops at tier 0.
	if got, ok = ts.Get(ctx, testKey); !ok || !bytes.Equal(got, want) {
		t.Fatalf("Get after promotion = %q, %v; want %q, true", got, ok, want)
	}
	st = ts.Stats()
	if st.Memory.Hits != 1 || st.Disk.Hits != 1 {
		t.Fatalf("second read: memory hits=%d disk hits=%d; want 1, 1", st.Memory.Hits, st.Disk.Hits)
	}
}

// TestAcquireCollapsesWaiters pins the singleflight contract: with a leader
// mid-fill, every concurrent Acquire of the same key blocks, then shares the
// leader's value — one fill, N collapsed requests, zero duplicate work.
func TestAcquireCollapsesWaiters(t *testing.T) {
	ctx := context.Background()
	ts := NewTiered(Options{})
	defer ts.Close()

	val, fill := ts.Acquire(ctx, testKey)
	if val != nil || fill == nil {
		t.Fatalf("first Acquire = %q, %v; want nil value and a leader fill", val, fill)
	}
	if fill.Key() != testKey {
		t.Fatalf("fill key = %q, want %q", fill.Key(), testKey)
	}

	const waiters = 8
	results := make(chan []byte, waiters)
	var started sync.WaitGroup
	started.Add(waiters)
	for i := 0; i < waiters; i++ {
		go func() {
			started.Done()
			v, f := ts.Acquire(ctx, testKey)
			if f != nil {
				f.Abort()
				results <- nil
				return
			}
			results <- v
		}()
	}
	started.Wait()
	// Waiters are blocked on the flight (or about to be); the leader fills.
	want := []byte("the one simulation")
	fill.Complete(ctx, want)

	for i := 0; i < waiters; i++ {
		if got := <-results; !bytes.Equal(got, want) {
			t.Fatalf("waiter %d got %q, want %q", i, got, want)
		}
	}
	st := ts.Stats()
	if st.Fills != 1 {
		t.Errorf("fills = %d, want 1", st.Fills)
	}
	// Waiters that raced in before the leader registered may have hit the
	// memory tier instead of the flight; both paths observe the same bytes.
	if st.Collapsed+st.Memory.Hits != waiters {
		t.Errorf("collapsed=%d + memory hits=%d, want %d total", st.Collapsed, st.Memory.Hits, waiters)
	}
	if st.Inflight != 0 {
		t.Errorf("inflight = %d after completion, want 0", st.Inflight)
	}

	// The fill landed in the memory tier.
	if got, ok := ts.Get(ctx, testKey); !ok || !bytes.Equal(got, want) {
		t.Fatalf("Get after fill = %q, %v; want %q, true", got, ok, want)
	}
}

// TestAcquireAbortElectsNewLeader pins the failure path: when the leader
// aborts, a waiter wakes, re-probes the tiers, and becomes the next leader
// rather than receiving the failure.
func TestAcquireAbortElectsNewLeader(t *testing.T) {
	ctx := context.Background()
	ts := NewTiered(Options{})
	defer ts.Close()

	_, leader := ts.Acquire(ctx, testKey)
	if leader == nil {
		t.Fatal("expected a leader fill")
	}

	type outcome struct {
		val  []byte
		fill *Fill
	}
	ch := make(chan outcome, 1)
	go func() {
		v, f := ts.Acquire(ctx, testKey)
		ch <- outcome{v, f}
	}()
	// Give the waiter time to join the flight, then fail the fill.
	time.Sleep(10 * time.Millisecond)
	leader.Abort()

	got := <-ch
	if got.fill == nil {
		t.Fatalf("after abort, waiter got value %q; want leadership", got.val)
	}
	want := []byte("second attempt")
	got.fill.Complete(ctx, want)

	st := ts.Stats()
	if st.Aborts != 1 || st.Fills != 1 {
		t.Errorf("aborts=%d fills=%d, want 1, 1", st.Aborts, st.Fills)
	}
	if v, ok := ts.Get(ctx, testKey); !ok || !bytes.Equal(v, want) {
		t.Fatalf("Get after retry = %q, %v; want %q, true", v, ok, want)
	}
}

func TestAcquireCancelledWaiter(t *testing.T) {
	ts := NewTiered(Options{})
	defer ts.Close()

	_, leader := ts.Acquire(context.Background(), testKey)
	if leader == nil {
		t.Fatal("expected a leader fill")
	}
	defer leader.Abort()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	val, fill := ts.Acquire(ctx, testKey)
	if val != nil || fill != nil {
		t.Fatalf("cancelled Acquire = %q, %v; want nil, nil", val, fill)
	}
}

// TestPutResolvesInflight: a plain Put of a key with an active flight hands
// the value to the waiters — and the displaced leader's own Complete is then
// a harmless no-op, not a double close.
func TestPutResolvesInflight(t *testing.T) {
	ctx := context.Background()
	ts := NewTiered(Options{})
	defer ts.Close()

	_, leader := ts.Acquire(ctx, testKey)
	if leader == nil {
		t.Fatal("expected a leader fill")
	}
	ch := make(chan []byte, 1)
	go func() {
		v, f := ts.Acquire(ctx, testKey)
		if f != nil {
			f.Abort()
			ch <- nil
			return
		}
		ch <- v
	}()
	time.Sleep(10 * time.Millisecond)

	want := []byte("filled out of band")
	ts.Put(ctx, testKey, want)
	if got := <-ch; !bytes.Equal(got, want) {
		t.Fatalf("waiter got %q, want %q", got, want)
	}
	// The old leader finishing late must not panic or clobber state.
	leader.Complete(ctx, []byte("late duplicate"))
	leader.Abort()
}

// TestCloseAbortsInflight: closing the store wakes every waiter, and a leader
// completing after Close must not panic.
func TestCloseAbortsInflight(t *testing.T) {
	ctx := context.Background()
	ts := NewTiered(Options{})

	_, leader := ts.Acquire(ctx, testKey)
	if leader == nil {
		t.Fatal("expected a leader fill")
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		// The waiter wakes on Close, retries, and becomes leader of the
		// closed store; abort to let it exit.
		if _, f := ts.Acquire(ctx, testKey); f != nil {
			f.Abort()
		}
	}()
	time.Sleep(10 * time.Millisecond)

	if err := ts.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("waiter still blocked after Close")
	}
	leader.Complete(ctx, []byte("after close")) // must not panic
}

// TestAcquireConcurrentOneFillPerKey hammers Acquire from many goroutines
// across several keys and checks the global invariant: every key is filled by
// exactly one leader, everyone observes the leader's bytes.
func TestAcquireConcurrentOneFillPerKey(t *testing.T) {
	ctx := context.Background()
	ts := NewTiered(Options{})
	defer ts.Close()

	const keys, per = 4, 16
	var fillCounts [keys]int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	for k := 0; k < keys; k++ {
		key := fmt.Sprintf("%032x", k+1)
		want := []byte(fmt.Sprintf("value-%d", k))
		for i := 0; i < per; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				val, fill := ts.Acquire(ctx, key)
				if fill != nil {
					mu.Lock()
					fillCounts[k]++
					mu.Unlock()
					fill.Complete(ctx, want)
					return
				}
				if !bytes.Equal(val, want) {
					t.Errorf("key %s: got %q, want %q", key, val, want)
				}
			}()
		}
	}
	wg.Wait()
	for k, n := range fillCounts {
		if n != 1 {
			t.Errorf("key %d filled %d times, want exactly 1", k, n)
		}
	}
	if st := ts.Stats(); st.Fills != keys {
		t.Errorf("fills = %d, want %d", st.Fills, keys)
	}
}

func TestPayloadRoundTrip(t *testing.T) {
	p := Payload{}
	p.Metrics.TargetsVisited = 42
	raw, err := p.Encode()
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodePayload(raw)
	if err != nil {
		t.Fatal(err)
	}
	if back.Metrics.TargetsVisited != 42 {
		t.Fatalf("round trip lost data: %+v", back)
	}
	if _, err := DecodePayload([]byte("not json")); err == nil {
		t.Fatal("DecodePayload accepted garbage")
	}
}
