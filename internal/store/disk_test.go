package store

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// seedDisk fills a fresh disk tier with n distinct entries and returns their
// keys and values.
func seedDisk(t *testing.T, d *Disk, n int) (keys []string, vals [][]byte) {
	t.Helper()
	ctx := context.Background()
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("%032x", i+1)
		val := []byte(fmt.Sprintf(`{"metrics":{"targets_visited":%d}}`, i))
		d.Put(ctx, key, val)
		keys = append(keys, key)
		vals = append(vals, val)
	}
	return keys, vals
}

// TestDiskRoundTrip: what goes in comes out, and counters are honest.
func TestDiskRoundTrip(t *testing.T) {
	d, err := NewDisk(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	keys, vals := seedDisk(t, d, 3)
	for i, key := range keys {
		got, ok := d.Get(context.Background(), key)
		if !ok || !bytes.Equal(got, vals[i]) {
			t.Fatalf("Get(%s) = %q, %v; want %q, true", key, got, ok, vals[i])
		}
	}
	st := d.Stats()
	if st.Entries != 3 || st.Hits != 3 || st.Quarantined != 0 {
		t.Errorf("stats = %+v", st)
	}
}

// TestDiskRestartByteIdentical is the durability golden: a store reopened on
// the same directory serves every entry byte-identical to what the previous
// process cached, with recency preserved.
func TestDiskRestartByteIdentical(t *testing.T) {
	dir := t.TempDir()
	d, err := NewDisk(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	keys, vals := seedDisk(t, d, 4)
	// Golden: the pre-restart reads.
	golden := make([][]byte, len(keys))
	for i, key := range keys {
		got, ok := d.Get(context.Background(), key)
		if !ok {
			t.Fatalf("pre-restart Get(%s) missed", key)
		}
		golden[i] = got
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	reopened, err := NewDisk(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer reopened.Close()
	if reopened.Len() != len(keys) {
		t.Fatalf("reopened store indexed %d entries, want %d", reopened.Len(), len(keys))
	}
	for i, key := range keys {
		got, ok := reopened.Get(context.Background(), key)
		if !ok {
			t.Fatalf("post-restart Get(%s) missed", key)
		}
		if !bytes.Equal(got, golden[i]) || !bytes.Equal(got, vals[i]) {
			t.Fatalf("post-restart bytes for %s diverge:\n pre  %q\n post %q", key, golden[i], got)
		}
	}
}

// TestDiskKilledWriterLeavesNoEntry: a writer that died mid-write leaves only
// a temp file, which the next open sweeps away — never a half-visible entry.
func TestDiskKilledWriterLeavesNoEntry(t *testing.T) {
	dir := t.TempDir()
	d, err := NewDisk(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	keys, _ := seedDisk(t, d, 1)
	_ = d.Close()

	// Simulate the crash: a torn temp file in an entry shard, exactly what a
	// kill between CreateTemp and rename leaves behind.
	shard := filepath.Join(dir, "ab")
	if err := os.MkdirAll(shard, 0o755); err != nil {
		t.Fatal(err)
	}
	tmp := filepath.Join(shard, "tmp-123456")
	if err := os.WriteFile(tmp, []byte("torn half-writ"), 0o644); err != nil {
		t.Fatal(err)
	}

	reopened, err := NewDisk(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer reopened.Close()
	if _, statErr := os.Stat(tmp); !os.IsNotExist(statErr) {
		t.Errorf("temp file survived reopen: %v", statErr)
	}
	if reopened.Len() != 1 {
		t.Errorf("reopened store indexed %d entries, want only the committed one", reopened.Len())
	}
	if _, ok := reopened.Get(context.Background(), keys[0]); !ok {
		t.Error("committed entry lost while sweeping temp files")
	}
}

// TestDiskCorruptEntryQuarantined: a hand-corrupted entry is reported as a
// miss, moved into quarantine/ for inspection, and the key is recomputable —
// a fresh Put stores and serves clean bytes again.
func TestDiskCorruptEntryQuarantined(t *testing.T) {
	dir := t.TempDir()
	d, err := NewDisk(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	keys, vals := seedDisk(t, d, 1)
	key := keys[0]

	// Flip payload bytes behind the store's back — bit rot.
	path := filepath.Join(dir, key[:2], key)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0xff
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	if _, ok := d.Get(context.Background(), key); ok {
		t.Fatal("corrupt entry was served")
	}
	if st := d.Stats(); st.Quarantined != 1 || st.Entries != 0 {
		t.Fatalf("after corruption: stats = %+v, want 1 quarantined, 0 entries", st)
	}
	if _, err := os.Stat(filepath.Join(dir, quarantineDir, key)); err != nil {
		t.Errorf("corrupt entry not preserved in quarantine: %v", err)
	}
	// Truncation is the other corruption shape; it must quarantine too, not
	// panic on short framing.
	d.Put(context.Background(), key, vals[0])
	if err := os.WriteFile(path, []byte(diskMagic[:4]), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := d.Get(context.Background(), key); ok {
		t.Fatal("truncated entry was served")
	}

	// The key recomputes: a fresh Put round-trips.
	d.Put(context.Background(), key, vals[0])
	got, ok := d.Get(context.Background(), key)
	if !ok || !bytes.Equal(got, vals[0]) {
		t.Fatalf("recomputed entry = %q, %v; want %q, true", got, ok, vals[0])
	}
}

// TestDiskEvictionLRUByBytes: the tier honours its byte bound by evicting the
// least-recently-accessed entries first, and a restart preserves the order
// (atimes persisted as mtimes).
func TestDiskEvictionLRUByBytes(t *testing.T) {
	dir := t.TempDir()
	// Each framed entry is len(diskMagic)+65+len(val) bytes; size the budget
	// to hold roughly two entries.
	val := bytes.Repeat([]byte("x"), 100)
	frame := int64(len(encodeEntry(val)))
	d, err := NewDisk(dir, 2*frame)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	ctx := context.Background()
	k1, k2, k3 := fmt.Sprintf("%032x", 1), fmt.Sprintf("%032x", 2), fmt.Sprintf("%032x", 3)
	d.Put(ctx, k1, val)
	d.Put(ctx, k2, val)
	if _, ok := d.Get(ctx, k1); !ok { // refresh k1; k2 is now LRU
		t.Fatal("k1 missing")
	}
	d.Put(ctx, k3, val) // over budget: evicts k2
	if _, ok := d.Get(ctx, k2); ok {
		t.Error("least-recently-used entry survived eviction")
	}
	if _, ok := d.Get(ctx, k1); !ok {
		t.Error("recently-used entry evicted")
	}
	if st := d.Stats(); st.Evictions != 1 || st.Bytes > st.MaxBytes {
		t.Errorf("stats = %+v", st)
	}
}
