package store

import (
	"container/list"
	"context"
	"sync"
)

// DefaultMemoryEntries bounds a Memory tier built with a non-positive
// capacity.
const DefaultMemoryEntries = 4096

// Memory is tier 0: an LRU-bounded in-process map from mission fingerprints
// to canonical result bytes — the serving layer's original result cache,
// now the hot tier of the store. Because a mission is fully deterministic
// per (spec, seed), the bytes stored under a key are the bytes any fresh run
// of that key would produce. Values are stored and returned as opaque bytes;
// callers must not mutate a returned slice. Safe for concurrent use.
type Memory struct {
	mu        sync.Mutex
	capacity  int
	order     *list.List // front = most recently used
	items     map[string]*list.Element
	hits      int64
	misses    int64
	evictions int64
}

// memoryEntry is the list payload: the key rides along so eviction can delete
// the map entry without a reverse lookup.
type memoryEntry struct {
	key string
	val []byte
}

// NewMemory builds a memory tier bounded at capacity entries
// (DefaultMemoryEntries when capacity is not positive).
func NewMemory(capacity int) *Memory {
	if capacity <= 0 {
		capacity = DefaultMemoryEntries
	}
	return &Memory{
		capacity: capacity,
		order:    list.New(),
		items:    make(map[string]*list.Element, capacity),
	}
}

// Get returns the bytes stored under key and marks the entry most recently
// used. Every call counts as a hit or a miss.
func (m *Memory) Get(_ context.Context, key string) ([]byte, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	el, ok := m.items[key]
	if !ok {
		m.misses++
		return nil, false
	}
	m.hits++
	m.order.MoveToFront(el)
	return el.Value.(*memoryEntry).val, true
}

// Put stores val under key, evicting the least recently used entry when the
// bound is exceeded. Storing an existing key refreshes its value and recency.
func (m *Memory) Put(_ context.Context, key string, val []byte) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if el, ok := m.items[key]; ok {
		el.Value.(*memoryEntry).val = val
		m.order.MoveToFront(el)
		return
	}
	m.items[key] = m.order.PushFront(&memoryEntry{key: key, val: val})
	if m.order.Len() > m.capacity {
		oldest := m.order.Back()
		m.order.Remove(oldest)
		delete(m.items, oldest.Value.(*memoryEntry).key)
		m.evictions++
	}
}

// Len returns the number of entries currently held.
func (m *Memory) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.order.Len()
}

// Stats returns a snapshot of the counters.
func (m *Memory) Stats() TierStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return TierStats{
		Entries:   m.order.Len(),
		Capacity:  m.capacity,
		Hits:      m.hits,
		Misses:    m.misses,
		Evictions: m.evictions,
	}
}

// Close implements Store; the memory tier holds no external resources.
func (m *Memory) Close() error { return nil }
