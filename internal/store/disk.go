package store

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"
)

// DefaultDiskMaxBytes bounds a Disk tier built with a non-positive byte
// budget: 1 GiB of canonical result bytes.
const DefaultDiskMaxBytes = 1 << 30

// diskMagic heads every entry file, followed by the hex SHA-256 of the
// payload and a newline. An entry that does not round-trip through this
// framing — torn write, truncation, bit rot — is quarantined, never served.
const diskMagic = "soterstore1 "

// quarantineDir is the subdirectory corrupt entries are moved into. They are
// kept (not deleted) so an operator can inspect what went wrong; the store
// itself never reads them again.
const quarantineDir = "quarantine"

// Disk is tier 1: a crash-safe directory of canonical result bytes, sharded
// by the first two hex digits of the fingerprint (256 buckets, so no single
// directory grows unbounded). Writes are atomic — payload to a temp file in
// the target shard, fsync, rename — so a crash mid-write leaves at worst a
// temp file that the next open sweeps away, never a half-visible entry.
// Reads re-hash the payload against the embedded checksum and quarantine
// mismatches instead of serving them. The tier is bounded in bytes with
// least-recently-accessed eviction; access times are persisted as file
// mtimes, so recency survives a restart.
type Disk struct {
	dir      string
	maxBytes int64

	mu      sync.Mutex
	closed  bool
	index   map[string]*diskEntry
	bytes   int64
	clock   int64 // logical access clock: higher = more recent
	hits    int64
	misses  int64
	evicted int64
	quarant int64
	errors  int64
}

// diskEntry is the in-memory bookkeeping of one stored file.
type diskEntry struct {
	size  int64
	atime int64 // logical clock value of the last access
}

// NewDisk opens (creating if needed) a disk tier rooted at dir, bounded at
// maxBytes of payload (DefaultDiskMaxBytes when not positive). Leftover temp
// files from a crashed writer are removed, and the surviving entries are
// indexed with their recency order recovered from file mtimes.
func NewDisk(dir string, maxBytes int64) (*Disk, error) {
	if maxBytes <= 0 {
		maxBytes = DefaultDiskMaxBytes
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: open disk tier: %w", err)
	}
	d := &Disk{
		dir:      dir,
		maxBytes: maxBytes,
		index:    make(map[string]*diskEntry),
	}
	if err := d.scan(); err != nil {
		return nil, err
	}
	return d, nil
}

// scan rebuilds the index from the directory: sweep temp files, stat entries,
// and replay their mtimes into the logical access clock so eviction order
// picks up where the previous process left off.
func (d *Disk) scan() error {
	shards, err := os.ReadDir(d.dir)
	if err != nil {
		return fmt.Errorf("store: scan disk tier: %w", err)
	}
	type aged struct {
		key   string
		size  int64
		mtime time.Time
	}
	var entries []aged
	for _, shard := range shards {
		if !shard.IsDir() || shard.Name() == quarantineDir {
			continue
		}
		files, err := os.ReadDir(filepath.Join(d.dir, shard.Name()))
		if err != nil {
			continue
		}
		for _, f := range files {
			name := f.Name()
			path := filepath.Join(d.dir, shard.Name(), name)
			if strings.HasPrefix(name, "tmp-") {
				// A writer died mid-write; the entry was never visible.
				os.Remove(path)
				continue
			}
			if !ValidKey(name) || !strings.HasPrefix(name, shard.Name()) {
				continue
			}
			info, err := f.Info()
			if err != nil {
				continue
			}
			entries = append(entries, aged{key: name, size: info.Size(), mtime: info.ModTime()})
		}
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].mtime.Before(entries[j].mtime) })
	for _, e := range entries {
		d.clock++
		d.index[e.key] = &diskEntry{size: e.size, atime: d.clock}
		d.bytes += e.size
	}
	return nil
}

// path returns the entry file for key: dir/<key[:2]>/<key>.
func (d *Disk) path(key string) string {
	return filepath.Join(d.dir, key[:2], key)
}

// Get reads, verifies and returns the entry for key. A missing key is a
// plain miss; an unreadable or corrupt entry is quarantined and reported as
// a miss, so the caller recomputes it — corruption is never fatal and never
// served.
func (d *Disk) Get(_ context.Context, key string) ([]byte, bool) {
	d.mu.Lock()
	if d.closed || !ValidKey(key) {
		d.misses++
		d.mu.Unlock()
		return nil, false
	}
	if _, ok := d.index[key]; !ok {
		d.misses++
		d.mu.Unlock()
		return nil, false
	}
	d.mu.Unlock()

	path := d.path(key)
	raw, err := os.ReadFile(path)
	if err != nil {
		// Evicted or removed between the index check and the read.
		d.mu.Lock()
		d.misses++
		if !os.IsNotExist(err) {
			d.errors++
		}
		d.mu.Unlock()
		return nil, false
	}
	val, ok := decodeEntry(raw)
	if !ok {
		d.quarantine(key, path)
		return nil, false
	}

	now := time.Now()
	d.mu.Lock()
	if e, ok := d.index[key]; ok {
		d.clock++
		e.atime = d.clock
	}
	d.hits++
	d.mu.Unlock()
	// Persist the access so LRU order survives a restart (mtime is the
	// durable atime: filesystems commonly mount noatime). Best effort.
	_ = os.Chtimes(path, now, now)
	return val, true
}

// decodeEntry strips and verifies the framing: magic, hex checksum, newline,
// payload. ok is false for any truncated, malformed or checksum-mismatched
// entry.
func decodeEntry(raw []byte) ([]byte, bool) {
	if !bytes.HasPrefix(raw, []byte(diskMagic)) {
		return nil, false
	}
	rest := raw[len(diskMagic):]
	nl := bytes.IndexByte(rest, '\n')
	if nl != 64 { // hex SHA-256
		return nil, false
	}
	sum, payload := string(rest[:nl]), rest[nl+1:]
	if Sum(payload) != sum {
		return nil, false
	}
	return payload, true
}

// encodeEntry frames a payload for disk.
func encodeEntry(val []byte) []byte {
	out := make([]byte, 0, len(diskMagic)+65+len(val))
	out = append(out, diskMagic...)
	out = append(out, Sum(val)...)
	out = append(out, '\n')
	return append(out, val...)
}

// quarantine moves a corrupt entry aside and drops it from the index.
func (d *Disk) quarantine(key, path string) {
	d.mu.Lock()
	if e, ok := d.index[key]; ok {
		delete(d.index, key)
		d.bytes -= e.size
	}
	d.quarant++
	d.misses++
	d.mu.Unlock()
	qdir := filepath.Join(d.dir, quarantineDir)
	if err := os.MkdirAll(qdir, 0o755); err == nil {
		_ = os.Rename(path, filepath.Join(qdir, key))
	}
}

// Put atomically persists val under key: temp file in the target shard,
// fsync, rename into place. Entries beyond the byte budget are evicted
// least-recently-accessed first. IO failures degrade to a dropped write (the
// entry simply is not cached), never an error to the caller.
func (d *Disk) Put(ctx context.Context, key string, val []byte) {
	if !ValidKey(key) {
		return
	}
	framed := encodeEntry(val)
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return
	}
	shard := filepath.Join(d.dir, key[:2])
	if err := os.MkdirAll(shard, 0o755); err != nil {
		d.errors++
		return
	}
	tmp, err := os.CreateTemp(shard, "tmp-*")
	if err != nil {
		d.errors++
		return
	}
	_, werr := tmp.Write(framed)
	if werr == nil {
		werr = tmp.Sync()
	}
	if cerr := tmp.Close(); werr == nil {
		werr = cerr
	}
	if werr == nil {
		werr = os.Rename(tmp.Name(), d.path(key))
	}
	if werr != nil {
		os.Remove(tmp.Name())
		d.errors++
		return
	}
	syncDir(shard)
	size := int64(len(framed))
	d.clock++
	if e, ok := d.index[key]; ok {
		d.bytes += size - e.size
		e.size, e.atime = size, d.clock
	} else {
		d.index[key] = &diskEntry{size: size, atime: d.clock}
		d.bytes += size
	}
	d.evictLocked(ctx)
}

// evictLocked removes least-recently-accessed entries until the tier fits
// its byte budget again. The scan honours ctx so a cancelled caller never
// hangs on a long eviction pass. Callers hold d.mu.
func (d *Disk) evictLocked(ctx context.Context) {
	for d.bytes > d.maxBytes && len(d.index) > 1 {
		if ctx != nil && ctx.Err() != nil {
			return
		}
		oldest, oldestAt := "", int64(0)
		first := true
		for key, e := range d.index {
			if first || e.atime < oldestAt {
				oldest, oldestAt = key, e.atime
				first = false
			}
		}
		e := d.index[oldest]
		delete(d.index, oldest)
		d.bytes -= e.size
		d.evicted++
		_ = os.Remove(d.path(oldest))
	}
}

// syncDir fsyncs a directory so a rename is durable before Put returns.
// Best effort: some platforms refuse directory fsync.
func syncDir(dir string) {
	f, err := os.Open(dir)
	if err != nil {
		return
	}
	_ = f.Sync()
	_ = f.Close()
}

// Len returns the number of entries currently indexed.
func (d *Disk) Len() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.index)
}

// Dir returns the tier's root directory.
func (d *Disk) Dir() string { return d.dir }

// Stats returns a snapshot of the counters.
func (d *Disk) Stats() TierStats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return TierStats{
		Entries:     len(d.index),
		Bytes:       d.bytes,
		MaxBytes:    d.maxBytes,
		Hits:        d.hits,
		Misses:      d.misses,
		Evictions:   d.evicted,
		Quarantined: d.quarant,
		Errors:      d.errors,
	}
}

// Close marks the tier closed; entries are already durable, so there is
// nothing to flush.
func (d *Disk) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.closed = true
	return nil
}
