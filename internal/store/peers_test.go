package store

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// peerHandler serves a fixed key set over the /store/{key} wire protocol.
func peerHandler(entries map[string][]byte) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		key := strings.TrimPrefix(r.URL.Path, "/store/")
		val, ok := entries[key]
		if !ok {
			http.NotFound(w, r)
			return
		}
		w.Header().Set(SumHeader, Sum(val))
		w.Write(val)
	})
}

// TestPeersRendezvousDeterministic: every process computes the identical
// per-key probe order, and distinct keys spread across the peer set.
func TestPeersRendezvousDeterministic(t *testing.T) {
	bases := []string{"http://a:1", "http://b:1", "http://c:1"}
	p1, err := NewPeers(PeersConfig{Peers: bases})
	if err != nil {
		t.Fatal(err)
	}
	p2, err := NewPeers(PeersConfig{Peers: bases})
	if err != nil {
		t.Fatal(err)
	}
	firsts := make(map[string]bool)
	for i := 0; i < 32; i++ {
		key := fmt.Sprintf("%032x", i)
		o1, o2 := p1.rendezvous(key), p2.rendezvous(key)
		for j := range o1 {
			if o1[j].base != o2[j].base {
				t.Fatalf("key %s: order diverges between processes: %s vs %s", key, o1[j].base, o2[j].base)
			}
		}
		firsts[o1[0].base] = true
	}
	if len(firsts) < 2 {
		t.Errorf("32 keys all rendezvous to the same first peer; hashing is not spreading")
	}
}

// TestPeersFetchThrough: a key held by a sibling is fetched over the wire; an
// unknown key is a clean miss.
func TestPeersFetchThrough(t *testing.T) {
	key := fmt.Sprintf("%032x", 7)
	val := []byte(`{"metrics":{"crashed":false}}`)
	ts := httptest.NewServer(peerHandler(map[string][]byte{key: val}))
	defer ts.Close()

	p, err := NewPeers(PeersConfig{Peers: []string{ts.URL}, Client: ts.Client()})
	if err != nil {
		t.Fatal(err)
	}
	got, ok := p.Get(context.Background(), key)
	if !ok || !bytes.Equal(got, val) {
		t.Fatalf("Get = %q, %v; want %q, true", got, ok, val)
	}
	if _, ok := p.Get(context.Background(), fmt.Sprintf("%032x", 8)); ok {
		t.Fatal("unknown key reported as a peer hit")
	}
	st := p.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Errors != 0 {
		t.Errorf("stats = %+v", st)
	}
}

// TestPeersChecksumRejected: a response whose body does not match its
// X-Soter-Sum header is an error, never handed to the local tiers.
func TestPeersChecksumRejected(t *testing.T) {
	key := fmt.Sprintf("%032x", 7)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set(SumHeader, Sum([]byte("what was stored")))
		w.Write([]byte("what arrived"))
	}))
	defer ts.Close()

	p, err := NewPeers(PeersConfig{Peers: []string{ts.URL}, Client: ts.Client()})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := p.Get(context.Background(), key); ok {
		t.Fatal("garbled peer response was accepted")
	}
	if st := p.Stats(); st.Errors != 1 || st.Hits != 0 {
		t.Errorf("stats = %+v, want the mismatch counted as an error", st)
	}
}

// TestPeersDownDegradesToMiss: an unreachable peer backs off and the lookup
// degrades to a miss; within the backoff window the peer is not re-probed.
func TestPeersDownDegradesToMiss(t *testing.T) {
	ts := httptest.NewServer(peerHandler(nil))
	ts.Close() // listener gone: every dial fails

	p, err := NewPeers(PeersConfig{Peers: []string{ts.URL}, Backoff: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	key := fmt.Sprintf("%032x", 7)
	if _, ok := p.Get(context.Background(), key); ok {
		t.Fatal("down peer reported a hit")
	}
	// Second lookup: the peer is cooling down, so no second dial is counted.
	if _, ok := p.Get(context.Background(), key); ok {
		t.Fatal("down peer reported a hit")
	}
	st := p.Stats()
	if st.Errors != 1 {
		t.Errorf("errors = %d, want exactly 1 (backoff suppressed the re-probe)", st.Errors)
	}
	if st.Misses != 2 {
		t.Errorf("misses = %d, want 2", st.Misses)
	}
}

// TestPeersConfigValidation: empty lists and non-http bases are rejected;
// duplicates and trailing slashes are normalised away.
func TestPeersConfigValidation(t *testing.T) {
	if _, err := NewPeers(PeersConfig{}); err == nil {
		t.Error("empty peer list accepted")
	}
	if _, err := NewPeers(PeersConfig{Peers: []string{"10.0.0.2:8080"}}); err == nil {
		t.Error("schemeless peer accepted")
	}
	p, err := NewPeers(PeersConfig{Peers: []string{"http://a:1/", "http://a:1", " http://a:1 "}})
	if err != nil {
		t.Fatal(err)
	}
	if len(p.peers) != 1 || p.peers[0].base != "http://a:1" {
		t.Errorf("peer normalisation: %+v", p.peers)
	}
}
