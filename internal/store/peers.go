package store

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"
)

// Peer-tier defaults.
const (
	// DefaultPeerTimeout bounds one fetch attempt against one peer.
	DefaultPeerTimeout = 2 * time.Second
	// DefaultPeerProbes bounds how many peers one Get consults.
	DefaultPeerProbes = 3
	// DefaultPeerBackoff is the base cooldown after a peer fails; it doubles
	// per consecutive failure up to maxPeerBackoff.
	DefaultPeerBackoff = time.Second
	maxPeerBackoff     = time.Minute
	// maxPeerEntry bounds a fetched entry; a peer response larger than this
	// is treated as an error, not buffered without bound.
	maxPeerEntry = 64 << 20
	// SumHeader carries the hex SHA-256 of the entry bytes on the peer wire,
	// so a garbled response is rejected before it enters the local tiers.
	SumHeader = "X-Soter-Sum"
)

// PeersConfig configures a peer tier.
type PeersConfig struct {
	// Peers lists the sibling soter-serve processes' base URLs (e.g.
	// "http://10.0.0.2:8080"). The local process itself must not be listed —
	// its results are already in the local tiers.
	Peers []string
	// Timeout bounds each fetch attempt (DefaultPeerTimeout when zero).
	Timeout time.Duration
	// Probes bounds how many peers one lookup consults, in rendezvous order
	// (DefaultPeerProbes when zero; capped at len(Peers)).
	Probes int
	// Backoff is the base cooldown after a failed peer (DefaultPeerBackoff
	// when zero).
	Backoff time.Duration
	// Client is the HTTP client to fetch with (http.DefaultClient when nil).
	Client *http.Client
}

// Peers is tier 2: fetch-through to sibling processes over GET /store/{key}.
// For each key the peers are probed in rendezvous-hash order — a
// deterministic, per-key shuffle every process computes identically, so
// lookups for one fingerprint converge on the same peers first and the
// keyspace spreads evenly with no coordination. The tier is read-only
// (Put is a no-op): each process persists what it computes, siblings pull it
// on demand, and determinism makes any copy as good as any other. A failing
// peer is backed off exponentially and the lookup degrades to the remaining
// peers — or to a miss, which the caller answers by simulating locally.
type Peers struct {
	peers   []*peer
	client  *http.Client
	timeout time.Duration
	probes  int
	backoff time.Duration

	mu     sync.Mutex
	hits   int64
	misses int64
	errors int64
}

// peer is one sibling process plus its failure state.
type peer struct {
	base string

	mu        sync.Mutex
	failures  int
	downUntil time.Time
}

// NewPeers builds a peer tier over the configured sibling list.
func NewPeers(cfg PeersConfig) (*Peers, error) {
	if len(cfg.Peers) == 0 {
		return nil, fmt.Errorf("store: peer tier needs at least one peer URL")
	}
	p := &Peers{
		client:  cfg.Client,
		timeout: cfg.Timeout,
		probes:  cfg.Probes,
		backoff: cfg.Backoff,
	}
	if p.client == nil {
		p.client = http.DefaultClient
	}
	if p.timeout <= 0 {
		p.timeout = DefaultPeerTimeout
	}
	if p.probes <= 0 {
		p.probes = DefaultPeerProbes
	}
	if p.backoff <= 0 {
		p.backoff = DefaultPeerBackoff
	}
	seen := make(map[string]bool, len(cfg.Peers))
	for _, raw := range cfg.Peers {
		base := strings.TrimRight(strings.TrimSpace(raw), "/")
		if base == "" || seen[base] {
			continue
		}
		if !strings.HasPrefix(base, "http://") && !strings.HasPrefix(base, "https://") {
			return nil, fmt.Errorf("store: peer %q: want an http(s) base URL", raw)
		}
		seen[base] = true
		p.peers = append(p.peers, &peer{base: base})
	}
	if len(p.peers) == 0 {
		return nil, fmt.Errorf("store: peer tier needs at least one peer URL")
	}
	return p, nil
}

// rendezvous orders the peers for key by highest-random-weight hashing:
// score(peer, key) = SHA-256(peer || key) taken as a big-endian uint64,
// sorted descending. Every process computes the identical order, so the
// first probe for a key lands on the same peer cluster-wide.
func (p *Peers) rendezvous(key string) []*peer {
	type scored struct {
		p     *peer
		score uint64
	}
	order := make([]scored, len(p.peers))
	for i, pr := range p.peers {
		h := sha256.New()
		io.WriteString(h, pr.base)
		io.WriteString(h, "\x00")
		io.WriteString(h, key)
		order[i] = scored{p: pr, score: binary.BigEndian.Uint64(h.Sum(nil)[:8])}
	}
	sort.Slice(order, func(i, j int) bool {
		if order[i].score != order[j].score {
			return order[i].score > order[j].score
		}
		return order[i].p.base < order[j].p.base
	})
	out := make([]*peer, len(order))
	for i, s := range order {
		out[i] = s.p
	}
	return out
}

// Get probes up to Probes peers in rendezvous order. Every failure backs the
// peer off; every outcome degrades gracefully — the worst case is a miss and
// a local simulation, never an error surfaced to the job.
func (p *Peers) Get(ctx context.Context, key string) ([]byte, bool) {
	if !ValidKey(key) {
		p.count(&p.misses)
		return nil, false
	}
	probes := 0
	for _, pr := range p.rendezvous(key) {
		if probes >= p.probes || ctx.Err() != nil {
			break
		}
		if pr.coolingDown() {
			continue
		}
		probes++
		val, found, err := p.fetch(ctx, pr, key)
		if err != nil {
			pr.fail(p.backoff)
			p.count(&p.errors)
			continue
		}
		pr.ok()
		if found {
			p.count(&p.hits)
			return val, true
		}
	}
	p.count(&p.misses)
	return nil, false
}

// fetch performs one GET /store/{key} against one peer. found is false on a
// clean 404; any other failure — transport error, bad status, checksum
// mismatch, oversized body — is an error that backs the peer off.
func (p *Peers) fetch(ctx context.Context, pr *peer, key string) (val []byte, found bool, err error) {
	ctx, cancel := context.WithTimeout(ctx, p.timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, pr.base+"/store/"+key, nil)
	if err != nil {
		return nil, false, err
	}
	resp, err := p.client.Do(req)
	if err != nil {
		return nil, false, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusNotFound:
		_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return nil, false, nil
	default:
		return nil, false, fmt.Errorf("peer %s: status %d", pr.base, resp.StatusCode)
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxPeerEntry+1))
	if err != nil {
		return nil, false, err
	}
	if len(body) > maxPeerEntry {
		return nil, false, fmt.Errorf("peer %s: entry exceeds %d bytes", pr.base, maxPeerEntry)
	}
	if sum := resp.Header.Get(SumHeader); sum != "" && sum != Sum(body) {
		return nil, false, fmt.Errorf("peer %s: checksum mismatch for %s", pr.base, key)
	}
	return body, true, nil
}

// coolingDown reports whether the peer is inside its failure backoff window.
func (pr *peer) coolingDown() bool {
	pr.mu.Lock()
	defer pr.mu.Unlock()
	return time.Now().Before(pr.downUntil)
}

// fail records a failure and extends the backoff exponentially.
func (pr *peer) fail(base time.Duration) {
	pr.mu.Lock()
	defer pr.mu.Unlock()
	d := base << min(pr.failures, 6)
	if d > maxPeerBackoff {
		d = maxPeerBackoff
	}
	pr.failures++
	pr.downUntil = time.Now().Add(d)
}

// ok resets the peer's failure state after a successful exchange.
func (pr *peer) ok() {
	pr.mu.Lock()
	defer pr.mu.Unlock()
	pr.failures = 0
	pr.downUntil = time.Time{}
}

// count bumps one counter under the tier lock.
func (p *Peers) count(c *int64) {
	p.mu.Lock()
	*c++
	p.mu.Unlock()
}

// Put implements Store as a no-op: the peer tier is fetch-through only.
// Results are durable where they were computed; replication happens lazily,
// on read, and is safe because every copy of a key is byte-identical.
func (p *Peers) Put(context.Context, string, []byte) {}

// Stats returns a snapshot of the counters.
func (p *Peers) Stats() TierStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return TierStats{Hits: p.hits, Misses: p.misses, Errors: p.errors}
}

// Close implements Store; the tier shares its HTTP client with the caller.
func (p *Peers) Close() error { return nil }
