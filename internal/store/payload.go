package store

import (
	"encoding/json"
	"fmt"

	soterruntime "repro/internal/runtime"
	"repro/internal/sim"
)

// Payload is the canonical stored form of one mission's verdict — exactly the
// deterministic parts of a mission result. Name, wall time and cache markers
// are identity that the consumer re-attaches on reuse; they never enter the
// store, so the bytes under a fingerprint are the same no matter which
// process, job or subsystem computed them. Both sweep jobs and deterministic
// certification cells encode through this type, which is what lets them share
// entries.
type Payload struct {
	Metrics  sim.Metrics           `json:"metrics"`
	Switches []soterruntime.Switch `json:"switches,omitempty"`
}

// Encode renders the payload as canonical JSON bytes for storage.
func (p Payload) Encode() ([]byte, error) {
	raw, err := json.Marshal(p)
	if err != nil {
		return nil, fmt.Errorf("store: encode payload: %w", err)
	}
	return raw, nil
}

// DecodePayload parses stored bytes back into a Payload. An error means the
// entry is unusable and the caller should recompute; with checksummed tiers
// this indicates an encoding-era bug, not bit rot.
func DecodePayload(raw []byte) (Payload, error) {
	var p Payload
	if err := json.Unmarshal(raw, &p); err != nil {
		return Payload{}, fmt.Errorf("store: decode payload: %w", err)
	}
	return p, nil
}
