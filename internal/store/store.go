// Package store is the durable, sharded, deduplicated result store of the
// serving layer. Every SOTER mission is a pure function of (scenario.Spec,
// seed) — byte-identical on every run, machine-enforced by soter-vet — so a
// mission's verdict is a content-addressed artifact: the fingerprint
// scenario.Spec.Fingerprint(seed) names exactly one possible value. That
// determinism is what makes a multi-tier cache trivially safe: any replica of
// an entry equals every other, cache-fill races can only write identical
// bytes, and a remembered result is observationally indistinguishable from a
// fresh simulation.
//
// The store composes three tiers behind one Store interface:
//
//	tier 0  Memory  in-process LRU — the hot set, zero IO
//	tier 1  Disk    fingerprint-sharded files — survives restarts
//	tier 2  Peers   rendezvous-ordered fetch-through from sibling
//	                soter-serve processes over GET /store/{key}
//
// Tiered walks them in order and promotes hits upward, so N processes with
// disk tiers and each other as peers form one logical cache. In front of the
// tiers sits a singleflight group (Acquire/Fill): concurrent requests for the
// same missing key elect exactly one leader to simulate while the rest wait
// and share its result — two users sweeping the same grid cell cost one
// simulation.
package store

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"sync"
)

// Store is the tier contract: an associative cache of canonical result bytes
// keyed by mission fingerprints (scenario.Spec.Fingerprint(seed) hex
// strings). Implementations are safe for concurrent use. Get and Put take a
// context because a tier may do IO (disk) or RPC (peers); a tier that misses
// — for any reason, including cancellation or corruption — returns false
// rather than an error: the caller can always fall back to simulating.
type Store interface {
	// Get returns the bytes stored under key.
	Get(ctx context.Context, key string) ([]byte, bool)
	// Put stores val under key. Callers must not mutate val afterwards.
	Put(ctx context.Context, key string, val []byte)
	// Stats snapshots the tier's counters.
	Stats() TierStats
	// Close releases the tier's resources.
	Close() error
}

// TierStats is one tier's counter snapshot. Fields that do not apply to a
// tier (capacity for peers, bytes for memory) stay zero and are omitted on
// the wire.
type TierStats struct {
	// Entries and Capacity bound entry-counted tiers (memory).
	Entries  int `json:"entries,omitempty"`
	Capacity int `json:"capacity,omitempty"`
	// Bytes and MaxBytes bound byte-counted tiers (disk).
	Bytes    int64 `json:"bytes,omitempty"`
	MaxBytes int64 `json:"max_bytes,omitempty"`
	Hits     int64 `json:"hits"`
	Misses   int64 `json:"misses"`
	// Evictions counts entries dropped to honour the bound.
	Evictions int64 `json:"evictions,omitempty"`
	// Quarantined counts corrupt or truncated disk entries set aside on read.
	Quarantined int64 `json:"quarantined,omitempty"`
	// Errors counts IO/RPC failures that degraded to a miss.
	Errors int64 `json:"errors,omitempty"`
}

// Stats is the whole store's snapshot: one block per configured tier plus the
// singleflight counters — the /stats payload of the serving layer.
type Stats struct {
	Memory TierStats  `json:"memory"`
	Disk   *TierStats `json:"disk,omitempty"`
	Peers  *TierStats `json:"peers,omitempty"`
	// Fills counts leader fills completed through the singleflight group —
	// the number of fresh simulations the store absorbed.
	Fills int64 `json:"fills"`
	// Collapsed counts requests that waited on another caller's in-flight
	// fill and shared its result instead of simulating — the work dedup saved.
	Collapsed int64 `json:"collapsed"`
	// Aborts counts fills abandoned (failed or cancelled simulations);
	// waiters of an aborted fill retry and may lead their own.
	Aborts int64 `json:"aborts,omitempty"`
	// Inflight is the number of fills currently executing.
	Inflight int `json:"inflight,omitempty"`
}

// ValidKey reports whether key is a well-formed fingerprint: lowercase hex,
// 8–64 digits. The disk tier derives file paths from keys and the peer tier
// puts them in URLs, so anything else is rejected up front.
func ValidKey(key string) bool {
	if len(key) < 8 || len(key) > 64 {
		return false
	}
	for i := 0; i < len(key); i++ {
		c := key[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// Sum returns the hex SHA-256 of val — the content checksum the disk tier
// embeds in every entry and the peer protocol carries in X-Soter-Sum, so a
// torn write or a garbled response is detected before it is served.
func Sum(val []byte) string {
	h := sha256.Sum256(val)
	return hex.EncodeToString(h[:])
}

// Options configures a Tiered store. Memory defaults to NewMemory(0); Disk
// and Peers are optional tiers.
type Options struct {
	Memory *Memory
	Disk   *Disk
	Peers  *Peers
}

// Tiered is the composed store: memory → disk → peers in probe order, hits
// promoted into every faster local tier, writes fanned to the local tiers
// (the peer tier is fetch-through only — each process persists what it
// computes, and siblings pull it on demand). A singleflight group in front
// collapses concurrent fills per key.
type Tiered struct {
	memory *Memory
	disk   *Disk
	peers  *Peers

	mu       sync.Mutex
	inflight map[string]*flight

	fills     int64
	collapsed int64
	aborts    int64
}

// flight is one in-progress fill. done is closed exactly once, after val/ok
// are set; waiters re-check the tiers when ok is false (the leader aborted).
type flight struct {
	once sync.Once
	done chan struct{}
	val  []byte
	ok   bool
}

// resolve publishes the flight's outcome exactly once — val/ok are written
// before done closes, so waiters observe them safely. Idempotent, because a
// store Close may race the leader's own Complete/Abort.
func (fl *flight) resolve(val []byte, ok bool) {
	fl.once.Do(func() {
		fl.val, fl.ok = val, ok
		close(fl.done)
	})
}

// NewTiered composes a store from the configured tiers.
func NewTiered(opts Options) *Tiered {
	if opts.Memory == nil {
		opts.Memory = NewMemory(0)
	}
	return &Tiered{
		memory:   opts.Memory,
		disk:     opts.Disk,
		peers:    opts.Peers,
		inflight: make(map[string]*flight),
	}
}

// Get walks the tiers in order and promotes a hit into every faster local
// tier, so the next request finds it at tier 0. It does not join or lead
// fills — see Acquire for the deduplicating path.
func (t *Tiered) Get(ctx context.Context, key string) ([]byte, bool) {
	if val, ok := t.memory.Get(ctx, key); ok {
		return val, true
	}
	if t.disk != nil {
		if val, ok := t.disk.Get(ctx, key); ok {
			t.memory.Put(ctx, key, val)
			return val, true
		}
	}
	if t.peers != nil {
		if val, ok := t.peers.Get(ctx, key); ok {
			t.memory.Put(ctx, key, val)
			if t.disk != nil {
				t.disk.Put(ctx, key, val)
			}
			return val, true
		}
	}
	return nil, false
}

// GetLocal consults only the local tiers (memory, disk) — never the peers.
// It is what the GET /store/{key} endpoint serves, so a peer lookup can never
// recurse into further peer lookups.
func (t *Tiered) GetLocal(ctx context.Context, key string) ([]byte, bool) {
	if val, ok := t.memory.Get(ctx, key); ok {
		return val, true
	}
	if t.disk != nil {
		if val, ok := t.disk.Get(ctx, key); ok {
			t.memory.Put(ctx, key, val)
			return val, true
		}
	}
	return nil, false
}

// Put stores val in every local tier. Any concurrent fill of the same key is
// completed with val — deterministically safe, since every fill of a key can
// only ever produce the same bytes.
func (t *Tiered) Put(ctx context.Context, key string, val []byte) {
	t.putLocal(ctx, key, val)
	t.mu.Lock()
	fl, ok := t.inflight[key]
	if ok {
		delete(t.inflight, key)
	}
	t.mu.Unlock()
	if ok {
		fl.resolve(val, true)
	}
}

// putLocal fans val out to the local tiers.
func (t *Tiered) putLocal(ctx context.Context, key string, val []byte) {
	t.memory.Put(ctx, key, val)
	if t.disk != nil {
		t.disk.Put(ctx, key, val)
	}
}

// Fill is the leader token of one singleflight slot: the Acquire caller that
// received it owns the fill for its key and must end it with exactly one
// Complete or Abort — waiters on the same key block until then.
type Fill struct {
	t    *Tiered
	key  string
	fl   *flight
	once sync.Once
}

// Key returns the key this fill is for.
func (f *Fill) Key() string { return f.key }

// Complete stores val through the local tiers and hands it to every waiter.
func (f *Fill) Complete(ctx context.Context, val []byte) {
	f.once.Do(func() {
		f.t.putLocal(ctx, f.key, val)
		f.t.mu.Lock()
		if f.t.inflight[f.key] == f.fl {
			delete(f.t.inflight, f.key)
		}
		f.t.fills++
		f.t.mu.Unlock()
		f.fl.resolve(val, true)
	})
}

// Abort abandons the fill (the simulation failed or was cancelled). Waiters
// wake, re-check the tiers and elect a new leader.
func (f *Fill) Abort() {
	f.once.Do(func() {
		f.t.mu.Lock()
		if f.t.inflight[f.key] == f.fl {
			delete(f.t.inflight, f.key)
		}
		f.t.aborts++
		f.t.mu.Unlock()
		f.fl.resolve(nil, false)
	})
}

// Acquire is the deduplicating read path. It resolves key to one of:
//
//   - (val, nil): the value — from a tier hit or by waiting out another
//     caller's in-flight fill (a collapsed request).
//   - (nil, fill): a miss with this caller elected leader. The caller must
//     compute the value and end the fill with Complete or Abort; concurrent
//     Acquires of the same key block on it meanwhile.
//   - (nil, nil): the context was cancelled while waiting. The caller may
//     compute without caching duties.
//
// The leader slot is registered before the tiers are probed, so a fill
// completing between a waiter's probe and its registration can never be
// missed — the waiter either sees the tiers' copy or joins the flight.
func (t *Tiered) Acquire(ctx context.Context, key string) ([]byte, *Fill) {
	for {
		t.mu.Lock()
		fl := t.inflight[key]
		if fl == nil {
			fl = &flight{done: make(chan struct{})}
			t.inflight[key] = fl
			t.mu.Unlock()
			if val, ok := t.Get(ctx, key); ok {
				// The tiers already had it: resolve our own slot with the
				// found value so anyone who joined meanwhile shares the hit.
				t.mu.Lock()
				if t.inflight[key] == fl {
					delete(t.inflight, key)
				}
				t.mu.Unlock()
				fl.resolve(val, true)
				return val, nil
			}
			return nil, &Fill{t: t, key: key, fl: fl}
		}
		t.mu.Unlock()
		select {
		case <-fl.done:
			if fl.ok {
				t.mu.Lock()
				t.collapsed++
				t.mu.Unlock()
				return fl.val, nil
			}
			// Aborted: retry — the tiers may have it by now, or we lead.
		case <-ctx.Done():
			return nil, nil
		}
	}
}

// Stats snapshots every tier plus the singleflight counters.
func (t *Tiered) Stats() Stats {
	t.mu.Lock()
	st := Stats{
		Fills:     t.fills,
		Collapsed: t.collapsed,
		Aborts:    t.aborts,
		Inflight:  len(t.inflight),
	}
	t.mu.Unlock()
	st.Memory = t.memory.Stats()
	if t.disk != nil {
		ds := t.disk.Stats()
		st.Disk = &ds
	}
	if t.peers != nil {
		ps := t.peers.Stats()
		st.Peers = &ps
	}
	return st
}

// Close aborts in-flight fills and closes every tier.
func (t *Tiered) Close() error {
	t.mu.Lock()
	flights := make([]*flight, 0, len(t.inflight))
	for key, fl := range t.inflight {
		delete(t.inflight, key)
		flights = append(flights, fl)
	}
	t.mu.Unlock()
	for _, fl := range flights {
		fl.resolve(nil, false)
	}
	err := t.memory.Close()
	if t.disk != nil {
		if derr := t.disk.Close(); err == nil {
			err = derr
		}
	}
	if t.peers != nil {
		if perr := t.peers.Close(); err == nil {
			err = perr
		}
	}
	return err
}
