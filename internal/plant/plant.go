// Package plant implements the physical substrate of the case study: a
// discrete-time quadrotor model standing in for the paper's Gazebo/PX4
// simulation and 3DR Iris hardware. The model is a 3D double integrator with
// per-axis acceleration and velocity bounds, first-order actuation lag,
// optional sensor noise, and a battery discharge model matching Section V-B
// (discharge is a function of the applied control).
//
// The substitution is behaviour-preserving for the RTA argument: the
// decision module only relies on worst-case bounds of the plant dynamics
// (|a| ≤ MaxAccel, |v| ≤ MaxVel per axis), which this model satisfies by
// construction, so the reachability computations in internal/reach are sound
// for it exactly as FaSTrack's tracking-error bound is sound for the drone.
package plant

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"repro/internal/geom"
)

// State is the full plant state: kinematics, the currently applied (lagged)
// acceleration, and the battery charge fraction.
type State struct {
	Pos     geom.Vec3
	Vel     geom.Vec3
	Accel   geom.Vec3 // applied acceleration after actuation lag
	Battery float64   // charge fraction in [0, 1]
	Landed  bool
}

// Params are the physical parameters of the drone model.
type Params struct {
	// MaxAccel is the per-axis acceleration bound (m/s²). Commands are
	// saturated component-wise to ±MaxAccel.
	MaxAccel float64
	// MaxVel is the per-axis velocity bound (m/s).
	MaxVel float64
	// LagTau is the first-order actuation lag time constant; zero means
	// commands apply instantaneously.
	LagTau time.Duration
	// SensorNoise is the standard deviation (metres) of the position noise
	// added by Observe. Zero disables noise.
	SensorNoise float64
	// IdleDrainPerSec is the battery fraction consumed per second while
	// powered, independent of control effort.
	IdleDrainPerSec float64
	// AccelDrainPerSec is the extra battery fraction consumed per second per
	// m/s² of commanded acceleration magnitude.
	AccelDrainPerSec float64
	// GroundZ is the altitude at or below which the drone can land.
	GroundZ float64
}

// DefaultParams returns parameters loosely calibrated to a 3DR Iris class
// quadrotor flying the 50 m city workspace.
func DefaultParams() Params {
	return Params{
		MaxAccel:         5.0,
		MaxVel:           3.0,
		LagTau:           60 * time.Millisecond,
		SensorNoise:      0,
		IdleDrainPerSec:  0.00030,
		AccelDrainPerSec: 0.00012,
		GroundZ:          0.5,
	}
}

// Validate checks parameter sanity.
func (p Params) Validate() error {
	if p.MaxAccel <= 0 || p.MaxVel <= 0 {
		return fmt.Errorf("MaxAccel (%v) and MaxVel (%v) must be positive", p.MaxAccel, p.MaxVel)
	}
	if p.LagTau < 0 {
		return fmt.Errorf("LagTau %v must be non-negative", p.LagTau)
	}
	if p.SensorNoise < 0 {
		return fmt.Errorf("SensorNoise %v must be non-negative", p.SensorNoise)
	}
	if p.IdleDrainPerSec < 0 || p.AccelDrainPerSec < 0 {
		return fmt.Errorf("battery drain rates must be non-negative")
	}
	return nil
}

// Cost returns the battery fraction consumed by applying control u for
// duration t — the cost(u, t) function of Section V-B.
func (p Params) Cost(u geom.Vec3, t time.Duration) float64 {
	sec := t.Seconds()
	return (p.IdleDrainPerSec + p.AccelDrainPerSec*u.Norm()) * sec
}

// MaxCost returns cost* = max_u cost(u, t): the maximum battery discharge
// over duration t across all admissible controls.
func (p Params) MaxCost(t time.Duration) float64 {
	worst := geom.V(p.MaxAccel, p.MaxAccel, p.MaxAccel)
	return p.Cost(worst, t)
}

// Drone is the stepping plant. It owns an RNG for sensor noise so runs are
// reproducible from a seed.
type Drone struct {
	params Params
	rng    *rand.Rand
}

// NewDrone creates a plant with the given parameters and noise seed.
func NewDrone(p Params, seed int64) (*Drone, error) {
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("plant params: %w", err)
	}
	return &Drone{params: p, rng: rand.New(rand.NewSource(seed))}, nil
}

// Params returns the plant parameters.
func (d *Drone) Params() Params { return d.params }

// Step integrates the dynamics over dt under the commanded acceleration.
// The command is saturated per axis, passed through the actuation lag,
// velocity is clamped per axis, and the battery discharges according to the
// applied control. A landed drone does not move and only idles its battery.
func (d *Drone) Step(s State, cmd geom.Vec3, dt time.Duration) State {
	h := dt.Seconds()
	if h <= 0 {
		return s
	}
	next := s
	next.Battery = math.Max(0, s.Battery-d.params.Cost(s.Accel, dt))
	if s.Landed || next.Battery == 0 && s.Battery == 0 {
		next.Vel = geom.Zero
		next.Accel = geom.Zero
		return next
	}

	sat := geom.V(d.params.MaxAccel, d.params.MaxAccel, d.params.MaxAccel)
	cmd = cmd.ClampBox(sat.Neg(), sat)

	// First-order actuation lag: a' = a + (cmd - a) * (1 - exp(-h/τ)).
	applied := cmd
	if d.params.LagTau > 0 {
		alpha := 1 - math.Exp(-h/d.params.LagTau.Seconds())
		applied = s.Accel.Add(cmd.Sub(s.Accel).Scale(alpha))
	}
	applied = applied.ClampBox(sat.Neg(), sat)

	vmax := geom.V(d.params.MaxVel, d.params.MaxVel, d.params.MaxVel)
	vel := s.Vel.Add(applied.Scale(h)).ClampBox(vmax.Neg(), vmax)
	// Semi-implicit Euler: integrate position with the updated velocity.
	pos := s.Pos.Add(vel.Scale(h))

	next.Pos = pos
	next.Vel = vel
	next.Accel = applied
	return next
}

// Observe returns the sensed state: the true state with Gaussian position
// noise (the paper treats state estimators as trusted, "accurately provide
// the system state within bounds" — the bound here is a few σ).
func (d *Drone) Observe(s State) State {
	if d.params.SensorNoise == 0 {
		return s
	}
	obs := s
	obs.Pos = s.Pos.Add(geom.V(
		d.rng.NormFloat64()*d.params.SensorNoise,
		d.rng.NormFloat64()*d.params.SensorNoise,
		d.rng.NormFloat64()*d.params.SensorNoise,
	))
	return obs
}

// CanLand reports whether the drone is low and slow enough to touch down.
func (d *Drone) CanLand(s State) bool {
	return s.Pos.Z <= d.params.GroundZ && math.Abs(s.Vel.Z) < 0.5
}

// Land marks the drone as landed, zeroing its motion.
func Land(s State) State {
	s.Landed = true
	s.Vel = geom.Zero
	s.Accel = geom.Zero
	return s
}

// Crashed reports whether the state constitutes a crash in the workspace:
// the drone is airborne and inside an obstacle or out of bounds, or it ran
// out of battery while airborne (the φbat failure).
func Crashed(s State, ws *geom.Workspace) bool {
	if s.Landed {
		return false
	}
	if !ws.Free(s.Pos) {
		return true
	}
	return s.Battery <= 0
}
