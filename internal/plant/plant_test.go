package plant

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/geom"
)

func noLagParams() Params {
	p := DefaultParams()
	p.LagTau = 0
	return p
}

func mustDrone(t *testing.T, p Params, seed int64) *Drone {
	t.Helper()
	d, err := NewDrone(p, seed)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestParamsValidate(t *testing.T) {
	tests := []struct {
		name    string
		mutate  func(*Params)
		wantErr bool
	}{
		{"default ok", func(*Params) {}, false},
		{"zero accel", func(p *Params) { p.MaxAccel = 0 }, true},
		{"zero vel", func(p *Params) { p.MaxVel = 0 }, true},
		{"negative lag", func(p *Params) { p.LagTau = -1 }, true},
		{"negative noise", func(p *Params) { p.SensorNoise = -1 }, true},
		{"negative drain", func(p *Params) { p.IdleDrainPerSec = -1 }, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			p := DefaultParams()
			tt.mutate(&p)
			if err := p.Validate(); (err != nil) != tt.wantErr {
				t.Errorf("Validate = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestStepIntegratesSimpleMotion(t *testing.T) {
	d := mustDrone(t, noLagParams(), 1)
	s := State{Battery: 1}
	// Constant 1 m/s² for 1 s in 10ms steps: v ≈ 1, x ≈ 0.5 (semi-implicit
	// Euler is slightly above the exact 0.5).
	for i := 0; i < 100; i++ {
		s = d.Step(s, geom.V(1, 0, 0), 10*time.Millisecond)
	}
	if math.Abs(s.Vel.X-1) > 1e-9 {
		t.Errorf("v = %v, want 1", s.Vel.X)
	}
	if s.Pos.X < 0.5 || s.Pos.X > 0.51 {
		t.Errorf("x = %v, want ≈0.5", s.Pos.X)
	}
}

func TestStepSaturatesCommandAndVelocity(t *testing.T) {
	p := noLagParams()
	d := mustDrone(t, p, 1)
	s := State{Battery: 1}
	for i := 0; i < 1000; i++ {
		s = d.Step(s, geom.V(1000, -1000, 0), 10*time.Millisecond)
	}
	if s.Vel.X != p.MaxVel || s.Vel.Y != -p.MaxVel {
		t.Errorf("velocity not clamped: %v", s.Vel)
	}
	if math.Abs(s.Accel.X) > p.MaxAccel || math.Abs(s.Accel.Y) > p.MaxAccel {
		t.Errorf("acceleration not clamped: %v", s.Accel)
	}
}

func TestActuationLag(t *testing.T) {
	p := DefaultParams()
	p.LagTau = 100 * time.Millisecond
	d := mustDrone(t, p, 1)
	s := State{Battery: 1}
	s = d.Step(s, geom.V(p.MaxAccel, 0, 0), 10*time.Millisecond)
	// After one 10ms step with τ=100ms, the applied acceleration is roughly
	// (1 - e^-0.1) ≈ 9.5% of the command.
	frac := s.Accel.X / p.MaxAccel
	if frac < 0.05 || frac > 0.15 {
		t.Errorf("lagged accel fraction = %v, want ≈0.095", frac)
	}
	// It converges toward the command.
	for i := 0; i < 100; i++ {
		s = d.Step(s, geom.V(p.MaxAccel, 0, 0), 10*time.Millisecond)
	}
	if s.Accel.X < 0.99*p.MaxAccel {
		t.Errorf("lagged accel did not converge: %v", s.Accel.X)
	}
}

func TestBatteryDischarge(t *testing.T) {
	p := noLagParams()
	d := mustDrone(t, p, 1)
	s := State{Battery: 1}
	s2 := d.Step(s, geom.Vec3{}, time.Second)
	wantIdle := 1 - p.IdleDrainPerSec
	if math.Abs(s2.Battery-wantIdle) > 1e-9 {
		t.Errorf("idle battery = %v, want %v", s2.Battery, wantIdle)
	}
	// Discharge depends on the APPLIED control of the previous state.
	s.Accel = geom.V(p.MaxAccel, 0, 0)
	s3 := d.Step(s, geom.Vec3{}, time.Second)
	if s3.Battery >= s2.Battery {
		t.Error("maneuvering must discharge faster than idling")
	}
	// Battery never goes negative.
	s.Battery = 1e-9
	s4 := d.Step(s, geom.V(1, 1, 1), time.Hour)
	if s4.Battery != 0 {
		t.Errorf("battery = %v, want 0", s4.Battery)
	}
}

func TestCostFunctions(t *testing.T) {
	p := DefaultParams()
	if got, want := p.Cost(geom.Vec3{}, time.Second), p.IdleDrainPerSec; math.Abs(got-want) > 1e-12 {
		t.Errorf("idle cost = %v, want %v", got, want)
	}
	// cost* dominates any admissible control's cost.
	worst := p.MaxCost(2 * time.Second)
	for _, u := range []geom.Vec3{
		{}, {X: p.MaxAccel}, {X: p.MaxAccel, Y: p.MaxAccel}, {X: -p.MaxAccel, Z: p.MaxAccel},
	} {
		if c := p.Cost(u, 2*time.Second); c > worst {
			t.Errorf("cost(%v) = %v exceeds cost* = %v", u, c, worst)
		}
	}
}

func TestLandedDroneStaysPut(t *testing.T) {
	d := mustDrone(t, noLagParams(), 1)
	s := Land(State{Pos: geom.V(1, 2, 0.3), Vel: geom.V(1, 1, 1), Battery: 0.5})
	if !s.Landed || s.Vel != geom.Zero {
		t.Errorf("Land = %+v", s)
	}
	s2 := d.Step(s, geom.V(5, 5, 5), time.Second)
	if s2.Pos != s.Pos || s2.Vel != geom.Zero {
		t.Errorf("landed drone moved: %+v", s2)
	}
	if s2.Battery >= s.Battery {
		t.Error("landed drone should still idle-drain")
	}
}

func TestObserveNoise(t *testing.T) {
	p := noLagParams()
	d := mustDrone(t, p, 1)
	s := State{Pos: geom.V(10, 10, 5), Battery: 1}
	if got := d.Observe(s); got != s {
		t.Error("zero-noise observation should be exact")
	}
	p.SensorNoise = 0.5
	d2 := mustDrone(t, p, 1)
	diff := false
	for i := 0; i < 10; i++ {
		if d2.Observe(s).Pos != s.Pos {
			diff = true
		}
	}
	if !diff {
		t.Error("noisy observation never differed from the true state")
	}
}

func TestCrashed(t *testing.T) {
	ws, err := geom.NewWorkspace(
		geom.Box(geom.V(0, 0, 0), geom.V(10, 10, 10)),
		[]geom.AABB{geom.Box(geom.V(4, 4, 0), geom.V(6, 6, 5))},
	)
	if err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		name string
		s    State
		want bool
	}{
		{"flying free", State{Pos: geom.V(1, 1, 1), Battery: 0.5}, false},
		{"inside obstacle", State{Pos: geom.V(5, 5, 1), Battery: 0.5}, true},
		{"out of bounds", State{Pos: geom.V(-1, 1, 1), Battery: 0.5}, true},
		{"battery dead airborne", State{Pos: geom.V(1, 1, 1), Battery: 0}, true},
		{"landed is never crashed", State{Pos: geom.V(5, 5, 1), Landed: true}, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Crashed(tt.s, ws); got != tt.want {
				t.Errorf("Crashed = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestCanLand(t *testing.T) {
	d := mustDrone(t, DefaultParams(), 1)
	if !d.CanLand(State{Pos: geom.V(1, 1, 0.4), Vel: geom.V(0.1, 0, -0.2)}) {
		t.Error("low and slow should be landable")
	}
	if d.CanLand(State{Pos: geom.V(1, 1, 3)}) {
		t.Error("high should not be landable")
	}
	if d.CanLand(State{Pos: geom.V(1, 1, 0.4), Vel: geom.V(0, 0, -2)}) {
		t.Error("fast descent should not be landable")
	}
}

// Property: the plant respects the advertised worst-case bounds — after any
// step, |v| ≤ MaxVel and |a| ≤ MaxAccel per axis. This is the assumption the
// DM's reachability analysis is sound against (Remark 3.2).
func TestPlantRespectsBoundsProperty(t *testing.T) {
	p := DefaultParams()
	d := mustDrone(t, p, 3)
	f := func(vx, vy, vz, cx, cy, cz float64, dtRaw uint8) bool {
		s := State{
			Vel:     geom.V(math.Mod(vx, 10), math.Mod(vy, 10), math.Mod(vz, 10)),
			Battery: 1,
		}
		dt := time.Duration(1+int(dtRaw)) * time.Millisecond
		// Even from an out-of-bounds velocity (sensor glitch), one step
		// restores the clamps.
		next := d.Step(s, geom.V(cx, cy, cz), dt)
		a, v := next.Accel.Abs(), next.Vel.Abs()
		return a.X <= p.MaxAccel+1e-9 && a.Y <= p.MaxAccel+1e-9 && a.Z <= p.MaxAccel+1e-9 &&
			v.X <= p.MaxVel+1e-9 && v.Y <= p.MaxVel+1e-9 && v.Z <= p.MaxVel+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// Property: two drones with the same seed and inputs evolve identically
// (replayability, required by the systematic-testing engine).
func TestPlantDeterminism(t *testing.T) {
	p := DefaultParams()
	p.SensorNoise = 0.2
	d1 := mustDrone(t, p, 42)
	d2 := mustDrone(t, p, 42)
	s1 := State{Battery: 1}
	s2 := State{Battery: 1}
	for i := 0; i < 200; i++ {
		cmd := geom.V(float64(i%7)-3, float64(i%5)-2, float64(i%3)-1)
		s1 = d1.Step(s1, cmd, 10*time.Millisecond)
		s2 = d2.Step(s2, cmd, 10*time.Millisecond)
		if s1 != s2 {
			t.Fatalf("divergence at step %d: %+v vs %+v", i, s1, s2)
		}
		if o1, o2 := d1.Observe(s1), d2.Observe(s2); o1 != o2 {
			t.Fatalf("observation divergence at step %d", i)
		}
	}
}

func TestStepZeroDuration(t *testing.T) {
	d := mustDrone(t, DefaultParams(), 1)
	s := State{Pos: geom.V(1, 1, 1), Vel: geom.V(1, 0, 0), Battery: 0.8}
	if got := d.Step(s, geom.V(1, 1, 1), 0); got != s {
		t.Errorf("zero-dt step changed state: %+v", got)
	}
}
