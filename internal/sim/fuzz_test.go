package sim

import (
	"math/rand"
	"reflect"
	"testing"
	"time"

	"repro/internal/controller"
	"repro/internal/geom"
	"repro/internal/mission"
)

// TestRTASurvivesRandomFaultSchedules is failure-injection fuzzing of the
// Theorem 3.1 claim: for randomized fault kinds, windows and directions, the
// RTA-protected stack must never crash and never violate φInv. Each trial
// uses an independent seed; failures print the seed for replay.
func TestRTASurvivesRandomFaultSchedules(t *testing.T) {
	if testing.Short() {
		t.Skip("fuzzing skipped in -short mode")
	}
	const trials = 8
	for trial := 0; trial < trials; trial++ {
		seed := int64(1000 + trial*37)
		rng := rand.New(rand.NewSource(seed))

		cfg := mission.DefaultStackConfig(seed)
		cfg.App = mission.AppConfig{Points: squareTour()}
		nFaults := 2 + rng.Intn(5)
		for i := 0; i < nFaults; i++ {
			kind := []controller.FaultKind{
				controller.FaultStuckZero,
				controller.FaultInvertAxis,
				controller.FaultFullThrust,
				controller.FaultBias,
			}[rng.Intn(4)]
			start := time.Duration(3+rng.Intn(50)) * time.Second
			dur := time.Duration(300+rng.Intn(2000)) * time.Millisecond
			dir := geom.V(rng.Float64()*2-1, rng.Float64()*2-1, (rng.Float64()*2-1)*0.5)
			cfg.ACFaults = append(cfg.ACFaults, controller.Fault{
				Kind:  kind,
				Start: start,
				End:   start + dur,
				Param: dir.Scale(cfg.PlantParams.MaxAccel),
			})
		}
		st, err := mission.Build(cfg)
		if err != nil {
			t.Fatalf("trial %d (seed %d): build: %v", trial, seed, err)
		}
		res, err := Run(RunConfig{
			Stack:           st,
			Initial:         initialAt(geom.V(3, 3, 2)),
			Duration:        60 * time.Second,
			Seed:            seed,
			CheckInvariants: true,
		})
		if err != nil {
			t.Fatalf("trial %d (seed %d): run: %v", trial, seed, err)
		}
		m := res.Metrics
		if m.Crashed {
			t.Errorf("trial %d (seed %d): CRASH at t=%v pos=%v under faults %+v",
				trial, seed, m.CrashTime, m.CrashPos, cfg.ACFaults)
		}
		if m.InvariantViolations > 0 {
			t.Errorf("trial %d (seed %d): %d φInv violations", trial, seed, m.InvariantViolations)
		}
	}
}

// TestFullStackReplayDeterminism: two runs with identical seeds produce
// identical metrics and switch logs — the property the systematic-testing
// engine's replay-based exploration relies on.
func TestFullStackReplayDeterminism(t *testing.T) {
	runOnce := func() *Result {
		cfg := mission.DefaultStackConfig(21)
		cfg.PlannerBugRate = 0.3
		cfg.App = mission.AppConfig{Random: true}
		cfg.ACFaults = faultWindows()
		st, err := mission.Build(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(RunConfig{
			Stack:            st,
			Initial:          initialAt(geom.V(3, 3, 2)),
			Duration:         40 * time.Second,
			Seed:             21,
			JitterProb:       0.002,
			JitterSCOnly:     true,
			RecordTrajectory: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := runOnce(), runOnce()
	if !reflect.DeepEqual(a.Metrics, b.Metrics) {
		t.Errorf("metrics diverged:\n%+v\n%+v", a.Metrics, b.Metrics)
	}
	if !reflect.DeepEqual(a.Switches, b.Switches) {
		t.Errorf("switch logs diverged: %d vs %d entries", len(a.Switches), len(b.Switches))
	}
	if len(a.Trajectory) != len(b.Trajectory) {
		t.Fatalf("trajectory lengths diverged: %d vs %d", len(a.Trajectory), len(b.Trajectory))
	}
	for i := range a.Trajectory {
		if a.Trajectory[i] != b.Trajectory[i] {
			t.Fatalf("trajectory diverged at sample %d", i)
		}
	}
}
