package sim

import (
	"bytes"
	"context"
	"errors"
	"reflect"
	"testing"
	"time"

	"repro/internal/geom"
	"repro/internal/mission"
	"repro/internal/obs"
)

// observedRun builds a short jittery surveillance mission with the given
// extra observers attached.
func observedRun(t *testing.T, seed int64, observers ...obs.Observer) RunConfig {
	t.Helper()
	cfg := mission.DefaultStackConfig(seed)
	cfg.App = mission.AppConfig{Points: squareTour()}
	st, err := mission.Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return RunConfig{
		Stack:        st,
		Initial:      initialAt(geom.V(3, 3, 2)),
		Duration:     8 * time.Second,
		Seed:         seed,
		JitterProb:   0.004,
		JitterSCOnly: true,
		Label:        "observed-run",
		Observers:    observers,
	}
}

// TestModeSwitchEventsMatchSwitchLog: the obs.ModeSwitch stream is exactly
// the executor's switch log — same order, same payloads. This is the
// acceptance contract tying -trace files to Executor.Switches().
func TestModeSwitchEventsMatchSwitchLog(t *testing.T) {
	rec := obs.NewRecorder(0)
	res, err := Run(observedRun(t, 11, rec))
	if err != nil {
		t.Fatal(err)
	}
	var fromEvents []obs.ModeSwitch
	for _, e := range rec.Events() {
		if sw, ok := e.(obs.ModeSwitch); ok {
			fromEvents = append(fromEvents, sw)
		}
	}
	if len(fromEvents) != len(res.Switches) {
		t.Fatalf("%d ModeSwitch events, switch log has %d", len(fromEvents), len(res.Switches))
	}
	if len(res.Switches) == 0 {
		t.Fatal("run produced no switches; the comparison is vacuous")
	}
	for i, sw := range res.Switches {
		want := obs.ModeSwitch{T: sw.Time, Module: sw.Module, From: sw.From, To: sw.To, Reason: sw.Reason, Coordinated: sw.Coordinated}
		if fromEvents[i] != want {
			t.Errorf("event %d = %+v, switch log says %+v", i, fromEvents[i], want)
		}
	}
}

// TestJSONLReplayReproducesMetrics: trace a run to JSONL, decode it, replay
// the decoded events through a fresh MetricsSink, and require the replayed
// metrics to equal the run's own — the round-trip that makes -trace files a
// faithful record of the run.
func TestJSONLReplayReproducesMetrics(t *testing.T) {
	var buf bytes.Buffer
	w := obs.NewJSONLWriter(&buf)
	cfg := observedRun(t, 5, w)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	events, err := obs.ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("empty trace")
	}
	if _, ok := events[0].(obs.RunStart); !ok {
		t.Errorf("stream starts with %T, want RunStart", events[0])
	}
	if _, ok := events[len(events)-1].(obs.RunEnd); !ok {
		t.Errorf("stream ends with %T, want RunEnd", events[len(events)-1])
	}
	replay := NewMetricsSink(cfg.Stack.Config.Workspace)
	for _, e := range events {
		replay.OnEvent(e)
	}
	if got := replay.Metrics(); !reflect.DeepEqual(got, res.Metrics) {
		t.Errorf("replayed metrics diverge from the run's:\n%+v\nvs\n%+v", got, res.Metrics)
	}
}

// TestEventStreamDeterministic: the same (scenario, seed) produces the
// byte-identical event sequence on repeated runs.
func TestEventStreamDeterministic(t *testing.T) {
	trace := func() []byte {
		var buf bytes.Buffer
		w := obs.NewJSONLWriter(&buf)
		if _, err := Run(observedRun(t, 23, w)); err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := trace(), trace()
	if !bytes.Equal(a, b) {
		t.Fatalf("event streams diverge between identical runs (%d vs %d bytes)", len(a), len(b))
	}
}

// TestCancellationMidRun: cancelling the context mid-run returns the
// context's error together with a consistent partial Result — every module's
// mode accounting closes exactly at the reported duration, and the partial
// stream still ends with RunEnd.
func TestCancellationMidRun(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	sliceCount := 0
	// Cancel from inside the stream after a fixed number of time-progress
	// events, so the test does not depend on wall-clock timing.
	tripwire := obs.ObserverFunc(func(e obs.Event) {
		if _, ok := e.(obs.TimeProgress); ok {
			if sliceCount++; sliceCount == 40 {
				cancel()
			}
		}
	})
	rec := obs.NewRecorder(0)
	cfg := observedRun(t, 3, tripwire, rec)
	cfg.Context = ctx
	res, err := Run(cfg)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res == nil {
		t.Fatal("cancelled run returned no partial result")
	}
	m := res.Metrics
	if m.Duration <= 0 || m.Duration >= cfg.Duration {
		t.Fatalf("partial duration %v outside (0, %v)", m.Duration, cfg.Duration)
	}
	if len(m.Modules) == 0 {
		t.Fatal("partial metrics lost the module accounting")
	}
	for name, s := range m.Modules {
		if got := s.ACTime + s.SCTime; got != m.Duration {
			t.Errorf("module %q accounts %v of mode time, want the partial duration %v", name, got, m.Duration)
		}
	}
	events := rec.Events()
	last, ok := events[len(events)-1].(obs.RunEnd)
	if !ok {
		t.Fatalf("partial stream ends with %T, want RunEnd", events[len(events)-1])
	}
	if last.T != m.Duration || last.Err == "" {
		t.Errorf("RunEnd = %+v, want T=%v and a recorded error", last, m.Duration)
	}
}

// TestLegacyMetricsShape pins the rewired pipeline to the legacy runner's
// semantics on a fixed scenario+seed: the jitter model must surface dropped
// firings, the mission must make progress, and the per-module accounting
// must cover the whole run — the invariants the byte-identical golden
// comparison against the pre-rewire runner was built on.
func TestLegacyMetricsShape(t *testing.T) {
	res, err := Run(observedRun(t, 7))
	if err != nil {
		t.Fatal(err)
	}
	m := res.Metrics
	if m.Duration != 8*time.Second {
		t.Errorf("duration = %v", m.Duration)
	}
	if m.DistanceFlown <= 0 || m.BatteryAtEnd <= 0 || m.BatteryAtEnd >= 1 {
		t.Errorf("implausible run: distance=%v battery=%v", m.DistanceFlown, m.BatteryAtEnd)
	}
	if m.DroppedFirings == 0 {
		t.Error("jitter produced no dropped firings")
	}
	if m.MinClearance <= 0 {
		t.Error("no clearance tracking")
	}
	for name, s := range m.Modules {
		if s.ACTime+s.SCTime != m.Duration {
			t.Errorf("module %q mode time %v != duration %v", name, s.ACTime+s.SCTime, m.Duration)
		}
	}
}
