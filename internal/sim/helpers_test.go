package sim

import (
	"repro/internal/geom"
	"repro/internal/plant"
)

// initialAt builds a hovering initial state at p with a full battery.
func initialAt(p geom.Vec3) plant.State {
	return plant.State{Pos: p, Battery: 1}
}
