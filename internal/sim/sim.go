// Package sim closes the loop between an RTA system built by
// internal/mission and the drone plant: it implements the runtime's
// Environment hook (integrating the dynamics between discrete events and
// publishing the trusted state estimate) and emits the closed-loop half of
// the run's event stream (trajectory samples, battery samples, crashes,
// touchdowns, run start/end) into the unified observer layer (internal/obs).
// The metrics the paper's evaluation reports — disengagements, crashes,
// distance flown, AC-control time fraction, mission timing — are aggregated
// from that stream by an obs.MetricsSink; callers may attach any further
// observers (JSONL tracing, bounded recorders, custom monitors) through
// RunConfig.Observers and cancel a run through RunConfig.Context.
//
// It also models the best-effort OS scheduling the paper identifies as the
// cause of the endurance experiment's crashes ("the DM node did switch
// control, but the SC node was not scheduled in time"): with scheduler
// jitter enabled, node firings are randomly dropped, reproducing both the
// crashes and their disappearance on an RTOS (zero jitter).
package sim

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"time"

	"repro/internal/geom"
	"repro/internal/mission"
	"repro/internal/obs"
	"repro/internal/plant"
	"repro/internal/pubsub"
	"repro/internal/rta"
	"repro/internal/runtime"
)

// TrajectoryPoint is one sample of the flown trajectory.
type TrajectoryPoint struct {
	T    time.Duration
	Pos  geom.Vec3
	Vel  geom.Vec3
	Mode rta.Mode // motion-primitive module mode (ModeAC when unprotected)
}

// ModuleStats aggregates per-module switching statistics. It lives in
// internal/obs (the metrics are aggregated from the event stream) and is
// re-exported here for the simulation-facing callers.
type ModuleStats = obs.ModuleStats

// Metrics summarises one simulation run. It is produced by the
// obs.MetricsSink aggregating the run's event stream.
type Metrics = obs.Metrics

// MetricsSink aggregates an event stream into Metrics — re-exported so
// callers replaying recorded streams need only this package.
type MetricsSink = obs.MetricsSink

// NewMetricsSink builds a sink measuring clearance against ws.
func NewMetricsSink(ws *geom.Workspace) *MetricsSink { return obs.NewMetricsSink(ws) }

// RunConfig configures a closed-loop run.
type RunConfig struct {
	// Stack is the system under test.
	Stack *mission.Stack
	// Initial is the drone's initial state; Battery defaults to 1.
	Initial plant.State
	// Duration is how long to simulate.
	Duration time.Duration
	// PhysicsStep is the plant integration sub-step (default 5ms).
	PhysicsStep time.Duration
	// Seed drives sensor noise and scheduler jitter.
	Seed int64
	// Context, when non-nil, cancels the run between executor slices: Run
	// returns the partial Result accumulated so far together with the
	// context's error. Nil means run to completion.
	Context context.Context
	// Observers receive the run's full event stream (runtime events and the
	// closed-loop events) in deterministic emission order, after the
	// internal metrics sink.
	Observers []obs.Observer
	// Label names the run in its RunStart event (scenario or mission name).
	Label string
	// JitterProb is the per-firing probability that a node enters a
	// scheduling outage (a burst of missed deadlines, 200-600 ms long) —
	// zero models an RTOS, positive values model the best-effort scheduling
	// of Section V-D, whose crashes the paper traces to "the SC node was
	// not scheduled in time for the system to recover".
	JitterProb float64
	// JitterSCOnly restricts outages to SC and DM nodes, the failure mode
	// the paper observed.
	JitterSCOnly bool
	// CheckInvariants installs the runtime φInv monitor
	// (runtime.WithInvariantChecking): the invariant is asserted at every DM
	// sampling instant and violations are counted in the metrics rather than
	// aborting the run. Off by default — the monitor evaluates the module
	// predicates on every DM step, and an enabled monitor changes the
	// run-slice control flow, so it is a cost knob the scenario layer leaves
	// off unless a workload opts in (scenario.Spec.InvariantMonitor).
	CheckInvariants bool
	// RecordTrajectory enables trajectory sampling (costly for long runs).
	RecordTrajectory bool
	// KeepFlyingAfterCrash continues the run through collisions, counting
	// episodes instead of stopping at the first (used by the unprotected
	// baselines of Figure 12a).
	KeepFlyingAfterCrash bool
	// StopAfterVisits ends the run once the surveillance app has visited
	// this many targets (0 = run to Duration) — used by the tour-timing
	// experiment.
	StopAfterVisits int
}

// Result bundles metrics with the optional trajectory and the executor's
// switch log.
type Result struct {
	Metrics    Metrics
	Trajectory []TrajectoryPoint
	Switches   []runtime.Switch
}

// environment integrates the plant between discrete events and publishes the
// state estimate; it also detects ground contact (landing vs crash).
type environment struct {
	drone   *plant.Drone
	ws      *geom.Workspace
	state   plant.State
	step    time.Duration
	run     *runner
	groundZ float64
	// Dense topic IDs, resolved once at run setup: Advance and observe run
	// every physics sub-step (default 5 ms), so topic access goes through
	// the store's slice-backed ID path instead of name lookups.
	cmdID, stateID, wpID pubsub.TopicID
}

// resolveTopics caches the hot-path topic IDs.
func (e *environment) resolveTopics(topics *pubsub.Store) error {
	for _, t := range []struct {
		name pubsub.TopicName
		id   *pubsub.TopicID
	}{
		{mission.TopicCmd, &e.cmdID},
		{mission.TopicDroneState, &e.stateID},
		{mission.TopicWaypoint, &e.wpID},
	} {
		id, err := topics.ID(t.name)
		if err != nil {
			return err
		}
		*t.id = id
	}
	return nil
}

func (e *environment) Advance(prev, now time.Duration, topics *pubsub.Store) error {
	for t := prev; t < now; {
		dt := e.step
		if t+dt > now {
			dt = now - t
		}
		cmd := geom.Vec3{}
		if v, ok := topics.GetID(e.cmdID).(geom.Vec3); ok {
			cmd = v
		}
		e.state = e.drone.Step(e.state, cmd, dt)
		t += dt
		e.run.observe(t, e.state, topics)
		if e.run.crashed && !e.run.cfg.KeepFlyingAfterCrash {
			break
		}
	}
	topics.SetID(e.stateID, e.drone.Observe(e.state))
	return nil
}

// modeTracker caches the motion-primitive module's current mode from the
// switch stream, so per-sub-step trajectory samples carry it without
// querying the executor on the hot path.
type modeTracker struct {
	module string
	mode   rta.Mode
}

// Interests implements obs.Interested.
func (t *modeTracker) Interests() obs.KindSet { return obs.Kinds(obs.KindModeSwitch) }

// OnEvent implements obs.Observer.
func (t *modeTracker) OnEvent(e obs.Event) {
	if sw, ok := e.(obs.ModeSwitch); ok && sw.Module == t.module {
		t.mode = sw.To
	}
}

// runner owns the run's control flow (when to stop, what the environment
// does on ground contact) and the closed-loop emission points. All metric
// bookkeeping lives in the obs.MetricsSink attached to the same stream.
type runner struct {
	cfg  RunConfig
	ws   *geom.Workspace
	sink *obs.MetricsSink
	// Per-kind dispatch lists over sink + tracker + cfg.Observers for the
	// closed-loop emission points.
	byKind [obs.KindCount][]obs.Observer
	// trajTyped is the unboxed dispatch list for trajectory samples — set
	// only when every interested observer implements obs.TrajectoryObserver,
	// sparing one interface allocation per physics sub-step.
	trajTyped []obs.TrajectoryObserver
	// Control-flow flags: crash/touchdown end the run (metrics aside).
	crashed     bool
	landed      bool
	inCollision bool
	tracker     *modeTracker
	traj        []TrajectoryPoint
	rng         *rand.Rand
	// outageUntil tracks per-node scheduling outages (jitter model).
	outageUntil map[string]time.Duration
	exec        *runtime.Executor
	env         *environment
	trajEvery   time.Duration
	trajLast    time.Duration
	batLast     time.Duration
}

// emit delivers a closed-loop event to the observers interested in its kind.
func (r *runner) emit(e obs.Event) { obs.Emit(r.byKind[e.Kind()], e) }

// observe is called after every physics sub-step.
func (r *runner) observe(t time.Duration, after plant.State, topics *pubsub.Store) {
	if len(r.trajTyped) > 0 {
		obs.EmitTrajectory(r.trajTyped, obs.TrajectorySample{
			T: t, Pos: after.Pos, Vel: after.Vel, Mode: r.tracker.mode, Landed: after.Landed,
		})
	} else if list := r.byKind[obs.KindTrajectorySample]; len(list) > 0 {
		obs.Emit(list, obs.TrajectorySample{
			T: t, Pos: after.Pos, Vel: after.Vel, Mode: r.tracker.mode, Landed: after.Landed,
		})
	}

	// Ground contact: intended landing vs crash.
	if !after.Landed && after.Pos.Z <= 0 {
		if wp, ok := topics.GetID(r.env.wpID).(mission.Waypoint); ok && wp.Valid && wp.Land && after.Vel.Norm() < 1.0 {
			r.env.state = plant.Land(after)
			r.markLanded(t)
			return
		}
		r.markCrash(t, after.Pos)
		return
	}
	// Intentional touchdown above ground level.
	if !after.Landed {
		if wp, ok := topics.GetID(r.env.wpID).(mission.Waypoint); ok && wp.Valid && wp.Land &&
			after.Pos.Z <= r.env.groundZ && after.Vel.Norm() < 1.2 {
			r.env.state = plant.Land(after)
			r.markLanded(t)
			return
		}
	}
	if plant.Crashed(after, r.ws) {
		r.markCrash(t, after.Pos)
	} else {
		r.inCollision = false
	}
}

func (r *runner) markCrash(t time.Duration, pos geom.Vec3) {
	if !r.inCollision {
		r.inCollision = true
		r.emit(obs.Crash{T: t, Pos: pos})
	}
	r.crashed = true
}

func (r *runner) markLanded(t time.Duration) {
	if !r.landed {
		r.landed = true
		r.emit(obs.Landed{T: t, Pos: r.env.state.Pos, Battery: r.env.state.Battery})
	}
}

// Run executes one closed-loop simulation. A run cancelled through
// RunConfig.Context returns the consistent partial Result accumulated so far
// together with the context's error; any other error returns a nil Result.
//
//soter:ctx-ok cancellation rides on RunConfig.Context; a ctx parameter would duplicate it
func Run(cfg RunConfig) (*Result, error) {
	if cfg.Stack == nil {
		return nil, fmt.Errorf("sim: nil stack")
	}
	if cfg.Duration <= 0 {
		return nil, fmt.Errorf("sim: duration %v must be positive", cfg.Duration)
	}
	if cfg.PhysicsStep <= 0 {
		cfg.PhysicsStep = 5 * time.Millisecond
	}
	if cfg.Initial.Battery == 0 {
		cfg.Initial.Battery = 1
	}
	ctx := cfg.Context
	if ctx == nil {
		ctx = context.Background() //soter:ctx-ok documented shim: nil RunConfig.Context means run to completion
	}
	ws := cfg.Stack.Config.Workspace
	drone, err := plant.NewDrone(cfg.Stack.Config.PlantParams, cfg.Seed)
	if err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}

	tracker := &modeTracker{mode: rta.ModeSC}
	if pm := cfg.Stack.PrimitiveModule; pm != nil {
		tracker.module = pm.Name()
	} else {
		// No protected motion layer: trajectory samples report ModeAC, like
		// the unprotected baselines of Figure 12a.
		tracker.mode = rta.ModeAC
	}
	sink := obs.NewMetricsSink(ws)
	// Observer order is part of the stream contract: the tracker first (so
	// samples emitted later in the same instant see the fresh mode), then
	// the metrics sink, then the caller's observers.
	observers := append([]obs.Observer{tracker, sink}, cfg.Observers...)

	r := &runner{
		cfg:         cfg,
		ws:          ws,
		sink:        sink,
		byKind:      obs.ByKind(observers),
		tracker:     tracker,
		rng:         rand.New(rand.NewSource(cfg.Seed + 7)),
		outageUntil: make(map[string]time.Duration),
		trajEvery:   50 * time.Millisecond,
	}
	r.trajTyped = obs.TrajectoryObservers(r.byKind[obs.KindTrajectorySample])
	env := &environment{
		drone:   drone,
		ws:      ws,
		state:   cfg.Initial,
		step:    cfg.PhysicsStep,
		run:     r,
		groundZ: drone.Params().GroundZ,
	}
	r.env = env

	opts := []runtime.Option{
		runtime.WithEnvironment(env),
		runtime.WithObservers(observers...),
	}
	if cfg.CheckInvariants {
		// Without this option the executor never evaluates φInv and the
		// tolerance loop in runSlice is dead code — the monitor must actually
		// be installed for violations to be detected and counted.
		opts = append(opts, runtime.WithInvariantChecking())
	}
	if cfg.JitterProb > 0 {
		opts = append(opts, runtime.WithDropFilter(r.dropFilter))
	}
	exec, err := runtime.New(
		cfg.Stack.System,
		[]pubsub.Topic{{Name: mission.TopicDroneState, Default: cfg.Initial}},
		opts...,
	)
	if err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	r.exec = exec
	if err := env.resolveTopics(exec.Topics()); err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	modules := make([]string, 0, len(cfg.Stack.System.Modules()))
	for _, m := range cfg.Stack.System.Modules() {
		modules = append(modules, m.Name())
	}
	r.emit(obs.RunStart{T: 0, Seed: cfg.Seed, Label: cfg.Label, Modules: modules})

	// Main loop: run until the deadline, a crash, touchdown or cancellation.
	deadline := cfg.Duration
	var runErr error
	for exec.Now() < deadline {
		if r.crashed && !cfg.KeepFlyingAfterCrash {
			break
		}
		if r.landed {
			break
		}
		if cfg.StopAfterVisits > 0 && visitsSoFar(exec, cfg.Stack) >= cfg.StopAfterVisits {
			break
		}
		stepUntil := exec.Now() + 100*time.Millisecond
		if stepUntil > deadline {
			stepUntil = deadline
		}
		if err := runSlice(ctx, exec, stepUntil, cfg); err != nil {
			if cancelled(ctx, err) {
				runErr = err
				break
			}
			return nil, err
		}
		r.sampleTrajectory()
		r.sampleBattery()
	}

	end := exec.Now()
	visits := 0
	if cfg.Stack.AppNode != nil {
		if st, ok := exec.LocalState(cfg.Stack.AppNode.Name()); ok {
			if v, ok := mission.VisitsOf(st); ok {
				visits = v
			}
		}
	}
	endEv := obs.RunEnd{T: end, TargetsVisited: visits, Battery: env.state.Battery}
	if runErr != nil {
		endEv.Err = runErr.Error()
	}
	r.emit(endEv)

	res := &Result{
		Metrics:    sink.Metrics(),
		Trajectory: r.traj,
		Switches:   exec.Switches(),
	}
	return res, runErr
}

// cancelled reports whether err is the context's cancellation surfacing.
func cancelled(ctx context.Context, err error) bool {
	return ctx.Err() != nil && errors.Is(err, ctx.Err())
}

// runSlice advances the executor, tolerating invariant violations when
// configured to monitor rather than abort (the violations are counted by the
// metrics sink from the executor's event stream).
func runSlice(ctx context.Context, exec *runtime.Executor, until time.Duration, cfg RunConfig) error {
	if !cfg.CheckInvariants {
		return exec.Run(ctx, until)
	}
	for {
		err := exec.Run(ctx, until)
		if err == nil {
			return nil
		}
		var iv *runtime.InvariantViolationError
		if errors.As(err, &iv) {
			continue
		}
		return err
	}
}

// visitsSoFar reads the surveillance app's visit counter mid-run.
func visitsSoFar(exec *runtime.Executor, st *mission.Stack) int {
	if st.AppNode == nil {
		return 0
	}
	raw, ok := exec.LocalState(st.AppNode.Name())
	if !ok {
		return 0
	}
	v, _ := mission.VisitsOf(raw)
	return v
}

// dropFilter models best-effort scheduling as burst outages: with
// probability JitterProb a firing starts an outage of 200-600 ms during
// which every firing of that node is dropped. A burst hitting the SC right
// after a disengagement reproduces the paper's crash mode. Dropped firings
// surface as obs.NodeFired{Dropped: true} events from the executor.
func (r *runner) dropFilter(ct time.Duration, name string) bool {
	if r.cfg.JitterSCOnly {
		if _, isDM := r.cfg.Stack.System.IsDM(name); !isDM {
			if _, isAC, ok := r.cfg.Stack.System.ControllerOf(name); !ok || isAC {
				return false
			}
		}
	}
	if until, out := r.outageUntil[name]; out && ct < until {
		return true
	}
	if r.rng.Float64() < r.cfg.JitterProb {
		dur := 200*time.Millisecond + time.Duration(r.rng.Int63n(int64(400*time.Millisecond)))
		r.outageUntil[name] = ct + dur
		return true
	}
	return false
}

func (r *runner) sampleTrajectory() {
	if !r.cfg.RecordTrajectory {
		return
	}
	now := r.exec.Now()
	if now-r.trajLast < r.trajEvery && len(r.traj) > 0 {
		return
	}
	r.trajLast = now
	mode := rta.ModeAC
	if pm := r.cfg.Stack.PrimitiveModule; pm != nil {
		if m, err := r.exec.Mode(pm.Name()); err == nil {
			mode = m
		}
	}
	r.traj = append(r.traj, TrajectoryPoint{
		T:    now,
		Pos:  r.env.state.Pos,
		Vel:  r.env.state.Vel,
		Mode: mode,
	})
}

// sampleBattery emits periodic obs.BatterySample events at the trajectory
// cadence — free when nobody subscribed to them (the metrics sink takes the
// final charge from RunEnd instead).
func (r *runner) sampleBattery() {
	list := r.byKind[obs.KindBatterySample]
	if len(list) == 0 {
		return
	}
	now := r.exec.Now()
	if now-r.batLast < r.trajEvery && r.batLast > 0 {
		return
	}
	r.batLast = now
	obs.Emit(list, obs.BatterySample{T: now, Charge: r.env.state.Battery})
}
