// Package sim closes the loop between an RTA system built by
// internal/mission and the drone plant: it implements the runtime's
// Environment hook (integrating the dynamics between discrete events and
// publishing the trusted state estimate) and collects the metrics the
// paper's evaluation reports — disengagements, crashes, distance flown,
// AC-control time fraction, mission timing.
//
// It also models the best-effort OS scheduling the paper identifies as the
// cause of the endurance experiment's crashes ("the DM node did switch
// control, but the SC node was not scheduled in time"): with scheduler
// jitter enabled, node firings are randomly dropped, reproducing both the
// crashes and their disappearance on an RTOS (zero jitter).
package sim

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"repro/internal/geom"
	"repro/internal/mission"
	"repro/internal/plant"
	"repro/internal/pubsub"
	"repro/internal/rta"
	"repro/internal/runtime"
)

// TrajectoryPoint is one sample of the flown trajectory.
type TrajectoryPoint struct {
	T    time.Duration
	Pos  geom.Vec3
	Vel  geom.Vec3
	Mode rta.Mode // motion-primitive module mode (ModeAC when unprotected)
}

// ModuleStats aggregates per-module switching statistics.
type ModuleStats struct {
	// Disengagements counts AC→SC switches (the SC "taking over").
	Disengagements int
	// Reengagements counts SC→AC switches (performance restored).
	Reengagements int
	// ACTime and SCTime accumulate wall-clock time spent in each mode.
	ACTime, SCTime time.Duration
}

// ACFraction returns the fraction of time the module ran its AC.
func (m ModuleStats) ACFraction() float64 {
	total := m.ACTime + m.SCTime
	if total == 0 {
		return 0
	}
	return float64(m.ACTime) / float64(total)
}

// Metrics summarises one simulation run.
type Metrics struct {
	Duration      time.Duration
	DistanceFlown float64
	Crashed       bool
	CrashTime     time.Duration
	CrashPos      geom.Vec3
	Landed        bool
	LandTime      time.Duration
	MinClearance  float64
	// Collisions counts distinct collision episodes (entries into an
	// obstacle or the ground); with KeepFlyingAfterCrash the run continues
	// through them, which is how the unprotected baselines are scored.
	Collisions     int
	TargetsVisited int
	BatteryAtEnd   float64
	// Modules maps module name to its switching statistics.
	Modules map[string]ModuleStats
	// DroppedFirings counts node firings skipped by scheduler jitter.
	DroppedFirings int
	// InvariantViolations counts φInv monitor failures (checked mode).
	InvariantViolations int
}

// TotalDisengagements sums disengagements across modules.
func (m Metrics) TotalDisengagements() int {
	n := 0
	for _, s := range m.Modules {
		n += s.Disengagements
	}
	return n
}

// RunConfig configures a closed-loop run.
type RunConfig struct {
	// Stack is the system under test.
	Stack *mission.Stack
	// Initial is the drone's initial state; Battery defaults to 1.
	Initial plant.State
	// Duration is how long to simulate.
	Duration time.Duration
	// PhysicsStep is the plant integration sub-step (default 5ms).
	PhysicsStep time.Duration
	// Seed drives sensor noise and scheduler jitter.
	Seed int64
	// JitterProb is the per-firing probability that a node enters a
	// scheduling outage (a burst of missed deadlines, 200-600 ms long) —
	// zero models an RTOS, positive values model the best-effort scheduling
	// of Section V-D, whose crashes the paper traces to "the SC node was
	// not scheduled in time for the system to recover".
	JitterProb float64
	// JitterSCOnly restricts outages to SC and DM nodes, the failure mode
	// the paper observed.
	JitterSCOnly bool
	// CheckInvariants enables the runtime φInv monitor; violations are
	// counted rather than aborting the run.
	CheckInvariants bool
	// RecordTrajectory enables trajectory sampling (costly for long runs).
	RecordTrajectory bool
	// KeepFlyingAfterCrash continues the run through collisions, counting
	// episodes instead of stopping at the first (used by the unprotected
	// baselines of Figure 12a).
	KeepFlyingAfterCrash bool
	// StopAfterVisits ends the run once the surveillance app has visited
	// this many targets (0 = run to Duration) — used by the tour-timing
	// experiment.
	StopAfterVisits int
}

// Result bundles metrics with the optional trajectory and the executor's
// switch log.
type Result struct {
	Metrics    Metrics
	Trajectory []TrajectoryPoint
	Switches   []runtime.Switch
}

// environment integrates the plant between discrete events and publishes the
// state estimate; it also detects ground contact (landing vs crash).
type environment struct {
	drone   *plant.Drone
	ws      *geom.Workspace
	state   plant.State
	step    time.Duration
	run     *runner
	groundZ float64
	// Dense topic IDs, resolved once at run setup: Advance and observe run
	// every physics sub-step (default 5 ms), so topic access goes through
	// the store's slice-backed ID path instead of name lookups.
	cmdID, stateID, wpID pubsub.TopicID
}

// resolveTopics caches the hot-path topic IDs.
func (e *environment) resolveTopics(topics *pubsub.Store) error {
	for _, t := range []struct {
		name pubsub.TopicName
		id   *pubsub.TopicID
	}{
		{mission.TopicCmd, &e.cmdID},
		{mission.TopicDroneState, &e.stateID},
		{mission.TopicWaypoint, &e.wpID},
	} {
		id, err := topics.ID(t.name)
		if err != nil {
			return err
		}
		*t.id = id
	}
	return nil
}

func (e *environment) Advance(prev, now time.Duration, topics *pubsub.Store) error {
	for t := prev; t < now; {
		dt := e.step
		if t+dt > now {
			dt = now - t
		}
		cmd := geom.Vec3{}
		if v, ok := topics.GetID(e.cmdID).(geom.Vec3); ok {
			cmd = v
		}
		before := e.state
		e.state = e.drone.Step(e.state, cmd, dt)
		t += dt
		e.run.observe(t, before, e.state, topics)
		if e.run.crashed && !e.run.cfg.KeepFlyingAfterCrash {
			break
		}
	}
	topics.SetID(e.stateID, e.drone.Observe(e.state))
	return nil
}

// runner owns the mutable run bookkeeping.
type runner struct {
	cfg         RunConfig
	ws          *geom.Workspace
	metrics     Metrics
	crashed     bool
	inCollision bool
	traj        []TrajectoryPoint
	lastPos     geom.Vec3
	havePos     bool
	rng         *rand.Rand
	// outageUntil tracks per-node scheduling outages (jitter model).
	outageUntil map[string]time.Duration
	// mode tracking for AC-time accounting
	modeSince map[string]time.Duration
	modeNow   map[string]rta.Mode
	exec      *runtime.Executor
	env       *environment
	trajEvery time.Duration
	trajLast  time.Duration
}

// observe is called after every physics sub-step.
func (r *runner) observe(t time.Duration, before, after plant.State, topics *pubsub.Store) {
	if r.havePos {
		r.metrics.DistanceFlown += after.Pos.Dist(r.lastPos)
	}
	r.lastPos = after.Pos
	r.havePos = true

	if c := r.ws.Clearance(after.Pos); !after.Landed && (r.metrics.MinClearance == 0 || c < r.metrics.MinClearance) {
		r.metrics.MinClearance = c
	}

	// Ground contact: intended landing vs crash.
	if !after.Landed && after.Pos.Z <= 0 {
		if wp, ok := topics.GetID(r.env.wpID).(mission.Waypoint); ok && wp.Valid && wp.Land && after.Vel.Norm() < 1.0 {
			r.env.state = plant.Land(after)
			r.markLanded(t)
			return
		}
		r.markCrash(t, after.Pos)
		return
	}
	// Intentional touchdown above ground level.
	if !after.Landed {
		if wp, ok := topics.GetID(r.env.wpID).(mission.Waypoint); ok && wp.Valid && wp.Land &&
			after.Pos.Z <= r.env.groundZ && after.Vel.Norm() < 1.2 {
			r.env.state = plant.Land(after)
			r.markLanded(t)
			return
		}
	}
	if plant.Crashed(after, r.ws) {
		r.markCrash(t, after.Pos)
	} else {
		r.inCollision = false
	}
}

func (r *runner) markCrash(t time.Duration, pos geom.Vec3) {
	if !r.inCollision {
		r.inCollision = true
		r.metrics.Collisions++
	}
	if r.crashed {
		return
	}
	r.crashed = true
	r.metrics.Crashed = true
	r.metrics.CrashTime = t
	r.metrics.CrashPos = pos
}

func (r *runner) markLanded(t time.Duration) {
	if !r.metrics.Landed {
		r.metrics.Landed = true
		r.metrics.LandTime = t
	}
}

// Run executes one closed-loop simulation.
func Run(cfg RunConfig) (*Result, error) {
	if cfg.Stack == nil {
		return nil, fmt.Errorf("sim: nil stack")
	}
	if cfg.Duration <= 0 {
		return nil, fmt.Errorf("sim: duration %v must be positive", cfg.Duration)
	}
	if cfg.PhysicsStep <= 0 {
		cfg.PhysicsStep = 5 * time.Millisecond
	}
	if cfg.Initial.Battery == 0 {
		cfg.Initial.Battery = 1
	}
	ws := cfg.Stack.Config.Workspace
	drone, err := plant.NewDrone(cfg.Stack.Config.PlantParams, cfg.Seed)
	if err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}

	r := &runner{
		cfg:         cfg,
		ws:          ws,
		rng:         rand.New(rand.NewSource(cfg.Seed + 7)),
		outageUntil: make(map[string]time.Duration),
		modeSince:   make(map[string]time.Duration),
		modeNow:     make(map[string]rta.Mode),
		trajEvery:   50 * time.Millisecond,
	}
	r.metrics.Modules = make(map[string]ModuleStats)
	env := &environment{
		drone:   drone,
		ws:      ws,
		state:   cfg.Initial,
		step:    cfg.PhysicsStep,
		run:     r,
		groundZ: drone.Params().GroundZ,
	}
	r.env = env

	opts := []runtime.Option{
		runtime.WithEnvironment(env),
		runtime.WithSwitchHook(r.onSwitch),
	}
	if cfg.JitterProb > 0 {
		opts = append(opts, runtime.WithDropFilter(r.dropFilter))
	}
	exec, err := runtime.New(
		cfg.Stack.System,
		[]pubsub.Topic{{Name: mission.TopicDroneState, Default: cfg.Initial}},
		opts...,
	)
	if err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	r.exec = exec
	if err := env.resolveTopics(exec.Topics()); err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	for _, m := range cfg.Stack.System.Modules() {
		r.modeNow[m.Name()] = rta.ModeSC
		r.modeSince[m.Name()] = 0
	}

	// Main loop: run until the deadline, a crash, or touchdown.
	deadline := cfg.Duration
	for exec.Now() < deadline {
		if r.crashed && !cfg.KeepFlyingAfterCrash {
			break
		}
		if r.metrics.Landed {
			break
		}
		if cfg.StopAfterVisits > 0 && visitsSoFar(exec, cfg.Stack) >= cfg.StopAfterVisits {
			break
		}
		stepUntil := exec.Now() + 100*time.Millisecond
		if stepUntil > deadline {
			stepUntil = deadline
		}
		if err := runSlice(exec, stepUntil, r, cfg); err != nil {
			return nil, err
		}
		r.sampleTrajectory()
	}

	end := exec.Now()
	r.metrics.Duration = end
	r.metrics.BatteryAtEnd = env.state.Battery
	for name, since := range r.modeSince {
		r.accountMode(name, since, end, r.modeNow[name])
	}
	if cfg.Stack.AppNode != nil {
		if st, ok := exec.LocalState(cfg.Stack.AppNode.Name()); ok {
			if visits, ok := mission.VisitsOf(st); ok {
				r.metrics.TargetsVisited = visits
			}
		}
	}
	res := &Result{
		Metrics:    r.metrics,
		Trajectory: r.traj,
		Switches:   exec.Switches(),
	}
	return res, nil
}

// runSlice advances the executor, tolerating (and counting) invariant
// violations when configured to monitor rather than abort.
func runSlice(exec *runtime.Executor, until time.Duration, r *runner, cfg RunConfig) error {
	if !cfg.CheckInvariants {
		return exec.RunUntil(until)
	}
	for {
		err := exec.RunUntil(until)
		if err == nil {
			return nil
		}
		var iv *runtime.InvariantViolationError
		if asInvariantViolation(err, &iv) {
			r.metrics.InvariantViolations++
			continue
		}
		return err
	}
}

func asInvariantViolation(err error, target **runtime.InvariantViolationError) bool {
	return errors.As(err, target)
}

// visitsSoFar reads the surveillance app's visit counter mid-run.
func visitsSoFar(exec *runtime.Executor, st *mission.Stack) int {
	if st.AppNode == nil {
		return 0
	}
	raw, ok := exec.LocalState(st.AppNode.Name())
	if !ok {
		return 0
	}
	v, _ := mission.VisitsOf(raw)
	return v
}

func (r *runner) onSwitch(sw runtime.Switch) {
	stats := r.metrics.Modules[sw.Module]
	if sw.To == rta.ModeSC {
		stats.Disengagements++
	} else {
		stats.Reengagements++
	}
	r.metrics.Modules[sw.Module] = stats
	r.accountMode(sw.Module, r.modeSince[sw.Module], sw.Time, sw.From)
	r.modeSince[sw.Module] = sw.Time
	r.modeNow[sw.Module] = sw.To
}

func (r *runner) accountMode(module string, from, to time.Duration, mode rta.Mode) {
	if to <= from {
		return
	}
	stats := r.metrics.Modules[module]
	if mode == rta.ModeAC {
		stats.ACTime += to - from
	} else {
		stats.SCTime += to - from
	}
	r.metrics.Modules[module] = stats
}

// dropFilter models best-effort scheduling as burst outages: with
// probability JitterProb a firing starts an outage of 200-600 ms during
// which every firing of that node is dropped. A burst hitting the SC right
// after a disengagement reproduces the paper's crash mode.
func (r *runner) dropFilter(ct time.Duration, name string) bool {
	if r.cfg.JitterSCOnly {
		if _, isDM := r.cfg.Stack.System.IsDM(name); !isDM {
			if _, isAC, ok := r.cfg.Stack.System.ControllerOf(name); !ok || isAC {
				return false
			}
		}
	}
	if until, out := r.outageUntil[name]; out && ct < until {
		r.metrics.DroppedFirings++
		return true
	}
	if r.rng.Float64() < r.cfg.JitterProb {
		dur := 200*time.Millisecond + time.Duration(r.rng.Int63n(int64(400*time.Millisecond)))
		r.outageUntil[name] = ct + dur
		r.metrics.DroppedFirings++
		return true
	}
	return false
}

func (r *runner) sampleTrajectory() {
	if !r.cfg.RecordTrajectory {
		return
	}
	now := r.exec.Now()
	if now-r.trajLast < r.trajEvery && len(r.traj) > 0 {
		return
	}
	r.trajLast = now
	mode := rta.ModeAC
	if pm := r.cfg.Stack.PrimitiveModule; pm != nil {
		if m, err := r.exec.Mode(pm.Name()); err == nil {
			mode = m
		}
	}
	r.traj = append(r.traj, TrajectoryPoint{
		T:    now,
		Pos:  r.env.state.Pos,
		Vel:  r.env.state.Vel,
		Mode: mode,
	})
}
