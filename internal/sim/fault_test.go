package sim

import (
	"testing"
	"time"

	"repro/internal/controller"
	"repro/internal/geom"
	"repro/internal/mission"
)

// faultWindows drives the AC full-thrust toward the obstacle field several
// times during the mission — the paper's fault-injection experiment.
func faultWindows() []controller.Fault {
	var fs []controller.Fault
	for i := 0; i < 6; i++ {
		start := time.Duration(8+10*i) * time.Second
		fs = append(fs, controller.Fault{
			Kind:  controller.FaultFullThrust,
			Start: start,
			End:   start + 1500*time.Millisecond,
			Param: geom.V(1, 1, 0),
		})
	}
	return fs
}

// TestRTASurvivesInjectedFaults: with the RTA module, injected full-thrust
// faults cause disengagements but no crash.
func TestRTASurvivesInjectedFaults(t *testing.T) {
	cfg := mission.DefaultStackConfig(2)
	cfg.ACFaults = faultWindows()
	cfg.App = mission.AppConfig{Points: squareTour()}
	st, err := mission.Build(cfg)
	if err != nil {
		t.Fatalf("build stack: %v", err)
	}
	res, err := Run(RunConfig{
		Stack:           st,
		Initial:         initialAt(geom.V(3, 3, 2)),
		Duration:        70 * time.Second,
		Seed:            2,
		CheckInvariants: true,
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	m := res.Metrics
	t.Logf("dist=%.1fm targets=%d crash=%v disengagements=%d acFrac=%.2f",
		m.DistanceFlown, m.TargetsVisited, m.Crashed,
		m.Modules["safe-motion-primitive"].Disengagements,
		m.Modules["safe-motion-primitive"].ACFraction())
	if m.Crashed {
		t.Fatalf("RTA-protected drone crashed at t=%v pos=%v", m.CrashTime, m.CrashPos)
	}
	if m.Modules["safe-motion-primitive"].Disengagements == 0 {
		t.Fatalf("expected the motion-primitive SC to take over during faults")
	}
}

// TestACOnlyCrashesUnderFaults: the same faults without RTA protection crash
// the drone — the contrast the paper's evaluation draws.
func TestACOnlyCrashesUnderFaults(t *testing.T) {
	cfg := mission.DefaultStackConfig(2)
	cfg.ACFaults = faultWindows()
	cfg.Protection = mission.ProtectACOnly
	cfg.App = mission.AppConfig{Points: squareTour()}
	st, err := mission.Build(cfg)
	if err != nil {
		t.Fatalf("build stack: %v", err)
	}
	res, err := Run(RunConfig{
		Stack:    st,
		Initial:  initialAt(geom.V(3, 3, 2)),
		Duration: 70 * time.Second,
		Seed:     2,
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	t.Logf("unprotected: dist=%.1fm crash=%v crashPos=%v",
		res.Metrics.DistanceFlown, res.Metrics.Crashed, res.Metrics.CrashPos)
	if !res.Metrics.Crashed {
		t.Fatalf("expected the unprotected drone to crash under injected faults")
	}
}

func squareTour() []geom.Vec3 {
	return []geom.Vec3{
		geom.V(3, 3, 2),
		geom.V(46, 3, 2),
		geom.V(46, 46, 2),
		geom.V(3, 46, 2),
	}
}
