package sim

import (
	"testing"
	"time"

	"repro/internal/geom"
	"repro/internal/mission"
	"repro/internal/node"
	"repro/internal/plant"
	"repro/internal/pubsub"
	"repro/internal/rta"
)

// brokenStack hand-assembles a minimal mission.Stack around an RTA module
// whose φsafe predicate is rigged to fail at every DM sampling instant. The
// real mission modules can never violate φInv (that is Theorem 3.1, and the
// fault-fuzzing tests hold them to it), so proving the monitor is actually
// installed requires a module that is wrong by construction.
func brokenStack(t *testing.T) *mission.Stack {
	t.Helper()
	hover := func(st node.State, _ pubsub.Valuation) (node.State, pubsub.Valuation, error) {
		return st, pubsub.Valuation{mission.TopicCmd: geom.Vec3{}}, nil
	}
	mk := func(name string) *node.Node {
		n, err := node.New(name, 20*time.Millisecond,
			[]pubsub.TopicName{mission.TopicDroneState}, []pubsub.TopicName{mission.TopicCmd}, hover)
		if err != nil {
			t.Fatal(err)
		}
		return n
	}
	mod, err := rta.NewModule(rta.Decl{
		Name:      "broken-module",
		AC:        mk("broken.ac"),
		SC:        mk("broken.sc"),
		Delta:     100 * time.Millisecond,
		TTF2Delta: func(pubsub.Valuation) bool { return false },
		InSafer:   func(pubsub.Valuation) bool { return false },
		Safe:      func(pubsub.Valuation) bool { return false }, // always violated
	})
	if err != nil {
		t.Fatal(err)
	}
	// The simulator's environment resolves the waypoint topic at setup, so
	// some node must declare it.
	wp, err := node.New("wp", 500*time.Millisecond, nil,
		[]pubsub.TopicName{mission.TopicWaypoint},
		func(st node.State, _ pubsub.Valuation) (node.State, pubsub.Valuation, error) {
			return st, pubsub.Valuation{mission.TopicWaypoint: mission.Waypoint{}}, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	sys, err := rta.NewSystem([]*rta.Module{mod}, []*node.Node{wp})
	if err != nil {
		t.Fatal(err)
	}
	ws := geom.CityWorkspace()
	return &mission.Stack{
		System: sys,
		Config: mission.StackConfig{Workspace: ws, PlantParams: plant.DefaultParams()},
	}
}

// TestCheckInvariantsInstallsMonitor is the regression test for the latent
// wiring bug: sim documented CheckInvariants as enabling the φInv monitor but
// never installed runtime.WithInvariantChecking, so violations were silently
// undetectable. With the flag set, violations must be counted (and tolerated,
// not aborted on); with it clear, the same run must count none.
func TestCheckInvariantsInstallsMonitor(t *testing.T) {
	run := func(check bool) Metrics {
		res, err := Run(RunConfig{
			Stack:           brokenStack(t),
			Initial:         plant.State{Pos: geom.V(3, 3, 2), Battery: 1},
			Duration:        2 * time.Second,
			Seed:            1,
			CheckInvariants: check,
		})
		if err != nil {
			t.Fatalf("run(check=%v): %v", check, err)
		}
		return res.Metrics
	}
	if m := run(true); m.InvariantViolations == 0 {
		t.Error("CheckInvariants=true counted no φInv violations on a module whose φsafe always fails")
	}
	if m := run(false); m.InvariantViolations != 0 {
		t.Errorf("CheckInvariants=false counted %d φInv violations, want 0", m.InvariantViolations)
	}
}
