package sim

import (
	"testing"
	"time"

	"repro/internal/controller"
	"repro/internal/geom"
	"repro/internal/mission"
	"repro/internal/plan"
	"repro/internal/plant"
)

func TestRunValidation(t *testing.T) {
	if _, err := Run(RunConfig{}); err == nil {
		t.Error("nil stack accepted")
	}
	cfg := mission.DefaultStackConfig(1)
	cfg.App = mission.AppConfig{Points: squareTour()}
	st, err := mission.Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(RunConfig{Stack: st}); err == nil {
		t.Error("zero duration accepted")
	}
}

// TestSCOnlyIsSafeButSlow: the safe controller alone never crashes and is
// much slower than the full stack — the right-hand column of Figure 12a.
func TestSCOnlyIsSafeButSlow(t *testing.T) {
	cfg := mission.DefaultStackConfig(3)
	cfg.Protection = mission.ProtectSCOnly
	cfg.WithPlannerModule = false
	cfg.WithBatteryModule = false
	cfg.App = mission.AppConfig{Points: squareTour()}
	st, err := mission.Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(RunConfig{
		Stack:    st,
		Initial:  initialAt(geom.V(3, 3, 2)),
		Duration: 60 * time.Second,
		Seed:     3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.Crashed {
		t.Fatal("SC-only crashed")
	}
	if res.Metrics.DistanceFlown < 5 {
		t.Errorf("SC-only barely moved: %.1f m", res.Metrics.DistanceFlown)
	}
}

// TestLearnedControllerUnderRTA: the data-driven primitive with corrupted
// cells stays safe under the RTA module.
func TestLearnedControllerUnderRTA(t *testing.T) {
	cfg := mission.DefaultStackConfig(4)
	cfg.AC = mission.ACLearned
	cfg.LearnedBadFraction = 0.25
	cfg.App = mission.AppConfig{Points: squareTour()}
	st, err := mission.Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(RunConfig{
		Stack:           st,
		Initial:         initialAt(geom.V(3, 3, 2)),
		Duration:        90 * time.Second,
		Seed:            4,
		CheckInvariants: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.Crashed {
		t.Fatalf("RTA-protected learned controller crashed at %v", res.Metrics.CrashPos)
	}
	if res.Metrics.TargetsVisited == 0 {
		t.Error("no progress under the learned controller")
	}
}

// TestBuggyPlannerUnderRTA: the Section V-C property as a test — the drone
// flying on the bug-injected RRT* never collides when the planner module is
// in place.
func TestBuggyPlannerUnderRTA(t *testing.T) {
	cfg := mission.DefaultStackConfig(5)
	cfg.PlannerBug = plan.BugSkipEdgeCheck
	cfg.PlannerBugRate = 0.35
	cfg.App = mission.AppConfig{Random: true}
	st, err := mission.Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(RunConfig{
		Stack:           st,
		Initial:         initialAt(geom.V(3, 3, 2)),
		Duration:        60 * time.Second,
		Seed:            5,
		CheckInvariants: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.Crashed {
		t.Fatalf("crash with RTA-protected buggy planner at %v", res.Metrics.CrashPos)
	}
	if res.Metrics.Modules["safe-motion-planner"].Disengagements == 0 {
		t.Error("the planner DM never caught a bad plan at 35% bug rate")
	}
}

// TestJitterCausesDrops: the burst-outage scheduler model actually drops
// firings, and an RTOS-like run (zero jitter) drops none.
func TestJitterCausesDrops(t *testing.T) {
	cfg := mission.DefaultStackConfig(6)
	cfg.App = mission.AppConfig{Points: squareTour()}
	for i := 0; i < 4; i++ {
		start := time.Duration(8+11*i) * time.Second
		cfg.ACFaults = append(cfg.ACFaults, controller.Fault{
			Kind:  controller.FaultFullThrust,
			Start: start,
			End:   start + 1200*time.Millisecond,
			Param: geom.V(1, 0.4, 0),
		})
	}
	st, err := mission.Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	withJitter, err := Run(RunConfig{
		Stack:        st,
		Initial:      initialAt(geom.V(3, 3, 2)),
		Duration:     50 * time.Second,
		Seed:         6,
		JitterProb:   0.005,
		JitterSCOnly: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if withJitter.Metrics.DroppedFirings == 0 {
		t.Error("jitter produced no dropped firings")
	}

	st2, err := mission.Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rtos, err := Run(RunConfig{
		Stack:    st2,
		Initial:  initialAt(geom.V(3, 3, 2)),
		Duration: 50 * time.Second,
		Seed:     6,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rtos.Metrics.DroppedFirings != 0 {
		t.Error("RTOS run dropped firings")
	}
	if rtos.Metrics.Crashed {
		t.Error("RTOS run crashed")
	}
}

// TestBatteryLandingUnderFastDrain is the Figure 12c scenario as a test.
func TestBatteryLandingUnderFastDrain(t *testing.T) {
	params := plant.DefaultParams()
	params.IdleDrainPerSec *= 30
	params.AccelDrainPerSec *= 30
	cfg := mission.DefaultStackConfig(7)
	cfg.PlantParams = params
	cfg.App = mission.AppConfig{Points: squareTour()}
	st, err := mission.Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(RunConfig{
		Stack:           st,
		Initial:         plant.State{Pos: geom.V(3, 3, 2), Battery: 0.9},
		Duration:        5 * time.Minute,
		Seed:            7,
		CheckInvariants: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	m := res.Metrics
	if m.Crashed {
		t.Fatalf("φbat violated: crash at t=%v", m.CrashTime)
	}
	if !m.Landed {
		t.Fatal("drone did not land")
	}
	if m.BatteryAtEnd <= 0 {
		t.Error("battery hit zero")
	}
	if m.Modules["battery-safety"].Disengagements != 1 {
		t.Errorf("battery disengagements = %d, want 1", m.Modules["battery-safety"].Disengagements)
	}
}

// TestTrajectoryRecording: sampling produces a monotone, plausible trace.
func TestTrajectoryRecording(t *testing.T) {
	cfg := mission.DefaultStackConfig(8)
	cfg.App = mission.AppConfig{Points: squareTour()}
	st, err := mission.Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(RunConfig{
		Stack:            st,
		Initial:          initialAt(geom.V(3, 3, 2)),
		Duration:         10 * time.Second,
		Seed:             8,
		RecordTrajectory: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trajectory) < 50 {
		t.Fatalf("trajectory has %d samples", len(res.Trajectory))
	}
	for i := 1; i < len(res.Trajectory); i++ {
		if res.Trajectory[i].T < res.Trajectory[i-1].T {
			t.Fatal("trajectory time not monotone")
		}
	}
}

func TestModuleStatsACFraction(t *testing.T) {
	s := ModuleStats{ACTime: 3 * time.Second, SCTime: time.Second}
	if got := s.ACFraction(); got != 0.75 {
		t.Errorf("ACFraction = %v", got)
	}
	if got := (ModuleStats{}).ACFraction(); got != 0 {
		t.Errorf("empty ACFraction = %v", got)
	}
}
