package sim

import (
	"testing"
	"time"

	"repro/internal/geom"
	"repro/internal/mission"
)

// TestSmokeSurveillance runs the full RTA-protected stack for a short
// mission and checks the drone makes progress without crashing.
func TestSmokeSurveillance(t *testing.T) {
	cfg := mission.DefaultStackConfig(1)
	cfg.App = mission.AppConfig{
		Points: []geom.Vec3{
			geom.V(3, 3, 2),
			geom.V(46, 3, 2),
			geom.V(46, 46, 2),
			geom.V(3, 46, 2),
		},
	}
	st, err := mission.Build(cfg)
	if err != nil {
		t.Fatalf("build stack: %v", err)
	}
	res, err := Run(RunConfig{
		Stack:            st,
		Initial:          initialAt(geom.V(3, 3, 2)),
		Duration:         60 * time.Second,
		Seed:             1,
		CheckInvariants:  true,
		RecordTrajectory: true,
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	m := res.Metrics
	t.Logf("duration=%v dist=%.1fm targets=%d crash=%v minClear=%.2f drops=%d invViol=%d",
		m.Duration, m.DistanceFlown, m.TargetsVisited, m.Crashed, m.MinClearance, m.DroppedFirings, m.InvariantViolations)
	for name, s := range m.Modules {
		t.Logf("module %s: dis=%d re=%d acFrac=%.2f", name, s.Disengagements, s.Reengagements, s.ACFraction())
	}
	if m.Crashed {
		t.Fatalf("drone crashed at t=%v pos=%v", m.CrashTime, m.CrashPos)
	}
	if m.TargetsVisited < 1 {
		t.Fatalf("no surveillance targets visited (dist flown %.1fm)", m.DistanceFlown)
	}
	if m.DistanceFlown < 10 {
		t.Fatalf("drone barely moved: %.2fm", m.DistanceFlown)
	}
}
