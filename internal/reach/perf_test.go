package reach

import (
	"testing"
	"time"

	"repro/internal/geom"
)

func perfAnalyzer(tb testing.TB) *Analyzer {
	tb.Helper()
	ws := geom.CityWorkspace()
	b := Bounds{MaxAccel: 4.0, MaxVel: 6.0, BrakeDecel: 3.2}
	a, err := NewAnalyzer(ws, b, 0.45, 50*time.Millisecond, 1.3)
	if err != nil {
		tb.Fatal(err)
	}
	return a
}

// TestAnalyzerChecksAllocFree pins the DM-rate hot path: once the analyzer
// holds its resolved index, ttf2Δ / φsafe / φsafer checks must not allocate.
func TestAnalyzerChecksAllocFree(t *testing.T) {
	a := perfAnalyzer(t)
	pos, vel := geom.V(17.5, 17.0, 1.2), geom.V(2.0, -1.5, 0.3)
	sink := false
	allocs := testing.AllocsPerRun(200, func() {
		sink = a.Safe(pos, vel) || sink
		sink = a.TTF2Delta(pos, vel) || sink
		sink = a.InSafer(pos, vel) || sink
	})
	_ = sink
	if allocs != 0 {
		t.Fatalf("analyzer checks allocate %.1f allocs/op, want 0", allocs)
	}
}

// TestAnalyzerMatchesLinearWorkspace re-derives every check from the
// workspace's linear-scan API and requires agreement over a position sweep,
// holding the index-backed analyzer to the pre-index semantics.
func TestAnalyzerMatchesLinearWorkspace(t *testing.T) {
	a := perfAnalyzer(t)
	ws := a.Workspace()
	for xi := 0; xi < 50; xi++ {
		for yi := 0; yi < 50; yi++ {
			pos := geom.V(float64(xi)+0.5, float64(yi)+0.5, 1.2)
			vel := geom.V(float64(xi%7)-3, float64(yi%5)-2, 0.4)
			if got, want := a.Safe(pos, vel), ws.BoxFree(BrakeBox(pos, vel, a.Bounds()), a.Margin()); got != want {
				t.Fatalf("Safe(%v, %v) = %v, workspace says %v", pos, vel, got, want)
			}
			if got, want := a.TTF2Delta(pos, vel), !ws.BoxFree(StopBox(pos, vel, a.Bounds(), 2*a.Delta()), a.Margin()); got != want {
				t.Fatalf("TTF2Delta(%v, %v) = %v, workspace says %v", pos, vel, got, want)
			}
			if got, want := a.InSafer(pos, vel), ws.BoxFree(StopBox(pos, vel, a.Bounds(), a.SaferHorizon()), a.Margin()); got != want {
				t.Fatalf("InSafer(%v, %v) = %v, workspace says %v", pos, vel, got, want)
			}
		}
	}
}

func BenchmarkAnalyzerTTF2Delta(b *testing.B) {
	a := perfAnalyzer(b)
	pos, vel := geom.V(17.5, 17.0, 1.2), geom.V(2.0, -1.5, 0.3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.TTF2Delta(pos, vel)
	}
}

func BenchmarkAnalyzerClassify(b *testing.B) {
	a := perfAnalyzer(b)
	pos, vel := geom.V(30.0, 24.0, 2.0), geom.V(-1.0, 2.0, 0.0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Classify(pos, vel)
	}
}
