package reach

import (
	"container/heap"
	"fmt"
	"math"
	"time"

	"repro/internal/geom"
)

// BackwardReachSet is the grid-based analogue of the Level-Set Toolbox
// computation used in Section V-A: for every grid cell it stores the minimum
// time in which the plant, moving at up to vmax, can reach an occupied
// (unsafe) cell. The set of cells with time-to-unsafe ≤ 2Δ is the backward
// reachable set from ¬φsafe in 2Δ (the yellow region of Figure 12b); its
// complement intersected with the free space approximates R(φsafe, 2Δ), the
// green φsafer region.
//
// It is computed with a Dijkstra sweep over the 26-connected grid, with edge
// costs equal to Euclidean cell-centre distance divided by vmax — a
// fast-marching-style approximation of the continuous minimum-time-to-reach
// value function.
type BackwardReachSet struct {
	grid   *geom.Grid
	vmax   float64
	timeTo []float64 // seconds to reach an occupied cell; +Inf if unreachable
}

// NewBackwardReachSet computes the time-to-unsafe field over the grid.
func NewBackwardReachSet(grid *geom.Grid, vmax float64) (*BackwardReachSet, error) {
	if grid == nil {
		return nil, fmt.Errorf("nil grid")
	}
	if vmax <= 0 {
		return nil, fmt.Errorf("vmax %v must be positive", vmax)
	}
	b := &BackwardReachSet{
		grid:   grid,
		vmax:   vmax,
		timeTo: make([]float64, grid.NumCells()),
	}
	b.compute()
	return b, nil
}

type brsItem struct {
	cell geom.Cell
	t    float64
}

type brsHeap []brsItem

func (h brsHeap) Len() int           { return len(h) }
func (h brsHeap) Less(i, j int) bool { return h[i].t < h[j].t }
func (h brsHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *brsHeap) Push(x any)        { *h = append(*h, x.(brsItem)) }
func (h *brsHeap) Pop() any          { old := *h; n := len(old); it := old[n-1]; *h = old[:n-1]; return it }

func (b *BackwardReachSet) compute() {
	nx, ny, nz := b.grid.Dims()
	for i := range b.timeTo {
		b.timeTo[i] = math.Inf(1)
	}
	var pq brsHeap
	for z := 0; z < nz; z++ {
		for y := 0; y < ny; y++ {
			for x := 0; x < nx; x++ {
				c := geom.Cell{X: x, Y: y, Z: z}
				if b.grid.Occupied(c) {
					i, _ := b.grid.Index(c)
					b.timeTo[i] = 0
					pq = append(pq, brsItem{cell: c, t: 0})
				}
			}
		}
	}
	heap.Init(&pq)
	res := b.grid.Resolution()
	var nbuf []geom.Cell
	for pq.Len() > 0 {
		it := heap.Pop(&pq).(brsItem)
		ci, _ := b.grid.Index(it.cell)
		if it.t > b.timeTo[ci] {
			continue // stale entry
		}
		nbuf = b.grid.Neighbors26(it.cell, nbuf[:0])
		for _, n := range nbuf {
			dx := float64(n.X - it.cell.X)
			dy := float64(n.Y - it.cell.Y)
			dz := float64(n.Z - it.cell.Z)
			step := res * math.Sqrt(dx*dx+dy*dy+dz*dz) / b.vmax
			ni, _ := b.grid.Index(n)
			if nt := it.t + step; nt < b.timeTo[ni] {
				b.timeTo[ni] = nt
				heap.Push(&pq, brsItem{cell: n, t: nt})
			}
		}
	}
}

// TimeToUnsafe returns the minimum time (seconds) in which the plant can
// reach an unsafe cell from p, and +Inf when unreachable. Points outside the
// grid report zero (the boundary is unsafe).
func (b *BackwardReachSet) TimeToUnsafe(p geom.Vec3) float64 {
	c := b.grid.CellOf(p)
	i, ok := b.grid.Index(c)
	if !ok {
		return 0
	}
	return b.timeTo[i]
}

// CanEscapeWithin reports whether the plant can leave the safe region within
// t starting from p — the grid analogue of Reach(s, *, t) ⊄ φsafe for a
// velocity-bounded plant.
func (b *BackwardReachSet) CanEscapeWithin(p geom.Vec3, t time.Duration) bool {
	return b.TimeToUnsafe(p) <= t.Seconds()
}

// FractionEscapable returns the fraction of free cells whose time-to-unsafe
// is at most t — a summary statistic used by the Figure 12b bench to report
// the relative sizes of the yellow/green regions.
func (b *BackwardReachSet) FractionEscapable(t time.Duration) float64 {
	free, esc := 0, 0
	sec := t.Seconds()
	nx, ny, nz := b.grid.Dims()
	for z := 0; z < nz; z++ {
		for y := 0; y < ny; y++ {
			for x := 0; x < nx; x++ {
				c := geom.Cell{X: x, Y: y, Z: z}
				if b.grid.Occupied(c) {
					continue
				}
				free++
				i, _ := b.grid.Index(c)
				if b.timeTo[i] <= sec {
					esc++
				}
			}
		}
	}
	if free == 0 {
		return 0
	}
	return float64(esc) / float64(free)
}
