package reach

import (
	"strings"
	"testing"
	"time"

	"repro/internal/geom"
)

// brakingStep is a minimal certified-safe closed loop: brake each axis at
// the guaranteed deceleration, hover once stopped. φsafe = BrakeBox free is
// invariant under it by construction.
func brakingStep(b Bounds, period time.Duration) SCStepFunc {
	return func(pos, vel geom.Vec3) (geom.Vec3, geom.Vec3) {
		h := period.Seconds()
		brake := func(v float64) float64 {
			a := -v / h
			if a > b.BrakeDecel {
				a = b.BrakeDecel
			}
			if a < -b.BrakeDecel {
				a = -b.BrakeDecel
			}
			return a
		}
		acc := geom.V(brake(vel.X), brake(vel.Y), brake(vel.Z))
		vmax := geom.V(b.MaxVel, b.MaxVel, b.MaxVel)
		nv := vel.Add(acc.Scale(h)).ClampBox(vmax.Neg(), vmax)
		return pos.Add(nv.Scale(h)), nv
	}
}

// runawayStep violates (P2a): it accelerates along +X forever.
func runawayStep(b Bounds, period time.Duration) SCStepFunc {
	return func(pos, vel geom.Vec3) (geom.Vec3, geom.Vec3) {
		h := period.Seconds()
		vmax := geom.V(b.MaxVel, b.MaxVel, b.MaxVel)
		nv := vel.Add(geom.V(b.MaxAccel, 0, 0).Scale(h)).ClampBox(vmax.Neg(), vmax)
		return pos.Add(nv.Scale(h)), nv
	}
}

func certAnalyzer(t *testing.T) *Analyzer {
	t.Helper()
	ws, err := geom.NewWorkspace(
		geom.Box(geom.V(0, 0, 0), geom.V(30, 30, 10)),
		[]geom.AABB{geom.Box(geom.V(12, 12, 0), geom.V(18, 18, 8))},
	)
	if err != nil {
		t.Fatal(err)
	}
	an, err := NewAnalyzer(ws, testBounds(), 0.4, 100*time.Millisecond, 2)
	if err != nil {
		t.Fatal(err)
	}
	return an
}

func TestNewCertificateValidation(t *testing.T) {
	an := certAnalyzer(t)
	step := brakingStep(an.Bounds(), 20*time.Millisecond)
	if _, err := NewCertificate(CertConfig{SCStep: step, SCPeriod: 20 * time.Millisecond, Samples: 1}); err == nil {
		t.Error("nil analyzer accepted")
	}
	if _, err := NewCertificate(CertConfig{Analyzer: an, SCPeriod: 20 * time.Millisecond, Samples: 1}); err == nil {
		t.Error("nil SC step accepted")
	}
	if _, err := NewCertificate(CertConfig{Analyzer: an, SCStep: step, SCPeriod: time.Second, Samples: 1}); err == nil {
		t.Error("SC period exceeding Δ accepted (violates P1a)")
	}
	if _, err := NewCertificate(CertConfig{Analyzer: an, SCStep: step, SCPeriod: 20 * time.Millisecond, Samples: 0}); err == nil {
		t.Error("zero samples accepted")
	}
}

func TestCertificateP2aBrakingController(t *testing.T) {
	an := certAnalyzer(t)
	cert, err := NewCertificate(CertConfig{
		Analyzer: an,
		SCStep:   brakingStep(an.Bounds(), 20*time.Millisecond),
		SCPeriod: 20 * time.Millisecond,
		Samples:  150,
		Seed:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := cert.CheckP2a(); err != nil {
		t.Errorf("(P2a) failed for the braking controller: %v", err)
	}
}

func TestCertificateP2aCatchesRunaway(t *testing.T) {
	an := certAnalyzer(t)
	cert, err := NewCertificate(CertConfig{
		Analyzer: an,
		SCStep:   runawayStep(an.Bounds(), 20*time.Millisecond),
		SCPeriod: 20 * time.Millisecond,
		Samples:  100,
		Seed:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	err = cert.CheckP2a()
	if err == nil {
		t.Fatal("(P2a) accepted a runaway controller")
	}
	if !strings.Contains(err.Error(), "left φsafe") {
		t.Errorf("unexpected (P2a) error: %v", err)
	}
}

func TestCertificateP3Construction(t *testing.T) {
	an := certAnalyzer(t)
	cert, err := NewCertificate(CertConfig{
		Analyzer: an,
		SCStep:   brakingStep(an.Bounds(), 20*time.Millisecond),
		SCPeriod: 20 * time.Millisecond,
		Samples:  80,
		Seed:     2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := cert.CheckP3(); err != nil {
		t.Errorf("(P3) failed although φsafer = stop-box construction guarantees it: %v", err)
	}
}

func TestStaticCertificate(t *testing.T) {
	var c StaticCertificate
	if c.CheckP2a() != nil || c.CheckP2b() != nil || c.CheckP3() != nil {
		t.Error("empty static certificate should pass")
	}
	c = StaticCertificate{P2b: func() error { return errTest }}
	if c.CheckP2b() == nil {
		t.Error("static certificate did not propagate P2b error")
	}
}

var errTest = &testError{}

type testError struct{}

func (*testError) Error() string { return "test error" }
