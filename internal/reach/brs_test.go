package reach

import (
	"math"
	"testing"
	"time"

	"repro/internal/geom"
)

func brsFixture(t *testing.T) (*BackwardReachSet, *geom.Workspace) {
	t.Helper()
	ws, err := geom.NewWorkspace(
		geom.Box(geom.V(0, 0, 0), geom.V(20, 20, 4)),
		[]geom.AABB{geom.Box(geom.V(8, 8, 0), geom.V(12, 12, 4))},
	)
	if err != nil {
		t.Fatal(err)
	}
	grid, err := geom.NewGrid(ws, 0.5, 0)
	if err != nil {
		t.Fatal(err)
	}
	brs, err := NewBackwardReachSet(grid, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	return brs, ws
}

func TestNewBackwardReachSetValidation(t *testing.T) {
	if _, err := NewBackwardReachSet(nil, 1); err == nil {
		t.Error("nil grid accepted")
	}
	ws := geom.OpenWorkspace(geom.Box(geom.V(0, 0, 0), geom.V(5, 5, 5)))
	grid, err := geom.NewGrid(ws, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewBackwardReachSet(grid, 0); err == nil {
		t.Error("zero vmax accepted")
	}
}

func TestTimeToUnsafeBasics(t *testing.T) {
	brs, _ := brsFixture(t)
	// Inside the obstacle: zero.
	if got := brs.TimeToUnsafe(geom.V(10, 10, 2)); got != 0 {
		t.Errorf("TimeToUnsafe inside obstacle = %v", got)
	}
	// Outside the grid: zero (boundary is unsafe).
	if got := brs.TimeToUnsafe(geom.V(-5, 0, 0)); got != 0 {
		t.Errorf("TimeToUnsafe outside grid = %v", got)
	}
	// A free point ~2m from the obstacle at vmax=2 m/s needs ≈1s, certainly
	// within [0.5, 2].
	got := brs.TimeToUnsafe(geom.V(6, 10, 2))
	if got < 0.5 || got > 2.0 {
		t.Errorf("TimeToUnsafe 2m away = %v, want ≈1s", got)
	}
}

func TestTimeToUnsafeMonotoneWithDistance(t *testing.T) {
	brs, _ := brsFixture(t)
	// Walking away from the obstacle along -x, time-to-unsafe must be
	// non-decreasing until boundary effects dominate.
	prev := brs.TimeToUnsafe(geom.V(7.5, 10, 2))
	for x := 7.0; x >= 4.0; x -= 0.5 {
		cur := brs.TimeToUnsafe(geom.V(x, 10, 2))
		if cur+1e-9 < prev {
			t.Fatalf("time-to-unsafe decreased moving away: x=%v %v -> %v", x, prev, cur)
		}
		prev = cur
	}
}

func TestCanEscapeWithin(t *testing.T) {
	brs, _ := brsFixture(t)
	p := geom.V(7.5, 10, 2) // about 0.5 m from the obstacle face
	if !brs.CanEscapeWithin(p, 2*time.Second) {
		t.Error("point near obstacle should be escapable within 2s")
	}
	far := geom.V(3, 3, 2)
	if brs.CanEscapeWithin(far, 100*time.Millisecond) {
		t.Error("far point should not be escapable within 100ms")
	}
}

func TestFractionEscapableMonotone(t *testing.T) {
	brs, _ := brsFixture(t)
	f1 := brs.FractionEscapable(400 * time.Millisecond)
	f2 := brs.FractionEscapable(time.Second)
	f3 := brs.FractionEscapable(time.Hour)
	if f1 > f2 || f2 > f3 {
		t.Errorf("fraction not monotone: %v %v %v", f1, f2, f3)
	}
	if f3 != 1 {
		t.Errorf("everything is escapable eventually in a bounded workspace, got %v", f3)
	}
	if f1 <= 0 {
		t.Errorf("cells adjacent to the obstacle should be escapable in 400ms, got %v", f1)
	}
	// Below one cell-traversal time nothing escapes: the band is empty.
	if f0 := brs.FractionEscapable(100 * time.Millisecond); f0 != 0 {
		t.Errorf("sub-cell horizon fraction = %v, want 0", f0)
	}
}

// TestBRSAgreesWithEuclideanLowerBound: the Dijkstra time is at least the
// straight-line distance divided by vmax (it cannot beat the metric lower
// bound).
func TestBRSLowerBound(t *testing.T) {
	brs, ws := brsFixture(t)
	obstacle := geom.Box(geom.V(8, 8, 0), geom.V(12, 12, 4))
	for _, p := range []geom.Vec3{
		geom.V(3, 3, 2), geom.V(6, 10, 2), geom.V(17, 17, 1), geom.V(10, 4, 3),
	} {
		if !ws.Free(p) {
			continue
		}
		tt := brs.TimeToUnsafe(p)
		// Nearest unsafe set: the obstacle or the outer boundary.
		dObs := obstacle.Distance(p)
		dBound := boundaryDistance(ws.Bounds(), p)
		lower := math.Min(dObs, dBound) / 2.0 // vmax = 2
		// One cell diagonal of slack for discretisation.
		slack := 0.5 * math.Sqrt(3) / 2.0
		if tt+slack < lower {
			t.Errorf("TimeToUnsafe(%v) = %v below metric lower bound %v", p, tt, lower)
		}
	}
}

func boundaryDistance(b geom.AABB, p geom.Vec3) float64 {
	d := math.Min(p.X-b.Min.X, b.Max.X-p.X)
	d = math.Min(d, math.Min(p.Y-b.Min.Y, b.Max.Y-p.Y))
	d = math.Min(d, math.Min(p.Z-b.Min.Z, b.Max.Z-p.Z))
	if d < 0 {
		return 0
	}
	return d
}
