package reach

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/geom"
)

func testBounds() Bounds {
	return Bounds{MaxAccel: 5, MaxVel: 3, BrakeDecel: 4}
}

func TestBoundsValidate(t *testing.T) {
	tests := []struct {
		name    string
		b       Bounds
		wantErr bool
	}{
		{"valid", testBounds(), false},
		{"zero accel", Bounds{MaxVel: 1, BrakeDecel: 1}, true},
		{"zero vel", Bounds{MaxAccel: 1, BrakeDecel: 1}, true},
		{"zero brake", Bounds{MaxAccel: 1, MaxVel: 1}, true},
		{"brake exceeds accel", Bounds{MaxAccel: 1, MaxVel: 1, BrakeDecel: 2}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.b.Validate(); (err != nil) != tt.wantErr {
				t.Errorf("Validate = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestReachBoxContainsStart(t *testing.T) {
	b := testBounds()
	pos, vel := geom.V(1, 2, 3), geom.V(1, -2, 0)
	box := ReachBox(pos, vel, b, 100*time.Millisecond)
	if !box.Contains(pos) {
		t.Errorf("reach box %v does not contain the start %v", box, pos)
	}
	// Zero horizon: the box degenerates to the point.
	box0 := ReachBox(pos, vel, b, 0)
	if !vecEq(box0.Min, pos) || !vecEq(box0.Max, pos) {
		t.Errorf("zero-horizon reach box = %v", box0)
	}
}

func TestReachBoxKnownValues(t *testing.T) {
	// From rest, reach in time t is ±(a t²/2) per axis (below the velocity
	// cap).
	b := testBounds()
	box := ReachBox(geom.V(0, 0, 0), geom.Vec3{}, b, 200*time.Millisecond)
	want := 0.5 * 5 * 0.04 // 0.1 m
	if !floatEq(box.Max.X, want) || !floatEq(box.Min.X, -want) {
		t.Errorf("reach from rest = %v, want ±%v", box, want)
	}
	// Moving at the velocity cap: forward reach is exactly vmax·t.
	box = ReachBox(geom.V(0, 0, 0), geom.V(3, 0, 0), b, time.Second)
	if !floatEq(box.Max.X, 3) {
		t.Errorf("capped forward reach = %v, want 3", box.Max.X)
	}
}

func TestBrakeBoxKnownValues(t *testing.T) {
	b := testBounds()
	// Braking from 2 m/s at 4 m/s²: excursion 0.5 m, none backwards.
	box := BrakeBox(geom.V(0, 0, 0), geom.V(2, 0, 0), b)
	if !floatEq(box.Max.X, 0.5) || !floatEq(box.Min.X, 0) {
		t.Errorf("brake box = %v", box)
	}
	// At rest the footprint is the point itself.
	box = BrakeBox(geom.V(1, 1, 1), geom.Vec3{}, b)
	if !vecEq(box.Min, geom.V(1, 1, 1)) || !vecEq(box.Max, geom.V(1, 1, 1)) {
		t.Errorf("brake box at rest = %v", box)
	}
}

// Property: BrakeBox ⊆ StopBox(t) ⊆ StopBox(t') for t ≤ t' (monotone), and
// ReachBox(t) ⊆ StopBox(t).
func TestBoxNesting(t *testing.T) {
	b := testBounds()
	f := func(px, py, pz, vx, vy, vz float64, tRaw uint16) bool {
		pos := geom.V(math.Mod(px, 100), math.Mod(py, 100), math.Mod(pz, 100))
		vel := geom.V(math.Mod(vx, 3), math.Mod(vy, 3), math.Mod(vz, 3))
		t1 := time.Duration(tRaw) * time.Millisecond / 20
		t2 := 2 * t1
		brake := BrakeBox(pos, vel, b)
		stop1 := StopBox(pos, vel, b, t1)
		stop2 := StopBox(pos, vel, b, t2)
		reach1 := ReachBox(pos, vel, b, t1)
		return stop1.ContainsBox(brake) && stop2.ContainsBox(stop1) && stop1.ContainsBox(reach1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property (soundness of StopBox): simulate any admissible bang-bang control
// for up to t followed by a full brake; every visited position must lie in
// StopBox(pos, vel, t). This is the (P3)-by-construction argument.
func TestStopBoxSoundnessProperty(t *testing.T) {
	b := testBounds()
	rng := rand.New(rand.NewSource(99))
	const horizon = 200 * time.Millisecond
	const dt = 5 * time.Millisecond
	for trial := 0; trial < 200; trial++ {
		pos := geom.V(rng.Float64()*20, rng.Float64()*20, rng.Float64()*20)
		vel := geom.V(
			(rng.Float64()*2-1)*b.MaxVel,
			(rng.Float64()*2-1)*b.MaxVel,
			(rng.Float64()*2-1)*b.MaxVel,
		)
		// A hair of slack absorbs the semi-implicit-Euler discretisation of
		// this test harness (the analytic box bounds the continuous flow).
		box := StopBox(pos, vel, b, horizon).Expand(0.01)
		p, v := pos, vel
		// Adversarial phase.
		steps := int(horizon / dt)
		adversarial := rng.Intn(steps + 1)
		for s := 0; s < adversarial; s++ {
			acc := geom.V(bangOf(rng, b.MaxAccel), bangOf(rng, b.MaxAccel), bangOf(rng, b.MaxAccel))
			p, v = integrate(p, v, acc, b, dt)
			if !box.Contains(p) {
				t.Fatalf("trial %d: adversarial position %v escaped StopBox %v", trial, p, box)
			}
		}
		// Braking phase at the guaranteed deceleration.
		for s := 0; s < 2000 && v.Norm() > 1e-3; s++ {
			acc := geom.V(brakeAxisCmd(v.X, b.BrakeDecel), brakeAxisCmd(v.Y, b.BrakeDecel), brakeAxisCmd(v.Z, b.BrakeDecel))
			p, v = integrate(p, v, acc, b, dt)
			if !box.Contains(p) {
				t.Fatalf("trial %d: braking position %v escaped StopBox %v", trial, p, box)
			}
		}
	}
}

func integrate(p, v, a geom.Vec3, b Bounds, dt time.Duration) (geom.Vec3, geom.Vec3) {
	h := dt.Seconds()
	vmax := geom.V(b.MaxVel, b.MaxVel, b.MaxVel)
	nv := v.Add(a.Scale(h)).ClampBox(vmax.Neg(), vmax)
	return p.Add(nv.Scale(h)), nv
}

func bangOf(rng *rand.Rand, amax float64) float64 {
	if rng.Intn(2) == 0 {
		return -amax
	}
	return amax
}

func brakeAxisCmd(v, d float64) float64 {
	a := -v / 0.005 // stop exactly within one step when admissible
	if a > d {
		return d
	}
	if a < -d {
		return -d
	}
	return a
}

func testAnalyzer(t *testing.T) *Analyzer {
	t.Helper()
	ws, err := geom.NewWorkspace(
		geom.Box(geom.V(0, 0, -1), geom.V(30, 30, 10)),
		[]geom.AABB{geom.Box(geom.V(12, 12, -1), geom.V(18, 18, 8))},
	)
	if err != nil {
		t.Fatal(err)
	}
	an, err := NewAnalyzer(ws, testBounds(), 0.4, 100*time.Millisecond, 2)
	if err != nil {
		t.Fatal(err)
	}
	return an
}

func TestNewAnalyzerValidation(t *testing.T) {
	ws := geom.OpenWorkspace(geom.Box(geom.V(0, 0, 0), geom.V(10, 10, 10)))
	if _, err := NewAnalyzer(nil, testBounds(), 0.4, time.Second, 1); err == nil {
		t.Error("nil workspace accepted")
	}
	if _, err := NewAnalyzer(ws, Bounds{}, 0.4, time.Second, 1); err == nil {
		t.Error("invalid bounds accepted")
	}
	if _, err := NewAnalyzer(ws, testBounds(), -1, time.Second, 1); err == nil {
		t.Error("negative margin accepted")
	}
	if _, err := NewAnalyzer(ws, testBounds(), 0.4, 0, 1); err == nil {
		t.Error("zero delta accepted")
	}
	if _, err := NewAnalyzer(ws, testBounds(), 0.4, time.Second, 0.5); err == nil {
		t.Error("hysteresis < 1 accepted")
	}
}

func TestAnalyzerPredicates(t *testing.T) {
	an := testAnalyzer(t)
	// Far from the obstacle, at rest: safe, not escapable, in φsafer.
	pos := geom.V(5, 5, 3)
	if !an.Safe(pos, geom.Vec3{}) {
		t.Error("open-space rest state should be safe")
	}
	if an.TTF2Delta(pos, geom.Vec3{}) {
		t.Error("open-space rest state should not trip ttf")
	}
	if !an.InSafer(pos, geom.Vec3{}) {
		t.Error("open-space rest state should be in φsafer")
	}
	// Charging at the obstacle at full speed from 1 m away: unsafe (cannot
	// stop in time: braking from 3 m/s at 4 m/s² needs 1.125 m).
	charging := geom.V(10.5, 15, 3)
	if an.Safe(charging, geom.V(3, 0, 0)) {
		t.Error("state that cannot brake before the obstacle reported safe")
	}
	// The same position at rest is safe but trips ttf (the adversary can
	// reach the obstacle within 2Δ + braking).
	if !an.Safe(charging, geom.Vec3{}) {
		t.Error("rest state 1.1m from obstacle face should be safe")
	}
	if !an.TTF2Delta(geom.V(11.45, 15, 3), geom.Vec3{}) {
		t.Error("rest state hugging the margin should trip ttf")
	}
}

func TestAnalyzerClassifyRegions(t *testing.T) {
	an := testAnalyzer(t)
	tests := []struct {
		name string
		pos  geom.Vec3
		vel  geom.Vec3
		want Region
	}{
		{"deep free space", geom.V(5, 5, 3), geom.Vec3{}, RegionSaferCore},
		{"inside obstacle", geom.V(15, 15, 3), geom.Vec3{}, RegionUnsafe},
		{"unstoppable charge", geom.V(11.3, 15, 3), geom.V(3, 0, 0), RegionUnsafe},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := an.Classify(tt.pos, tt.vel); got != tt.want {
				t.Errorf("Classify = %v, want %v", got, tt.want)
			}
		})
	}
}

// Property: the region predicates are properly nested: φsafer ⊆ ¬ttf region
// ⊆ φsafe (on sampled states).
func TestRegionNestingProperty(t *testing.T) {
	an := testAnalyzer(t)
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 2000; i++ {
		pos := geom.V(rng.Float64()*30, rng.Float64()*30, rng.Float64()*11-1)
		vel := geom.V(
			(rng.Float64()*2-1)*3,
			(rng.Float64()*2-1)*3,
			(rng.Float64()*2-1)*3,
		)
		safer := an.InSafer(pos, vel)
		ttf := an.TTF2Delta(pos, vel)
		safe := an.Safe(pos, vel)
		if safer && ttf {
			t.Fatalf("state %v %v in φsafer but trips ttf", pos, vel)
		}
		if !ttf && !safe {
			t.Fatalf("state %v %v not safe but ttf clear", pos, vel)
		}
		if safer && !safe {
			t.Fatalf("state %v %v in φsafer but not safe", pos, vel)
		}
	}
}

func TestSaferHorizon(t *testing.T) {
	an := testAnalyzer(t)
	if got := an.SaferHorizon(); got != 400*time.Millisecond {
		t.Errorf("SaferHorizon = %v, want 400ms (hysteresis 2 × 2Δ)", got)
	}
}

func TestRegionString(t *testing.T) {
	for r, want := range map[Region]string{
		RegionUnsafe:    "R1-unsafe",
		RegionSafe:      "R2-escapable",
		RegionRecover:   "R3R4-recoverable",
		RegionSaferCore: "R5-safer",
		Region(0):       "Region(0)",
	} {
		if got := r.String(); got != want {
			t.Errorf("String(%d) = %q", int(r), got)
		}
	}
}

func vecEq(a, b geom.Vec3) bool { return a == b }

func floatEq(a, b float64) bool { return math.Abs(a-b) < 1e-9 }
