package reach

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/geom"
)

// SCStepFunc advances the closed-loop plant under the safe controller by one
// SC period from the given kinematic state, returning the next state. It is
// supplied by the module author (the controller and plant live in other
// packages; the certificate only needs the closed-loop map).
type SCStepFunc func(pos, vel geom.Vec3) (geom.Vec3, geom.Vec3)

// CertConfig configures a sampling-based certificate for a motion RTA
// module.
type CertConfig struct {
	// Analyzer provides φsafe, φsafer and the reach boxes.
	Analyzer *Analyzer
	// SCStep is the closed-loop step under the safe controller.
	SCStep SCStepFunc
	// SCPeriod is δ(Nsc).
	SCPeriod time.Duration
	// Samples is the number of random initial states checked per property.
	Samples int
	// Seed makes the sampling reproducible.
	Seed int64
	// P2aHorizon is how long each (P2a) rollout runs.
	P2aHorizon time.Duration
	// P2bDeadline is the finite time T within which (P2b) requires the
	// system to settle into φsafer (and stay for Δ).
	P2bDeadline time.Duration
}

// Certificate discharges (P2a), (P2b) and (P3) for a motion RTA module by a
// combination of construction arguments and rigorous sampling: φsafe and
// φsafer are built so that (P3) holds analytically (see StopBox), while
// (P2a) and (P2b) are validated by closed-loop rollouts of the safe
// controller from randomly sampled states, in the spirit of the paper's
// simulation-based validation. It satisfies rta.Certificate.
type Certificate struct {
	cfg CertConfig
}

// NewCertificate validates the configuration and returns the certificate.
func NewCertificate(cfg CertConfig) (*Certificate, error) {
	if cfg.Analyzer == nil {
		return nil, fmt.Errorf("nil analyzer")
	}
	if cfg.SCStep == nil {
		return nil, fmt.Errorf("nil SC step function")
	}
	if cfg.SCPeriod <= 0 || cfg.SCPeriod > cfg.Analyzer.Delta() {
		return nil, fmt.Errorf("SC period %v must be in (0, Δ=%v]", cfg.SCPeriod, cfg.Analyzer.Delta())
	}
	if cfg.Samples <= 0 {
		return nil, fmt.Errorf("samples %d must be positive", cfg.Samples)
	}
	if cfg.P2aHorizon <= 0 {
		cfg.P2aHorizon = 20 * time.Second
	}
	if cfg.P2bDeadline <= 0 {
		cfg.P2bDeadline = 30 * time.Second
	}
	return &Certificate{cfg: cfg}, nil
}

// sampleSafeState draws a random kinematic state satisfying φsafe.
func (c *Certificate) sampleSafeState(rng *rand.Rand) (geom.Vec3, geom.Vec3, bool) {
	a := c.cfg.Analyzer
	bnd := a.Workspace().Bounds()
	size := bnd.Size()
	for tries := 0; tries < 4096; tries++ {
		pos := geom.V(
			bnd.Min.X+rng.Float64()*size.X,
			bnd.Min.Y+rng.Float64()*size.Y,
			bnd.Min.Z+rng.Float64()*size.Z,
		)
		vel := geom.V(
			(rng.Float64()*2-1)*a.Bounds().MaxVel,
			(rng.Float64()*2-1)*a.Bounds().MaxVel,
			(rng.Float64()*2-1)*a.Bounds().MaxVel,
		)
		if a.Safe(pos, vel) {
			return pos, vel, true
		}
	}
	return geom.Vec3{}, geom.Vec3{}, false
}

// CheckP2a verifies by rollout that φsafe is invariant under the safe
// controller: from sampled states in φsafe, every state along the SC
// closed loop remains in φsafe.
func (c *Certificate) CheckP2a() error {
	rng := rand.New(rand.NewSource(c.cfg.Seed))
	steps := int(c.cfg.P2aHorizon / c.cfg.SCPeriod)
	for i := 0; i < c.cfg.Samples; i++ {
		pos, vel, ok := c.sampleSafeState(rng)
		if !ok {
			return fmt.Errorf("could not sample a state in φsafe (workspace too constrained)")
		}
		p, v := pos, vel
		for s := 0; s < steps; s++ {
			p, v = c.cfg.SCStep(p, v)
			if !c.cfg.Analyzer.Safe(p, v) {
				return fmt.Errorf("sample %d: SC left φsafe after %d steps: start pos=%v vel=%v, at pos=%v vel=%v",
					i, s+1, pos, vel, p, v)
			}
		}
	}
	return nil
}

// CheckP2b verifies by rollout the liveness property: from sampled states in
// φsafe, the SC closed loop enters φsafer within the deadline and remains in
// φsafer for at least Δ.
func (c *Certificate) CheckP2b() error {
	rng := rand.New(rand.NewSource(c.cfg.Seed + 1))
	a := c.cfg.Analyzer
	maxSteps := int(c.cfg.P2bDeadline / c.cfg.SCPeriod)
	dwellSteps := int(a.Delta()/c.cfg.SCPeriod) + 1
	for i := 0; i < c.cfg.Samples; i++ {
		pos, vel, ok := c.sampleSafeState(rng)
		if !ok {
			return fmt.Errorf("could not sample a state in φsafe (workspace too constrained)")
		}
		p, v := pos, vel
		dwell := 0
		reached := false
		for s := 0; s < maxSteps; s++ {
			p, v = c.cfg.SCStep(p, v)
			if a.InSafer(p, v) {
				dwell++
				if dwell >= dwellSteps {
					reached = true
					break
				}
			} else {
				dwell = 0
			}
		}
		if !reached {
			return fmt.Errorf("sample %d: SC did not settle in φsafer within %v from pos=%v vel=%v",
				i, c.cfg.P2bDeadline, pos, vel)
		}
	}
	return nil
}

// CheckP3 verifies Reach(φsafer, *, 2Δ) ⊆ φsafe. By construction φsafer is
// the set of states whose StopBox over a horizon ≥ 2Δ is collision-free,
// which analytically implies (P3); this check additionally validates the
// construction by adversarial rollouts: from sampled φsafer states it
// applies random bang-bang (worst-case) controls for 2Δ and asserts φsafe
// along the way.
func (c *Certificate) CheckP3() error {
	a := c.cfg.Analyzer
	if a.SaferHorizon() < 2*a.Delta() {
		return fmt.Errorf("φsafer horizon %v < 2Δ = %v", a.SaferHorizon(), 2*a.Delta())
	}
	rng := rand.New(rand.NewSource(c.cfg.Seed + 2))
	const dt = 10 * time.Millisecond
	steps := int(2 * a.Delta() / dt)
	b := a.Bounds()
	for i := 0; i < c.cfg.Samples; i++ {
		pos, vel, ok := c.sampleSaferState(rng)
		if !ok {
			// φsafer can be empty in a pathological workspace; (P3) over an
			// empty set holds vacuously.
			return nil
		}
		p, v := pos, vel
		for s := 0; s < steps; s++ {
			// Adversarial bang control, re-drawn occasionally.
			acc := geom.V(bang(rng, b.MaxAccel), bang(rng, b.MaxAccel), bang(rng, b.MaxAccel))
			h := dt.Seconds()
			v = v.Add(acc.Scale(h)).ClampBox(
				geom.V(-b.MaxVel, -b.MaxVel, -b.MaxVel),
				geom.V(b.MaxVel, b.MaxVel, b.MaxVel),
			)
			p = p.Add(v.Scale(h))
			if !a.Safe(p, v) {
				return fmt.Errorf("sample %d: adversarial control escaped φsafe within 2Δ from φsafer state pos=%v vel=%v",
					i, pos, vel)
			}
		}
	}
	return nil
}

func (c *Certificate) sampleSaferState(rng *rand.Rand) (geom.Vec3, geom.Vec3, bool) {
	a := c.cfg.Analyzer
	bnd := a.Workspace().Bounds()
	size := bnd.Size()
	for tries := 0; tries < 8192; tries++ {
		pos := geom.V(
			bnd.Min.X+rng.Float64()*size.X,
			bnd.Min.Y+rng.Float64()*size.Y,
			bnd.Min.Z+rng.Float64()*size.Z,
		)
		vel := geom.V(
			(rng.Float64()*2-1)*a.Bounds().MaxVel,
			(rng.Float64()*2-1)*a.Bounds().MaxVel,
			(rng.Float64()*2-1)*a.Bounds().MaxVel,
		)
		if a.InSafer(pos, vel) {
			return pos, vel, true
		}
	}
	return geom.Vec3{}, geom.Vec3{}, false
}

func bang(rng *rand.Rand, amax float64) float64 {
	if rng.Intn(2) == 0 {
		return -amax
	}
	return amax
}

// StaticCertificate adapts three closures to the certificate interface; it
// is used for modules whose obligations have bespoke proofs (battery safety
// has closed-form arguments; the planner module's obligations are
// output-validation properties).
type StaticCertificate struct {
	P2a func() error
	P2b func() error
	P3  func() error
}

// CheckP2a implements rta.Certificate.
func (s StaticCertificate) CheckP2a() error {
	if s.P2a == nil {
		return nil
	}
	return s.P2a()
}

// CheckP2b implements rta.Certificate.
func (s StaticCertificate) CheckP2b() error {
	if s.P2b == nil {
		return nil
	}
	return s.P2b()
}

// CheckP3 implements rta.Certificate.
func (s StaticCertificate) CheckP3() error {
	if s.P3 == nil {
		return nil
	}
	return s.P3()
}
