// Package reach implements the reachability computations SOTER's decision
// modules rely on (Section III-C, "From theory to practice"). The paper uses
// FaSTrack and the Level-Set Toolbox offline; here the plant is a 3D double
// integrator with per-axis bounds, for which worst-case reachable sets have
// closed forms, so the same checks are computed analytically:
//
//   - ReachBox(s, t): the positions reachable within [0, t] under ANY
//     admissible control (the Reach(s, *, t) of the paper, projected to
//     position).
//   - BrakeBox(s): the positions swept while braking to a stop at full
//     deceleration — the "stopping footprint".
//   - StopBox(s, t): positions reachable by evolving arbitrarily for up to
//     t and then braking; this over-approximates every future position of
//     any run that starts braking within t.
//
// With φsafe := { s | BrakeBox(s) free } (a control-invariant under the
// braking safe controller) and φsafer := { s | StopBox(s, h) free } for a
// horizon h ≥ 2Δ, properties (P2a) and (P3) hold by construction; the
// TTF2Delta check of Figure 9 is ¬(StopBox(s, 2Δ) free). The package also
// provides a grid-based backward-reachability computation mirroring the
// Level-Set Toolbox workflow of Figure 12b, used for cross-validation.
package reach

import (
	"fmt"
	"math"
	"time"

	"repro/internal/geom"
)

// Bounds are the worst-case per-axis dynamic bounds the decision module
// assumes of the plant: |a| ≤ MaxAccel and |v| ≤ MaxVel on every axis. Our
// formalism makes no assumption about the AC's code, only that its output
// actions respect these bounds (Remark 3.2).
type Bounds struct {
	// MaxAccel bounds any controller's per-axis acceleration (the adversary
	// in Reach(s, *, t)).
	MaxAccel float64
	// MaxVel bounds the per-axis velocity.
	MaxVel float64
	// BrakeDecel is the per-axis deceleration the safe controller is
	// guaranteed to achieve while braking, net of actuation lag; it must be
	// positive and at most MaxAccel. Stopping footprints are computed with
	// BrakeDecel while adversarial reach uses MaxAccel, keeping both sound.
	BrakeDecel float64
}

// Validate checks the bounds are usable.
func (b Bounds) Validate() error {
	if b.MaxAccel <= 0 || b.MaxVel <= 0 {
		return fmt.Errorf("MaxAccel (%v) and MaxVel (%v) must be positive", b.MaxAccel, b.MaxVel)
	}
	if b.BrakeDecel <= 0 || b.BrakeDecel > b.MaxAccel {
		return fmt.Errorf("BrakeDecel (%v) must be in (0, MaxAccel=%v]", b.BrakeDecel, b.MaxAccel)
	}
	return nil
}

// Interval is a closed 1D interval.
type Interval struct {
	Lo, Hi float64
}

// axisReach returns the interval of positions reachable on one axis within
// time t from position p and velocity v, under |a| ≤ amax and |v| ≤ vmax.
// The extremes are achieved by bang controls (+amax or -amax throughout).
func axisReach(p, v, amax, vmax, t float64) Interval {
	return Interval{
		Lo: p - maxDisplacement(-v, amax, vmax, t),
		Hi: p + maxDisplacement(v, amax, vmax, t),
	}
}

// maxDisplacement returns the maximum forward displacement achievable at any
// time within [0, t], starting with (signed) velocity v and accelerating at
// +amax with velocity capped at +vmax. v may be negative (moving backward
// initially); since displacement under constant forward acceleration first
// decreases then increases, the maximum over the window is never below zero
// (the start position itself).
func maxDisplacement(v, amax, vmax, t float64) float64 {
	if t <= 0 {
		return 0
	}
	v = math.Min(v, vmax)
	// Time to reach the velocity cap.
	t1 := (vmax - v) / amax
	var d float64
	if t <= t1 {
		d = v*t + 0.5*amax*t*t
	} else {
		d = v*t1 + 0.5*amax*t1*t1 + vmax*(t-t1)
	}
	return math.Max(0, d)
}

// brakeExcursion returns the forward excursion while braking the (signed)
// velocity v to zero at amax: v²/(2·amax) when moving forward, 0 otherwise.
func brakeExcursion(v, amax float64) float64 {
	if v <= 0 {
		return 0
	}
	return v * v / (2 * amax)
}

// ReachBox returns the axis-aligned over-approximation of Reach(s, *, t)
// projected to position: every position the plant can occupy within [0, t]
// from (pos, vel) under the bounds.
func ReachBox(pos, vel geom.Vec3, b Bounds, t time.Duration) geom.AABB {
	sec := t.Seconds()
	x := axisReach(pos.X, vel.X, b.MaxAccel, b.MaxVel, sec)
	y := axisReach(pos.Y, vel.Y, b.MaxAccel, b.MaxVel, sec)
	z := axisReach(pos.Z, vel.Z, b.MaxAccel, b.MaxVel, sec)
	return geom.AABB{
		Min: geom.V(x.Lo, y.Lo, z.Lo),
		Max: geom.V(x.Hi, y.Hi, z.Hi),
	}
}

// BrakeBox returns the positions swept while braking from (pos, vel) to rest
// at full deceleration: the stopping footprint. It is the t = 0 case of
// StopBox.
func BrakeBox(pos, vel geom.Vec3, b Bounds) geom.AABB {
	return geom.AABB{
		Min: geom.V(
			pos.X-brakeExcursion(-vel.X, b.BrakeDecel),
			pos.Y-brakeExcursion(-vel.Y, b.BrakeDecel),
			pos.Z-brakeExcursion(-vel.Z, b.BrakeDecel),
		),
		Max: geom.V(
			pos.X+brakeExcursion(vel.X, b.BrakeDecel),
			pos.Y+brakeExcursion(vel.Y, b.BrakeDecel),
			pos.Z+brakeExcursion(vel.Z, b.BrakeDecel),
		),
	}
}

// StopBox returns an axis-aligned over-approximation of every position
// occupied by any run that evolves under arbitrary admissible control for up
// to t and then brakes to rest: the t-horizon reach box extended on each
// side by the braking excursion of the worst velocity attainable within t.
func StopBox(pos, vel geom.Vec3, b Bounds, t time.Duration) geom.AABB {
	sec := t.Seconds()
	box := ReachBox(pos, vel, b, t)
	ext := func(v float64) (lo, hi float64) {
		vHi := math.Min(b.MaxVel, v+b.MaxAccel*sec)
		vLo := math.Max(-b.MaxVel, v-b.MaxAccel*sec)
		return brakeExcursion(-vLo, b.BrakeDecel), brakeExcursion(vHi, b.BrakeDecel)
	}
	xl, xh := ext(vel.X)
	yl, yh := ext(vel.Y)
	zl, zh := ext(vel.Z)
	return geom.AABB{
		Min: box.Min.Sub(geom.V(xl, yl, zl)),
		Max: box.Max.Add(geom.V(xh, yh, zh)),
	}
}

// Analyzer bundles the workspace, dynamic bounds, DM period and hysteresis
// used to build the predicates of a motion RTA module. It implements the
// "three essential steps" of Section V-A: the ttf2Δ switching condition
// (AC→SC), the φsafer return condition (SC→AC), and the φsafe monitor.
type Analyzer struct {
	ws     *geom.Workspace
	idx    *geom.Index // margin-resolved query index, built once
	bounds Bounds
	margin float64       // drone bounding radius
	delta  time.Duration // Δ, the DM period
	hyst   float64       // φsafer horizon multiplier (≥ 1): h = hyst · 2Δ
	saferH time.Duration // hyst · 2Δ, precomputed
}

// NewAnalyzer constructs the analyzer. margin is the drone's bounding radius
// used to inflate obstacles; hysteresis scales the φsafer horizon relative
// to 2Δ — 1 makes φsafer exactly R(φsafe, 2Δ) as in Section V-A, larger
// values trade AC usage for fewer AC/SC oscillations (Remark 3.3).
func NewAnalyzer(ws *geom.Workspace, b Bounds, margin float64, delta time.Duration, hysteresis float64) (*Analyzer, error) {
	if ws == nil {
		return nil, fmt.Errorf("nil workspace")
	}
	if err := b.Validate(); err != nil {
		return nil, err
	}
	if margin < 0 {
		return nil, fmt.Errorf("margin %v must be non-negative", margin)
	}
	if delta <= 0 {
		return nil, fmt.Errorf("Δ = %v must be positive", delta)
	}
	if hysteresis < 1 {
		return nil, fmt.Errorf("hysteresis %v must be ≥ 1", hysteresis)
	}
	return &Analyzer{
		ws:     ws,
		idx:    ws.IndexFor(margin),
		bounds: b,
		margin: margin,
		delta:  delta,
		hyst:   hysteresis,
		saferH: time.Duration(float64(2*delta) * hysteresis),
	}, nil
}

// Workspace returns the analyzer's workspace.
func (a *Analyzer) Workspace() *geom.Workspace { return a.ws }

// Bounds returns the assumed dynamic bounds.
func (a *Analyzer) Bounds() Bounds { return a.bounds }

// Delta returns Δ.
func (a *Analyzer) Delta() time.Duration { return a.delta }

// Margin returns the obstacle inflation margin.
func (a *Analyzer) Margin() float64 { return a.margin }

// SaferHorizon returns the φsafer stop-box horizon h = hysteresis · 2Δ.
func (a *Analyzer) SaferHorizon() time.Duration { return a.saferH }

// Safe is φsafe over the full kinematic state: the braking footprint from
// (pos, vel) is collision-free. φsafe is control-invariant under the
// braking safe controller, which is exactly property (P2a).
func (a *Analyzer) Safe(pos, vel geom.Vec3) bool {
	return a.idx.BoxFree(BrakeBox(pos, vel, a.bounds))
}

// TTF2Delta is the Figure 9 switching check: true when Reach(s, *, 2Δ) ⊄
// φsafe, i.e. some admissible behaviour within 2Δ leads to a state whose
// braking footprint is not collision-free.
func (a *Analyzer) TTF2Delta(pos, vel geom.Vec3) bool {
	return !a.idx.BoxFree(StopBox(pos, vel, a.bounds, 2*a.delta))
}

// InSafer is st ∈ φsafer: the stop box over the (hysteresis-scaled) horizon
// is collision-free. Because SaferHorizon ≥ 2Δ, (P3) holds by construction:
// any state reachable within 2Δ from φsafer still has its braking footprint
// inside the original stop box, hence remains in φsafe.
func (a *Analyzer) InSafer(pos, vel geom.Vec3) bool {
	return a.idx.BoxFree(StopBox(pos, vel, a.bounds, a.saferH))
}

// Region classifies a state into the regions of operation of Figure 10.
type Region int

// Regions of operation (Figure 10). R2 is safe but not recoverable by the
// 2Δ look-ahead; R3\R4 is the switching control region; R5 is φsafer where
// control returns to AC.
const (
	RegionUnsafe    Region = iota + 1 // R1: ¬φsafe
	RegionSafe                        // R2: φsafe but ttf2Δ (can escape within 2Δ)
	RegionRecover                     // R3/R4: φsafe ∧ ¬ttf2Δ ∧ ¬φsafer
	RegionSaferCore                   // R5: φsafer
)

// String implements fmt.Stringer.
func (r Region) String() string {
	switch r {
	case RegionUnsafe:
		return "R1-unsafe"
	case RegionSafe:
		return "R2-escapable"
	case RegionRecover:
		return "R3R4-recoverable"
	case RegionSaferCore:
		return "R5-safer"
	default:
		return fmt.Sprintf("Region(%d)", int(r))
	}
}

// Classify maps a kinematic state to its region of operation.
func (a *Analyzer) Classify(pos, vel geom.Vec3) Region {
	if !a.Safe(pos, vel) {
		return RegionUnsafe
	}
	if a.TTF2Delta(pos, vel) {
		return RegionSafe
	}
	if a.InSafer(pos, vel) {
		return RegionSaferCore
	}
	return RegionRecover
}
