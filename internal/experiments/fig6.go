package experiments

import (
	"context"
	"fmt"
	"time"

	"repro/internal/controller"
	"repro/internal/geom"
	"repro/internal/mission"
	"repro/internal/plant"
	"repro/internal/rta"
	"repro/internal/sim"
)

// Fig6Config parameterises the single RTA-protected motion-primitive
// transfer.
type Fig6Config struct {
	Seed int64
	// Context, when non-nil, cancels the run.
	Context context.Context
}

// Fig6Result reproduces the behaviour of Figures 6 and 12a's inset: during a
// single wi → wf transfer with a misbehaving AC, the DM detects imminent
// danger, switches to SC (red dot), the SC recovers the drone into φsafer,
// control returns to AC (green dot), and the mission completes inside φsafe.
type Fig6Result struct {
	Reached        bool
	Crashed        bool
	Disengagements int
	Reengagements  int
	MinClearance   float64
	TransferTime   time.Duration
	SwitchTimes    []time.Duration
}

// Format prints the Figure 6 narrative values.
func (r Fig6Result) Format() string {
	var t table
	t.title("Figure 6: one RTA-protected motion-primitive transfer (faulty AC)")
	t.row("reached", "crashed", "AC→SC", "SC→AC", "min clearance", "time")
	t.row(fmt.Sprint(r.Reached), fmt.Sprint(r.Crashed),
		fmt.Sprint(r.Disengagements), fmt.Sprint(r.Reengagements),
		fmt.Sprintf("%.2f m", r.MinClearance), fmtDur(r.TransferTime))
	for i, ts := range r.SwitchTimes {
		t.line("  switch %d at t=%v", i+1, fmtDur(ts))
	}
	t.line("paper: the drone always remains inside φsafe; control returns to AC after recovery.")
	return t.String()
}

// Fig6 runs the transfer.
func Fig6(cfg Fig6Config) (Fig6Result, error) {
	ws, _ := fig5Workspace()
	start := geom.V(5, 5, 2)
	goal := geom.V(25, 5, 2)

	mcfg := mission.DefaultStackConfig(cfg.Seed)
	mcfg.Workspace = ws
	mcfg.WithPlannerModule = false
	mcfg.WithBatteryModule = false
	// The goal sits close to the hazard block beyond it.
	mcfg.PlanMargin = mcfg.Margin + 0.05
	mcfg.App = mission.AppConfig{Points: []geom.Vec3{goal}, Workspace: ws}
	// A fault mid-transfer pushes the drone toward the hazard block beyond
	// the goal.
	// The fault fires on final approach, pushing the drone through the goal
	// toward the hazard block beyond it.
	mcfg.ACFaults = []controller.Fault{{
		Kind:  controller.FaultFullThrust,
		Start: 4500 * time.Millisecond,
		End:   8 * time.Second,
		Param: geom.V(1, 0, 0),
	}}
	st, err := mission.Build(mcfg)
	if err != nil {
		return Fig6Result{}, fmt.Errorf("fig6: %w", err)
	}
	out, err := sim.Run(sim.RunConfig{
		Stack:           st,
		Initial:         plant.State{Pos: start, Battery: 1},
		Duration:        60 * time.Second,
		Seed:            cfg.Seed,
		Context:         runCtx(cfg.Context),
		CheckInvariants: true,
		StopAfterVisits: 1,
	})
	if err != nil {
		return Fig6Result{}, fmt.Errorf("fig6: %w", err)
	}
	m := out.Metrics
	res := Fig6Result{
		Reached:      m.TargetsVisited >= 1,
		Crashed:      m.Crashed,
		MinClearance: m.MinClearance,
		TransferTime: m.Duration,
	}
	if s, ok := m.Modules["safe-motion-primitive"]; ok {
		res.Disengagements = s.Disengagements
		res.Reengagements = s.Reengagements
	}
	for _, sw := range out.Switches {
		if sw.Module == "safe-motion-primitive" && sw.To == rta.ModeSC {
			res.SwitchTimes = append(res.SwitchTimes, sw.Time)
		}
	}
	return res, nil
}
