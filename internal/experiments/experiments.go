// Package experiments implements the reproduction of every figure and table
// in the paper's evaluation (Section V), shared by the bench_test.go harness
// at the repository root and the cmd/soter-bench tool. Each experiment is a
// pure function from a seeded configuration to a result value whose Format
// method prints the rows/series the paper reports; `go test -bench .
// -benchtime 1x` regenerates all of them.
package experiments

import (
	"context"
	"fmt"
	"strings"
	"time"
)

// runCtx resolves an experiment config's optional cancellation context (nil
// means run to completion). Every experiment threads it into its simulation
// runs and fleet sweeps, so cmd/soter-bench's -timeout and SIGINT handling
// cancel whole experiments cleanly.
func runCtx(ctx context.Context) context.Context {
	if ctx == nil {
		return context.Background() //soter:ctx-ok documented shim: nil config context means run to completion
	}
	return ctx
}

// table is a tiny fixed-width text-table builder used by all Format methods.
type table struct {
	b strings.Builder
}

func (t *table) title(s string) {
	t.b.WriteString(s)
	t.b.WriteString("\n")
	t.b.WriteString(strings.Repeat("-", len(s)))
	t.b.WriteString("\n")
}

func (t *table) row(cols ...string) {
	for i, c := range cols {
		if i > 0 {
			t.b.WriteString("  ")
		}
		t.b.WriteString(fmt.Sprintf("%-18s", c))
	}
	t.b.WriteString("\n")
}

func (t *table) line(format string, args ...any) {
	fmt.Fprintf(&t.b, format, args...)
	t.b.WriteString("\n")
}

func (t *table) String() string { return t.b.String() }

func fmtDur(d time.Duration) string {
	return d.Round(10 * time.Millisecond).String()
}

func fmtPct(f float64) string {
	return fmt.Sprintf("%.1f%%", 100*f)
}
