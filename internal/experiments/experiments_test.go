package experiments

import (
	"strings"
	"testing"
	"time"

	"repro/internal/mission"
	"repro/internal/reach"
)

// The experiment tests run scaled-down configurations: they validate the
// shape the paper reports (who wins, what is zero, what is non-zero), not
// absolute numbers. The full-size runs live in bench_test.go.

func TestFig5RightShape(t *testing.T) {
	res, err := Fig5Right(Fig5Config{Seed: 1, Laps: 6})
	if err != nil {
		t.Fatal(err)
	}
	if res.CollidingLaps == 0 {
		t.Error("unprotected third-party controller never collided")
	}
	if res.MaxOvershoot <= 0.5 {
		t.Errorf("max overshoot = %.2f, want the characteristic ≈1m", res.MaxOvershoot)
	}
	if !strings.Contains(res.Format(), "third-party") {
		t.Error("Format missing title")
	}
}

func TestFig5LeftShape(t *testing.T) {
	res, err := Fig5Left(Fig5Config{Seed: 5, Laps: 8})
	if err != nil {
		t.Fatal(err)
	}
	if res.UnsafeLoops == 0 {
		t.Error("no red loops")
	}
	if res.UnsafeLoops == res.Loops {
		t.Error("no green loops")
	}
	if res.AvgDeviation >= res.MaxDeviation {
		t.Error("avg deviation should be below max")
	}
}

func TestFig6Shape(t *testing.T) {
	res, err := Fig6(Fig6Config{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Crashed {
		t.Error("the protected transfer crashed")
	}
	if !res.Reached {
		t.Error("the transfer did not complete")
	}
	if res.Disengagements == 0 || res.Reengagements == 0 {
		t.Errorf("want both switch directions, got %d/%d", res.Disengagements, res.Reengagements)
	}
}

func TestFig10Shape(t *testing.T) {
	res, err := Fig10(Fig10Config{Seed: 3, Samples: 1500})
	if err != nil {
		t.Fatal(err)
	}
	total := 0.0
	for _, f := range res.Fractions {
		total += f
	}
	if total < 0.999 || total > 1.001 {
		t.Errorf("region fractions sum to %v", total)
	}
	if res.Fractions[reach.RegionSaferCore] == 0 {
		t.Error("φsafer region empty in the city workspace")
	}
	if res.Agreement < 0.8 {
		t.Errorf("analytic-vs-grid agreement = %v, want ≥ 0.8", res.Agreement)
	}
}

func TestFig12aShape(t *testing.T) {
	res, err := Fig12a(Fig12aConfig{Seed: 4, Tours: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	byMode := map[string]Fig12aRow{}
	for _, r := range res.Rows {
		byMode[r.Mode] = r
	}
	ac, rta, sc := byMode[mission.ProtectACOnly.String()], byMode[mission.ProtectRTA.String()], byMode[mission.ProtectSCOnly.String()]
	// The paper's ordering: AC fastest but collides; RTA in between with no
	// collisions; SC slowest, safe.
	if ac.Collisions == 0 {
		t.Error("AC-only should collide")
	}
	if rta.Collisions != 0 || sc.Collisions != 0 {
		t.Errorf("protected configurations collided: rta=%d sc=%d", rta.Collisions, sc.Collisions)
	}
	if !(ac.TourTime <= rta.TourTime && rta.TourTime < sc.TourTime) {
		t.Errorf("tour-time ordering broken: ac=%v rta=%v sc=%v", ac.TourTime, rta.TourTime, sc.TourTime)
	}
	if rta.Disengagements == 0 {
		t.Error("RTA tour had no disengagements")
	}
}

func TestFig12bShape(t *testing.T) {
	res, err := Fig12b(Fig12bConfig{Seed: 7, Duration: 45 * time.Second, Faults: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Crashed {
		t.Error("surveillance mission crashed")
	}
	if len(res.RecoveryTimes) == 0 {
		t.Error("no N-point recoveries recorded")
	}
	if res.ACFraction < 0.5 {
		t.Errorf("AC fraction = %v, want majority", res.ACFraction)
	}
}

func TestFig12bFleetShape(t *testing.T) {
	res, err := Fig12bFleet(Fig12bFleetConfig{
		BaseSeed: 7, Missions: 3, Duration: 30 * time.Second, Faults: true, Workers: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Missions != 3 {
		t.Fatalf("missions = %d", res.Missions)
	}
	if res.Crashes != 0 {
		t.Errorf("protected sweep crashed %d times", res.Crashes)
	}
	if res.MeanACFraction < 0.5 {
		t.Errorf("mean AC fraction = %v, want majority", res.MeanACFraction)
	}
	if res.Throughput <= 0 || res.SimTime < 3*30*time.Second {
		t.Errorf("throughput %v / sim time %v not aggregated", res.Throughput, res.SimTime)
	}
	if !strings.Contains(res.Format(), "fleet sweep") {
		t.Error("Format missing title")
	}
}

func TestFig12cShape(t *testing.T) {
	res, err := Fig12c(Fig12cConfig{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if res.Crashed || !res.Landed {
		t.Errorf("battery safety failed: %+v", res)
	}
	if res.FinalCharge <= 0 {
		t.Error("battery exhausted")
	}
	if res.EngageTime == 0 {
		t.Error("lander engage time not recorded")
	}
}

func TestSec5cShape(t *testing.T) {
	res, err := Sec5c(Sec5cConfig{Seed: 3, Queries: 15})
	if err != nil {
		t.Fatal(err)
	}
	if res.BuggyColliding == 0 {
		t.Error("buggy RRT* produced no colliding plans")
	}
	if res.CertColliding != 0 {
		t.Errorf("certified planner produced %d colliding plans", res.CertColliding)
	}
}

func TestSec5dShape(t *testing.T) {
	res, err := Sec5d(Sec5dConfig{Seed: 13, SimHours: 0.1, SegmentMinutes: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	rtos := res.Rows[1]
	if rtos.Crashes != 0 {
		t.Errorf("RTOS crashes = %d, want 0 (the paper's prediction)", rtos.Crashes)
	}
	if rtos.DroppedFirings != 0 {
		t.Errorf("RTOS dropped %d firings", rtos.DroppedFirings)
	}
	if res.Rows[0].DroppedFirings == 0 {
		t.Error("best-effort run dropped no firings")
	}
}

func TestAblationReturnShape(t *testing.T) {
	res, err := AblationReturn(AblationConfig{Seed: 6, Duration: 45 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	two, one := res.Rows[0], res.Rows[1]
	if two.Crashed || one.Crashed {
		t.Error("an ablation run crashed")
	}
	// The paper's point: one-way Simplex degrades to SC-level performance.
	if !(two.ACFraction > one.ACFraction) {
		t.Errorf("two-way AC fraction %v should exceed one-way %v", two.ACFraction, one.ACFraction)
	}
	if !(two.Distance > one.Distance) {
		t.Errorf("two-way distance %v should exceed one-way %v", two.Distance, one.Distance)
	}
}
