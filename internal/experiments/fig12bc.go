package experiments

import (
	"fmt"
	"time"

	"repro/internal/controller"
	"repro/internal/geom"
	"repro/internal/mission"
	"repro/internal/plant"
	"repro/internal/rta"
	"repro/internal/sim"
)

// Fig12bConfig parameterises the surveillance-mission experiment.
type Fig12bConfig struct {
	Seed     int64
	Duration time.Duration
	// Faults injects the AC misbehaviour that produces the N1/N2 recovery
	// events of the figure.
	Faults bool
}

// Fig12bResult reproduces Figure 12b: during the surveillance mission the SC
// takes control at a handful of points (N1, N2), pushes the drone back into
// φsafer (green) and returns control; the AC is in control for most of the
// mission and the drone never collides.
type Fig12bResult struct {
	Duration       time.Duration
	Distance       float64
	Targets        int
	Crashed        bool
	MinClearance   float64
	Disengagements int
	Reengagements  int
	ACFraction     float64
	RecoveryTimes  []time.Duration
}

// Format prints the Figure 12b mission summary.
func (r Fig12bResult) Format() string {
	var t table
	t.title("Figure 12b: RTA-protected surveillance mission (city workspace)")
	t.row("duration", "distance", "targets", "crashed", "min clearance")
	t.row(fmtDur(r.Duration), fmt.Sprintf("%.0f m", r.Distance), fmt.Sprint(r.Targets),
		fmt.Sprint(r.Crashed), fmt.Sprintf("%.2f m", r.MinClearance))
	t.row("AC→SC", "SC→AC", "AC fraction", "", "")
	t.row(fmt.Sprint(r.Disengagements), fmt.Sprint(r.Reengagements), fmtPct(r.ACFraction), "", "")
	for i, ts := range r.RecoveryTimes {
		if i >= 6 {
			t.line("  ... and %d more recovery points", len(r.RecoveryTimes)-i)
			break
		}
		t.line("  N%d at t=%v", i+1, fmtDur(ts))
	}
	t.line("paper: Nsc takes control at N1, N2, pushes the drone back into φsafer and")
	t.line("returns control; AC is in control for most of the surveillance mission.")
	return t.String()
}

// Fig12b runs the surveillance mission.
func Fig12b(cfg Fig12bConfig) (Fig12bResult, error) {
	if cfg.Duration <= 0 {
		cfg.Duration = 2 * time.Minute
	}
	mcfg := mission.DefaultStackConfig(cfg.Seed)
	mcfg.App = mission.AppConfig{
		Points: []geom.Vec3{
			geom.V(3, 3, 2), geom.V(46, 3, 2.5), geom.V(46, 46, 2),
			geom.V(3, 46, 2.5), geom.V(25, 33, 3),
		},
	}
	if cfg.Faults {
		for i := 0; ; i++ {
			start := time.Duration(9+13*i) * time.Second
			if start >= cfg.Duration {
				break
			}
			mcfg.ACFaults = append(mcfg.ACFaults, controller.Fault{
				Kind:  controller.FaultFullThrust,
				Start: start,
				End:   start + 1200*time.Millisecond,
				Param: geom.V(1, 0.4, 0),
			})
		}
	}
	st, err := mission.Build(mcfg)
	if err != nil {
		return Fig12bResult{}, fmt.Errorf("fig12b: %w", err)
	}
	out, err := sim.Run(sim.RunConfig{
		Stack:           st,
		Initial:         plant.State{Pos: geom.V(3, 3, 2), Battery: 1},
		Duration:        cfg.Duration,
		Seed:            cfg.Seed,
		CheckInvariants: true,
	})
	if err != nil {
		return Fig12bResult{}, fmt.Errorf("fig12b: %w", err)
	}
	m := out.Metrics
	res := Fig12bResult{
		Duration:     m.Duration,
		Distance:     m.DistanceFlown,
		Targets:      m.TargetsVisited,
		Crashed:      m.Crashed,
		MinClearance: m.MinClearance,
	}
	if s, ok := m.Modules["safe-motion-primitive"]; ok {
		res.Disengagements = s.Disengagements
		res.Reengagements = s.Reengagements
		res.ACFraction = s.ACFraction()
	}
	for _, sw := range out.Switches {
		if sw.Module == "safe-motion-primitive" && sw.To == rta.ModeSC {
			res.RecoveryTimes = append(res.RecoveryTimes, sw.Time)
		}
	}
	return res, nil
}

// Fig12cConfig parameterises the battery-safety experiment.
type Fig12cConfig struct {
	Seed          int64
	InitialCharge float64
	DrainMultiple float64
}

// Fig12cResult reproduces Figure 12c: the battery falls below the safety
// threshold, the battery DM transfers control to the certified lander, and
// the drone lands with charge to spare — φbat holds.
type Fig12cResult struct {
	EngageTime  time.Duration
	Landed      bool
	LandTime    time.Duration
	Crashed     bool
	FinalCharge float64
	Tmax        float64
	CostStar    float64
}

// Format prints the Figure 12c summary.
func (r Fig12cResult) Format() string {
	var t table
	t.title("Figure 12c: battery-safety RTA — mission aborted, drone lands safely")
	t.row("lander engaged", "landed", "land time", "crashed", "final charge")
	t.row(fmtDur(r.EngageTime), fmt.Sprint(r.Landed), fmtDur(r.LandTime),
		fmt.Sprint(r.Crashed), fmtPct(r.FinalCharge))
	t.line("switch condition: bt − cost* < Tmax with Tmax=%.4f, cost*=%.5f", r.Tmax, r.CostStar)
	t.line("paper: when battery falls below the threshold, DM transfers control to Nsc,")
	t.line("which lands the drone (battery never reaches zero in flight).")
	return t.String()
}

// Fig12c runs the battery-safety experiment.
func Fig12c(cfg Fig12cConfig) (Fig12cResult, error) {
	if cfg.InitialCharge == 0 {
		cfg.InitialCharge = 0.92
	}
	if cfg.DrainMultiple == 0 {
		cfg.DrainMultiple = 30
	}
	params := plant.DefaultParams()
	params.IdleDrainPerSec *= cfg.DrainMultiple
	params.AccelDrainPerSec *= cfg.DrainMultiple

	mcfg := mission.DefaultStackConfig(cfg.Seed)
	mcfg.PlantParams = params
	mcfg.App = mission.AppConfig{
		Points: []geom.Vec3{
			geom.V(3, 3, 2), geom.V(46, 3, 2), geom.V(46, 46, 2), geom.V(3, 46, 2),
		},
	}
	st, err := mission.Build(mcfg)
	if err != nil {
		return Fig12cResult{}, fmt.Errorf("fig12c: %w", err)
	}
	out, err := sim.Run(sim.RunConfig{
		Stack:           st,
		Initial:         plant.State{Pos: geom.V(3, 3, 2), Battery: cfg.InitialCharge},
		Duration:        10 * time.Minute,
		Seed:            cfg.Seed,
		CheckInvariants: true,
	})
	if err != nil {
		return Fig12cResult{}, fmt.Errorf("fig12c: %w", err)
	}
	m := out.Metrics
	res := Fig12cResult{
		Landed:      m.Landed,
		LandTime:    m.LandTime,
		Crashed:     m.Crashed,
		FinalCharge: m.BatteryAtEnd,
		Tmax:        st.Monitor.Tmax(),
		CostStar:    st.Monitor.CostStar(),
	}
	for _, sw := range out.Switches {
		if sw.Module == "battery-safety" && sw.To == rta.ModeSC {
			res.EngageTime = sw.Time
			break
		}
	}
	return res, nil
}
