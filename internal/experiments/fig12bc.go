package experiments

import (
	"context"
	"fmt"
	"time"

	"repro/internal/fleet"
	"repro/internal/rta"
	"repro/internal/scenario"
	"repro/internal/sim"
)

// Fig12bConfig parameterises the surveillance-mission experiment.
type Fig12bConfig struct {
	Seed     int64
	Duration time.Duration
	// Faults injects the AC misbehaviour that produces the N1/N2 recovery
	// events of the figure.
	Faults bool
	// Context, when non-nil, cancels the run.
	Context context.Context
}

// Fig12bResult reproduces Figure 12b: during the surveillance mission the SC
// takes control at a handful of points (N1, N2), pushes the drone back into
// φsafer (green) and returns control; the AC is in control for most of the
// mission and the drone never collides.
type Fig12bResult struct {
	Duration       time.Duration
	Distance       float64
	Targets        int
	Crashed        bool
	MinClearance   float64
	Disengagements int
	Reengagements  int
	ACFraction     float64
	RecoveryTimes  []time.Duration
}

// Format prints the Figure 12b mission summary.
func (r Fig12bResult) Format() string {
	var t table
	t.title("Figure 12b: RTA-protected surveillance mission (city workspace)")
	t.row("duration", "distance", "targets", "crashed", "min clearance")
	t.row(fmtDur(r.Duration), fmt.Sprintf("%.0f m", r.Distance), fmt.Sprint(r.Targets),
		fmt.Sprint(r.Crashed), fmt.Sprintf("%.2f m", r.MinClearance))
	t.row("AC→SC", "SC→AC", "AC fraction", "", "")
	t.row(fmt.Sprint(r.Disengagements), fmt.Sprint(r.Reengagements), fmtPct(r.ACFraction), "", "")
	for i, ts := range r.RecoveryTimes {
		if i >= 6 {
			t.line("  ... and %d more recovery points", len(r.RecoveryTimes)-i)
			break
		}
		t.line("  N%d at t=%v", i+1, fmtDur(ts))
	}
	t.line("paper: Nsc takes control at N1, N2, pushes the drone back into φsafer and")
	t.line("returns control; AC is in control for most of the surveillance mission.")
	return t.String()
}

// fig12bSpec declares the Figure 12b mission as an override of the
// registered surveillance-city scenario.
func fig12bSpec(duration time.Duration, faults bool) scenario.Spec {
	return scenario.MustGet("surveillance-city").With(scenario.Override{Apply: func(sp *scenario.Spec) {
		sp.Duration = duration
		if !faults {
			sp.Faults = scenario.FaultProfile{}
		}
	}})
}

// Fig12b runs the surveillance mission.
func Fig12b(cfg Fig12bConfig) (Fig12bResult, error) {
	if cfg.Duration <= 0 {
		cfg.Duration = 2 * time.Minute
	}
	rcfg, err := fig12bSpec(cfg.Duration, cfg.Faults).Build(cfg.Seed)
	if err != nil {
		return Fig12bResult{}, fmt.Errorf("fig12b: %w", err)
	}
	rcfg.Context = runCtx(cfg.Context)
	out, err := sim.Run(rcfg)
	if err != nil {
		return Fig12bResult{}, fmt.Errorf("fig12b: %w", err)
	}
	m := out.Metrics
	res := Fig12bResult{
		Duration:     m.Duration,
		Distance:     m.DistanceFlown,
		Targets:      m.TargetsVisited,
		Crashed:      m.Crashed,
		MinClearance: m.MinClearance,
	}
	if s, ok := m.Modules["safe-motion-primitive"]; ok {
		res.Disengagements = s.Disengagements
		res.Reengagements = s.Reengagements
		res.ACFraction = s.ACFraction()
	}
	for _, sw := range out.Switches {
		if sw.Module == "safe-motion-primitive" && sw.To == rta.ModeSC {
			res.RecoveryTimes = append(res.RecoveryTimes, sw.Time)
		}
	}
	return res, nil
}

// Fig12cConfig parameterises the battery-safety experiment.
type Fig12cConfig struct {
	Seed          int64
	InitialCharge float64
	DrainMultiple float64
	// Context, when non-nil, cancels the run.
	Context context.Context
}

// Fig12cResult reproduces Figure 12c: the battery falls below the safety
// threshold, the battery DM transfers control to the certified lander, and
// the drone lands with charge to spare — φbat holds.
type Fig12cResult struct {
	EngageTime  time.Duration
	Landed      bool
	LandTime    time.Duration
	Crashed     bool
	FinalCharge float64
	Tmax        float64
	CostStar    float64
}

// Format prints the Figure 12c summary.
func (r Fig12cResult) Format() string {
	var t table
	t.title("Figure 12c: battery-safety RTA — mission aborted, drone lands safely")
	t.row("lander engaged", "landed", "land time", "crashed", "final charge")
	t.row(fmtDur(r.EngageTime), fmt.Sprint(r.Landed), fmtDur(r.LandTime),
		fmt.Sprint(r.Crashed), fmtPct(r.FinalCharge))
	t.line("switch condition: bt − cost* < Tmax with Tmax=%.4f, cost*=%.5f", r.Tmax, r.CostStar)
	t.line("paper: when battery falls below the threshold, DM transfers control to Nsc,")
	t.line("which lands the drone (battery never reaches zero in flight).")
	return t.String()
}

// Fig12c runs the battery-safety experiment.
func Fig12c(cfg Fig12cConfig) (Fig12cResult, error) {
	spec := scenario.MustGet("battery-stress").With(scenario.Override{Apply: func(sp *scenario.Spec) {
		if cfg.InitialCharge > 0 {
			sp.InitialBattery = cfg.InitialCharge
		}
		if cfg.DrainMultiple > 0 {
			sp.DrainMultiple = cfg.DrainMultiple
		}
	}})
	rcfg, err := spec.Build(cfg.Seed)
	if err != nil {
		return Fig12cResult{}, fmt.Errorf("fig12c: %w", err)
	}
	rcfg.Context = runCtx(cfg.Context)
	out, err := sim.Run(rcfg)
	if err != nil {
		return Fig12cResult{}, fmt.Errorf("fig12c: %w", err)
	}
	st := rcfg.Stack
	m := out.Metrics
	res := Fig12cResult{
		Landed:      m.Landed,
		LandTime:    m.LandTime,
		Crashed:     m.Crashed,
		FinalCharge: m.BatteryAtEnd,
		Tmax:        st.Monitor.Tmax(),
		CostStar:    st.Monitor.CostStar(),
	}
	for _, sw := range out.Switches {
		if sw.Module == "battery-safety" && sw.To == rta.ModeSC {
			res.EngageTime = sw.Time
			break
		}
	}
	return res, nil
}

// Fig12bFleetConfig parameterises the multi-seed surveillance sweep: the
// Figure 12b mission repeated across many seeds through the fleet engine.
// The paper flies the mission once; the sweep turns its headline claim — SC
// takes over at the N points and the drone never collides — into a
// statistical statement across seeds.
type Fig12bFleetConfig struct {
	BaseSeed int64
	// Missions is the number of seeded repetitions (default 8).
	Missions int
	Duration time.Duration
	Faults   bool
	// Workers bounds the fleet worker pool (0 = GOMAXPROCS).
	Workers int
	// Context, when non-nil, cancels the sweep.
	Context context.Context
}

// Fig12bFleetResult aggregates the sweep.
type Fig12bFleetResult struct {
	Missions            int
	Workers             int
	Crashes             int
	MeanDisengagements  float64
	MeanACFraction      float64
	TotalDistanceKm     float64
	InvariantViolations int
	SimTime             time.Duration
	Wall                time.Duration
	Throughput          float64 // missions per wall-clock second
}

// Format prints the sweep summary.
func (r Fig12bFleetResult) Format() string {
	var t table
	t.title("Figure 12b fleet sweep: seeded surveillance missions in parallel")
	t.row("missions", "workers", "crashes", "mean AC→SC", "mean AC frac")
	t.row(fmt.Sprint(r.Missions), fmt.Sprint(r.Workers), fmt.Sprint(r.Crashes),
		fmt.Sprintf("%.1f", r.MeanDisengagements), fmtPct(r.MeanACFraction))
	t.line("distance %.2f km  sim %v  wall %v  %.2f missions/s  φInv violations %d",
		r.TotalDistanceKm, fmtDur(r.SimTime), fmtDur(r.Wall), r.Throughput, r.InvariantViolations)
	t.line("paper flies this mission once; across seeds the protected stack should")
	t.line("keep the crash count at zero while the AC stays in control most of the time.")
	return t.String()
}

// Fig12bFleet runs the sweep.
func Fig12bFleet(cfg Fig12bFleetConfig) (Fig12bFleetResult, error) {
	if cfg.Missions <= 0 {
		cfg.Missions = 8
	}
	if cfg.Duration <= 0 {
		cfg.Duration = time.Minute
	}
	missions := fleet.ScenarioGrid(fleet.GridConfig{
		Specs: []scenario.Spec{fig12bSpec(cfg.Duration, cfg.Faults)},
		Seeds: fleet.Seeds(cfg.BaseSeed, cfg.Missions),
	})
	rep := fleet.Run(runCtx(cfg.Context), missions, fleet.Options{Workers: cfg.Workers})
	if err := rep.FirstErr(); err != nil {
		return Fig12bFleetResult{}, fmt.Errorf("fig12b fleet: %w", err)
	}
	res := Fig12bFleetResult{
		Missions:            rep.Missions,
		Workers:             rep.Workers,
		Crashes:             rep.Crashes,
		TotalDistanceKm:     rep.DistanceKm,
		InvariantViolations: rep.InvariantViolations,
		SimTime:             rep.SimTime,
		Wall:                rep.Wall,
		Throughput:          rep.Throughput(),
	}
	if s := rep.ModuleStats("safe-motion-primitive"); s.ACTime+s.SCTime > 0 {
		res.MeanACFraction = s.ACFraction()
		res.MeanDisengagements = float64(s.Disengagements) / float64(rep.Missions)
	}
	return res, nil
}
