package experiments

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"time"

	"repro/internal/controller"
	"repro/internal/fleet"
	"repro/internal/geom"
	"repro/internal/plant"
	"repro/internal/scenario"
)

// Fig5Config parameterises the Figure 5 experiments: unprotected third-party
// and machine-learning controllers exhibiting unsafe maneuvers.
type Fig5Config struct {
	Seed int64
	// Laps is the number of tour repetitions.
	Laps int
	// Workers bounds the fleet worker pool the independent loops of the
	// figure-eight sweep are dispatched across (0 = GOMAXPROCS).
	Workers int
	// Context, when non-nil, cancels the sweep.
	Context context.Context
}

// Fig5RightResult reports the PX4-style third-party controller experiment:
// the drone repeatedly visits g1..g4; during high-speed maneuvers the
// reduced control leads to overshoot and trajectories that collide with the
// obstacles (red regions) near the corners.
type Fig5RightResult struct {
	Laps          int
	CollidingLaps int
	MaxOvershoot  float64 // metres beyond the waypoint square
	AvgLapTime    time.Duration
}

// Format prints the Figure 5 (right) series.
func (r Fig5RightResult) Format() string {
	var t table
	t.title("Figure 5 (right): third-party (PX4-style) controller, g1..g4 tour, unprotected")
	t.row("laps", "colliding laps", "max overshoot", "avg lap time")
	t.row(fmt.Sprint(r.Laps), fmt.Sprint(r.CollidingLaps), fmt.Sprintf("%.2f m", r.MaxOvershoot), fmtDur(r.AvgLapTime))
	t.line("paper: the time-optimised low-level controller overshoots during high-speed")
	t.line("maneuvers and its trajectories collide with the red regions near the corners.")
	return t.String()
}

// fig5Workspace resolves the g1..g4 corner-hazard layout shared with the
// corner-hazard-tour scenario: the workspace lives in internal/geom and the
// tour in the scenario catalog, so the unprotected Figure 5 run and the
// protected Figure 12a comparison fly exactly the same geometry.
func fig5Workspace() (*geom.Workspace, []geom.Vec3) {
	return geom.CornerHazardWorkspace(), scenario.CornerTour()
}

// trackTour runs a bare controller (no RTA) around the waypoint tour,
// returning per-lap collision flags, the max overshoot beyond the square
// and the average lap time. Cancelling the context stops between laps;
// collided is truncated to the laps that actually ran.
func trackTour(ctx context.Context, ctrl controller.Controller, ws *geom.Workspace, tour []geom.Vec3, laps int, seed int64) (collided []bool, maxOvershoot float64, avgLap time.Duration) {
	params := plant.DefaultParams()
	drone, err := plant.NewDrone(params, seed)
	if err != nil {
		panic(err)
	}
	state := plant.State{Pos: tour[len(tour)-1], Battery: 1}
	const dt = 20 * time.Millisecond
	const tolerance = 0.8
	collided = make([]bool, laps)
	var totalLapTime time.Duration

	now := time.Duration(0)
	for lap := 0; lap < laps; lap++ {
		if ctx.Err() != nil {
			collided = collided[:lap]
			laps = lap
			break
		}
		lapStart := now
		for _, wp := range tour {
			deadline := now + 60*time.Second
			for state.Pos.Dist(wp) > tolerance && now < deadline {
				u := ctrl.Control(now, state.Pos, state.Vel, wp)
				state = drone.Step(state, u, dt)
				now += dt
				if !ws.Free(state.Pos) {
					collided[lap] = true
				}
				if ov := overshootBeyond(state.Pos, tour); ov > maxOvershoot {
					maxOvershoot = ov
				}
			}
		}
		totalLapTime += now - lapStart
	}
	if laps > 0 {
		avgLap = totalLapTime / time.Duration(laps)
	}
	return collided, maxOvershoot, avgLap
}

// overshootBeyond measures how far p lies outside the bounding box of the
// tour waypoints.
func overshootBeyond(p geom.Vec3, tour []geom.Vec3) float64 {
	box := geom.AABB{Min: tour[0], Max: tour[0]}
	for _, w := range tour[1:] {
		box = box.Union(geom.AABB{Min: w, Max: w})
	}
	return box.Distance(geom.V(p.X, p.Y, box.Center().Z))
}

// Fig5Right runs the third-party-controller experiment. A cancelled context
// returns the laps completed so far together with the context's error.
func Fig5Right(cfg Fig5Config) (Fig5RightResult, error) {
	if cfg.Laps <= 0 {
		cfg.Laps = 10
	}
	ctx := runCtx(cfg.Context)
	ws, tour := fig5Workspace()
	params := plant.DefaultParams()
	ac := controller.NewAggressive(controller.Limits{MaxAccel: params.MaxAccel, MaxVel: params.MaxVel})
	collided, overshoot, avgLap := trackTour(ctx, ac, ws, tour, cfg.Laps, cfg.Seed)
	res := Fig5RightResult{Laps: len(collided), MaxOvershoot: overshoot, AvgLapTime: avgLap}
	for _, c := range collided {
		if c {
			res.CollidingLaps++
		}
	}
	return res, ctx.Err()
}

// Fig5LeftResult reports the data-driven controller experiment: tracking a
// figure-eight reference, most loops follow closely (green) while some
// deviate dangerously (red).
type Fig5LeftResult struct {
	Loops        int
	UnsafeLoops  int
	MaxDeviation float64
	AvgDeviation float64
	Threshold    float64
}

// Format prints the Figure 5 (left) series.
func (r Fig5LeftResult) Format() string {
	var t table
	t.title("Figure 5 (left): data-driven controller on a figure-eight, unprotected")
	t.row("loops", "unsafe loops", "max deviation", "avg deviation", "threshold")
	t.row(fmt.Sprint(r.Loops), fmt.Sprint(r.UnsafeLoops),
		fmt.Sprintf("%.2f m", r.MaxDeviation), fmt.Sprintf("%.2f m", r.AvgDeviation),
		fmt.Sprintf("%.2f m", r.Threshold))
	t.line("paper: green loops closely follow the reference; red loops deviate dangerously.")
	return t.String()
}

// fig5Loop is the verdict of one independent figure-eight loop.
type fig5Loop struct {
	max      float64
	devSum   float64
	devCount int
}

// Fig5Left runs the learned-controller figure-eight experiment. Every loop
// flies the eight at a different location with its own drone and noise
// stream, so the loop sweep is an independent scenario set and is dispatched
// through the fleet engine's worker pool. A cancelled context returns the
// loops completed so far together with the context's error.
func Fig5Left(cfg Fig5Config) (Fig5LeftResult, error) {
	if cfg.Laps <= 0 {
		cfg.Laps = 12
	}
	params := plant.DefaultParams()
	// Realistic state estimation noise: loop-to-loop variation decides how
	// deeply the trajectory cuts into the policy's mis-trained cells, so
	// some loops stay green and some go red, as in the figure.
	params.SensorNoise = 0.12
	limits := controller.Limits{MaxAccel: params.MaxAccel, MaxVel: params.MaxVel}
	// The learned policy is stateless (its per-cell gains are derived by
	// hashing the observed state), so one instance is safely shared by all
	// loop workers.
	learned := controller.NewLearned(limits, 0.18, cfg.Seed)

	// Figure-eight reference: a Lissajous curve in the XY plane, paced so
	// the reference speed stays well under the velocity cap.
	const (
		period       = 40 * time.Second
		ax           = 12.0
		ay           = 6.0
		curveSamples = 512
		dt           = 20 * time.Millisecond
	)
	// Each loop flies the eight at a slightly different location (as when a
	// mission surveys neighbouring blocks): whether the path crosses the
	// policy's mis-trained state-space cells varies per loop. Centers are
	// drawn sequentially so the scenario set does not depend on the worker
	// count.
	rng := rand.New(rand.NewSource(cfg.Seed + 42))
	center := geom.V(20, 20, 3)
	centers := make([]geom.Vec3, cfg.Laps)
	for i := range centers {
		centers[i] = center.Add(geom.V((rng.Float64()*2-1)*4, (rng.Float64()*2-1)*4, 0))
	}

	loops, err := fleet.Map(runCtx(cfg.Context), cfg.Workers, cfg.Laps, func(ctx context.Context, loop int) (fig5Loop, error) {
		if err := ctx.Err(); err != nil {
			return fig5Loop{}, err
		}
		loopCenter := centers[loop]
		ref := func(t time.Duration) geom.Vec3 {
			phase := 2 * math.Pi * float64(t) / float64(period)
			return loopCenter.Add(geom.V(ax*math.Sin(phase), ay*math.Sin(2*phase), 0))
		}
		// Pre-sample the curve for cross-track error: the deviation of a
		// loop is the distance to the nearest point of the reference eight,
		// not the lag behind the moving reference.
		curve := make([]geom.Vec3, curveSamples)
		for i := range curve {
			curve[i] = ref(period * time.Duration(i) / curveSamples)
		}
		crossTrack := func(p geom.Vec3) float64 {
			best := math.Inf(1)
			for _, c := range curve {
				if d := p.Dist(c); d < best {
					best = d
				}
			}
			return best
		}
		// A per-loop drone isolates the sensor-noise stream.
		drone, err := plant.NewDrone(params, cfg.Seed+int64(loop)*131)
		if err != nil {
			return fig5Loop{}, err
		}
		state := plant.State{Pos: ref(0), Battery: 1}
		var out fig5Loop
		start := time.Duration(loop) * period
		for t := start; t < start+period; t += dt {
			// Track a point slightly ahead on the reference, from the noisy
			// state estimate.
			target := ref(t + 500*time.Millisecond)
			obs := drone.Observe(state)
			u := learned.Control(t, obs.Pos, obs.Vel, target)
			state = drone.Step(state, u, dt)
			dev := crossTrack(state.Pos)
			out.devSum += dev
			out.devCount++
			if dev > out.max {
				out.max = dev
			}
		}
		return out, nil
	})
	if err != nil && !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded) {
		panic(err) // beyond cancellation, only NewDrone can fail, and only on invalid static params
	}

	res := Fig5LeftResult{Threshold: 0.9}
	var devSum float64
	var devCount int
	for _, l := range loops {
		if l.devCount == 0 {
			continue // loop never ran (cancelled sweep): don't score it as safe
		}
		res.Loops++
		devSum += l.devSum
		devCount += l.devCount
		if l.max > res.Threshold {
			res.UnsafeLoops++
		}
		if l.max > res.MaxDeviation {
			res.MaxDeviation = l.max
		}
	}
	if devCount > 0 {
		res.AvgDeviation = devSum / float64(devCount)
	}
	return res, err
}
