package experiments

import (
	"fmt"
	"time"

	"repro/internal/fleet"
	"repro/internal/rta"
	"repro/internal/scenario"
)

// PolicyRow is one switching policy's verdict on the faulted ablation
// mission.
type PolicyRow struct {
	// Policy is the canonical policy spec of the row.
	Policy         string
	Crashed        bool
	Targets        int
	Distance       float64
	ACFraction     float64
	Disengagements int
	// Clamped counts the disengagements forced by the framework clamp — the
	// module overriding the policy's AC proposal in an unsafe state. Nonzero
	// only for policies (always-ac) that propose AC regardless of ttf2Δ.
	Clamped int
}

// AblationPolicyResult sweeps the switching-policy registry over the faulted
// surveillance mission — the new ablation axis the rta.Policy redesign
// opens. The paper compares its Figure 9 two-way switching against classic
// Simplex; with policies first-class, the comparison generalizes to a
// policy × scenario × seed grid: the Figure 9 baseline, dwell and hysteresis
// variants trading AC utilisation against switching rate, and the always-ac /
// always-sc bounds. Every row is safe by construction — the module clamps
// unsafe AC proposals to SC — so the sweep varies performance only, which is
// the point.
type AblationPolicyResult struct {
	Rows []PolicyRow
}

// Format prints the policy sweep.
func (r AblationPolicyResult) Format() string {
	var t table
	t.title("Ablation: switching policies (policy proposes, module disposes)")
	t.row("policy", "crashed", "targets", "distance", "AC fraction", "switches", "clamped")
	for _, row := range r.Rows {
		t.row(row.Policy, fmt.Sprint(row.Crashed), fmt.Sprint(row.Targets),
			fmt.Sprintf("%.0f m", row.Distance), fmtPct(row.ACFraction),
			fmt.Sprint(row.Disengagements), fmt.Sprint(row.Clamped))
	}
	t.line("safety is framework-enforced: even always-ac cannot crash — its unsafe AC")
	t.line("proposals are clamped to SC; policies trade AC time against switching only.")
	return t.String()
}

// ablationPolicies is the swept registry subset: the Figure 9 default, a
// dwell and a hysteresis variant with parameters that bite at the ablation
// mission's Δ = 100ms, and the two bounds.
func ablationPolicies() []string {
	return []string{
		rta.DefaultPolicyName,
		"sticky-sc:30",
		"hysteresis:5",
		"always-ac",
		"always-sc",
	}
}

// AblationPolicy runs the sweep as a scenario-grid batch: one base spec, one
// override per policy, every cell an isolated mission.
func AblationPolicy(cfg AblationConfig) (AblationPolicyResult, error) {
	if cfg.Duration <= 0 {
		cfg.Duration = 80 * time.Second
	}
	specs := ablationPolicies()
	overrides := make([]scenario.Override, len(specs))
	for i, pol := range specs {
		pol := pol
		overrides[i] = scenario.Override{
			Name:  pol,
			Apply: func(sp *scenario.Spec) { sp.SwitchPolicy = pol },
		}
	}
	missions := fleet.ScenarioGrid(fleet.GridConfig{
		Specs:     []scenario.Spec{ablationSpec(cfg.Duration)},
		Overrides: overrides,
		Seeds:     []int64{cfg.Seed},
	})
	rep := fleet.Run(runCtx(cfg.Context), missions, fleet.Options{Workers: cfg.Workers})
	if err := rep.FirstErr(); err != nil {
		return AblationPolicyResult{}, fmt.Errorf("ablation policy: %w", err)
	}
	var res AblationPolicyResult
	for i, out := range rep.Results {
		m := out.Metrics
		row := PolicyRow{Policy: specs[i], Crashed: m.Crashed, Targets: m.TargetsVisited, Distance: m.DistanceFlown}
		if s, ok := m.Modules["safe-motion-primitive"]; ok {
			row.ACFraction = s.ACFraction()
			row.Disengagements = s.Disengagements
			row.Clamped = s.Clamped
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}
