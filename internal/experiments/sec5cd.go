package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"repro/internal/fleet"
	"repro/internal/geom"
	"repro/internal/plan"
	"repro/internal/scenario"
	"repro/internal/sim"
)

// Sec5cConfig parameterises the safe-motion-planner experiment.
type Sec5cConfig struct {
	Seed    int64
	Queries int
	Bug     plan.Bug
	BugRate float64
	// ClosedLoop additionally runs the full stack with the buggy planner
	// under RTA protection.
	ClosedLoop time.Duration
	// Context, when non-nil, cancels the closed-loop run.
	Context context.Context
}

// Sec5cResult reproduces Section V-C: the buggy third-party RRT* emits
// colliding motion plans; wrapped in an RTA module with the certified A*
// planner as SC, the plan followed by the drone never violates φplan.
type Sec5cResult struct {
	Queries         int
	BuggyColliding  int
	BuggyFailed     int
	CertColliding   int
	ClosedLoopRan   bool
	ClosedCrashed   bool
	ClosedTargets   int
	PlannerSwitches int
	PlannerACFrac   float64
}

// Format prints the Section V-C comparison.
func (r Sec5cResult) Format() string {
	var t table
	t.title("Section V-C: RTA-protected motion planner (buggy RRT* vs certified A*)")
	t.row("planner", "colliding plans", "failures")
	t.row("third-party RRT*", fmt.Sprintf("%d/%d", r.BuggyColliding, r.Queries), fmt.Sprint(r.BuggyFailed))
	t.row("certified A*", fmt.Sprintf("%d/%d", r.CertColliding, r.Queries), "0")
	if r.ClosedLoopRan {
		t.line("closed loop under RTA: crashed=%v targets=%d planner AC→SC switches=%d AC fraction=%s",
			r.ClosedCrashed, r.ClosedTargets, r.PlannerSwitches, fmtPct(r.PlannerACFrac))
	}
	t.line("paper: injected RRT* bugs produce colliding plans; the RTA wrapper ensures the")
	t.line("waypoints followed never collide with an obstacle (φplan).")
	return t.String()
}

// Sec5c runs the planner experiment.
func Sec5c(cfg Sec5cConfig) (Sec5cResult, error) {
	if cfg.Queries <= 0 {
		cfg.Queries = 40
	}
	if cfg.Bug == plan.BugNone {
		cfg.Bug = plan.BugSkipEdgeCheck
	}
	if cfg.BugRate == 0 {
		cfg.BugRate = 0.3
	}
	ws := geom.CityWorkspace()
	const margin = 0.45

	rcfg := plan.DefaultRRTStarConfig(cfg.Seed)
	rcfg.Margin = margin
	rcfg.Bug = cfg.Bug
	rcfg.BugRate = cfg.BugRate
	buggy, err := plan.NewRRTStar(ws, rcfg)
	if err != nil {
		return Sec5cResult{}, err
	}
	astar, err := plan.NewAStar(ws, 1.0, margin)
	if err != nil {
		return Sec5cResult{}, err
	}

	res := Sec5cResult{Queries: cfg.Queries}
	rng := rand.New(rand.NewSource(cfg.Seed))
	for i := 0; i < cfg.Queries; i++ {
		start, ok1 := ws.RandomFreePoint(rng, margin+0.6, 256)
		goal, ok2 := ws.RandomFreePoint(rng, margin+0.6, 256)
		if !ok1 || !ok2 {
			return Sec5cResult{}, fmt.Errorf("sec5c: could not sample free query points")
		}
		start.Z, goal.Z = clampF(start.Z, 1, 10), clampF(goal.Z, 1, 10)
		if p, err := buggy.Plan(start, goal); err != nil {
			res.BuggyFailed++
		} else if plan.FirstUnsafeSegment(p, ws, margin) >= 0 {
			res.BuggyColliding++
		}
		p, err := astar.Plan(start, goal)
		if err != nil {
			return Sec5cResult{}, fmt.Errorf("sec5c: certified planner failed: %w", err)
		}
		if plan.FirstUnsafeSegment(p, ws, margin) >= 0 {
			res.CertColliding++
		}
	}

	if cfg.ClosedLoop > 0 {
		spec := scenario.MustGet("planner-bug-gauntlet").With(scenario.Override{Apply: func(sp *scenario.Spec) {
			sp.PlannerBug = cfg.Bug
			sp.PlannerBugRate = cfg.BugRate
			sp.Duration = cfg.ClosedLoop
		}})
		rcfg, err := spec.Build(cfg.Seed)
		if err != nil {
			return Sec5cResult{}, fmt.Errorf("sec5c closed loop: %w", err)
		}
		rcfg.Context = runCtx(cfg.Context)
		out, err := sim.Run(rcfg)
		if err != nil {
			return Sec5cResult{}, fmt.Errorf("sec5c closed loop: %w", err)
		}
		res.ClosedLoopRan = true
		res.ClosedCrashed = out.Metrics.Crashed
		res.ClosedTargets = out.Metrics.TargetsVisited
		if s, ok := out.Metrics.Modules["safe-motion-planner"]; ok {
			res.PlannerSwitches = s.Disengagements
			res.PlannerACFrac = s.ACFraction()
		}
	}
	return res, nil
}

// Sec5dConfig parameterises the endurance experiment.
type Sec5dConfig struct {
	Seed int64
	// SimHours is the total simulated flight time per configuration.
	SimHours float64
	// SegmentMinutes splits the total into independent missions.
	SegmentMinutes int
	// JitterProb is the per-firing outage-start probability in the
	// best-effort-scheduling configuration.
	JitterProb float64
	// Workers bounds the fleet worker pool the segments are dispatched
	// across (0 = GOMAXPROCS).
	Workers int
	// Context, when non-nil, cancels the endurance sweep.
	Context context.Context
}

// Sec5dRow is one scheduling configuration of the endurance study.
type Sec5dRow struct {
	Scheduling     string
	SimHours       float64
	DistanceKm     float64
	Disengagements int
	Crashes        int
	ACFraction     float64
	DroppedFirings int
}

// Sec5dResult reproduces the Section V-D endurance study: 104 hours of
// software-in-the-loop simulation, ~1505 km flown, 109 disengagements where
// an SC took over and avoided a failure, 34 crashes all traced to the SC not
// being scheduled in time (absent on an RTOS), and the AC in control > 96%
// of the time.
type Sec5dResult struct {
	Rows []Sec5dRow
}

// Format prints the Section V-D endurance table.
func (r Sec5dResult) Format() string {
	var t table
	t.title("Section V-D: endurance study (randomised surveillance, scaled hours)")
	t.row("scheduling", "sim hours", "distance", "diseng.", "crashes", "AC fraction")
	for _, row := range r.Rows {
		t.row(row.Scheduling, fmt.Sprintf("%.2f h", row.SimHours),
			fmt.Sprintf("%.1f km", row.DistanceKm), fmt.Sprint(row.Disengagements),
			fmt.Sprint(row.Crashes), fmtPct(row.ACFraction))
	}
	t.line("paper (104 h): 1505 km, 109 disengagements, 34 crashes (all: SC not scheduled")
	t.line("in time — expected to vanish on an RTOS), AC in control > 96%% of the time.")
	return t.String()
}

// Sec5d runs the endurance study under RTOS-like (no jitter) and
// best-effort (burst outage) scheduling. The independent mission segments of
// each scheduling configuration are dispatched through the fleet engine, so
// the scaled hours simulate in parallel.
func Sec5d(cfg Sec5dConfig) (Sec5dResult, error) {
	if cfg.SimHours <= 0 {
		cfg.SimHours = 0.5
	}
	if cfg.SegmentMinutes <= 0 {
		cfg.SegmentMinutes = 5
	}
	if cfg.JitterProb == 0 {
		cfg.JitterProb = 0.006
	}
	// The endurance segments are the registered random-endurance scenario
	// (randomly drawn targets, one sporadic AC failure per segment — the
	// paper's rare third-party failures, 109 disengagements in 104 hours);
	// the two scheduling configurations are jitter overrides of it.
	var res Sec5dResult
	for _, sched := range []struct {
		name   string
		jitter float64
	}{
		{"best-effort OS", cfg.JitterProb},
		{"RTOS (no jitter)", 0},
	} {
		row := Sec5dRow{Scheduling: sched.name}
		segments := int(cfg.SimHours*60.0/float64(cfg.SegmentMinutes) + 0.5)
		jitter := sched.jitter
		missions := fleet.ScenarioGrid(fleet.GridConfig{
			Specs: []scenario.Spec{scenario.MustGet("random-endurance")},
			Overrides: []scenario.Override{{Name: sched.name, Apply: func(sp *scenario.Spec) {
				sp.JitterProb = jitter
				sp.JitterSCOnly = true
			}}},
			Seeds:    fleet.Seeds(cfg.Seed, segments),
			Duration: time.Duration(cfg.SegmentMinutes) * time.Minute,
		})
		rep := fleet.Run(runCtx(cfg.Context), missions, fleet.Options{Workers: cfg.Workers})
		if err := rep.FirstErr(); err != nil {
			return Sec5dResult{}, fmt.Errorf("sec5d: %w", err)
		}
		for _, out := range rep.Results {
			m := out.Metrics
			row.SimHours += m.Duration.Hours()
			row.DistanceKm += m.DistanceFlown / 1000
			row.Disengagements += m.TotalDisengagements()
			row.DroppedFirings += m.DroppedFirings
			if m.Crashed {
				row.Crashes++
			}
		}
		if s := rep.ModuleStats("safe-motion-primitive"); s.ACTime+s.SCTime > 0 {
			row.ACFraction = s.ACFraction()
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

func clampF(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
