package experiments

import (
	"context"
	"fmt"
	"time"

	"repro/internal/mission"
	"repro/internal/scenario"
	"repro/internal/sim"
)

// Fig12aConfig parameterises the timing-comparison experiment.
type Fig12aConfig struct {
	Seed int64
	// Tours is the number of g1..g4 tours to average over.
	Tours int
	// Context, when non-nil, cancels the experiment's runs.
	Context context.Context
}

// Fig12aRow is one configuration of the comparison.
type Fig12aRow struct {
	Mode           string
	TourTime       time.Duration
	Collisions     int
	Disengagements int
	ACFraction     float64
}

// Fig12aResult reproduces the Figure 12a timing numbers: the g1→g4 mission
// takes 10 s with only the unsafe AC (which can collide), 14 s with the
// RTA-protected motion primitive, and 24 s with only the safe controller —
// RTA is the "safe middle ground without sacrificing performance too much".
type Fig12aResult struct {
	Rows []Fig12aRow
}

// Format prints the Figure 12a comparison table.
func (r Fig12aResult) Format() string {
	var t table
	t.title("Figure 12a: g1..g4 tour time — AC only vs RTA-protected vs SC only")
	t.row("configuration", "tour time", "collisions", "disengagements", "AC fraction")
	for _, row := range r.Rows {
		t.row(row.Mode, fmtDur(row.TourTime), fmt.Sprint(row.Collisions),
			fmt.Sprint(row.Disengagements), fmtPct(row.ACFraction))
	}
	t.line("paper: 10 s AC-only (collides), 14 s RTA, 24 s SC-only.")
	return t.String()
}

// Fig12a runs the three-way comparison: the registered corner-hazard-tour
// scenario (motion layer only, waypoints deliberately near the hazard
// blocks; the aggressive controller's own corner overshoot is the hazard,
// exactly as in the paper's timing comparison) with the protection mode as
// the only override.
func Fig12a(cfg Fig12aConfig) (Fig12aResult, error) {
	if cfg.Tours <= 0 {
		cfg.Tours = 2
	}
	base := scenario.MustGet("corner-hazard-tour")
	var res Fig12aResult
	for _, mode := range []mission.ProtectionMode{
		mission.ProtectACOnly, mission.ProtectRTA, mission.ProtectSCOnly,
	} {
		mode := mode
		spec := base.With(scenario.Override{Apply: func(sp *scenario.Spec) { sp.Protection = mode }})
		rcfg, err := spec.Build(cfg.Seed)
		if err != nil {
			return Fig12aResult{}, fmt.Errorf("fig12a %v: %w", mode, err)
		}
		rcfg.KeepFlyingAfterCrash = true // score collisions, finish the tour
		rcfg.StopAfterVisits = cfg.Tours * len(base.Targets)
		rcfg.Context = runCtx(cfg.Context)
		out, err := sim.Run(rcfg)
		if err != nil {
			return Fig12aResult{}, fmt.Errorf("fig12a %v: %w", mode, err)
		}
		m := out.Metrics
		row := Fig12aRow{
			Mode:       mode.String(),
			TourTime:   m.Duration / time.Duration(cfg.Tours),
			Collisions: m.Collisions,
		}
		if s, ok := m.Modules["safe-motion-primitive"]; ok {
			row.Disengagements = s.Disengagements
			row.ACFraction = s.ACFraction()
		} else if mode == mission.ProtectACOnly {
			row.ACFraction = 1
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}
