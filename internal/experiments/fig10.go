package experiments

import (
	"math/rand"
	"time"

	"repro/internal/geom"
	"repro/internal/mission"
	"repro/internal/plant"
	"repro/internal/reach"
)

// Fig10Config parameterises the regions-of-operation study.
type Fig10Config struct {
	Seed    int64
	Samples int
}

// Fig10Result reports the regions of operation of Figure 10 (fractions of
// sampled kinematic states per region) and cross-validates the analytic
// reach sets against the grid backward-reachability computation standing in
// for the Level-Set Toolbox (the yellow/green regions of Figure 12b).
type Fig10Result struct {
	Samples   int
	Fractions map[reach.Region]float64
	// GridEscapableFrac is the fraction of free cells from which the
	// velocity-bounded plant can leave φsafe within 2Δ, per the grid BRS.
	GridEscapableFrac float64
	// Agreement is the fraction of zero-velocity samples where the analytic
	// ttf2Δ check and the grid BRS agree.
	Agreement float64
}

// Format prints the Figure 10 / 12b region statistics.
func (r Fig10Result) Format() string {
	var t table
	t.title("Figure 10: regions of operation (state-space fractions, city workspace)")
	t.row("region", "fraction")
	for _, reg := range []reach.Region{reach.RegionUnsafe, reach.RegionSafe, reach.RegionRecover, reach.RegionSaferCore} {
		t.row(reg.String(), fmtPct(r.Fractions[reg]))
	}
	t.line("grid BRS (Level-Set stand-in): %.1f%% of free cells can escape φsafe within 2Δ", 100*r.GridEscapableFrac)
	t.line("analytic-vs-grid agreement on zero-velocity states: %s", fmtPct(r.Agreement))
	return t.String()
}

// Fig10 samples the state space and classifies the regions.
func Fig10(cfg Fig10Config) (Fig10Result, error) {
	if cfg.Samples <= 0 {
		cfg.Samples = 4000
	}
	ws := geom.CityWorkspace()
	params := plant.DefaultParams()
	aws, err := mission.AnalysisWorkspace(ws)
	if err != nil {
		return Fig10Result{}, err
	}
	bounds := reach.Bounds{MaxAccel: params.MaxAccel, MaxVel: params.MaxVel, BrakeDecel: 0.8 * params.MaxAccel}
	const delta = 100 * time.Millisecond
	an, err := reach.NewAnalyzer(aws, bounds, 0.45, delta, 2.0)
	if err != nil {
		return Fig10Result{}, err
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	counts := make(map[reach.Region]int)
	b := ws.Bounds()
	size := b.Size()
	for i := 0; i < cfg.Samples; i++ {
		pos := geom.V(
			b.Min.X+rng.Float64()*size.X,
			b.Min.Y+rng.Float64()*size.Y,
			b.Min.Z+rng.Float64()*size.Z,
		)
		vel := geom.V(
			(rng.Float64()*2-1)*bounds.MaxVel,
			(rng.Float64()*2-1)*bounds.MaxVel,
			(rng.Float64()*2-1)*bounds.MaxVel,
		)
		counts[an.Classify(pos, vel)]++
	}
	res := Fig10Result{Samples: cfg.Samples, Fractions: make(map[reach.Region]float64)}
	for reg, n := range counts {
		res.Fractions[reg] = float64(n) / float64(cfg.Samples)
	}

	// Grid backward reachable set over the physical workspace, at a
	// resolution fine enough to resolve the thin 2Δ escape band.
	grid, err := geom.NewGrid(ws, 0.4, 0.45)
	if err != nil {
		return Fig10Result{}, err
	}
	brs, err := reach.NewBackwardReachSet(grid, bounds.MaxVel)
	if err != nil {
		return Fig10Result{}, err
	}
	res.GridEscapableFrac = brs.FractionEscapable(2 * delta)

	// Cross-validation on zero-velocity states: the analytic check reduces
	// to "reach box over 2Δ plus braking clears the obstacles"; the grid
	// check to "time-to-unsafe > 2Δ at vmax". Both over-approximate
	// differently, so we report agreement rather than require equality.
	agree, total := 0, 0
	for i := 0; i < cfg.Samples/2; i++ {
		pos, ok := ws.RandomFreePoint(rng, 0.45, 128)
		if !ok {
			continue
		}
		total++
		analytic := an.TTF2Delta(pos, geom.Vec3{})
		gridSays := brs.CanEscapeWithin(pos, 2*delta)
		if analytic == gridSays {
			agree++
		}
	}
	if total > 0 {
		res.Agreement = float64(agree) / float64(total)
	}
	return res, nil
}
