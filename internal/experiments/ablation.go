package experiments

import (
	"context"
	"fmt"
	"time"

	"repro/internal/fleet"
	"repro/internal/geom"
	"repro/internal/scenario"
)

// AblationConfig parameterises the design-choice ablations of Remark 3.3.
type AblationConfig struct {
	Seed     int64
	Duration time.Duration
	// Workers bounds the fleet worker pool the configuration grid is
	// dispatched across (0 = GOMAXPROCS).
	Workers int
	// Context, when non-nil, cancels the sweep.
	Context context.Context
}

// DeltaRow is one (Δ, hysteresis) configuration.
type DeltaRow struct {
	Delta          time.Duration
	Hysteresis     float64
	Crashed        bool
	Disengagements int
	ACFraction     float64
	Targets        int
}

// AblationDeltaResult sweeps the DM period Δ and the φsafer hysteresis,
// quantifying Remark 3.3: a large Δ (or large φsafer margin) behaves
// conservatively — more of the mission runs under SC; a small Δ with a tight
// φsafer maximises AC usage but increases switching.
type AblationDeltaResult struct {
	Rows []DeltaRow
}

// Format prints the Δ/hysteresis sweep.
func (r AblationDeltaResult) Format() string {
	var t table
	t.title("Ablation (Remark 3.3): DM period Δ and φsafer hysteresis")
	t.row("Δ", "hysteresis", "crashed", "switches", "AC fraction", "targets")
	for _, row := range r.Rows {
		t.row(row.Delta.String(), fmt.Sprintf("%.1f", row.Hysteresis),
			fmt.Sprint(row.Crashed), fmt.Sprint(row.Disengagements),
			fmtPct(row.ACFraction), fmt.Sprint(row.Targets))
	}
	t.line("paper: large Δ ⇒ conservative (SC in control more); small Δ with small φsafer")
	t.line("margin ⇒ more AC usage but more frequent AC/SC switching.")
	return t.String()
}

// ablationSpec declares the faulted surveillance mission both ablations
// sweep over: the city tour under heavy periodic AC faulting, so the
// switching policy under study is exercised many times per run.
func ablationSpec(duration time.Duration) scenario.Spec {
	return scenario.Spec{
		Name: "ablation",
		Targets: []geom.Vec3{
			geom.V(3, 3, 2), geom.V(46, 3, 2.5), geom.V(46, 46, 2), geom.V(3, 46, 2.5),
		},
		Faults: scenario.FaultProfile{
			First:      8 * time.Second,
			Every:      11 * time.Second,
			Len:        1200 * time.Millisecond,
			Dir:        geom.V(1, 0.4, 0),
			MaxWindows: 6,
		},
		Duration: duration,
	}
}

// AblationDelta runs the sweep: the 12-point (Δ, hysteresis) grid is a
// scenario-grid batch — one base spec, one override per grid point — every
// grid point an isolated mission.
func AblationDelta(cfg AblationConfig) (AblationDeltaResult, error) {
	if cfg.Duration <= 0 {
		cfg.Duration = 80 * time.Second
	}
	type gridPoint struct {
		delta time.Duration
		hyst  float64
	}
	var grid []gridPoint
	var overrides []scenario.Override
	for _, delta := range []time.Duration{50 * time.Millisecond, 100 * time.Millisecond, 200 * time.Millisecond, 400 * time.Millisecond} {
		for _, hyst := range []float64{1.0, 2.0, 4.0} {
			gp := gridPoint{delta, hyst}
			grid = append(grid, gp)
			overrides = append(overrides, scenario.Override{
				Name: fmt.Sprintf("Δ=%v/hyst=%.1f", gp.delta, gp.hyst),
				Apply: func(sp *scenario.Spec) {
					sp.MotionDelta = gp.delta
					sp.Hysteresis = gp.hyst
				},
			})
		}
	}
	missions := fleet.ScenarioGrid(fleet.GridConfig{
		Specs:     []scenario.Spec{ablationSpec(cfg.Duration)},
		Overrides: overrides,
		Seeds:     []int64{cfg.Seed},
	})
	rep := fleet.Run(runCtx(cfg.Context), missions, fleet.Options{Workers: cfg.Workers})
	if err := rep.FirstErr(); err != nil {
		return AblationDeltaResult{}, fmt.Errorf("ablation: %w", err)
	}
	var res AblationDeltaResult
	for i, out := range rep.Results {
		m := out.Metrics
		row := DeltaRow{Delta: grid[i].delta, Hysteresis: grid[i].hyst, Crashed: m.Crashed, Targets: m.TargetsVisited}
		if s, ok := m.Modules["safe-motion-primitive"]; ok {
			row.Disengagements = s.Disengagements
			row.ACFraction = s.ACFraction()
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// ReturnRow is one switching-policy configuration.
type ReturnRow struct {
	Policy         string
	Crashed        bool
	Targets        int
	Distance       float64
	ACFraction     float64
	Disengagements int
}

// AblationReturnResult compares the paper's two-way switching (SC returns
// control to AC once in φsafer) against classic one-way Simplex (SC keeps
// control forever after the first disengagement) — the paper's headline
// novelty: "existing techniques do not provide a principled and safe way for
// DM to switch back from SC to AC".
type AblationReturnResult struct {
	Rows []ReturnRow
}

// Format prints the switching-policy comparison.
func (r AblationReturnResult) Format() string {
	var t table
	t.title("Ablation: two-way switching (SOTER) vs one-way Simplex")
	t.row("policy", "crashed", "targets", "distance", "AC fraction", "switches")
	for _, row := range r.Rows {
		t.row(row.Policy, fmt.Sprint(row.Crashed), fmt.Sprint(row.Targets),
			fmt.Sprintf("%.0f m", row.Distance), fmtPct(row.ACFraction), fmt.Sprint(row.Disengagements))
	}
	t.line("paper: returning control to AC after recovery preserves performance; classic")
	t.line("Simplex degrades to the conservative SC for the rest of the mission.")
	return t.String()
}

// AblationReturn runs the comparison, both switching policies simulating
// concurrently as a two-override scenario-grid batch.
func AblationReturn(cfg AblationConfig) (AblationReturnResult, error) {
	if cfg.Duration <= 0 {
		cfg.Duration = 80 * time.Second
	}
	policies := []struct {
		name   string
		oneWay bool
	}{
		{"two-way (SOTER)", false},
		{"one-way (Simplex)", true},
	}
	overrides := make([]scenario.Override, len(policies))
	for i, pol := range policies {
		pol := pol
		overrides[i] = scenario.Override{
			Name:  pol.name,
			Apply: func(sp *scenario.Spec) { sp.OneWaySwitching = pol.oneWay },
		}
	}
	missions := fleet.ScenarioGrid(fleet.GridConfig{
		Specs:     []scenario.Spec{ablationSpec(cfg.Duration)},
		Overrides: overrides,
		Seeds:     []int64{cfg.Seed},
	})
	rep := fleet.Run(runCtx(cfg.Context), missions, fleet.Options{Workers: cfg.Workers})
	if err := rep.FirstErr(); err != nil {
		return AblationReturnResult{}, fmt.Errorf("ablation return: %w", err)
	}
	var res AblationReturnResult
	for i, out := range rep.Results {
		m := out.Metrics
		row := ReturnRow{Policy: policies[i].name, Crashed: m.Crashed, Targets: m.TargetsVisited, Distance: m.DistanceFlown}
		if s, ok := m.Modules["safe-motion-primitive"]; ok {
			row.ACFraction = s.ACFraction()
			row.Disengagements = s.Disengagements
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}
