package plan

import (
	"container/heap"
	"math/rand"
	"testing"

	"repro/internal/geom"
)

// refItem/refHeap are the pre-flat A* open list (container/heap over boxed
// items), kept verbatim as the tie-break reference.
type refItem struct {
	cell geom.Cell
	f    float64
}

type refHeap []refItem

func (h refHeap) Len() int           { return len(h) }
func (h refHeap) Less(i, j int) bool { return h[i].f < h[j].f }
func (h refHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *refHeap) Push(x any)        { *h = append(*h, x.(refItem)) }
func (h *refHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// refPlan is the original map-based A* search, reproduced verbatim so the
// flat-array rewrite can be held to its exact output — including every
// f-score tie-break, which the hand-rolled heap must replicate.
func refPlan(a *AStar, start, goal geom.Vec3) (Plan, error) {
	sc, err := a.nearestFreeCell(start)
	if err != nil {
		return nil, err
	}
	gc, err := a.nearestFreeCell(goal)
	if err != nil {
		return nil, err
	}
	gScore := make(map[geom.Cell]float64)
	cameFrom := make(map[geom.Cell]geom.Cell)
	closed := make(map[geom.Cell]bool)
	goalP := a.grid.CellCenter(gc)
	h := func(c geom.Cell) float64 { return a.grid.CellCenter(c).Dist(goalP) }
	open := &refHeap{{cell: sc, f: h(sc)}}
	gScore[sc] = 0
	var nbuf []geom.Cell
	for open.Len() > 0 {
		cur := heap.Pop(open).(refItem).cell
		if closed[cur] {
			continue
		}
		if cur == gc {
			var rev []geom.Vec3
			for {
				rev = append(rev, a.grid.CellCenter(cur))
				prev, ok := cameFrom[cur]
				if !ok {
					break
				}
				cur = prev
			}
			p := make(Plan, 0, len(rev)+2)
			p = append(p, start)
			for i := len(rev) - 1; i >= 0; i-- {
				p = append(p, rev[i])
			}
			p = append(p, goal)
			p = Shortcut(p, a.ws, a.margin)
			if err := Validate(p, a.ws, a.margin, start, goal, 1e-6); err != nil {
				return nil, err
			}
			return p, nil
		}
		closed[cur] = true
		curP := a.grid.CellCenter(cur)
		nbuf = a.grid.Neighbors26(cur, nbuf[:0])
		for _, n := range nbuf {
			if a.grid.Occupied(n) || closed[n] {
				continue
			}
			tentative := gScore[cur] + curP.Dist(a.grid.CellCenter(n))
			if old, seen := gScore[n]; !seen || tentative < old {
				gScore[n] = tentative
				cameFrom[n] = cur
				heap.Push(open, refItem{cell: n, f: tentative + h(n)})
			}
		}
	}
	return nil, ErrNoPath
}

// TestAStarFlatMatchesReference runs the flat-array planner and the original
// map-based search over random endpoint pairs in every factory workspace and
// requires waypoint-identical plans.
func TestAStarFlatMatchesReference(t *testing.T) {
	workspaces := []*geom.Workspace{
		geom.CityWorkspace(),
		geom.CanyonWorkspace(),
		geom.CornerHazardWorkspace(),
	}
	rng := rand.New(rand.NewSource(31))
	for _, ws := range workspaces {
		a, err := NewAStar(ws, 1.0, 0.45)
		if err != nil {
			t.Fatal(err)
		}
		b := ws.Bounds()
		size := b.Size()
		for trial := 0; trial < 12; trial++ {
			start := geom.V(
				b.Min.X+rng.Float64()*size.X,
				b.Min.Y+rng.Float64()*size.Y,
				b.Min.Z+0.5+rng.Float64()*(size.Z-1),
			)
			goal := geom.V(
				b.Min.X+rng.Float64()*size.X,
				b.Min.Y+rng.Float64()*size.Y,
				b.Min.Z+0.5+rng.Float64()*(size.Z-1),
			)
			got, errG := a.Plan(start, goal)
			want, errW := refPlan(a, start, goal)
			if (errG == nil) != (errW == nil) {
				t.Fatalf("%v → %v: flat err %v, reference err %v", start, goal, errG, errW)
			}
			if errG != nil {
				continue
			}
			if len(got) != len(want) {
				t.Fatalf("%v → %v: flat plan %v, reference %v", start, goal, got, want)
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("%v → %v: waypoint %d differs: %v vs %v", start, goal, i, got[i], want[i])
				}
			}
		}
	}
}

func BenchmarkAStarPlan(b *testing.B) {
	ws := geom.CityWorkspace()
	a, err := NewAStar(ws, 1.0, 0.45)
	if err != nil {
		b.Fatal(err)
	}
	start, goal := geom.V(2, 2, 2), geom.V(46, 46, 9)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a.Plan(start, goal); err != nil {
			b.Fatal(err)
		}
	}
}
