package plan

import (
	"fmt"
	"math"

	"repro/internal/geom"
)

// AStar is the certified safe planner: 26-connected A* over an occupancy
// grid with inflated obstacles, followed by margin-checked shortcut
// smoothing and a final validation pass. Its output is safe by construction:
// every returned plan passes Validate, or an error is returned.
//
// AStar carries no mutable state between Plan calls, so one instance may be
// shared across fleet workers (the mission artifact pool relies on this).
type AStar struct {
	ws     *geom.Workspace
	grid   *geom.Grid
	margin float64
}

var _ Planner = (*AStar)(nil)

// NewAStar builds the planner. res is the grid resolution; margin is the
// clearance required of the final plan (the grid is inflated by margin plus
// half a cell diagonal so that cell-centre paths respect the margin).
func NewAStar(ws *geom.Workspace, res, margin float64) (*AStar, error) {
	inflate := margin + res*math.Sqrt(3)/2
	grid, err := geom.NewGrid(ws, res, inflate)
	if err != nil {
		return nil, fmt.Errorf("astar grid: %w", err)
	}
	return &AStar{ws: ws, grid: grid, margin: margin}, nil
}

// asItem is an open-list entry: a cell's linear grid index and its f-score.
type asItem struct {
	ci int32
	f  float64
}

// asHeap is a binary min-heap on f that replicates container/heap's sift
// algorithms exactly — strict Less, right child preferred only on a strict
// win, Pop swapping root with the last element before sifting down — so the
// pop order (and therefore every A* tie-break) is bit-identical to the
// previous container/heap implementation while staying flat and unboxed.
type asHeap []asItem

func (h *asHeap) push(it asItem) {
	s := append(*h, it)
	j := len(s) - 1
	for j > 0 {
		i := (j - 1) / 2
		if !(s[j].f < s[i].f) {
			break
		}
		s[i], s[j] = s[j], s[i]
		j = i
	}
	*h = s
}

func (h *asHeap) pop() asItem {
	s := *h
	n := len(s) - 1
	s[0], s[n] = s[n], s[0]
	i := 0
	for {
		j1 := 2*i + 1
		if j1 >= n {
			break
		}
		j := j1
		if j2 := j1 + 1; j2 < n && s[j2].f < s[j1].f {
			j = j2
		}
		if !(s[j].f < s[i].f) {
			break
		}
		s[i], s[j] = s[j], s[i]
		i = j
	}
	it := s[n]
	*h = s[:n]
	return it
}

// Plan implements Planner. The search runs over flat arrays indexed by the
// grid's linear cell index — no per-node map or interface allocations.
func (a *AStar) Plan(start, goal geom.Vec3) (Plan, error) {
	sc, err := a.nearestFreeCell(start)
	if err != nil {
		return nil, fmt.Errorf("astar start %v: %w", start, err)
	}
	gc, err := a.nearestFreeCell(goal)
	if err != nil {
		return nil, fmt.Errorf("astar goal %v: %w", goal, err)
	}

	n := a.grid.NumCells()
	gScore := make([]float64, n)
	for i := range gScore {
		gScore[i] = math.Inf(1)
	}
	cameFrom := make([]int32, n)
	for i := range cameFrom {
		cameFrom[i] = -1
	}
	closed := make([]bool, n)
	goalP := a.grid.CellCenter(gc)

	h := func(c geom.Cell) float64 { return a.grid.CellCenter(c).Dist(goalP) }
	si, _ := a.grid.Index(sc)
	gi, _ := a.grid.Index(gc)
	open := make(asHeap, 0, 1024)
	open.push(asItem{ci: int32(si), f: h(sc)})
	gScore[si] = 0

	var nbuf []geom.Cell
	for len(open) > 0 {
		ci := int(open.pop().ci)
		if closed[ci] {
			continue
		}
		if ci == gi {
			return a.reconstruct(cameFrom, ci, start, goal)
		}
		closed[ci] = true
		cur := a.grid.CellAt(ci)
		curP := a.grid.CellCenter(cur)
		nbuf = a.grid.Neighbors26(cur, nbuf[:0])
		for _, nb := range nbuf {
			ni, _ := a.grid.Index(nb)
			if a.grid.Occupied(nb) || closed[ni] {
				continue
			}
			tentative := gScore[ci] + curP.Dist(a.grid.CellCenter(nb))
			if tentative < gScore[ni] {
				gScore[ni] = tentative
				cameFrom[ni] = int32(ci)
				open.push(asItem{ci: int32(ni), f: tentative + h(nb)})
			}
		}
	}
	return nil, fmt.Errorf("astar %v → %v: %w", start, goal, ErrNoPath)
}

func (a *AStar) reconstruct(cameFrom []int32, cur int, start, goal geom.Vec3) (Plan, error) {
	var rev []geom.Vec3
	for ci := cur; ci >= 0; ci = int(cameFrom[ci]) {
		rev = append(rev, a.grid.CellCenter(a.grid.CellAt(ci)))
	}
	p := make(Plan, 0, len(rev)+2)
	p = append(p, start)
	for i := len(rev) - 1; i >= 0; i-- {
		p = append(p, rev[i])
	}
	p = append(p, goal)
	p = Shortcut(p, a.ws, a.margin)
	if err := Validate(p, a.ws, a.margin, start, goal, 1e-6); err != nil {
		return nil, fmt.Errorf("astar produced invalid plan (bug): %w", err)
	}
	return p, nil
}

// nearestFreeCell returns the cell of p, or — when p's own cell is occupied
// (the query point hugs an inflated obstacle) — the nearest free cell within
// a small search radius.
func (a *AStar) nearestFreeCell(p geom.Vec3) (geom.Cell, error) {
	c := a.grid.CellOf(p)
	if a.grid.InGrid(c) && !a.grid.Occupied(c) {
		return c, nil
	}
	best := geom.Cell{}
	bestD := math.Inf(1)
	found := false
	const r = 3
	for dz := -r; dz <= r; dz++ {
		for dy := -r; dy <= r; dy++ {
			for dx := -r; dx <= r; dx++ {
				n := geom.Cell{X: c.X + dx, Y: c.Y + dy, Z: c.Z + dz}
				if !a.grid.InGrid(n) || a.grid.Occupied(n) {
					continue
				}
				if d := a.grid.CellCenter(n).Dist(p); d < bestD {
					bestD, best, found = d, n, true
				}
			}
		}
	}
	if !found {
		return geom.Cell{}, fmt.Errorf("no free cell near %v: %w", p, ErrNoPath)
	}
	return best, nil
}
