package plan

import (
	"container/heap"
	"fmt"
	"math"

	"repro/internal/geom"
)

// AStar is the certified safe planner: 26-connected A* over an occupancy
// grid with inflated obstacles, followed by margin-checked shortcut
// smoothing and a final validation pass. Its output is safe by construction:
// every returned plan passes Validate, or an error is returned.
type AStar struct {
	ws     *geom.Workspace
	grid   *geom.Grid
	margin float64
}

var _ Planner = (*AStar)(nil)

// NewAStar builds the planner. res is the grid resolution; margin is the
// clearance required of the final plan (the grid is inflated by margin plus
// half a cell diagonal so that cell-centre paths respect the margin).
func NewAStar(ws *geom.Workspace, res, margin float64) (*AStar, error) {
	inflate := margin + res*math.Sqrt(3)/2
	grid, err := geom.NewGrid(ws, res, inflate)
	if err != nil {
		return nil, fmt.Errorf("astar grid: %w", err)
	}
	return &AStar{ws: ws, grid: grid, margin: margin}, nil
}

type asItem struct {
	cell geom.Cell
	f    float64
}

type asHeap []asItem

func (h asHeap) Len() int           { return len(h) }
func (h asHeap) Less(i, j int) bool { return h[i].f < h[j].f }
func (h asHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *asHeap) Push(x any)        { *h = append(*h, x.(asItem)) }
func (h *asHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// Plan implements Planner.
func (a *AStar) Plan(start, goal geom.Vec3) (Plan, error) {
	sc, err := a.nearestFreeCell(start)
	if err != nil {
		return nil, fmt.Errorf("astar start %v: %w", start, err)
	}
	gc, err := a.nearestFreeCell(goal)
	if err != nil {
		return nil, fmt.Errorf("astar goal %v: %w", goal, err)
	}

	gScore := make(map[geom.Cell]float64)
	cameFrom := make(map[geom.Cell]geom.Cell)
	closed := make(map[geom.Cell]bool)
	goalP := a.grid.CellCenter(gc)

	h := func(c geom.Cell) float64 { return a.grid.CellCenter(c).Dist(goalP) }
	open := &asHeap{{cell: sc, f: h(sc)}}
	gScore[sc] = 0

	var nbuf []geom.Cell
	for open.Len() > 0 {
		cur := heap.Pop(open).(asItem).cell
		if closed[cur] {
			continue
		}
		if cur == gc {
			return a.reconstruct(cameFrom, cur, start, goal)
		}
		closed[cur] = true
		curP := a.grid.CellCenter(cur)
		nbuf = a.grid.Neighbors26(cur, nbuf[:0])
		for _, n := range nbuf {
			if a.grid.Occupied(n) || closed[n] {
				continue
			}
			tentative := gScore[cur] + curP.Dist(a.grid.CellCenter(n))
			if old, seen := gScore[n]; !seen || tentative < old {
				gScore[n] = tentative
				cameFrom[n] = cur
				heap.Push(open, asItem{cell: n, f: tentative + h(n)})
			}
		}
	}
	return nil, fmt.Errorf("astar %v → %v: %w", start, goal, ErrNoPath)
}

func (a *AStar) reconstruct(cameFrom map[geom.Cell]geom.Cell, cur geom.Cell, start, goal geom.Vec3) (Plan, error) {
	var rev []geom.Vec3
	for {
		rev = append(rev, a.grid.CellCenter(cur))
		prev, ok := cameFrom[cur]
		if !ok {
			break
		}
		cur = prev
	}
	p := make(Plan, 0, len(rev)+2)
	p = append(p, start)
	for i := len(rev) - 1; i >= 0; i-- {
		p = append(p, rev[i])
	}
	p = append(p, goal)
	p = Shortcut(p, a.ws, a.margin)
	if err := Validate(p, a.ws, a.margin, start, goal, 1e-6); err != nil {
		return nil, fmt.Errorf("astar produced invalid plan (bug): %w", err)
	}
	return p, nil
}

// nearestFreeCell returns the cell of p, or — when p's own cell is occupied
// (the query point hugs an inflated obstacle) — the nearest free cell within
// a small search radius.
func (a *AStar) nearestFreeCell(p geom.Vec3) (geom.Cell, error) {
	c := a.grid.CellOf(p)
	if a.grid.InGrid(c) && !a.grid.Occupied(c) {
		return c, nil
	}
	best := geom.Cell{}
	bestD := math.Inf(1)
	found := false
	const r = 3
	for dz := -r; dz <= r; dz++ {
		for dy := -r; dy <= r; dy++ {
			for dx := -r; dx <= r; dx++ {
				n := geom.Cell{X: c.X + dx, Y: c.Y + dy, Z: c.Z + dz}
				if !a.grid.InGrid(n) || a.grid.Occupied(n) {
					continue
				}
				if d := a.grid.CellCenter(n).Dist(p); d < bestD {
					bestD, best, found = d, n, true
				}
			}
		}
	}
	if !found {
		return geom.Cell{}, fmt.Errorf("no free cell near %v: %w", p, ErrNoPath)
	}
	return best, nil
}
