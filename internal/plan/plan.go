// Package plan implements the motion-planning substrate of the case study
// (Section V-C): a full RRT* sampling-based planner standing in for the
// third-party OMPL implementation — including the deterministic bug
// injection the paper applied ("we injected bugs into the implementation of
// RRT* such that in some cases the generated motion plan can collide with
// obstacles") — and a certified grid A* planner used as the safe planner.
package plan

import (
	"errors"
	"fmt"

	"repro/internal/geom"
)

// A Plan is a sequence of waypoints w1...wn; consecutive waypoints are
// connected by straight reference-trajectory segments (the dotted lines of
// Figure 2).
type Plan []geom.Vec3

// Clone returns a copy of the plan.
func (p Plan) Clone() Plan {
	out := make(Plan, len(p))
	copy(out, p)
	return out
}

// Length returns the total Euclidean length of the plan.
func (p Plan) Length() float64 {
	total := 0.0
	for i := 0; i+1 < len(p); i++ {
		total += p[i].Dist(p[i+1])
	}
	return total
}

// Planner computes a waypoint plan from start to goal.
type Planner interface {
	Plan(start, goal geom.Vec3) (Plan, error)
}

// Planning errors.
var (
	ErrNoPath = errors.New("no collision-free path found")
)

// Validate checks φplan for the plan: every segment keeps margin clearance,
// the plan starts near start and ends near goal. It returns the index of the
// first offending segment on failure.
func Validate(p Plan, ws *geom.Workspace, margin float64, start, goal geom.Vec3, tol float64) error {
	if len(p) == 0 {
		return errors.New("empty plan")
	}
	if d := p[0].Dist(start); d > tol {
		return fmt.Errorf("plan starts %.2fm from start (tolerance %.2fm)", d, tol)
	}
	if d := p[len(p)-1].Dist(goal); d > tol {
		return fmt.Errorf("plan ends %.2fm from goal (tolerance %.2fm)", d, tol)
	}
	if len(p) == 1 {
		if !ws.FreeWithMargin(p[0], margin) {
			return fmt.Errorf("waypoint 0 at %v violates clearance %.2fm", p[0], margin)
		}
		return nil
	}
	for i := 0; i+1 < len(p); i++ {
		if !ws.SegmentFree(p[i], p[i+1], margin) {
			return fmt.Errorf("segment %d (%v → %v) collides within margin %.2fm", i, p[i], p[i+1], margin)
		}
	}
	return nil
}

// FirstUnsafeSegment returns the index of the first segment of the plan that
// violates the clearance margin, or -1 when the whole plan is safe.
func FirstUnsafeSegment(p Plan, ws *geom.Workspace, margin float64) int {
	if len(p) == 1 {
		if !ws.FreeWithMargin(p[0], margin) {
			return 0
		}
		return -1
	}
	for i := 0; i+1 < len(p); i++ {
		if !ws.SegmentFree(p[i], p[i+1], margin) {
			return i
		}
	}
	return -1
}

// DistanceToUnsafe returns the path distance from the start of the plan to
// the first unsafe segment, and whether any segment is unsafe. The planner
// RTA module's ttf2Δ uses this: if the drone, progressing along the plan at
// vmax, can reach the unsafe segment within 2Δ, control must switch to the
// certified planner.
func DistanceToUnsafe(p Plan, ws *geom.Workspace, margin float64) (float64, bool) {
	idx := FirstUnsafeSegment(p, ws, margin)
	if idx < 0 {
		return 0, false
	}
	d := 0.0
	for i := 0; i < idx; i++ {
		d += p[i].Dist(p[i+1])
	}
	return d, true
}

// Shortcut greedily smooths the plan: it repeatedly removes intermediate
// waypoints whenever the direct segment between their neighbours is free
// with the given margin. The input plan is not modified.
func Shortcut(p Plan, ws *geom.Workspace, margin float64) Plan {
	if len(p) <= 2 {
		return p.Clone()
	}
	out := Plan{p[0]}
	i := 0
	for i < len(p)-1 {
		j := len(p) - 1
		for j > i+1 && !ws.SegmentFree(p[i], p[j], margin) {
			j--
		}
		out = append(out, p[j])
		i = j
	}
	return out
}
