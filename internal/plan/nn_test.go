package plan

import (
	"math/rand"
	"testing"

	"repro/internal/geom"
)

// TestNNGridMatchesLinear grows a random node cloud the way Plan does —
// inserting into the grid as it appends — and checks nearest/near against
// the reference linear scans at every step, including duplicate positions
// (index tie-breaks) and out-of-bounds points (clamped cells).
func TestNNGridMatchesLinear(t *testing.T) {
	ws := geom.CityWorkspace()
	r, err := NewRRTStar(ws, DefaultRRTStarConfig(11))
	if err != nil {
		t.Fatal(err)
	}
	bounds := ws.Bounds()
	size := bounds.Size()
	rng := rand.New(rand.NewSource(23))
	r.nn.reset(bounds, r.cfg.NeighborRadius)
	var nodes []rrtNode
	randPt := func(slack float64) geom.Vec3 {
		return geom.V(
			bounds.Min.X-slack+rng.Float64()*(size.X+2*slack),
			bounds.Min.Y-slack+rng.Float64()*(size.Y+2*slack),
			bounds.Min.Z-slack+rng.Float64()*(size.Z+2*slack),
		)
	}
	for i := 0; i < 600; i++ {
		var p geom.Vec3
		switch {
		case i > 0 && i%17 == 0:
			p = nodes[rng.Intn(len(nodes))].pos // exact duplicate: tie-break case
		case i%29 == 0:
			p = randPt(5) // out of bounds: clamped-cell case
		default:
			p = randPt(0)
		}
		nodes = append(nodes, rrtNode{pos: p, parent: -1})
		r.nn.insert(len(nodes)-1, p)

		q := randPt(3)
		if got, want := r.nearest(nodes, q), r.nearestLinear(nodes, q); got != want {
			t.Fatalf("step %d: nearest(%v) = %d, linear = %d", i, q, got, want)
		}
		got := r.near(nodes, q)
		want := r.nearLinear(nodes, q)
		if len(got) != len(want) {
			t.Fatalf("step %d: near(%v) = %v, linear = %v", i, q, got, want)
		}
		for j := range got {
			if got[j] != want[j] {
				t.Fatalf("step %d: near(%v)[%d] = %d, linear = %d", i, q, j, got[j], want[j])
			}
		}
	}
}

// TestRRTStarScratchReuseDeterministic replans with one planner instance and
// compares against a fresh instance per call: scratch reuse must not change
// any output.
func TestRRTStarScratchReuseDeterministic(t *testing.T) {
	ws := geom.CityWorkspace()
	start, goal := geom.V(2, 2, 2), geom.V(46, 46, 9)
	reused, err := NewRRTStar(ws, DefaultRRTStarConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 3; trial++ {
		fresh, err := NewRRTStar(ws, DefaultRRTStarConfig(7))
		if err != nil {
			t.Fatal(err)
		}
		// Advance the fresh planner's rng to the same trial point.
		for i := 0; i < trial; i++ {
			if _, err := fresh.Plan(start, goal); err != nil {
				t.Fatal(err)
			}
		}
		pr, errR := reused.Plan(start, goal)
		pf, errF := fresh.Plan(start, goal)
		if (errR == nil) != (errF == nil) {
			t.Fatalf("trial %d: reused err %v, fresh err %v", trial, errR, errF)
		}
		if len(pr) != len(pf) {
			t.Fatalf("trial %d: plan lengths %d vs %d", trial, len(pr), len(pf))
		}
		for i := range pr {
			if pr[i] != pf[i] {
				t.Fatalf("trial %d: plan[%d] = %v vs %v", trial, i, pr[i], pf[i])
			}
		}
	}
}

func BenchmarkRRTStarPlan(b *testing.B) {
	ws := geom.CityWorkspace()
	start, goal := geom.V(2, 2, 2), geom.V(46, 46, 9)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := NewRRTStar(ws, DefaultRRTStarConfig(int64(i)))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := r.Plan(start, goal); err != nil {
			b.Fatal(err)
		}
	}
}
