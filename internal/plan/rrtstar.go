package plan

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/geom"
)

// Bug enumerates the deterministic defects injectable into the RRT*
// implementation, reproducing Section V-C ("we injected bugs into the
// implementation of RRT* such that in some cases the generated motion plan
// can collide with obstacles").
type Bug int

// Injectable bugs.
const (
	// BugNone: correct RRT*.
	BugNone Bug = iota
	// BugSkipEdgeCheck: a fraction of tree extensions skip the edge
	// collision check (a classic broken-refactor bug).
	BugSkipEdgeCheck
	// BugUncheckedShortcut: the final path is shortcut without collision
	// checking the new segments (an "optimisation" that trades safety for
	// path length).
	BugUncheckedShortcut
	// BugStaleObstacles: the planner checks collisions against a shrunken
	// copy of the obstacle set (stale or mis-scaled map).
	BugStaleObstacles
)

// String implements fmt.Stringer.
func (b Bug) String() string {
	switch b {
	case BugNone:
		return "none"
	case BugSkipEdgeCheck:
		return "skip-edge-check"
	case BugUncheckedShortcut:
		return "unchecked-shortcut"
	case BugStaleObstacles:
		return "stale-obstacles"
	default:
		return fmt.Sprintf("Bug(%d)", int(b))
	}
}

// RRTStarConfig configures the sampling-based planner.
type RRTStarConfig struct {
	// MaxIters bounds the number of samples.
	MaxIters int
	// StepSize is the steering extension length.
	StepSize float64
	// NeighborRadius is the rewiring radius.
	NeighborRadius float64
	// GoalBias is the probability of sampling the goal directly.
	GoalBias float64
	// GoalTolerance is how close a node must get to the goal.
	GoalTolerance float64
	// Margin is the clearance used in collision checks.
	Margin float64
	// Seed drives the sampler.
	Seed int64
	// Bug selects an injected defect (BugNone for the correct planner).
	Bug Bug
	// BugRate is the per-decision activation probability for probabilistic
	// bugs (BugSkipEdgeCheck).
	BugRate float64
}

// DefaultRRTStarConfig returns a configuration tuned for the 50 m city
// workspace.
func DefaultRRTStarConfig(seed int64) RRTStarConfig {
	return RRTStarConfig{
		MaxIters:       4000,
		StepSize:       3.0,
		NeighborRadius: 6.0,
		GoalBias:       0.10,
		GoalTolerance:  1.0,
		Margin:         0.6,
		Seed:           seed,
	}
}

// RRTStar is the third-party motion-planner stand-in (OMPL's RRT* [29]): an
// asymptotically optimal sampling-based planner. With a Bug configured it is
// the untrusted advanced planner of the Section V-C experiment.
type RRTStar struct {
	ws  *geom.Workspace
	idx *geom.Index // margin-resolved query index over ws
	cfg RRTStarConfig
	rng *rand.Rand
	// staleObs is the shrunken obstacle set used by BugStaleObstacles.
	staleWS  *geom.Workspace
	staleIdx *geom.Index

	// Per-planner scratch reused across Plan calls (a planner instance is
	// driven sequentially by its mission stack, never concurrently).
	nodes []rrtNode
	nn    nnGrid
}

var _ Planner = (*RRTStar)(nil)

// NewRRTStar builds the planner.
func NewRRTStar(ws *geom.Workspace, cfg RRTStarConfig) (*RRTStar, error) {
	if cfg.MaxIters <= 0 || cfg.StepSize <= 0 || cfg.NeighborRadius <= 0 {
		return nil, fmt.Errorf("rrtstar: MaxIters, StepSize, NeighborRadius must be positive")
	}
	if cfg.GoalTolerance <= 0 {
		return nil, fmt.Errorf("rrtstar: GoalTolerance must be positive")
	}
	r := &RRTStar{
		ws:  ws,
		idx: ws.IndexFor(cfg.Margin),
		cfg: cfg,
		rng: rand.New(rand.NewSource(cfg.Seed)),
	}
	if cfg.Bug == BugStaleObstacles {
		obs := ws.ObstaclesView()
		shrunk := make([]geom.AABB, len(obs))
		for i, o := range obs {
			shrunk[i] = o.Expand(-1.2) // stale map: obstacles 1.2 m smaller
		}
		staleWS, err := geom.NewWorkspace(ws.Bounds(), shrunk)
		if err != nil {
			return nil, fmt.Errorf("rrtstar stale workspace: %w", err)
		}
		r.staleWS = staleWS
		r.staleIdx = staleWS.IndexFor(cfg.Margin)
	}
	return r, nil
}

type rrtNode struct {
	pos    geom.Vec3
	parent int
	cost   float64
}

// Plan implements Planner. With BugNone the result always satisfies the
// clearance margin (it is validated); with a bug injected the result may
// collide — by design, to exercise the RTA protection.
func (r *RRTStar) Plan(start, goal geom.Vec3) (Plan, error) {
	bounds := r.ws.Bounds()
	nodes := append(r.nodes[:0], rrtNode{pos: start, parent: -1})
	r.nn.reset(bounds, r.cfg.NeighborRadius)
	r.nn.insert(0, start)
	bestGoal := -1
	bestCost := math.Inf(1)
	size := bounds.Size()

	for it := 0; it < r.cfg.MaxIters; it++ {
		var sample geom.Vec3
		if r.rng.Float64() < r.cfg.GoalBias {
			sample = goal
		} else {
			sample = geom.V(
				bounds.Min.X+r.rng.Float64()*size.X,
				bounds.Min.Y+r.rng.Float64()*size.Y,
				bounds.Min.Z+r.rng.Float64()*size.Z,
			)
		}
		nearest := r.nearest(nodes, sample)
		newPos := r.steer(nodes[nearest].pos, sample)
		if !r.pointFree(newPos) {
			continue
		}
		if !r.edgeFree(nodes[nearest].pos, newPos) {
			continue
		}
		// Choose parent: lowest cost among neighbours with a free edge.
		parent := nearest
		cost := nodes[nearest].cost + nodes[nearest].pos.Dist(newPos)
		neighbors := r.near(nodes, newPos)
		for _, n := range neighbors {
			c := nodes[n].cost + nodes[n].pos.Dist(newPos)
			if c < cost && r.edgeFree(nodes[n].pos, newPos) {
				parent, cost = n, c
			}
		}
		nodes = append(nodes, rrtNode{pos: newPos, parent: parent, cost: cost})
		newIdx := len(nodes) - 1
		r.nn.insert(newIdx, newPos)
		// Rewire neighbours through the new node when cheaper.
		for _, n := range neighbors {
			c := cost + newPos.Dist(nodes[n].pos)
			if c < nodes[n].cost && r.edgeFree(newPos, nodes[n].pos) {
				nodes[n].parent = newIdx
				nodes[n].cost = c
			}
		}
		if d := newPos.Dist(goal); d <= r.cfg.GoalTolerance {
			if c := cost + d; c < bestCost {
				bestCost = c
				bestGoal = newIdx
			}
		}
	}
	r.nodes = nodes // keep the backing array for the next Plan call
	if bestGoal < 0 {
		return nil, fmt.Errorf("rrtstar %v → %v after %d iters: %w", start, goal, r.cfg.MaxIters, ErrNoPath)
	}

	var rev []geom.Vec3
	for i := bestGoal; i >= 0; i = nodes[i].parent {
		rev = append(rev, nodes[i].pos)
	}
	p := make(Plan, 0, len(rev)+1)
	for i := len(rev) - 1; i >= 0; i-- {
		p = append(p, rev[i])
	}
	p = append(p, goal)

	if r.cfg.Bug == BugUncheckedShortcut {
		p = r.uncheckedShortcut(p)
	} else {
		p = Shortcut(p, r.ws, r.cfg.Margin)
	}
	return p, nil
}

// nearest returns the index of the node closest to p — the lexicographic
// (distance, index) minimum, exactly as the reference linear scan computes it
// — via expanding Chebyshev shells over the NN grid.
func (r *RRTStar) nearest(nodes []rrtNode, p geom.Vec3) int {
	g := &r.nn
	cqx := g.axisOf(p.X, g.origin.X, g.nx)
	cqy := g.axisOf(p.Y, g.origin.Y, g.ny)
	cqz := g.axisOf(p.Z, g.origin.Z, g.nz)
	best, bestD := 0, math.Inf(1)
	maxRing := g.nx
	if g.ny > maxRing {
		maxRing = g.ny
	}
	if g.nz > maxRing {
		maxRing = g.nz
	}
	for ring := 0; ring <= maxRing; ring++ {
		// Any node in ring r is at least (r-1)·cell away; once that exceeds
		// bestD (with one cell of float slack) no farther ring can win or tie.
		if !math.IsInf(bestD, 1) && float64(ring-1)*g.cell > bestD+g.cell {
			break
		}
		for dz := -ring; dz <= ring; dz++ {
			cz := cqz + dz
			if cz < 0 || cz >= g.nz {
				continue
			}
			for dy := -ring; dy <= ring; dy++ {
				cy := cqy + dy
				if cy < 0 || cy >= g.ny {
					continue
				}
				for dx := -ring; dx <= ring; dx++ {
					// Shell only: skip cells interior to the previous ring.
					if dx > -ring && dx < ring && dy > -ring && dy < ring && dz > -ring && dz < ring {
						continue
					}
					cx := cqx + dx
					if cx < 0 || cx >= g.nx {
						continue
					}
					for _, ni := range g.buckets[(cz*g.ny+cy)*g.nx+cx] {
						i := int(ni)
						d := nodes[i].pos.Dist(p)
						if d < bestD || (d == bestD && i < best) {
							best, bestD = i, d
						}
					}
				}
			}
		}
	}
	return best
}

// near returns the indices of all nodes within NeighborRadius of p in
// ascending order, exactly as the reference linear scan returns them. The
// returned slice is planner scratch, valid until the next near call.
func (r *RRTStar) near(nodes []rrtNode, p geom.Vec3) []int {
	g := &r.nn
	rad := r.cfg.NeighborRadius
	lox := g.axisOf(p.X-rad, g.origin.X, g.nx)
	hix := g.axisOf(p.X+rad, g.origin.X, g.nx)
	loy := g.axisOf(p.Y-rad, g.origin.Y, g.ny)
	hiy := g.axisOf(p.Y+rad, g.origin.Y, g.ny)
	loz := g.axisOf(p.Z-rad, g.origin.Z, g.nz)
	hiz := g.axisOf(p.Z+rad, g.origin.Z, g.nz)
	out := g.nearBuf[:0]
	for cz := loz; cz <= hiz; cz++ {
		for cy := loy; cy <= hiy; cy++ {
			base := (cz*g.ny + cy) * g.nx
			for cx := lox; cx <= hix; cx++ {
				for _, ni := range g.buckets[base+cx] {
					i := int(ni)
					if nodes[i].pos.Dist(p) <= rad {
						out = append(out, i)
					}
				}
			}
		}
	}
	sort.Ints(out)
	g.nearBuf = out
	return out
}

// nearestLinear is the reference O(n) nearest kept as differential-test
// ground truth for the grid implementation.
func (r *RRTStar) nearestLinear(nodes []rrtNode, p geom.Vec3) int {
	best, bestD := 0, math.Inf(1)
	for i, n := range nodes {
		if d := n.pos.Dist(p); d < bestD {
			best, bestD = i, d
		}
	}
	return best
}

// nearLinear is the reference O(n) radius query kept as differential-test
// ground truth for the grid implementation.
func (r *RRTStar) nearLinear(nodes []rrtNode, p geom.Vec3) []int {
	var out []int
	for i, n := range nodes {
		if n.pos.Dist(p) <= r.cfg.NeighborRadius {
			out = append(out, i)
		}
	}
	return out
}

// nnGrid is a uniform-grid point index over tree nodes with cell edge equal
// to the rewiring radius: near() inspects at most 3 cells per axis and
// nearest() nearly always terminates in the first shell. Buckets are reused
// across Plan calls.
type nnGrid struct {
	origin     geom.Vec3
	cell       float64
	nx, ny, nz int
	buckets    [][]int32
	nearBuf    []int
}

func (g *nnGrid) reset(bounds geom.AABB, cell float64) {
	size := bounds.Size()
	g.origin = bounds.Min
	g.cell = cell
	g.nx = gridAxisCells(size.X, cell)
	g.ny = gridAxisCells(size.Y, cell)
	g.nz = gridAxisCells(size.Z, cell)
	n := g.nx * g.ny * g.nz
	if cap(g.buckets) < n {
		g.buckets = make([][]int32, n)
	}
	g.buckets = g.buckets[:n]
	for i := range g.buckets {
		g.buckets[i] = g.buckets[i][:0]
	}
}

func gridAxisCells(extent, cell float64) int {
	if !(extent > 0) || !(cell > 0) {
		return 1
	}
	n := int(math.Ceil(extent / cell))
	if n < 1 {
		return 1
	}
	return n
}

// axisOf maps a coordinate to its clamped cell index; out-of-bounds
// coordinates land in edge cells on both insert and query, which keeps the
// grid exhaustive (and hence the queries exact) for any point.
func (g *nnGrid) axisOf(v, origin float64, n int) int {
	if g.cell <= 0 || n <= 1 {
		return 0
	}
	f := math.Floor((v - origin) / g.cell)
	if f > 0 {
		if f >= float64(n-1) {
			return n - 1
		}
		return int(f)
	}
	return 0
}

func (g *nnGrid) insert(idx int, p geom.Vec3) {
	cx := g.axisOf(p.X, g.origin.X, g.nx)
	cy := g.axisOf(p.Y, g.origin.Y, g.ny)
	cz := g.axisOf(p.Z, g.origin.Z, g.nz)
	ci := (cz*g.ny+cy)*g.nx + cx
	g.buckets[ci] = append(g.buckets[ci], int32(idx))
}

func (r *RRTStar) steer(from, to geom.Vec3) geom.Vec3 {
	d := to.Sub(from)
	if d.Norm() <= r.cfg.StepSize {
		return to
	}
	return from.Add(d.Unit().Scale(r.cfg.StepSize))
}

func (r *RRTStar) pointFree(p geom.Vec3) bool {
	if r.cfg.Bug == BugStaleObstacles {
		return r.staleIdx.Free(p)
	}
	return r.idx.Free(p)
}

func (r *RRTStar) edgeFree(a, b geom.Vec3) bool {
	if r.cfg.Bug == BugSkipEdgeCheck && r.rng.Float64() < r.cfg.BugRate {
		return true // the bug: extension accepted without checking
	}
	if r.cfg.Bug == BugStaleObstacles {
		return r.staleIdx.SegmentFree(a, b)
	}
	return r.idx.SegmentFree(a, b)
}

// uncheckedShortcut aggressively straightens the path without collision
// checking — the BugUncheckedShortcut defect.
func (r *RRTStar) uncheckedShortcut(p Plan) Plan {
	if len(p) <= 2 {
		return p
	}
	return Plan{p[0], p[len(p)-1]}
}
