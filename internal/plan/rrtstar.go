package plan

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/geom"
)

// Bug enumerates the deterministic defects injectable into the RRT*
// implementation, reproducing Section V-C ("we injected bugs into the
// implementation of RRT* such that in some cases the generated motion plan
// can collide with obstacles").
type Bug int

// Injectable bugs.
const (
	// BugNone: correct RRT*.
	BugNone Bug = iota
	// BugSkipEdgeCheck: a fraction of tree extensions skip the edge
	// collision check (a classic broken-refactor bug).
	BugSkipEdgeCheck
	// BugUncheckedShortcut: the final path is shortcut without collision
	// checking the new segments (an "optimisation" that trades safety for
	// path length).
	BugUncheckedShortcut
	// BugStaleObstacles: the planner checks collisions against a shrunken
	// copy of the obstacle set (stale or mis-scaled map).
	BugStaleObstacles
)

// String implements fmt.Stringer.
func (b Bug) String() string {
	switch b {
	case BugNone:
		return "none"
	case BugSkipEdgeCheck:
		return "skip-edge-check"
	case BugUncheckedShortcut:
		return "unchecked-shortcut"
	case BugStaleObstacles:
		return "stale-obstacles"
	default:
		return fmt.Sprintf("Bug(%d)", int(b))
	}
}

// RRTStarConfig configures the sampling-based planner.
type RRTStarConfig struct {
	// MaxIters bounds the number of samples.
	MaxIters int
	// StepSize is the steering extension length.
	StepSize float64
	// NeighborRadius is the rewiring radius.
	NeighborRadius float64
	// GoalBias is the probability of sampling the goal directly.
	GoalBias float64
	// GoalTolerance is how close a node must get to the goal.
	GoalTolerance float64
	// Margin is the clearance used in collision checks.
	Margin float64
	// Seed drives the sampler.
	Seed int64
	// Bug selects an injected defect (BugNone for the correct planner).
	Bug Bug
	// BugRate is the per-decision activation probability for probabilistic
	// bugs (BugSkipEdgeCheck).
	BugRate float64
}

// DefaultRRTStarConfig returns a configuration tuned for the 50 m city
// workspace.
func DefaultRRTStarConfig(seed int64) RRTStarConfig {
	return RRTStarConfig{
		MaxIters:       4000,
		StepSize:       3.0,
		NeighborRadius: 6.0,
		GoalBias:       0.10,
		GoalTolerance:  1.0,
		Margin:         0.6,
		Seed:           seed,
	}
}

// RRTStar is the third-party motion-planner stand-in (OMPL's RRT* [29]): an
// asymptotically optimal sampling-based planner. With a Bug configured it is
// the untrusted advanced planner of the Section V-C experiment.
type RRTStar struct {
	ws  *geom.Workspace
	cfg RRTStarConfig
	rng *rand.Rand
	// staleObs is the shrunken obstacle set used by BugStaleObstacles.
	staleWS *geom.Workspace
}

var _ Planner = (*RRTStar)(nil)

// NewRRTStar builds the planner.
func NewRRTStar(ws *geom.Workspace, cfg RRTStarConfig) (*RRTStar, error) {
	if cfg.MaxIters <= 0 || cfg.StepSize <= 0 || cfg.NeighborRadius <= 0 {
		return nil, fmt.Errorf("rrtstar: MaxIters, StepSize, NeighborRadius must be positive")
	}
	if cfg.GoalTolerance <= 0 {
		return nil, fmt.Errorf("rrtstar: GoalTolerance must be positive")
	}
	r := &RRTStar{ws: ws, cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
	if cfg.Bug == BugStaleObstacles {
		obs := ws.Obstacles()
		shrunk := make([]geom.AABB, len(obs))
		for i, o := range obs {
			shrunk[i] = o.Expand(-1.2) // stale map: obstacles 1.2 m smaller
		}
		staleWS, err := geom.NewWorkspace(ws.Bounds(), shrunk)
		if err != nil {
			return nil, fmt.Errorf("rrtstar stale workspace: %w", err)
		}
		r.staleWS = staleWS
	}
	return r, nil
}

type rrtNode struct {
	pos    geom.Vec3
	parent int
	cost   float64
}

// Plan implements Planner. With BugNone the result always satisfies the
// clearance margin (it is validated); with a bug injected the result may
// collide — by design, to exercise the RTA protection.
func (r *RRTStar) Plan(start, goal geom.Vec3) (Plan, error) {
	nodes := []rrtNode{{pos: start, parent: -1}}
	bestGoal := -1
	bestCost := math.Inf(1)
	bounds := r.ws.Bounds()
	size := bounds.Size()

	for it := 0; it < r.cfg.MaxIters; it++ {
		var sample geom.Vec3
		if r.rng.Float64() < r.cfg.GoalBias {
			sample = goal
		} else {
			sample = geom.V(
				bounds.Min.X+r.rng.Float64()*size.X,
				bounds.Min.Y+r.rng.Float64()*size.Y,
				bounds.Min.Z+r.rng.Float64()*size.Z,
			)
		}
		nearest := r.nearest(nodes, sample)
		newPos := r.steer(nodes[nearest].pos, sample)
		if !r.pointFree(newPos) {
			continue
		}
		if !r.edgeFree(nodes[nearest].pos, newPos) {
			continue
		}
		// Choose parent: lowest cost among neighbours with a free edge.
		parent := nearest
		cost := nodes[nearest].cost + nodes[nearest].pos.Dist(newPos)
		neighbors := r.near(nodes, newPos)
		for _, n := range neighbors {
			c := nodes[n].cost + nodes[n].pos.Dist(newPos)
			if c < cost && r.edgeFree(nodes[n].pos, newPos) {
				parent, cost = n, c
			}
		}
		nodes = append(nodes, rrtNode{pos: newPos, parent: parent, cost: cost})
		newIdx := len(nodes) - 1
		// Rewire neighbours through the new node when cheaper.
		for _, n := range neighbors {
			c := cost + newPos.Dist(nodes[n].pos)
			if c < nodes[n].cost && r.edgeFree(newPos, nodes[n].pos) {
				nodes[n].parent = newIdx
				nodes[n].cost = c
			}
		}
		if d := newPos.Dist(goal); d <= r.cfg.GoalTolerance {
			if c := cost + d; c < bestCost {
				bestCost = c
				bestGoal = newIdx
			}
		}
	}
	if bestGoal < 0 {
		return nil, fmt.Errorf("rrtstar %v → %v after %d iters: %w", start, goal, r.cfg.MaxIters, ErrNoPath)
	}

	var rev []geom.Vec3
	for i := bestGoal; i >= 0; i = nodes[i].parent {
		rev = append(rev, nodes[i].pos)
	}
	p := make(Plan, 0, len(rev)+1)
	for i := len(rev) - 1; i >= 0; i-- {
		p = append(p, rev[i])
	}
	p = append(p, goal)

	if r.cfg.Bug == BugUncheckedShortcut {
		p = r.uncheckedShortcut(p)
	} else {
		p = Shortcut(p, r.ws, r.cfg.Margin)
	}
	return p, nil
}

func (r *RRTStar) nearest(nodes []rrtNode, p geom.Vec3) int {
	best, bestD := 0, math.Inf(1)
	for i, n := range nodes {
		if d := n.pos.Dist(p); d < bestD {
			best, bestD = i, d
		}
	}
	return best
}

func (r *RRTStar) near(nodes []rrtNode, p geom.Vec3) []int {
	var out []int
	for i, n := range nodes {
		if n.pos.Dist(p) <= r.cfg.NeighborRadius {
			out = append(out, i)
		}
	}
	return out
}

func (r *RRTStar) steer(from, to geom.Vec3) geom.Vec3 {
	d := to.Sub(from)
	if d.Norm() <= r.cfg.StepSize {
		return to
	}
	return from.Add(d.Unit().Scale(r.cfg.StepSize))
}

func (r *RRTStar) pointFree(p geom.Vec3) bool {
	if r.cfg.Bug == BugStaleObstacles {
		return r.staleWS.FreeWithMargin(p, r.cfg.Margin)
	}
	return r.ws.FreeWithMargin(p, r.cfg.Margin)
}

func (r *RRTStar) edgeFree(a, b geom.Vec3) bool {
	if r.cfg.Bug == BugSkipEdgeCheck && r.rng.Float64() < r.cfg.BugRate {
		return true // the bug: extension accepted without checking
	}
	if r.cfg.Bug == BugStaleObstacles {
		return r.staleWS.SegmentFree(a, b, r.cfg.Margin)
	}
	return r.ws.SegmentFree(a, b, r.cfg.Margin)
}

// uncheckedShortcut aggressively straightens the path without collision
// checking — the BugUncheckedShortcut defect.
func (r *RRTStar) uncheckedShortcut(p Plan) Plan {
	if len(p) <= 2 {
		return p
	}
	return Plan{p[0], p[len(p)-1]}
}
