package plan

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/geom"
)

func planWorkspace(t *testing.T) *geom.Workspace {
	t.Helper()
	ws, err := geom.NewWorkspace(
		geom.Box(geom.V(0, 0, 0), geom.V(30, 30, 10)),
		[]geom.AABB{
			geom.Box(geom.V(10, 0, 0), geom.V(12, 20, 10)),  // wall with a gap at the top (y>20)
			geom.Box(geom.V(18, 10, 0), geom.V(20, 30, 10)), // second wall, gap at the bottom
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	return ws
}

func TestPlanLength(t *testing.T) {
	p := Plan{geom.V(0, 0, 0), geom.V(3, 4, 0), geom.V(3, 4, 5)}
	if got := p.Length(); got != 10 {
		t.Errorf("Length = %v, want 10", got)
	}
	if got := (Plan{}).Length(); got != 0 {
		t.Errorf("empty Length = %v", got)
	}
}

func TestPlanClone(t *testing.T) {
	p := Plan{geom.V(1, 1, 1)}
	c := p.Clone()
	c[0] = geom.V(9, 9, 9)
	if p[0] != geom.V(1, 1, 1) {
		t.Error("Clone shares storage")
	}
}

func TestValidate(t *testing.T) {
	ws := planWorkspace(t)
	start, goal := geom.V(2, 2, 2), geom.V(28, 2, 2)
	good := Plan{start, geom.V(5, 25, 2), geom.V(15, 25, 2), geom.V(15, 5, 2), goal}
	if err := Validate(good, ws, 0.4, start, goal, 0.5); err != nil {
		t.Errorf("good plan rejected: %v", err)
	}
	tests := []struct {
		name string
		p    Plan
	}{
		{"empty", nil},
		{"colliding segment", Plan{start, goal}},
		{"wrong start", Plan{geom.V(9, 9, 9), goal}},
		{"wrong goal", Plan{start, geom.V(1, 1, 1)}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := Validate(tt.p, ws, 0.4, start, goal, 0.5); err == nil {
				t.Error("invalid plan accepted")
			}
		})
	}
	// Single-waypoint plan with coincident start/goal.
	if err := Validate(Plan{start}, ws, 0.4, start, start, 0.5); err != nil {
		t.Errorf("single waypoint plan rejected: %v", err)
	}
}

func TestFirstUnsafeSegment(t *testing.T) {
	ws := planWorkspace(t)
	p := Plan{geom.V(2, 2, 2), geom.V(8, 2, 2), geom.V(15, 2, 2), geom.V(16, 2, 2)}
	// Segment 1 (8,2)→(15,2) crosses the first wall.
	if got := FirstUnsafeSegment(p, ws, 0.4); got != 1 {
		t.Errorf("FirstUnsafeSegment = %d, want 1", got)
	}
	safe := Plan{geom.V(2, 2, 2), geom.V(8, 2, 2)}
	if got := FirstUnsafeSegment(safe, ws, 0.4); got != -1 {
		t.Errorf("safe plan FirstUnsafeSegment = %d", got)
	}
	// Single colliding waypoint.
	if got := FirstUnsafeSegment(Plan{geom.V(11, 5, 2)}, ws, 0); got != 0 {
		t.Errorf("colliding waypoint = %d", got)
	}
}

func TestDistanceToUnsafe(t *testing.T) {
	ws := planWorkspace(t)
	p := Plan{geom.V(2, 2, 2), geom.V(8, 2, 2), geom.V(15, 2, 2)}
	d, unsafe := DistanceToUnsafe(p, ws, 0.4)
	if !unsafe || d != 6 {
		t.Errorf("DistanceToUnsafe = %v %v, want 6 true", d, unsafe)
	}
	_, unsafe = DistanceToUnsafe(Plan{geom.V(2, 2, 2), geom.V(8, 2, 2)}, ws, 0.4)
	if unsafe {
		t.Error("safe plan reported unsafe")
	}
}

func TestShortcut(t *testing.T) {
	ws := planWorkspace(t)
	// A dog-leg in open space collapses to the direct segment.
	p := Plan{geom.V(2, 25, 2), geom.V(5, 28, 2), geom.V(8, 25, 2)}
	sc := Shortcut(p, ws, 0.4)
	if len(sc) != 2 {
		t.Errorf("Shortcut = %v, want direct", sc)
	}
	// A detour around the wall must not be straightened through it.
	detour := Plan{geom.V(2, 2, 2), geom.V(5, 25, 2), geom.V(15, 25, 2), geom.V(15, 5, 2)}
	sc = Shortcut(detour, ws, 0.4)
	if FirstUnsafeSegment(sc, ws, 0.4) >= 0 {
		t.Errorf("Shortcut produced a colliding plan: %v", sc)
	}
	if sc.Length() > detour.Length()+1e-9 {
		t.Errorf("Shortcut lengthened the plan: %v > %v", sc.Length(), detour.Length())
	}
}

func TestAStarFindsSafePlans(t *testing.T) {
	ws := planWorkspace(t)
	astar, err := NewAStar(ws, 1.0, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 25; i++ {
		start, ok1 := ws.RandomFreePoint(rng, 1.0, 256)
		goal, ok2 := ws.RandomFreePoint(rng, 1.0, 256)
		if !ok1 || !ok2 {
			t.Fatal("sampling failed")
		}
		p, err := astar.Plan(start, goal)
		if err != nil {
			t.Fatalf("query %d %v→%v: %v", i, start, goal, err)
		}
		if err := Validate(p, ws, 0.4, start, goal, 1e-6); err != nil {
			t.Fatalf("query %d produced invalid plan: %v", i, err)
		}
	}
}

func TestAStarNoPath(t *testing.T) {
	// A wall sealing the workspace in two: no path exists.
	ws, err := geom.NewWorkspace(
		geom.Box(geom.V(0, 0, 0), geom.V(20, 20, 5)),
		[]geom.AABB{geom.Box(geom.V(9, 0, 0), geom.V(11, 20, 5))},
	)
	if err != nil {
		t.Fatal(err)
	}
	astar, err := NewAStar(ws, 1.0, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	_, err = astar.Plan(geom.V(2, 10, 2), geom.V(18, 10, 2))
	if !errors.Is(err, ErrNoPath) {
		t.Errorf("error = %v, want ErrNoPath", err)
	}
}

func TestAStarStartNearObstacle(t *testing.T) {
	ws := planWorkspace(t)
	astar, err := NewAStar(ws, 1.0, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	// A start point hugging the wall (its grid cell is inflated-occupied)
	// still plans via the nearest free cell.
	start := geom.V(9.3, 5, 2)
	if _, err := astar.Plan(start, geom.V(2, 25, 2)); err != nil {
		t.Errorf("near-obstacle start failed: %v", err)
	}
}

func TestRRTStarCorrectModeIsSafe(t *testing.T) {
	ws := planWorkspace(t)
	cfg := DefaultRRTStarConfig(3)
	cfg.Margin = 0.4
	r, err := NewRRTStar(ws, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	planned := 0
	for i := 0; i < 15; i++ {
		start, ok1 := ws.RandomFreePoint(rng, 1.0, 256)
		goal, ok2 := ws.RandomFreePoint(rng, 1.0, 256)
		if !ok1 || !ok2 {
			t.Fatal("sampling failed")
		}
		p, err := r.Plan(start, goal)
		if errors.Is(err, ErrNoPath) {
			continue // sampling planners may miss within the budget
		}
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		planned++
		if idx := FirstUnsafeSegment(p, ws, 0.4); idx >= 0 {
			t.Fatalf("correct RRT* produced colliding plan (segment %d): %v", idx, p)
		}
	}
	if planned == 0 {
		t.Fatal("RRT* solved no queries at all")
	}
}

func TestRRTStarBugsProduceCollidingPlans(t *testing.T) {
	ws := planWorkspace(t)
	rng := rand.New(rand.NewSource(5))
	for _, bug := range []Bug{BugSkipEdgeCheck, BugUncheckedShortcut, BugStaleObstacles} {
		t.Run(bug.String(), func(t *testing.T) {
			cfg := DefaultRRTStarConfig(6)
			cfg.Margin = 0.4
			cfg.Bug = bug
			cfg.BugRate = 0.5
			r, err := NewRRTStar(ws, cfg)
			if err != nil {
				t.Fatal(err)
			}
			colliding := 0
			for i := 0; i < 12; i++ {
				start, _ := ws.RandomFreePoint(rng, 1.0, 256)
				goal, _ := ws.RandomFreePoint(rng, 1.0, 256)
				p, err := r.Plan(start, goal)
				if err != nil {
					continue
				}
				if FirstUnsafeSegment(p, ws, 0.4) >= 0 {
					colliding++
				}
			}
			if colliding == 0 {
				t.Errorf("bug %v produced no colliding plans in 12 queries", bug)
			}
		})
	}
}

func TestRRTStarDeterministicPerSeed(t *testing.T) {
	ws := planWorkspace(t)
	mk := func(seed int64) Plan {
		cfg := DefaultRRTStarConfig(seed)
		cfg.Margin = 0.4
		r, err := NewRRTStar(ws, cfg)
		if err != nil {
			t.Fatal(err)
		}
		p, err := r.Plan(geom.V(2, 2, 2), geom.V(28, 28, 2))
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	a, b := mk(7), mk(7)
	if len(a) != len(b) {
		t.Fatalf("same seed, different plans: %v vs %v", a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed, different plans at %d", i)
		}
	}
}

func TestRRTStarConfigValidation(t *testing.T) {
	ws := planWorkspace(t)
	bad := DefaultRRTStarConfig(1)
	bad.MaxIters = 0
	if _, err := NewRRTStar(ws, bad); err == nil {
		t.Error("zero MaxIters accepted")
	}
	bad = DefaultRRTStarConfig(1)
	bad.GoalTolerance = 0
	if _, err := NewRRTStar(ws, bad); err == nil {
		t.Error("zero GoalTolerance accepted")
	}
}

func TestBugString(t *testing.T) {
	if BugNone.String() != "none" || Bug(99).String() != "Bug(99)" {
		t.Error("Bug.String wrong")
	}
}
