package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func testWorkspace(t *testing.T) *Workspace {
	t.Helper()
	ws, err := NewWorkspace(
		Box(V(0, 0, 0), V(20, 20, 10)),
		[]AABB{
			Box(V(5, 5, 0), V(8, 8, 6)),
			Box(V(12, 12, 0), V(15, 15, 4)),
		},
	)
	if err != nil {
		t.Fatalf("NewWorkspace: %v", err)
	}
	return ws
}

func TestNewWorkspaceRejectsEmptyBounds(t *testing.T) {
	if _, err := NewWorkspace(AABB{Min: V(1, 0, 0), Max: V(0, 1, 1)}, nil); err == nil {
		t.Fatal("expected error for empty bounds")
	}
}

func TestWorkspaceFree(t *testing.T) {
	ws := testWorkspace(t)
	tests := []struct {
		p    Vec3
		want bool
	}{
		{V(1, 1, 1), true},
		{V(6, 6, 3), false},   // inside obstacle 1
		{V(13, 13, 2), false}, // inside obstacle 2
		{V(13, 13, 5), true},  // above obstacle 2
		{V(-1, 1, 1), false},  // out of bounds
		{V(21, 1, 1), false},
	}
	for _, tt := range tests {
		if got := ws.Free(tt.p); got != tt.want {
			t.Errorf("Free(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
}

func TestWorkspaceFreeWithMargin(t *testing.T) {
	ws := testWorkspace(t)
	// 0.4 m from the obstacle face at x=5.
	p := V(4.6, 6, 3)
	if !ws.Free(p) {
		t.Fatal("point should be free without margin")
	}
	if ws.FreeWithMargin(p, 0.5) {
		t.Error("point 0.4m from obstacle should violate 0.5m margin")
	}
	if !ws.FreeWithMargin(p, 0.3) {
		t.Error("point 0.4m from obstacle should satisfy 0.3m margin")
	}
	// Margin against the outer boundary.
	if ws.FreeWithMargin(V(0.2, 10, 5), 0.5) {
		t.Error("point 0.2m from boundary should violate 0.5m margin")
	}
}

func TestWorkspaceSegmentFree(t *testing.T) {
	ws := testWorkspace(t)
	if ws.SegmentFree(V(1, 6, 3), V(10, 6, 3), 0) {
		t.Error("segment through obstacle 1 should not be free")
	}
	if !ws.SegmentFree(V(1, 1, 1), V(18, 1, 1), 0.5) {
		t.Error("segment along free corridor should be free")
	}
	if ws.SegmentFree(V(1, 1, 1), V(25, 1, 1), 0) {
		t.Error("segment leaving bounds should not be free")
	}
	// Margin: passing 0.3m from obstacle face fails a 0.5m margin.
	if ws.SegmentFree(V(1, 4.7, 3), V(18, 4.7, 3), 0.5) {
		t.Error("segment 0.3m from obstacle should violate 0.5m margin")
	}
}

func TestWorkspacePathFree(t *testing.T) {
	ws := testWorkspace(t)
	good := []Vec3{V(1, 1, 1), V(10, 1, 1), V(18, 10, 1)}
	if !ws.PathFree(good, 0.2) {
		t.Error("good path reported unsafe")
	}
	bad := []Vec3{V(1, 6, 3), V(10, 6, 3)}
	if ws.PathFree(bad, 0) {
		t.Error("colliding path reported safe")
	}
	if !ws.PathFree(nil, 0.2) {
		t.Error("empty path should be free")
	}
	if !ws.PathFree([]Vec3{V(1, 1, 1)}, 0.2) {
		t.Error("single free waypoint should be free")
	}
	if ws.PathFree([]Vec3{V(6, 6, 3)}, 0) {
		t.Error("single colliding waypoint should not be free")
	}
}

func TestWorkspaceClearance(t *testing.T) {
	ws := testWorkspace(t)
	if got := ws.Clearance(V(6, 6, 3)); got != 0 {
		t.Errorf("Clearance inside obstacle = %v", got)
	}
	if got := ws.Clearance(V(-1, 0, 0)); got != 0 {
		t.Errorf("Clearance out of bounds = %v", got)
	}
	// 1 m from the obstacle face at x=5, far from everything else except
	// bounds (4 m from x=0... actually 4m; z=3 gives 3m to floor).
	got := ws.Clearance(V(4, 6.5, 3))
	if !almostEq(got, 1) {
		t.Errorf("Clearance = %v, want 1", got)
	}
}

func TestRandomFreePoint(t *testing.T) {
	ws := testWorkspace(t)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 50; i++ {
		p, ok := ws.RandomFreePoint(rng, 0.5, 256)
		if !ok {
			t.Fatal("failed to sample a free point in a mostly-free workspace")
		}
		if !ws.FreeWithMargin(p, 0.5) {
			t.Fatalf("sampled point %v violates the margin", p)
		}
	}
}

func TestRetreatDirectionPointsAway(t *testing.T) {
	ws := testWorkspace(t)
	// Next to the -X face of obstacle 1: retreat should have negative X.
	d := ws.RetreatDirection(V(4.5, 6.5, 3), 2)
	if d.X >= 0 {
		t.Errorf("retreat near obstacle face should point -X, got %v", d)
	}
	// Near the floor: retreat should have positive Z.
	d = ws.RetreatDirection(V(10, 2, 0.3), 2)
	if d.Z <= 0 {
		t.Errorf("retreat near floor should point +Z, got %v", d)
	}
	// Far from everything: zero.
	d = ws.RetreatDirection(V(16, 5, 5), 1)
	if d != Zero {
		t.Errorf("retreat in open space = %v, want zero", d)
	}
}

func TestCityWorkspace(t *testing.T) {
	ws := CityWorkspace()
	if ws.NumObstacles() != 12 {
		t.Errorf("city workspace has %d obstacles, want 12", ws.NumObstacles())
	}
	if !ws.Free(V(3, 3, 2)) {
		t.Error("the home corner should be free")
	}
	if ws.Free(V(10, 10, 2)) {
		t.Error("inside a house should not be free")
	}
	// Obstacles returns a copy: mutating it must not affect the workspace.
	obs := ws.Obstacles()
	obs[0] = Box(V(0, 0, 0), V(50, 50, 12))
	if !ws.Free(V(3, 3, 2)) {
		t.Error("mutating the returned obstacle slice changed the workspace")
	}
}

// Property: BoxFree(box) implies Free for every sampled point of the box.
func TestBoxFreeSoundnessProperty(t *testing.T) {
	ws := testWorkspace(t)
	rng := rand.New(rand.NewSource(7))
	f := func(cx, cy, cz, hx, hy, hz float64) bool {
		c := V(3+math.Mod(math.Abs(cx), 14), 3+math.Mod(math.Abs(cy), 14), 1+math.Mod(math.Abs(cz), 8))
		h := V(math.Mod(math.Abs(hx), 2), math.Mod(math.Abs(hy), 2), math.Mod(math.Abs(hz), 2))
		box := BoxAt(c, h)
		if !ws.BoxFree(box, 0) {
			return true
		}
		for i := 0; i < 16; i++ {
			p := V(
				box.Min.X+rng.Float64()*(box.Max.X-box.Min.X),
				box.Min.Y+rng.Float64()*(box.Max.Y-box.Min.Y),
				box.Min.Z+rng.Float64()*(box.Max.Z-box.Min.Z),
			)
			if !ws.Free(p) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: SegmentFree with a larger margin implies SegmentFree with a
// smaller one (monotonicity).
func TestSegmentMarginMonotoneProperty(t *testing.T) {
	ws := testWorkspace(t)
	f := func(ax, ay, az, bx, by, bz float64) bool {
		a := V(math.Mod(math.Abs(ax), 20), math.Mod(math.Abs(ay), 20), math.Mod(math.Abs(az), 10))
		b := V(math.Mod(math.Abs(bx), 20), math.Mod(math.Abs(by), 20), math.Mod(math.Abs(bz), 10))
		if ws.SegmentFree(a, b, 0.8) {
			return ws.SegmentFree(a, b, 0.2)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
