// Package geom provides the 3D geometry substrate used throughout the SOTER
// reproduction: vectors, axis-aligned boxes, obstacle workspaces mirroring the
// paper's city map (Figure 2), and occupancy grids used by the certified
// planner and the grid-based backward-reachability analysis.
package geom

import (
	"fmt"
	"math"
)

// Vec3 is a point or vector in 3D space. Coordinates are metres.
type Vec3 struct {
	X, Y, Z float64
}

// V is shorthand for constructing a Vec3.
func V(x, y, z float64) Vec3 { return Vec3{X: x, Y: y, Z: z} }

// Zero is the origin / zero vector.
var Zero = Vec3{}

// Add returns v + w.
func (v Vec3) Add(w Vec3) Vec3 { return Vec3{v.X + w.X, v.Y + w.Y, v.Z + w.Z} }

// Sub returns v - w.
func (v Vec3) Sub(w Vec3) Vec3 { return Vec3{v.X - w.X, v.Y - w.Y, v.Z - w.Z} }

// Scale returns v scaled by s.
func (v Vec3) Scale(s float64) Vec3 { return Vec3{v.X * s, v.Y * s, v.Z * s} }

// Neg returns -v.
func (v Vec3) Neg() Vec3 { return Vec3{-v.X, -v.Y, -v.Z} }

// Dot returns the dot product of v and w.
func (v Vec3) Dot(w Vec3) float64 { return v.X*w.X + v.Y*w.Y + v.Z*w.Z }

// Norm returns the Euclidean length of v.
func (v Vec3) Norm() float64 { return math.Sqrt(v.Dot(v)) }

// NormSq returns the squared Euclidean length of v.
func (v Vec3) NormSq() float64 { return v.Dot(v) }

// Dist returns the Euclidean distance between v and w.
func (v Vec3) Dist(w Vec3) float64 { return v.Sub(w).Norm() }

// Unit returns v normalised to unit length. The zero vector is returned
// unchanged so callers never divide by zero.
func (v Vec3) Unit() Vec3 {
	n := v.Norm()
	if n == 0 {
		return Vec3{}
	}
	return v.Scale(1 / n)
}

// ClampNorm returns v with its length clamped to at most maxNorm.
func (v Vec3) ClampNorm(maxNorm float64) Vec3 {
	if maxNorm <= 0 {
		return Vec3{}
	}
	n := v.Norm()
	if n <= maxNorm {
		return v
	}
	return v.Scale(maxNorm / n)
}

// ClampBox clamps each component of v into [lo, hi] component-wise.
func (v Vec3) ClampBox(lo, hi Vec3) Vec3 {
	return Vec3{
		X: clamp(v.X, lo.X, hi.X),
		Y: clamp(v.Y, lo.Y, hi.Y),
		Z: clamp(v.Z, lo.Z, hi.Z),
	}
}

// Lerp linearly interpolates from v to w by t in [0,1].
func (v Vec3) Lerp(w Vec3, t float64) Vec3 {
	return v.Add(w.Sub(v).Scale(t))
}

// Abs returns the component-wise absolute value of v.
func (v Vec3) Abs() Vec3 {
	return Vec3{math.Abs(v.X), math.Abs(v.Y), math.Abs(v.Z)}
}

// Min returns the component-wise minimum of v and w.
func (v Vec3) Min(w Vec3) Vec3 {
	return Vec3{math.Min(v.X, w.X), math.Min(v.Y, w.Y), math.Min(v.Z, w.Z)}
}

// Max returns the component-wise maximum of v and w.
func (v Vec3) Max(w Vec3) Vec3 {
	return Vec3{math.Max(v.X, w.X), math.Max(v.Y, w.Y), math.Max(v.Z, w.Z)}
}

// MaxComponent returns the largest component of v.
func (v Vec3) MaxComponent() float64 {
	return math.Max(v.X, math.Max(v.Y, v.Z))
}

// IsFinite reports whether all components are finite numbers.
func (v Vec3) IsFinite() bool {
	return !math.IsNaN(v.X) && !math.IsInf(v.X, 0) &&
		!math.IsNaN(v.Y) && !math.IsInf(v.Y, 0) &&
		!math.IsNaN(v.Z) && !math.IsInf(v.Z, 0)
}

// String implements fmt.Stringer.
func (v Vec3) String() string {
	return fmt.Sprintf("(%.3f, %.3f, %.3f)", v.X, v.Y, v.Z)
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
