package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func TestBoxNormalisesCorners(t *testing.T) {
	b := Box(V(5, -1, 3), V(1, 2, 0))
	if !vecAlmostEq(b.Min, V(1, -1, 0)) || !vecAlmostEq(b.Max, V(5, 2, 3)) {
		t.Errorf("Box = %v", b)
	}
}

func TestBoxAt(t *testing.T) {
	b := BoxAt(V(1, 1, 1), V(0.5, 1, 2))
	if !vecAlmostEq(b.Min, V(0.5, 0, -1)) || !vecAlmostEq(b.Max, V(1.5, 2, 3)) {
		t.Errorf("BoxAt = %v", b)
	}
	if !vecAlmostEq(b.Center(), V(1, 1, 1)) {
		t.Errorf("Center = %v", b.Center())
	}
}

func TestAABBContains(t *testing.T) {
	b := Box(V(0, 0, 0), V(10, 10, 10))
	tests := []struct {
		p    Vec3
		want bool
	}{
		{V(5, 5, 5), true},
		{V(0, 0, 0), true}, // boundary counts
		{V(10, 10, 10), true},
		{V(10.01, 5, 5), false},
		{V(-0.01, 5, 5), false},
	}
	for _, tt := range tests {
		if got := b.Contains(tt.p); got != tt.want {
			t.Errorf("Contains(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
}

func TestAABBIntersects(t *testing.T) {
	a := Box(V(0, 0, 0), V(2, 2, 2))
	tests := []struct {
		name string
		b    AABB
		want bool
	}{
		{"overlapping", Box(V(1, 1, 1), V(3, 3, 3)), true},
		{"touching face", Box(V(2, 0, 0), V(4, 2, 2)), true},
		{"disjoint", Box(V(3, 3, 3), V(4, 4, 4)), false},
		{"contained", Box(V(0.5, 0.5, 0.5), V(1, 1, 1)), true},
		{"empty other", AABB{Min: V(1, 1, 1), Max: V(0, 0, 0)}, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := a.Intersects(tt.b); got != tt.want {
				t.Errorf("Intersects = %v, want %v", got, tt.want)
			}
			if got := tt.b.Intersects(a); got != tt.want {
				t.Errorf("Intersects (sym) = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestAABBExpand(t *testing.T) {
	b := Box(V(0, 0, 0), V(2, 2, 2)).Expand(1)
	if !vecAlmostEq(b.Min, V(-1, -1, -1)) || !vecAlmostEq(b.Max, V(3, 3, 3)) {
		t.Errorf("Expand = %v", b)
	}
	shrunk := Box(V(0, 0, 0), V(2, 2, 2)).Expand(-1.5)
	if !shrunk.IsEmpty() {
		t.Errorf("over-shrunk box should be empty: %v", shrunk)
	}
}

func TestAABBDistance(t *testing.T) {
	b := Box(V(0, 0, 0), V(2, 2, 2))
	if got := b.Distance(V(1, 1, 1)); !almostEq(got, 0) {
		t.Errorf("Distance inside = %v", got)
	}
	if got := b.Distance(V(5, 1, 1)); !almostEq(got, 3) {
		t.Errorf("Distance face = %v", got)
	}
	if got := b.Distance(V(5, 6, 1)); !almostEq(got, 5) {
		t.Errorf("Distance edge = %v", got)
	}
}

func TestSegmentIntersects(t *testing.T) {
	b := Box(V(2, 2, 2), V(4, 4, 4))
	tests := []struct {
		name string
		a, c Vec3
		want bool
	}{
		{"crossing through", V(0, 3, 3), V(6, 3, 3), true},
		{"ends inside", V(3, 3, 3), V(10, 10, 10), true},
		{"fully inside", V(2.5, 2.5, 2.5), V(3.5, 3.5, 3.5), true},
		{"missing", V(0, 0, 0), V(1, 1, 1), false},
		{"parallel outside", V(0, 5, 3), V(6, 5, 3), false},
		{"diagonal through corner region", V(0, 0, 0), V(6, 6, 6), true},
		{"degenerate point inside", V(3, 3, 3), V(3, 3, 3), true},
		{"degenerate point outside", V(1, 1, 1), V(1, 1, 1), false},
		{"grazing face", V(0, 2, 3), V(6, 2, 3), true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := b.SegmentIntersects(tt.a, tt.c); got != tt.want {
				t.Errorf("SegmentIntersects(%v, %v) = %v, want %v", tt.a, tt.c, got, tt.want)
			}
		})
	}
}

func TestAABBUnionVolume(t *testing.T) {
	a := Box(V(0, 0, 0), V(1, 1, 1))
	b := Box(V(2, 2, 2), V(3, 4, 5))
	u := a.Union(b)
	if !vecAlmostEq(u.Min, V(0, 0, 0)) || !vecAlmostEq(u.Max, V(3, 4, 5)) {
		t.Errorf("Union = %v", u)
	}
	if got := b.Volume(); !almostEq(got, 1*2*3) {
		t.Errorf("Volume = %v", got)
	}
	var empty AABB
	empty.Min = V(1, 0, 0) // Min > Max on X
	if got := a.Union(empty); got != a {
		t.Errorf("Union with empty = %v", got)
	}
}

func TestContainsBox(t *testing.T) {
	outer := Box(V(0, 0, 0), V(10, 10, 10))
	if !outer.ContainsBox(Box(V(1, 1, 1), V(9, 9, 9))) {
		t.Error("inner box should be contained")
	}
	if outer.ContainsBox(Box(V(1, 1, 1), V(11, 9, 9))) {
		t.Error("protruding box should not be contained")
	}
}

// Property: a segment's midpoint inside the box implies intersection.
func TestSegmentMidpointProperty(t *testing.T) {
	b := Box(V(-1, -1, -1), V(1, 1, 1))
	f := func(ax, ay, az, cx, cy, cz float64) bool {
		a := V(math.Mod(ax, 10), math.Mod(ay, 10), math.Mod(az, 10))
		c := V(math.Mod(cx, 10), math.Mod(cy, 10), math.Mod(cz, 10))
		mid := a.Lerp(c, 0.5)
		if b.Contains(mid) {
			return b.SegmentIntersects(a, c)
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: SegmentIntersects is symmetric in its endpoints.
func TestSegmentSymmetryProperty(t *testing.T) {
	b := Box(V(0, 0, 0), V(3, 2, 5))
	f := func(ax, ay, az, cx, cy, cz float64) bool {
		a := V(math.Mod(ax, 12), math.Mod(ay, 12), math.Mod(az, 12))
		c := V(math.Mod(cx, 12), math.Mod(cy, 12), math.Mod(cz, 12))
		return b.SegmentIntersects(a, c) == b.SegmentIntersects(c, a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Distance(p) == 0 iff Contains(p).
func TestDistanceContainsProperty(t *testing.T) {
	b := Box(V(-2, 0, 1), V(4, 3, 6))
	f := func(x, y, z float64) bool {
		p := V(math.Mod(x, 15), math.Mod(y, 15), math.Mod(z, 15))
		return (b.Distance(p) == 0) == b.Contains(p)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
