package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func testGrid(t *testing.T, res, margin float64) (*Grid, *Workspace) {
	t.Helper()
	ws := testWorkspace(t)
	g, err := NewGrid(ws, res, margin)
	if err != nil {
		t.Fatalf("NewGrid: %v", err)
	}
	return g, ws
}

func TestNewGridValidation(t *testing.T) {
	ws := testWorkspace(t)
	if _, err := NewGrid(ws, 0, 0); err == nil {
		t.Error("expected error for zero resolution")
	}
	if _, err := NewGrid(ws, -1, 0); err == nil {
		t.Error("expected error for negative resolution")
	}
}

func TestGridDims(t *testing.T) {
	g, _ := testGrid(t, 1.0, 0)
	nx, ny, nz := g.Dims()
	if nx != 20 || ny != 20 || nz != 10 {
		t.Errorf("Dims = %d,%d,%d", nx, ny, nz)
	}
	if g.NumCells() != 20*20*10 {
		t.Errorf("NumCells = %d", g.NumCells())
	}
}

func TestGridOccupancyMatchesWorkspace(t *testing.T) {
	g, ws := testGrid(t, 0.5, 0)
	nx, ny, nz := g.Dims()
	for z := 0; z < nz; z++ {
		for y := 0; y < ny; y++ {
			for x := 0; x < nx; x++ {
				c := Cell{x, y, z}
				want := !ws.FreeWithMargin(g.CellCenter(c), 0)
				if got := g.Occupied(c); got != want {
					t.Fatalf("Occupied(%v) = %v, want %v (center %v)", c, got, want, g.CellCenter(c))
				}
			}
		}
	}
}

func TestGridCellOfRoundTrip(t *testing.T) {
	g, _ := testGrid(t, 0.5, 0)
	nx, ny, nz := g.Dims()
	for _, c := range []Cell{{0, 0, 0}, {nx - 1, ny - 1, nz - 1}, {3, 7, 2}} {
		if got := g.CellOf(g.CellCenter(c)); got != c {
			t.Errorf("CellOf(CellCenter(%v)) = %v", c, got)
		}
	}
}

func TestGridOutOfBounds(t *testing.T) {
	g, _ := testGrid(t, 1.0, 0)
	if !g.Occupied(Cell{-1, 0, 0}) {
		t.Error("out-of-grid cell should count as occupied")
	}
	if _, ok := g.Index(Cell{0, 0, 100}); ok {
		t.Error("Index of invalid cell should fail")
	}
	g.SetOccupied(Cell{-1, 0, 0}, false) // must not panic
}

func TestGridNeighbors(t *testing.T) {
	g, _ := testGrid(t, 1.0, 0)
	n6 := g.Neighbors6(Cell{0, 0, 0}, nil)
	if len(n6) != 3 {
		t.Errorf("corner cell has %d 6-neighbors, want 3", len(n6))
	}
	n26 := g.Neighbors26(Cell{5, 5, 5}, nil)
	if len(n26) != 26 {
		t.Errorf("interior cell has %d 26-neighbors, want 26", len(n26))
	}
	n26c := g.Neighbors26(Cell{0, 0, 0}, nil)
	if len(n26c) != 7 {
		t.Errorf("corner cell has %d 26-neighbors, want 7", len(n26c))
	}
}

func TestDistanceToOccupied(t *testing.T) {
	g, _ := testGrid(t, 1.0, 0)
	dist := g.DistanceToOccupied()
	// Occupied cells are at distance 0.
	i, _ := g.Index(g.CellOf(V(6, 6, 3)))
	if dist[i] != 0 {
		t.Errorf("occupied cell distance = %d", dist[i])
	}
	// A free cell adjacent to the obstacle is at distance 1.
	i, _ = g.Index(g.CellOf(V(4.5, 6.5, 3)))
	if dist[i] != 1 {
		t.Errorf("adjacent cell distance = %d", dist[i])
	}
	// Distances grow with separation and satisfy the BFS property: each
	// free cell has some 6-neighbor with distance one less.
	var nbuf []Cell
	nx, ny, nz := g.Dims()
	for z := 0; z < nz; z++ {
		for y := 0; y < ny; y++ {
			for x := 0; x < nx; x++ {
				c := Cell{x, y, z}
				ci, _ := g.Index(c)
				if dist[ci] == 0 {
					continue
				}
				ok := false
				nbuf = g.Neighbors6(c, nbuf[:0])
				for _, n := range nbuf {
					ni, _ := g.Index(n)
					if dist[ni] == dist[ci]-1 {
						ok = true
						break
					}
				}
				if !ok {
					t.Fatalf("cell %v (d=%d) has no predecessor", c, dist[ci])
				}
			}
		}
	}
}

// Property: CellOf maps any in-bounds point to a valid cell whose center is
// within half a cell diagonal.
func TestCellOfProperty(t *testing.T) {
	g, ws := testGrid(t, 0.5, 0)
	f := func(x, y, z float64) bool {
		p := V(math.Mod(math.Abs(x), 19.9), math.Mod(math.Abs(y), 19.9), math.Mod(math.Abs(z), 9.9))
		if !ws.InBounds(p) {
			return true
		}
		c := g.CellOf(p)
		if !g.InGrid(c) {
			return false
		}
		return g.CellCenter(c).Dist(p) <= g.Resolution()*math.Sqrt(3)/2+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
