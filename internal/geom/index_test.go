package geom

import (
	"math/rand"
	"testing"
)

// indexWorkspaces returns the full factory set, covering every obstacle
// layout the scenarios use.
func indexWorkspaces() []*Workspace {
	return []*Workspace{
		CityWorkspace(),
		CanyonWorkspace(),
		CornerHazardWorkspace(),
		OpenWorkspace(Box(V(0, 0, 0), V(20, 20, 10))),
	}
}

// TestIndexMatchesLinearOnFactories sweeps a deterministic grid of points,
// boxes and segments over every factory workspace at several margins and
// requires the indexed answers to equal the linear-scan ground truth.
func TestIndexMatchesLinearOnFactories(t *testing.T) {
	margins := []float64{0, 0.45, 0.6, 1.25, 1.31, 3.0, -0.5}
	for _, ws := range indexWorkspaces() {
		b := ws.Bounds()
		size := b.Size()
		rng := rand.New(rand.NewSource(7))
		for _, m := range margins {
			for i := 0; i < 400; i++ {
				p := V(
					b.Min.X-2+rng.Float64()*(size.X+4),
					b.Min.Y-2+rng.Float64()*(size.Y+4),
					b.Min.Z-2+rng.Float64()*(size.Z+4),
				)
				q := V(
					b.Min.X-2+rng.Float64()*(size.X+4),
					b.Min.Y-2+rng.Float64()*(size.Y+4),
					b.Min.Z-2+rng.Float64()*(size.Z+4),
				)
				if got, want := ws.FreeWithMargin(p, m), ws.freeWithMarginLinear(p, m); got != want {
					t.Fatalf("FreeWithMargin(%v, %v) = %v, linear = %v", p, m, got, want)
				}
				box := Box(p, q)
				if got, want := ws.BoxFree(box, m), ws.boxFreeLinear(box, m); got != want {
					t.Fatalf("BoxFree(%v, %v) = %v, linear = %v", box, m, got, want)
				}
				if got, want := ws.SegmentFree(p, q, m), ws.segmentFreeLinear(p, q, m); got != want {
					t.Fatalf("SegmentFree(%v, %v, %v) = %v, linear = %v", p, q, m, got, want)
				}
			}
		}
		for i := 0; i < 2000; i++ {
			p := V(rng.Float64()*size.X, rng.Float64()*size.Y, rng.Float64()*size.Z).Add(b.Min)
			if got, want := ws.Free(p), ws.freeLinear(p); got != want {
				t.Fatalf("Free(%v) = %v, linear = %v", p, got, want)
			}
		}
	}
}

// TestIndexCacheCapFallsBackToLinear queries more distinct margins than the
// cache holds and checks the overflow margins still answer exactly.
func TestIndexCacheCapFallsBackToLinear(t *testing.T) {
	ws := CityWorkspace()
	p := V(10, 10, 3)
	for i := 0; i < 2*maxCachedIndexes; i++ {
		m := 0.1 * float64(i)
		if got, want := ws.FreeWithMargin(p, m), ws.freeWithMarginLinear(p, m); got != want {
			t.Fatalf("margin %v: indexed %v != linear %v", m, got, want)
		}
	}
	if s := ws.cache.views.Load(); s == nil || len(s.views) != maxCachedIndexes {
		t.Fatalf("cache should be capped at %d views", maxCachedIndexes)
	}
	// IndexFor still serves overflow margins with a correct uncached index.
	idx := ws.IndexFor(99.0)
	if idx == nil || idx.Margin() != 99.0 {
		t.Fatalf("IndexFor must build past the cache cap, got %+v", idx)
	}
}

// TestObstaclesViewAliasesStorage pins the accessor contract: ObstaclesView
// shares storage (no copy), Obstacles does not.
func TestObstaclesViewAliasesStorage(t *testing.T) {
	ws := CityWorkspace()
	view := ws.ObstaclesView()
	if len(view) != ws.NumObstacles() {
		t.Fatalf("view has %d obstacles, want %d", len(view), ws.NumObstacles())
	}
	cp := ws.Obstacles()
	if &view[0] == &cp[0] {
		t.Fatal("Obstacles must copy")
	}
	if &view[0] != &ws.obstacles[0] {
		t.Fatal("ObstaclesView must alias the internal slice")
	}
}

// FuzzIndexedQueryEquivalence is the soundness gate for the bitmap fast
// path: on random workspaces, margins, points, boxes and segments, the
// indexed Free/BoxFree/SegmentFree must agree with the naive linear scan.
func FuzzIndexedQueryEquivalence(f *testing.F) {
	f.Add(int64(1), 0.45, 5.0, 5.0, 2.0, 12.0, 9.0, 4.0)
	f.Add(int64(2), 0.0, 0.0, 0.0, 0.0, 50.0, 50.0, 12.0)
	f.Add(int64(3), -0.8, -3.0, 20.0, 1.0, 55.0, 20.0, 1.0)
	f.Add(int64(4), 2.5, 49.9, 0.1, 11.9, 0.2, 49.8, 0.3)
	f.Fuzz(func(t *testing.T, seed int64, margin, ax, ay, az, bx, by, bz float64) {
		if margin < -10 || margin > 10 || !finite(margin) {
			t.Skip()
		}
		for _, v := range []float64{ax, ay, az, bx, by, bz} {
			if v < -1e6 || v > 1e6 || !finite(v) {
				t.Skip()
			}
		}
		rng := rand.New(rand.NewSource(seed))
		// Random bounded workspace with random obstacles.
		bounds := Box(V(0, 0, 0), V(10+rng.Float64()*60, 10+rng.Float64()*60, 4+rng.Float64()*12))
		n := rng.Intn(20)
		obstacles := make([]AABB, 0, n)
		size := bounds.Size()
		for i := 0; i < n; i++ {
			c := V(rng.Float64()*size.X, rng.Float64()*size.Y, rng.Float64()*size.Z)
			h := V(0.2+rng.Float64()*6, 0.2+rng.Float64()*6, 0.2+rng.Float64()*4)
			obstacles = append(obstacles, BoxAt(c, h))
		}
		ws, err := NewWorkspace(bounds, obstacles)
		if err != nil {
			t.Fatal(err)
		}
		a := V(ax, ay, az)
		b := V(bx, by, bz)
		if got, want := ws.FreeWithMargin(a, margin), ws.freeWithMarginLinear(a, margin); got != want {
			t.Fatalf("FreeWithMargin(%v, %v): indexed %v != linear %v", a, margin, got, want)
		}
		if got, want := ws.Free(a), ws.freeLinear(a); got != want {
			t.Fatalf("Free(%v): indexed %v != linear %v", a, got, want)
		}
		box := Box(a, b)
		if got, want := ws.BoxFree(box, margin), ws.boxFreeLinear(box, margin); got != want {
			t.Fatalf("BoxFree(%v, %v): indexed %v != linear %v", box, margin, got, want)
		}
		if got, want := ws.SegmentFree(a, b, margin), ws.segmentFreeLinear(a, b, margin); got != want {
			t.Fatalf("SegmentFree(%v, %v, %v): indexed %v != linear %v", a, b, margin, got, want)
		}
	})
}

func finite(v float64) bool { return v == v && v < 1e308 && v > -1e308 }

// TestWorkspaceBoxFreeAllocs asserts the index-backed hot-path queries are
// allocation-free (the interning_test.go pattern).
func TestWorkspaceBoxFreeAllocs(t *testing.T) {
	ws := CityWorkspace()
	box := Box(V(9, 9, 2), V(11, 11, 4))
	seg := [2]Vec3{V(2, 2, 2), V(48, 48, 10)}
	p := V(17.5, 17.0, 1.0)
	ws.BoxFree(box, 0.45) // warm the margin cache outside the measurement
	sink := false
	allocs := testing.AllocsPerRun(200, func() {
		sink = ws.BoxFree(box, 0.45)
		sink = ws.FreeWithMargin(p, 0.45) && sink
		sink = ws.SegmentFree(seg[0], seg[1], 0.45) && sink
	})
	_ = sink
	if allocs != 0 {
		t.Fatalf("index-backed workspace queries allocate %.1f allocs/op, want 0", allocs)
	}
}

func BenchmarkWorkspaceBoxFree(b *testing.B) {
	ws := CityWorkspace()
	box := Box(V(17, 16.5, 0.5), V(19.5, 18.5, 2.0)) // near the parked cars
	ws.BoxFree(box, 0.45)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ws.BoxFree(box, 0.45)
	}
}

func BenchmarkWorkspaceBoxFreeLinear(b *testing.B) {
	ws := CityWorkspace()
	box := Box(V(17, 16.5, 0.5), V(19.5, 18.5, 2.0))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ws.boxFreeLinear(box, 0.45)
	}
}

func BenchmarkWorkspaceSegmentFree(b *testing.B) {
	ws := CityWorkspace()
	a, c := V(2, 2, 2), V(48, 48, 10)
	ws.SegmentFree(a, c, 0.6)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ws.SegmentFree(a, c, 0.6)
	}
}
