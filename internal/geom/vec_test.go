package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func vecAlmostEq(a, b Vec3) bool {
	return almostEq(a.X, b.X) && almostEq(a.Y, b.Y) && almostEq(a.Z, b.Z)
}

func TestVecBasicOps(t *testing.T) {
	a := V(1, 2, 3)
	b := V(-4, 5, 0.5)
	if got := a.Add(b); !vecAlmostEq(got, V(-3, 7, 3.5)) {
		t.Errorf("Add = %v", got)
	}
	if got := a.Sub(b); !vecAlmostEq(got, V(5, -3, 2.5)) {
		t.Errorf("Sub = %v", got)
	}
	if got := a.Scale(2); !vecAlmostEq(got, V(2, 4, 6)) {
		t.Errorf("Scale = %v", got)
	}
	if got := a.Dot(b); !almostEq(got, -4+10+1.5) {
		t.Errorf("Dot = %v", got)
	}
	if got := a.Neg(); !vecAlmostEq(got, V(-1, -2, -3)) {
		t.Errorf("Neg = %v", got)
	}
	if got := V(3, 4, 0).Norm(); !almostEq(got, 5) {
		t.Errorf("Norm = %v", got)
	}
	if got := V(3, 4, 0).Dist(V(0, 0, 0)); !almostEq(got, 5) {
		t.Errorf("Dist = %v", got)
	}
}

func TestVecUnit(t *testing.T) {
	if got := V(0, 0, 0).Unit(); got != Zero {
		t.Errorf("Unit of zero = %v, want zero", got)
	}
	u := V(10, 0, 0).Unit()
	if !vecAlmostEq(u, V(1, 0, 0)) {
		t.Errorf("Unit = %v", u)
	}
}

func TestVecClampNorm(t *testing.T) {
	tests := []struct {
		name string
		v    Vec3
		max  float64
		want Vec3
	}{
		{"under cap", V(1, 0, 0), 5, V(1, 0, 0)},
		{"over cap", V(10, 0, 0), 5, V(5, 0, 0)},
		{"zero cap", V(10, 0, 0), 0, Zero},
		{"negative cap", V(10, 0, 0), -1, Zero},
		{"zero vector", Zero, 5, Zero},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.v.ClampNorm(tt.max); !vecAlmostEq(got, tt.want) {
				t.Errorf("ClampNorm = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestVecClampBox(t *testing.T) {
	lo, hi := V(-1, -1, -1), V(1, 1, 1)
	if got := V(2, 0.5, -3).ClampBox(lo, hi); !vecAlmostEq(got, V(1, 0.5, -1)) {
		t.Errorf("ClampBox = %v", got)
	}
}

func TestVecLerp(t *testing.T) {
	a, b := V(0, 0, 0), V(10, -10, 4)
	if got := a.Lerp(b, 0); !vecAlmostEq(got, a) {
		t.Errorf("Lerp 0 = %v", got)
	}
	if got := a.Lerp(b, 1); !vecAlmostEq(got, b) {
		t.Errorf("Lerp 1 = %v", got)
	}
	if got := a.Lerp(b, 0.5); !vecAlmostEq(got, V(5, -5, 2)) {
		t.Errorf("Lerp 0.5 = %v", got)
	}
}

func TestVecMinMaxAbs(t *testing.T) {
	a, b := V(1, -2, 3), V(-1, 2, 3)
	if got := a.Min(b); !vecAlmostEq(got, V(-1, -2, 3)) {
		t.Errorf("Min = %v", got)
	}
	if got := a.Max(b); !vecAlmostEq(got, V(1, 2, 3)) {
		t.Errorf("Max = %v", got)
	}
	if got := a.Abs(); !vecAlmostEq(got, V(1, 2, 3)) {
		t.Errorf("Abs = %v", got)
	}
	if got := V(1, 7, 3).MaxComponent(); !almostEq(got, 7) {
		t.Errorf("MaxComponent = %v", got)
	}
}

func TestVecIsFinite(t *testing.T) {
	if !V(1, 2, 3).IsFinite() {
		t.Error("finite vector reported non-finite")
	}
	if (Vec3{X: math.NaN()}).IsFinite() {
		t.Error("NaN vector reported finite")
	}
	if (Vec3{Y: math.Inf(1)}).IsFinite() {
		t.Error("Inf vector reported finite")
	}
}

// Property: ClampNorm never increases the norm and never exceeds the cap.
func TestVecClampNormProperty(t *testing.T) {
	f := func(x, y, z, capRaw float64) bool {
		if math.IsNaN(x) || math.IsNaN(y) || math.IsNaN(z) || math.IsNaN(capRaw) {
			return true
		}
		v := V(math.Mod(x, 1e6), math.Mod(y, 1e6), math.Mod(z, 1e6))
		cap := math.Abs(math.Mod(capRaw, 1e6))
		got := v.ClampNorm(cap)
		return got.Norm() <= cap+1e-6 && got.Norm() <= v.Norm()+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Unit has norm 1 (or is zero), and scaling it by the original
// norm recovers the vector.
func TestVecUnitProperty(t *testing.T) {
	f := func(x, y, z float64) bool {
		if math.IsNaN(x) || math.IsNaN(y) || math.IsNaN(z) {
			return true
		}
		v := V(math.Mod(x, 1e3), math.Mod(y, 1e3), math.Mod(z, 1e3))
		u := v.Unit()
		if v.Norm() == 0 {
			return u == Zero
		}
		return almostEqTol(u.Norm(), 1, 1e-6) && vecAlmostEqTol(u.Scale(v.Norm()), v, 1e-6)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: triangle inequality for Dist.
func TestVecTriangleInequality(t *testing.T) {
	f := func(ax, ay, az, bx, by, bz, cx, cy, cz float64) bool {
		for _, v := range []float64{ax, ay, az, bx, by, bz, cx, cy, cz} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
		}
		a := V(math.Mod(ax, 1e4), math.Mod(ay, 1e4), math.Mod(az, 1e4))
		b := V(math.Mod(bx, 1e4), math.Mod(by, 1e4), math.Mod(bz, 1e4))
		c := V(math.Mod(cx, 1e4), math.Mod(cy, 1e4), math.Mod(cz, 1e4))
		return a.Dist(c) <= a.Dist(b)+b.Dist(c)+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func almostEqTol(a, b, tol float64) bool { return math.Abs(a-b) < tol }

func vecAlmostEqTol(a, b Vec3, tol float64) bool {
	return almostEqTol(a.X, b.X, tol) && almostEqTol(a.Y, b.Y, tol) && almostEqTol(a.Z, b.Z, tol)
}
