package geom

import (
	"fmt"
	"math"
)

// Grid is a uniform 3D occupancy grid over a workspace. It is the substrate
// for the certified A* planner (the safe motion planner of Section V-C) and
// for the grid-based backward-reachability computation that stands in for the
// Level-Set Toolbox (Section III-C, "From theory to practice").
type Grid struct {
	origin     Vec3
	res        float64
	nx, ny, nz int
	occupied   []bool
}

// Cell identifies a grid cell by integer coordinates.
type Cell struct {
	X, Y, Z int
}

// NewGrid rasterises the workspace at the given resolution, marking cells
// whose centre is within margin of an obstacle (or outside the deflated
// bounds) as occupied.
func NewGrid(w *Workspace, res, margin float64) (*Grid, error) {
	if res <= 0 {
		return nil, fmt.Errorf("grid resolution %v must be positive", res)
	}
	size := w.Bounds().Size()
	nx := int(math.Ceil(size.X / res))
	ny := int(math.Ceil(size.Y / res))
	nz := int(math.Ceil(size.Z / res))
	if nx <= 0 || ny <= 0 || nz <= 0 {
		return nil, fmt.Errorf("workspace %v too small for resolution %v", w.Bounds(), res)
	}
	g := &Grid{
		origin:   w.Bounds().Min,
		res:      res,
		nx:       nx,
		ny:       ny,
		nz:       nz,
		occupied: make([]bool, nx*ny*nz),
	}
	for z := 0; z < nz; z++ {
		for y := 0; y < ny; y++ {
			for x := 0; x < nx; x++ {
				c := Cell{x, y, z}
				p := g.CellCenter(c)
				if !w.FreeWithMargin(p, margin) {
					g.occupied[g.index(c)] = true
				}
			}
		}
	}
	return g, nil
}

// Dims returns the number of cells along each axis.
func (g *Grid) Dims() (nx, ny, nz int) { return g.nx, g.ny, g.nz }

// Resolution returns the edge length of a cell in metres.
func (g *Grid) Resolution() float64 { return g.res }

// NumCells returns the total number of cells.
func (g *Grid) NumCells() int { return len(g.occupied) }

// InGrid reports whether the cell coordinates are valid.
func (g *Grid) InGrid(c Cell) bool {
	return c.X >= 0 && c.X < g.nx && c.Y >= 0 && c.Y < g.ny && c.Z >= 0 && c.Z < g.nz
}

// Occupied reports whether the cell is blocked. Out-of-grid cells count as
// occupied so planners treat the boundary as a wall.
func (g *Grid) Occupied(c Cell) bool {
	if !g.InGrid(c) {
		return true
	}
	return g.occupied[g.index(c)]
}

// SetOccupied marks or clears a cell; out-of-grid cells are ignored.
func (g *Grid) SetOccupied(c Cell, v bool) {
	if g.InGrid(c) {
		g.occupied[g.index(c)] = v
	}
}

// CellCenter returns the world-space centre of the cell.
func (g *Grid) CellCenter(c Cell) Vec3 {
	return Vec3{
		X: g.origin.X + (float64(c.X)+0.5)*g.res,
		Y: g.origin.Y + (float64(c.Y)+0.5)*g.res,
		Z: g.origin.Z + (float64(c.Z)+0.5)*g.res,
	}
}

// CellOf returns the cell containing the world point p. The result may be out
// of the grid; check with InGrid.
func (g *Grid) CellOf(p Vec3) Cell {
	return Cell{
		X: int(math.Floor((p.X - g.origin.X) / g.res)),
		Y: int(math.Floor((p.Y - g.origin.Y) / g.res)),
		Z: int(math.Floor((p.Z - g.origin.Z) / g.res)),
	}
}

// Neighbors6 appends the 6-connected neighbours of c to dst and returns it.
func (g *Grid) Neighbors6(c Cell, dst []Cell) []Cell {
	for _, d := range [6]Cell{{1, 0, 0}, {-1, 0, 0}, {0, 1, 0}, {0, -1, 0}, {0, 0, 1}, {0, 0, -1}} {
		n := Cell{c.X + d.X, c.Y + d.Y, c.Z + d.Z}
		if g.InGrid(n) {
			dst = append(dst, n)
		}
	}
	return dst
}

// Neighbors26 appends the 26-connected neighbours of c to dst and returns it.
func (g *Grid) Neighbors26(c Cell, dst []Cell) []Cell {
	for dz := -1; dz <= 1; dz++ {
		for dy := -1; dy <= 1; dy++ {
			for dx := -1; dx <= 1; dx++ {
				if dx == 0 && dy == 0 && dz == 0 {
					continue
				}
				n := Cell{c.X + dx, c.Y + dy, c.Z + dz}
				if g.InGrid(n) {
					dst = append(dst, n)
				}
			}
		}
	}
	return dst
}

// DistanceToOccupied computes, for every cell, the multi-source BFS hop
// distance (in cells, 6-connected) to the nearest occupied cell. Occupied
// cells have distance zero. The result indexes cells the same way as the
// grid. This is the discrete analogue of the signed distance field a
// level-set method produces, and drives the backward-reachable-set
// computation in internal/reach.
func (g *Grid) DistanceToOccupied() []int {
	const unset = math.MaxInt32
	dist := make([]int, len(g.occupied))
	queue := make([]Cell, 0, len(g.occupied)/8)
	for i := range dist {
		if g.occupied[i] {
			dist[i] = 0
			queue = append(queue, g.cellAt(i))
		} else {
			dist[i] = unset
		}
	}
	var nbuf []Cell
	for head := 0; head < len(queue); head++ {
		c := queue[head]
		d := dist[g.index(c)]
		nbuf = g.Neighbors6(c, nbuf[:0])
		for _, n := range nbuf {
			ni := g.index(n)
			if dist[ni] > d+1 {
				dist[ni] = d + 1
				queue = append(queue, n)
			}
		}
	}
	return dist
}

// Index returns the linear index of a valid cell; it is exported so callers
// can address per-cell data computed by DistanceToOccupied.
func (g *Grid) Index(c Cell) (int, bool) {
	if !g.InGrid(c) {
		return 0, false
	}
	return g.index(c), true
}

// CellAt returns the cell with linear index i — the inverse of Index. The
// index must be in [0, NumCells).
func (g *Grid) CellAt(i int) Cell { return g.cellAt(i) }

func (g *Grid) index(c Cell) int {
	return (c.Z*g.ny+c.Y)*g.nx + c.X
}

func (g *Grid) cellAt(i int) Cell {
	x := i % g.nx
	y := (i / g.nx) % g.ny
	z := i / (g.nx * g.ny)
	return Cell{x, y, z}
}
