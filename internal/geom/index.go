package geom

import (
	"math"
	"sync"
	"sync/atomic"
)

// Index is a per-margin query accelerator for a Workspace. It precomputes
// everything a Free/BoxFree/SegmentFree query at one fixed margin would
// otherwise recompute per call — the margin-inflated obstacle boxes, the
// margin-deflated bounds — and adds a coarse uniform grid over the bounds
// classifying each cell as known-free (no inflated obstacle touches it) or
// as a boundary cell carrying the exact list of candidate obstacles.
//
// Queries answer through the bitmap fast path when every covered cell is
// known-free and fall back to exact tests against the per-cell candidate
// lists otherwise, so results are bit-identical to the naive linear scan
// (FuzzIndexedQueryEquivalence holds the two paths together). The index is
// immutable after construction and safe for concurrent use — fleet workers
// share one workspace's indexes across missions.
type Index struct {
	margin   float64
	inner    AABB   // bounds.Expand(-margin), precomputed once
	inflated []AABB // obstacles[i].Expand(margin), precomputed once

	// Coarse occupancy grid over the workspace bounds. Cell coordinates are
	// computed with clamped floors, so out-of-bounds geometry (possible with
	// negative margins) conservatively lands in edge cells on both the build
	// and the query side, keeping coverage exact.
	origin     Vec3
	cx, cy, cz float64 // cell edge lengths (0 on degenerate axes)
	nx, ny, nz int
	free       []bool  // cell → no inflated obstacle overlaps the cell
	start      []int32 // CSR offsets into cand, len = ncells+1
	cand       []int32 // candidate obstacle indices per cell
}

// indexTargetCell is the aimed-for coarse cell edge in workspace units
// (metres here); indexMaxCellsPerAxis bounds memory for huge workspaces.
const (
	indexTargetCell      = 2.0
	indexMaxCellsPerAxis = 48
)

func axisCells(extent float64) (int, float64) {
	if !(extent > 0) {
		return 1, 0
	}
	n := int(math.Ceil(extent / indexTargetCell))
	if n < 1 {
		n = 1
	}
	if n > indexMaxCellsPerAxis {
		n = indexMaxCellsPerAxis
	}
	return n, extent / float64(n)
}

// axisLo maps a coordinate to a clamped lower cell index. Non-finite input
// conservatively maps to 0.
func axisLo(v, origin, cell float64, n int) int {
	if cell <= 0 || n <= 1 {
		return 0
	}
	f := math.Floor((v - origin) / cell)
	if f > 0 {
		if f >= float64(n-1) {
			return n - 1
		}
		return int(f)
	}
	return 0
}

// axisHi maps a coordinate to a clamped upper cell index. Non-finite input
// conservatively maps to n-1.
func axisHi(v, origin, cell float64, n int) int {
	if cell <= 0 || n <= 1 {
		return 0
	}
	f := math.Floor((v - origin) / cell)
	if f < float64(n-1) {
		if f <= 0 {
			return 0
		}
		return int(f)
	}
	return n - 1
}

func buildIndex(bounds AABB, obstacles []AABB, margin float64) *Index {
	x := &Index{
		margin: margin,
		inner:  bounds.Expand(-margin),
		origin: bounds.Min,
	}
	x.inflated = make([]AABB, len(obstacles))
	for i, o := range obstacles {
		x.inflated[i] = o.Expand(margin)
	}
	size := bounds.Size()
	x.nx, x.cx = axisCells(size.X)
	x.ny, x.cy = axisCells(size.Y)
	x.nz, x.cz = axisCells(size.Z)
	ncells := x.nx * x.ny * x.nz

	x.free = make([]bool, ncells)
	for i := range x.free {
		x.free[i] = true
	}
	// CSR build: count candidates per cell, prefix-sum, fill.
	counts := make([]int32, ncells+1)
	total := 0
	// Obstacles rasterize over their NORMALIZED extent: a negative margin can
	// invert a box (Min > Max), and while Contains/Intersects treat such a box
	// as empty, SegmentIntersects' slab method sees its normalization — so the
	// candidate lists must cover it for segment queries to stay exact.
	for _, o := range x.inflated {
		lox, hix, loy, hiy, loz, hiz, ok := x.cellRange(o.Min.Min(o.Max), o.Min.Max(o.Max))
		if !ok {
			continue
		}
		for cz := loz; cz <= hiz; cz++ {
			for cy := loy; cy <= hiy; cy++ {
				base := (cz*x.ny + cy) * x.nx
				for cxi := lox; cxi <= hix; cxi++ {
					counts[base+cxi+1]++
					total++
				}
			}
		}
	}
	for i := 1; i <= ncells; i++ {
		counts[i] += counts[i-1]
	}
	x.start = counts
	x.cand = make([]int32, total)
	fill := make([]int32, ncells)
	for oi, o := range x.inflated {
		lox, hix, loy, hiy, loz, hiz, ok := x.cellRange(o.Min.Min(o.Max), o.Min.Max(o.Max))
		if !ok {
			continue
		}
		for cz := loz; cz <= hiz; cz++ {
			for cy := loy; cy <= hiy; cy++ {
				base := (cz*x.ny + cy) * x.nx
				for cxi := lox; cxi <= hix; cxi++ {
					ci := base + cxi
					x.free[ci] = false
					x.cand[x.start[ci]+fill[ci]] = int32(oi)
					fill[ci]++
				}
			}
		}
	}
	return x
}

// cellRange returns the clamped inclusive cell range covered by the box
// [min, max]; ok is false for an empty box (possible after a negative-margin
// inflation), which covers nothing.
func (x *Index) cellRange(min, max Vec3) (lox, hix, loy, hiy, loz, hiz int, ok bool) {
	if min.X > max.X || min.Y > max.Y || min.Z > max.Z {
		return 0, 0, 0, 0, 0, 0, false
	}
	lox = axisLo(min.X, x.origin.X, x.cx, x.nx)
	hix = axisHi(max.X, x.origin.X, x.cx, x.nx)
	loy = axisLo(min.Y, x.origin.Y, x.cy, x.ny)
	hiy = axisHi(max.Y, x.origin.Y, x.cy, x.ny)
	loz = axisLo(min.Z, x.origin.Z, x.cz, x.nz)
	hiz = axisHi(max.Z, x.origin.Z, x.cz, x.nz)
	return lox, hix, loy, hiy, loz, hiz, true
}

func (x *Index) cellOf(p Vec3) int {
	cxi := axisLo(p.X, x.origin.X, x.cx, x.nx)
	cyi := axisLo(p.Y, x.origin.Y, x.cy, x.ny)
	czi := axisLo(p.Z, x.origin.Z, x.cz, x.nz)
	return (czi*x.ny+cyi)*x.nx + cxi
}

// Margin returns the margin the index was built for.
func (x *Index) Margin() float64 { return x.margin }

// Free reports whether p keeps at least the index margin of clearance from
// every obstacle and the workspace boundary — Workspace.FreeWithMargin at
// the index's margin, allocation-free.
func (x *Index) Free(p Vec3) bool {
	if !x.inner.Contains(p) {
		return false
	}
	ci := x.cellOf(p)
	if x.free[ci] {
		return true
	}
	for _, oi := range x.cand[x.start[ci]:x.start[ci+1]] {
		if x.inflated[oi].Contains(p) {
			return false
		}
	}
	return true
}

// obstacleMask dedups candidate obstacle indices across cells without
// allocating, for obstacle sets up to 256; larger sets skip dedup (the
// exact tests stay correct, some may just repeat).
type obstacleMask [4]uint64

func (m *obstacleMask) visit(oi int32) bool {
	if oi >= 256 {
		return true
	}
	w, bit := oi>>6, uint(oi&63)
	if m[w]&(1<<bit) != 0 {
		return false
	}
	m[w] |= 1 << bit
	return true
}

// BoxFree reports whether box b stays inside the deflated bounds and
// intersects no inflated obstacle — Workspace.BoxFree at the index's margin,
// allocation-free.
func (x *Index) BoxFree(b AABB) bool {
	if !x.inner.ContainsBox(b) {
		return false
	}
	lox, hix, loy, hiy, loz, hiz, ok := x.cellRange(b.Min, b.Max)
	if !ok {
		return true
	}
	allFree := true
scan:
	for cz := loz; cz <= hiz; cz++ {
		for cy := loy; cy <= hiy; cy++ {
			base := (cz*x.ny + cy) * x.nx
			for cxi := lox; cxi <= hix; cxi++ {
				if !x.free[base+cxi] {
					allFree = false
					break scan
				}
			}
		}
	}
	if allFree {
		return true
	}
	var mask obstacleMask
	for cz := loz; cz <= hiz; cz++ {
		for cy := loy; cy <= hiy; cy++ {
			base := (cz*x.ny + cy) * x.nx
			for cxi := lox; cxi <= hix; cxi++ {
				ci := base + cxi
				if x.free[ci] {
					continue
				}
				for _, oi := range x.cand[x.start[ci]:x.start[ci+1]] {
					if !mask.visit(oi) {
						continue
					}
					if x.inflated[oi].Intersects(b) {
						return false
					}
				}
			}
		}
	}
	return true
}

// SegmentFree reports whether the segment a→b stays inside the deflated
// bounds and clears every inflated obstacle — Workspace.SegmentFree at the
// index's margin, allocation-free.
func (x *Index) SegmentFree(a, b Vec3) bool {
	if !x.inner.Contains(a) || !x.inner.Contains(b) {
		return false
	}
	min := a.Min(b)
	max := a.Max(b)
	lox, hix, loy, hiy, loz, hiz, _ := x.cellRange(min, max)
	allFree := true
scan:
	for cz := loz; cz <= hiz; cz++ {
		for cy := loy; cy <= hiy; cy++ {
			base := (cz*x.ny + cy) * x.nx
			for cxi := lox; cxi <= hix; cxi++ {
				if !x.free[base+cxi] {
					allFree = false
					break scan
				}
			}
		}
	}
	if allFree {
		return true
	}
	var mask obstacleMask
	for cz := loz; cz <= hiz; cz++ {
		for cy := loy; cy <= hiy; cy++ {
			base := (cz*x.ny + cy) * x.nx
			for cxi := lox; cxi <= hix; cxi++ {
				ci := base + cxi
				if x.free[ci] {
					continue
				}
				for _, oi := range x.cand[x.start[ci]:x.start[ci+1]] {
					if !mask.visit(oi) {
						continue
					}
					if x.inflated[oi].SegmentIntersects(a, b) {
						return false
					}
				}
			}
		}
	}
	return true
}

// maxCachedIndexes bounds the per-workspace margin→Index cache. The steady
// state of a mission stack uses a handful of distinct margins (safety margin,
// plan margin, grid inflation); query margins beyond the cap fall back to the
// linear scan rather than thrashing the cache.
const maxCachedIndexes = 8

// indexSet is the immutable snapshot swapped through Workspace.views.
type indexSet struct {
	views []*Index
}

func (s *indexSet) find(margin float64) *Index {
	for _, v := range s.views {
		if v.margin == margin {
			return v
		}
	}
	return nil
}

// indexCache is the lazily-populated per-margin index cache of a Workspace.
// Lookups are a single atomic load plus a short scan; builders serialize on
// the mutex and publish copy-on-write snapshots, so concurrent fleet workers
// sharing one workspace never block readers.
type indexCache struct {
	views atomic.Pointer[indexSet]
	mu    sync.Mutex
}

// viewFor returns the cached index for margin, building and caching it on
// first use. It returns nil once the cache is full — callers then use the
// linear scan, preserving exact behaviour at any margin.
func (w *Workspace) viewFor(margin float64) *Index {
	if s := w.cache.views.Load(); s != nil {
		if v := s.find(margin); v != nil {
			return v
		}
		if len(s.views) >= maxCachedIndexes {
			return nil
		}
	}
	w.cache.mu.Lock()
	defer w.cache.mu.Unlock()
	s := w.cache.views.Load()
	if s != nil {
		if v := s.find(margin); v != nil {
			return v
		}
		if len(s.views) >= maxCachedIndexes {
			return nil
		}
	}
	idx := buildIndex(w.bounds, w.obstacles, margin)
	next := &indexSet{}
	if s != nil {
		next.views = append(append([]*Index(nil), s.views...), idx)
	} else {
		next.views = []*Index{idx}
	}
	w.cache.views.Store(next)
	return idx
}

// IndexFor returns the workspace's query index for the given margin,
// building it on first use. Hot-path consumers with a fixed margin (the
// reachability analyzer, planners) resolve their index once and query it
// directly, skipping even the cache lookup.
func (w *Workspace) IndexFor(margin float64) *Index {
	if v := w.viewFor(margin); v != nil {
		return v
	}
	// Cache full: build an uncached index for this caller alone.
	return buildIndex(w.bounds, w.obstacles, margin)
}
