package geom

import (
	"fmt"
	"math/rand"
)

// Workspace is the drone's operating volume: an outer bound and a set of
// static axis-aligned obstacles. It mirrors the simplified setting of the
// paper's case study (Section II-A): all obstacles are static and known a
// priori, and there are no environment uncertainties like wind.
type Workspace struct {
	bounds    AABB
	obstacles []AABB
	// cache holds the lazily-built per-margin query indexes (index.go). It
	// is internally synchronized; the Workspace itself stays immutable and
	// safe to share across fleet workers.
	cache indexCache
}

// NewWorkspace constructs a workspace. Obstacles are clipped conceptually to
// the bounds (an obstacle fully outside the bounds is still stored but can
// never be hit by an in-bounds drone). The obstacle slice is copied.
func NewWorkspace(bounds AABB, obstacles []AABB) (*Workspace, error) {
	if bounds.IsEmpty() {
		return nil, fmt.Errorf("workspace bounds %v are empty", bounds)
	}
	obs := make([]AABB, len(obstacles))
	copy(obs, obstacles)
	return &Workspace{bounds: bounds, obstacles: obs}, nil
}

// Bounds returns the outer bounding box of the workspace.
func (w *Workspace) Bounds() AABB { return w.bounds }

// Obstacles returns a copy of the obstacle set.
func (w *Workspace) Obstacles() []AABB {
	out := make([]AABB, len(w.obstacles))
	copy(out, w.obstacles)
	return out
}

// ObstaclesView returns the workspace's obstacle slice without copying. The
// returned slice is shared and MUST be treated as read-only — it exists so
// internal consumers on deterministic hot paths (planner construction,
// canonicalization, derived workspaces) avoid the defensive copy Obstacles
// makes per call. soter-vet's obstacleview analyzer steers those packages
// here.
func (w *Workspace) ObstaclesView() []AABB { return w.obstacles }

// NumObstacles returns the number of obstacles.
func (w *Workspace) NumObstacles() int { return len(w.obstacles) }

// InBounds reports whether p lies inside the workspace bounds.
func (w *Workspace) InBounds(p Vec3) bool { return w.bounds.Contains(p) }

// Free reports whether point p is inside the bounds and outside every
// obstacle. This is the position-level φsafe of the paper's obstacle
// avoidance property φobs.
func (w *Workspace) Free(p Vec3) bool {
	// Expand(0) is bit-identical to the raw bounds/obstacles, so the margin-0
	// index answers exactly the unexpanded containment checks.
	if v := w.viewFor(0); v != nil {
		return v.Free(p)
	}
	return w.freeLinear(p)
}

// FreeWithMargin reports whether p keeps at least margin clearance from every
// obstacle and from the workspace boundary. Margin is typically the drone's
// bounding radius.
func (w *Workspace) FreeWithMargin(p Vec3, margin float64) bool {
	if v := w.viewFor(margin); v != nil {
		return v.Free(p)
	}
	return w.freeWithMarginLinear(p, margin)
}

// BoxFree reports whether the whole box b (for example a worst-case reachable
// set) stays inside the bounds and intersects no obstacle. When margin > 0
// obstacles are inflated and the bounds deflated by margin first.
func (w *Workspace) BoxFree(b AABB, margin float64) bool {
	if v := w.viewFor(margin); v != nil {
		return v.BoxFree(b)
	}
	return w.boxFreeLinear(b, margin)
}

// SegmentFree reports whether the straight segment a→b keeps at least margin
// clearance from every obstacle and stays inside the (deflated) bounds. It is
// the motion-plan validity check φplan: a reference trajectory between two
// waypoints must not collide with any obstacle.
func (w *Workspace) SegmentFree(a, b Vec3, margin float64) bool {
	if v := w.viewFor(margin); v != nil {
		return v.SegmentFree(a, b)
	}
	return w.segmentFreeLinear(a, b, margin)
}

// The linear variants below are the original O(obstacles) scans with
// per-query Expand. They remain the semantic ground truth: the index cache
// falls back to them beyond its margin capacity, and the differential fuzz
// test (FuzzIndexedQueryEquivalence) pins the indexed paths to them bit for
// bit.

func (w *Workspace) freeLinear(p Vec3) bool {
	if !w.bounds.Contains(p) {
		return false
	}
	for _, o := range w.obstacles {
		if o.Contains(p) {
			return false
		}
	}
	return true
}

func (w *Workspace) freeWithMarginLinear(p Vec3, margin float64) bool {
	if !w.bounds.Expand(-margin).Contains(p) {
		return false
	}
	for _, o := range w.obstacles {
		if o.Expand(margin).Contains(p) {
			return false
		}
	}
	return true
}

func (w *Workspace) boxFreeLinear(b AABB, margin float64) bool {
	if !w.bounds.Expand(-margin).ContainsBox(b) {
		return false
	}
	for _, o := range w.obstacles {
		if o.Expand(margin).Intersects(b) {
			return false
		}
	}
	return true
}

func (w *Workspace) segmentFreeLinear(a, b Vec3, margin float64) bool {
	inner := w.bounds.Expand(-margin)
	if !inner.Contains(a) || !inner.Contains(b) {
		return false
	}
	for _, o := range w.obstacles {
		if o.Expand(margin).SegmentIntersects(a, b) {
			return false
		}
	}
	return true
}

// PathFree reports whether every consecutive segment of the waypoint path is
// free with the given margin. A path with fewer than two waypoints is free if
// all its points are.
func (w *Workspace) PathFree(path []Vec3, margin float64) bool {
	if len(path) == 0 {
		return true
	}
	if len(path) == 1 {
		return w.FreeWithMargin(path[0], margin)
	}
	for i := 0; i+1 < len(path); i++ {
		if !w.SegmentFree(path[i], path[i+1], margin) {
			return false
		}
	}
	return true
}

// Clearance returns the distance from p to the nearest obstacle surface or
// workspace boundary. Points inside an obstacle or outside the bounds report
// zero clearance.
func (w *Workspace) Clearance(p Vec3) float64 {
	if !w.bounds.Contains(p) {
		return 0
	}
	// Distance to the inner faces of the bounds.
	best := minFaceDistance(w.bounds, p)
	for _, o := range w.obstacles {
		if o.Contains(p) {
			return 0
		}
		if d := o.Distance(p); d < best {
			best = d
		}
	}
	return best
}

// RandomFreePoint draws a uniformly random point with the given clearance
// margin, retrying up to maxTries times. It returns false if no free point
// was found (for example in a workspace that is almost fully blocked).
func (w *Workspace) RandomFreePoint(rng *rand.Rand, margin float64, maxTries int) (Vec3, bool) {
	size := w.bounds.Size()
	for i := 0; i < maxTries; i++ {
		p := Vec3{
			X: w.bounds.Min.X + rng.Float64()*size.X,
			Y: w.bounds.Min.Y + rng.Float64()*size.Y,
			Z: w.bounds.Min.Z + rng.Float64()*size.Z,
		}
		if w.FreeWithMargin(p, margin) {
			return p, true
		}
	}
	return Vec3{}, false
}

func minFaceDistance(b AABB, p Vec3) float64 {
	d := p.Sub(b.Min).Min(b.Max.Sub(p))
	m := d.X
	if d.Y < m {
		m = d.Y
	}
	if d.Z < m {
		m = d.Z
	}
	if m < 0 {
		return 0
	}
	return m
}

// CityWorkspace builds the default city surveillance workspace mirroring the
// paper's Figure 2: a bounded urban block with houses and parked cars as
// static obstacles. Dimensions are in metres; the flyable volume is
// 50m x 50m x 12m.
func CityWorkspace() *Workspace {
	bounds := Box(V(0, 0, 0), V(50, 50, 12))
	obstacles := []AABB{
		// Houses (tall blocks).
		Box(V(6, 6, 0), V(14, 14, 8)),
		Box(V(20, 4, 0), V(30, 12, 7)),
		Box(V(36, 6, 0), V(44, 16, 9)),
		Box(V(6, 22, 0), V(16, 30, 8)),
		Box(V(22, 20, 0), V(32, 28, 6)),
		Box(V(38, 24, 0), V(46, 32, 8)),
		Box(V(8, 36, 0), V(18, 44, 7)),
		Box(V(24, 36, 0), V(34, 46, 9)),
		// Parked cars (low blocks along the streets).
		Box(V(17, 16, 0), V(19, 18, 1.6)),
		Box(V(33, 14, 0), V(35, 16, 1.6)),
		Box(V(19, 32, 0), V(21, 34, 1.6)),
		Box(V(36, 40, 0), V(38, 42, 1.6)),
	}
	ws, err := NewWorkspace(bounds, obstacles)
	if err != nil {
		// The literal bounds above are non-empty; this cannot happen.
		panic(err)
	}
	return ws
}

// CanyonWorkspace builds a narrow-passage workspace: two long, full-height
// walls squeeze the flyable volume into a 5 m wide corridor connecting an
// open staging area on each side. Missions that shuttle between the two
// areas force every layer — planner, motion primitives, decision modules —
// through the passage, where the φsafer band is tight and AC overshoot
// triggers disengagements far more often than in the open city blocks.
// Dimensions are in metres; the flyable volume is 60m x 30m x 10m.
func CanyonWorkspace() *Workspace {
	bounds := Box(V(0, 0, 0), V(60, 30, 10))
	obstacles := []AABB{
		// Canyon walls: full height, leaving a corridor y ∈ (12.5, 17.5).
		Box(V(14, 0, 0), V(46, 12.5, 10)),
		Box(V(14, 17.5, 0), V(46, 30, 10)),
		// Rock outcrops near the two canyon mouths, offset from the
		// centre line so the direct route stays free but hugs them.
		Box(V(10, 18, 0), V(13, 22, 6)),
		Box(V(47, 8, 0), V(50, 12, 6)),
	}
	ws, err := NewWorkspace(bounds, obstacles)
	if err != nil {
		panic(err) // static geometry
	}
	return ws
}

// CornerHazardWorkspace builds the g1..g4 tour workspace of Figure 5
// (right) and Figure 12a: an open square with hazard blocks ("red regions")
// placed just beyond each corner in the overshoot direction — inside the
// ~1 m overshoot of the aggressive controller at cruise speed.
func CornerHazardWorkspace() *Workspace {
	bounds := Box(V(0, 0, 0), V(30, 30, 8))
	obstacles := []AABB{
		Box(V(25.7, 2, 0), V(28.5, 8, 6)),   // past g2 (+x)
		Box(V(22, 25.7, 0), V(28, 28.5, 6)), // past g3 (+y)
		Box(V(1.5, 22, 0), V(4.3, 28, 6)),   // past g4 (-x)
		Box(V(2, 1.5, 0), V(8, 4.3, 6)),     // past g1 (-y)
	}
	ws, err := NewWorkspace(bounds, obstacles)
	if err != nil {
		panic(err) // static geometry
	}
	return ws
}

// OpenWorkspace builds an obstacle-free box workspace, useful for unit tests
// and for the Figure 5 (left) figure-eight experiment where danger is defined
// by deviation from the reference loop rather than by obstacles.
func OpenWorkspace(bounds AABB) *Workspace {
	ws, err := NewWorkspace(bounds, nil)
	if err != nil {
		panic(err)
	}
	return ws
}

// RetreatDirection returns a unit vector pointing away from nearby obstacles
// and workspace boundaries — an ascent direction of the clearance field at p.
// It is used by the safe controller to actively recover into the φsafer
// region (the paper's SC "must ... move it to a state in φsafer"). The zero
// vector is returned when p is comfortably clear of everything within range.
func (w *Workspace) RetreatDirection(p Vec3, influence float64) Vec3 {
	var dir Vec3
	for _, o := range w.obstacles {
		cp := o.ClosestPoint(p)
		d := cp.Dist(p)
		if d >= influence {
			continue
		}
		if d < 1e-9 {
			// Inside or on the obstacle: push toward the obstacle centre's
			// opposite side via the box centre.
			dir = dir.Add(p.Sub(o.Center()).Unit())
			continue
		}
		dir = dir.Add(p.Sub(cp).Unit().Scale((influence - d) / influence))
	}
	// Push inward from the workspace faces.
	b := w.bounds
	faces := [6]struct {
		d float64
		n Vec3
	}{
		{p.X - b.Min.X, V(1, 0, 0)},
		{b.Max.X - p.X, V(-1, 0, 0)},
		{p.Y - b.Min.Y, V(0, 1, 0)},
		{b.Max.Y - p.Y, V(0, -1, 0)},
		{p.Z - b.Min.Z, V(0, 0, 1)},
		{b.Max.Z - p.Z, V(0, 0, -1)},
	}
	for _, f := range faces {
		if f.d < influence {
			dir = dir.Add(f.n.Scale((influence - f.d) / influence))
		}
	}
	return dir.Unit()
}
