package geom

import (
	"fmt"
	"math"
)

// AABB is an axis-aligned bounding box, used for obstacles (buildings, cars in
// the Figure 2 city map), for workspace bounds, and for worst-case reachable
// sets of the double-integrator plant.
type AABB struct {
	Min, Max Vec3
}

// Box constructs an AABB from two opposite corners in any order.
func Box(a, b Vec3) AABB {
	return AABB{Min: a.Min(b), Max: a.Max(b)}
}

// BoxAt constructs an AABB centred at c with half-extents h.
func BoxAt(c, h Vec3) AABB {
	return AABB{Min: c.Sub(h), Max: c.Add(h)}
}

// Center returns the centre point of the box.
func (b AABB) Center() Vec3 { return b.Min.Add(b.Max).Scale(0.5) }

// Size returns the extent of the box along each axis.
func (b AABB) Size() Vec3 { return b.Max.Sub(b.Min) }

// Volume returns the volume of the box. Degenerate boxes have zero volume.
func (b AABB) Volume() float64 {
	s := b.Size()
	if s.X < 0 || s.Y < 0 || s.Z < 0 {
		return 0
	}
	return s.X * s.Y * s.Z
}

// IsEmpty reports whether the box contains no points (Min > Max on some axis).
func (b AABB) IsEmpty() bool {
	return b.Min.X > b.Max.X || b.Min.Y > b.Max.Y || b.Min.Z > b.Max.Z
}

// Contains reports whether point p lies inside or on the boundary of b.
func (b AABB) Contains(p Vec3) bool {
	return p.X >= b.Min.X && p.X <= b.Max.X &&
		p.Y >= b.Min.Y && p.Y <= b.Max.Y &&
		p.Z >= b.Min.Z && p.Z <= b.Max.Z
}

// ContainsBox reports whether box o lies entirely within b.
func (b AABB) ContainsBox(o AABB) bool {
	if o.IsEmpty() {
		return true
	}
	return b.Contains(o.Min) && b.Contains(o.Max)
}

// Intersects reports whether b and o overlap (sharing a boundary counts).
func (b AABB) Intersects(o AABB) bool {
	if b.IsEmpty() || o.IsEmpty() {
		return false
	}
	return b.Min.X <= o.Max.X && b.Max.X >= o.Min.X &&
		b.Min.Y <= o.Max.Y && b.Max.Y >= o.Min.Y &&
		b.Min.Z <= o.Max.Z && b.Max.Z >= o.Min.Z
}

// Expand returns b grown by margin m on every side. Negative m shrinks the
// box and may produce an empty box.
func (b AABB) Expand(m float64) AABB {
	d := Vec3{m, m, m}
	return AABB{Min: b.Min.Sub(d), Max: b.Max.Add(d)}
}

// Union returns the smallest AABB containing both b and o.
func (b AABB) Union(o AABB) AABB {
	if b.IsEmpty() {
		return o
	}
	if o.IsEmpty() {
		return b
	}
	return AABB{Min: b.Min.Min(o.Min), Max: b.Max.Max(o.Max)}
}

// ClosestPoint returns the point inside b closest to p.
func (b AABB) ClosestPoint(p Vec3) Vec3 {
	return p.ClampBox(b.Min, b.Max)
}

// Distance returns the Euclidean distance from p to the box (zero if inside).
func (b AABB) Distance(p Vec3) float64 {
	return b.ClosestPoint(p).Dist(p)
}

// SegmentIntersects reports whether the segment from a to b2 passes through
// the box, using the slab method. Touching the boundary counts as an
// intersection.
func (b AABB) SegmentIntersects(a, b2 Vec3) bool {
	d := b2.Sub(a)
	tmin, tmax := 0.0, 1.0
	for axis := 0; axis < 3; axis++ {
		var origin, dir, lo, hi float64
		switch axis {
		case 0:
			origin, dir, lo, hi = a.X, d.X, b.Min.X, b.Max.X
		case 1:
			origin, dir, lo, hi = a.Y, d.Y, b.Min.Y, b.Max.Y
		default:
			origin, dir, lo, hi = a.Z, d.Z, b.Min.Z, b.Max.Z
		}
		if math.Abs(dir) < 1e-12 {
			if origin < lo || origin > hi {
				return false
			}
			continue
		}
		t1 := (lo - origin) / dir
		t2 := (hi - origin) / dir
		if t1 > t2 {
			t1, t2 = t2, t1
		}
		tmin = math.Max(tmin, t1)
		tmax = math.Min(tmax, t2)
		if tmin > tmax {
			return false
		}
	}
	return true
}

// String implements fmt.Stringer.
func (b AABB) String() string {
	return fmt.Sprintf("[%v .. %v]", b.Min, b.Max)
}
